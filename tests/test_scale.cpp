// Scale plane (DESIGN.md §9): plan-backed million-client pools, hierarchical
// aggregation, and availability churn.
//
// The load-bearing invariants:
//  * Lazy (streamed) client state is an optimization, not a semantic change:
//    a plan-backed run and its fully-materialized twin produce bit-identical
//    models for every one of the eight method variants.
//  * Results are independent of everything that only affects residency or
//    scheduling — worker thread count, shard-LRU capacity.
//  * The aggregation tree is exact: edge-merged rounds equal flat rounds
//    bit for bit; only the byte accounting (and, with the network model on,
//    the clock) can differ.
//  * Churn draws from a dedicated stream, so disabling it reproduces the
//    PR 2-6 goldens (covered by the golden-hash suites) and enabling it is
//    deterministic across thread counts.
#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "blob_hash.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "exp/runner.hpp"
#include "fed/churn.hpp"
#include "fed/client_pool.hpp"
#include "fed/env.hpp"
#include "fed/sampler.hpp"
#include "models/zoo.hpp"

namespace fp {
namespace {

using test::fnv1a;

std::uint64_t tensor_hash(const Tensor& t) {
  nn::ParamBlob blob(t.data(), t.data() + t.numel());
  return fnv1a(blob);
}

/// A tiny plan-backed scenario; small enough that every method trains in
/// well under a second per round.
exp::ExperimentSpec scale_spec(const std::string& method) {
  exp::ExperimentSpec spec;
  spec.method = method;
  for (const char* kv : {
           "workload=cifar", "model.width=4", "model.classes=4",
           "data.train_size=240", "data.test_size=80", "fl.num_clients=12",
           "fl.clients_per_round=4", "fl.local_iters=2", "fl.batch_size=16",
           "fl.pgd_steps=2", "fl.rounds=2", "fl.lr0=0.05", "fl.sgd.lr=0.05",
           "fl.seed=123", "fp.rounds_per_module=2", "fp.eval_every=2",
           "fp.val_samples=32", "env.lazy_clients=1", "env.shard_size=16",
       })
    exp::apply_override(spec, kv);
  return spec;
}

std::uint64_t train_hash(exp::ExperimentSpec spec) {
  auto setup = exp::build_setup(std::move(spec));
  exp::MethodRun run =
      exp::method_registry().resolve(setup.spec.method)(setup);
  run.train();
  return fnv1a(run.algo->global_model().save_all());
}

TEST(ScalePlane, LazyMatchesMaterializedForAllEightMethods) {
  for (const auto& name : exp::method_names()) {
    exp::ExperimentSpec lazy = scale_spec(name);

    exp::ExperimentSpec eager = scale_spec(name);
    exp::apply_override(eager, "env.lazy_clients=0");
    exp::apply_override(eager, "env.lazy_materialize=1");

    EXPECT_EQ(train_hash(std::move(lazy)), train_hash(std::move(eager)))
        << name << ": streamed client state diverged from materialized shards";
  }
}

TEST(ScalePlane, LruCapacityDoesNotChangeResults) {
  exp::ExperimentSpec tight = scale_spec("jFAT");
  exp::apply_override(tight, "fl.rounds=4");
  exp::apply_override(tight, "env.client_cache=1");

  exp::ExperimentSpec roomy = scale_spec("jFAT");
  exp::apply_override(roomy, "fl.rounds=4");
  exp::apply_override(roomy, "env.client_cache=64");

  // 4 clients/round from a 12-client pool over 4 rounds: re-sampled clients
  // hit the roomy cache and re-synthesize under the tight one.
  EXPECT_EQ(train_hash(std::move(tight)), train_hash(std::move(roomy)))
      << "shard-LRU capacity leaked into the training stream";
}

TEST(ScalePlane, ChurnIsDeterministicAcrossThreadCounts) {
  auto churned = [] {
    exp::ExperimentSpec spec = scale_spec("jFAT");
    exp::apply_override(spec, "fl.rounds=4");
    exp::apply_override(spec, "env.churn.enabled=1");
    exp::apply_override(spec, "env.churn.online_frac=0.7");
    exp::apply_override(spec, "env.churn.period_rounds=2");
    exp::apply_override(spec, "env.churn.drop_prob=0.5");
    return spec;
  };
  core::set_num_threads(1);
  const std::uint64_t h1 = train_hash(churned());
  core::set_num_threads(4);
  const std::uint64_t h4 = train_hash(churned());
  EXPECT_EQ(h1, h4) << "churn outcomes depend on worker thread count";
}

TEST(ScalePlane, AggregationTreeIsExact) {
  exp::ExperimentSpec flat = scale_spec("jFAT");
  auto flat_setup = exp::build_setup(std::move(flat));
  exp::RunResult flat_run = exp::run_on_setup(flat_setup, "flat");

  exp::ExperimentSpec tree = scale_spec("jFAT");
  exp::apply_override(tree, "env.aggregators=2");
  auto tree_setup = exp::build_setup(std::move(tree));
  exp::RunResult tree_run = exp::run_on_setup(tree_setup, "tree");

  // Without the network model the tree changes residency and byte
  // accounting only: same model, same clock, same wire traffic.
  EXPECT_DOUBLE_EQ(flat_run.sim_time.total(), tree_run.sim_time.total());
  EXPECT_EQ(flat_run.bytes_up, tree_run.bytes_up);
  EXPECT_EQ(flat_run.bytes_down, tree_run.bytes_down);
  EXPECT_EQ(flat_run.agg_bytes_saved, 0);
  EXPECT_GT(tree_run.agg_bytes_saved, 0)
      << "edge aggregators merged nothing — byte accounting is dead";

  const std::uint64_t flat_hash = train_hash(scale_spec("jFAT"));
  exp::ExperimentSpec tree2 = scale_spec("jFAT");
  exp::apply_override(tree2, "env.aggregators=2");
  EXPECT_EQ(flat_hash, train_hash(std::move(tree2)))
      << "hierarchical aggregation changed the aggregate";
}

TEST(ScalePlane, EdgeHopPricesTheClockWhenNetworkModeled) {
  exp::ExperimentSpec flat = scale_spec("jFAT");
  exp::apply_override(flat, "comm.model_network=1");
  auto flat_setup = exp::build_setup(std::move(flat));
  const double flat_time =
      exp::run_on_setup(flat_setup, "flat-net").sim_time.total();

  exp::ExperimentSpec tree = scale_spec("jFAT");
  exp::apply_override(tree, "comm.model_network=1");
  exp::apply_override(tree, "env.aggregators=2");
  auto tree_setup = exp::build_setup(std::move(tree));
  const double tree_time =
      exp::run_on_setup(tree_setup, "tree-net").sim_time.total();

  EXPECT_GT(tree_time, flat_time)
      << "the edge->server backbone hop costs nothing";
}

TEST(LazyShardSource, ShardsAreDeterministicAndMetadataConsistent) {
  data::ShardPlan plan;
  plan.synth.num_classes = 6;
  plan.synth.train_size = 999999;  // never synthesized — metadata only
  plan.num_clients = 1'000'000;
  plan.shard_size = 24;
  const data::LazyShardSource src(plan);

  for (const std::int64_t k : {0LL, 1LL, 777LL, 999'999LL}) {
    const auto counts = src.shard_class_counts(k);
    ASSERT_EQ(counts.size(), 6u);
    std::int64_t total = 0;
    for (const auto c : counts) total += c;
    EXPECT_EQ(total, 24) << "client " << k;

    const data::Dataset shard = src.make_shard(k);
    EXPECT_EQ(shard.size(), 24);
    EXPECT_EQ(shard.class_histogram(), counts)
        << "client " << k << ": metadata disagrees with the rendered shard";
    const data::Dataset again = src.make_shard(k);
    EXPECT_EQ(tensor_hash(shard.images), tensor_hash(again.images));
    EXPECT_EQ(shard.labels, again.labels);
  }
  // Distinct clients get distinct data (overwhelmingly likely).
  EXPECT_NE(tensor_hash(src.make_shard(3).images),
            tensor_hash(src.make_shard(4).images));
}

TEST(ScalePlane, MetadataOnlyEnvSynthesizesNoShards) {
  data::SyntheticConfig synth;
  synth.train_size = 400;
  synth.test_size = 40;
  fed::FedEnvConfig cfg;
  cfg.fl.num_clients = 500'000;
  cfg.lazy_clients = true;
  const fed::FedEnv env =
      fed::make_lazy_env(synth, cfg, models::vgg16_spec(32, 10));
  EXPECT_TRUE(env.session_mode());
  EXPECT_TRUE(env.shards.empty());
  EXPECT_EQ(env.num_clients(), 500'000);
  EXPECT_FLOAT_EQ(env.weight_of(0), 1.0f / 500'000.0f);
  EXPECT_EQ(env.test.size(), 40);
}

TEST(ClientPool, EagerIteratorEvictionBoundsResidency) {
  data::SyntheticConfig synth;
  synth.train_size = 320;
  synth.test_size = 16;
  synth.num_classes = 4;
  const data::TrainTest data = data::make_synthetic(synth);
  fed::FedEnvConfig cfg;
  cfg.fl.num_clients = 16;
  cfg.fl.seed = 9;
  cfg.iter_cache = 2;
  fed::FedEnv env = fed::make_env(data, cfg, models::vgg16_spec(32, 10));

  fed::ClientPool pool(env, cfg.fl.seed);
  ASSERT_FALSE(pool.session_mode());
  struct T { std::size_t client; };
  for (std::int64_t r = 0; r < 3; ++r) {
    std::vector<T> tasks;
    for (std::size_t k = 0; k < 16; k += 2)
      tasks.push_back({(k + static_cast<std::size_t>(r)) % 16});
    pool.begin_round(tasks);
    for (const auto& t : tasks) pool.batches(t.client, 16).next();
    pool.end_round();
    EXPECT_LE(pool.resident_iterators(), 2u) << "round " << r;
  }
}

TEST(ClientSampler, FloydPathDrawsDistinctSortedReproducibleIds) {
  fed::ClientSampler a(1'000'000, 77);
  fed::ClientSampler b(1'000'000, 77);
  const auto ids = a.sample(1000);
  ASSERT_EQ(ids.size(), 1000u);
  EXPECT_EQ(ids, b.sample(1000));
  std::set<std::size_t> distinct(ids.begin(), ids.end());
  EXPECT_EQ(distinct.size(), ids.size());
  EXPECT_TRUE(std::is_sorted(ids.begin(), ids.end()));
  EXPECT_LT(*distinct.rbegin(), 1'000'000u);
}

TEST(ChurnProcess, OnlineFractionAndSessionPersistence) {
  fed::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.online_frac = 0.6;
  cfg.period_rounds = 4;
  const fed::ChurnProcess churn(cfg, 555);

  std::int64_t online = 0;
  const std::int64_t pool = 20000;
  for (std::int64_t k = 0; k < pool; ++k)
    if (churn.online(static_cast<std::size_t>(k), /*round=*/0)) ++online;
  const double frac = static_cast<double>(online) / static_cast<double>(pool);
  EXPECT_NEAR(frac, 0.6, 0.02);

  // Availability is a per-epoch session: stable inside a period, redrawn
  // across periods (some client must flip within a few epochs).
  bool any_flip = false;
  for (std::int64_t k = 0; k < 64; ++k) {
    const bool e0 = churn.online(static_cast<std::size_t>(k), 0);
    EXPECT_EQ(e0, churn.online(static_cast<std::size_t>(k), 3));
    for (std::int64_t r = 4; r < 20; r += 4)
      any_flip |= churn.online(static_cast<std::size_t>(k), r) != e0;
  }
  EXPECT_TRUE(any_flip);
}

TEST(ClientSampler, ChurnFilteredDrawsReturnOnlyOnlineClients) {
  fed::ChurnConfig cfg;
  cfg.enabled = true;
  cfg.online_frac = 0.5;
  const fed::ChurnProcess churn(cfg, 99);
  fed::ClientSampler sampler(100'000, 3);
  const auto ids = sampler.sample(200, &churn, /*round=*/1);
  ASSERT_EQ(ids.size(), 200u);
  for (const auto k : ids) EXPECT_TRUE(churn.online(k, 1));
}

}  // namespace
}  // namespace fp
