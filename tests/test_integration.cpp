// Cross-module integration tests: determinism, aggregation round trips,
// cascade-vs-end-to-end coherence, and failure injection.
#include <gtest/gtest.h>

#include "baselines/jfat.hpp"
#include "cascade/trainer.hpp"
#include "data/synthetic.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp {
namespace {

data::TrainTest tiny_data() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 320;
  dcfg.test_size = 96;
  dcfg.num_classes = 4;
  return data::make_synthetic(dcfg);
}

fed::FlConfig tiny_fl() {
  fed::FlConfig fl;
  fl.num_clients = 5;
  fl.clients_per_round = 2;
  fl.local_iters = 3;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  fl.rounds = 4;
  return fl;
}

TEST(Integration, JFatIsDeterministicAcrossRuns) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  nn::ParamBlob first;
  for (int run = 0; run < 2; ++run) {
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_cnn_spec(16, 4, 4);
    baselines::JFat algo(env, cfg);
    algo.run();
    const auto blob = algo.global_model().save_all();
    if (run == 0)
      first = blob;
    else
      EXPECT_EQ(blob, first);  // bit-for-bit reproducible
  }
}

TEST(Integration, FedProphetIsDeterministicAcrossRuns) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  std::vector<double> first_eps;
  nn::ParamBlob first_blob;
  for (int run = 0; run < 2; ++run) {
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    cfg.rmin_bytes = sys::module_train_mem_bytes(
                         cfg.model_spec, 0, cfg.model_spec.atoms.size(), 16,
                         false) /
                     3;
    cfg.rounds_per_module = 3;
    cfg.eval_every = 3;
    fedprophet::FedProphet algo(env, cfg);
    algo.train();
    if (run == 0) {
      first_eps = algo.eps_trace();
      first_blob = algo.global_model().save_all();
    } else {
      EXPECT_EQ(algo.eps_trace(), first_eps);
      EXPECT_EQ(algo.global_model().save_all(), first_blob);
    }
  }
}

TEST(Integration, SingleModulePartitionDegeneratesToEndToEnd) {
  // With Rmin >= full memory FedProphet's cascade has one module whose
  // "early exit loss" is the true joint loss — i.e. plain FAT (paper Fig. 9,
  // rightmost point).
  const auto data = tiny_data();
  auto fl = tiny_fl();
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
  fedprophet::FedProphetConfig cfg;
  cfg.fl = fl;
  cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
  cfg.rmin_bytes = 1ll << 40;
  cfg.rounds_per_module = 4;
  cfg.eval_every = 4;
  fedprophet::FedProphet algo(env, cfg);
  EXPECT_EQ(algo.partition().num_modules(), 1u);
  EXPECT_EQ(algo.cascade().aux_head(0), nullptr);
  algo.train();
  EXPECT_EQ(algo.stages().size(), 1u);
}

TEST(Integration, CascadePrefixLogitsMatchBackboneOnLastModule) {
  Rng rng(9090);
  const auto spec = models::tiny_vgg_spec(16, 4, 4);
  models::BuiltModel model(spec, rng);
  const auto full =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 16, false);
  cascade::CascadeState cas(model, cascade::partition_model(spec, full / 3, 16),
                            rng);
  const Tensor x = Tensor::randn({3, 3, 16, 16}, rng);
  const Tensor via_cascade =
      cas.prefix_logits(cas.num_modules() - 1, x, /*train=*/false);
  const Tensor via_model = model.forward(x, /*train=*/false);
  ASSERT_EQ(via_cascade.shape(), via_model.shape());
  for (std::int64_t i = 0; i < via_model.numel(); ++i)
    EXPECT_FLOAT_EQ(via_cascade[i], via_model[i]);
}

TEST(Integration, AggregatingIdenticalClientsIsIdentity) {
  // FedAvg of n copies of the same weights must be exactly those weights.
  Rng rng(9191);
  const auto spec = models::tiny_cnn_spec(16, 4, 4);
  models::BuiltModel model(spec, rng);
  const auto blob = model.save_all();
  fed::BlobAverager avg;
  for (int k = 0; k < 3; ++k) avg.add(blob, 0.2f + 0.1f * static_cast<float>(k));
  const auto mean = avg.average();
  for (std::size_t i = 0; i < blob.size(); ++i)
    EXPECT_NEAR(mean[i], blob[i], 1e-6f);
}

TEST(Integration, AdversarialTrainingBeatsStandardUnderAttack) {
  // The library-level version of the paper's core premise: with everything
  // else fixed, PGD-AT yields higher adversarial accuracy than ST.
  const auto data = tiny_data();
  auto fl = tiny_fl();
  fl.rounds = 12;
  fl.local_iters = 4;
  double adv_at = 0, adv_st = 0;
  for (const bool adversarial : {true, false}) {
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    cfg.adversarial = adversarial;
    baselines::JFat algo(env, cfg);
    algo.run();
    attack::RobustEvalConfig e;
    e.pgd_steps = 10;
    e.max_samples = 96;
    e.epsilon = 12.0f / 255.0f;
    (adversarial ? adv_at : adv_st) =
        attack::evaluate_pgd(algo.global_model(), env.test, e);
  }
  EXPECT_GT(adv_at, adv_st);
}

TEST(Integration, TrainerRejectsInvalidModuleRanges) {
  Rng rng(9292);
  const auto spec = models::tiny_vgg_spec(16, 4, 4);
  models::BuiltModel model(spec, rng);
  const auto full =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 16, false);
  cascade::CascadeState cas(model, cascade::partition_model(spec, full / 3, 16),
                            rng);
  cascade::LocalTrainConfig cfg;
  cfg.module_begin = 1;
  cfg.module_end = 1;  // empty
  EXPECT_THROW(cascade::CascadeLocalTrainer(cas, cfg), std::invalid_argument);
  cfg.module_end = cas.num_modules() + 1;  // out of range
  EXPECT_THROW(cascade::CascadeLocalTrainer(cas, cfg), std::out_of_range);
}

TEST(Integration, EnvRejectsDistillationWithoutClients) {
  const auto data = tiny_data();
  data::PartitionConfig pcfg;
  pcfg.num_clients = 0;
  EXPECT_THROW(data::partition_non_iid(data.train, pcfg), std::invalid_argument);
}

TEST(Integration, EmptyShardIsRejectedByBatchIterator) {
  data::Dataset empty;
  empty.num_classes = 2;
  Rng rng(1);
  EXPECT_THROW(data::BatchIterator(empty, 4, rng), std::invalid_argument);
}

}  // namespace
}  // namespace fp
