#include <gtest/gtest.h>

#include "baselines/distillation.hpp"
#include "baselines/fedrbn.hpp"
#include "baselines/jfat.hpp"
#include "baselines/partial_training.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"

namespace fp::baselines {
namespace {

class BaselineFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig dcfg = data::synth_cifar_config();
    dcfg.train_size = 480;
    dcfg.test_size = 120;
    dcfg.num_classes = 4;
    data_ = data::make_synthetic(dcfg);

    fl_.num_clients = 6;
    fl_.clients_per_round = 3;
    fl_.local_iters = 4;
    fl_.batch_size = 16;
    fl_.pgd_steps = 2;
    fl_.lr0 = 0.05f;
    fl_.sgd.lr = 0.05f;
    fl_.rounds = 10;

    fed::FedEnvConfig ecfg;
    ecfg.fl = fl_;
    ecfg.with_public_set = true;
    env_ = std::make_unique<fed::FedEnv>(
        fed::make_env(data_, ecfg, models::vgg16_spec(32, 10)));
    spec_ = models::tiny_vgg_spec(16, 4, 4);
    mem_scale_ = static_cast<double>(sys::module_train_mem_bytes(
                     spec_, 0, spec_.atoms.size(), 16, false)) /
                 (2.0 * static_cast<double>(1ull << 30));
  }
  data::TrainTest data_;
  fed::FlConfig fl_;
  std::unique_ptr<fed::FedEnv> env_;
  sys::ModelSpec spec_;
  double mem_scale_ = 1.0;
};

TEST_F(BaselineFixture, JFatLearnsAboveChance) {
  JFatConfig cfg;
  cfg.fl = fl_;
  cfg.model_spec = spec_;
  JFat algo(*env_, cfg);
  algo.run(/*eval_every=*/0);
  ASSERT_FALSE(algo.history().empty());
  EXPECT_GT(algo.history().back().clean_acc, 0.4);  // chance 0.25
  EXPECT_GT(algo.sim_time().total(), 0.0);
  // jFAT trains the full paper-size model on constrained devices: the cost
  // model must show swapping (data-access time).
  EXPECT_GT(algo.sim_time().access_s, 0.0);
}

TEST_F(BaselineFixture, PartialTrainingSchemesRunAndLearn) {
  for (const auto scheme :
       {models::SliceScheme::kStatic, models::SliceScheme::kRandom,
        models::SliceScheme::kRolling}) {
    PartialTrainingConfig cfg;
    cfg.fl = fl_;
    cfg.fl.rounds = 16;
    cfg.model_spec = spec_;
    cfg.scheme = scheme;
    // Width ratios spread across (min_ratio, 1]: most clients train genuine
    // sub-models, a few the full width.
    cfg.device_mem_scale = mem_scale_ * 4.0;
    cfg.fl.rounds = 24;
    PartialTrainingFAT algo(*env_, cfg);
    algo.run(/*eval_every=*/8);
    // Random-mask averaging is noisy at smoke scale (the paper trains 1000
    // rounds); require that the method clearly learns at some point.
    double best = 0.0;
    for (const auto& r : algo.history()) best = std::max(best, r.clean_acc);
    EXPECT_GT(best, 0.3) << algo.name() << " failed to learn";
    // Sub-models mostly avoid swapping: data access stays a minor share of
    // the round time (the min_ratio floor leaves residual swap on severely
    // starved clients — avail memory can be near zero, paper §B.1), unlike
    // jFAT where access dominates (see JFatLearnsAboveChance).
    EXPECT_LT(algo.sim_time().access_s, algo.sim_time().compute_s)
        << algo.name();
  }
}

TEST_F(BaselineFixture, PartialTrainingRatioClamps) {
  PartialTrainingConfig cfg;
  cfg.fl = fl_;
  cfg.model_spec = spec_;
  cfg.min_ratio = 0.25;
  PartialTrainingFAT algo(*env_, cfg);
  EXPECT_DOUBLE_EQ(algo.ratio_for_mem(0), 0.25);
  EXPECT_DOUBLE_EQ(algo.ratio_for_mem(1ll << 60), 1.0);
}

TEST_F(BaselineFixture, DistillationFedDfRunsAndLearns) {
  DistillationConfig cfg;
  cfg.fl = fl_;
  cfg.family = {models::tiny_cnn_spec(16, 4, 4), models::tiny_vgg_spec(16, 4, 4)};
  cfg.distill_iters = 4;
  cfg.device_mem_scale = mem_scale_;
  DistillationFAT algo(*env_, cfg);
  algo.run();
  // KD-FAT is the paper's weakest family (Table 2: far below every other
  // method); at smoke scale we only require it not to collapse below chance.
  EXPECT_GE(algo.history().back().clean_acc, 0.2);
}

TEST_F(BaselineFixture, DistillationFedEtUsesConfidenceWeights) {
  DistillationConfig cfg;
  cfg.fl = fl_;
  cfg.family = {models::tiny_cnn_spec(16, 4, 4), models::tiny_vgg_spec(16, 4, 4)};
  cfg.ensemble_transfer = true;
  cfg.distill_iters = 4;
  cfg.device_mem_scale = mem_scale_;
  DistillationFAT algo(*env_, cfg);
  EXPECT_EQ(algo.name(), "FedET-AT");
  algo.run();
  EXPECT_GT(algo.history().back().clean_acc, 0.25);
}

TEST_F(BaselineFixture, DistillationArchSelectionIsMemoryMonotone) {
  DistillationConfig cfg;
  cfg.fl = fl_;
  cfg.family = {models::tiny_cnn_spec(16, 4, 4), models::tiny_vgg_spec(16, 4, 4)};
  cfg.device_mem_scale = 1.0;
  DistillationFAT algo(*env_, cfg);
  EXPECT_EQ(algo.arch_for_mem(0), 0u);
  EXPECT_EQ(algo.arch_for_mem(1ll << 60), 1u);
}

TEST_F(BaselineFixture, DistillationRequiresPublicSet) {
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl_;
  ecfg.with_public_set = false;
  auto env2 = fed::make_env(data_, ecfg, models::vgg16_spec(32, 10));
  DistillationConfig cfg;
  cfg.fl = fl_;
  cfg.family = {models::tiny_cnn_spec(16, 4, 4)};
  EXPECT_THROW(DistillationFAT(env2, cfg), std::invalid_argument);
}

TEST_F(BaselineFixture, FedRbnHighCleanAccuracy) {
  FedRbnConfig cfg;
  cfg.fl = fl_;
  cfg.model_spec = spec_;
  // Budget so that AT fits only when the drawn availability exceeds ~0.3 GB
  // (top of the CIFAR pool's 0-0.8 GB range): a minority of clients do AT.
  const auto full = sys::module_train_mem_bytes(spec_, 0, spec_.atoms.size(),
                                                fl_.batch_size, false);
  cfg.device_mem_scale =
      static_cast<double>(full) / (0.3 * static_cast<double>(1ull << 30));
  FedRbn algo(*env_, cfg);
  algo.run();
  EXPECT_GT(algo.history().back().clean_acc, 0.4);
  EXPECT_GT(algo.at_client_fraction(), 0.0);
  EXPECT_LT(algo.at_client_fraction(), 1.0);
}

TEST_F(BaselineFixture, FedAvgVariantSkipsAttack) {
  JFatConfig cfg;
  cfg.fl = fl_;
  cfg.model_spec = spec_;
  cfg.adversarial = false;
  JFat algo(*env_, cfg);
  EXPECT_EQ(algo.name(), "FedAvg");
  algo.run();
  EXPECT_GT(algo.history().back().clean_acc, 0.4);
}

}  // namespace
}  // namespace fp::baselines
