#include <gtest/gtest.h>

#include "fed/aggregator.hpp"
#include "models/slicing.hpp"
#include "models/zoo.hpp"

namespace fp::models {
namespace {

TEST(Slicing, FullRatioIsIdentity) {
  Rng rng(41);
  const auto spec = tiny_vgg_spec(16, 10, 4);
  const auto plan = make_slice_plan(spec, 1.0, SliceScheme::kStatic, 0, rng);
  EXPECT_EQ(plan.sliced_spec.total_params(), spec.total_params());
  BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
  gather_weights(spec, plan, global, sliced);
  EXPECT_EQ(sliced.save_all(), global.save_all());
}

TEST(Slicing, HalfRatioShrinksParams) {
  Rng rng(42);
  const auto spec = tiny_vgg_spec(16, 10, 8);
  const auto plan = make_slice_plan(spec, 0.5, SliceScheme::kStatic, 0, rng);
  // Width-r slicing shrinks conv params about r^2.
  const double frac = static_cast<double>(plan.sliced_spec.total_params()) /
                      static_cast<double>(spec.total_params());
  EXPECT_LT(frac, 0.45);
  EXPECT_GT(frac, 0.15);
  // Output layer keeps all classes.
  EXPECT_EQ(plan.sliced_spec.atoms.back().layers.back().out_channels, 10);
}

TEST(Slicing, SlicedModelForwardWorks) {
  Rng rng(43);
  for (const auto scheme :
       {SliceScheme::kStatic, SliceScheme::kRandom, SliceScheme::kRolling}) {
    const auto spec = tiny_vgg_spec(16, 10, 8);
    const auto plan = make_slice_plan(spec, 0.5, scheme, 3, rng);
    BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
    gather_weights(spec, plan, global, sliced);
    const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
    const Tensor y = sliced.forward(x, true);
    EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 10}));
  }
}

TEST(Slicing, ResidualModelSliceKeepsIdentityAlignment) {
  Rng rng(44);
  const auto spec = tiny_resnet_spec(16, 10, 8);
  const auto plan = make_slice_plan(spec, 0.5, SliceScheme::kStatic, 0, rng);
  BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
  gather_weights(spec, plan, global, sliced);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  EXPECT_NO_THROW(sliced.forward(x, true));
  // Identity blocks must keep in == out channel sets: sliced spec block 1
  // (identity) input width equals its output width.
  const auto& bb1 = plan.sliced_spec.atoms[1];
  EXPECT_EQ(bb1.layers[0].in_channels, bb1.layers[4].out_channels);
}

TEST(Slicing, RollingWindowAdvancesWithRound) {
  Rng rng(45);
  const auto spec = tiny_vgg_spec(16, 10, 8);
  const auto p0 = make_slice_plan(spec, 0.5, SliceScheme::kRolling, 0, rng);
  const auto p1 = make_slice_plan(spec, 0.5, SliceScheme::kRolling, 3, rng);
  EXPECT_NE(p0.atoms[0].layers[0].out, p1.atoms[0].layers[0].out);
}

TEST(Slicing, StaticSchemeIsPrefix) {
  Rng rng(46);
  const auto spec = tiny_vgg_spec(16, 10, 8);
  const auto plan = make_slice_plan(spec, 0.5, SliceScheme::kStatic, 0, rng);
  const auto& out = plan.atoms[0].layers[0].out;
  ASSERT_EQ(out.size(), 4u);  // half of width 8
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i));
}

TEST(Slicing, GatherScatterRoundTripIsExactOnKeptChannels) {
  Rng rng(47);
  const auto spec = tiny_vgg_spec(16, 10, 4);
  const auto plan = make_slice_plan(spec, 0.5, SliceScheme::kRolling, 7, rng);
  BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
  gather_weights(spec, plan, global, sliced);

  // Scatter the (untrained) sliced model back with weight 1 and average:
  // kept channels must reproduce the global values they were gathered from.
  fed::PartialAccumulator acc(global);
  acc.reset();
  for (std::size_t a = 0; a < global.num_atoms(); ++a)
    acc.add_sliced_atom(plan, sliced, a, 1.0f);
  const auto before = global.save_all();
  acc.finalize_into(global);
  const auto after = global.save_all();
  EXPECT_EQ(before.size(), after.size());
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 1e-6f) << "blob index " << i;
}

TEST(Slicing, PartialAverageOnlyTouchesTrainedChannels) {
  Rng rng(48);
  const auto spec = tiny_cnn_spec(16, 10, 8);
  const auto plan = make_slice_plan(spec, 0.25, SliceScheme::kStatic, 0, rng);
  BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
  gather_weights(spec, plan, global, sliced);
  // "Train": shift every sliced parameter by +1.
  for (auto* p : sliced.parameters_range(0, sliced.num_atoms()))
    p->add_scalar_(1.0f);

  fed::PartialAccumulator acc(global);
  acc.reset();
  for (std::size_t a = 0; a < global.num_atoms(); ++a)
    acc.add_sliced_atom(plan, sliced, a, 2.0f);  // weight irrelevant for mean
  const auto before = global.save_all();
  acc.finalize_into(global);
  const auto after = global.save_all();
  std::size_t changed = 0, unchanged = 0;
  for (std::size_t i = 0; i < before.size(); ++i)
    (std::abs(after[i] - before[i]) > 1e-6f ? changed : unchanged)++;
  EXPECT_GT(changed, 0u);
  EXPECT_GT(unchanged, 0u);  // unsliced channels must stay untouched
}

TEST(Slicing, MinimumOneChannelKept) {
  Rng rng(49);
  const auto spec = tiny_cnn_spec(16, 10, 4);
  const auto plan = make_slice_plan(spec, 0.01, SliceScheme::kStatic, 0, rng);
  for (const auto& atom : plan.atoms)
    for (const auto& layer : atom.layers)
      if (!layer.out.empty()) EXPECT_GE(layer.out.size(), 1u);
  BuiltModel sliced(plan.sliced_spec, rng);
  const Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  EXPECT_NO_THROW(sliced.forward(x, false));
}

}  // namespace
}  // namespace fp::models
