#include <gtest/gtest.h>

#include "cascade/cascade.hpp"
#include "cascade/partitioner.hpp"
#include "cascade/trainer.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "tensor/ops.hpp"

namespace fp::cascade {
namespace {

TEST(Partitioner, CoversAllAtomsContiguously) {
  const auto spec = models::vgg16_spec(32, 10);
  const auto p = partition_model(spec, 60ll << 20, 64);
  ASSERT_FALSE(p.modules.empty());
  EXPECT_EQ(p.modules.front().begin, 0u);
  EXPECT_EQ(p.modules.back().end, spec.atoms.size());
  EXPECT_TRUE(p.modules.back().is_last);
  for (std::size_t m = 0; m + 1 < p.modules.size(); ++m) {
    EXPECT_EQ(p.modules[m].end, p.modules[m + 1].begin);
    EXPECT_FALSE(p.modules[m].is_last);
    EXPECT_GT(p.modules[m].num_atoms(), 0u);
  }
}

TEST(Partitioner, RespectsRminWhenFeasible) {
  const auto spec = models::vgg16_spec(32, 10);
  const auto p = partition_model(spec, 60ll << 20, 64);
  for (std::size_t m = 0; m < p.num_modules(); ++m) {
    // Single-atom modules may exceed Rmin (indivisible); multi-atom modules
    // must fit by construction of the greedy packing.
    if (p.modules[m].num_atoms() > 1)
      EXPECT_LE(module_mem_bytes(spec, p, m), p.rmin_bytes) << "module " << m;
  }
}

TEST(Partitioner, HugeBudgetGivesSingleModule) {
  const auto spec = models::vgg16_spec(32, 10);
  const auto p = partition_model(spec, 1ll << 40, 64);
  EXPECT_EQ(p.num_modules(), 1u);
  EXPECT_TRUE(p.modules[0].is_last);
}

TEST(Partitioner, ModuleCountDecreasesWithBudget) {
  const auto spec = models::resnet34_spec(224, 256);
  std::size_t prev = 1000;
  for (const double frac : {0.1, 0.2, 0.5, 1.0}) {
    const auto full = sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 32,
                                                  false);
    const auto p = partition_model(
        spec, static_cast<std::int64_t>(frac * static_cast<double>(full)), 32);
    EXPECT_LE(p.num_modules(), prev);
    prev = p.num_modules();
  }
  EXPECT_EQ(prev, 1u);
}

TEST(Partitioner, PaperRminGivesAboutSevenModules) {
  // Paper §7.2: Rmin = 60 MB (VGG16@CIFAR, B=64) / 224 MB (ResNet34@Caltech,
  // B=32) both give 7 modules. Our activation accounting differs in detail
  // (DESIGN.md §5), so accept a small band around 7.
  const auto vgg = partition_model(models::vgg16_spec(32, 10), 60ll << 20, 64);
  EXPECT_GE(vgg.num_modules(), 4u);
  EXPECT_LE(vgg.num_modules(), 11u);
  const auto res =
      partition_model(models::resnet34_spec(224, 256), 224ll << 20, 32);
  EXPECT_GE(res.num_modules(), 4u);
  EXPECT_LE(res.num_modules(), 16u);
}

TEST(Partitioner, FormatProducesOneRowPerModule) {
  const auto spec = models::tiny_vgg_spec(16, 10, 4);
  const auto p = partition_model(spec, 1ll << 18, 8);
  const std::string table = format_partition(spec, p);
  std::size_t rows = 0;
  for (const char c : table) rows += c == '\n';
  EXPECT_EQ(rows, p.num_modules() + 2);  // header lines + one row each
}

class CascadeFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig dcfg = data::synth_cifar_config();
    dcfg.train_size = 256;
    dcfg.test_size = 96;
    dcfg.num_classes = 4;
    data_ = data::make_synthetic(dcfg);
    spec_ = models::tiny_vgg_spec(16, 4, 4);
    rng_ = Rng(71);
    model_ = std::make_unique<models::BuiltModel>(spec_, rng_);
    // Force a multi-module partition.
    const auto full =
        sys::module_train_mem_bytes(spec_, 0, spec_.atoms.size(), 16, false);
    partition_ = partition_model(spec_, full / 3, 16);
    cascade_ = std::make_unique<CascadeState>(*model_, partition_, rng_);
  }
  data::TrainTest data_;
  sys::ModelSpec spec_;
  Rng rng_{71};
  std::unique_ptr<models::BuiltModel> model_;
  Partition partition_;
  std::unique_ptr<CascadeState> cascade_;
};

TEST_F(CascadeFixture, AuxHeadsExistExceptLast) {
  ASSERT_GE(cascade_->num_modules(), 2u);
  for (std::size_t m = 0; m + 1 < cascade_->num_modules(); ++m)
    EXPECT_NE(cascade_->aux_head(m), nullptr);
  EXPECT_EQ(cascade_->aux_head(cascade_->num_modules() - 1), nullptr);
}

TEST_F(CascadeFixture, PrefixLogitsHaveClassDimension) {
  const auto b = data::take_batch(data_.test, 0, 8);
  for (std::size_t m = 0; m < cascade_->num_modules(); ++m) {
    const Tensor logits = cascade_->prefix_logits(m, b.x, false);
    EXPECT_EQ(logits.shape(), (std::vector<std::int64_t>{8, 4}));
  }
}

TEST_F(CascadeFixture, ModuleBlobRoundTrip) {
  const auto blob = cascade_->save_module(0);
  EXPECT_FALSE(blob.empty());
  cascade_->load_module(0, blob);
  EXPECT_EQ(cascade_->save_module(0), blob);
  const auto aux = cascade_->save_aux(0);
  EXPECT_FALSE(aux.empty());
  cascade_->load_aux(0, aux);
  // Last module has no aux head: empty blob round-trips, others throw.
  EXPECT_TRUE(cascade_->save_aux(cascade_->num_modules() - 1).empty());
  EXPECT_THROW(cascade_->load_module(0, nn::ParamBlob(3)), std::invalid_argument);
}

TEST_F(CascadeFixture, TrainerReducesEarlyExitLoss) {
  LocalTrainConfig cfg;
  cfg.module_begin = 0;
  cfg.module_end = 1;
  cfg.mu = 1e-5f;
  cfg.eps_in = 4.0f / 255.0f;
  cfg.pgd_steps = 3;
  cfg.sgd = {0.05f, 0.9f, 1e-4f};
  CascadeLocalTrainer trainer(*cascade_, cfg);
  Rng rng(72);
  data::BatchIterator batches(data_.train, 16, rng);
  float first = 0, last = 0;
  for (int i = 0; i < 40; ++i) {
    const float loss = trainer.train_batch(batches.next(), rng);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST_F(CascadeFixture, StrongConvexityTermEntersLoss) {
  LocalTrainConfig small, big;
  small.module_begin = big.module_begin = 0;
  small.module_end = big.module_end = 1;
  small.mu = 0.0f;
  big.mu = 1.0f;  // exaggerated so the reg term dominates
  small.adversarial = big.adversarial = false;
  CascadeLocalTrainer ts(*cascade_, small), tb(*cascade_, big);
  const auto b = data::take_batch(data_.train, 0, 16);
  Tensor g1, g2;
  const float l_small = ts.loss_grad(b.x, b.y, &g1, false, false);
  const float l_big = tb.loss_grad(b.x, b.y, &g2, false, false);
  EXPECT_GT(l_big, l_small);          // mu/2 ||z||^2 added
  EXPECT_GT(g2.sub(g1).abs_max(), 0); // and it changes the gradient
}

TEST_F(CascadeFixture, JointMultiModuleTrainingUsesLastAuxHead) {
  ASSERT_GE(cascade_->num_modules(), 2u);
  LocalTrainConfig cfg;
  cfg.module_begin = 0;
  cfg.module_end = 2;  // prophet client trains two modules jointly (Eq. 13)
  cfg.pgd_steps = 2;
  cfg.eps_in = 4.0f / 255.0f;
  CascadeLocalTrainer trainer(*cascade_, cfg);
  EXPECT_EQ(trainer.atom_begin(), partition_.modules[0].begin);
  EXPECT_EQ(trainer.atom_end(), partition_.modules[1].end);
  Rng rng(73);
  data::BatchIterator batches(data_.train, 16, rng);
  EXPECT_GT(trainer.train_batch(batches.next(), rng), 0.0f);
}

TEST_F(CascadeFixture, MeasureOutputPerturbationIsPositiveAndEpsMonotone) {
  LocalTrainConfig cfg;
  cfg.module_begin = 0;
  cfg.module_end = 1;
  cfg.pgd_steps = 5;
  cfg.eps_in = 2.0f / 255.0f;
  CascadeLocalTrainer t_small(*cascade_, cfg);
  cfg.eps_in = 16.0f / 255.0f;
  CascadeLocalTrainer t_big(*cascade_, cfg);
  Rng rng(74);
  const auto b = data::take_batch(data_.train, 0, 16);
  const auto s = t_small.measure_output_perturbation(b, rng);
  const auto g = t_big.measure_output_perturbation(b, rng);
  EXPECT_GT(s.mean_l2, 0.0);
  EXPECT_GE(s.max_l2, s.mean_l2);
  EXPECT_GT(g.mean_l2, s.mean_l2);  // bigger input ball, bigger output swing
  EXPECT_GT(s.dim, 0);
  EXPECT_NEAR(s.mean_per_dim, s.mean_l2 / std::sqrt(static_cast<double>(s.dim)),
              1e-9);
}

TEST_F(CascadeFixture, SecondModuleTrainsOnFrozenFeatures) {
  ASSERT_GE(cascade_->num_modules(), 2u);
  LocalTrainConfig cfg;
  cfg.module_begin = 1;
  cfg.module_end = 2;
  cfg.pgd_steps = 2;
  cfg.eps_in = 0.5f;  // feature-space l2 ball
  CascadeLocalTrainer trainer(*cascade_, cfg);
  // Snapshot module 0: training module 1 must not change it.
  const auto mod0_before = cascade_->save_module(0);
  Rng rng(75);
  data::BatchIterator batches(data_.train, 16, rng);
  for (int i = 0; i < 3; ++i) trainer.train_batch(batches.next(), rng);
  EXPECT_EQ(cascade_->save_module(0), mod0_before);
}

TEST_F(CascadeFixture, EvaluatePrefixReturnsSaneAccuracies) {
  PrefixEvalConfig cfg;
  cfg.max_samples = 64;
  cfg.pgd_steps = 3;
  const auto acc = evaluate_prefix(*cascade_, 0, data_.test, cfg);
  EXPECT_GE(acc.clean, 0.0);
  EXPECT_LE(acc.clean, 1.0);
  EXPECT_GE(acc.adv, 0.0);
  EXPECT_LE(acc.adv, acc.clean + 0.35);  // adv can't wildly exceed clean
}

}  // namespace
}  // namespace fp::cascade
