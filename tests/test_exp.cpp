// The declarative experiment API (src/exp/, DESIGN.md §7).
//
// * Registry completeness: all eight method names resolve and train, and the
//   registry-constructed run is HASH-IDENTICAL to direct construction of the
//   method's config (the pre-refactor bench_common wiring) on the same spec.
// * Spec round-trip: parse -> serialize -> reparse equality, nested and
//   dotted config forms, CLI overrides.
// * Strict keys: unknown keys/values throw with a nearest-name suggestion.
// * Reproduction artifact: the shipped bench_comm cell config equals the
//   programmatically-built scenario spec, and FP_BENCH_OUT exports a
//   trajectory CSV plus the resolved spec JSON.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "baselines/distillation.hpp"
#include "baselines/fedrbn.hpp"
#include "baselines/jfat.hpp"
#include "baselines/partial_training.hpp"
#include "bench_common.hpp"
#include "blob_hash.hpp"
#include "exp/runner.hpp"
#include "fedprophet/fedprophet.hpp"

namespace fp {
namespace {

using test::fnv1a;

/// A tiny fully-explicit scenario (no FAST-dependent autos except eval, which
/// the hash comparisons never invoke).
exp::ExperimentSpec tiny_spec(const std::string& method) {
  exp::ExperimentSpec spec;
  spec.method = method;
  for (const char* kv : {
           "workload=cifar", "model.width=4", "model.classes=4",
           "data.train_size=240", "data.test_size=80", "fl.num_clients=6",
           "fl.clients_per_round=3", "fl.local_iters=2", "fl.batch_size=16",
           "fl.pgd_steps=2", "fl.rounds=2", "fl.lr0=0.05", "fl.sgd.lr=0.05",
           "fl.seed=123", "fp.rounds_per_module=2", "fp.eval_every=2",
           "fp.val_samples=32",
       })
    exp::apply_override(spec, kv);
  return spec;
}

/// Direct construction of each method — the pre-registry run_method wiring —
/// returning the final aggregate hash.
std::uint64_t train_direct(const std::string& name, exp::Setup& s) {
  const auto& fl = s.spec.fl;
  if (name == "jFAT") {
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = s.model;
    baselines::JFat algo(s.env, cfg);
    algo.run();
    return fnv1a(algo.global_model().save_all());
  }
  if (name == "FedDF-AT" || name == "FedET-AT") {
    baselines::DistillationConfig cfg;
    cfg.fl = fl;
    cfg.family = s.kd_family;
    cfg.ensemble_transfer = (name == "FedET-AT");
    cfg.distill_iters = 8;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::DistillationFAT algo(s.env, cfg);
    algo.run();
    return fnv1a(algo.global_model().save_all());
  }
  if (name == "HeteroFL-AT" || name == "FedDrop-AT" || name == "FedRolex-AT") {
    baselines::PartialTrainingConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = s.model;
    cfg.scheme = name == "HeteroFL-AT" ? models::SliceScheme::kStatic
                 : name == "FedDrop-AT" ? models::SliceScheme::kRandom
                                        : models::SliceScheme::kRolling;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::PartialTrainingFAT algo(s.env, cfg);
    algo.run();
    return fnv1a(algo.global_model().save_all());
  }
  if (name == "FedRBN") {
    baselines::FedRbnConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = s.model;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::FedRbn algo(s.env, cfg);
    algo.run();
    return fnv1a(algo.global_model().save_all());
  }
  if (name == "FedProphet") {
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = s.model;
    cfg.rmin_bytes = s.rmin;
    cfg.rounds_per_module = s.spec.fp_rounds_per_module;
    cfg.eval_every = s.spec.fp_eval_every;
    cfg.device_mem_scale = s.device_mem_scale;
    cfg.val_samples = s.spec.fp_val_samples;
    fedprophet::FedProphet algo(s.env, cfg);
    algo.train();
    return fnv1a(algo.global_model().save_all());
  }
  ADD_FAILURE() << "no direct constructor for " << name;
  return 0;
}

TEST(MethodRegistry, AllEightMethodsResolveAndMatchDirectConstruction) {
  const std::vector<std::string> expected = {
      "jFAT",        "FedDF-AT",   "FedET-AT", "HeteroFL-AT",
      "FedDrop-AT",  "FedRolex-AT", "FedRBN",  "FedProphet"};
  EXPECT_EQ(exp::method_registry().names(), expected);

  for (const auto& name : expected) {
    // Fresh setups for each path: training consumes env RNG state.
    auto direct_setup = exp::build_setup(tiny_spec(name));
    const std::uint64_t direct_hash = train_direct(name, direct_setup);

    auto registry_setup = exp::build_setup(tiny_spec(name));
    exp::MethodRun run =
        exp::method_registry().resolve(name)(registry_setup);
    run.train();
    const std::uint64_t registry_hash =
        fnv1a(run.algo->global_model().save_all());
    EXPECT_EQ(registry_hash, direct_hash)
        << name << ": registry-driven run diverged from direct construction";
    EXPECT_GT(run.algo->total_stats().bytes_up, 0) << name << " trained nothing";
  }
}

TEST(ExperimentSpec, RoundTripsThroughJson) {
  exp::ExperimentSpec spec = tiny_spec("FedProphet");
  exp::apply_override(spec, "comm.codec=topk");
  exp::apply_override(spec, "fl.scheduler=async");
  exp::apply_override(spec, "async.dropout_prob=0.125");
  exp::apply_override(spec, "mem.enforce_budget=1");
  const std::string json = exp::spec_to_json(spec);
  const exp::ExperimentSpec reparsed = exp::spec_from_json(json);
  EXPECT_TRUE(exp::specs_equal(spec, reparsed));
  EXPECT_EQ(json, exp::spec_to_json(reparsed));
}

TEST(ExperimentSpec, ComputePrecisionRoundTripsAndValidates) {
  exp::ExperimentSpec spec = tiny_spec("FedProphet");
  EXPECT_EQ(exp::get_key(spec, "compute.precision"), "fp32");  // default
  EXPECT_EQ(exp::get_key(spec, "compute.winograd"), "false");
  exp::apply_override(spec, "compute.precision=int8");
  exp::apply_override(spec, "compute.winograd=1");
  EXPECT_EQ(spec.fl.compute.precision, compute::Precision::kInt8);
  EXPECT_TRUE(spec.fl.compute.winograd);
  const std::string json = exp::spec_to_json(spec);
  const exp::ExperimentSpec reparsed = exp::spec_from_json(json);
  EXPECT_TRUE(exp::specs_equal(spec, reparsed));
  EXPECT_EQ(reparsed.fl.compute.precision, compute::Precision::kInt8);
  EXPECT_THROW(exp::apply_override(spec, "compute.precision=int4"),
               exp::SpecError);
}

TEST(ExperimentSpec, ResolvedSpecRoundTripsAndIsIdempotent) {
  exp::ExperimentSpec spec = tiny_spec("jFAT");
  exp::resolve_spec(spec, /*fast=*/false);
  const std::string once = exp::spec_to_json(spec);
  exp::resolve_spec(spec, /*fast=*/false);
  EXPECT_EQ(once, exp::spec_to_json(spec));
  // Resolution under a different FAST setting must not change an
  // already-resolved spec: every auto is concrete.
  exp::resolve_spec(spec, /*fast=*/true);
  EXPECT_EQ(once, exp::spec_to_json(spec));
  const exp::ExperimentSpec reparsed = exp::spec_from_json(once);
  EXPECT_TRUE(exp::specs_equal(spec, reparsed));
}

TEST(ExperimentSpec, NestedAndDottedConfigFormsAgree) {
  exp::ExperimentSpec nested = exp::spec_from_json(
      "{\"fl\": {\"num_clients\": 7, \"sgd\": {\"lr\": 0.125}},"
      " \"comm\": {\"codec\": \"int8\"}}");
  exp::ExperimentSpec dotted = exp::spec_from_json(
      "{\"fl.num_clients\": 7, \"fl.sgd.lr\": 0.125, \"comm.codec\": \"int8\"}");
  EXPECT_TRUE(exp::specs_equal(nested, dotted));
  EXPECT_EQ(nested.fl.num_clients, 7);
  EXPECT_EQ(nested.fl.sgd.lr, 0.125f);
  EXPECT_EQ(nested.fl.comm.codec, comm::CodecKind::kInt8);
}

TEST(ExperimentSpec, UnknownKeysAndValuesSuggestNearestName) {
  exp::ExperimentSpec spec;
  try {
    exp::set_key(spec, "fl.num_client", "5");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("fl.num_clients"), std::string::npos)
        << e.what();
  }
  try {
    exp::set_key(spec, "method", "FedProfet");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("FedProphet"), std::string::npos)
        << e.what();
  }
  try {
    exp::set_key(spec, "fl.scheduler", "asink");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("async"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(exp::set_key(spec, "fl.batch_size", "sixteen"), exp::SpecError);
  EXPECT_THROW(exp::apply_json(spec, "{\"fl\": [1, 2]}"), exp::SpecError);
  // Out-of-range integers must fail loudly, never silently clamp — a clamped
  // value would break the exported spec's exact-reproduction guarantee.
  EXPECT_THROW(exp::set_key(spec, "fl.seed", "-1"), exp::SpecError);
  EXPECT_THROW(exp::set_key(spec, "fl.batch_size", "99999999999999999999"),
               exp::SpecError);
  EXPECT_THROW(exp::set_key(spec, "eval.pgd_steps", "3000000000"),
               exp::SpecError);
}

TEST(ExperimentSpec, ShippedCommCellConfigMatchesScenarioBuilder) {
  // The committed reproduction artifact for one bench_comm cell must equal
  // the spec bench_comm builds programmatically (resolved at full scale).
  exp::ExperimentSpec cell =
      bench::comm_scenario_spec("int8", "sync", /*sync_rounds=*/12);
  exp::resolve_spec(cell, /*fast=*/false);

  const std::string path =
      std::string(FP_SOURCE_DIR) + "/configs/bench_comm_int8_sync.json";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << "missing " << path;
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const exp::ExperimentSpec from_file = exp::spec_from_json(text);
  EXPECT_TRUE(exp::specs_equal(cell, from_file))
      << "configs/bench_comm_int8_sync.json drifted from "
         "bench_common::comm_scenario_spec; regenerate with\n"
         "  fp_run --config configs/bench_comm_int8_sync.json --dump-spec "
         "configs/bench_comm_int8_sync.json";
}

TEST(RunArtifacts, ExportsTrajectoryAndResolvedSpec) {
  const auto dir = std::filesystem::temp_directory_path() / "fp_exp_artifacts";
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  ASSERT_EQ(setenv("FP_BENCH_OUT", dir.c_str(), 1), 0);

  auto setup = exp::build_setup(tiny_spec("jFAT"));
  const exp::RunResult r = exp::run_on_setup(setup, "tiny-exp");
  unsetenv("FP_BENCH_OUT");

  ASSERT_FALSE(r.exported_csv.empty());
  EXPECT_GT(std::filesystem::file_size(r.exported_csv), 0u);
  const std::string spec_path = (dir / "tiny-exp.spec.json").string();
  ASSERT_TRUE(std::filesystem::exists(spec_path));
  std::ifstream in(spec_path);
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  // The exported spec is fully resolved and reproduces the run's config.
  const exp::ExperimentSpec reparsed = exp::spec_from_json(text);
  EXPECT_TRUE(exp::specs_equal(reparsed, setup.spec));
  std::filesystem::remove_all(dir);
}

TEST(Registries, ModelWorkloadSchedulerCodecEntriesResolve) {
  EXPECT_EQ(exp::model_registry().resolve("tiny_vgg")({16, 4, 4}).atoms.size(),
            exp::build_setup(tiny_spec("jFAT")).model.atoms.size());
  EXPECT_THROW(exp::model_registry().resolve("tiny_vg"), exp::SpecError);
  EXPECT_EQ(exp::workload_registry().resolve("caltech").paper_batch, 32);
  EXPECT_EQ(exp::scheduler_registry().resolve("async"),
            fed::SchedulerKind::kAsync);
  // Codec entries build the same wire codec the engine channel would.
  const auto& entry = exp::codec_registry().resolve("fp16");
  comm::CommConfig ccfg;
  const auto codec = entry.make(ccfg);
  ASSERT_NE(codec, nullptr);
  EXPECT_EQ(codec->kind(), comm::CodecKind::kFp16);
}

}  // namespace
}  // namespace fp
