#include <gtest/gtest.h>

#include "models/built_model.hpp"
#include "models/zoo.hpp"
#include "nn/norm.hpp"

namespace fp::models {
namespace {

TEST(Zoo, Vgg16ParamCountMatchesReference) {
  // VGG16 for 32x32 with a 512-512-10 classifier: conv stack 14.71M +
  // classifier ~0.53M (the canonical cifar-vgg16 configuration).
  const auto spec = vgg16_spec(32, 10);
  EXPECT_EQ(spec.atoms.size(), 16u);  // 13 conv atoms + 3 linear atoms
  EXPECT_NEAR(static_cast<double>(spec.total_params()) / 1e6, 15.2, 0.3);
}

TEST(Zoo, Resnet34StructureMatchesPaperTable8) {
  const auto spec = resnet34_spec(224, 256);
  // Conv1 + 16 basic blocks + classifier.
  EXPECT_EQ(spec.atoms.size(), 18u);
  EXPECT_EQ(spec.atoms[1].name, "BasicBlock 1");
  EXPECT_TRUE(spec.atoms[1].residual);
  EXPECT_TRUE(spec.atoms[1].shortcut.empty());   // stage-1 identity block
  EXPECT_FALSE(spec.atoms[4].shortcut.empty());  // stage-2 opener projects
  // ResNet34 has ~21.5M backbone params (classifier here is 512x256).
  EXPECT_NEAR(static_cast<double>(spec.total_params()) / 1e6, 21.4, 0.6);
}

TEST(Zoo, VggSpecShapesChainCorrectly) {
  const auto spec = vgg16_spec(32, 10);
  const auto feat = spec.shape_before(13);  // after all conv atoms
  EXPECT_EQ(feat.c, 512);
  EXPECT_EQ(feat.h, 1);
  EXPECT_EQ(feat.w, 1);
}

TEST(Zoo, FamiliesAreOrderedBySize) {
  EXPECT_LT(cnn3_spec().total_params(), vgg11_spec().total_params());
  EXPECT_LT(vgg11_spec().total_params(), vgg13_spec().total_params());
  EXPECT_LT(vgg13_spec().total_params(), vgg16_spec().total_params());
  EXPECT_LT(resnet10_spec().total_params(), resnet18_spec().total_params());
  EXPECT_LT(resnet18_spec().total_params(), resnet34_spec().total_params());
  EXPECT_LT(cnn4_spec().total_params(), resnet10_spec().total_params());
}

TEST(Zoo, TinyModelsScaleWithWidth) {
  EXPECT_LT(tiny_vgg_spec(16, 10, 4).total_params(),
            tiny_vgg_spec(16, 10, 8).total_params());
  EXPECT_LT(tiny_cnn_spec().total_params(), tiny_vgg_spec().total_params());
}

TEST(BuiltModel, ForwardShapeMatchesSpec) {
  Rng rng(31);
  const auto spec = tiny_vgg_spec(16, 10, 4);
  BuiltModel model(spec, rng);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor y = model.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 10}));
}

TEST(BuiltModel, ParamCountMatchesSpec) {
  Rng rng(32);
  for (const auto& spec : {tiny_vgg_spec(16, 10, 4), tiny_resnet_spec(16, 10, 4),
                           tiny_cnn_spec(16, 10, 4)}) {
    BuiltModel model(spec, rng);
    EXPECT_EQ(model.param_count(), spec.total_params()) << spec.name;
  }
}

TEST(BuiltModel, RangeForwardEqualsFullForward) {
  Rng rng(33);
  const auto spec = tiny_resnet_spec(16, 10, 4);
  BuiltModel model(spec, rng);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor full = model.forward(x, false);
  Tensor mid = model.forward_range(0, 3, x, false);
  mid = model.forward_range(3, model.num_atoms(), mid, false);
  for (std::int64_t i = 0; i < full.numel(); ++i)
    EXPECT_FLOAT_EQ(full[i], mid[i]);
}

TEST(BuiltModel, SaveLoadAllRoundTrip) {
  Rng rng(34);
  const auto spec = tiny_vgg_spec(16, 10, 4);
  BuiltModel a(spec, rng), b(spec, rng);
  const auto blob = a.save_all();
  b.load_all(blob);
  EXPECT_EQ(b.save_all(), blob);
  const Tensor x = Tensor::randn({1, 3, 16, 16}, rng);
  const Tensor ya = a.forward(x, false);
  const Tensor yb = b.forward(x, false);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_FLOAT_EQ(ya[i], yb[i]);
}

TEST(BuiltModel, AtomBlobsPartitionTheFullBlob) {
  Rng rng(35);
  const auto spec = tiny_cnn_spec(16, 10, 4);
  BuiltModel model(spec, rng);
  std::size_t total = 0;
  for (std::size_t a = 0; a < model.num_atoms(); ++a)
    total += model.save_atom(a).size();
  EXPECT_EQ(total, model.save_all().size());
}

TEST(BuiltModel, BnBankSwitchPropagates) {
  Rng rng(36);
  BuiltModel model(tiny_resnet_spec(16, 10, 4), rng);
  model.use_bn_bank(1);
  int bank1 = 0, total = 0;
  for (std::size_t a = 0; a < model.num_atoms(); ++a)
    model.atom(a).for_each_bn([&](nn::BatchNorm2d& bn) {
      ++total;
      bank1 += bn.active_bank() == 1;
    });
  EXPECT_GT(total, 0);
  EXPECT_EQ(bank1, total);
  model.use_bn_bank(0);
}

TEST(BuiltModel, BnTrackingTogglePropagates) {
  Rng rng(37);
  BuiltModel model(tiny_vgg_spec(16, 10, 4), rng);
  model.set_bn_tracking(false);
  const Tensor x = Tensor::randn({4, 3, 16, 16}, rng);
  model.forward(x, true);
  bool any_moved = false;
  for (std::size_t a = 0; a < model.num_atoms(); ++a)
    model.atom(a).for_each_bn([&](nn::BatchNorm2d& bn) {
      for (std::int64_t c = 0; c < bn.channels(); ++c)
        any_moved |= bn.running_mean(0)[c] != 0.0f;
    });
  EXPECT_FALSE(any_moved);
  model.set_bn_tracking(true);
}

TEST(BuiltModel, GradientsFlowThroughWholeNet) {
  Rng rng(38);
  BuiltModel model(tiny_vgg_spec(16, 10, 4), rng);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor y = model.forward(x, true);
  model.zero_grad_range(0, model.num_atoms());
  Tensor g(y.shape());
  g.fill(1.0f);
  const Tensor gx = model.backward_range(0, model.num_atoms(), g);
  EXPECT_EQ(gx.shape(), x.shape());
  double grad_mag = 0;
  for (auto* grad : model.gradients_range(0, model.num_atoms()))
    grad_mag += grad->l2_norm();
  EXPECT_GT(grad_mag, 0.0);
}

}  // namespace
}  // namespace fp::models
