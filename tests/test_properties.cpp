// Property-style parameterized sweeps over the library's core invariants.
#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "cascade/partitioner.hpp"
#include "data/synthetic.hpp"
#include "fedprophet/coordinator.hpp"
#include "models/slicing.hpp"
#include "models/zoo.hpp"
#include "tensor/ops.hpp"

namespace fp {
namespace {

// ---- GEMM: random rectangular shapes against a naive reference -------------

class GemmShapeTest : public ::testing::TestWithParam<int> {};

TEST_P(GemmShapeTest, MatchesNaiveOnRandomShapes) {
  Rng rng(1000 + static_cast<std::uint64_t>(GetParam()));
  const std::int64_t m = 1 + static_cast<std::int64_t>(rng.uniform_int(12));
  const std::int64_t n = 1 + static_cast<std::int64_t>(rng.uniform_int(12));
  const std::int64_t k = 1 + static_cast<std::int64_t>(rng.uniform_int(12));
  const bool ta = rng.uniform() < 0.5, tb = rng.uniform() < 0.5;
  const Tensor a = Tensor::randn({ta ? k : m, ta ? m : k}, rng);
  const Tensor b = Tensor::randn({tb ? n : k, tb ? k : n}, rng);
  Tensor c({m, n});
  gemm(ta, tb, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(ta ? a[p * m + i] : a[i * k + p]) *
               (tb ? b[j * k + p] : b[p * n + j]);
      ASSERT_NEAR(c[i * n + j], acc, 1e-3)
          << "m=" << m << " n=" << n << " k=" << k << " ta=" << ta << " tb=" << tb;
    }
}

INSTANTIATE_TEST_SUITE_P(RandomShapes, GemmShapeTest, ::testing::Range(0, 12));

// ---- PGD: ball membership across the (eps, norm, steps) grid ----------------

struct PgdCase {
  float eps;
  attack::Norm norm;
  int steps;
};

class PgdBallTest : public ::testing::TestWithParam<PgdCase> {};

TEST_P(PgdBallTest, PerturbationStaysInBall) {
  const auto c = GetParam();
  Rng rng(77);
  attack::PgdConfig cfg;
  cfg.epsilon = c.eps;
  cfg.norm = c.norm;
  cfg.steps = c.steps;
  cfg.clip = false;
  const Tensor target = Tensor::randn({3, 12}, rng);
  auto fn = [&target](const Tensor& x, const std::vector<std::int64_t>&,
                      Tensor* g) {
    Tensor diff = x.sub(target);
    if (g) *g = diff.scaled(2.0f);
    return diff.dot(diff);
  };
  const Tensor x = Tensor::randn({3, 12}, rng);
  const Tensor adv = attack::pgd(fn, x, {0, 0, 0}, cfg, rng);
  const Tensor delta = adv.sub(x);
  if (c.norm == attack::Norm::kLinf) {
    EXPECT_LE(delta.abs_max(), c.eps * 1.0001f);
  } else {
    for (const auto norm : delta.row_l2_norms())
      EXPECT_LE(norm, c.eps * 1.0001f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PgdBallTest,
    ::testing::Values(PgdCase{0.01f, attack::Norm::kLinf, 1},
                      PgdCase{0.1f, attack::Norm::kLinf, 5},
                      PgdCase{1.0f, attack::Norm::kLinf, 20},
                      PgdCase{0.05f, attack::Norm::kL2, 1},
                      PgdCase{0.5f, attack::Norm::kL2, 7},
                      PgdCase{2.0f, attack::Norm::kL2, 15}));

// ---- Partitioner: structural invariants across models and budgets -----------

struct PartitionCase {
  int model;      // 0 vgg16, 1 resnet34, 2 tiny_vgg, 3 tiny_resnet, 4 cnn3
  double frac;    // Rmin as a fraction of the full-model memory
  std::int64_t batch;
};

class PartitionPropertyTest : public ::testing::TestWithParam<PartitionCase> {};

sys::ModelSpec model_for(int id) {
  switch (id) {
    case 0: return models::vgg16_spec(32, 10);
    case 1: return models::resnet34_spec(224, 256);
    case 2: return models::tiny_vgg_spec(16, 10, 8);
    case 3: return models::tiny_resnet_spec(16, 10, 8);
    default: return models::cnn3_spec(32, 10);
  }
}

TEST_P(PartitionPropertyTest, StructuralInvariantsHold) {
  const auto c = GetParam();
  const auto spec = model_for(c.model);
  const auto full = sys::module_train_mem_bytes(spec, 0, spec.atoms.size(),
                                                c.batch, false);
  const auto rmin =
      static_cast<std::int64_t>(c.frac * static_cast<double>(full));
  const auto p = cascade::partition_model(spec, rmin, c.batch);

  // Coverage and contiguity.
  ASSERT_FALSE(p.modules.empty());
  EXPECT_EQ(p.modules.front().begin, 0u);
  EXPECT_EQ(p.modules.back().end, spec.atoms.size());
  for (std::size_t m = 0; m + 1 < p.num_modules(); ++m)
    EXPECT_EQ(p.modules[m].end, p.modules[m + 1].begin);
  // Only the last module is flagged last.
  for (std::size_t m = 0; m < p.num_modules(); ++m)
    EXPECT_EQ(p.modules[m].is_last, m + 1 == p.num_modules());
  // Multi-atom modules respect the budget (single atoms are indivisible).
  for (std::size_t m = 0; m < p.num_modules(); ++m)
    if (p.modules[m].num_atoms() > 1)
      EXPECT_LE(cascade::module_mem_bytes(spec, p, m), rmin) << "module " << m;
  // Greedy maximality: merging any two adjacent modules must overflow.
  for (std::size_t m = 0; m + 1 < p.num_modules(); ++m) {
    const bool merged_last = p.modules[m + 1].is_last;
    const auto merged = sys::module_train_mem_bytes(
        spec, p.modules[m].begin, p.modules[m + 1].end, c.batch, !merged_last);
    // The greedy packing extends while the prefix (with aux head) fits; a
    // merged pair must exceed the budget under the non-last convention.
    if (!merged_last)
      EXPECT_GT(merged, rmin) << "modules " << m << "," << m + 1
                              << " could have been merged";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PartitionPropertyTest,
    ::testing::Values(PartitionCase{0, 0.15, 64}, PartitionCase{0, 0.2, 64},
                      PartitionCase{0, 0.5, 64}, PartitionCase{1, 0.2, 32},
                      PartitionCase{1, 0.35, 32}, PartitionCase{2, 0.25, 16},
                      PartitionCase{2, 0.5, 16}, PartitionCase{3, 0.3, 16},
                      PartitionCase{4, 0.4, 64}));

// ---- Slicing: gather/forward consistency across ratio x scheme x model ------

struct SliceCase {
  int model;  // 2 tiny_vgg, 3 tiny_resnet (see model_for)
  double ratio;
  models::SliceScheme scheme;
};

class SlicePropertyTest : public ::testing::TestWithParam<SliceCase> {};

TEST_P(SlicePropertyTest, SlicedModelIsConsistent) {
  const auto c = GetParam();
  Rng rng(4242);
  const auto spec = model_for(c.model);
  const auto plan = models::make_slice_plan(spec, c.ratio, c.scheme, 5, rng);
  // Parameter count shrinks monotonically with ratio (within rounding).
  EXPECT_LE(plan.sliced_spec.total_params(), spec.total_params());
  models::BuiltModel global(spec, rng), sliced(plan.sliced_spec, rng);
  models::gather_weights(spec, plan, global, sliced);
  // Gathered weights are a subset of global values (checked before any
  // train-mode forward, which would update BN running stats).
  const auto gb = global.save_atom(0);
  const auto sb = sliced.save_atom(0);
  const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
  const Tensor y = sliced.forward(x, true);
  EXPECT_EQ(y.dim(1), spec.num_classes);  // classes never sliced
  for (const float v : sb) {
    bool found = false;
    for (const float g : gb)
      if (g == v) {
        found = true;
        break;
      }
    ASSERT_TRUE(found) << "sliced atom 0 contains a value absent from global";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, SlicePropertyTest,
    ::testing::Values(
        SliceCase{2, 0.25, models::SliceScheme::kStatic},
        SliceCase{2, 0.5, models::SliceScheme::kRandom},
        SliceCase{2, 0.75, models::SliceScheme::kRolling},
        SliceCase{3, 0.25, models::SliceScheme::kRolling},
        SliceCase{3, 0.5, models::SliceScheme::kStatic},
        SliceCase{3, 0.75, models::SliceScheme::kRandom}));

// ---- Cost model: monotonicity sweeps ----------------------------------------

class CostMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CostMonotoneTest, MemAndFlopsMonotoneInRangeBatchAndPgd) {
  const auto spec = model_for(GetParam());
  const std::int64_t batch = 16;
  std::int64_t prev_mem = 0, prev_macs = 0;
  for (std::size_t end = 1; end <= spec.atoms.size(); ++end) {
    const auto mem = sys::module_train_mem_bytes(spec, 0, end, batch,
                                                 end != spec.atoms.size());
    const auto macs = sys::module_forward_macs(spec, 0, end, batch, false);
    EXPECT_GE(macs, prev_macs);
    prev_macs = macs;
    if (end > 1) EXPECT_GT(mem, 0);
    prev_mem = mem;
  }
  (void)prev_mem;
  // PGD steps scale compute superlinearly vs standard training.
  sys::TrainCostConfig st, at;
  st.batch_size = at.batch_size = batch;
  st.pgd_steps = 0;
  at.pgd_steps = 10;
  const auto c0 = sys::train_step_cost(spec, 0, spec.atoms.size(), false, st,
                                       1ll << 50);
  const auto c10 = sys::train_step_cost(spec, 0, spec.atoms.size(), false, at,
                                        1ll << 50);
  EXPECT_GT(c10.compute_flops, 5.0 * c0.compute_flops);
}

INSTANTIATE_TEST_SUITE_P(Models, CostMonotoneTest, ::testing::Values(0, 2, 3, 4));

// ---- APA: response direction across the ratio grid --------------------------

struct ApaCase {
  double clean, adv, prev_ratio;
  int expected;  // -1 decrease, 0 hold, +1 increase
};

class ApaSweepTest : public ::testing::TestWithParam<ApaCase> {};

TEST_P(ApaSweepTest, AlphaMovesInTheDocumentedDirection) {
  const auto c = GetParam();
  fedprophet::AdaptivePerturbation apa(0.5f, 0.1f, 0.05f, true);
  apa.start_module(1.0);
  apa.update(c.clean, c.adv, c.prev_ratio);
  const float expected = 0.5f + 0.1f * static_cast<float>(c.expected);
  EXPECT_NEAR(apa.alpha(), expected, 1e-6f);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ApaSweepTest,
    ::testing::Values(ApaCase{0.9, 0.1, 2.0, +1},   // ratio 9 >> 2.1
                      ApaCase{0.5, 0.5, 2.0, -1},   // ratio 1 << 1.9
                      ApaCase{0.6, 0.3, 2.0, 0},    // ratio 2 inside band
                      ApaCase{0.62, 0.3, 2.0, 0},   // 2.07 < 2.1 still holds
                      ApaCase{0.64, 0.3, 2.0, +1},  // 2.13 > 2.1
                      ApaCase{0.9, 0.0, 2.0, +1},   // adv collapse: push up
                      ApaCase{0.5, 0.4, 0.0, 0}));  // no previous module yet

// ---- Synthetic data: config sweep -------------------------------------------

struct SynthCase {
  std::int64_t classes, size, image;
  bool unbalanced;
};

class SynthSweepTest : public ::testing::TestWithParam<SynthCase> {};

TEST_P(SynthSweepTest, GeneratesValidDataset) {
  const auto c = GetParam();
  data::SyntheticConfig cfg;
  cfg.num_classes = c.classes;
  cfg.train_size = c.size;
  cfg.test_size = c.size / 4;
  cfg.image_size = c.image;
  cfg.unbalanced_classes = c.unbalanced;
  const auto tt = data::make_synthetic(cfg);
  EXPECT_EQ(tt.train.size(), c.size);
  EXPECT_EQ(tt.train.num_classes, c.classes);
  EXPECT_GE(tt.train.images.min(), 0.0f);
  EXPECT_LE(tt.train.images.max(), 1.0f);
  const auto hist = tt.train.class_histogram();
  std::int64_t total = 0, nonzero = 0;
  for (const auto h : hist) {
    total += h;
    nonzero += h > 0;
  }
  EXPECT_EQ(total, c.size);
  EXPECT_EQ(nonzero, c.classes);  // every class represented
}

INSTANTIATE_TEST_SUITE_P(Grid, SynthSweepTest,
                         ::testing::Values(SynthCase{2, 64, 8, false},
                                           SynthCase{10, 200, 16, false},
                                           SynthCase{32, 320, 16, true},
                                           SynthCase{5, 100, 24, true}));

}  // namespace
}  // namespace fp
