// Checkpoint round-trip fidelity and failure modes (DESIGN.md §12).
//
// The serving plane's exactness contract starts here: a whole-model
// save_all -> save_checkpoint -> load_checkpoint -> load_all round trip must
// reproduce the forward bit-for-bit (fp32 AND the int8/Winograd inference
// path), and every way a checkpoint can be wrong — truncated file, corrupt
// payload, version skew, blob/model size mismatch — must fail loudly with
// the path and the expected-vs-found numbers in the message.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "blob_hash.hpp"
#include "exp/registries.hpp"
#include "exp/spec.hpp"
#include "models/built_model.hpp"
#include "exp/runner.hpp"
#include "nn/linear.hpp"
#include "nn/model_io.hpp"
#include "nn/serialize.hpp"
#include "serve/model_host.hpp"
#include "tensor/rng.hpp"

namespace fp {
namespace {

std::string tmp_path(const char* name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

/// what() of an expected throw; fails the test when nothing is thrown.
template <typename Ex, typename Fn>
std::string message_of(Fn&& fn) {
  try {
    fn();
  } catch (const Ex& e) {
    return e.what();
  } catch (const std::exception& e) {
    ADD_FAILURE() << "wrong exception type: " << e.what();
    return "";
  }
  ADD_FAILURE() << "expected an exception";
  return "";
}

/// A small registry model + its spec, as make_served_model would build it.
struct TestModel {
  exp::ExperimentSpec spec;
  sys::ModelSpec model_spec;
};

TestModel resolve_test_model() {
  TestModel t;
  exp::ExperimentSpec spec;
  spec.model_width = 4;
  t.spec = exp::resolve_full(std::move(spec));
  const exp::ModelParams mp{t.spec.model_image, t.spec.model_classes,
                            t.spec.model_width};
  t.model_spec = exp::model_registry().resolve(t.spec.model)(mp);
  return t;
}

std::uint64_t forward_hash(models::BuiltModel& model, const Tensor& x,
                           const compute::ComputeConfig& cc) {
  const Tensor logits = serve::reference_forward(model, x, cc);
  nn::ParamBlob v(logits.data(), logits.data() + logits.numel());
  return test::fnv1a(v);
}

TEST(Serialize, WholeModelRoundTripIsBitIdentical) {
  const TestModel t = resolve_test_model();
  Rng rng(41);
  models::BuiltModel trained(t.model_spec, rng);
  const nn::ParamBlob blob = trained.save_all();

  const std::string path = tmp_path("fp_roundtrip.fpck");
  nn::save_checkpoint(path, blob);
  const nn::ParamBlob back = nn::load_checkpoint(path);
  EXPECT_EQ(back, blob);  // bitwise: ParamBlob compares float by float

  // A differently-initialized model must forward identically once loaded —
  // in fp32 and on the quantized inference path.
  Rng other(999);
  models::BuiltModel restored(t.model_spec, other);
  restored.load_all(back);
  Rng data_rng(7);
  const Tensor x = Tensor::randn({3, t.model_spec.input.c,
                                  t.model_spec.input.h, t.model_spec.input.w},
                                 data_rng);
  compute::ComputeConfig fp32;
  compute::ComputeConfig int8w;
  int8w.precision = compute::Precision::kInt8;
  int8w.winograd = true;
  EXPECT_EQ(forward_hash(restored, x, fp32), forward_hash(trained, x, fp32));
  EXPECT_EQ(forward_hash(restored, x, int8w), forward_hash(trained, x, int8w));
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileNamesPathAndSizes) {
  const std::string path = tmp_path("fp_truncated.fpck");
  nn::save_checkpoint(path, nn::ParamBlob{1.f, 2.f, 3.f, 4.f});
  std::filesystem::resize_file(path, 16 + 2 * 4);  // half the payload, no trailer
  const std::string msg = message_of<std::runtime_error>(
      [&] { nn::load_checkpoint(path); });
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("promises 4 floats"), std::string::npos) << msg;
  EXPECT_NE(msg.find("truncated or corrupt"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Serialize, CorruptPayloadNamesBothChecksums) {
  const std::string path = tmp_path("fp_corrupt.fpck");
  nn::save_checkpoint(path, nn::ParamBlob{1.f, 2.f, 3.f});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(16 + 1);
    f.put('\x5a');
  }
  const std::string msg = message_of<std::runtime_error>(
      [&] { nn::load_checkpoint(path); });
  EXPECT_NE(msg.find("checksum mismatch"), std::string::npos) << msg;
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  // Both hashes appear, so the user can tell corruption from version skew.
  EXPECT_NE(msg.find("stored 0x"), std::string::npos) << msg;
  EXPECT_NE(msg.find("hashes to 0x"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Serialize, VersionSkewNamesFoundAndSupported) {
  const std::string path = tmp_path("fp_version.fpck");
  nn::save_checkpoint(path, nn::ParamBlob{1.f});
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(4);
    f.put('\x09');  // version 9
  }
  const std::string msg = message_of<std::runtime_error>(
      [&] { nn::load_checkpoint(path); });
  EXPECT_NE(msg.find("unsupported version 9"), std::string::npos) << msg;
  EXPECT_NE(msg.find("reads version 1"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Serialize, LoadBlobMismatchReportsCountsAndLeavesLayerUntouched) {
  Rng rng(17);
  nn::Linear lin(6, 3, rng);
  const nn::ParamBlob before = nn::save_blob(lin);
  const std::string msg = message_of<std::invalid_argument>(
      [&] { nn::load_blob(lin, nn::ParamBlob(5, 0.f)); });
  EXPECT_NE(msg.find("5 floats"), std::string::npos) << msg;
  EXPECT_NE(msg.find("exactly"), std::string::npos) << msg;
  // The size check runs before any copy: a bad blob is all-or-nothing.
  EXPECT_EQ(nn::save_blob(lin), before);
}

TEST(Serialize, ModelLoadAllMismatchNamesModel) {
  const TestModel t = resolve_test_model();
  Rng rng(5);
  models::BuiltModel model(t.model_spec, rng);
  const nn::ParamBlob before = model.save_all();
  const std::string msg = message_of<std::invalid_argument>(
      [&] { model.load_all(nn::ParamBlob(3, 0.f)); });
  EXPECT_NE(msg.find(t.model_spec.name), std::string::npos) << msg;
  EXPECT_NE(msg.find("3 floats"), std::string::npos) << msg;
  EXPECT_EQ(model.save_all(), before);
}

TEST(Serialize, LayerCheckpointMismatchNamesFile) {
  Rng rng(23);
  const std::string path = tmp_path("fp_wrong_layer.fpck");
  nn::Linear big(6, 3, rng);
  nn::save_layer_checkpoint(path, big);
  nn::Linear small(2, 2, rng);
  const std::string msg = message_of<std::runtime_error>(
      [&] { nn::load_layer_checkpoint(path, small); });
  EXPECT_NE(msg.find(path), std::string::npos) << msg;
  EXPECT_NE(msg.find("does not fit"), std::string::npos) << msg;
  std::remove(path.c_str());
}

TEST(Serialize, ExportModelWritesCheckpointAndSidecar) {
  const TestModel t = resolve_test_model();
  Rng rng(3);
  models::BuiltModel model(t.model_spec, rng);
  const std::string path = tmp_path("fp_export.fpck");
  serve::export_model(path, t.spec, model.save_all());
  ASSERT_TRUE(std::filesystem::exists(path));
  ASSERT_TRUE(std::filesystem::exists(serve::sidecar_path(path)));

  const serve::ServedModel served = serve::load_served_model(path);
  EXPECT_EQ(served.spec.model, t.spec.model);
  EXPECT_EQ(served.model->save_all(), model.save_all());
  std::remove(path.c_str());
  std::remove(serve::sidecar_path(path).c_str());
}

}  // namespace
}  // namespace fp
