#include <gtest/gtest.h>

#include "grad_check.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"

namespace fp {
namespace {

using test::check_layer_gradients;
using test::GradCheckOptions;

TEST(Conv2d, OutputShape) {
  Rng rng(1);
  nn::Conv2d conv(3, 8, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor y = conv.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 8, 8, 8}));
}

TEST(Conv2d, StrideAndPaddingShape) {
  Rng rng(2);
  nn::Conv2d conv(3, 4, 3, 2, 1, rng);
  const Tensor x = Tensor::randn({1, 3, 9, 9}, rng);
  EXPECT_EQ(conv.forward(x, true).shape(), (std::vector<std::int64_t>{1, 4, 5, 5}));
}

struct ConvCase {
  std::int64_t in_c, out_c, k, s, p, img;
  bool bias;
};

class ConvGradTest : public ::testing::TestWithParam<ConvCase> {};

TEST_P(ConvGradTest, GradientsMatchFiniteDifferences) {
  const auto c = GetParam();
  Rng rng(3);
  nn::Conv2d conv(c.in_c, c.out_c, c.k, c.s, c.p, rng, c.bias);
  const Tensor x = Tensor::randn({2, c.in_c, c.img, c.img}, rng);
  check_layer_gradients(conv, x);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ConvGradTest,
    ::testing::Values(ConvCase{2, 3, 3, 1, 1, 5, true},
                      ConvCase{3, 2, 3, 2, 1, 6, true},
                      ConvCase{1, 4, 1, 1, 0, 4, false},
                      ConvCase{2, 2, 7, 2, 3, 8, true},
                      ConvCase{4, 3, 2, 2, 0, 6, false}));

TEST(Linear, ForwardMatchesManual) {
  Rng rng(4);
  nn::Linear lin(2, 2, rng);
  lin.weight() = Tensor::from_vector({2, 2}, {1, 2, 3, 4});
  lin.bias() = Tensor::from_vector({2}, {0.5, -0.5});
  const Tensor x = Tensor::from_vector({1, 2}, {1, 1});
  const Tensor y = lin.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 3.5f);   // 1+2+0.5
  EXPECT_FLOAT_EQ(y[1], 6.5f);   // 3+4-0.5
}

TEST(Linear, AcceptsNchwInputByFlattening) {
  Rng rng(5);
  nn::Linear lin(12, 3, rng);
  const Tensor x = Tensor::randn({2, 3, 2, 2}, rng);
  const Tensor y = lin.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 3}));
  // Backward restores NCHW.
  const Tensor g = lin.backward(Tensor::ones({2, 3}));
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(Linear, GradientsMatchFiniteDifferences) {
  Rng rng(6);
  nn::Linear lin(7, 4, rng);
  const Tensor x = Tensor::randn({3, 7}, rng);
  check_layer_gradients(lin, x);
}

TEST(ReLU, ForwardAndMask) {
  nn::ReLU relu;
  const Tensor x = Tensor::from_vector({4}, {-1, 0, 0.5, 2});
  const Tensor y = relu.forward(x, true);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[3], 2.0f);
  const Tensor g = relu.backward(Tensor::ones({4}));
  EXPECT_FLOAT_EQ(g[0], 0.0f);
  EXPECT_FLOAT_EQ(g[2], 1.0f);
}

TEST(Flatten, RoundTrip) {
  nn::Flatten flat;
  Rng rng(7);
  const Tensor x = Tensor::randn({2, 3, 4, 4}, rng);
  const Tensor y = flat.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 48}));
  const Tensor g = flat.backward(y);
  EXPECT_EQ(g.shape(), x.shape());
}

TEST(MaxPool2d, ForwardPicksMax) {
  nn::MaxPool2d pool(2);
  const Tensor x =
      Tensor::from_vector({1, 1, 2, 2}, {1, 5, 3, 2}).reshape({1, 1, 2, 2});
  const Tensor y = pool.forward(x, true);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  const Tensor g = pool.backward(Tensor::ones({1, 1, 1, 1}));
  EXPECT_FLOAT_EQ(g[1], 1.0f);
  EXPECT_FLOAT_EQ(g[0], 0.0f);
}

TEST(MaxPool2d, GradientsMatchFiniteDifferences) {
  Rng rng(8);
  nn::MaxPool2d pool(2, 2);
  // Well-separated distinct values so no argmax tie flips within +-h.
  Tensor x({2, 3, 6, 6});
  std::vector<std::int64_t> values(static_cast<std::size_t>(x.numel()));
  for (std::size_t i = 0; i < values.size(); ++i)
    values[i] = static_cast<std::int64_t>(i);
  rng.shuffle(values);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    x[i] = 0.1f * static_cast<float>(values[static_cast<std::size_t>(i)]);
  check_layer_gradients(pool, x);
}

TEST(GlobalAvgPool, ForwardAndGradients) {
  Rng rng(9);
  nn::GlobalAvgPool gap;
  const Tensor x = Tensor::full({1, 2, 3, 3}, 2.0f);
  const Tensor y = gap.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{1, 2}));
  EXPECT_FLOAT_EQ(y[0], 2.0f);
  const Tensor xr = Tensor::randn({2, 3, 4, 4}, rng);
  check_layer_gradients(gap, xr);
}

TEST(BatchNorm2d, TrainOutputIsNormalized) {
  Rng rng(10);
  nn::BatchNorm2d bn(3);
  const Tensor x = Tensor::randn({8, 3, 4, 4}, rng, 5.0f);
  const Tensor y = bn.forward(x, true);
  // Per channel: mean ~ 0, var ~ 1.
  for (std::int64_t c = 0; c < 3; ++c) {
    double s = 0, s2 = 0;
    for (std::int64_t n = 0; n < 8; ++n)
      for (std::int64_t i = 0; i < 16; ++i) {
        const float v = y[(n * 3 + c) * 16 + i];
        s += v;
        s2 += v * v;
      }
    const double mean = s / (8 * 16);
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(s2 / (8 * 16) - mean * mean, 1.0, 1e-2);
  }
}

TEST(BatchNorm2d, RunningStatsConvergeToDataMoments) {
  Rng rng(11);
  nn::BatchNorm2d bn(1);
  for (int i = 0; i < 200; ++i) {
    const Tensor x = Tensor::randn({16, 1, 2, 2}, rng, 2.0f);
    bn.forward(x, true);
  }
  EXPECT_NEAR(bn.running_mean(0)[0], 0.0f, 0.3f);
  EXPECT_NEAR(bn.running_var(0)[0], 4.0f, 0.6f);
}

TEST(BatchNorm2d, TrackingFreezeStopsUpdates) {
  Rng rng(12);
  nn::BatchNorm2d bn(2);
  bn.set_track_stats(false);
  const Tensor x = Tensor::randn({4, 2, 3, 3}, rng, 3.0f);
  bn.forward(x, true);
  EXPECT_FLOAT_EQ(bn.running_mean(0)[0], 0.0f);
  EXPECT_FLOAT_EQ(bn.running_var(0)[0], 1.0f);
  bn.set_track_stats(true);
  bn.forward(x, true);
  EXPECT_NE(bn.running_mean(0)[0], 0.0f);
}

TEST(BatchNorm2d, DualBanksAreIndependent) {
  Rng rng(13);
  nn::BatchNorm2d bn(1);
  bn.use_bank(1);
  const Tensor x = Tensor::full({4, 1, 2, 2}, 10.0f);
  for (int i = 0; i < 50; ++i) bn.forward(x, true);
  EXPECT_NEAR(bn.running_mean(1)[0], 10.0f, 0.5f);
  EXPECT_FLOAT_EQ(bn.running_mean(0)[0], 0.0f);  // bank 0 untouched
  EXPECT_THROW(bn.use_bank(2), std::invalid_argument);
}

TEST(BatchNorm2d, TrainGradientsMatchFiniteDifferences) {
  Rng rng(14);
  nn::BatchNorm2d bn(3);
  // Non-trivial affine parameters.
  bn.parameters()[0]->fill(1.5f);
  bn.parameters()[1]->fill(-0.2f);
  const Tensor x = Tensor::randn({4, 3, 3, 3}, rng);
  GradCheckOptions opt;
  opt.tol = 8e-2;  // batch-stat coupling amplifies fp32 noise
  check_layer_gradients(bn, x, opt);
}

TEST(BatchNorm2d, EvalGradientsMatchFiniteDifferences) {
  Rng rng(15);
  nn::BatchNorm2d bn(2);
  // Give the running stats some non-trivial values first.
  for (int i = 0; i < 20; ++i) bn.forward(Tensor::randn({8, 2, 3, 3}, rng, 2.0f), true);
  const Tensor x = Tensor::randn({3, 2, 3, 3}, rng);
  GradCheckOptions opt;
  opt.train_mode = false;
  check_layer_gradients(bn, x, opt);
}

TEST(Sequential, ComposesAndBackpropagates) {
  Rng rng(16);
  nn::Sequential seq;
  seq.push_back(std::make_unique<nn::Conv2d>(2, 3, 3, 1, 1, rng));
  seq.push_back(std::make_unique<nn::ReLU>());
  seq.push_back(std::make_unique<nn::MaxPool2d>(2));
  seq.push_back(std::make_unique<nn::Flatten>());
  seq.push_back(std::make_unique<nn::Linear>(3 * 2 * 2, 4, rng));
  const Tensor x = Tensor::randn({2, 2, 4, 4}, rng);
  const Tensor y = seq.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<std::int64_t>{2, 4}));
  check_layer_gradients(seq, x);
}

TEST(BasicBlock, IdentityShortcutShapeAndGradients) {
  Rng rng(17);
  nn::BasicBlock block(3, 3, 1, rng);
  EXPECT_FALSE(block.has_projection());
  const Tensor x = Tensor::randn({2, 3, 5, 5}, rng);
  EXPECT_EQ(block.forward(x, true).shape(), x.shape());
  check_layer_gradients(block, x, {.tol = 8e-2});
}

TEST(BasicBlock, ProjectionShortcutShapeAndGradients) {
  Rng rng(18);
  nn::BasicBlock block(2, 4, 2, rng);
  EXPECT_TRUE(block.has_projection());
  const Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  EXPECT_EQ(block.forward(x, true).shape(), (std::vector<std::int64_t>{2, 4, 3, 3}));
  // Smaller step: shrinks the window in which internal ReLU kinks flip.
  check_layer_gradients(block, x, {.h = 2e-3f, .tol = 1e-1, .abs_floor = 8e-3});
}

TEST(BasicBlock, ForEachBnVisitsAllNorms) {
  Rng rng(19);
  nn::BasicBlock block(2, 4, 2, rng);
  int count = 0;
  block.for_each_bn([&count](nn::BatchNorm2d&) { ++count; });
  EXPECT_EQ(count, 3);  // bn1, bn2, shortcut bn
}

}  // namespace
}  // namespace fp
