#include <gtest/gtest.h>

#include <stdexcept>

#include "tensor/tensor.hpp"

namespace fp {
namespace {

TEST(Tensor, ZeroInitializedWithShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.ndim(), 3u);
  EXPECT_EQ(t.dim(1), 3);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, FactoryFull) {
  const Tensor t = Tensor::full({3, 3}, 2.5f);
  EXPECT_FLOAT_EQ(t.sum(), 9 * 2.5f);
  EXPECT_FLOAT_EQ(t.mean(), 2.5f);
}

TEST(Tensor, FromVectorChecksSize) {
  EXPECT_NO_THROW(Tensor::from_vector({2, 2}, {1, 2, 3, 4}));
  EXPECT_THROW(Tensor::from_vector({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, ReshapePreservesDataAndChecksCount) {
  Tensor t = Tensor::from_vector({2, 3}, {1, 2, 3, 4, 5, 6});
  const Tensor r = t.reshape({3, 2});
  EXPECT_EQ(r.dim(0), 3);
  EXPECT_FLOAT_EQ(r[4], 5.0f);
  EXPECT_THROW(t.reshape({4, 2}), std::invalid_argument);
}

TEST(Tensor, ElementwiseArithmetic) {
  Tensor a = Tensor::from_vector({4}, {1, 2, 3, 4});
  const Tensor b = Tensor::from_vector({4}, {10, 20, 30, 40});
  a.add_(b);
  EXPECT_FLOAT_EQ(a[3], 44.0f);
  a.sub_(b);
  EXPECT_FLOAT_EQ(a[3], 4.0f);
  a.mul_(b);
  EXPECT_FLOAT_EQ(a[0], 10.0f);
  a.scale_(0.1f);
  EXPECT_FLOAT_EQ(a[0], 1.0f);
  a.add_scaled_(b, 0.5f);
  EXPECT_FLOAT_EQ(a[1], 2.0f * 20.0f * 0.1f + 10.0f);
}

TEST(Tensor, ShapeMismatchThrows) {
  Tensor a({2, 2});
  const Tensor b({4});
  EXPECT_THROW(a.add_(b), std::invalid_argument);
  EXPECT_THROW(a.mul_(b), std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
}

TEST(Tensor, ClampSignRelu) {
  Tensor t = Tensor::from_vector({5}, {-2, -0.5, 0, 0.5, 2});
  Tensor c = t;
  c.clamp_(-1, 1);
  EXPECT_FLOAT_EQ(c[0], -1.0f);
  EXPECT_FLOAT_EQ(c[4], 1.0f);
  Tensor s = t;
  s.sign_();
  EXPECT_FLOAT_EQ(s[0], -1.0f);
  EXPECT_FLOAT_EQ(s[2], 0.0f);
  EXPECT_FLOAT_EQ(s[4], 1.0f);
  Tensor r = t;
  r.relu_();
  EXPECT_FLOAT_EQ(r[0], 0.0f);
  EXPECT_FLOAT_EQ(r[3], 0.5f);
}

TEST(Tensor, Reductions) {
  const Tensor t = Tensor::from_vector({2, 2}, {-3, 1, 2, -1});
  EXPECT_FLOAT_EQ(t.sum(), -1.0f);
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_NEAR(t.l2_norm(), std::sqrt(9.0 + 1 + 4 + 1), 1e-5);
  EXPECT_EQ(t.argmax(), 2);
}

TEST(Tensor, ArgmaxRows) {
  const Tensor t = Tensor::from_vector({2, 3}, {0, 5, 1, 9, 2, 3});
  const auto preds = t.argmax_rows();
  ASSERT_EQ(preds.size(), 2u);
  EXPECT_EQ(preds[0], 1);
  EXPECT_EQ(preds[1], 0);
}

TEST(Tensor, RowL2NormsAndScaleRows) {
  Tensor t = Tensor::from_vector({2, 2}, {3, 4, 0, 5});
  const auto norms = t.row_l2_norms();
  EXPECT_NEAR(norms[0], 5.0, 1e-5);
  EXPECT_NEAR(norms[1], 5.0, 1e-5);
  t.scale_rows_({2.0f, 0.5f});
  EXPECT_FLOAT_EQ(t[0], 6.0f);
  EXPECT_FLOAT_EQ(t[3], 2.5f);
  EXPECT_THROW(t.scale_rows_({1.0f}), std::invalid_argument);
}

TEST(Tensor, SliceAndSetRows) {
  Tensor t = Tensor::from_vector({3, 2}, {1, 2, 3, 4, 5, 6});
  const Tensor s = t.slice_rows(1, 2);
  EXPECT_EQ(s.dim(0), 2);
  EXPECT_FLOAT_EQ(s[0], 3.0f);
  Tensor u({3, 2});
  u.set_rows(1, s);
  EXPECT_FLOAT_EQ(u[2], 3.0f);
  EXPECT_FLOAT_EQ(u[5], 6.0f);
  EXPECT_THROW(t.slice_rows(2, 2), std::out_of_range);
}

TEST(Rng, DeterministicStreams) {
  Rng a(7), b(7), c(8);
  EXPECT_EQ(a.next_u64(), b.next_u64());
  EXPECT_NE(a.next_u64(), c.next_u64());
}

TEST(Rng, UniformRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const float v = rng.uniform(-2.0f, 3.0f);
    EXPECT_GE(v, -2.0f);
    EXPECT_LT(v, 3.0f);
  }
}

TEST(Rng, UniformIntBounds) {
  Rng rng(2);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 10000; ++i) ++hist[rng.uniform_int(10)];
  for (const int h : hist) EXPECT_GT(h, 700);  // roughly uniform
}

TEST(Rng, GaussianMoments) {
  Rng rng(3);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.gaussian();
    sum += v;
    sum2 += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.05);
  EXPECT_NEAR(sum2 / n, 1.0, 0.05);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(4);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Tensor, RandnStatistics) {
  Rng rng(5);
  const Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0f, 0.1f);
  double var = 0;
  for (std::int64_t i = 0; i < t.numel(); ++i) var += t[i] * t[i];
  EXPECT_NEAR(var / t.numel(), 4.0, 0.3);
}

}  // namespace
}  // namespace fp
