// Bit-exact reproducibility of federated training across thread counts.
//
// The contract (core/parallel.hpp): per-client RNG streams, client-ordered
// server aggregation, and partition-independent kernel summation make a
// round's result a pure function of the seed — FP_NUM_THREADS must only
// change wall-clock, never a single bit of the aggregates.
#include <gtest/gtest.h>

#include "baselines/jfat.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp {
namespace {

data::TrainTest tiny_data() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 240;
  dcfg.test_size = 80;
  dcfg.num_classes = 4;
  return data::make_synthetic(dcfg);
}

fed::FlConfig tiny_fl() {
  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  return fl;
}

void expect_blobs_identical(const nn::ParamBlob& a, const nn::ParamBlob& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_EQ(a[i], b[i]) << "aggregate diverged at element " << i;
}

TEST(Determinism, JFatRoundsBitIdenticalAcrossThreadCounts) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  nn::ParamBlob blobs[2];
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    core::set_num_threads(thread_counts[run]);
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    fed::FedEnv env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    baselines::JFat algo(env, cfg);
    algo.run();
    blobs[run] = algo.global_model().save_all();
  }
  core::set_num_threads(1);
  expect_blobs_identical(blobs[0], blobs[1]);
}

TEST(Determinism, FedProphetTrainBitIdenticalAcrossThreadCounts) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  nn::ParamBlob blobs[2];
  std::vector<double> traces[2];
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    core::set_num_threads(thread_counts[run]);
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    fed::FedEnv env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    const auto full = sys::module_train_mem_bytes(
        cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
    cfg.rmin_bytes = full / 3;
    cfg.rounds_per_module = 2;
    cfg.eval_every = 2;
    cfg.val_samples = 32;
    cfg.device_mem_scale =
        static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
    fedprophet::FedProphet algo(env, cfg);
    algo.train();
    blobs[run] = algo.global_model().save_all();
    traces[run] = algo.eps_trace();
  }
  core::set_num_threads(1);
  expect_blobs_identical(blobs[0], blobs[1]);
  ASSERT_EQ(traces[0].size(), traces[1].size());
  for (std::size_t i = 0; i < traces[0].size(); ++i)
    ASSERT_EQ(traces[0][i], traces[1][i]) << "eps trace diverged at round " << i;
}

}  // namespace
}  // namespace fp
