// Finite-difference gradient checking for layers.
//
// Loss is L = <layer(x), R> for a fixed random tensor R, so dL/d(out) = R.
// We compare the analytic backward pass against central differences for the
// input and every parameter coordinate.
#pragma once

#include <gtest/gtest.h>

#include <cmath>

#include "nn/layer.hpp"

namespace fp::test {

inline double rel_err(double a, double b, double abs_floor = 2e-3) {
  // The absolute floor reflects the fp32 central-difference noise floor
  // (~|loss| * 1e-7 / h): coordinates whose true gradient is below it cannot
  // be resolved numerically and are compared absolutely instead.
  const double denom = std::max({std::abs(a), std::abs(b), abs_floor});
  return std::abs(a - b) / denom;
}

struct GradCheckOptions {
  float h = 1e-2f;       ///< central-difference step (float32 precision)
  double tol = 5e-2;     ///< relative-error tolerance
  double abs_floor = 2e-3;  ///< see rel_err; scale up when h is small
  bool train_mode = true;
  std::int64_t max_coords = 400;  ///< per-tensor coordinate cap
};

/// Checks dL/dx and dL/dtheta of `layer` at input `x`.
inline void check_layer_gradients(nn::Layer& layer, Tensor x,
                                  const GradCheckOptions& opt = {}) {
  Rng rng(2024);
  // Nudge inputs away from ReLU/MaxPool kinks.
  for (auto& v : x.span())
    if (std::abs(v) < 2 * opt.h) v += (v >= 0 ? 4 : -4) * opt.h;

  Tensor out = layer.forward(x, opt.train_mode);
  const Tensor r = Tensor::rand_uniform(out.shape(), rng, -1.0f, 1.0f);

  layer.zero_grad();
  const Tensor grad_in = layer.backward(r);

  auto loss_at = [&](const Tensor& xx) {
    return layer.forward(xx, opt.train_mode).dot(r);
  };

  // ---- input gradient ----
  {
    Tensor xp = x;
    const std::int64_t stride =
        std::max<std::int64_t>(1, x.numel() / opt.max_coords);
    for (std::int64_t i = 0; i < x.numel(); i += stride) {
      const float orig = xp[i];
      xp[i] = orig + opt.h;
      const double lp = loss_at(xp);
      xp[i] = orig - opt.h;
      const double lm = loss_at(xp);
      xp[i] = orig;
      const double numeric = (lp - lm) / (2.0 * opt.h);
      EXPECT_LT(rel_err(numeric, grad_in[i], opt.abs_floor), opt.tol)
          << "input coord " << i << ": numeric " << numeric << " vs analytic "
          << grad_in[i];
    }
  }

  // ---- parameter gradients ----
  const auto params = layer.parameters();
  const auto grads = layer.gradients();
  ASSERT_EQ(params.size(), grads.size());
  for (std::size_t p = 0; p < params.size(); ++p) {
    Tensor& theta = *params[p];
    const Tensor& g = *grads[p];
    const std::int64_t stride =
        std::max<std::int64_t>(1, theta.numel() / opt.max_coords);
    for (std::int64_t i = 0; i < theta.numel(); i += stride) {
      const float orig = theta[i];
      theta[i] = orig + opt.h;
      const double lp = loss_at(x);
      theta[i] = orig - opt.h;
      const double lm = loss_at(x);
      theta[i] = orig;
      const double numeric = (lp - lm) / (2.0 * opt.h);
      EXPECT_LT(rel_err(numeric, g[i], opt.abs_floor), opt.tol)
          << "param " << p << " coord " << i << ": numeric " << numeric
          << " vs analytic " << g[i];
    }
  }
}

}  // namespace fp::test
