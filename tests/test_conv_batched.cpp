// The batched Conv2d path (whole-minibatch im2col + one GEMM per direction)
// against the seed's per-sample loop, plus finite-difference grad checks.
#include <gtest/gtest.h>

#include <cmath>

#include "grad_check.hpp"
#include "nn/conv.hpp"
#include "tensor/ops.hpp"

namespace fp {
namespace {

/// The seed's per-sample forward: im2col + gemm_reference per image + bias.
Tensor per_sample_forward(nn::Conv2d& conv, const Tensor& x) {
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{conv.in_channels(), conv.out_channels(), conv.kernel(),
                   conv.stride(),      conv.padding(),      h,
                   w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out({n, conv.out_channels(), oh, ow});
  Tensor cols({g.col_rows(), g.col_cols()});
  const std::int64_t in_plane = conv.in_channels() * h * w;
  const std::int64_t out_plane = conv.out_channels() * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(g, x.data() + i * in_plane, cols.data());
    gemm_reference(false, false, conv.out_channels(), g.col_cols(), g.col_rows(),
                   1.0f, conv.weight().data(), cols.data(), 0.0f,
                   out.data() + i * out_plane);
    if (conv.has_bias()) {
      float* o = out.data() + i * out_plane;
      for (std::int64_t c = 0; c < conv.out_channels(); ++c)
        for (std::int64_t p = 0; p < oh * ow; ++p)
          o[c * oh * ow + p] += conv.bias()[c];
    }
  }
  return out;
}

struct ConvCase {
  std::int64_t n, in_c, out_c, k, s, p, h, w;
  bool bias;
};

TEST(Conv2dBatched, ForwardMatchesPerSampleReference) {
  const ConvCase cases[] = {
      {1, 1, 1, 1, 1, 0, 4, 4, true},   {4, 3, 8, 3, 1, 1, 9, 9, true},
      {5, 2, 6, 3, 2, 1, 11, 7, true},  {3, 4, 5, 5, 2, 2, 12, 10, false},
      {8, 16, 16, 3, 1, 1, 16, 16, true},
  };
  for (const auto& c : cases) {
    Rng rng(31 + static_cast<std::uint64_t>(c.n * 7 + c.k));
    nn::Conv2d conv(c.in_c, c.out_c, c.k, c.s, c.p, rng, c.bias);
    const Tensor x = Tensor::randn({c.n, c.in_c, c.h, c.w}, rng);
    const Tensor ref = per_sample_forward(conv, x);
    const Tensor got = conv.forward(x, true);
    ASSERT_TRUE(got.same_shape(ref));
    for (std::int64_t i = 0; i < got.numel(); ++i) {
      const float tol = 2e-4f * (std::abs(ref[i]) + 1.0f);
      ASSERT_NEAR(got[i], ref[i], tol)
          << "n=" << c.n << " k=" << c.k << " s=" << c.s << " at " << i;
    }
  }
}

TEST(Conv2dBatched, GradCheckStridePaddingBias) {
  const ConvCase cases[] = {
      {2, 2, 3, 3, 1, 1, 6, 6, true},
      {3, 2, 4, 3, 2, 1, 7, 5, true},
      {2, 3, 2, 5, 2, 2, 9, 9, false},
  };
  for (const auto& c : cases) {
    Rng rng(77 + static_cast<std::uint64_t>(c.out_c));
    nn::Conv2d conv(c.in_c, c.out_c, c.k, c.s, c.p, rng, c.bias);
    Tensor x = Tensor::randn({c.n, c.in_c, c.h, c.w}, rng);
    test::check_layer_gradients(conv, x);
  }
}

TEST(Conv2dBatched, BackwardAccumulatesAcrossCalls) {
  // grad_weight uses beta=1 GEMM accumulation; two backward passes must sum.
  Rng rng(5);
  nn::Conv2d conv(2, 3, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 2, 5, 5}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::randn(y.shape(), rng);
  conv.zero_grad();
  conv.backward(g);
  const Tensor once = *conv.gradients()[0];
  conv.backward(g);
  const Tensor& twice = *conv.gradients()[0];
  for (std::int64_t i = 0; i < once.numel(); ++i) {
    const float tol = 1e-4f * (std::abs(once[i]) + 1.0f);
    ASSERT_NEAR(twice[i], 2.0f * once[i], tol);
  }
}

}  // namespace
}  // namespace fp
