#include <gtest/gtest.h>

#include "sysmodel/cost_model.hpp"
#include "sysmodel/device.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::sys {
namespace {

TEST(LayerSpec, ConvOutShape) {
  const auto conv = LayerSpec::conv2d(3, 16, 3, 2, 1);
  const TensorShape out = out_shape(conv, {3, 9, 9});
  EXPECT_EQ(out.c, 16);
  EXPECT_EQ(out.h, 5);
  EXPECT_EQ(out.w, 5);
  EXPECT_THROW(out_shape(conv, {4, 9, 9}), std::invalid_argument);
}

TEST(LayerSpec, PoolingAndFlattenShapes) {
  EXPECT_EQ(out_shape(LayerSpec::maxpool(2), {8, 6, 6}).h, 3);
  EXPECT_EQ(out_shape(LayerSpec::global_avg_pool(), {8, 6, 6}).numel(), 8);
  EXPECT_EQ(out_shape(LayerSpec::flatten(), {8, 6, 6}).c, 288);
}

TEST(LayerSpec, ParamCounts) {
  EXPECT_EQ(layer_param_count(LayerSpec::conv2d(3, 64, 3, 1, 1)),
            64 * 3 * 9 + 64);
  EXPECT_EQ(layer_param_count(LayerSpec::conv2d(3, 64, 3, 1, 1, false)),
            64 * 3 * 9);
  EXPECT_EQ(layer_param_count(LayerSpec::linear(512, 10)), 512 * 10 + 10);
  EXPECT_EQ(layer_param_count(LayerSpec::batchnorm(32)), 64);
  EXPECT_EQ(layer_param_count(LayerSpec::relu()), 0);
}

TEST(LayerSpec, ConvMacsHandComputed) {
  // 64 output channels on 32x32 with 3x3x3 kernel: 64*1024*27 MACs.
  const auto conv = LayerSpec::conv2d(3, 64, 3, 1, 1);
  EXPECT_EQ(layer_forward_macs(conv, {3, 32, 32}), 64LL * 1024 * 27);
}

TEST(AtomSpec, ResidualBlockAccounting) {
  AtomSpec block;
  block.name = "bb";
  block.residual = true;
  block.layers = {LayerSpec::conv2d(8, 16, 3, 2, 1, false), LayerSpec::batchnorm(16),
                  LayerSpec::relu(), LayerSpec::conv2d(16, 16, 3, 1, 1, false),
                  LayerSpec::batchnorm(16)};
  block.shortcut = {LayerSpec::conv2d(8, 16, 1, 2, 0, false),
                    LayerSpec::batchnorm(16)};
  const TensorShape in{8, 8, 8};
  EXPECT_EQ(atom_out_shape(block, in).c, 16);
  EXPECT_EQ(atom_out_shape(block, in).h, 4);
  // Params: conv1 8*16*9 + bn 32 + conv2 16*16*9 + bn 32 + sc 8*16 + bn 32.
  EXPECT_EQ(atom_param_count(block), 8 * 16 * 9 + 32 + 16 * 16 * 9 + 32 + 128 + 32);
  // Shortcut + sum counted in MACs and activations.
  EXPECT_GT(atom_forward_macs(block, in),
            layer_forward_macs(block.layers[0], in));
  EXPECT_GT(atom_activation_numel(block, in), 0);
}

TEST(ModelSpec, ShapeBeforeWalksAtoms) {
  ModelSpec m;
  m.name = "toy";
  m.input = {3, 8, 8};
  m.num_classes = 4;
  m.atoms.push_back({"c1",
                     {LayerSpec::conv2d(3, 8, 3, 1, 1), LayerSpec::relu(),
                      LayerSpec::maxpool(2)},
                     false,
                     {}});
  m.atoms.push_back(
      {"head", {LayerSpec::flatten(), LayerSpec::linear(8 * 16, 4)}, false, {}});
  EXPECT_EQ(m.shape_before(0).numel(), 3 * 64);
  EXPECT_EQ(m.shape_before(1).numel(), 8 * 16);
  EXPECT_EQ(m.total_params(), 8 * 3 * 9 + 8 + 8 * 16 * 4 + 4);
}

ModelSpec toy_model() {
  ModelSpec m;
  m.name = "toy";
  m.input = {3, 8, 8};
  m.num_classes = 4;
  m.atoms.push_back({"c1",
                     {LayerSpec::conv2d(3, 8, 3, 1, 1), LayerSpec::relu()},
                     false,
                     {}});
  m.atoms.push_back({"c2",
                     {LayerSpec::conv2d(8, 8, 3, 1, 1), LayerSpec::relu(),
                      LayerSpec::maxpool(2)},
                     false,
                     {}});
  m.atoms.push_back(
      {"head", {LayerSpec::flatten(), LayerSpec::linear(8 * 16, 4)}, false, {}});
  return m;
}

TEST(CostModel, MemGrowsWithRangeAndBatch) {
  const ModelSpec m = toy_model();
  const auto m1 = module_train_mem_bytes(m, 0, 1, 8, true);
  const auto m2 = module_train_mem_bytes(m, 0, 2, 8, true);
  const auto m1b = module_train_mem_bytes(m, 0, 1, 16, true);
  EXPECT_GT(m2, m1);
  EXPECT_GT(m1b, m1);
}

TEST(CostModel, AuxHeadAddsParamsAndLogits) {
  const ModelSpec m = toy_model();
  EXPECT_GT(module_train_mem_bytes(m, 0, 1, 8, true),
            module_train_mem_bytes(m, 0, 1, 8, false));
  EXPECT_EQ(aux_head_params(m, 1), 8 * 4 + 4);  // GAP + FC: channels x classes
}

TEST(CostModel, MacsScaleWithBatch) {
  const ModelSpec m = toy_model();
  EXPECT_EQ(module_forward_macs(m, 0, 2, 16, false),
            2 * module_forward_macs(m, 0, 2, 8, false));
}

TEST(CostModel, NoSwapWhenModelFits) {
  const ModelSpec m = toy_model();
  TrainCostConfig cfg;
  cfg.batch_size = 8;
  cfg.pgd_steps = 10;
  const auto cost = train_step_cost(m, 0, m.atoms.size(), false, cfg,
                                    /*avail=*/1ll << 30);
  EXPECT_EQ(cost.swap_bytes, 0.0);
  EXPECT_EQ(cost.swap_traversals, 0);
  EXPECT_GT(cost.compute_flops, 0.0);
}

TEST(CostModel, SwapActivatesUnderMemoryPressure) {
  const ModelSpec m = toy_model();
  TrainCostConfig cfg;
  cfg.batch_size = 64;
  cfg.pgd_steps = 10;
  const auto mem = module_train_mem_bytes(m, 0, m.atoms.size(), 64, false);
  const auto cost = train_step_cost(m, 0, m.atoms.size(), false, cfg, mem / 2);
  EXPECT_GT(cost.swap_bytes, 0.0);
  EXPECT_EQ(cost.swap_traversals, 2 * (cfg.pgd_steps + 1));
}

TEST(CostModel, PgdMultipliesComputeButNotPrefix) {
  const ModelSpec m = toy_model();
  TrainCostConfig st;
  st.batch_size = 8;
  st.pgd_steps = 0;
  TrainCostConfig at = st;
  at.pgd_steps = 10;
  const auto c_st = train_step_cost(m, 1, 2, true, st, 1ll << 30);
  const auto c_at = train_step_cost(m, 1, 2, true, at, 1ll << 30);
  // AT multiplies the module passes by 11x but the frozen-prefix forward
  // happens once in both cases.
  EXPECT_GT(c_at.compute_flops, 10.0 * (c_st.compute_flops -
                                        module_forward_macs(m, 0, 1, 8, false)));
  EXPECT_LT(c_at.compute_flops, 11.0 * c_st.compute_flops);
}

TEST(CostModel, StepTimeComposition) {
  StepCost cost;
  cost.compute_flops = 1e9;
  cost.swap_bytes = 2e9;
  cost.swap_traversals = 4;
  TrainCostConfig cfg;
  cfg.utilization = 0.5;
  cfg.swap_driver_overhead_s = 0.01;
  const auto t = step_time(cost, /*peak=*/1e12, /*bw=*/1e9, cfg);
  EXPECT_NEAR(t.compute_s, 1e9 / 5e11, 1e-9);
  EXPECT_NEAR(t.access_s, 2.0 + 0.04, 1e-9);
}

TEST(DevicePool, MatchesPaperTables) {
  const auto& cifar = cifar_device_pool();
  ASSERT_EQ(cifar.size(), 10u);
  EXPECT_EQ(cifar[0].name, "GTX 1650m");
  EXPECT_DOUBLE_EQ(cifar[0].peak_tflops, 3.1);
  EXPECT_DOUBLE_EQ(cifar[4].mem_gb, 1.0);  // Radeon HD 6870
  const auto& caltech = caltech_device_pool();
  ASSERT_EQ(caltech.size(), 10u);
  EXPECT_EQ(caltech[5].name, "RTX 4090m");
  EXPECT_DOUBLE_EQ(caltech[5].peak_tflops, 33.0);
}

TEST(DeviceSampler, DegradationWithinBounds) {
  // Paper B.1 / Fig. 6: available memory is 0-20% of peak; available
  // performance 0-100% of peak (with a 10% progress floor).
  DeviceSampler sampler(cifar_device_pool(), Heterogeneity::kBalanced, 5);
  for (int i = 0; i < 200; ++i) {
    const auto inst = sampler.sample();
    const Device& d = cifar_device_pool()[inst.pool_index];
    EXPECT_LE(static_cast<double>(inst.avail_mem_bytes),
              0.2 * static_cast<double>(d.mem_bytes()) + 1.0);
    EXPECT_GE(inst.avail_mem_bytes, 0);
    EXPECT_LE(inst.avail_flops, d.peak_flops());
    EXPECT_GE(inst.avail_flops, 0.1 * d.peak_flops());
  }
}

TEST(DeviceSampler, UnbalancedPrefersWeakDevices) {
  DeviceSampler balanced(cifar_device_pool(), Heterogeneity::kBalanced, 6);
  DeviceSampler unbalanced(cifar_device_pool(), Heterogeneity::kUnbalanced, 6);
  auto mean_mem = [](DeviceSampler& s) {
    double m = 0;
    for (int i = 0; i < 2000; ++i) m += static_cast<double>(s.sample().avail_mem_bytes);
    return m / 2000;
  };
  // The CIFAR pool's weak devices hold 2 GB vs a 2.5 GB balanced mean, so
  // inverse-weighting drops the mean by ~20%.
  EXPECT_LT(mean_mem(unbalanced), 0.9 * mean_mem(balanced));
}

TEST(DeviceSampler, Deterministic) {
  DeviceSampler a(cifar_device_pool(), Heterogeneity::kBalanced, 9);
  DeviceSampler b(cifar_device_pool(), Heterogeneity::kBalanced, 9);
  for (int i = 0; i < 20; ++i) {
    const auto ia = a.sample(), ib = b.sample();
    EXPECT_EQ(ia.pool_index, ib.pool_index);
    EXPECT_EQ(ia.avail_mem_bytes, ib.avail_mem_bytes);
  }
}

TEST(DeviceSampler, CifarPoolOftenCannotFitVgg16Training) {
  // The paper's premise: jFAT's 302 MB VGG16 exceeds most clients' real-time
  // available memory (0-20% of 1-4 GB), forcing memory swapping.
  DeviceSampler s(cifar_device_pool(), Heterogeneity::kBalanced, 10);
  int starved = 0;
  const std::int64_t need = 302ll << 20;
  for (int i = 0; i < 500; ++i) starved += s.sample().avail_mem_bytes < need;
  EXPECT_GT(starved, 250);
}

}  // namespace
}  // namespace fp::sys
