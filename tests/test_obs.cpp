// The observability plane (src/obs/, DESIGN.md §11).
//
// * Tracing must be purely observational: enabling it cannot move a single
//   training bit, so the pre-refactor golden hashes must hold with spans on.
// * The per-thread chunked buffers must be lossless under concurrent
//   emission (this file runs under TSan in CI).
// * The emitted Chrome-trace JSON must parse with the repo's own relaxed
//   parser and carry the keys chrome://tracing / Perfetto require.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <vector>

#include "baselines/jfat.hpp"
#include "blob_hash.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "exp/json.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

namespace fp {
namespace {

using test::fnv1a;

void set_tracing(bool on, std::int64_t sample_kernels = 16) {
  obs::ObsSettings s;
  s.trace = on;
  s.sample_kernels = sample_kernels;
  obs::configure(s);
}

/// Restores tracing-off even when a test's assertions fail early.
struct TracingGuard {
  ~TracingGuard() { set_tracing(false); }
};

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

std::filesystem::path obs_tmp_dir() {
  const auto dir = std::filesystem::temp_directory_path() / "fp_obs_test";
  std::filesystem::create_directories(dir);
  return dir;
}

// Same tiny scenario + golden constants as tests/test_runtime.cpp: the
// hashes were captured from the pre-refactor round loops and must be
// reproduced bit-for-bit even with span collection enabled.
data::TrainTest tiny_data() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 240;
  dcfg.test_size = 80;
  dcfg.num_classes = 4;
  return data::make_synthetic(dcfg);
}

fed::FlConfig tiny_fl() {
  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  return fl;
}

fed::FedEnv tiny_env(const data::TrainTest& data, const fed::FlConfig& fl) {
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  return fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
}

constexpr std::uint64_t kJfatGoldenHash = 0xb497721331b34652ull;
constexpr std::uint64_t kFpGoldenHash = 0xf562929cf09c1982ull;

TEST(Trace, SpanNestingAndThreadAttribution) {
  TracingGuard guard;
  set_tracing(true);
  {
    FP_TRACE_SCOPE("obs_outer", "test");
    { FP_TRACE_SCOPE_ARG("obs_inner", "test", "value", 7); }
  }
  std::thread child([] {
    obs::set_thread_name("obs-child");
    FP_TRACE_SCOPE("obs_child", "test");
  });
  child.join();

  const auto events = obs::trace_snapshot();
  const obs::TraceEvent* outer = nullptr;
  const obs::TraceEvent* inner = nullptr;
  const obs::TraceEvent* from_child = nullptr;
  for (const auto& e : events) {
    if (e.name == "obs_outer") outer = &e;
    if (e.name == "obs_inner") inner = &e;
    if (e.name == "obs_child") from_child = &e;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(from_child, nullptr);

  // The inner span nests strictly inside the outer one, on the same thread.
  EXPECT_EQ(inner->tid, outer->tid);
  EXPECT_GE(inner->t0_ns, outer->t0_ns);
  EXPECT_LE(inner->t1_ns, outer->t1_ns);
  EXPECT_EQ(inner->cat, "test");
  EXPECT_EQ(inner->arg_name, "value");
  EXPECT_EQ(inner->arg, 7);
  // The child thread's span lands in its own named lane.
  EXPECT_NE(from_child->tid, outer->tid);
  EXPECT_EQ(from_child->thread_name, "obs-child");
  EXPECT_EQ(outer->pid, 0u);
}

TEST(Trace, EpochIsolatesRuns) {
  TracingGuard guard;
  set_tracing(true);
  { FP_TRACE_SCOPE("obs_stale", "test"); }
  // Re-enabling starts a fresh epoch: the earlier span must not replay.
  set_tracing(true);
  { FP_TRACE_SCOPE("obs_fresh", "test"); }
  bool saw_stale = false, saw_fresh = false;
  for (const auto& e : obs::trace_snapshot()) {
    if (e.name == "obs_stale") saw_stale = true;
    if (e.name == "obs_fresh") saw_fresh = true;
  }
  EXPECT_FALSE(saw_stale);
  EXPECT_TRUE(saw_fresh);
}

TEST(Trace, ConcurrentEmissionIsLossless) {
  TracingGuard guard;
  set_tracing(true);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;  // ~12 chunks per thread, far below cap
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([] {
      for (int i = 0; i < kPerThread; ++i) {
        FP_TRACE_SCOPE_ARG("obs_stress", "test", "i", i);
      }
    });
  for (auto& t : threads) t.join();

  std::int64_t count = 0;
  for (const auto& e : obs::trace_snapshot())
    if (e.name == "obs_stress") ++count;
  EXPECT_EQ(count, static_cast<std::int64_t>(kThreads) * kPerThread);
  EXPECT_EQ(obs::dropped_events(), 0);
}

TEST(Trace, KernelSpansAreSampledOneInN) {
  TracingGuard guard;
  set_tracing(true, /*sample_kernels=*/8);
  // A fresh thread starts with a zeroed per-thread sample counter, making
  // the 1-in-8 pattern deterministic: calls 0, 8, ..., 56 are traced.
  constexpr int kCalls = 64;
  std::thread worker([] {
    const std::vector<float> a(4 * 4, 1.0f), b(4 * 4, 2.0f);
    std::vector<float> c(4 * 4, 0.0f);
    for (int i = 0; i < kCalls; ++i)
      gemm(false, false, 4, 4, 4, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });
  worker.join();

  std::int64_t gemm_spans = 0;
  for (const auto& e : obs::trace_snapshot())
    if (e.name == "gemm" && e.cat == "kernel") ++gemm_spans;
  EXPECT_EQ(gemm_spans, kCalls / 8);
}

TEST(Trace, WrittenJsonParsesWithRequiredKeys) {
  TracingGuard guard;
  set_tracing(true);
  obs::set_thread_name("obs-json-main");
  { FP_TRACE_SCOPE_ARG("obs_json_span", "test", "items", 3); }

  const std::string path = (obs_tmp_dir() / "trace.json").string();
  ASSERT_TRUE(obs::write_trace_json(path));
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());

  // The repo's own relaxed parser must accept the file (arrays flattened as
  // traceEvents.<i>.<field>).
  const exp::FlatJson flat = exp::parse_json_relaxed(text);
  bool has_display_unit = false;
  bool has_process_meta = false;
  bool has_thread_meta = false;
  std::string span_prefix;
  for (const auto& [key, value] : flat) {
    if (key == "displayTimeUnit") has_display_unit = true;
    if (value == "process_name") has_process_meta = true;
    if (value == "thread_name") has_thread_meta = true;
    if (value == "obs_json_span")
      span_prefix = key.substr(0, key.size() - std::string("name").size());
  }
  EXPECT_TRUE(has_display_unit);
  EXPECT_TRUE(has_process_meta);
  EXPECT_TRUE(has_thread_meta);
  ASSERT_FALSE(span_prefix.empty()) << "span missing from " << path;

  auto field = [&](const char* name) -> std::string {
    for (const auto& [key, value] : flat)
      if (key == span_prefix + name) return value;
    return "";
  };
  EXPECT_EQ(field("ph"), "X");
  EXPECT_EQ(field("cat"), "test");
  EXPECT_EQ(field("pid"), "0");
  EXPECT_FALSE(field("ts").empty());
  EXPECT_FALSE(field("dur").empty());
  EXPECT_FALSE(field("tid").empty());
  EXPECT_EQ(field("args.items"), "3");
}

TEST(Metrics, CountersAreExactUnderParallelIncrements) {
  obs::Counter& c = obs::counter("test.parallel_counter");
  c.set(0);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.add();
    });
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::int64_t>(kThreads) * kPerThread);

  obs::Counter& peak = obs::counter("test.peak_counter");
  peak.set(0);
  peak.set_max(10);
  peak.set_max(3);
  EXPECT_EQ(peak.value(), 10);
}

TEST(Metrics, JsonExportParsesAndCarriesCounters) {
  obs::counter("test.export_counter").set(42);
  const std::string path = (obs_tmp_dir() / "run.metrics.json").string();
  ASSERT_TRUE(obs::write_metrics_json(path));

  const exp::FlatJson flat = exp::parse_json_object(read_file(path));
  std::string exported, rss;
  for (const auto& [key, value] : flat) {
    if (key == "metrics.test.export_counter") exported = value;
    if (key == "metrics.process.rss_peak_kb") rss = value;
  }
  EXPECT_EQ(exported, "42");
  ASSERT_FALSE(rss.empty());
  EXPECT_GT(std::stoll(rss), 0);
}

TEST(Metrics, PhaseTimerDoesNotDoubleCountReentry) {
  obs::phase_reset();
  const auto sleep_ms = std::chrono::milliseconds(100);
  {
    obs::PhaseTimer outer(obs::Phase::kEval);
    {
      // Nested same-phase scope: only the outermost may accumulate.
      obs::PhaseTimer inner(obs::Phase::kEval);
      std::this_thread::sleep_for(sleep_ms);
    }
  }
  const obs::PhaseBreakdown b = obs::phase_snapshot();
  EXPECT_GE(b.eval_s, 0.1);
  EXPECT_LT(b.eval_s, 0.2) << "nested PhaseTimer double-counted";
  obs::phase_reset();
}

// Enabling span collection must not perturb training: the golden aggregates
// captured from the pre-refactor loops (tests/test_runtime.cpp) must hold
// bit-for-bit with tracing ON, at multiple thread counts.
TEST(TracingOnGolden, JFatHashIsBitIdentical) {
  TracingGuard guard;
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  for (const int threads : {1, 4}) {
    core::set_num_threads(threads);
    set_tracing(true, /*sample_kernels=*/4);
    auto env = tiny_env(data, fl);
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    baselines::JFat algo(env, cfg);
    algo.run();
    EXPECT_EQ(fnv1a(algo.global_model().save_all()), kJfatGoldenHash)
        << "tracing perturbed the aggregates at " << threads << " threads";
  }
  // The instrumented round loop actually produced spans.
  bool saw_round = false, saw_client = false;
  for (const auto& e : obs::trace_snapshot()) {
    if (e.name == "round") saw_round = true;
    if (e.name == "client") saw_client = true;
  }
  EXPECT_TRUE(saw_round);
  EXPECT_TRUE(saw_client);
  EXPECT_EQ(obs::dropped_events(), 0);
  core::set_num_threads(1);
}

TEST(TracingOnGolden, FedProphetHashIsBitIdentical) {
  TracingGuard guard;
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  core::set_num_threads(4);
  set_tracing(true, /*sample_kernels=*/4);
  auto env = tiny_env(data, fl);
  fedprophet::FedProphetConfig cfg;
  cfg.fl = fl;
  cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
  const auto full = sys::module_train_mem_bytes(
      cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
  cfg.rmin_bytes = full / 3;
  cfg.rounds_per_module = 2;
  cfg.eval_every = 2;
  cfg.val_samples = 32;
  cfg.device_mem_scale =
      static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
  fedprophet::FedProphet algo(env, cfg);
  algo.train();
  EXPECT_EQ(fnv1a(algo.global_model().save_all()), kFpGoldenHash)
      << "tracing perturbed the FedProphet aggregates";
  core::set_num_threads(1);
}

}  // namespace
}  // namespace fp
