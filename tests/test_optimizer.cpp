#include <gtest/gtest.h>

#include "nn/linear.hpp"
#include "nn/optimizer.hpp"
#include "nn/serialize.hpp"

namespace fp {
namespace {

TEST(Sgd, PlainStepMatchesManual) {
  Tensor p = Tensor::from_vector({2}, {1.0f, -1.0f});
  Tensor g = Tensor::from_vector({2}, {0.5f, 0.25f});
  nn::Sgd opt({&p}, {&g}, {0.1f, 0.0f, 0.0f});
  opt.step();
  EXPECT_FLOAT_EQ(p[0], 1.0f - 0.1f * 0.5f);
  EXPECT_FLOAT_EQ(p[1], -1.0f - 0.1f * 0.25f);
}

TEST(Sgd, MomentumAccumulates) {
  Tensor p = Tensor::from_vector({1}, {0.0f});
  Tensor g = Tensor::from_vector({1}, {1.0f});
  nn::Sgd opt({&p}, {&g}, {0.1f, 0.9f, 0.0f});
  opt.step();  // v = 1, p = -0.1
  EXPECT_FLOAT_EQ(p[0], -0.1f);
  opt.step();  // v = 1.9, p = -0.1 - 0.19
  EXPECT_FLOAT_EQ(p[0], -0.29f);
}

TEST(Sgd, WeightDecayAddsL2Pull) {
  Tensor p = Tensor::from_vector({1}, {2.0f});
  Tensor g = Tensor::from_vector({1}, {0.0f});
  nn::Sgd opt({&p}, {&g}, {0.5f, 0.0f, 0.1f});
  opt.step();  // effective grad = 0.1 * 2 = 0.2; p = 2 - 0.5*0.2
  EXPECT_FLOAT_EQ(p[0], 1.9f);
}

TEST(Sgd, ResetStateClearsMomentum) {
  Tensor p = Tensor::from_vector({1}, {0.0f});
  Tensor g = Tensor::from_vector({1}, {1.0f});
  nn::Sgd opt({&p}, {&g}, {0.1f, 0.9f, 0.0f});
  opt.step();
  opt.reset_state();
  opt.step();  // momentum starts over: p = -0.1 - 0.1
  EXPECT_FLOAT_EQ(p[0], -0.2f);
}

TEST(Sgd, StateNumelCountsAllParams) {
  Tensor a({3, 4}), b({5});
  Tensor ga({3, 4}), gb({5});
  nn::Sgd opt({&a, &b}, {&ga, &gb}, {});
  EXPECT_EQ(opt.state_numel(), 17);
}

TEST(Sgd, MismatchedListsThrow) {
  Tensor p({2}), g({2});
  EXPECT_THROW(nn::Sgd({&p}, {}, {}), std::invalid_argument);
}

TEST(ExpDecaySchedule, MatchesClosedForm) {
  nn::ExpDecaySchedule sched(0.01f, 0.994f);
  EXPECT_FLOAT_EQ(sched.lr_at(0), 0.01f);
  EXPECT_NEAR(sched.lr_at(100), 0.01f * std::pow(0.994f, 100.0f), 1e-7);
}

TEST(Sgd, ReducesLossOnLeastSquares) {
  // y = Wx regression: loss must drop monotonically-ish under SGD.
  Rng rng(21);
  nn::Linear lin(4, 1, rng);
  nn::Sgd opt(lin.parameters(), lin.gradients(), {0.05f, 0.9f, 0.0f});
  const Tensor w_true = Tensor::from_vector({1, 4}, {1, -2, 0.5, 3});
  const Tensor x = Tensor::randn({32, 4}, rng);
  Tensor y_true({32, 1});
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 4; ++j) y_true[i] += w_true[j] * x[i * 4 + j];

  auto mse_step = [&](bool update) {
    const Tensor y = lin.forward(x, true);
    Tensor diff = y.sub(y_true);
    const float loss = diff.dot(diff) / 32.0f;
    if (update) {
      lin.zero_grad();
      diff.scale_(2.0f / 32.0f);
      lin.backward(diff);
      opt.step();
    }
    return loss;
  };
  const float before = mse_step(false);
  for (int i = 0; i < 200; ++i) mse_step(true);
  const float after = mse_step(false);
  EXPECT_LT(after, 0.05f * before);
}

TEST(Serialize, SaveLoadRoundTrip) {
  Rng rng(22);
  nn::Linear lin(3, 2, rng);
  const auto blob = nn::save_blob(lin);
  EXPECT_EQ(blob.size(), 3u * 2u + 2u);
  nn::Linear lin2(3, 2, rng);
  nn::load_blob(lin2, blob);
  EXPECT_EQ(nn::save_blob(lin2), blob);
}

TEST(Serialize, LoadRejectsWrongSize) {
  Rng rng(23);
  nn::Linear lin(3, 2, rng);
  nn::ParamBlob blob(5, 0.0f);
  EXPECT_THROW(nn::load_blob(lin, blob), std::invalid_argument);
}

TEST(Serialize, BlobOps) {
  nn::ParamBlob acc;
  nn::blob_axpy(acc, {1.0f, 2.0f}, 0.5f);
  nn::blob_axpy(acc, {3.0f, 4.0f}, 0.5f);
  EXPECT_FLOAT_EQ(acc[0], 2.0f);
  EXPECT_FLOAT_EQ(acc[1], 3.0f);
  nn::blob_scale(acc, 2.0f);
  EXPECT_FLOAT_EQ(acc[0], 4.0f);
  EXPECT_NEAR(nn::blob_l2_distance({0.0f, 0.0f}, {3.0f, 4.0f}), 5.0, 1e-6);
  EXPECT_THROW(nn::blob_l2_distance({1.0f}, {1.0f, 2.0f}), std::invalid_argument);
}

TEST(Serialize, ParamCountExcludesBuffers) {
  Rng rng(24);
  nn::Linear lin(3, 2, rng);
  EXPECT_EQ(nn::param_count(lin), 8);
}

}  // namespace
}  // namespace fp
