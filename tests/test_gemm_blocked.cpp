// Parity and determinism tests for the blocked GEMM (tensor/gemm.cpp)
// against the seed's reference loops (gemm_reference).
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <tuple>

#include "core/parallel.hpp"
#include "tensor/ops.hpp"
#include "tensor/tensor.hpp"

namespace fp {
namespace {

struct GemmCase {
  std::int64_t m, n, k;
  float alpha, beta;
};

void expect_matches_reference(bool ta, bool tb, const GemmCase& gc) {
  Rng rng(0xfeed + static_cast<std::uint64_t>(gc.m * 131 + gc.n * 17 + gc.k));
  const Tensor a = Tensor::randn({ta ? gc.k : gc.m, ta ? gc.m : gc.k}, rng);
  const Tensor b = Tensor::randn({tb ? gc.n : gc.k, tb ? gc.k : gc.n}, rng);
  const Tensor c0 = Tensor::randn({gc.m, gc.n}, rng);

  Tensor c_ref = c0, c_blk = c0;
  gemm_reference(ta, tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), b.data(), gc.beta,
                 c_ref.data());
  gemm(ta, tb, gc.m, gc.n, gc.k, gc.alpha, a.data(), b.data(), gc.beta,
       c_blk.data());
  for (std::int64_t i = 0; i < gc.m * gc.n; ++i) {
    const float tol = 5e-4f * (std::abs(c_ref[i]) + 1.0f);
    ASSERT_NEAR(c_blk[i], c_ref[i], tol)
        << "ta=" << ta << " tb=" << tb << " m=" << gc.m << " n=" << gc.n
        << " k=" << gc.k << " alpha=" << gc.alpha << " beta=" << gc.beta
        << " at " << i;
  }
}

class BlockedGemmTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(BlockedGemmTest, MatchesReferenceOddSizesAlphaBeta) {
  const auto [ta, tb] = GetParam();
  // Sizes straddle every blocking boundary: single elements, partial
  // microkernel tiles, exact tile multiples, partial KC panels, and shapes
  // wider than they are tall (the batched-conv case).
  const GemmCase cases[] = {
      {1, 1, 1, 1.0f, 0.0f},      {3, 5, 7, 1.0f, 0.0f},
      {6, 16, 32, 0.5f, 1.0f},    {14, 32, 176, 1.0f, 0.0f},
      {7, 17, 19, 2.0f, -0.5f},   {13, 33, 65, 1.0f, 1.0f},
      {70, 100, 200, 1.0f, 0.0f}, {33, 257, 100, 0.5f, 0.25f},
      {5, 300, 9, 1.0f, 0.0f},    {130, 7, 181, 1.0f, 2.0f},
  };
  for (const auto& gc : cases) expect_matches_reference(ta, tb, gc);
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, BlockedGemmTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(BlockedGemm, AlphaZeroOnlyScalesC) {
  Rng rng(7);
  const Tensor a = Tensor::randn({4, 4}, rng), b = Tensor::randn({4, 4}, rng);
  Tensor c = Tensor::randn({4, 4}, rng);
  const Tensor c0 = c;
  gemm(false, false, 4, 4, 4, 0.0f, a.data(), b.data(), 1.0f, c.data());
  for (std::int64_t i = 0; i < 16; ++i) EXPECT_EQ(c[i], c0[i]);
}

TEST(BlockedGemm, PropagatesNanFromZeroTimesInf) {
  // The seed kernel's `if (av == 0) continue` silently dropped 0 * inf = NaN;
  // both the blocked kernel and the repaired reference must propagate it.
  const std::int64_t n = 4;
  Tensor a({n, n}), b({n, n});
  a.fill(0.0f);
  b.fill(1.0f);
  b[0] = std::numeric_limits<float>::infinity();
  for (auto* f : {&gemm, &gemm_reference}) {
    Tensor c({n, n});
    (*f)(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    EXPECT_TRUE(std::isnan(c[0])) << "0 * inf must contaminate C[0,0]";
  }
}

TEST(BlockedGemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(99);
  const std::int64_t m = 150, n = 170, k = 190;
  const Tensor a = Tensor::randn({m, k}, rng), b = Tensor::randn({k, n}, rng);
  Tensor c1({m, n}), c4({m, n});
  core::set_num_threads(1);
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  core::set_num_threads(4);
  gemm(false, false, m, n, k, 1.0f, a.data(), b.data(), 0.0f, c4.data());
  core::set_num_threads(1);
  for (std::int64_t i = 0; i < m * n; ++i)
    ASSERT_EQ(c1[i], c4[i]) << "thread count changed the summation order at " << i;
}

}  // namespace
}  // namespace fp
