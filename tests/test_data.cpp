#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "data/partition.hpp"
#include "data/synthetic.hpp"

namespace fp::data {
namespace {

TEST(Synthetic, ShapesAndPixelRange) {
  SyntheticConfig cfg = synth_cifar_config();
  cfg.train_size = 200;
  cfg.test_size = 50;
  const auto tt = make_synthetic(cfg);
  EXPECT_EQ(tt.train.size(), 200);
  EXPECT_EQ(tt.test.size(), 50);
  EXPECT_EQ(tt.train.images.shape(),
            (std::vector<std::int64_t>{200, 3, 16, 16}));
  EXPECT_GE(tt.train.images.min(), 0.0f);
  EXPECT_LE(tt.train.images.max(), 1.0f);
  for (const auto y : tt.train.labels) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(Synthetic, DeterministicForSameSeed) {
  SyntheticConfig cfg = synth_cifar_config();
  cfg.train_size = 64;
  cfg.test_size = 16;
  const auto a = make_synthetic(cfg);
  const auto b = make_synthetic(cfg);
  EXPECT_EQ(a.train.labels, b.train.labels);
  for (std::int64_t i = 0; i < a.train.images.numel(); ++i)
    ASSERT_FLOAT_EQ(a.train.images[i], b.train.images[i]);
}

TEST(Synthetic, BalancedClassHistogram) {
  SyntheticConfig cfg = synth_cifar_config();
  cfg.train_size = 500;
  const auto tt = make_synthetic(cfg);
  const auto hist = tt.train.class_histogram();
  for (const auto h : hist) EXPECT_EQ(h, 50);
}

TEST(Synthetic, UnbalancedCaltechFlavour) {
  const auto cfg = synth_caltech_config();
  const auto tt = make_synthetic(cfg);
  const auto hist = tt.train.class_histogram();
  EXPECT_EQ(hist.size(), 32u);
  EXPECT_GT(hist.front(), hist.back());  // Zipf-like head
  EXPECT_GE(hist.back(), 2);
}

TEST(Synthetic, ClassesAreLinearlySeparatedOnAverage) {
  // Same-class samples must be closer than cross-class on average —
  // otherwise no model could learn the task.
  SyntheticConfig cfg = synth_cifar_config();
  cfg.train_size = 300;
  const auto tt = make_synthetic(cfg);
  // Class means.
  const std::int64_t per = tt.train.images.numel() / tt.train.size();
  std::vector<Tensor> means(10, Tensor({per}));
  std::vector<int> counts(10, 0);
  for (std::int64_t i = 0; i < tt.train.size(); ++i) {
    const auto y = static_cast<std::size_t>(tt.train.labels[i]);
    for (std::int64_t j = 0; j < per; ++j)
      means[y][j] += tt.train.images[i * per + j];
    ++counts[y];
  }
  for (std::size_t c = 0; c < 10; ++c) means[c].scale_(1.0f / counts[c]);
  double within = 0, across = 0;
  int nw = 0, na = 0;
  for (std::size_t a = 0; a < 10; ++a)
    for (std::size_t b = 0; b < 10; ++b) {
      const double d = means[a].sub(means[b]).l2_norm();
      if (a == b) continue;
      across += d;
      ++na;
    }
  // Per-sample distance to own class mean.
  for (std::int64_t i = 0; i < tt.train.size(); ++i) {
    const auto y = static_cast<std::size_t>(tt.train.labels[i]);
    Tensor s({per});
    for (std::int64_t j = 0; j < per; ++j)
      s[j] = tt.train.images[i * per + j] - means[y][j];
    within += s.l2_norm();
    ++nw;
  }
  (void)within;
  EXPECT_GT(across / na, 0.5);  // templates are genuinely distinct
}

TEST(Dataset, SubsetGathersRowsAndLabels) {
  Dataset ds;
  ds.num_classes = 3;
  ds.images = Tensor::from_vector({3, 1, 1, 1}, {10, 20, 30});
  ds.labels = {0, 1, 2};
  const Dataset sub = ds.subset({2, 0});
  EXPECT_EQ(sub.size(), 2);
  EXPECT_FLOAT_EQ(sub.images[0], 30.0f);
  EXPECT_EQ(sub.labels[0], 2);
  EXPECT_THROW(ds.subset({5}), std::out_of_range);
}

TEST(Dataset, AppendConcatenates) {
  Dataset a, b;
  a.num_classes = b.num_classes = 2;
  a.images = Tensor::from_vector({1, 1, 1, 1}, {1});
  a.labels = {0};
  b.images = Tensor::from_vector({2, 1, 1, 1}, {2, 3});
  b.labels = {1, 1};
  a.append(b);
  EXPECT_EQ(a.size(), 3);
  EXPECT_FLOAT_EQ(a.images[2], 3.0f);
  EXPECT_EQ(a.labels[2], 1);
}

TEST(BatchIterator, CoversEpochWithoutRepeats) {
  Dataset ds;
  ds.num_classes = 2;
  ds.images = Tensor::from_vector({8, 1, 1, 1}, {0, 1, 2, 3, 4, 5, 6, 7});
  ds.labels = {0, 0, 0, 0, 1, 1, 1, 1};
  Rng rng(51);
  BatchIterator it(ds, 4, rng);
  EXPECT_EQ(it.batches_per_epoch(), 2);
  std::vector<float> seen;
  for (int b = 0; b < 2; ++b) {
    const Batch batch = it.next();
    EXPECT_EQ(batch.x.dim(0), 4);
    for (std::int64_t i = 0; i < 4; ++i) seen.push_back(batch.x[i]);
  }
  std::sort(seen.begin(), seen.end());
  for (int i = 0; i < 8; ++i) EXPECT_FLOAT_EQ(seen[static_cast<std::size_t>(i)], i);
}

TEST(BatchIterator, BatchLargerThanDatasetClamps) {
  Dataset ds;
  ds.num_classes = 1;
  ds.images = Tensor::from_vector({2, 1, 1, 1}, {1, 2});
  ds.labels = {0, 0};
  Rng rng(52);
  BatchIterator it(ds, 64, rng);
  EXPECT_EQ(it.next().x.dim(0), 2);
}

TEST(Partition, NonIidCoversAllSamplesExactlyOnce) {
  SyntheticConfig scfg = synth_cifar_config();
  scfg.train_size = 400;
  const auto tt = make_synthetic(scfg);
  PartitionConfig pcfg;
  pcfg.num_clients = 10;
  const auto shards = partition_non_iid(tt.train, pcfg);
  ASSERT_EQ(shards.size(), 10u);
  std::int64_t total = 0;
  for (const auto& s : shards) total += s.size();
  EXPECT_EQ(total, 400);
}

TEST(Partition, NonIidSkewsEightyTwenty) {
  SyntheticConfig scfg = synth_cifar_config();
  scfg.train_size = 2000;
  const auto tt = make_synthetic(scfg);
  PartitionConfig pcfg;
  pcfg.num_clients = 10;
  const auto shards = partition_non_iid(tt.train, pcfg);
  // On each client the top-2 classes (20% of 10) should hold ~80% of data.
  double avg_major_frac = 0.0;
  for (const auto& s : shards) {
    auto hist = s.class_histogram();
    std::sort(hist.begin(), hist.end(), std::greater<>());
    const double top2 = static_cast<double>(hist[0] + hist[1]);
    avg_major_frac += top2 / static_cast<double>(s.size());
  }
  avg_major_frac /= static_cast<double>(shards.size());
  EXPECT_GT(avg_major_frac, 0.65);
  EXPECT_LT(avg_major_frac, 0.95);
}

TEST(Partition, IidIsRoughlyUniformPerClass) {
  SyntheticConfig scfg = synth_cifar_config();
  scfg.train_size = 1000;
  const auto tt = make_synthetic(scfg);
  const auto shards = partition_iid(tt.train, 5, 3);
  for (const auto& s : shards) {
    EXPECT_EQ(s.size(), 200);
    const auto hist = s.class_histogram();
    for (const auto h : hist) {
      EXPECT_GT(h, 5);
      EXPECT_LT(h, 40);
    }
  }
}

TEST(Partition, PublicSplitIsStratified) {
  SyntheticConfig scfg = synth_cifar_config();
  scfg.train_size = 1000;
  const auto tt = make_synthetic(scfg);
  const auto split = split_public(tt.train, 0.1, 5);
  EXPECT_NEAR(static_cast<double>(split.public_set.size()), 100.0, 5.0);
  EXPECT_EQ(split.public_set.size() + split.remainder.size(), 1000);
  const auto hist = split.public_set.class_histogram();
  for (const auto h : hist) EXPECT_NEAR(static_cast<double>(h), 10.0, 3.0);
}

}  // namespace
}  // namespace fp::data
