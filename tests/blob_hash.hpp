// Shared test helper: FNV-1a over a ParamBlob's float bit patterns. The
// golden-hash tests (test_runtime) and the comm replay tests (test_comm)
// must hash identically, so there is exactly one definition.
#pragma once

#include <cstdint>
#include <cstring>

#include "nn/serialize.hpp"

namespace fp::test {

inline std::uint64_t fnv1a(const nn::ParamBlob& blob) {
  std::uint64_t h = 1469598103934665603ull;
  for (const float f : blob) {
    std::uint32_t bits;
    std::memcpy(&bits, &f, sizeof(bits));
    for (int b = 0; b < 4; ++b) {
      h ^= (bits >> (8 * b)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

}  // namespace fp::test
