// The federated round engine (fed/runtime/).
//
// * SyncScheduler must reproduce the PRE-REFACTOR round loops bit-for-bit:
//   the golden hashes below were captured from the hand-rolled per-method
//   loops (commit before the engine refactor) at FP_NUM_THREADS=1, and must
//   hold at every thread count.
// * AsyncScheduler must be a deterministic replay: same seed -> same event
//   order, same aggregates, same virtual clock, for any thread count.
// * The staleness-decayed mixing coefficient follows FedAsync's
//   alpha / (staleness + 1), and each blend's weights sum to one.
#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "baselines/jfat.hpp"
#include "blob_hash.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "exp/runner.hpp"
#include "fed/history_io.hpp"
#include "fed/runtime/scheduler.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp {
namespace {

using test::fnv1a;

data::TrainTest tiny_data() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 240;
  dcfg.test_size = 80;
  dcfg.num_classes = 4;
  return data::make_synthetic(dcfg);
}

fed::FlConfig tiny_fl() {
  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  return fl;
}

fed::FedEnv tiny_env(const data::TrainTest& data, const fed::FlConfig& fl) {
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  return fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
}

// Golden aggregates captured from the pre-refactor per-method round loops.
constexpr std::uint64_t kJfatGoldenHash = 0xb497721331b34652ull;
constexpr double kJfatGoldenCompute = 0.85740894486153907;
constexpr double kJfatGoldenAccess = 2.798402112722397;
constexpr std::uint64_t kFpGoldenHash = 0xf562929cf09c1982ull;
constexpr double kFpGoldenCompute = 0.0017925484216189708;
constexpr double kFpGoldenEps0 = 0.031372550874948502;
constexpr double kFpGoldenEps2 = 0.017202381044626236;

TEST(SyncScheduler, JFatMatchesPreRefactorGolden) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  for (const int threads : {1, 4}) {
    core::set_num_threads(threads);
    auto env = tiny_env(data, fl);
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    baselines::JFat algo(env, cfg);
    algo.run();
    EXPECT_EQ(fnv1a(algo.global_model().save_all()), kJfatGoldenHash)
        << "aggregates diverged from the pre-refactor loop at " << threads
        << " threads";
    EXPECT_EQ(algo.sim_time().compute_s, kJfatGoldenCompute);
    EXPECT_EQ(algo.sim_time().access_s, kJfatGoldenAccess);
    // The default IdentityCodec channel must be pure accounting: bytes are
    // counted, but neither the aggregates (hash above) nor the simulated
    // clock may move (network model off by default).
    EXPECT_EQ(cfg.fl.comm.codec, comm::CodecKind::kIdentity);
    EXPECT_GT(algo.total_stats().bytes_up, 0);
    EXPECT_GT(algo.total_stats().bytes_down, 0);
    EXPECT_EQ(algo.sim_time().comm_s, 0.0);
  }
  core::set_num_threads(1);
}

TEST(SyncScheduler, FedProphetMatchesPreRefactorGolden) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  for (const int threads : {1, 4}) {
    core::set_num_threads(threads);
    auto env = tiny_env(data, fl);
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    const auto full = sys::module_train_mem_bytes(
        cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
    cfg.rmin_bytes = full / 3;
    cfg.rounds_per_module = 2;
    cfg.eval_every = 2;
    cfg.val_samples = 32;
    cfg.device_mem_scale =
        static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
    fedprophet::FedProphet algo(env, cfg);
    algo.train();
    EXPECT_EQ(fnv1a(algo.global_model().save_all()), kFpGoldenHash)
        << "aggregates diverged from the pre-refactor loop at " << threads
        << " threads";
    EXPECT_EQ(algo.sim_time().compute_s, kFpGoldenCompute);
    // Identity wire codec: byte accounting without behavior change.
    EXPECT_GT(algo.total_stats().bytes_up, 0);
    EXPECT_EQ(algo.sim_time().comm_s, 0.0);
    ASSERT_EQ(algo.eps_trace().size(), 8u);
    EXPECT_EQ(algo.eps_trace()[0], kFpGoldenEps0);
    EXPECT_EQ(algo.eps_trace()[2], kFpGoldenEps2);
  }
  core::set_num_threads(1);
}

// The declarative experiment API must be a pure re-plumbing: building the
// same tiny scenario through ExperimentSpec + the method registry has to
// reproduce the PRE-REFACTOR golden aggregates bit for bit.
exp::ExperimentSpec tiny_exp_spec(const std::string& method) {
  exp::ExperimentSpec spec;
  spec.method = method;
  for (const char* kv : {
           "workload=cifar", "env.public_set=0", "data.train_size=240",
           "data.test_size=80", "model.classes=4", "model.width=4",
           "fl.num_clients=6", "fl.clients_per_round=3", "fl.local_iters=2",
           "fl.batch_size=16", "fl.pgd_steps=2", "fl.rounds=2", "fl.lr0=0.05",
           "fl.sgd.lr=0.05", "fl.lr_decay=0.994", "fl.seed=123",
       })
    exp::apply_override(spec, kv);
  return spec;
}

TEST(SyncScheduler, RegistryDrivenJFatMatchesPreRefactorGolden) {
  auto setup = exp::build_setup(tiny_exp_spec("jFAT"));
  exp::MethodRun run = exp::method_registry().resolve("jFAT")(setup);
  run.train();
  EXPECT_EQ(fnv1a(run.algo->global_model().save_all()), kJfatGoldenHash)
      << "registry-driven construction diverged from the pre-refactor loop";
  EXPECT_EQ(run.algo->sim_time().compute_s, kJfatGoldenCompute);
  EXPECT_EQ(run.algo->sim_time().access_s, kJfatGoldenAccess);
}

TEST(SyncScheduler, RegistryDrivenFedProphetMatchesPreRefactorGolden) {
  auto spec = tiny_exp_spec("FedProphet");
  const auto model = models::tiny_vgg_spec(16, 4, 4);
  const auto full = sys::module_train_mem_bytes(model, 0, model.atoms.size(),
                                                /*batch=*/16, false);
  spec.fp_rmin_bytes = full / 3;
  spec.fp_rounds_per_module = 2;
  spec.fp_eval_every = 2;
  spec.fp_val_samples = 32;
  spec.device_mem_scale =
      static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
  auto setup = exp::build_setup(spec);
  exp::MethodRun run = exp::method_registry().resolve("FedProphet")(setup);
  run.train();
  EXPECT_EQ(fnv1a(run.algo->global_model().save_all()), kFpGoldenHash)
      << "registry-driven construction diverged from the pre-refactor loop";
  EXPECT_EQ(run.algo->sim_time().compute_s, kFpGoldenCompute);
  auto& fp_algo = dynamic_cast<fedprophet::FedProphet&>(*run.algo);
  ASSERT_EQ(fp_algo.eps_trace().size(), 8u);
  EXPECT_EQ(fp_algo.eps_trace()[0], kFpGoldenEps0);
  EXPECT_EQ(fp_algo.eps_trace()[2], kFpGoldenEps2);
}

TEST(AsyncScheduler, ReplayIsSeedDeterministicAcrossThreadCounts) {
  const auto data = tiny_data();
  auto fl = tiny_fl();
  fl.scheduler = fed::SchedulerKind::kAsync;
  fl.rounds = 6;
  fl.async.dropout_prob = 0.25;
  fl.async.straggler_cutoff_s = 2.0;

  nn::ParamBlob blobs[2];
  double sim[2];
  std::size_t dropped[2];
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    core::set_num_threads(thread_counts[run]);
    auto env = tiny_env(data, fl);
    baselines::JFatConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    baselines::JFat algo(env, cfg);
    algo.run();
    blobs[run] = algo.global_model().save_all();
    sim[run] = algo.sim_time().total();
    dropped[run] =
        algo.total_stats().dropped_stragglers + algo.total_stats().dropped_out;
    EXPECT_EQ(algo.total_stats().applied, 6u);
  }
  core::set_num_threads(1);
  ASSERT_EQ(blobs[0].size(), blobs[1].size());
  for (std::size_t i = 0; i < blobs[0].size(); ++i)
    ASSERT_EQ(blobs[0][i], blobs[1][i]) << "async aggregate diverged at " << i;
  EXPECT_EQ(sim[0], sim[1]);
  EXPECT_EQ(dropped[0], dropped[1]);
}

TEST(AsyncScheduler, FedProphetAsyncRunsAndIsDeterministic) {
  const auto data = tiny_data();
  auto fl = tiny_fl();
  fl.scheduler = fed::SchedulerKind::kAsync;
  nn::ParamBlob blobs[2];
  for (int run = 0; run < 2; ++run) {
    auto env = tiny_env(data, fl);
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    const auto full = sys::module_train_mem_bytes(
        cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
    cfg.rmin_bytes = full / 3;
    cfg.rounds_per_module = 2;
    cfg.eval_every = 2;
    cfg.val_samples = 32;
    cfg.device_mem_scale =
        static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
    fedprophet::FedProphet algo(env, cfg);
    algo.train();
    blobs[run] = algo.global_model().save_all();
  }
  ASSERT_EQ(blobs[0].size(), blobs[1].size());
  for (std::size_t i = 0; i < blobs[0].size(); ++i)
    ASSERT_EQ(blobs[0][i], blobs[1][i]) << "replay diverged at element " << i;
}

// A probe method that records every apply: checks the FedAsync staleness
// weighting alpha / (staleness + 1) and that each blend's weights sum to 1.
class ProbeMethod final : public fed::RoundMethod {
 public:
  struct Applied {
    std::int64_t dispatch_round = 0, finalize_round = -1;
    float mix = 0.0f, weight = 0.0f;
    fed::ApplyMode mode = fed::ApplyMode::kAccumulate;
  };
  void begin_dispatch(const std::vector<fed::TaskSpec>&) override {}
  fed::Upload train_client(const fed::TaskSpec& task) override {
    fed::Upload up;
    up.weight = task.weight;
    up.work.atom_begin = 0;
    up.work.atom_end = 1;
    return up;
  }
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override {
    applied.push_back({task.round, -1, mix, up.weight, mode});
  }
  void finalize_round(std::int64_t t) override {
    if (!applied.empty() && applied.back().finalize_round < 0)
      applied.back().finalize_round = t;
  }
  std::vector<Applied> applied;
};

TEST(AsyncScheduler, StalenessWeightsFollowFedAsyncDecay) {
  const auto data = tiny_data();
  auto fl = tiny_fl();
  fl.scheduler = fed::SchedulerKind::kAsync;
  fl.async.scale_by_data = false;  // isolate the staleness term
  fl.async.alpha = 0.6;
  auto env = tiny_env(data, fl);
  fed::RoundEngine engine(env, fl);
  ProbeMethod probe;
  const std::int64_t rounds = 8;
  for (std::int64_t t = 0; t < rounds; ++t) engine.run_round(probe, t);

  ASSERT_EQ(probe.applied.size(), static_cast<std::size_t>(rounds));
  for (const auto& a : probe.applied) {
    EXPECT_EQ(a.mode, fed::ApplyMode::kBlend);
    const double staleness =
        static_cast<double>(a.finalize_round - a.dispatch_round);
    ASSERT_GE(staleness, 0.0);
    const double expect =
        std::clamp(fl.async.alpha / (staleness + 1.0), fl.async.min_mix, 1.0);
    EXPECT_FLOAT_EQ(a.mix, static_cast<float>(expect));
    // The blend global <- (1-mix)*global + mix*upload is a convex
    // combination: its weights sum to one by construction.
    EXPECT_GT(a.mix, 0.0f);
    EXPECT_LE(a.mix, 1.0f);
  }
}

TEST(RoundEngine, PersistentDeviceBindingKeepsClientOnItsDevice) {
  const auto data = tiny_data();
  const auto fl = tiny_fl();
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  ecfg.persistent_devices = true;
  auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
  ASSERT_EQ(env.device_of_client.size(),
            static_cast<std::size_t>(env.num_clients()));

  fed::RoundEngine engine(env, fl);
  std::vector<std::size_t> seen(env.device_of_client.size(), SIZE_MAX);
  for (std::int64_t t = 0; t < 12; ++t) {
    for (const auto& task : engine.sample_tasks(t, fl.clients_per_round)) {
      ASSERT_TRUE(task.has_device);
      EXPECT_EQ(task.device.pool_index, env.device_of_client[task.client]);
      if (seen[task.client] == SIZE_MAX)
        seen[task.client] = task.device.pool_index;
      EXPECT_EQ(task.device.pool_index, seen[task.client])
          << "client " << task.client << " switched devices";
    }
  }
}

TEST(HistoryIo, CsvRoundTripsRecords) {
  fed::History h;
  h.push_back({5, 0.5, 0.25, 12.5, 0.01, 1024, 4096, 777, 32, 256, 0.75, 2.25});
  h.push_back(
      {10, 0.625, 0.375, 30.0, 0.02, 2048, 8192, 888, 48, 512, 1.5, 4.5});
  const auto dir = std::filesystem::temp_directory_path() / "fp_history_io";
  const auto path = (dir / "m.csv").string();
  ASSERT_TRUE(fed::write_history_csv(path, h));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line,
            "round,clean_acc,adv_acc,sim_time_s,bytes_up,bytes_down,"
            "peak_mem_bytes,unique_participants,agg_bytes_saved,"
            "measured_comm_s,round_wall_s,extra");
  int rows = 0;
  std::string first_row;
  while (std::getline(in, line))
    if (!line.empty()) {
      if (first_row.empty()) first_row = line;
      ++rows;
    }
  EXPECT_EQ(rows, 2);
  EXPECT_NE(first_row.find(",1024,4096,777,32,256,0.75,2.25,"),
            std::string::npos)
      << "per-round byte + peak-mem + scale counts missing from CSV row: "
      << first_row;

  const auto jpath = (dir / "m.json").string();
  ASSERT_TRUE(fed::write_history_json(jpath, "FedProphet", h));
  EXPECT_GT(std::filesystem::file_size(jpath), 0u);
  std::ifstream jin(jpath);
  const std::string json((std::istreambuf_iterator<char>(jin)),
                         std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"bytes_up\": 1024"), std::string::npos);
  EXPECT_NE(json.find("\"bytes_down\": 8192"), std::string::npos);
  EXPECT_NE(json.find("\"peak_mem_bytes\": 777"), std::string::npos);
  EXPECT_NE(json.find("\"unique_participants\": 48"), std::string::npos);
  EXPECT_NE(json.find("\"agg_bytes_saved\": 512"), std::string::npos);
  EXPECT_NE(json.find("\"measured_comm_s\": 1.5"), std::string::npos);
  EXPECT_NE(json.find("\"round_wall_s\": 4.5"), std::string::npos);
  EXPECT_EQ(fed::sanitize_filename("jFAT (fast/42)"), "jFAT__fast_42_");
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace fp
