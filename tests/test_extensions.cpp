// Tests for the paper-§8 extensions: LoRA adapters, low-bit training
// accounting, checkpoint I/O, and the Square black-box attack.
#include <gtest/gtest.h>

#include <cstdio>

#include "attack/square.hpp"
#include "grad_check.hpp"
#include <fstream>

#include "models/zoo.hpp"
#include "nn/linear.hpp"
#include "nn/lora.hpp"
#include "nn/model_io.hpp"
#include "nn/optimizer.hpp"
#include "nn/quantize.hpp"
#include "sysmodel/cost_model.hpp"
#include "tensor/ops.hpp"

namespace fp {
namespace {

// ---- LoRA -------------------------------------------------------------------

TEST(LoRaLinear, StartsAsExactNoOp) {
  Rng rng(101);
  const Tensor w0 = Tensor::randn({4, 6}, rng);
  const Tensor bias = Tensor::randn({4}, rng);
  nn::LoRaLinear lora(w0, bias, 2, 4.0f, rng);
  nn::Linear dense(6, 4, rng);
  dense.weight() = w0;
  dense.bias() = bias;
  const Tensor x = Tensor::randn({3, 6}, rng);
  const Tensor ya = lora.forward(x, true);
  const Tensor yb = dense.forward(x, true);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_NEAR(ya[i], yb[i], 1e-5f);
}

TEST(LoRaLinear, GradientsMatchFiniteDifferences) {
  Rng rng(102);
  const Tensor w0 = Tensor::randn({5, 7}, rng);
  nn::LoRaLinear lora(w0, Tensor::randn({5}, rng), 3, 3.0f, rng);
  // Give B a non-zero value so both factor gradients are exercised.
  for (auto& v : lora.parameters()[1]->span()) v = rng.gaussian(0.0f, 0.3f);
  const Tensor x = Tensor::randn({4, 7}, rng);
  test::check_layer_gradients(lora, x);
}

TEST(LoRaLinear, MergedWeightMatchesForward) {
  Rng rng(103);
  const Tensor w0 = Tensor::randn({4, 5}, rng);
  nn::LoRaLinear lora(w0, Tensor({0}), 2, 2.0f, rng);
  for (auto& v : lora.parameters()[1]->span()) v = rng.gaussian();
  nn::Linear merged(5, 4, rng, /*bias=*/false);
  merged.weight() = lora.merged_weight();
  const Tensor x = Tensor::randn({2, 5}, rng);
  const Tensor ya = lora.forward(x, true);
  const Tensor yb = merged.forward(x, true);
  for (std::int64_t i = 0; i < ya.numel(); ++i) EXPECT_NEAR(ya[i], yb[i], 1e-4f);
}

TEST(LoRaLinear, TrainableStateShrinks) {
  Rng rng(104);
  nn::LoRaLinear lora(Tensor({64, 128}), Tensor({0}), 4, 4.0f, rng);
  EXPECT_EQ(lora.trainable_params(), 4 * (64 + 128));
  EXPECT_EQ(lora.dense_params(), 64 * 128);
  EXPECT_LT(lora.trainable_params() * 10, lora.dense_params());
  EXPECT_THROW(nn::LoRaLinear(Tensor({4, 4}), Tensor({0}), 5, 1.0f, rng),
               std::invalid_argument);
}

TEST(LoRaLinear, AdapterLearnsResidualTask) {
  // Frozen W0 is wrong for the task; the rank-1 adapter must fix it.
  Rng rng(105);
  nn::LoRaLinear lora(Tensor::zeros({1, 4}), Tensor({0}), 1, 1.0f, rng);
  // Bilinear factor training is sensitive to the step size: keep it small.
  nn::Sgd opt(lora.parameters(), lora.gradients(), {0.02f, 0.9f, 0.0f});
  const Tensor w_true = Tensor::from_vector({1, 4}, {2, -1, 0.5, 1});
  const Tensor x = Tensor::randn({32, 4}, rng);
  Tensor y_true({32, 1});
  for (int i = 0; i < 32; ++i)
    for (int j = 0; j < 4; ++j) y_true[i] += w_true[j] * x[i * 4 + j];
  float last = 0;
  for (int it = 0; it < 300; ++it) {
    const Tensor y = lora.forward(x, true);
    Tensor diff = y.sub(y_true);
    last = diff.dot(diff) / 32.0f;
    lora.zero_grad();
    diff.scale_(2.0f / 32.0f);
    lora.backward(diff);
    opt.step();
  }
  EXPECT_LT(last, 0.2f);  // rank-1 can represent the rank-1 target
}

// ---- fake quantization -------------------------------------------------------

TEST(Quantize, HighBitsIsIdentity) {
  Rng rng(106);
  const Tensor t = Tensor::randn({32}, rng);
  const Tensor q = nn::fake_quantize(t, 16);
  for (std::int64_t i = 0; i < t.numel(); ++i) EXPECT_FLOAT_EQ(q[i], t[i]);
}

TEST(Quantize, ErrorWithinHalfStep) {
  Rng rng(107);
  const Tensor t = Tensor::randn({256}, rng, 3.0f);
  for (const int bits : {2, 4, 8}) {
    const Tensor q = nn::fake_quantize(t, bits);
    const float bound = nn::quantization_error_bound(t, bits);
    for (std::int64_t i = 0; i < t.numel(); ++i)
      EXPECT_LE(std::abs(q[i] - t[i]), bound * 1.0001f) << "bits=" << bits;
  }
}

TEST(Quantize, FewerBitsMoreError) {
  Rng rng(108);
  const Tensor t = Tensor::randn({512}, rng);
  double err2 = 0, err8 = 0;
  const Tensor q2 = nn::fake_quantize(t, 2), q8 = nn::fake_quantize(t, 8);
  for (std::int64_t i = 0; i < t.numel(); ++i) {
    err2 += std::abs(q2[i] - t[i]);
    err8 += std::abs(q8[i] - t[i]);
  }
  EXPECT_GT(err2, err8);
}

TEST(Quantize, LowBitMemoryComposesWithPartitioner) {
  const auto spec = models::vgg16_spec(32, 10);
  const auto fp32 =
      nn::low_bit_mem_bytes(spec, 0, spec.atoms.size(), 64, false, 32);
  const auto int8 =
      nn::low_bit_mem_bytes(spec, 0, spec.atoms.size(), 64, false, 8);
  const auto baseline =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 64, false);
  EXPECT_EQ(fp32, baseline);  // 32-bit accounting must agree exactly
  EXPECT_LT(int8, baseline);
  // Gradients+momentum stay fp32, so the floor is 2/3 of the param term.
  EXPECT_GT(int8, baseline / 4);
}

// ---- checkpoint I/O ----------------------------------------------------------

TEST(ModelIo, RoundTripsBlob) {
  Rng rng(109);
  const std::string path = "/tmp/fp_ckpt_test.bin";
  nn::Linear lin(6, 3, rng);
  nn::save_layer_checkpoint(path, lin);
  nn::Linear lin2(6, 3, rng);
  nn::load_layer_checkpoint(path, lin2);
  EXPECT_EQ(nn::save_blob(lin2), nn::save_blob(lin));
  std::remove(path.c_str());
}

TEST(ModelIo, DetectsCorruption) {
  Rng rng(110);
  const std::string path = "/tmp/fp_ckpt_corrupt.bin";
  nn::ParamBlob blob{1.0f, 2.0f, 3.0f};
  nn::save_checkpoint(path, blob);
  // Flip a payload byte.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+b");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 4 + 4 + 8 + 1, SEEK_SET);
    std::fputc(0x7f, f);
    std::fclose(f);
  }
  EXPECT_THROW(nn::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(ModelIo, RejectsMissingAndGarbageFiles) {
  EXPECT_THROW(nn::load_checkpoint("/tmp/fp_no_such_file.bin"), std::runtime_error);
  const std::string path = "/tmp/fp_ckpt_garbage.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "not a checkpoint";
  }
  EXPECT_THROW(nn::load_checkpoint(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- Square attack -----------------------------------------------------------

TEST(SquareAttack, StaysInBallAndReducesMargin) {
  Rng rng(111);
  // Margin of a fixed linear classifier on flattened pixels.
  const std::int64_t c = 3, h = 8, w = 8, classes = 4;
  const Tensor wmat = Tensor::randn({classes, c * h * w}, rng, 0.2f);
  auto margin = [&](const Tensor& x, const std::vector<std::int64_t>& y) {
    const std::int64_t n = x.dim(0);
    std::vector<float> out(static_cast<std::size_t>(n));
    for (std::int64_t i = 0; i < n; ++i) {
      float best_other = -1e30f, self = 0;
      for (std::int64_t cls = 0; cls < classes; ++cls) {
        float logit = 0;
        for (std::int64_t j = 0; j < c * h * w; ++j)
          logit += wmat[cls * c * h * w + j] * x[i * c * h * w + j];
        if (cls == y[static_cast<std::size_t>(i)])
          self = logit;
        else
          best_other = std::max(best_other, logit);
      }
      out[static_cast<std::size_t>(i)] = self - best_other;
    }
    return out;
  };

  const Tensor x = Tensor::rand_uniform({4, c, h, w}, rng, 0.2f, 0.8f);
  const std::vector<std::int64_t> y{0, 1, 2, 3};
  attack::SquareConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.iterations = 60;
  const Tensor adv = attack::square_attack(margin, x, y, cfg, rng);
  // l_inf ball + valid range.
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), cfg.epsilon + 1e-5f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
  // The attack must not increase any sample's margin.
  const auto before = margin(x, y);
  const auto after = margin(adv, y);
  double total_before = 0, total_after = 0;
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_LE(after[i], before[i] + 1e-5f);
    total_before += before[i];
    total_after += after[i];
  }
  EXPECT_LT(total_after, total_before);  // and strictly helps in aggregate
}

}  // namespace
}  // namespace fp
