// Serving plane tests (DESIGN.md §12): JSON wire format, the micro-batching
// queue, and the HTTP server end to end over real loopback sockets.
//
// The load-bearing assertion is the exactness contract: responses served
// through coalesced batches are byte-identical to what the offline
// single-sample reference forward renders — for fp32 AND for the
// int8/Winograd inference path — under genuinely concurrent clients. This
// file runs under TSan in CI, so it doubles as the data-race check for the
// batcher/handler/acceptor topology.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/json.hpp"
#include "exp/registries.hpp"
#include "exp/runner.hpp"
#include "exp/spec.hpp"
#include "models/built_model.hpp"
#include "net/http.hpp"
#include "net/socket.hpp"
#include "serve/batcher.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"
#include "serve/wire_json.hpp"
#include "tensor/rng.hpp"

namespace fp {
namespace {

// ---- wire format ------------------------------------------------------------

TEST(WireJson, RequestRoundTripIsBitExact) {
  Rng rng(11);
  const Tensor x = Tensor::randn({3, 2, 4, 4}, rng);
  const Tensor back =
      serve::parse_predict_request(serve::render_predict_request(x), 2, 4, 4);
  ASSERT_EQ(back.numel(), x.numel());
  for (std::int64_t i = 0; i < x.numel(); ++i) EXPECT_EQ(back[i], x[i]);
}

TEST(WireJson, FastPathMatchesRelaxedParser) {
  Rng rng(12);
  const Tensor x = Tensor::randn({2, 1, 2, 2}, rng);
  const std::string tight = serve::render_predict_request(x);
  // Whitespace rides the fast path and an unknown nested object (with
  // brackets inside a string) exercises its skipper. Same tensor either way.
  std::string spaced;
  for (const char c : tight) {
    spaced += c;
    if (c == ',') spaced += "\n  ";
  }
  spaced.insert(1, "\"client\": {\"id\": \"a[b]c\"}, ");
  const Tensor a = serve::parse_predict_request(tight, 1, 2, 2);
  const Tensor b = serve::parse_predict_request(spaced, 1, 2, 2);
  for (std::int64_t i = 0; i < a.numel(); ++i) EXPECT_EQ(a[i], b[i]);

  const Tensor single = serve::parse_predict_request(
      "{\"input\": [1.5, -2, 3e-2, 4]}", 1, 2, 2);
  EXPECT_EQ(single.dim(0), 1);
  EXPECT_EQ(single[0], 1.5f);
  EXPECT_EQ(single[2], 0.03f);
}

TEST(WireJson, RejectsBadBodies) {
  EXPECT_THROW(serve::parse_predict_request("{}", 1, 2, 2),
               serve::BadRequest);
  EXPECT_THROW(serve::parse_predict_request("{\"inputs\": []}", 1, 2, 2),
               serve::BadRequest);
  EXPECT_THROW(serve::parse_predict_request("not json", 1, 2, 2),
               serve::BadRequest);
  // Wrong element count names the sample and both numbers.
  try {
    serve::parse_predict_request("{\"input\": [1, 2, 3]}", 1, 2, 2);
    FAIL() << "expected BadRequest";
  } catch (const serve::BadRequest& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("sample 0 has 3"), std::string::npos) << msg;
    EXPECT_NE(msg.find("expected 4"), std::string::npos) << msg;
  }
  // Non-numeric values fall back to the relaxed parser's diagnostic.
  EXPECT_THROW(
      serve::parse_predict_request("{\"inputs\": [[1, \"x\"]]}", 1, 2, 2),
      serve::BadRequest);
}

// ---- micro-batcher ----------------------------------------------------------

TEST(MicroBatcher, CoalescesConcurrentRequests) {
  serve::BatchConfig cfg;
  cfg.max_batch = 8;
  cfg.max_delay_ms = 20.0;
  serve::MicroBatcher batcher(cfg, [](const Tensor& x) {
    // Identity-ish forward slow enough for the closed loop to pile up.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    Tensor out({x.dim(0), 1});
    for (std::int64_t i = 0; i < x.dim(0); ++i) out.data()[i] = x[i * 4];
    return out;
  });
  batcher.start();

  constexpr int kThreads = 8, kPerThread = 8;
  std::atomic<std::int64_t> max_ride{0};
  std::vector<std::thread> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.emplace_back([&, t] {
      Rng rng(100 + t);
      for (int i = 0; i < kPerThread; ++i) {
        const Tensor x = Tensor::randn({1, 1, 2, 2}, rng);
        Tensor logits;
        std::int64_t ride = 0;
        ASSERT_EQ(batcher.predict(x, &logits, &ride),
                  serve::MicroBatcher::Status::kOk);
        ASSERT_EQ(logits.dim(0), 1);
        EXPECT_EQ(logits[0], x[0]);  // rows fanned back to the right caller
        EXPECT_GE(ride, 1);
        std::int64_t seen = max_ride.load();
        while (ride > seen && !max_ride.compare_exchange_weak(seen, ride)) {
        }
      }
    });
  }
  for (auto& c : clients) c.join();
  batcher.stop();

  EXPECT_EQ(batcher.batch_stats().samples(), kThreads * kPerThread);
  // 8 closed-loop clients against a 2ms forward MUST coalesce: if every
  // sample rode alone there were 64 batches; any coalescing gives fewer.
  EXPECT_LT(batcher.batch_stats().batches(), kThreads * kPerThread);
  EXPECT_GE(max_ride.load(), 2);
  EXPECT_LE(batcher.batch_stats().max(), cfg.max_batch);
}

TEST(MicroBatcher, RejectsAboveQueueCapAndAfterStop) {
  serve::BatchConfig cfg;
  cfg.max_batch = 1;
  cfg.max_delay_ms = 0.0;
  cfg.queue_cap = 1;
  std::atomic<bool> in_forward{false};
  std::atomic<bool> release{false};
  serve::MicroBatcher batcher(cfg, [&](const Tensor& x) {
    in_forward.store(true);
    while (!release.load()) std::this_thread::sleep_for(
        std::chrono::milliseconds(1));
    return Tensor({x.dim(0), 1});
  });

  Rng rng(1);
  const Tensor x = Tensor::randn({1, 1, 2, 2}, rng);
  // Not started yet: refuse rather than hang.
  Tensor logits;
  EXPECT_EQ(batcher.predict(x, &logits),
            serve::MicroBatcher::Status::kOverloaded);

  batcher.start();
  std::thread first([&] {
    Tensor out;
    EXPECT_EQ(batcher.predict(x, &out), serve::MicroBatcher::Status::kOk);
  });
  while (!in_forward.load())
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  // The batcher is busy; one job fits the queue, the next is shed.
  std::thread second([&] {
    Tensor out;
    EXPECT_EQ(batcher.predict(x, &out), serve::MicroBatcher::Status::kOk);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(batcher.predict(x, &logits),
            serve::MicroBatcher::Status::kOverloaded);
  EXPECT_GE(batcher.rejected(), 2);
  release.store(true);
  first.join();
  second.join();
  batcher.stop();
  EXPECT_EQ(batcher.predict(x, &logits),
            serve::MicroBatcher::Status::kOverloaded);
}

TEST(MicroBatcher, ReportsForwardFailure) {
  serve::BatchConfig cfg;
  cfg.max_delay_ms = 0.0;
  serve::MicroBatcher batcher(cfg, [](const Tensor&) -> Tensor {
    throw std::runtime_error("boom");
  });
  batcher.start();
  Rng rng(2);
  Tensor logits;
  EXPECT_EQ(batcher.predict(Tensor::randn({1, 1, 2, 2}, rng), &logits),
            serve::MicroBatcher::Status::kFailed);
  batcher.stop();
}

// ---- HTTP server end to end -------------------------------------------------

/// A registry model with deterministic weights (no training needed) plus the
/// resolved spec that rebuilds it — the same pair --save-model exports.
serve::ServedModel test_served_model(const std::string& precision,
                                     bool winograd) {
  exp::ExperimentSpec spec;
  spec.model_width = 4;
  exp::set_key(spec, "compute.precision", precision);
  exp::set_key(spec, "compute.winograd", winograd ? "1" : "0");
  spec.serve_port = 0;  // ephemeral: tests must not collide on a fixed port
  spec.serve_max_batch = 8;
  spec = exp::resolve_full(std::move(spec));
  const exp::ModelParams mp{spec.model_image, spec.model_classes,
                            spec.model_width};
  const sys::ModelSpec ms = exp::model_registry().resolve(spec.model)(mp);
  Rng rng(1234);
  models::BuiltModel source(ms, rng);
  return serve::make_served_model(spec, source.save_all());
}

net::HttpConn connect_to(const serve::InferenceServer& server) {
  return net::HttpConn(
      net::TcpConn::connect_retry(server.host(), server.port(), 5.0));
}

net::HttpResponse request(net::HttpConn& http, const std::string& method,
                          const std::string& target,
                          const std::string& body = "") {
  http.send_request(method, target, body);
  net::HttpResponse resp;
  EXPECT_EQ(http.read_response(&resp, 10.0), net::HttpConn::Read::kRequest);
  return resp;
}

void expect_served_matches_reference(const std::string& precision,
                                     bool winograd) {
  serve::ServedModel served = test_served_model(precision, winograd);
  const auto c = served.channels(), h = served.height(), w = served.width();
  Rng rng(55);
  const Tensor samples = Tensor::randn({4, c, h, w}, rng);

  // Offline references BEFORE the server owns the model: per-sample bodies
  // and the batched 4-sample body, rendered exactly as the server renders.
  std::vector<std::string> ref(4);
  for (std::int64_t i = 0; i < 4; ++i)
    ref[static_cast<std::size_t>(i)] =
        serve::render_predict_response(serve::reference_forward(
            *served.model, samples.slice_rows(i, 1), served.compute));
  const std::string ref_all = serve::render_predict_response(
      serve::reference_forward(*served.model, samples, served.compute));

  const serve::ServeConfig cfg = serve::serve_config_of(served.spec);
  serve::InferenceServer server(std::move(served), cfg);
  server.start();
  net::HttpConn http = connect_to(server);
  for (std::int64_t i = 0; i < 4; ++i) {
    const net::HttpResponse resp = request(
        http, "POST", "/v1/predict",
        serve::render_predict_request(samples.slice_rows(i, 1)));
    ASSERT_EQ(resp.status, 200);
    EXPECT_EQ(resp.body, ref[static_cast<std::size_t>(i)]);
    ASSERT_NE(resp.header("X-FP-Batch"), nullptr);
  }
  const net::HttpResponse all = request(
      http, "POST", "/v1/predict", serve::render_predict_request(samples));
  ASSERT_EQ(all.status, 200);
  EXPECT_EQ(all.body, ref_all);
  server.stop();
}

TEST(InferenceServer, ServesFp32BitIdenticalToOfflineForward) {
  expect_served_matches_reference("fp32", false);
}

TEST(InferenceServer, ServesInt8WinogradBitIdenticalToOfflineForward) {
  expect_served_matches_reference("int8", true);
}

TEST(InferenceServer, ConcurrentClientsGetExactPerSampleAnswers) {
  serve::ServedModel served = test_served_model("int8", true);
  const auto c = served.channels(), h = served.height(), w = served.width();
  Rng rng(77);
  constexpr std::int64_t kSamples = 6;
  const Tensor samples = Tensor::randn({kSamples, c, h, w}, rng);
  std::vector<std::string> body(kSamples), ref(kSamples);
  for (std::int64_t i = 0; i < kSamples; ++i) {
    body[static_cast<std::size_t>(i)] =
        serve::render_predict_request(samples.slice_rows(i, 1));
    ref[static_cast<std::size_t>(i)] =
        serve::render_predict_response(serve::reference_forward(
            *served.model, samples.slice_rows(i, 1), served.compute));
  }

  const serve::ServeConfig cfg = serve::serve_config_of(served.spec);
  serve::InferenceServer server(std::move(served), cfg);
  server.start();
  constexpr int kClients = 8, kPerClient = 6;
  std::vector<std::thread> clients;
  for (int k = 0; k < kClients; ++k) {
    clients.emplace_back([&, k] {
      net::HttpConn http = connect_to(server);
      for (int i = 0; i < kPerClient; ++i) {
        const auto s = static_cast<std::size_t>((k + i) % kSamples);
        const net::HttpResponse resp =
            request(http, "POST", "/v1/predict", body[s]);
        ASSERT_EQ(resp.status, 200);
        // Coalesced or not, the bytes must equal the offline answer.
        EXPECT_EQ(resp.body, ref[s]);
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(server.requests(), kClients * kPerClient);
  server.stop();
}

TEST(InferenceServer, RoutesHealthMetricsAndErrors) {
  serve::ServedModel served = test_served_model("fp32", false);
  Rng rng(9);
  const std::string one_body = serve::render_predict_request(Tensor::randn(
      {1, served.channels(), served.height(), served.width()}, rng));
  const serve::ServeConfig cfg = serve::serve_config_of(served.spec);
  serve::InferenceServer server(std::move(served), cfg);
  server.start();
  net::HttpConn http = connect_to(server);

  EXPECT_EQ(request(http, "GET", "/healthz").body, "ok\n");
  EXPECT_EQ(request(http, "GET", "/nope").status, 404);
  EXPECT_EQ(request(http, "PUT", "/v1/predict", one_body).status, 405);
  const net::HttpResponse bad =
      request(http, "POST", "/v1/predict", "{\"inputs\": \"zap\"}");
  EXPECT_EQ(bad.status, 400);
  EXPECT_EQ(request(http, "POST", "/v1/predict", one_body).status, 200);

  const net::HttpResponse metrics = request(http, "GET", "/metricsz");
  EXPECT_EQ(metrics.status, 200);
  const exp::FlatJson flat = exp::parse_json_relaxed(metrics.body);
  auto value_of = [&](const std::string& key) -> std::string {
    for (const auto& [k, v] : flat)
      if (k == key) return v;
    ADD_FAILURE() << "missing " << key << " in " << metrics.body;
    return "";
  };
  // /healthz, /nope, /v1/predict x3, /metricsz itself is not yet counted.
  EXPECT_EQ(value_of("serve.requests"), "2");  // only /v1/predict POSTs count
  EXPECT_EQ(value_of("serve.predicted_samples"), "1");
  EXPECT_EQ(value_of("serve.errors"), "1");
  value_of("serve.latency_ms.p50");
  value_of("serve.batch_size.mean");
  server.stop();

  // The [serve] summary renders after stop without throwing.
  std::ostringstream os;
  server.print_summary(os);
  EXPECT_NE(os.str().find("[serve]"), std::string::npos);
}

TEST(ServeConfig, MapsSpecKeys) {
  exp::ExperimentSpec spec;
  exp::set_key(spec, "serve.host", "0.0.0.0");
  exp::set_key(spec, "serve.port", "9090");
  exp::set_key(spec, "serve.max_batch", "16");
  exp::set_key(spec, "serve.max_delay_ms", "0.5");
  exp::set_key(spec, "serve.queue_cap", "99");
  exp::set_key(spec, "serve.max_conns", "7");
  const serve::ServeConfig cfg = serve::serve_config_of(spec);
  EXPECT_EQ(cfg.host, "0.0.0.0");
  EXPECT_EQ(cfg.port, 9090);
  EXPECT_EQ(cfg.max_batch, 16);
  EXPECT_EQ(cfg.max_delay_ms, 0.5);
  EXPECT_EQ(cfg.queue_cap, 99);
  EXPECT_EQ(cfg.max_conns, 7);
}

}  // namespace
}  // namespace fp
