// The communication subsystem (src/comm/): wire codecs, the bandwidth-aware
// network model, and their integration with the federated round engine.
//
// * Round-trip contracts: identity is bit-exact; fp16 is within half-ulp
//   relative error; int8's max elementwise error is half the affine grid
//   step; top-k decodes kept coordinates exactly (zeros or the reference
//   elsewhere).
// * Determinism: every codec is a pure function — concurrent encodes match
//   the serial encoding byte-for-byte, and an end-to-end compressed training
//   run is bit-identical across thread counts.
// * The network model converts wire sizes into transfer time only when
//   enabled, so historical sim-time goldens stay untouched by default.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>

#include "baselines/jfat.hpp"
#include "blob_hash.hpp"
#include "comm/channel.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "fed/env.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"
#include "tensor/rng.hpp"

namespace fp {
namespace {

nn::ParamBlob random_blob(std::size_t n, std::uint64_t seed, float scale = 1.0f) {
  Rng rng(seed);
  nn::ParamBlob blob(n);
  for (auto& x : blob) x = rng.gaussian(0.0f, scale);
  return blob;
}

TEST(IdentityCodec, RoundTripIsBitIdentical) {
  const auto blob = random_blob(999, 7);
  comm::IdentityCodec codec;
  const auto msg = codec.encode(blob);
  EXPECT_EQ(msg.num_elems, blob.size());
  EXPECT_EQ(msg.wire_bytes(),
            static_cast<std::int64_t>(blob.size() * 4 +
                                      comm::WireMessage::kHeaderBytes));
  const auto back = codec.decode(msg);
  ASSERT_EQ(back.size(), blob.size());
  for (std::size_t i = 0; i < blob.size(); ++i)
    EXPECT_EQ(std::memcmp(&back[i], &blob[i], sizeof(float)), 0) << i;
}

TEST(Fp16Codec, RoundTripWithinHalfPrecisionTolerance) {
  const auto blob = random_blob(4096, 11, 0.5f);
  comm::Fp16Codec codec;
  const auto msg = codec.encode(blob);
  EXPECT_EQ(msg.wire_bytes(),
            static_cast<std::int64_t>(blob.size() * 2 +
                                      comm::WireMessage::kHeaderBytes));
  const auto back = codec.decode(msg);
  ASSERT_EQ(back.size(), blob.size());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    // Half precision: relative error <= 2^-11 for normals, absolute error
    // <= 2^-25 in the subnormal range.
    const double tol =
        std::max(std::fabs(static_cast<double>(blob[i])) * 0x1.0p-11, 0x1.0p-24);
    EXPECT_NEAR(back[i], blob[i], tol) << "element " << i;
  }
}

TEST(Fp16Codec, ExactOnRepresentableValues) {
  const nn::ParamBlob blob = {0.0f, -0.0f, 1.0f, -1.0f, 0.5f, 2.0f, -0.25f,
                              1024.0f, 0.09375f, -65504.0f};
  comm::Fp16Codec codec;
  const auto back = codec.decode(codec.encode(blob));
  for (std::size_t i = 0; i < blob.size(); ++i) EXPECT_EQ(back[i], blob[i]) << i;
}

TEST(Int8Codec, MaxErrorBoundedByHalfGridStep) {
  const auto blob = random_blob(2048, 13, 2.0f);
  comm::Int8Codec codec;
  const double step = comm::Int8Codec::grid_step(blob);
  ASSERT_GT(step, 0.0);
  const auto msg = codec.encode(blob);
  EXPECT_EQ(msg.wire_bytes(),
            static_cast<std::int64_t>(blob.size() + 8 +
                                      comm::WireMessage::kHeaderBytes));
  const auto back = codec.decode(msg);
  ASSERT_EQ(back.size(), blob.size());
  double max_err = 0.0;
  for (std::size_t i = 0; i < blob.size(); ++i)
    max_err = std::max(max_err, std::fabs(static_cast<double>(back[i]) -
                                          static_cast<double>(blob[i])));
  // Half a grid step, with a sliver of float-arithmetic slack.
  EXPECT_LE(max_err, 0.5 * step * (1.0 + 1e-5) + 1e-9);
}

TEST(Int8Codec, ConstantBlobDecodesExactly) {
  const nn::ParamBlob blob(77, 3.25f);
  comm::Int8Codec codec;
  const auto back = codec.decode(codec.encode(blob));
  for (const float x : back) EXPECT_EQ(x, 3.25f);
}

TEST(TopKCodec, GlobalModeKeepsTopMagnitudesExactlyAndZerosTheRest) {
  const auto blob = random_blob(500, 17);
  comm::TopKCodec codec(0.1, /*delta=*/false);
  const std::size_t k = codec.kept_count(blob.size());
  EXPECT_EQ(k, 50u);
  const auto msg = codec.encode(blob);
  EXPECT_EQ(msg.wire_bytes(),
            static_cast<std::int64_t>(k * 8 + comm::WireMessage::kHeaderBytes));
  const auto back = codec.decode(msg);
  ASSERT_EQ(back.size(), blob.size());

  // The k-th largest magnitude partitions kept from dropped coordinates.
  std::vector<float> mags(blob.size());
  for (std::size_t i = 0; i < blob.size(); ++i) mags[i] = std::fabs(blob[i]);
  std::vector<float> sorted = mags;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  const float kth = sorted[k - 1];

  std::size_t kept = 0;
  for (std::size_t i = 0; i < blob.size(); ++i) {
    if (back[i] != 0.0f) {
      EXPECT_EQ(back[i], blob[i]) << "kept coordinate " << i << " not exact";
      EXPECT_GE(mags[i], kth);
      ++kept;
    } else {
      EXPECT_LE(mags[i], kth);
    }
  }
  EXPECT_EQ(kept, k);
}

TEST(TopKCodec, DeltaModeSelectsByUpdateMagnitudeAndFillsFromReference) {
  const auto ref = random_blob(300, 19);
  nn::ParamBlob blob = ref;
  // A handful of large updates buried under tiny jitter everywhere else.
  Rng rng(23);
  for (auto& x : blob) x += rng.gaussian(0.0f, 1e-4f);
  const std::size_t changed[] = {3, 77, 150, 299};
  for (const std::size_t i : changed) blob[i] += (i % 2 ? 2.0f : -2.0f);

  comm::TopKCodec codec(4.0 / 300.0, /*delta=*/true);
  ASSERT_EQ(codec.kept_count(blob.size()), 4u);
  const auto msg = codec.encode(blob, &ref);
  EXPECT_TRUE(msg.delta);
  const auto back = codec.decode(msg, &ref);
  ASSERT_EQ(back.size(), blob.size());
  for (std::size_t i = 0; i < blob.size(); ++i) {
    const bool was_changed =
        std::find(std::begin(changed), std::end(changed), i) !=
        std::end(changed);
    if (was_changed)
      EXPECT_EQ(back[i], blob[i]) << "large update " << i << " not shipped";
    else
      EXPECT_EQ(back[i], ref[i]) << "unsent coordinate " << i
                                 << " should keep the reference value";
  }
}

TEST(Codecs, ConcurrentEncodesMatchSerialByteForByte) {
  const auto blob = random_blob(3000, 29);
  const auto ref = random_blob(3000, 31);
  std::vector<std::unique_ptr<comm::BlobCodec>> codecs;
  codecs.push_back(std::make_unique<comm::IdentityCodec>());
  codecs.push_back(std::make_unique<comm::Fp16Codec>());
  codecs.push_back(std::make_unique<comm::Int8Codec>());
  codecs.push_back(std::make_unique<comm::TopKCodec>(0.05, true));
  for (const auto& codec : codecs) {
    const auto serial = codec->encode(blob, &ref);
    std::vector<comm::WireMessage> parallel(8);
    core::set_num_threads(4);
    core::parallel_tasks(8, [&](std::int64_t i) {
      parallel[static_cast<std::size_t>(i)] = codec->encode(blob, &ref);
    });
    core::set_num_threads(1);
    for (const auto& msg : parallel) {
      EXPECT_EQ(msg.payload, serial.payload) << codec->name();
      EXPECT_EQ(msg.num_elems, serial.num_elems);
    }
  }
}

TEST(NetworkModel, ConvertsWireBytesOnlyWhenEnabled) {
  sys::DeviceInstance dev;
  dev.net_down_bytes_per_s = 10e6;
  dev.net_up_bytes_per_s = 2e6;
  dev.net_latency_s = 0.02;

  const comm::NetworkModel off(false);
  EXPECT_EQ(off.download_s(dev, 1 << 20), 0.0);
  EXPECT_EQ(off.upload_s(dev, 1 << 20), 0.0);

  const comm::NetworkModel on(true);
  EXPECT_DOUBLE_EQ(on.download_s(dev, 10'000'000), 0.02 + 1.0);
  EXPECT_DOUBLE_EQ(on.upload_s(dev, 2'000'000), 0.02 + 1.0);
  EXPECT_DOUBLE_EQ(on.round_trip_s(dev, 10'000'000, 2'000'000), 2.04);
  EXPECT_EQ(on.upload_s(dev, 0), 0.0);  // nothing transferred, no latency
}

TEST(DeviceSampler, DrawsDegradedNetworkLinks) {
  sys::DeviceSampler sampler(sys::cifar_device_pool(),
                             sys::Heterogeneity::kBalanced, 5);
  for (int i = 0; i < 64; ++i) {
    const auto inst = sampler.sample();
    const auto& peak = sys::cifar_device_pool()[inst.pool_index];
    EXPECT_GT(inst.net_down_bytes_per_s, 0.0);
    EXPECT_GT(inst.net_up_bytes_per_s, 0.0);
    EXPECT_LE(inst.net_down_bytes_per_s, peak.net_down_bytes_per_s() + 1e-9);
    EXPECT_GE(inst.net_down_bytes_per_s,
              0.3 * peak.net_down_bytes_per_s() - 1e-9);
    EXPECT_DOUBLE_EQ(inst.net_latency_s, peak.net_latency_ms * 1e-3);
  }
}

TEST(Channel, IdentityUplinkIsPassThroughWithDenseByteCount) {
  comm::CommConfig cfg;  // defaults: identity, network off
  comm::Channel channel(cfg);
  const auto blob = random_blob(123, 37);
  std::int64_t bytes = 0;
  const auto out = channel.uplink(blob, nullptr, &bytes);
  EXPECT_EQ(out, blob);
  EXPECT_EQ(bytes, static_cast<std::int64_t>(123 * 4 +
                                             comm::WireMessage::kHeaderBytes));
  EXPECT_FALSE(channel.network().enabled());
}

TEST(Channel, TopKDownlinkStaysDenseEvenWhenCompressed) {
  comm::CommConfig cfg;
  cfg.codec = comm::CodecKind::kTopK;
  cfg.compress_downlink = true;  // must not sparsify a broadcast
  comm::Channel channel(cfg);
  const auto blob = random_blob(200, 41);
  std::int64_t down_bytes = 0;
  const auto received = channel.downlink(blob, &down_bytes);
  EXPECT_EQ(received, blob);
  EXPECT_EQ(down_bytes, static_cast<std::int64_t>(
                            200 * 4 + comm::WireMessage::kHeaderBytes));

  // Uplinks do sparsify: unsent coordinates come back as the reference.
  std::int64_t up_bytes = 0;
  nn::ParamBlob update = blob;
  update[7] += 5.0f;
  const auto decoded = channel.uplink(update, &blob, &up_bytes);
  EXPECT_LT(up_bytes, down_bytes);
  EXPECT_EQ(decoded[7], update[7]);
}

// ---- end-to-end: compressed training through the engine ---------------------

using test::fnv1a;

struct TinyRun {
  std::uint64_t hash = 0;
  double sim_total = 0.0;
  double comm_s = 0.0;
  std::int64_t bytes_up = 0;
  std::int64_t bytes_down = 0;
};

TinyRun run_tiny_jfat(comm::CodecKind codec, bool model_network, int threads) {
  core::set_num_threads(threads);
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 240;
  dcfg.test_size = 80;
  dcfg.num_classes = 4;
  const auto data = data::make_synthetic(dcfg);

  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  fl.comm.codec = codec;
  fl.comm.topk_fraction = 0.1;
  fl.comm.model_network = model_network;

  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));

  baselines::JFatConfig cfg;
  cfg.fl = fl;
  cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
  baselines::JFat algo(env, cfg);
  algo.run();
  core::set_num_threads(1);

  TinyRun out;
  out.hash = fnv1a(algo.global_model().save_all());
  out.sim_total = algo.sim_time().total();
  out.comm_s = algo.sim_time().comm_s;
  out.bytes_up = algo.total_stats().bytes_up;
  out.bytes_down = algo.total_stats().bytes_down;
  return out;
}

// FedProphet's wire path is different from the blob baselines': per-atom
// uplinks against broadcast slices plus auxiliary heads. Run it compressed
// (top-k delta, network model on) and require a bit-identical replay across
// thread counts.
TEST(CommIntegration, FedProphetCompressedWirePathIsDeterministic) {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 240;
  dcfg.test_size = 80;
  dcfg.num_classes = 4;
  const auto data = data::make_synthetic(dcfg);

  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  fl.comm.codec = comm::CodecKind::kTopK;
  fl.comm.topk_fraction = 0.25;
  fl.comm.model_network = true;

  nn::ParamBlob blobs[2];
  std::int64_t bytes_up[2] = {0, 0};
  const int thread_counts[2] = {1, 4};
  for (int run = 0; run < 2; ++run) {
    core::set_num_threads(thread_counts[run]);
    fed::FedEnvConfig ecfg;
    ecfg.fl = fl;
    auto env = fed::make_env(data, ecfg, models::vgg16_spec(32, 10));
    fedprophet::FedProphetConfig cfg;
    cfg.fl = fl;
    cfg.model_spec = models::tiny_vgg_spec(16, 4, 4);
    const auto full = sys::module_train_mem_bytes(
        cfg.model_spec, 0, cfg.model_spec.atoms.size(), fl.batch_size, false);
    cfg.rmin_bytes = full / 3;
    cfg.rounds_per_module = 2;
    cfg.eval_every = 2;
    cfg.val_samples = 32;
    cfg.device_mem_scale =
        static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));
    fedprophet::FedProphet algo(env, cfg);
    algo.train();
    blobs[run] = algo.global_model().save_all();
    bytes_up[run] = algo.total_stats().bytes_up;
  }
  core::set_num_threads(1);
  EXPECT_GT(bytes_up[0], 0);
  EXPECT_EQ(bytes_up[0], bytes_up[1]);
  ASSERT_EQ(blobs[0].size(), blobs[1].size());
  for (std::size_t i = 0; i < blobs[0].size(); ++i)
    ASSERT_EQ(blobs[0][i], blobs[1][i]) << "replay diverged at element " << i;
}

TEST(CommIntegration, CompressedRunsAreBitIdenticalAcrossThreadCounts) {
  for (const auto codec : {comm::CodecKind::kInt8, comm::CodecKind::kTopK}) {
    const TinyRun a = run_tiny_jfat(codec, /*model_network=*/true, 1);
    const TinyRun b = run_tiny_jfat(codec, /*model_network=*/true, 4);
    EXPECT_EQ(a.hash, b.hash) << comm::codec_name(codec);
    EXPECT_EQ(a.sim_total, b.sim_total);
    EXPECT_EQ(a.bytes_up, b.bytes_up);
    EXPECT_EQ(a.bytes_down, b.bytes_down);
  }
}

TEST(CommIntegration, CompressionShrinksUploadsAndNetworkModelAddsCommTime) {
  const TinyRun dense = run_tiny_jfat(comm::CodecKind::kIdentity, true, 1);
  const TinyRun int8 = run_tiny_jfat(comm::CodecKind::kInt8, true, 1);
  const TinyRun topk = run_tiny_jfat(comm::CodecKind::kTopK, true, 1);

  ASSERT_GT(dense.bytes_up, 0);
  // Int8 approaches 4x (header overhead keeps it a hair under); top-10%
  // with (u32, f32) pairs is 5x.
  EXPECT_GT(static_cast<double>(dense.bytes_up),
            3.9 * static_cast<double>(int8.bytes_up));
  EXPECT_GT(static_cast<double>(dense.bytes_up),
            4.5 * static_cast<double>(topk.bytes_up));
  // Downlinks stay dense by default: same broadcast traffic for all three.
  EXPECT_EQ(dense.bytes_down, int8.bytes_down);
  EXPECT_EQ(dense.bytes_down, topk.bytes_down);
  // The network model priced the transfers, and the smaller uploads cost
  // less simulated wall-clock.
  EXPECT_GT(dense.comm_s, 0.0);
  EXPECT_GT(int8.comm_s, 0.0);
  EXPECT_LT(int8.comm_s, dense.comm_s);

  // With the network model off, byte accounting still runs but comm time
  // stays out of the clock (the historical sim-time behavior).
  const TinyRun off = run_tiny_jfat(comm::CodecKind::kIdentity, false, 1);
  EXPECT_EQ(off.comm_s, 0.0);
  EXPECT_EQ(off.bytes_up, dense.bytes_up);
  EXPECT_LT(off.sim_total, dense.sim_total);
}

}  // namespace
}  // namespace fp
