// Tests for the inference-only quantized/transformed kernels (DESIGN.md §8):
// int8 GEMM error bounds and determinism, Winograd-vs-im2col equivalence,
// the compute-mode routing (fp32 defaults stay bit-identical), and the
// end-to-end int8 eval-accuracy bound.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <vector>

#include "attack/evaluate.hpp"
#include "core/parallel.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/conv.hpp"
#include "nn/optimizer.hpp"
#include "sysmodel/cost_model.hpp"
#include "tensor/compute_mode.hpp"
#include "tensor/ops.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/quant.hpp"
#include "tensor/tensor.hpp"
#include "tensor/winograd.hpp"

namespace fp {
namespace {

// ---- int8 GEMM --------------------------------------------------------------

/// Exact-as-possible reference: double-precision dot of the ORIGINAL floats.
std::vector<double> reference_nt(const Tensor& a, const Tensor& b) {
  const std::int64_t m = a.dim(0), n = b.dim(0), k = a.dim(1);
  std::vector<double> c(static_cast<std::size_t>(m * n), 0.0);
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p)
        acc += static_cast<double>(a[i * k + p]) *
               static_cast<double>(b[j * k + p]);
      c[static_cast<std::size_t>(i * n + j)] = acc;
    }
  return c;
}

TEST(QGemm, WithinAnalyticErrorBound) {
  // Sizes straddle the block size (32): sub-block, exact blocks, ragged tail.
  const struct { std::int64_t m, n, k; } cases[] = {
      {1, 1, 1}, {3, 5, 7}, {4, 8, 32}, {6, 16, 33},
      {14, 32, 176}, {7, 17, 100}, {33, 65, 130},
  };
  for (const auto& gc : cases) {
    Rng rng(0x51 + static_cast<std::uint64_t>(gc.m * 131 + gc.n * 17 + gc.k));
    const Tensor a = Tensor::randn({gc.m, gc.k}, rng);
    const Tensor b = Tensor::randn({gc.n, gc.k}, rng);
    QuantizedMat qa, qb;
    quantize_rows_int8(a.data(), gc.m, gc.k, gc.k, qa);
    quantize_rows_int8(b.data(), gc.n, gc.k, gc.k, qb);
    std::vector<float> c(static_cast<std::size_t>(gc.m * gc.n), -1.0f);
    qgemm_nt(gc.m, gc.n, qa, qb, c.data(), gc.n);
    const auto ref = reference_nt(a, b);
    for (std::int64_t i = 0; i < gc.m; ++i)
      for (std::int64_t j = 0; j < gc.n; ++j) {
        // Contiguous row-major rows: element stride 1 (passing the leading
        // dimension here walked a strided COLUMN off the end of the tensor).
        const double bound = qgemm_error_bound(qa, i, qb, j, a.data() + i * gc.k,
                                               1, b.data() + j * gc.k, 1);
        // Small fp32-accumulation slack on top of the quantization bound.
        const double got = c[static_cast<std::size_t>(i * gc.n + j)];
        const double want = ref[static_cast<std::size_t>(i * gc.n + j)];
        ASSERT_LE(std::abs(got - want),
                  bound + 1e-4 * (1.0 + std::abs(want)))
            << "m=" << gc.m << " n=" << gc.n << " k=" << gc.k << " at (" << i
            << "," << j << ")";
      }
  }
}

TEST(QGemm, QuantizeColsMatchesQuantizeRowsOfTranspose) {
  Rng rng(0x52);
  const std::int64_t k = 70, n = 23;
  const Tensor x = Tensor::randn({k, n}, rng);  // [k, n], columns -> pack rows
  Tensor xt({n, k});
  for (std::int64_t p = 0; p < k; ++p)
    for (std::int64_t j = 0; j < n; ++j) xt[j * k + p] = x[p * n + j];
  QuantizedMat by_cols, by_rows;
  quantize_cols_int8(x.data(), k, n, n, by_cols);
  quantize_rows_int8(xt.data(), n, k, k, by_rows);
  ASSERT_EQ(by_cols.rows, by_rows.rows);
  ASSERT_EQ(by_cols.k_padded, by_rows.k_padded);
  EXPECT_EQ(0, std::memcmp(by_cols.codes.data(), by_rows.codes.data(),
                           static_cast<std::size_t>(by_cols.rows *
                                                    by_cols.k_padded)));
  for (std::size_t i = 0; i < by_rows.scales.size(); ++i)
    ASSERT_EQ(by_cols.scales[i], by_rows.scales[i]) << i;
}

TEST(QGemm, BitIdenticalAcrossThreadCounts) {
  Rng rng(0x53);
  const std::int64_t m = 37, n = 61, k = 129;
  const Tensor a = Tensor::randn({m, k}, rng);
  const Tensor b = Tensor::randn({n, k}, rng);
  std::vector<std::vector<float>> results;
  const int before = core::num_threads();
  for (const int threads : {1, 4}) {
    core::set_num_threads(threads);
    QuantizedMat qa, qb;
    quantize_rows_int8(a.data(), m, k, k, qa);
    quantize_rows_int8(b.data(), n, k, k, qb);
    std::vector<float> c(static_cast<std::size_t>(m * n), 0.0f);
    qgemm_nt(m, n, qa, qb, c.data(), n);
    results.push_back(std::move(c));
  }
  core::set_num_threads(before);
  EXPECT_EQ(0, std::memcmp(results[0].data(), results[1].data(),
                           results[0].size() * sizeof(float)));
}

TEST(QGemm, DegenerateDimsMatchGemmContract) {
  // m==0 / n==0: no-op; k==0: beta-scale only (alpha=1, beta=0 -> zero fill).
  // The fix aligned gemm_reference with the blocked gemm and qgemm: none of
  // the three touches A/B when k==0 or alpha==0, so NaNs must not propagate.
  const float nan = std::numeric_limits<float>::quiet_NaN();
  const std::vector<float> a(64, nan), b(64, nan);

  for (const bool use_ref : {true, false}) {
    auto run = [&](std::int64_t m, std::int64_t n, std::int64_t k, float alpha,
                   float beta, std::vector<float>& c) {
      if (use_ref)
        gemm_reference(false, true, m, n, k, alpha, a.data(), b.data(), beta,
                       c.data());
      else
        gemm(false, true, m, n, k, alpha, a.data(), b.data(), beta, c.data());
    };
    std::vector<float> c(4, 7.0f);
    run(0, 2, 3, 1.0f, 0.0f, c);  // m==0: untouched
    run(2, 0, 3, 1.0f, 0.0f, c);  // n==0: untouched
    for (const float v : c) EXPECT_EQ(v, 7.0f);
    run(2, 2, 0, 1.0f, 0.0f, c);  // k==0: C = 0, A/B never read
    for (const float v : c) EXPECT_EQ(v, 0.0f);
    std::fill(c.begin(), c.end(), 3.0f);
    run(2, 2, 4, 0.0f, 1.0f, c);  // alpha==0: C unchanged, no NaN from A/B
    for (const float v : c) EXPECT_EQ(v, 3.0f);
  }

  // qgemm on empty packs follows the same contract at alpha=1, beta=0.
  QuantizedMat qa, qb;
  quantize_rows_int8(a.data(), 0, 0, 0, qa);
  quantize_rows_int8(b.data(), 0, 0, 0, qb);
  std::vector<float> c(4, 7.0f);
  qgemm_nt(0, 2, qa, qb, c.data(), 2);  // m==0: untouched
  for (const float v : c) EXPECT_EQ(v, 7.0f);
  const std::vector<float> fin(8, 1.0f);
  quantize_rows_int8(fin.data(), 2, 0, 0, qa);  // rows with k==0
  quantize_rows_int8(fin.data(), 2, 0, 0, qb);
  qgemm_nt(2, 2, qa, qb, c.data(), 2);  // k==0: zero fill
  for (const float v : c) EXPECT_EQ(v, 0.0f);
}

// ---- Winograd ---------------------------------------------------------------

// Drives the Winograd kernels directly (plan build + forward), not through
// Conv2d routing — the profitability gate would re-route most of these small
// shapes to im2col and make a routed comparison vacuous.
void expect_winograd_matches_im2col(std::int64_t ic, std::int64_t oc,
                                    std::int64_t h, std::int64_t w,
                                    std::int64_t padding, std::int64_t batch,
                                    std::uint64_t seed) {
  Rng rng(seed);
  nn::Conv2d conv(ic, oc, /*kernel=*/3, /*stride=*/1, padding, rng);
  const Tensor x = Tensor::randn({batch, ic, h, w}, rng);
  const Tensor ref = conv.forward(x, /*train=*/false);  // fp32 im2col path
  const Conv2dGeometry g{ic, oc, 3, 1, padding, h, w};
  ASSERT_TRUE(winograd_eligible(g));
  WinogradPlan plan;
  winograd_build_plan(conv.weight().data(), oc, ic, /*with_int8=*/false, plan);
  std::vector<float> v(static_cast<std::size_t>(winograd_v_elems(g, batch)));
  std::vector<float> m(static_cast<std::size_t>(winograd_m_elems(g, batch)));
  Tensor wino({batch, oc, g.out_h(), g.out_w()});
  winograd_conv_forward(g, x.data(), batch, plan, conv.bias().data(),
                        wino.data(), /*use_int8=*/false, v.data(), m.data());
  ASSERT_EQ(ref.numel(), wino.numel());
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    const float tol = 1e-3f * (std::abs(ref[i]) + 1.0f);
    ASSERT_NEAR(wino[i], ref[i], tol)
        << "ic=" << ic << " oc=" << oc << " h=" << h << " w=" << w
        << " pad=" << padding << " batch=" << batch << " at " << i;
  }
}

TEST(Winograd, MatchesIm2colOnRandomShapes) {
  // Even/odd spatial sizes exercise full tiles and the clipped right/bottom
  // overhang; padding 0 and 1; multi-sample batches.
  expect_winograd_matches_im2col(3, 8, 8, 8, 1, 2, 0x60);
  expect_winograd_matches_im2col(4, 6, 9, 7, 1, 1, 0x61);
  expect_winograd_matches_im2col(2, 5, 5, 5, 0, 3, 0x62);
  expect_winograd_matches_im2col(8, 16, 16, 16, 1, 2, 0x63);
}

TEST(Winograd, MatchesIm2colOnDegenerateShapes) {
  // Smallest valid outputs: 3x3 input pad 0 -> 1x1 output (one clipped
  // tile); 4x3 -> 2x1 (ragged in one dimension only); single channel.
  expect_winograd_matches_im2col(1, 1, 3, 3, 0, 1, 0x64);
  expect_winograd_matches_im2col(2, 3, 4, 3, 0, 1, 0x65);
  expect_winograd_matches_im2col(1, 2, 3, 4, 0, 2, 0x66);
}

TEST(Winograd, IneligibleGeometryFallsBackBitIdentical) {
  Rng rng(0x67);
  nn::Conv2d conv(3, 8, /*kernel=*/3, /*stride=*/2, /*padding=*/1, rng);
  const Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  const Tensor ref = conv.forward(x, /*train=*/false);
  Tensor out;
  {
    compute::ComputeConfig cc;
    cc.winograd = true;  // stride 2: not eligible, im2col fp32 fallback
    const compute::InferenceScope scope(cc);
    out = conv.forward(x, /*train=*/false);
  }
  EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                           static_cast<std::size_t>(ref.numel()) *
                               sizeof(float)));
}

TEST(Winograd, RoutedForwardMatchesIm2col) {
  // A gate-passing shape (ic >= 16, plenty of tiles) through Conv2d routing:
  // the scoped forward must actually take the Winograd path and agree with
  // the fp32 im2col forward to transform tolerance.
  Rng rng(0x68);
  nn::Conv2d conv(32, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({2, 32, 16, 16}, rng);
  const Tensor ref = conv.forward(x, /*train=*/false);
  Tensor wino;
  {
    compute::ComputeConfig cc;
    cc.winograd = true;
    const compute::InferenceScope scope(cc);
    wino = conv.forward(x, /*train=*/false);
  }
  ASSERT_EQ(ref.numel(), wino.numel());
  bool any_diff = false;
  for (std::int64_t i = 0; i < ref.numel(); ++i) {
    ASSERT_NEAR(wino[i], ref[i], 1e-3f * (std::abs(ref[i]) + 1.0f)) << i;
    any_diff |= wino[i] != ref[i];
  }
  // Bit-identity would mean the gate silently fell back to im2col.
  EXPECT_TRUE(any_diff) << "winograd route was not taken";
}

TEST(Winograd, UnprofitableShapesFallBackBitIdentical) {
  // Stem-like (ic = 3) and tile-starved (2x2 output, fp32 tile GEMMs)
  // shapes are gated back to the im2col fp32 path even under a winograd
  // scope; the stem also fails qgemm_profitable (k = 27), so the full
  // int8+winograd eval config leaves it bit-identical too.
  Rng rng(0x69);
  for (const bool int8_mode : {false, true}) {
    nn::Conv2d stem(3, 64, 3, 1, 1, rng);
    const Tensor x = Tensor::randn({2, 3, 16, 16}, rng);
    const Tensor ref = stem.forward(x, /*train=*/false);
    Tensor out;
    {
      compute::ComputeConfig cc;
      cc.winograd = true;
      if (int8_mode) cc.precision = compute::Precision::kInt8;
      const compute::InferenceScope scope(cc);
      out = stem.forward(x, /*train=*/false);
    }
    EXPECT_EQ(0, std::memcmp(ref.data(), out.data(),
                             static_cast<std::size_t>(ref.numel()) *
                                 sizeof(float)))
        << "int8_mode=" << int8_mode;
  }
}

TEST(Winograd, ProfitabilityPredicate) {
  const auto geom = [](std::int64_t ic, std::int64_t hw) {
    return Conv2dGeometry{ic, ic, 3, 1, 1, hw, hw};
  };
  // Stem-like channel counts never profit, in either precision.
  EXPECT_FALSE(winograd_profitable(geom(3, 32), false));
  EXPECT_FALSE(winograd_profitable(geom(3, 32), true));
  // Mid layers: plenty of tiles, profitable with fp32 tile GEMMs.
  EXPECT_TRUE(winograd_profitable(geom(32, 16), false));
  EXPECT_TRUE(winograd_profitable(geom(128, 8), true));
  // 2x2 feature maps: one tile per sample loses with fp32 tile GEMMs but
  // stays profitable when the tile GEMMs run int8 (ic >= 96).
  EXPECT_FALSE(winograd_profitable(geom(512, 2), false));
  EXPECT_TRUE(winograd_profitable(geom(512, 2), true));
  // ic in [16, 96): int8 request keeps fp32 tile GEMMs, so the tile-count
  // rule applies.
  EXPECT_FALSE(winograd_profitable(geom(32, 2), true));

  // The qgemm depth gate: the stem's im2col rows (27) are too shallow.
  EXPECT_FALSE(qgemm_profitable(27));
  EXPECT_TRUE(qgemm_profitable(64));
  EXPECT_TRUE(qgemm_profitable(9 * 64));
}

TEST(Winograd, EligibilityPredicate) {
  Conv2dGeometry g;
  g.in_channels = 3;
  g.out_channels = 8;
  g.kernel = 3;
  g.stride = 1;
  g.padding = 1;
  g.in_h = g.in_w = 8;
  EXPECT_TRUE(winograd_eligible(g));
  g.stride = 2;
  EXPECT_FALSE(winograd_eligible(g));
  g.stride = 1;
  g.kernel = 5;
  EXPECT_FALSE(winograd_eligible(g));
  g.kernel = 3;
  g.in_h = 2;  // output would be empty without padding
  g.padding = 0;
  EXPECT_FALSE(winograd_eligible(g));
}

// ---- compute-mode routing ---------------------------------------------------

TEST(ComputeMode, DefaultScopeKeepsFp32BitIdentical) {
  Rng rng(0x70);
  models::BuiltModel model(models::tiny_cnn_spec(16, 4, 8), rng);
  Rng xrng(0x71);
  const Tensor x = Tensor::rand_uniform({4, 3, 16, 16}, xrng, 0.0f, 1.0f);
  const Tensor plain = model.forward(x, /*train=*/false);
  Tensor scoped;
  {
    const compute::InferenceScope scope(compute::ComputeConfig{});
    scoped = model.forward(x, /*train=*/false);
  }
  EXPECT_EQ(0, std::memcmp(plain.data(), scoped.data(),
                           static_cast<std::size_t>(plain.numel()) *
                               sizeof(float)));
}

TEST(ComputeMode, ScopeRestoresOnExit) {
  EXPECT_FALSE(compute::int8_active());
  {
    compute::ComputeConfig cc;
    cc.precision = compute::Precision::kInt8;
    cc.winograd = true;
    const compute::InferenceScope scope(cc);
    EXPECT_TRUE(compute::int8_active());
    EXPECT_TRUE(compute::winograd_active());
  }
  EXPECT_FALSE(compute::int8_active());
  EXPECT_FALSE(compute::winograd_active());
}

TEST(ComputeMode, BackwardAfterInferenceForwardThrows) {
  Rng rng(0x72);
  nn::Conv2d conv(3, 4, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({1, 3, 8, 8}, rng);
  compute::ComputeConfig cc;
  cc.precision = compute::Precision::kInt8;
  const compute::InferenceScope scope(cc);
  const Tensor out = conv.forward(x, /*train=*/false);
  // The inference path cleared the cached input: a stray backward must fail
  // loudly instead of silently differentiating against stale scratch.
  EXPECT_THROW(conv.backward(out), std::logic_error);
}

TEST(ComputeMode, Int8ForwardStaysNearFp32) {
  Rng rng(0x73);
  models::BuiltModel model(models::tiny_cnn_spec(16, 4, 8), rng);
  Rng xrng(0x74);
  const Tensor x = Tensor::rand_uniform({8, 3, 16, 16}, xrng, 0.0f, 1.0f);
  const Tensor ref = model.forward(x, /*train=*/false);
  Tensor q;
  {
    compute::ComputeConfig cc;
    cc.precision = compute::Precision::kInt8;
    cc.winograd = true;
    const compute::InferenceScope scope(cc);
    q = model.forward(x, /*train=*/false);
  }
  double max_rel = 0.0;
  for (std::int64_t i = 0; i < ref.numel(); ++i)
    max_rel = std::max(max_rel, static_cast<double>(std::abs(q[i] - ref[i])) /
                                    (std::abs(ref[i]) + 1.0));
  // Logits drift from layerwise quantization but stay close enough that the
  // argmax (and thus accuracy) is stable for all but borderline samples.
  EXPECT_LT(max_rel, 0.15) << "int8 forward drifted far from fp32";
}

// ---- end-to-end eval accuracy ----------------------------------------------

class QuantEvalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dcfg = data::synth_cifar_config();
    dcfg.train_size = 512;
    dcfg.test_size = 160;
    dcfg.num_classes = 4;
    data_ = new data::TrainTest(data::make_synthetic(dcfg));
    Rng rng(0x80);
    model_ = new models::BuiltModel(models::tiny_cnn_spec(16, 4, 8), rng);
    nn::Sgd opt(model_->parameters_range(0, model_->num_atoms()),
                model_->gradients_range(0, model_->num_atoms()),
                {0.05f, 0.9f, 1e-4f});
    Rng data_rng(0x81);
    data::BatchIterator batches(data_->train, 32, data_rng);
    for (int i = 0; i < 100; ++i) {
      const auto b = batches.next();
      model_->zero_grad_range(0, model_->num_atoms());
      const Tensor logits = model_->forward(b.x, true);
      model_->backward_range(0, model_->num_atoms(),
                             cross_entropy_grad(logits, b.y));
      opt.step();
    }
  }
  static void TearDownTestSuite() {
    delete data_;
    delete model_;
    data_ = nullptr;
    model_ = nullptr;
  }
  static data::TrainTest* data_;
  static models::BuiltModel* model_;
};

data::TrainTest* QuantEvalFixture::data_ = nullptr;
models::BuiltModel* QuantEvalFixture::model_ = nullptr;

TEST_F(QuantEvalFixture, Int8EvalAccuracyWithinDocumentedBound) {
  const double fp32 = attack::evaluate_clean(*model_, data_->test, 64, -1);
  compute::ComputeConfig cc;
  cc.precision = compute::Precision::kInt8;
  cc.winograd = true;
  const double int8 = attack::evaluate_clean(*model_, data_->test, 64, -1, cc);
  EXPECT_LE(std::abs(int8 - fp32), compute::kInt8EvalAccuracyBound)
      << "fp32=" << fp32 << " int8=" << int8;
  // The trained model must actually classify (guards against a test that
  // passes because both paths are broken).
  EXPECT_GT(fp32, 0.5);
}

TEST_F(QuantEvalFixture, DefaultEvalUnchangedByNewParameter) {
  const double a = attack::evaluate_clean(*model_, data_->test, 64, -1);
  const double b =
      attack::evaluate_clean(*model_, data_->test, 64, -1, compute::ComputeConfig{});
  EXPECT_EQ(a, b);
}

// ---- cost-model closure -----------------------------------------------------

TEST(CostModel, Int8InferenceDiscountsOnlyThePrefixTerm) {
  const auto spec = models::tiny_vgg_spec(16, 4, 6);
  sys::TrainCostConfig cfg;
  cfg.batch_size = 16;
  cfg.pgd_steps = 3;
  const std::size_t begin = spec.atoms.size() / 2;
  const std::int64_t mem = 1ll << 40;  // ample: no swapping
  const auto fp32 =
      sys::train_step_cost(spec, begin, spec.atoms.size(), false, cfg, mem);
  cfg.int8_inference = true;
  cfg.winograd_inference = true;
  const auto quant =
      sys::train_step_cost(spec, begin, spec.atoms.size(), false, cfg, mem);
  ASSERT_GT(fp32.inference_flops, 0.0);
  EXPECT_LT(quant.inference_flops, fp32.inference_flops);
  EXPECT_LT(quant.compute_flops, fp32.compute_flops);
  // The discount applies to the frozen-prefix forward only: the training
  // passes' share of the total is identical.
  EXPECT_DOUBLE_EQ(fp32.compute_flops - fp32.inference_flops,
                   quant.compute_flops - quant.inference_flops);
  // begin == 0: no prefix, nothing to discount.
  cfg.int8_inference = false;
  cfg.winograd_inference = false;
  const auto full = sys::train_step_cost(spec, 0, spec.atoms.size(), false,
                                         cfg, mem);
  EXPECT_EQ(full.inference_flops, 0.0);
}

}  // namespace
}  // namespace fp
