#include <gtest/gtest.h>

#include "attack/attacks.hpp"
#include "attack/evaluate.hpp"
#include "data/synthetic.hpp"
#include "models/zoo.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"

namespace fp::attack {
namespace {

/// Quadratic toy objective: loss = ||x - target||^2 (grows away from target).
LossGradFn quadratic_loss(const Tensor& target) {
  return [target](const Tensor& x, const std::vector<std::int64_t>&,
                  Tensor* grad) {
    Tensor diff = x.sub(target);
    if (grad) *grad = diff.scaled(2.0f);
    return diff.dot(diff);
  };
}

TEST(Project, LinfClampsToBox) {
  PgdConfig cfg;
  cfg.epsilon = 0.1f;
  Tensor delta = Tensor::from_vector({1, 3}, {0.5f, -0.2f, 0.05f});
  project(delta, cfg);
  EXPECT_FLOAT_EQ(delta[0], 0.1f);
  EXPECT_FLOAT_EQ(delta[1], -0.1f);
  EXPECT_FLOAT_EQ(delta[2], 0.05f);
}

TEST(Project, L2RescalesPerSample) {
  PgdConfig cfg;
  cfg.epsilon = 1.0f;
  cfg.norm = Norm::kL2;
  Tensor delta = Tensor::from_vector({2, 2}, {3, 4, 0.3f, 0.4f});
  project(delta, cfg);
  EXPECT_NEAR(delta.row_l2_norms()[0], 1.0f, 1e-5);   // shrunk from 5
  EXPECT_NEAR(delta.row_l2_norms()[1], 0.5f, 1e-5);   // untouched
}

TEST(Fgsm, StepsInGradientSignDirection) {
  PgdConfig cfg;
  cfg.epsilon = 0.25f;
  cfg.clip = false;
  const Tensor x = Tensor::from_vector({1, 2}, {0.0f, 0.0f});
  const Tensor target = Tensor::from_vector({1, 2}, {-1.0f, 2.0f});
  // grad = 2(x - target) = (2, -4): ascent moves +eps, -eps.
  const Tensor adv = fgsm(quadratic_loss(target), x, {0}, cfg);
  EXPECT_FLOAT_EQ(adv[0], 0.25f);
  EXPECT_FLOAT_EQ(adv[1], -0.25f);
}

TEST(Pgd, StaysInsideLinfBallAndValidRange) {
  Rng rng(61);
  PgdConfig cfg;
  cfg.epsilon = 0.1f;
  cfg.steps = 10;
  const Tensor x = Tensor::rand_uniform({4, 8}, rng, 0.0f, 1.0f);
  const Tensor target = Tensor::randn({4, 8}, rng);
  const Tensor adv = pgd(quadratic_loss(target), x, {0, 0, 0, 0}, cfg, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_LE(std::abs(adv[i] - x[i]), cfg.epsilon + 1e-5f);
    EXPECT_GE(adv[i], 0.0f);
    EXPECT_LE(adv[i], 1.0f);
  }
}

TEST(Pgd, StaysInsideL2Ball) {
  Rng rng(62);
  PgdConfig cfg;
  cfg.epsilon = 0.5f;
  cfg.steps = 8;
  cfg.norm = Norm::kL2;
  cfg.clip = false;
  const Tensor x = Tensor::randn({3, 10}, rng);
  const Tensor target = Tensor::randn({3, 10}, rng);
  const Tensor adv = pgd(quadratic_loss(target), x, {0, 0, 0}, cfg, rng);
  const auto norms = adv.sub(x).row_l2_norms();
  for (const auto n : norms) EXPECT_LE(n, cfg.epsilon + 1e-4f);
}

TEST(Pgd, IncreasesTheLoss) {
  Rng rng(63);
  PgdConfig cfg;
  cfg.epsilon = 0.3f;
  cfg.steps = 10;
  cfg.clip = false;
  const auto fn = quadratic_loss(Tensor::zeros({2, 6}));
  const Tensor x = Tensor::randn({2, 6}, rng);
  const float before = fn(x, {0, 0}, nullptr);
  const Tensor adv = pgd(fn, x, {0, 0}, cfg, rng);
  EXPECT_GT(fn(adv, {0, 0}, nullptr), before);
}

TEST(Apgd, StaysInBallAndBeatsOrMatchesNoAttack) {
  Rng rng(64);
  PgdConfig cfg;
  cfg.epsilon = 0.2f;
  cfg.steps = 15;
  cfg.clip = false;
  const auto fn = quadratic_loss(Tensor::zeros({2, 5}));
  const Tensor x = Tensor::randn({2, 5}, rng);
  const Tensor adv = apgd(fn, x, {0, 0}, cfg, rng);
  for (std::int64_t i = 0; i < x.numel(); ++i)
    EXPECT_LE(std::abs(adv[i] - x[i]), cfg.epsilon + 1e-5f);
  EXPECT_GE(fn(adv, {0, 0}, nullptr), fn(x, {0, 0}, nullptr));
}

/// Trains a tiny model for a few epochs, then checks attack-evaluation
/// orderings that must hold for any sane implementation.
class EvalFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    data::SyntheticConfig dcfg = data::synth_cifar_config();
    dcfg.train_size = 512;
    dcfg.test_size = 128;
    dcfg.num_classes = 4;
    data_ = new data::TrainTest(data::make_synthetic(dcfg));
    Rng rng(65);
    model_ = new models::BuiltModel(models::tiny_cnn_spec(16, 4, 8), rng);
    nn::Sgd opt(model_->parameters_range(0, model_->num_atoms()),
                model_->gradients_range(0, model_->num_atoms()),
                {0.05f, 0.9f, 1e-4f});
    Rng data_rng(66);
    data::BatchIterator batches(data_->train, 32, data_rng);
    for (int i = 0; i < 120; ++i) {
      const auto b = batches.next();
      model_->zero_grad_range(0, model_->num_atoms());
      const Tensor logits = model_->forward(b.x, true);
      model_->backward_range(0, model_->num_atoms(),
                             cross_entropy_grad(logits, b.y));
      opt.step();
    }
  }
  static void TearDownTestSuite() {
    delete data_;
    delete model_;
    data_ = nullptr;
    model_ = nullptr;
  }
  static data::TrainTest* data_;
  static models::BuiltModel* model_;
};

data::TrainTest* EvalFixture::data_ = nullptr;
models::BuiltModel* EvalFixture::model_ = nullptr;

TEST_F(EvalFixture, CleanModelLearnedSomething) {
  EXPECT_GT(evaluate_clean(*model_, data_->test), 0.5);  // chance = 0.25
}

TEST_F(EvalFixture, AttackOrderingCleanGePgdGeAa) {
  RobustEvalConfig cfg;
  cfg.epsilon = 16.0f / 255.0f;
  cfg.pgd_steps = 10;
  cfg.aa_steps = 10;
  cfg.aa_restarts = 1;
  cfg.max_samples = 96;
  const auto r = evaluate_robustness(*model_, data_->test, cfg);
  EXPECT_GE(r.clean_acc + 1e-9, r.pgd_acc);
  EXPECT_GE(r.pgd_acc + 1e-9, r.aa_acc);
  // A standard-trained model must lose accuracy under attack.
  EXPECT_LT(r.pgd_acc, r.clean_acc);
}

TEST_F(EvalFixture, StrongerEpsilonHurtsMore) {
  RobustEvalConfig weak, strong;
  weak.epsilon = 2.0f / 255.0f;
  strong.epsilon = 32.0f / 255.0f;
  weak.max_samples = strong.max_samples = 96;
  weak.pgd_steps = strong.pgd_steps = 10;
  EXPECT_GE(evaluate_pgd(*model_, data_->test, weak) + 1e-9,
            evaluate_pgd(*model_, data_->test, strong));
}

TEST_F(EvalFixture, DlrLossGradBackpropagates) {
  const auto b = data::take_batch(data_->test, 0, 16);
  auto fn = model_dlr_lossgrad(*model_);
  Tensor grad(b.x.shape());
  fn(b.x, b.y, &grad);
  EXPECT_GT(grad.abs_max(), 0.0f);
}

}  // namespace
}  // namespace fp::attack
