// The memory subsystem (src/mem/): arena allocator, liveness planner,
// activation checkpointing, and budget-enforced client execution.
//
// The load-bearing guarantees:
//  * the arena's live/high-water accounting is exact, allocations are
//    64-byte aligned, and buffers that outlive their scope stay valid;
//  * planner intervals have the textbook first-use/last-use structure, the
//    offset assignment never overlaps two live intervals, plans are
//    deterministic for any FP_NUM_THREADS, and the idealized plan never
//    exceeds the analytic sys::module_train_mem_bytes;
//  * checkpointed training produces BIT-IDENTICAL parameters to plain
//    training while measurably lowering the training-time memory peak;
//  * the engine's budget enforcement reports peaks/violations without
//    changing the aggregates (same hash with budgets off, on, and on with
//    checkpointing).
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>

#include "baselines/jfat.hpp"
#include "baselines/local_at.hpp"
#include "blob_hash.hpp"
#include "cascade/partitioner.hpp"
#include "cascade/trainer.hpp"
#include "core/parallel.hpp"
#include "data/dataset.hpp"
#include "data/synthetic.hpp"
#include "fed/env.hpp"
#include "mem/arena.hpp"
#include "mem/planner.hpp"
#include "models/zoo.hpp"

namespace fp {
namespace {

using test::fnv1a;

// ---- arena ------------------------------------------------------------------

TEST(Arena, BumpAllocationAlignsAndTracksHighWater) {
  auto* a = new mem::Arena(1 << 16);
  void* p1 = a->allocate(100);
  void* p2 = a->allocate(200);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p1) % mem::kAlign, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p2) % mem::kAlign, 0u);
  EXPECT_EQ(a->live_bytes(), 300);
  EXPECT_EQ(a->peak_bytes(), 300);
  a->deallocate(p2, 200);
  EXPECT_EQ(a->live_bytes(), 100);
  EXPECT_EQ(a->peak_bytes(), 300);  // high-water sticks
  a->deallocate(p1, 100);
  EXPECT_EQ(a->live_bytes(), 0);
  a->release();
}

TEST(Arena, LifoRewindReusesSlabWithoutOverflow) {
  auto* a = new mem::Arena(1 << 14);  // 16 KB slab
  // 1000 x 8 KB through a 16 KB slab only works if frees rewind the bump
  // pointer; any leak to the heap shows up in overflow_bytes.
  for (int i = 0; i < 1000; ++i) {
    void* p = a->allocate(8 << 10);
    a->deallocate(p, 8 << 10);
  }
  EXPECT_EQ(a->overflow_bytes(), 0);
  EXPECT_EQ(a->live_bytes(), 0);
  // Out-of-order frees must also be reclaimed once the top frees.
  void* p1 = a->allocate(4 << 10);
  void* p2 = a->allocate(4 << 10);
  a->deallocate(p1, 4 << 10);  // not the top: deferred
  a->deallocate(p2, 4 << 10);  // top: rewinds over both
  void* p3 = a->allocate(12 << 10);
  EXPECT_EQ(a->overflow_bytes(), 0);
  a->deallocate(p3, 12 << 10);
  a->release();
}

TEST(Arena, OversizedRequestsFallBackToHeap) {
  auto* a = new mem::Arena(4 << 10);
  void* big = a->allocate(1 << 20);
  EXPECT_EQ(a->overflow_bytes(), 1 << 20);
  EXPECT_EQ(a->live_bytes(), 1 << 20);
  a->deallocate(big, 1 << 20);
  EXPECT_EQ(a->live_bytes(), 0);
  a->release();
}

TEST(Arena, ScopeTracksTensorAllocations) {
  ASSERT_FALSE(mem::scope_active());
  std::int64_t peak = 0;
  {
    mem::ClientMemScope scope(mem::Budget{1 << 20});
    EXPECT_TRUE(mem::scope_active());
    ASSERT_NE(mem::current_budget(), nullptr);
    Tensor t({64, 64});
    EXPECT_GE(scope.live_bytes(), 64 * 64 * 4);
    {
      Tensor u({128, 128});
      EXPECT_GE(scope.live_bytes(), (64 * 64 + 128 * 128) * 4);
    }
    peak = scope.peak_bytes();
    EXPECT_GE(peak, (64 * 64 + 128 * 128) * 4);
    EXPECT_LT(scope.live_bytes(), peak);  // u was freed
  }
  EXPECT_FALSE(mem::scope_active());
  EXPECT_EQ(mem::current_budget(), nullptr);
}

TEST(Arena, AllocationsOutlivingTheirScopeStayValid) {
  // A payload tensor escaping train_client (e.g. the sliced sub-model of the
  // partial-training baselines) is freed after the scope died, possibly on
  // another thread. The refcounted arena must keep the memory valid.
  Tensor escaped;
  {
    mem::ClientMemScope scope(mem::Budget{1 << 20});
    escaped = Tensor::full({32, 32}, 3.0f);
  }
  EXPECT_EQ(escaped[0], 3.0f);
  escaped = Tensor();  // frees into the dead scope's arena: must not crash
}

// ---- planner ----------------------------------------------------------------

sys::ModelSpec hand_built_model() {
  sys::ModelSpec m;
  m.name = "hand";
  m.input = {3, 8, 8};
  m.num_classes = 4;
  m.atoms.push_back({"a1",
                     {sys::LayerSpec::conv2d(3, 8, 3, 1, 1), sys::LayerSpec::relu()},
                     false,
                     {}});
  m.atoms.push_back({"a2",
                     {sys::LayerSpec::conv2d(8, 8, 3, 1, 1), sys::LayerSpec::relu()},
                     false,
                     {}});
  m.atoms.push_back({"a3",
                     {sys::LayerSpec::flatten(), sys::LayerSpec::linear(8 * 8 * 8, 4)},
                     false,
                     {}});
  return m;
}

const mem::Interval* find_interval(const mem::MemPlan& plan,
                                   const std::string& label) {
  for (const auto& iv : plan.intervals)
    if (iv.label == label) return &iv;
  return nullptr;
}

TEST(Planner, LivenessIntervalsOnHandBuiltGraph) {
  const auto m = hand_built_model();
  mem::PlanRequest req;
  req.atom_begin = 0;
  req.atom_end = 3;
  req.batch_size = 2;
  req.include_runtime_scratch = false;
  const auto plan = mem::plan_module_memory(m, req);

  // 6 layer units: timeline = 6 forward + 1 loss + 6 backward steps.
  ASSERT_EQ(plan.timeline_steps, 13);
  // Unit u's activation lives from its forward step u to its backward step
  // 2U - u (U = 6): the textbook first-use/last-use envelope.
  const auto* first = find_interval(plan, "a1/0:cache");
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->first_use, 0);
  EXPECT_EQ(first->last_use, 12);
  EXPECT_EQ(first->bytes, 2 * 8 * 8 * 8 * 4);  // [B, 8, 8, 8] float32
  const auto* mid = find_interval(plan, "a2/0:cache");
  ASSERT_NE(mid, nullptr);
  EXPECT_EQ(mid->first_use, 2);
  EXPECT_EQ(mid->last_use, 10);
  const auto* input = find_interval(plan, "module_input");
  ASSERT_NE(input, nullptr);
  EXPECT_EQ(input->first_use, 0);
  EXPECT_EQ(input->last_use, 12);
  const auto* params = find_interval(plan, "param_state");
  ASSERT_NE(params, nullptr);
  EXPECT_EQ(params->bytes, 3 * m.total_params() * 4);
  EXPECT_GE(plan.peak_bytes, plan.liveness_peak_bytes);
}

TEST(Planner, AssignedOffsetsNeverOverlapLiveIntervals) {
  const auto m = models::tiny_vgg_spec(16, 4, 4);
  for (const bool runtime : {false, true}) {
    for (const bool ckpt : {false, true}) {
      mem::PlanRequest req;
      req.atom_begin = 0;
      req.atom_end = m.atoms.size();
      req.batch_size = 8;
      req.include_runtime_scratch = runtime;
      if (ckpt) req.checkpoint_starts = {0, 2};
      const auto plan = mem::plan_module_memory(m, req);
      for (std::size_t i = 0; i < plan.intervals.size(); ++i) {
        const auto& a = plan.intervals[i];
        ASSERT_GE(a.offset, 0);
        ASSERT_LE(a.offset + a.bytes, plan.peak_bytes);
        for (std::size_t j = i + 1; j < plan.intervals.size(); ++j) {
          const auto& b = plan.intervals[j];
          const bool time_overlap =
              a.first_use <= b.last_use && b.first_use <= a.last_use;
          const bool space_overlap =
              a.offset < b.offset + b.bytes && b.offset < a.offset + a.bytes;
          EXPECT_FALSE(time_overlap && space_overlap)
              << a.label << " and " << b.label << " overlap (runtime=" << runtime
              << ", ckpt=" << ckpt << ")";
        }
      }
    }
  }
}

TEST(Planner, IdealizedPlanNeverExceedsAnalyticRequirement) {
  for (const auto& m :
       {models::tiny_vgg_spec(16, 4, 4), models::vgg16_spec(32, 10)}) {
    const std::int64_t batch = 16;
    const auto full = sys::module_train_mem_bytes(m, 0, m.atoms.size(), batch,
                                                  false);
    const auto p = cascade::partition_model(m, full / 5, batch);
    for (std::size_t i = 0; i < p.num_modules(); ++i) {
      EXPECT_LE(cascade::module_planned_peak_bytes(m, p, i),
                cascade::module_mem_bytes(m, p, i))
          << m.name << " module " << i;
    }
  }
}

TEST(Planner, PlanIsDeterministicAcrossThreadCounts) {
  const auto m = models::tiny_vgg_spec(16, 4, 6);
  mem::PlanRequest req;
  req.atom_begin = 0;
  req.atom_end = m.atoms.size();
  req.batch_size = 16;
  req.checkpoint_starts = {0, 3};
  mem::MemPlan plans[2];
  const int threads[2] = {1, 4};
  for (int r = 0; r < 2; ++r) {
    core::set_num_threads(threads[r]);
    plans[r] = mem::plan_module_memory(m, req);
  }
  core::set_num_threads(1);
  EXPECT_EQ(plans[0].peak_bytes, plans[1].peak_bytes);
  ASSERT_EQ(plans[0].intervals.size(), plans[1].intervals.size());
  for (std::size_t i = 0; i < plans[0].intervals.size(); ++i) {
    EXPECT_EQ(plans[0].intervals[i].label, plans[1].intervals[i].label);
    EXPECT_EQ(plans[0].intervals[i].offset, plans[1].intervals[i].offset);
  }
}

TEST(Planner, CheckpointingLowersPlannedPeak) {
  const auto m = models::tiny_vgg_spec(16, 4, 6);
  mem::PlanRequest req;
  req.atom_begin = 0;
  req.atom_end = m.atoms.size();
  req.batch_size = 16;
  const auto plain = mem::plan_module_memory(m, req);
  EXPECT_EQ(plain.recompute_fwd_frac, 0.0);
  const auto starts = mem::choose_checkpoint_starts(m, req, plain.peak_bytes / 2);
  ASSERT_FALSE(starts.empty()) << "no segmentation proposed";
  req.checkpoint_starts = starts;
  const auto ckpt = mem::plan_module_memory(m, req);
  EXPECT_LT(ckpt.peak_bytes, plain.peak_bytes);
  EXPECT_GT(ckpt.recompute_fwd_frac, 0.0);
  EXPECT_LE(ckpt.recompute_fwd_frac, 1.0);
}

// ---- partitioner: oversized-atom regression ---------------------------------

TEST(Partitioner, OversizedAtomSurfacesSwapCost) {
  // One atom dwarfs Rmin: the greedy packing must give it its own module and
  // surface the swap traffic instead of silently pretending it fits.
  sys::ModelSpec m;
  m.name = "oversized";
  m.input = {3, 32, 32};
  m.num_classes = 10;
  m.atoms.push_back({"small",
                     {sys::LayerSpec::conv2d(3, 4, 3, 1, 1), sys::LayerSpec::relu()},
                     false,
                     {}});
  // The huge atom pools its output down so only ITS OWN activations are
  // oversized (the following head module stays tiny).
  m.atoms.push_back({"huge",
                     {sys::LayerSpec::conv2d(4, 256, 3, 1, 1), sys::LayerSpec::relu(),
                      sys::LayerSpec::global_avg_pool()},
                     false,
                     {}});
  m.atoms.push_back({"head",
                     {sys::LayerSpec::flatten(), sys::LayerSpec::linear(256, 10)},
                     false,
                     {}});
  const std::int64_t batch = 16;
  const std::int64_t huge_mem = sys::module_train_mem_bytes(m, 1, 2, batch, true);
  const std::int64_t rmin = huge_mem / 4;

  sys::TrainCostConfig cfg;
  cfg.pgd_steps = 3;
  const auto p = cascade::partition_model(m, rmin, batch, &cfg);
  ASSERT_EQ(p.oversized.size(), 1u);
  const auto& ov = p.oversized.front();
  EXPECT_EQ(p.modules[ov.module].num_atoms(), 1u);
  EXPECT_EQ(ov.mem_bytes, cascade::module_mem_bytes(m, p, ov.module));
  EXPECT_EQ(ov.excess_bytes, ov.mem_bytes - rmin);
  // Every forward and backward of the PGD-3 step (3 attack passes + update)
  // traverses swapped: 2 * (pgd + 1) traversals.
  EXPECT_EQ(ov.swap_traversals, 2 * (cfg.pgd_steps + 1));
  EXPECT_GT(ov.swap_bytes, 0.0);
  EXPECT_NE(cascade::format_partition(m, p).find("exceeds Rmin"),
            std::string::npos);

  // Roomy Rmin: nothing oversized (the paper's regime).
  const auto ok = cascade::partition_model(m, huge_mem * 2, batch);
  EXPECT_TRUE(ok.oversized.empty());
}

// ---- checkpointed training --------------------------------------------------

data::TrainTest mem_tiny_data() {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 128;
  dcfg.test_size = 32;
  dcfg.num_classes = 4;
  return data::make_synthetic(dcfg);
}

TEST(Checkpointing, GradientsAndParametersBitIdenticalToPlain) {
  const auto spec = models::tiny_vgg_spec(16, 4, 6);
  const auto data = mem_tiny_data();

  auto run = [&](const std::vector<std::size_t>& starts,
                 std::int64_t* peak) -> nn::ParamBlob {
    Rng init(99);
    models::BuiltModel model(spec, init);
    if (!starts.empty()) model.set_checkpoint_segments(starts);
    nn::Sgd opt(model.parameters_range(0, model.num_atoms()),
                model.gradients_range(0, model.num_atoms()),
                nn::SgdConfig{0.05f, 0.9f, 1e-4f});
    baselines::LocalAtConfig at;
    at.pgd_steps = 2;
    Rng data_rng(5), train_rng(7);
    data::BatchIterator batches(data.train, 16, data_rng);
    mem::ClientMemScope scope(mem::Budget{0});  // measure-only
    for (int it = 0; it < 3; ++it)
      baselines::at_train_batch(model, opt, batches.next(), at, train_rng);
    if (peak) *peak = scope.peak_bytes();
    return model.save_all();
  };

  std::int64_t plain_peak = 0, ckpt_peak = 0;
  const auto plain = run({}, &plain_peak);
  const auto ckpt = run({0, 2, 4}, &ckpt_peak);
  ASSERT_EQ(plain.size(), ckpt.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    ASSERT_EQ(plain[i], ckpt[i]) << "parameters diverged at element " << i;
  // The drop-and-recompute execution must measurably lower the peak.
  EXPECT_LT(ckpt_peak, plain_peak);
  EXPECT_GT(ckpt_peak, 0);
}

TEST(Checkpointing, CascadeMidModuleTrainingIsBitIdentical) {
  // Mid-cascade block (frozen prefix + aux head + feature-space PGD), the
  // FedProphet client path. The checkpointed run executes under a scope
  // (cache-free prefix) — gradients must still match plain execution.
  const auto spec = models::tiny_vgg_spec(16, 4, 6);
  const auto data = mem_tiny_data();
  const auto full =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), 16, false);

  auto run = [&](bool ckpt) -> nn::ParamBlob {
    Rng init(123);
    models::BuiltModel model(spec, init);
    cascade::CascadeState cascade(
        model, cascade::partition_model(spec, full / 3, 16), init);
    const std::size_t m = 1;  // a middle module with a frozen prefix
    EXPECT_GE(cascade.num_modules(), 3u) << "partition too coarse for test";
    cascade::LocalTrainConfig tcfg;
    tcfg.module_begin = m;
    tcfg.module_end = m + 1;
    tcfg.eps_in = 0.05f;
    tcfg.pgd_steps = 2;
    tcfg.sgd = nn::SgdConfig{0.05f, 0.9f, 1e-4f};
    cascade::CascadeLocalTrainer trainer(cascade, tcfg);
    const auto& mod = cascade.partition().modules[m];
    std::optional<mem::ClientMemScope> scope;
    if (ckpt) {
      scope.emplace(mem::Budget{0});
      if (mod.end - mod.begin >= 2)
        model.set_checkpoint_segments({mod.begin, mod.begin + 1});
    }
    Rng data_rng(5), train_rng(7);
    data::BatchIterator batches(data.train, 16, data_rng);
    for (int it = 0; it < 2; ++it) trainer.train_batch(batches.next(), train_rng);
    nn::ParamBlob blob = model.save_all();
    const auto aux = cascade.save_aux(m);
    blob.insert(blob.end(), aux.begin(), aux.end());
    return blob;
  };

  const auto plain = run(false);
  const auto ckpt = run(true);
  ASSERT_EQ(plain.size(), ckpt.size());
  for (std::size_t i = 0; i < plain.size(); ++i)
    ASSERT_EQ(plain[i], ckpt[i]) << "cascade parameters diverged at " << i;
}

// ---- engine budget enforcement ----------------------------------------------

fed::FlConfig mem_tiny_fl() {
  fed::FlConfig fl;
  fl.num_clients = 6;
  fl.clients_per_round = 3;
  fl.local_iters = 2;
  fl.batch_size = 16;
  fl.pgd_steps = 2;
  fl.rounds = 2;
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  return fl;
}

struct EngineRun {
  std::uint64_t hash = 0;
  std::int64_t peak = 0;
  std::size_t over_budget = 0;
  double access_s = 0.0;
  double compute_s = 0.0;
};

EngineRun run_jfat(const data::TrainTest& data, mem::MemConfig mc) {
  auto fl = mem_tiny_fl();
  const auto tiny = models::tiny_vgg_spec(16, 4, 4);
  const auto paper = models::vgg16_spec(32, 10);
  // Map measured trainable-model bytes onto the paper-shape pricing scale
  // (the DESIGN.md §1 convention the benches use).
  mc.device_mem_scale =
      static_cast<double>(sys::module_train_mem_bytes(
          tiny, 0, tiny.atoms.size(), fl.batch_size, false)) /
      static_cast<double>(sys::module_train_mem_bytes(
          paper, 0, paper.atoms.size(), fl.batch_size, false));
  fl.mem = mc;
  fed::FedEnvConfig ecfg;
  ecfg.fl = fl;
  auto env = fed::make_env(data, ecfg, paper);
  baselines::JFatConfig cfg;
  cfg.fl = fl;
  cfg.model_spec = tiny;
  baselines::JFat algo(env, cfg);
  algo.run();
  EngineRun r;
  r.hash = fnv1a(algo.global_model().save_all());
  r.peak = algo.total_stats().peak_mem_bytes;
  r.over_budget = algo.total_stats().over_budget;
  r.access_s = algo.sim_time().access_s;
  r.compute_s = algo.sim_time().compute_s;
  return r;
}

TEST(BudgetEnforcement, ReportsPeaksAndViolationsWithoutChangingAggregates) {
  const auto data = mem_tiny_data();

  // Baseline: memory plane off — the historical behaviour.
  const auto off = run_jfat(data, mem::MemConfig{});
  EXPECT_EQ(off.peak, 0);

  // Measure-only: same aggregates, same clocks, now with a measured peak.
  mem::MemConfig measure;
  measure.measure = true;
  const auto measured = run_jfat(data, measure);
  EXPECT_EQ(measured.hash, off.hash) << "measurement changed the aggregates";
  EXPECT_EQ(measured.access_s, off.access_s);
  EXPECT_EQ(measured.compute_s, off.compute_s);
  EXPECT_GT(measured.peak, 0);

  // Enforced budget at half the measured peak, no checkpointing: every
  // client overruns — reported, not fatal — and the overrun is priced as
  // swap traffic (access time grows).
  mem::MemConfig enforce;
  enforce.enforce_budget = true;
  enforce.checkpointing = false;
  enforce.budget_override_bytes = measured.peak / 2;
  const auto over = run_jfat(data, enforce);
  EXPECT_EQ(over.hash, off.hash) << "budget enforcement changed the aggregates";
  EXPECT_GT(over.over_budget, 0u);
  EXPECT_GT(over.access_s, off.access_s) << "overrun not priced as swap";

  // Same budget with checkpointing: bit-identical aggregates (recompute is
  // exact), measured peak within budget, no violations, and the recompute
  // priced as extra compute rather than swap.
  mem::MemConfig ckpt = enforce;
  ckpt.checkpointing = true;
  const auto fitted = run_jfat(data, ckpt);
  EXPECT_EQ(fitted.hash, off.hash) << "checkpointing changed the aggregates";
  EXPECT_LE(fitted.peak, enforce.budget_override_bytes)
      << "checkpointed client exceeded its budget";
  EXPECT_EQ(fitted.over_budget, 0u);
  EXPECT_LT(fitted.peak, measured.peak);
  EXPECT_GT(fitted.compute_s, off.compute_s) << "recompute FLOPs not priced";
}

}  // namespace
}  // namespace fp
