#include <gtest/gtest.h>

#include "data/synthetic.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp::fedprophet {
namespace {

TEST(AdaptivePerturbation, EpsilonIsAlphaTimesBase) {
  AdaptivePerturbation apa(0.3f, 0.1f, 0.05f, true);
  apa.start_module(2.0);
  EXPECT_NEAR(apa.epsilon(), 0.6f, 1e-6f);
}

TEST(AdaptivePerturbation, IncreasesWhenRatioTooHigh) {
  AdaptivePerturbation apa(0.3f, 0.1f, 0.05f, true);
  apa.start_module(1.0);
  // Current ratio 80/20 = 4 >> previous final ratio 1.5: robustness lags.
  apa.update(0.8, 0.2, 1.5);
  EXPECT_NEAR(apa.alpha(), 0.4f, 1e-6f);
}

TEST(AdaptivePerturbation, DecreasesWhenRatioTooLow) {
  AdaptivePerturbation apa(0.3f, 0.1f, 0.05f, true);
  apa.start_module(1.0);
  apa.update(0.5, 0.49, 1.5);  // ratio ~1.02 < 0.95 * 1.5
  EXPECT_NEAR(apa.alpha(), 0.2f, 1e-6f);
}

TEST(AdaptivePerturbation, DeadBandHolds) {
  AdaptivePerturbation apa(0.3f, 0.1f, 0.05f, true);
  apa.start_module(1.0);
  apa.update(0.6, 0.4, 1.5);  // ratio 1.5 exactly: inside (1 +- gamma)
  EXPECT_NEAR(apa.alpha(), 0.3f, 1e-6f);
}

TEST(AdaptivePerturbation, DisabledNeverMoves) {
  AdaptivePerturbation apa(0.3f, 0.1f, 0.05f, false);
  apa.start_module(1.0);
  apa.update(0.9, 0.1, 1.5);
  apa.update(0.9, 0.1, 1.5);
  EXPECT_NEAR(apa.alpha(), 0.3f, 1e-6f);
}

TEST(AdaptivePerturbation, AlphaNeverGoesNegative) {
  AdaptivePerturbation apa(0.1f, 0.1f, 0.05f, true);
  apa.start_module(1.0);
  for (int i = 0; i < 5; ++i) apa.update(0.5, 0.5, 10.0);  // push down hard
  EXPECT_GE(apa.alpha(), 0.0f);
}

class DmaFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    spec_ = models::tiny_vgg_spec(16, 10, 4);
    const auto full =
        sys::module_train_mem_bytes(spec_, 0, spec_.atoms.size(), 16, false);
    partition_ = cascade::partition_model(spec_, full / 3, 16);
    ASSERT_GE(partition_.num_modules(), 3u);
  }
  sys::ModelSpec spec_;
  cascade::Partition partition_;
};

TEST_F(DmaFixture, DisabledAssignsSingleModule) {
  EXPECT_EQ(assign_modules(spec_, partition_, 0, 16, 1ll << 40, 1e12, 1e12,
                           /*enabled=*/false),
            1u);
}

TEST_F(DmaFixture, RichFastClientGetsEverything) {
  EXPECT_EQ(assign_modules(spec_, partition_, 0, 16, 1ll << 40, 1e15, 1.0,
                           /*enabled=*/true),
            partition_.num_modules());
}

TEST_F(DmaFixture, MemoryConstraintCapsAssignment) {
  // Budget for exactly the first module: adding the second must overflow.
  const auto m0 = cascade::module_mem_bytes(spec_, partition_, 0);
  const auto end = assign_modules(spec_, partition_, 0, 16, m0, 1e15, 1.0, true);
  EXPECT_EQ(end, 1u);
}

TEST_F(DmaFixture, FlopsConstraintCapsAssignment) {
  // Same performance as the slowest client: no headroom for future modules.
  const auto end =
      assign_modules(spec_, partition_, 0, 16, 1ll << 40, 1e12, 1e12, true);
  EXPECT_EQ(end, 1u);
}

TEST_F(DmaFixture, MidStageAssignmentStartsAtCurrentModule) {
  const auto end =
      assign_modules(spec_, partition_, 1, 16, 1ll << 40, 1e15, 1.0, true);
  EXPECT_GE(end, 2u);
  EXPECT_LE(end, partition_.num_modules());
}

class FedProphetSmoke : public ::testing::Test {
 protected:
  void SetUp() override {
    data::SyntheticConfig dcfg = data::synth_cifar_config();
    dcfg.train_size = 480;
    dcfg.test_size = 120;
    dcfg.num_classes = 4;
    data_ = data::make_synthetic(dcfg);

    cfg_.fl.num_clients = 6;
    cfg_.fl.clients_per_round = 3;
    cfg_.fl.local_iters = 4;
    cfg_.fl.batch_size = 16;
    cfg_.fl.pgd_steps = 2;
    cfg_.fl.lr0 = 0.05f;
    cfg_.fl.sgd.lr = 0.05f;
    cfg_.model_spec = models::tiny_vgg_spec(16, 4, 4);
    const auto full = sys::module_train_mem_bytes(
        cfg_.model_spec, 0, cfg_.model_spec.atoms.size(), 16, false);
    cfg_.rmin_bytes = full / 3;
    cfg_.rounds_per_module = 6;
    cfg_.eval_every = 3;
    cfg_.val_samples = 64;
    // Map GB-scale devices onto the KB-scale model: full model mem / 2 GB.
    cfg_.device_mem_scale =
        static_cast<double>(full) / (2.0 * static_cast<double>(1ull << 30));

    fed::FedEnvConfig ecfg;
    ecfg.fl = cfg_.fl;
    env_ = std::make_unique<fed::FedEnv>(
        fed::make_env(data_, ecfg, models::vgg16_spec(32, 10)));
  }
  data::TrainTest data_;
  FedProphetConfig cfg_;
  std::unique_ptr<fed::FedEnv> env_;
};

TEST_F(FedProphetSmoke, TrainsAllModulesAndBeatsChance) {
  FedProphet algo(*env_, cfg_);
  ASSERT_GE(algo.partition().num_modules(), 2u);
  algo.train();
  EXPECT_EQ(algo.stages().size(), algo.partition().num_modules());
  for (const auto& stage : algo.stages()) {
    EXPECT_GT(stage.rounds, 0);
    EXPECT_GE(stage.mean_dz, 0.0);
  }
  // Chance on 4 classes is 0.25; even this tiny run must beat it clearly.
  const auto rec = algo.evaluate_snapshot(0, 96, 3);
  EXPECT_GT(rec.clean_acc, 0.4);
  // eps trace has one entry per round.
  std::int64_t total_rounds = 0;
  for (const auto& s : algo.stages()) total_rounds += s.rounds;
  EXPECT_EQ(static_cast<std::int64_t>(algo.eps_trace().size()), total_rounds);
  EXPECT_GT(algo.sim_time().total(), 0.0);
}

TEST_F(FedProphetSmoke, LaterStagesUseMeasuredPerturbation) {
  FedProphet algo(*env_, cfg_);
  algo.train();
  // Stage m >= 1 must have used eps derived from stage m-1's measured dz.
  for (std::size_t s = 1; s < algo.stages().size(); ++s) {
    EXPECT_GT(algo.stages()[s].eps_used, 0.0)
        << "stage " << s << " trained without intermediate perturbation";
  }
}

TEST_F(FedProphetSmoke, DmaOffStillConverges) {
  cfg_.dma = false;
  cfg_.apa = false;
  FedProphet algo(*env_, cfg_);
  algo.train();
  const auto rec = algo.evaluate_snapshot(0, 96, 3);
  EXPECT_GT(rec.clean_acc, 0.3);
}

}  // namespace
}  // namespace fp::fedprophet
