#include <gtest/gtest.h>

#include <cmath>

#include "tensor/ops.hpp"

namespace fp {
namespace {

void naive_gemm(bool ta, bool tb, std::int64_t m, std::int64_t n, std::int64_t k,
                float alpha, const float* a, const float* b, float beta, float* c) {
  for (std::int64_t i = 0; i < m; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = ta ? a[p * m + i] : a[i * k + p];
        const float bv = tb ? b[j * k + p] : b[p * n + j];
        acc += static_cast<double>(av) * bv;
      }
      c[i * n + j] = alpha * static_cast<float>(acc) + beta * c[i * n + j];
    }
}

class GemmTest : public ::testing::TestWithParam<std::tuple<bool, bool>> {};

TEST_P(GemmTest, MatchesNaive) {
  const auto [ta, tb] = GetParam();
  Rng rng(11);
  const std::int64_t m = 7, n = 5, k = 9;
  const Tensor a = Tensor::randn({ta ? k : m, ta ? m : k}, rng);
  const Tensor b = Tensor::randn({tb ? n : k, tb ? k : n}, rng);
  Tensor c = Tensor::randn({m, n}, rng);
  Tensor expect = c;
  naive_gemm(ta, tb, m, n, k, 1.3f, a.data(), b.data(), 0.7f, expect.data());
  gemm(ta, tb, m, n, k, 1.3f, a.data(), b.data(), 0.7f, c.data());
  for (std::int64_t i = 0; i < m * n; ++i)
    EXPECT_NEAR(c[i], expect[i], 1e-3f) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(AllTransposes, GemmTest,
                         ::testing::Combine(::testing::Bool(), ::testing::Bool()));

TEST(Gemm, BetaZeroClearsGarbage) {
  const std::int64_t m = 2, n = 2, k = 2;
  const float a[4] = {1, 0, 0, 1};
  const float b[4] = {5, 6, 7, 8};
  float c[4] = {NAN, NAN, NAN, NAN};
  gemm(false, false, m, n, k, 1.0f, a, b, 0.0f, c);
  EXPECT_FLOAT_EQ(c[0], 5.0f);
  EXPECT_FLOAT_EQ(c[3], 8.0f);
}

TEST(Im2Col, IdentityKernelGeometry) {
  // 1x1 kernel, stride 1: columns are just the image rows.
  Conv2dGeometry g{2, 1, 1, 1, 0, 3, 3};
  Rng rng(12);
  const Tensor img = Tensor::randn({2, 3, 3}, rng);
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  for (std::int64_t i = 0; i < img.numel(); ++i) EXPECT_FLOAT_EQ(cols[i], img[i]);
}

TEST(Im2Col, PaddingProducesZeros) {
  Conv2dGeometry g{1, 1, 3, 1, 1, 2, 2};
  const Tensor img = Tensor::ones({1, 2, 2});
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, img.data(), cols.data());
  // First row of the column matrix corresponds to kernel offset (0,0): the
  // top-left tap reads padding for output (0,0).
  EXPECT_FLOAT_EQ(cols[0], 0.0f);
  // Center tap (kh=1, kw=1) reads the image itself.
  const std::int64_t center_row = 1 * 3 + 1;
  for (std::int64_t j = 0; j < g.col_cols(); ++j)
    EXPECT_FLOAT_EQ(cols[center_row * g.col_cols() + j], 1.0f);
}

TEST(Col2Im, IsAdjointOfIm2Col) {
  // <im2col(x), y> == <x, col2im(y)> for all x, y (adjointness).
  Conv2dGeometry g{3, 4, 3, 2, 1, 5, 5};
  Rng rng(13);
  const Tensor x = Tensor::randn({3, 5, 5}, rng);
  const Tensor y = Tensor::randn({g.col_rows(), g.col_cols()}, rng);
  Tensor cols({g.col_rows(), g.col_cols()});
  im2col(g, x.data(), cols.data());
  Tensor back({3, 5, 5});
  col2im(g, y.data(), back.data());
  EXPECT_NEAR(cols.dot(y), x.dot(back), 1e-2f);
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(14);
  const Tensor logits = Tensor::randn({4, 6}, rng, 3.0f);
  const Tensor p = softmax(logits);
  for (std::int64_t r = 0; r < 4; ++r) {
    double s = 0;
    for (std::int64_t c = 0; c < 6; ++c) {
      EXPECT_GT(p[r * 6 + c], 0.0f);
      s += p[r * 6 + c];
    }
    EXPECT_NEAR(s, 1.0, 1e-5);
  }
}

TEST(Softmax, NumericallyStableForHugeLogits) {
  const Tensor logits = Tensor::from_vector({1, 3}, {1000.0f, 1001.0f, 999.0f});
  const Tensor p = softmax(logits);
  EXPECT_FALSE(std::isnan(p[0]));
  EXPECT_GT(p[1], p[0]);
}

TEST(CrossEntropy, MatchesManualComputation) {
  const Tensor logits = Tensor::from_vector({2, 3}, {1, 2, 3, 0, 0, 0});
  const std::vector<std::int64_t> y{2, 1};
  // row0: -log softmax_2 ; row1: -log(1/3)
  const double l0 = -std::log(std::exp(3.0) / (std::exp(1.0) + std::exp(2.0) + std::exp(3.0)));
  const double l1 = std::log(3.0);
  EXPECT_NEAR(cross_entropy(logits, y), (l0 + l1) / 2.0, 1e-5);
}

TEST(CrossEntropyGrad, MatchesFiniteDifferences) {
  Rng rng(15);
  Tensor logits = Tensor::randn({3, 5}, rng);
  const std::vector<std::int64_t> y{0, 3, 4};
  const Tensor g = cross_entropy_grad(logits, y);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    const float lp = cross_entropy(logits, y);
    logits[i] = orig - h;
    const float lm = cross_entropy(logits, y);
    logits[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * h), g[i], 2e-3f);
  }
}

TEST(SoftCrossEntropy, EqualsHardCeOnOnehot) {
  Rng rng(16);
  const Tensor logits = Tensor::randn({2, 4}, rng);
  const std::vector<std::int64_t> y{1, 3};
  Tensor onehot({2, 4});
  onehot[0 * 4 + 1] = 1.0f;
  onehot[1 * 4 + 3] = 1.0f;
  EXPECT_NEAR(soft_cross_entropy(logits, onehot), cross_entropy(logits, y), 1e-5);
}

TEST(SoftCrossEntropyGrad, MatchesFiniteDifferences) {
  Rng rng(17);
  Tensor logits = Tensor::randn({2, 4}, rng);
  Tensor targets = softmax(Tensor::randn({2, 4}, rng));
  const Tensor g = soft_cross_entropy_grad(logits, targets);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    const float lp = soft_cross_entropy(logits, targets);
    logits[i] = orig - h;
    const float lm = soft_cross_entropy(logits, targets);
    logits[i] = orig;
    EXPECT_NEAR((lp - lm) / (2 * h), g[i], 2e-3f);
  }
}

TEST(DlrLoss, NegativeWhenConfidentlyCorrect) {
  const Tensor logits = Tensor::from_vector({1, 4}, {10, 0, 1, 2});
  EXPECT_LT(dlr_loss(logits, {0}), 0.0f);
}

TEST(DlrLoss, PositiveWhenMisclassified) {
  const Tensor logits = Tensor::from_vector({1, 4}, {0, 10, 1, 2});
  EXPECT_GT(dlr_loss(logits, {0}), 0.0f);
}

TEST(DlrLossGrad, MatchesFiniteDifferences) {
  Rng rng(18);
  Tensor logits = Tensor::randn({3, 6}, rng, 2.0f);
  const std::vector<std::int64_t> y{1, 0, 5};
  const Tensor g = dlr_loss_grad(logits, y);
  const float h = 1e-3f;
  for (std::int64_t i = 0; i < logits.numel(); ++i) {
    const float orig = logits[i];
    logits[i] = orig + h;
    const float lp = dlr_loss(logits, y);
    logits[i] = orig - h;
    const float lm = dlr_loss(logits, y);
    logits[i] = orig;
    // DLR is piecewise-smooth; h must not cross an argsort boundary. The
    // random logits have gaps >> h with overwhelming probability.
    EXPECT_NEAR((lp - lm) / (2 * h), g[i], 5e-3f) << "coord " << i;
  }
}

TEST(Accuracy, CountsMatchesOnly) {
  const Tensor logits = Tensor::from_vector({3, 2}, {1, 0, 0, 1, 1, 0});
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 1, 1}), 2.0 / 3.0);
}

}  // namespace
}  // namespace fp
