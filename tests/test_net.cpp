// The distributed runtime (src/net/, DESIGN.md §10).
//
// * Transport: framed messages round-trip over loopback including partial
//   reads (multi-MB frame through finite socket buffers) and a frame dribbled
//   one byte at a time; timeout, EOF, and corrupt headers throw NetError.
// * Wire frames: every FrameWriter field type round-trips; truncation throws
//   WireError at the field that broke.
// * Spec surface: net.* keys round-trip through JSON and typos get nearest-
//   name suggestions; serve_root rejects unsupported specs before listening.
// * Equivalence (the acceptance bar): a root + 2 loopback workers produces a
//   history and final metrics IDENTICAL to the single-process run — for jFAT
//   and FedProphet, under identity and int8 wire codecs — because the worker
//   ships the encoded messages the fused path would have produced.
// * Failure: a worker that drops mid-round fails the round with a diagnostic
//   naming the worker, within net.timeout_s.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/wire.hpp"
#include "exp/runner.hpp"
#include "net/protocol.hpp"
#include "net/service.hpp"
#include "net/socket.hpp"

namespace fp {
namespace {

// ---- wire frames ------------------------------------------------------------

TEST(WireFrame, EveryFieldTypeRoundTrips) {
  comm::WireMessage msg;
  msg.kind = comm::CodecKind::kInt8;
  msg.delta = true;
  msg.num_elems = 5;
  msg.payload = {1, 2, 3, 250};

  comm::FrameWriter w;
  w.u8(0xab);
  w.u32(0xdeadbeefu);
  w.u64(1ull << 40);
  w.i64(-77);
  w.f32(1.5f);
  w.f64(-2.25);
  w.str("net");
  w.bytes({9, 8, 7});
  w.blob(nn::ParamBlob{0.5f, -0.5f, 3.0f});
  w.wire_msg(msg);

  comm::FrameReader r(w.data());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 1ull << 40);
  EXPECT_EQ(r.i64(), -77);
  EXPECT_EQ(r.f32(), 1.5f);
  EXPECT_EQ(r.f64(), -2.25);
  EXPECT_EQ(r.str(), "net");
  EXPECT_EQ(r.bytes(), (std::vector<std::uint8_t>{9, 8, 7}));
  EXPECT_EQ(r.blob(), (nn::ParamBlob{0.5f, -0.5f, 3.0f}));
  const comm::WireMessage back = r.wire_msg();
  EXPECT_EQ(back.kind, msg.kind);
  EXPECT_EQ(back.delta, msg.delta);
  EXPECT_EQ(back.num_elems, msg.num_elems);
  EXPECT_EQ(back.payload, msg.payload);
  EXPECT_TRUE(r.done());
}

TEST(WireFrame, TruncationThrowsAtTheBrokenField) {
  comm::FrameWriter w;
  w.u64(123);
  w.str("hello");
  const auto& buf = w.data();
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    comm::FrameReader r(buf.data(), cut);
    EXPECT_THROW(
        {
          r.u64();
          r.str();
        },
        comm::WireError)
        << "prefix of " << cut << " bytes parsed as a whole frame";
  }
  // A declared container length beyond the actual bytes must throw, not
  // allocate: 2^60 "bytes" in a 16-byte frame.
  comm::FrameWriter evil;
  evil.u64(1ull << 60);
  evil.u64(0);
  comm::FrameReader r(evil.data());
  EXPECT_THROW(r.bytes(), comm::WireError);
}

// ---- socket transport -------------------------------------------------------

TEST(Socket, MultiMegabyteFrameSurvivesPartialReadsAndShortWrites) {
  net::TcpListener listener("127.0.0.1", 0);
  ASSERT_GT(listener.port(), 0);

  std::vector<std::uint8_t> big(8 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>((i * 131) & 0xff);

  // Loopback buffers are far smaller than 8 MB, so the sender blocks on short
  // writes while the receiver drains partial reads — the exact paths the
  // framing layer must survive.
  std::thread client([&] {
    net::TcpConn conn =
        net::TcpConn::connect_retry("127.0.0.1", listener.port(), 10.0);
    conn.send_frame(42, big);
    const net::Frame echo = conn.recv_frame(10.0);
    EXPECT_EQ(echo.type, 43u);
    EXPECT_EQ(echo.body, std::vector<std::uint8_t>({1, 2, 3}));
  });

  net::TcpConn server = listener.accept(10.0);
  const net::Frame f = server.recv_frame(30.0);
  EXPECT_EQ(f.type, 42u);
  EXPECT_EQ(f.body, big);
  server.send_frame(43, {1, 2, 3});
  client.join();
  EXPECT_EQ(server.rx_bytes(),
            static_cast<std::int64_t>(big.size()) + 16);  // header is 16 bytes
  EXPECT_EQ(server.tx_bytes(), 3 + 16);
}

TEST(Socket, FrameDribbledOneByteAtATimeAssembles) {
  int sv[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
  net::TcpConn reader(sv[1], "dribble-pair");

  const std::vector<std::uint8_t> body = {5, 4, 3, 2, 1, 0, 255, 128};
  // Raw frame header: magic 'FPN1' u32, type u32, body_len u64 (socket.hpp).
  std::vector<std::uint8_t> raw(16);
  const std::uint32_t magic = 0x314e5046u, type = 7u;
  const std::uint64_t len = body.size();
  std::memcpy(raw.data(), &magic, 4);
  std::memcpy(raw.data() + 4, &type, 4);
  std::memcpy(raw.data() + 8, &len, 8);
  raw.insert(raw.end(), body.begin(), body.end());

  std::thread writer([&] {
    for (const std::uint8_t byte : raw) {
      ASSERT_EQ(::send(sv[0], &byte, 1, 0), 1);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    ::close(sv[0]);
  });
  const net::Frame f = reader.recv_frame(10.0);
  writer.join();
  EXPECT_EQ(f.type, 7u);
  EXPECT_EQ(f.body, body);
}

TEST(Socket, TimeoutEofAndCorruptHeaderThrow) {
  {  // nothing arrives within the window
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    net::TcpConn reader(sv[1], "silent-peer");
    try {
      reader.recv_frame(0.2);
      FAIL() << "expected NetError";
    } catch (const net::NetError& e) {
      EXPECT_NE(std::string(e.what()).find("timed out"), std::string::npos)
          << e.what();
    }
    ::close(sv[0]);
  }
  {  // peer closes mid-frame: header promised 100 bytes, 4 arrived
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    net::TcpConn reader(sv[1], "dying-peer");
    const std::uint32_t magic = 0x314e5046u, type = 1u;
    const std::uint64_t len = 100;
    std::uint8_t hdr[16];
    std::memcpy(hdr, &magic, 4);
    std::memcpy(hdr + 4, &type, 4);
    std::memcpy(hdr + 8, &len, 8);
    ASSERT_EQ(::send(sv[0], hdr, 16, 0), 16);
    const std::uint8_t partial[4] = {1, 2, 3, 4};
    ASSERT_EQ(::send(sv[0], partial, 4, 0), 4);
    ::close(sv[0]);
    try {
      reader.recv_frame(5.0);
      FAIL() << "expected NetError";
    } catch (const net::NetError& e) {
      EXPECT_NE(std::string(e.what()).find("closed mid-frame"),
                std::string::npos)
          << e.what();
    }
  }
  {  // garbage where the magic should be
    int sv[2];
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, sv), 0);
    net::TcpConn reader(sv[1], "corrupt-peer");
    std::vector<std::uint8_t> junk(16, 0xab);
    ASSERT_EQ(::send(sv[0], junk.data(), junk.size(), 0),
              static_cast<ssize_t>(junk.size()));
    try {
      reader.recv_frame(5.0);
      FAIL() << "expected NetError";
    } catch (const net::NetError& e) {
      EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
          << e.what();
    }
    ::close(sv[0]);
  }
}

// ---- spec surface -----------------------------------------------------------

/// The test_exp tiny scenario plus a cheap final evaluation (distributed runs
/// go through run_built, which evaluates).
exp::ExperimentSpec tiny_net_spec(const std::string& method) {
  exp::ExperimentSpec spec;
  spec.method = method;
  for (const char* kv : {
           "workload=cifar", "model.width=4", "model.classes=4",
           "data.train_size=240", "data.test_size=80", "fl.num_clients=6",
           "fl.clients_per_round=3", "fl.local_iters=2", "fl.batch_size=16",
           "fl.pgd_steps=2", "fl.rounds=2", "fl.lr0=0.05", "fl.sgd.lr=0.05",
           "fl.seed=123", "fp.rounds_per_module=2", "fp.eval_every=2",
           "fp.val_samples=32", "eval.pgd_steps=2", "eval.aa_steps=2",
           "eval.aa_restarts=1", "eval.max_samples=32",
       })
    exp::apply_override(spec, kv);
  return spec;
}

TEST(NetSpec, KeysRoundTripThroughJson) {
  exp::ExperimentSpec spec = tiny_net_spec("jFAT");
  exp::apply_override(spec, "net.role=root");
  exp::apply_override(spec, "net.host=10.0.0.7");
  exp::apply_override(spec, "net.port=9999");
  exp::apply_override(spec, "net.workers=4");
  exp::apply_override(spec, "net.codec=identity");
  exp::apply_override(spec, "net.timeout_s=7.5");
  exp::apply_override(spec, "net.retry_s=3.25");
  const std::string json = exp::spec_to_json(spec);
  const exp::ExperimentSpec reparsed = exp::spec_from_json(json);
  EXPECT_TRUE(exp::specs_equal(spec, reparsed));
  EXPECT_EQ(json, exp::spec_to_json(reparsed));
  EXPECT_EQ(reparsed.net_port, 9999);
  EXPECT_EQ(reparsed.net_codec, "identity");
}

TEST(NetSpec, TyposSuggestNearestName) {
  exp::ExperimentSpec spec;
  try {
    exp::set_key(spec, "net.worker", "4");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("net.workers"), std::string::npos)
        << e.what();
  }
  try {
    exp::set_key(spec, "net.role", "rot");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("root"), std::string::npos)
        << e.what();
  }
  try {
    exp::set_key(spec, "net.codec", "gzip");
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("identity"), std::string::npos)
        << e.what();
  }
}

TEST(NetSpec, ServeRootRejectsUnsupportedSpecsBeforeListening) {
  exp::ExperimentSpec async = tiny_net_spec("jFAT");
  exp::apply_override(async, "fl.scheduler=async");
  try {
    net::serve_root(async);
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("sync"), std::string::npos)
        << e.what();
  }
  try {
    net::serve_root(tiny_net_spec("FedRBN"));
    FAIL() << "expected SpecError";
  } catch (const exp::SpecError& e) {
    EXPECT_NE(std::string(e.what()).find("distributed-runtime hooks"),
              std::string::npos)
        << e.what();
  }
}

// ---- root + workers over loopback ------------------------------------------

/// Runs spec as a distributed root with `workers` in-process loopback workers
/// (each rebuilding its setup from the shipped resolved spec, exactly like a
/// separate fp_run --worker process would).
exp::RunResult run_distributed(exp::ExperimentSpec spec, std::size_t workers) {
  exp::apply_override(spec, "net.workers=" + std::to_string(workers));
  exp::apply_override(spec, "net.port=0");  // ephemeral; on_listening tells us
  std::vector<std::thread> threads;
  std::mutex mu;
  std::vector<std::string> errors;
  exp::RunResult r = net::serve_root(spec, [&](int port) {
    for (std::size_t w = 0; w < workers; ++w)
      threads.emplace_back([&, port] {
        try {
          exp::ExperimentSpec ws;
          ws.net_host = "127.0.0.1";
          ws.net_port = port;
          ws.net_retry_s = 30.0;
          net::run_worker(ws);
        } catch (const std::exception& e) {
          std::lock_guard<std::mutex> lock(mu);
          errors.emplace_back(e.what());
        }
      });
  });
  for (auto& t : threads) t.join();
  EXPECT_TRUE(errors.empty()) << errors.front();
  return r;
}

/// The acceptance bar: every history field except the measured wall clock,
/// plus the final metrics, must be IDENTICAL between the single-process run
/// and the distributed one.
void expect_equivalent(const exp::RunResult& local,
                       const exp::RunResult& dist) {
  EXPECT_EQ(local.metrics.clean_acc, dist.metrics.clean_acc);
  EXPECT_EQ(local.metrics.pgd_acc, dist.metrics.pgd_acc);
  EXPECT_EQ(local.metrics.aa_acc, dist.metrics.aa_acc);
  EXPECT_EQ(local.bytes_up, dist.bytes_up);
  EXPECT_EQ(local.bytes_down, dist.bytes_down);
  ASSERT_EQ(local.history.size(), dist.history.size());
  for (std::size_t i = 0; i < local.history.size(); ++i) {
    const fed::RoundRecord& a = local.history[i];
    const fed::RoundRecord& b = dist.history[i];
    EXPECT_EQ(a.round, b.round) << "record " << i;
    EXPECT_EQ(a.clean_acc, b.clean_acc) << "record " << i;
    EXPECT_EQ(a.adv_acc, b.adv_acc) << "record " << i;
    EXPECT_EQ(a.sim_time_s, b.sim_time_s) << "record " << i;
    EXPECT_EQ(a.extra, b.extra) << "record " << i;
    EXPECT_EQ(a.bytes_up, b.bytes_up) << "record " << i;
    EXPECT_EQ(a.bytes_down, b.bytes_down) << "record " << i;
    EXPECT_EQ(a.peak_mem_bytes, b.peak_mem_bytes) << "record " << i;
    EXPECT_EQ(a.unique_participants, b.unique_participants) << "record " << i;
    EXPECT_EQ(a.agg_bytes_saved, b.agg_bytes_saved) << "record " << i;
    // measured_comm_s and round_wall_s are the intentionally-different
    // columns: real clocks, never compared across runs.
    EXPECT_GE(b.measured_comm_s, 0.0);
    EXPECT_GE(a.round_wall_s, 0.0);
    EXPECT_GE(b.round_wall_s, 0.0);
  }
  EXPECT_EQ(dist.net_workers, 2u);
  EXPECT_GT(dist.net_tx_bytes, 0);
  EXPECT_GT(dist.net_rx_bytes, 0);
}

TEST(NetEquivalence, JfatIdentityWire) {
  const exp::ExperimentSpec spec = tiny_net_spec("jFAT");
  const exp::RunResult local = exp::run_experiment(spec);
  const exp::RunResult dist = run_distributed(spec, 2);
  expect_equivalent(local, dist);
  EXPECT_EQ(local.history.back().measured_comm_s, 0.0);
}

TEST(NetEquivalence, JfatInt8Wire) {
  exp::ExperimentSpec spec = tiny_net_spec("jFAT");
  exp::apply_override(spec, "comm.codec=int8");
  const exp::RunResult local = exp::run_experiment(spec);
  const exp::RunResult dist = run_distributed(spec, 2);
  expect_equivalent(local, dist);
}

TEST(NetEquivalence, JfatInt8CodecDenseWire) {
  // net.codec=identity ships decoded fp32 blobs while the comm accounting
  // still models int8 — the history must STILL match single-process exactly.
  exp::ExperimentSpec spec = tiny_net_spec("jFAT");
  exp::apply_override(spec, "comm.codec=int8");
  exp::apply_override(spec, "net.codec=identity");
  const exp::RunResult local = exp::run_experiment(spec);
  const exp::RunResult dist = run_distributed(spec, 2);
  expect_equivalent(local, dist);
}

TEST(NetEquivalence, FedProphetIdentityWire) {
  const exp::ExperimentSpec spec = tiny_net_spec("FedProphet");
  const exp::RunResult local = exp::run_experiment(spec);
  const exp::RunResult dist = run_distributed(spec, 2);
  expect_equivalent(local, dist);
}

TEST(NetEquivalence, FedProphetInt8Wire) {
  exp::ExperimentSpec spec = tiny_net_spec("FedProphet");
  exp::apply_override(spec, "comm.codec=int8");
  const exp::RunResult local = exp::run_experiment(spec);
  const exp::RunResult dist = run_distributed(spec, 2);
  expect_equivalent(local, dist);
}

// ---- failure semantics ------------------------------------------------------

TEST(NetFailure, WorkerDroppingMidRoundFailsWithDiagnostic) {
  exp::ExperimentSpec spec = tiny_net_spec("jFAT");
  exp::apply_override(spec, "net.workers=1");
  exp::apply_override(spec, "net.port=0");
  exp::apply_override(spec, "net.timeout_s=3");

  std::thread fake;
  try {
    net::serve_root(spec, [&](int port) {
      fake = std::thread([port] {
        // A protocol-correct worker that vanishes right after the handshake:
        // hello, read the welcome, close.
        net::TcpConn conn =
            net::TcpConn::connect_retry("127.0.0.1", port, 10.0);
        comm::FrameWriter hello;
        hello.u32(net::kProtocolVersion);
        conn.send_frame(net::kMsgHello, hello.take());
        const net::Frame welcome = conn.recv_frame(10.0);
        EXPECT_EQ(welcome.type, net::kMsgWelcome);
        conn.close();
      });
    });
    FAIL() << "expected NetError for the dropped worker";
  } catch (const net::NetError& e) {
    // The diagnostic must name the worker, whether the drop surfaced on the
    // root's send (broken pipe) or its bounded recv (EOF/timeout).
    EXPECT_NE(std::string(e.what()).find("worker 0"), std::string::npos)
        << e.what();
  }
  fake.join();
}

}  // namespace
}  // namespace fp
