#include <gtest/gtest.h>

#include <set>

#include "fed/aggregator.hpp"
#include "fed/client_pool.hpp"
#include "fed/env.hpp"
#include "fed/sampler.hpp"
#include "models/zoo.hpp"

namespace fp::fed {
namespace {

TEST(ClientSampler, DistinctIdsWithinRound) {
  ClientSampler sampler(20, 81);
  for (int r = 0; r < 10; ++r) {
    const auto ids = sampler.sample(5);
    EXPECT_EQ(std::set<std::size_t>(ids.begin(), ids.end()).size(), 5u);
    for (const auto id : ids) EXPECT_LT(id, 20u);
  }
  EXPECT_THROW(sampler.sample(21), std::invalid_argument);
}

TEST(ClientSampler, EventuallyCoversEveryone) {
  ClientSampler sampler(10, 82);
  std::set<std::size_t> seen;
  for (int r = 0; r < 30; ++r)
    for (const auto id : sampler.sample(3)) seen.insert(id);
  EXPECT_EQ(seen.size(), 10u);
}

TEST(BlobAverager, WeightedMean) {
  BlobAverager avg;
  EXPECT_TRUE(avg.empty());
  avg.add({1.0f, 10.0f}, 1.0f);
  avg.add({3.0f, 30.0f}, 3.0f);
  const auto mean = avg.average();
  EXPECT_FLOAT_EQ(mean[0], 2.5f);   // (1*1 + 3*3) / 4
  EXPECT_FLOAT_EQ(mean[1], 25.0f);
  avg.reset();
  EXPECT_TRUE(avg.empty());
  EXPECT_THROW(avg.average(), std::logic_error);
}

TEST(PartialAccumulator, DenseAverageOfTwoClients) {
  Rng rng(83);
  const auto spec = models::tiny_cnn_spec(16, 4, 4);
  models::BuiltModel global(spec, rng), a(spec, rng), b(spec, rng);
  PartialAccumulator acc(global);
  acc.reset();
  for (std::size_t at = 0; at < global.num_atoms(); ++at) {
    acc.add_dense_atom(a, at, 1.0f);
    acc.add_dense_atom(b, at, 1.0f);
  }
  acc.finalize_into(global);
  const auto ga = a.save_all();
  const auto gb = b.save_all();
  const auto gg = global.save_all();
  for (std::size_t i = 0; i < gg.size(); ++i)
    EXPECT_NEAR(gg[i], 0.5f * (ga[i] + gb[i]), 1e-6f);
}

TEST(PartialAccumulator, UntouchedAtomsKeepValues) {
  Rng rng(84);
  const auto spec = models::tiny_cnn_spec(16, 4, 4);
  models::BuiltModel global(spec, rng), trained(spec, rng);
  const auto before = global.save_atom(global.num_atoms() - 1);
  PartialAccumulator acc(global);
  acc.reset();
  acc.add_dense_atom(trained, 0, 1.0f);  // only atom 0 contributed
  acc.finalize_into(global);
  EXPECT_EQ(global.save_atom(global.num_atoms() - 1), before);
  EXPECT_EQ(global.save_atom(0), trained.save_atom(0));
}

TEST(PartialAccumulator, WeightsFollowDataFractions) {
  Rng rng(85);
  const auto spec = models::tiny_cnn_spec(16, 4, 4);
  models::BuiltModel global(spec, rng), a(spec, rng), b(spec, rng);
  PartialAccumulator acc(global);
  acc.reset();
  acc.add_dense_atom(a, 0, 3.0f);
  acc.add_dense_atom(b, 0, 1.0f);
  acc.finalize_into(global);
  const auto ga = a.save_atom(0);
  const auto gb = b.save_atom(0);
  const auto gg = global.save_atom(0);
  for (std::size_t i = 0; i < gg.size(); ++i)
    EXPECT_NEAR(gg[i], 0.75f * ga[i] + 0.25f * gb[i], 1e-6f);
}

TEST(MakeEnv, BuildsShardsWeightsAndDevices) {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 400;
  dcfg.test_size = 40;
  const auto data = data::make_synthetic(dcfg);
  FedEnvConfig cfg;
  cfg.fl.num_clients = 8;
  cfg.with_public_set = true;
  const auto env = make_env(data, cfg, models::vgg16_spec(32, 10));
  EXPECT_EQ(env.shards.size(), 8u);
  EXPECT_GT(env.public_set.size(), 0);
  float wsum = 0;
  for (const auto w : env.weights) wsum += w;
  EXPECT_NEAR(wsum, 1.0f, 1e-5f);
  EXPECT_TRUE(env.devices.has_value());
  EXPECT_EQ(env.cost_spec.name, "VGG16");
}

TEST(SimulateRoundTime, PicksSlowestClient) {
  const auto spec = models::vgg16_spec(32, 10);
  sys::DeviceInstance fast, slow;
  fast.avail_mem_bytes = 1ll << 34;  // plenty: no swap
  fast.avail_flops = 1e13;
  fast.io_bytes_per_s = 16e9;
  slow = fast;
  slow.avail_flops = 1e11;
  ClientWork w;
  w.atom_begin = 0;
  w.atom_end = spec.atoms.size();
  w.pgd_steps = 10;
  sys::TrainCostConfig cost_cfg;
  cost_cfg.batch_size = 64;
  const auto t =
      simulate_round_time(spec, {fast, slow}, {w, w}, cost_cfg, 10);
  // The slow client is 100x slower: round time ~ its compute time.
  const auto t_slow = simulate_round_time(spec, {slow}, {w}, cost_cfg, 10);
  EXPECT_NEAR(t.total(), t_slow.total(), 1e-9);
  EXPECT_EQ(t.access_s, 0.0);
}

TEST(SimulateRoundTime, SwapAddsAccessTime) {
  const auto spec = models::vgg16_spec(32, 10);
  sys::DeviceInstance starved;
  starved.avail_mem_bytes = 60ll << 20;  // 60 MB for a ~300 MB model
  starved.avail_flops = 1e12;
  starved.io_bytes_per_s = 1.5e9;
  ClientWork w;
  w.atom_begin = 0;
  w.atom_end = spec.atoms.size();
  w.pgd_steps = 10;
  sys::TrainCostConfig cost_cfg;
  cost_cfg.batch_size = 64;
  const auto t = simulate_round_time(spec, {starved}, {w}, cost_cfg, 30);
  EXPECT_GT(t.access_s, 0.0);
  // The paper's core observation: data access dominates swapped jFAT.
  EXPECT_GT(t.access_s, t.compute_s);
}

TEST(ClientPool, PersistentIteratorsAndRngs) {
  data::SyntheticConfig dcfg = data::synth_cifar_config();
  dcfg.train_size = 100;
  dcfg.test_size = 20;
  const auto data = data::make_synthetic(dcfg);
  FedEnvConfig cfg;
  cfg.fl.num_clients = 4;
  auto env = make_env(data, cfg, models::vgg16_spec(32, 10));
  ClientPool pool(env, 7);
  auto& it_a = pool.batches(0, 8);
  auto& it_b = pool.batches(0, 8);
  EXPECT_EQ(&it_a, &it_b);  // same persistent iterator
  const auto batch = it_a.next();
  EXPECT_EQ(batch.x.dim(0), 8);
}

}  // namespace
}  // namespace fp::fed
