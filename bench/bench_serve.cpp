// Serving-plane load generator: sustained QPS of the batched HTTP server.
//
// Self mode (no --target): trains a small global model once, then serves the
// SAME checkpoint twice — fp32 with batching disabled (serve.max_batch=1)
// versus int8+Winograd with dynamic micro-batching — and drives each with K
// concurrent closed-loop connections over real loopback HTTP. Reports
// sustained QPS, exact client-side p50/p95/p99, and the server's mean batch
// size; asserts the two modes predict IDENTICAL labels (the serving plane's
// exactness contract: quantization changes the kernels, batching must change
// nothing). The headline: batched int8 sustains >= 2x the QPS of unbatched
// fp32 at identical predictions.
//
// Target mode (--target host:port --spec <sidecar>): drives an EXTERNAL
// fp_serve process — the CI smoke's client. --check-acc replays the served
// model's clean evaluation through the HTTP path (first eval.max_samples
// test samples, one request each) and prints "clean X.X%" in fp_run's
// format so the smoke can diff served-vs-offline accuracy textually.
//
// FP_BENCH_OUT=<dir> exports bench_serve.csv (one row per mode) and the
// resolved spec sidecar next to it.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "exp/json.hpp"
#include "obs/trace.hpp"
#include "net/http.hpp"
#include "serve/model_host.hpp"
#include "serve/server.hpp"
#include "serve/wire_json.hpp"

namespace fp::bench {
namespace {

struct LoadResult {
  std::int64_t requests = 0;
  std::int64_t ok = 0;                  ///< HTTP 200 responses
  double wall_s = 0.0;
  std::vector<double> latency_s;        ///< per request, request order
  std::vector<std::int64_t> labels;     ///< predicted label per request
};

std::int64_t parse_label(const std::string& body) {
  const auto flat = exp::parse_json_relaxed(body);
  for (const auto& [key, value] : flat)
    if (key == "predictions.0.label") return std::stoll(value);
  return -1;
}

/// K closed-loop connections splitting a fixed request budget; request i
/// carries sample (i % samples) of `data`, so label vectors from different
/// runs line up index by index.
LoadResult drive_load(const std::string& host, int port, std::int64_t conns,
                      std::int64_t requests, const data::Dataset& data,
                      std::int64_t samples) {
  samples = std::min<std::int64_t>(samples, data.size());
  std::vector<std::string> bodies(static_cast<std::size_t>(samples));
  for (std::int64_t i = 0; i < samples; ++i)
    bodies[static_cast<std::size_t>(i)] =
        serve::render_predict_request(data.images.slice_rows(i, 1));

  LoadResult r;
  r.requests = requests;
  r.latency_s.assign(static_cast<std::size_t>(requests), 0.0);
  r.labels.assign(static_cast<std::size_t>(requests), -1);
  std::atomic<std::int64_t> ok{0};
  const double t0 = obs::now_s();
  std::vector<std::thread> workers;
  for (std::int64_t k = 0; k < conns; ++k) {
    workers.emplace_back([&, k] {
      try {
        net::HttpConn http(net::TcpConn::connect_retry(host, port, 10.0));
        // Static partition: connection k owns requests k, k+conns, ...
        for (std::int64_t i = k; i < requests; i += conns) {
          const double s0 = obs::now_s();
          http.send_request("POST", "/v1/predict",
                            bodies[static_cast<std::size_t>(i % samples)]);
          net::HttpResponse resp;
          if (http.read_response(&resp, 60.0) !=
              net::HttpConn::Read::kRequest)
            break;
          r.latency_s[static_cast<std::size_t>(i)] = obs::now_s() - s0;
          if (resp.status == 200) {
            ok.fetch_add(1, std::memory_order_relaxed);
            r.labels[static_cast<std::size_t>(i)] = parse_label(resp.body);
          }
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "bench_serve: connection %lld failed: %s\n",
                     static_cast<long long>(k), e.what());
      }
    });
  }
  for (auto& w : workers) w.join();
  r.wall_s = obs::now_s() - t0;
  r.ok = ok.load();
  return r;
}

double quantile_ms(std::vector<double> lat, double q) {
  if (lat.empty()) return 0.0;
  std::sort(lat.begin(), lat.end());
  const auto idx = static_cast<std::size_t>(
      std::max<std::int64_t>(
          0, static_cast<std::int64_t>(
                 std::ceil(q * static_cast<double>(lat.size()))) -
                 1));
  return lat[std::min(idx, lat.size() - 1)] * 1e3;
}

struct ModeRow {
  std::string label;
  std::int64_t conns = 0;
  std::int64_t requests = 0;
  double qps = 0.0;
  double p50_ms = 0.0, p95_ms = 0.0, p99_ms = 0.0;
  double mean_batch = 0.0;
};

ModeRow summarize(const std::string& label, std::int64_t conns,
                  const LoadResult& lr, double mean_batch) {
  ModeRow row;
  row.label = label;
  row.conns = conns;
  row.requests = lr.requests;
  row.qps = lr.wall_s > 0 ? static_cast<double>(lr.ok) / lr.wall_s : 0.0;
  row.p50_ms = quantile_ms(lr.latency_s, 0.50);
  row.p95_ms = quantile_ms(lr.latency_s, 0.95);
  row.p99_ms = quantile_ms(lr.latency_s, 0.99);
  row.mean_batch = mean_batch;
  return row;
}

void print_row(const ModeRow& r) {
  std::printf("%-16s %6lld %8lld %9.1f %8.3f %8.3f %8.3f %10.2f\n",
              r.label.c_str(), static_cast<long long>(r.conns),
              static_cast<long long>(r.requests), r.qps, r.p50_ms, r.p95_ms,
              r.p99_ms, r.mean_batch);
}

void export_rows(const std::vector<ModeRow>& rows,
                 const exp::ExperimentSpec* spec) {
  const std::string csv = fed::export_history_path("bench_serve");
  if (csv.empty()) return;
  std::ofstream out(csv);
  out << "mode,connections,requests,qps,p50_ms,p95_ms,p99_ms,mean_batch\n";
  for (const auto& r : rows) {
    char line[256];
    std::snprintf(line, sizeof(line), "%s,%lld,%lld,%.2f,%.4f,%.4f,%.4f,%.3f\n",
                  r.label.c_str(), static_cast<long long>(r.conns),
                  static_cast<long long>(r.requests), r.qps, r.p50_ms,
                  r.p95_ms, r.p99_ms, r.mean_batch);
    out << line;
  }
  std::printf("exported %s\n", csv.c_str());
  if (spec != nullptr) {
    const std::string spec_path =
        csv.substr(0, csv.size() - 4) + ".spec.json";
    std::ofstream sp(spec_path);
    sp << exp::spec_to_json(*spec);
  }
}

int self_mode(std::int64_t conns, std::int64_t requests) {
  // One quick trained global model; serving perf does not care about
  // accuracy, but the checkpoint path (save_all -> make_served_model) is the
  // real one.
  exp::ExperimentSpec spec;
  spec.method = "jFAT";
  spec.adversarial = false;
  spec.model_width = 4;
  spec.with_public_set = false;
  spec.fl.num_clients = 4;
  spec.fl.clients_per_round = 2;
  spec.fl.rounds = 1;
  spec.fl.local_iters = 2;
  spec.eval_max_samples = 64;
  auto setup = exp::build_setup(std::move(spec));
  auto run = exp::method_registry().resolve(setup.spec.method)(setup);
  run.train();
  const nn::ParamBlob blob = run.algo->global_model().save_all();

  struct Mode {
    const char* label;
    const char* precision;
    bool winograd;
    std::int64_t max_batch;
  };
  // Batch bound = offered concurrency: a closed loop self-synchronizes (the
  // fan-out releases every client at once, so the next wave arrives
  // together), letting the batcher fill on the count predicate instead of
  // stalling out the max_delay window.
  const Mode modes[] = {
      {"fp32-unbatched", "fp32", false, 1},
      {"int8-batched", "int8", true, conns},
  };

  std::printf("=== Serving plane: batched int8 vs unbatched fp32 ===\n\n");
  std::printf("-- %lld closed-loop connections, %lld requests per mode, "
              "loopback HTTP, %u hw threads --\n\n",
              static_cast<long long>(conns), static_cast<long long>(requests),
              std::thread::hardware_concurrency());
  std::printf("%-16s %6s %8s %9s %8s %8s %8s %10s\n", "mode", "conns", "reqs",
              "QPS", "p50ms", "p95ms", "p99ms", "mean_batch");

  std::vector<ModeRow> rows;
  std::vector<std::vector<std::int64_t>> labels_by_mode;
  for (const Mode& m : modes) {
    exp::ExperimentSpec mspec = setup.spec;
    exp::set_key(mspec, "compute.precision", m.precision);
    exp::set_key(mspec, "compute.winograd", m.winograd ? "1" : "0");
    mspec.serve_port = 0;
    mspec.serve_max_batch = m.max_batch;
    mspec.serve_queue_cap = std::max<std::int64_t>(256, conns * 2);
    const std::int64_t sample_pool = std::min<std::int64_t>(
        64, setup.data.test.size());
    serve::ServedModel served = serve::make_served_model(mspec, blob);
    // Offline reference labels for this mode: one single-sample eval forward
    // per distinct request payload — exactly what the HTTP path must answer.
    std::vector<std::int64_t> offline(static_cast<std::size_t>(sample_pool));
    for (std::int64_t i = 0; i < sample_pool; ++i) {
      const Tensor logits = serve::reference_forward(
          *served.model, setup.data.test.images.slice_rows(i, 1),
          served.compute);
      offline[static_cast<std::size_t>(i)] = logits.argmax_rows()[0];
    }
    serve::InferenceServer server(std::move(served),
                                  serve::serve_config_of(mspec));
    server.start();
    const LoadResult lr = drive_load("127.0.0.1", server.port(), conns,
                                     requests, setup.data.test, sample_pool);
    const double mean_batch = server.batch_stats().mean();
    server.stop();
    if (lr.ok != lr.requests) {
      std::fprintf(stderr, "bench_serve: %s: only %lld/%lld requests got 200\n",
                   m.label, static_cast<long long>(lr.ok),
                   static_cast<long long>(lr.requests));
      return 1;
    }
    // The exactness contract, asserted under real concurrency: every served
    // prediction must equal this mode's offline single-sample forward —
    // micro-batching and HTTP framing change nothing.
    for (std::int64_t i = 0; i < requests; ++i) {
      if (lr.labels[static_cast<std::size_t>(i)] !=
          offline[static_cast<std::size_t>(i % sample_pool)]) {
        std::fprintf(stderr,
                     "bench_serve: %s: request %lld predicted %lld but the "
                     "offline forward says %lld — batching broke exactness\n",
                     m.label, static_cast<long long>(i),
                     static_cast<long long>(
                         lr.labels[static_cast<std::size_t>(i)]),
                     static_cast<long long>(
                         offline[static_cast<std::size_t>(i % sample_pool)]));
        return 1;
      }
    }
    rows.push_back(summarize(m.label, conns, lr, mean_batch));
    print_row(rows.back());
    labels_by_mode.push_back(lr.labels);
  }

  // Across modes int8 may flip the odd argmax (PR 6 bounds the eval-accuracy
  // delta at 3%); report rather than assert.
  std::int64_t diff = 0;
  for (std::size_t i = 0; i < labels_by_mode[0].size(); ++i)
    diff += labels_by_mode[0][i] != labels_by_mode[1][i];
  const double speedup = rows[0].qps > 0 ? rows[1].qps / rows[0].qps : 0.0;
  std::printf("\nbatched int8 sustains %.2fx the QPS of unbatched fp32 "
              "(%lld/%lld labels flipped by quantization; batching itself "
              "verified exact per mode)\n",
              speedup, static_cast<long long>(diff),
              static_cast<long long>(labels_by_mode[0].size()));
  if (speedup < 2.0)
    std::printf("warning: speedup below the 2x acceptance target — on "
                "single-core hosts client+HTTP work shares the model core "
                "and caps the ratio; rerun on a multi-core machine\n");
  export_rows(rows, &setup.spec);
  return 0;
}

int target_mode(const std::string& host, int port, const std::string& spec_path,
                std::int64_t conns, std::int64_t requests, bool check_acc) {
  std::ifstream in(spec_path);
  if (!in) {
    std::fprintf(stderr, "bench_serve: cannot read spec '%s'\n",
                 spec_path.c_str());
    return 2;
  }
  std::ostringstream text;
  text << in.rdbuf();
  exp::ExperimentSpec spec = exp::spec_from_json(text.str());
  // The sidecar spec regenerates the training run's exact synthetic test
  // split, so served predictions can be scored against real labels.
  auto setup = exp::build_setup(spec);
  const data::Dataset& test = setup.data.test;

  std::int64_t eval_n = setup.spec.eval_max_samples;
  eval_n = eval_n > 0 ? std::min(eval_n, test.size()) : test.size();
  if (check_acc) requests = eval_n;

  std::printf("=== bench_serve -> %s:%d (%lld connections, %lld requests) "
              "===\n\n",
              host.c_str(), port, static_cast<long long>(conns),
              static_cast<long long>(requests));
  const LoadResult lr =
      drive_load(host, port, conns, requests, test,
                 check_acc ? eval_n : std::min<std::int64_t>(64, test.size()));
  if (lr.ok != lr.requests) {
    std::fprintf(stderr, "bench_serve: only %lld/%lld requests got HTTP 200\n",
                 static_cast<long long>(lr.ok),
                 static_cast<long long>(lr.requests));
    return 1;
  }
  std::printf("%-16s %6s %8s %9s %8s %8s %8s\n", "mode", "conns", "reqs",
              "QPS", "p50ms", "p95ms", "p99ms");
  std::vector<ModeRow> rows{summarize("target", conns, lr, 0.0)};
  std::printf("%-16s %6lld %8lld %9.1f %8.3f %8.3f %8.3f\n", "target",
              static_cast<long long>(conns),
              static_cast<long long>(lr.requests), rows[0].qps, rows[0].p50_ms,
              rows[0].p95_ms, rows[0].p99_ms);
  if (check_acc) {
    // Request i carried test sample i exactly once (requests == eval_n), so
    // this is evaluate_clean's score computed through the HTTP path. The
    // %.1f format matches fp_run's "final: clean X.X%" line for textual
    // diffing.
    std::int64_t correct = 0;
    for (std::int64_t i = 0; i < requests; ++i)
      correct += lr.labels[static_cast<std::size_t>(i)] ==
                 test.labels[static_cast<std::size_t>(i)];
    std::printf("served: clean %.1f%% (%lld/%lld over the HTTP path)\n",
                100.0 * static_cast<double>(correct) /
                    static_cast<double>(requests),
                static_cast<long long>(correct),
                static_cast<long long>(requests));
  }
  export_rows(rows, &setup.spec);
  return 0;
}

}  // namespace
}  // namespace fp::bench

int main(int argc, char** argv) {
  using namespace fp::bench;
  std::string target, spec_path;
  std::int64_t conns = 8;
  std::int64_t requests = scaled(512);
  bool check_acc = false;

  // Pre-filter bench_serve's own flags; whatever is left (--help, unknown
  // args) goes through the shared banner.
  std::vector<char*> rest{argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto want_value = [&](const char* name) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "bench_serve: %s needs an argument\n", name);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--target") {
      target = want_value("--target");
    } else if (arg == "--spec") {
      spec_path = want_value("--spec");
    } else if (arg == "--connections") {
      conns = std::stoll(want_value("--connections"));
    } else if (arg == "--requests") {
      requests = std::stoll(want_value("--requests"));
    } else if (arg == "--check-acc") {
      check_acc = true;
    } else {
      rest.push_back(argv[i]);
    }
  }
  if (const int rc = parse_bench_args(
          static_cast<int>(rest.size()), rest.data(), "bench_serve",
          "serving plane: batched int8 vs unbatched fp32 sustained QPS\n"
          "  --target <host:port>  drive an external fp_serve instead\n"
          "  --spec <file.json>    spec sidecar of the served model (target "
          "mode)\n"
          "  --connections <K>     closed-loop connections (default 8)\n"
          "  --requests <N>        request budget (default scaled 512)\n"
          "  --check-acc           score served predictions against test "
          "labels");
      rc >= 0)
    return rc;

  try {
    if (target.empty()) return self_mode(conns, requests);
    const auto colon = target.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == target.size()) {
      std::fprintf(stderr, "bench_serve: --target wants host:port, got '%s'\n",
                   target.c_str());
      return 2;
    }
    if (spec_path.empty()) {
      std::fprintf(stderr,
                   "bench_serve: target mode needs --spec <sidecar.json>\n");
      return 2;
    }
    return target_mode(target.substr(0, colon),
                       std::stoi(target.substr(colon + 1)), spec_path, conns,
                       requests, check_acc);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serve: %s\n", e.what());
    return 1;
  }
}
