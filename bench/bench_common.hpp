// Shared scaffolding for the per-table / per-figure benchmark binaries.
//
// Two planes (DESIGN.md §1):
//  * Accuracy plane — real federated training of Tiny models on synthetic
//    data, driven entirely by the declarative experiment API (src/exp/):
//    `make_setup` builds an exp::Setup from an ExperimentSpec, `run_method`
//    resolves any of the paper's eight methods from the method registry and
//    trains/evaluates it, and `run_scenario` runs one spec end to end — the
//    same path the `fp_run` CLI uses.
//  * Systems plane — `simulate_training_time` replays each method's
//    per-round device work on the paper's exact VGG16/ResNet34 shapes and
//    round protocols, producing the latency/memory numbers analytically
//    (as the paper's own simulator does).
//
// Set FP_BENCH_FAST=1 to shrink every training run ~4x (CI smoke).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attack/evaluate.hpp"
#include "baselines/distillation.hpp"
#include "baselines/fedrbn.hpp"
#include "baselines/jfat.hpp"
#include "baselines/partial_training.hpp"
#include "data/synthetic.hpp"
#include "exp/runner.hpp"
#include "fed/history_io.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp::bench {

using exp::fast_mode;
using exp::scaled;

enum class Workload { kCifar, kCaltech };

inline const char* workload_key(Workload w) {
  return w == Workload::kCifar ? "cifar" : "caltech";
}

inline const char* workload_name(Workload w) {
  return w == Workload::kCifar ? "CIFAR-10 (synthetic)" : "Caltech-256 (synthetic)";
}

/// Everything an accuracy-plane run needs (see exp::Setup).
using BenchSetup = exp::Setup;
using MethodResult = exp::RunResult;

/// Builds the historical bench scenario for a workload/heterogeneity pair,
/// with optional spec overrides ("model.name=tiny_cnn", "fl.batch_size=32", ...)
/// applied before resolution.
BenchSetup make_setup(Workload w, sys::Heterogeneity het,
                      const std::vector<std::string>& overrides = {});

/// One communication-volume summary line per trained scenario.
inline void print_comm_summary(const MethodResult& r, const fed::FlConfig& fl) {
  exp::print_comm_line(r, fl);
}

/// One memory-plane summary line per trained scenario.
inline void print_mem_summary(const MethodResult& r, const BenchSetup& s) {
  exp::print_mem_line(r, s);
}

/// One measured-vs-modeled transfer line per distributed-root scenario
/// (silent for single-process results, so it is safe to call unconditionally).
inline void print_net_summary(const MethodResult& r) { exp::print_net_line(r); }

/// Process-lifetime peak resident set size in MB (getrusage; 0 if the
/// platform reports nothing). A whole-process measure, so the interesting
/// quantity for scale runs is its growth between scenarios, not its level.
double peak_rss_mb();

/// One [scale] pool-residency summary line per trained scenario: pool size,
/// distinct clients ever dispatched, edge-merged backbone savings, peak RSS.
void print_scale_summary(const MethodResult& r, const BenchSetup& s);

inline attack::RobustEvalConfig bench_eval_config(float epsilon0) {
  attack::RobustEvalConfig e;
  e.epsilon = epsilon0;
  e.pgd_steps = 10;
  e.aa_steps = 12;
  e.aa_restarts = 1;
  e.max_samples = scaled(128);
  return e;
}

/// Trains one method end to end (via the exp method registry) and evaluates
/// the three paper metrics. Names: jFAT, FedDF-AT, FedET-AT, HeteroFL-AT,
/// FedDrop-AT, FedRolex-AT, FedRBN, FedProphet.
MethodResult run_method(const std::string& name, BenchSetup& s,
                        std::int64_t rounds_other = 16,
                        std::int64_t rounds_jfat = 12,
                        std::int64_t fp_rounds_per_module = 5);

/// Builds a fresh setup from `spec` and trains its method; `label` names the
/// result and its FP_BENCH_OUT export. The scenario benches define their
/// sweeps as spec deltas and run every cell through this.
MethodResult run_scenario(exp::ExperimentSpec spec, const std::string& label);

/// Matched client-update budget for scheduler comparisons: one sync barrier
/// round trains C clients; one async round applies a single update. Sets
/// fl.rounds and the eval cadence accordingly.
void apply_matched_budget(exp::ExperimentSpec& spec, std::int64_t sync_rounds,
                          std::int64_t eval_every_sync = 3);

/// One bench_comm sweep cell as a spec: jFAT through the engine's comm
/// channel with the network model enabled and persistent fleet binding.
/// `sync_rounds < 0` uses the bench default scaled(12). The shipped config
/// configs/bench_comm_int8_sync.json is the resolved int8+sync cell.
exp::ExperimentSpec comm_scenario_spec(const std::string& codec,
                                       const std::string& scheduler,
                                       std::int64_t sync_rounds = -1);

/// Shared CLI handling for the bench binaries: prints the usage banner (with
/// the FP_BENCH_FAST / FP_BENCH_OUT / FP_NUM_THREADS notes every binary used
/// to duplicate) on --help or any unknown argument. Returns an exit code to
/// return immediately, or -1 to continue into the bench.
int parse_bench_args(int argc, char** argv, const char* name,
                     const char* description);

// ---- systems plane ----------------------------------------------------------

enum class TimingMethod {
  kJfat,
  kKnowledgeDistill,
  kPartialTraining,
  kFedRbn,
  kFedProphet,
  kFedProphetNoDma,
};

struct TimingScenario {
  Workload workload = Workload::kCifar;
  sys::Heterogeneity het = sys::Heterogeneity::kBalanced;
  std::int64_t clients_per_round = 10;  ///< paper: C = 10
  std::int64_t local_iters = 30;        ///< paper: E = 30
  int pgd_steps = 10;
  std::uint64_t seed = 9;
};

/// Total simulated training time of a method under the paper's protocol
/// (rounds: 500 jFAT, 1000 memory-efficient baselines, ~350/module
/// FedProphet). Pure cost-model computation on the paper-shape specs.
fed::TimeBreakdown simulate_training_time(TimingMethod method,
                                          const TimingScenario& sc);

}  // namespace fp::bench
