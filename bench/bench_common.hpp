// Shared scaffolding for the per-table / per-figure benchmark binaries.
//
// Two planes (DESIGN.md §1):
//  * Accuracy plane — real federated training of Tiny models on synthetic
//    data. `BenchSetup` builds the dataset/environment; `run_method` trains
//    any of the paper's eight methods and evaluates Clean/PGD/AA.
//  * Systems plane — `simulate_training_time` replays each method's
//    per-round device work on the paper's exact VGG16/ResNet34 shapes and
//    round protocols, producing the latency/memory numbers analytically
//    (as the paper's own simulator does).
//
// Set FP_BENCH_FAST=1 to shrink every training run ~4x (CI smoke).
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "attack/evaluate.hpp"
#include "fed/history_io.hpp"
#include "mem/planner.hpp"
#include "baselines/distillation.hpp"
#include "baselines/fedrbn.hpp"
#include "baselines/jfat.hpp"
#include "baselines/partial_training.hpp"
#include "data/synthetic.hpp"
#include "fedprophet/fedprophet.hpp"
#include "models/zoo.hpp"

namespace fp::bench {

inline bool fast_mode() {
  const char* v = std::getenv("FP_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

inline std::int64_t scaled(std::int64_t n) { return fast_mode() ? (n + 3) / 4 : n; }

enum class Workload { kCifar, kCaltech };

inline const char* workload_name(Workload w) {
  return w == Workload::kCifar ? "CIFAR-10 (synthetic)" : "Caltech-256 (synthetic)";
}

/// Everything an accuracy-plane run needs.
struct BenchSetup {
  Workload workload = Workload::kCifar;
  data::TrainTest data;
  fed::FlConfig fl;
  fed::FedEnv env;
  sys::ModelSpec model;        ///< trainable backbone (TinyVGG / TinyResNet)
  sys::ModelSpec small_model;  ///< "small" baseline (TinyCNN)
  std::vector<sys::ModelSpec> kd_family;
  std::int64_t full_mem = 0;   ///< full trainable-model training memory
  double device_mem_scale = 1.0;
  std::int64_t rmin = 0;       ///< 20% of full, as in the paper
};

inline BenchSetup make_setup(Workload w, sys::Heterogeneity het) {
  BenchSetup s;
  s.workload = w;
  data::SyntheticConfig dcfg =
      w == Workload::kCifar ? data::synth_cifar_config()
                            : data::synth_caltech_config();
  dcfg.train_size = scaled(w == Workload::kCifar ? 1600 : 1280);
  dcfg.test_size = 320;
  s.data = data::make_synthetic(dcfg);

  s.fl.num_clients = 10;
  s.fl.clients_per_round = 4;
  s.fl.local_iters = fast_mode() ? 2 : 4;
  s.fl.batch_size = 16;
  s.fl.pgd_steps = 3;  // PGD-3 training at bench scale (paper: PGD-10)
  s.fl.lr0 = 0.05f;
  s.fl.sgd.lr = 0.05f;
  s.fl.lr_decay = 0.99f;
  s.fl.seed = 1234 + static_cast<std::uint64_t>(w == Workload::kCaltech) * 77 +
              static_cast<std::uint64_t>(het == sys::Heterogeneity::kUnbalanced);

  const std::int64_t classes = dcfg.num_classes;
  s.model = w == Workload::kCifar ? models::tiny_vgg_spec(16, classes, 6)
                                  : models::tiny_resnet_spec(16, classes, 6);
  s.small_model = models::tiny_cnn_spec(16, classes, 6);
  s.kd_family = {models::tiny_cnn_spec(16, classes, 6),
                 w == Workload::kCifar ? models::tiny_vgg_spec(16, classes, 4)
                                       : models::tiny_resnet_spec(16, classes, 5),
                 s.model};

  s.full_mem = sys::module_train_mem_bytes(s.model, 0, s.model.atoms.size(),
                                           s.fl.batch_size, false);
  // Map the GB-scale device fleet onto the KB-scale trainable model so that
  // availability-to-model ratios match the paper's (avail / paper-model-mem).
  const sys::ModelSpec paper_spec = w == Workload::kCifar
                                        ? models::vgg16_spec(32, 10)
                                        : models::resnet34_spec(224, 256);
  const std::int64_t paper_batch = w == Workload::kCifar ? 64 : 32;
  const auto paper_mem = sys::module_train_mem_bytes(
      paper_spec, 0, paper_spec.atoms.size(), paper_batch, false);
  s.device_mem_scale =
      static_cast<double>(s.full_mem) / static_cast<double>(paper_mem);
  s.rmin = s.full_mem / 5;  // Rmin ~ 20% of full, paper §7.2

  fed::FedEnvConfig ecfg;
  ecfg.fl = s.fl;
  ecfg.with_public_set = true;
  ecfg.heterogeneity = het;
  ecfg.cifar_pool = (w == Workload::kCifar);
  s.env = fed::make_env(s.data, ecfg, paper_spec);
  return s;
}

struct MethodResult {
  std::string name;
  attack::RobustEvalResult metrics;
  fed::TimeBreakdown sim_time;
  fed::History history;  ///< accuracy/sim-time trajectory of the run
  std::int64_t bytes_up = 0;    ///< cumulative wire bytes clients uploaded
  std::int64_t bytes_down = 0;  ///< cumulative wire bytes clients downloaded
  std::int64_t peak_mem_bytes = 0;  ///< max measured client peak (0 = mem off)
  std::size_t over_budget = 0;      ///< budget violations across the run
};

/// One communication-volume summary line per trained scenario (satellite of
/// the comm subsystem): what the run pushed over the simulated wire.
inline void print_comm_summary(const MethodResult& r,
                               const fed::FlConfig& fl) {
  std::printf("    [comm] %-12s codec=%-8s up %8.2f MB  down %8.2f MB\n",
              r.name.c_str(), comm::codec_name(fl.comm.codec),
              static_cast<double>(r.bytes_up) / 1e6,
              static_cast<double>(r.bytes_down) / 1e6);
}

/// One memory-plane summary line per trained scenario (mem subsystem). The
/// printed plan is the FULL trainable backbone's training peak — a fixed
/// scale reference for the sweep, not a per-method prediction (sub-model
/// and cascade methods train less than the full backbone and measure
/// accordingly below it).
inline void print_mem_summary(const MethodResult& r, const BenchSetup& s) {
  mem::PlanRequest req;
  req.atom_begin = 0;
  req.atom_end = s.model.atoms.size();
  req.batch_size = s.fl.batch_size;
  req.resident_extra_bytes = mem::replica_resident_bytes(
      s.model, 0, s.model.atoms.size(), s.fl.batch_size, 0);
  const auto plan = mem::plan_module_memory(s.model, req);
  char measured[48];
  if (r.peak_mem_bytes > 0)
    std::snprintf(measured, sizeof(measured), "%8.2f MB",
                  static_cast<double>(r.peak_mem_bytes) / 1e6);
  else
    std::snprintf(measured, sizeof(measured), "%10s", "off");
  std::printf(
      "    [mem]  %-12s full-plan %8.2f MB  measured %s  ckpt %-3s  "
      "over-budget %zu\n",
      r.name.c_str(), static_cast<double>(plan.peak_bytes) / 1e6, measured,
      s.fl.mem.checkpointing ? "on" : "off", r.over_budget);
}

inline attack::RobustEvalConfig bench_eval_config(float epsilon0) {
  attack::RobustEvalConfig e;
  e.epsilon = epsilon0;
  e.pgd_steps = 10;
  e.aa_steps = 12;
  e.aa_restarts = 1;
  e.max_samples = scaled(128);
  return e;
}

/// Trains one method end to end and evaluates the three paper metrics.
/// Names: jFAT, FedDF-AT, FedET-AT, HeteroFL-AT, FedDrop-AT, FedRolex-AT,
/// FedRBN, FedProphet.
inline MethodResult run_method(const std::string& name, BenchSetup& s,
                               std::int64_t rounds_other = 16,
                               std::int64_t rounds_jfat = 12,
                               std::int64_t fp_rounds_per_module = 5) {
  MethodResult result;
  result.name = name;
  const auto eval_cfg = bench_eval_config(s.fl.epsilon0);

  auto eval_into = [&](models::BuiltModel& model) {
    result.metrics = attack::evaluate_robustness(model, s.env.test, eval_cfg);
  };
  auto record_comm = [&result](fed::FederatedAlgorithm& algo) {
    result.bytes_up = algo.total_stats().bytes_up;
    result.bytes_down = algo.total_stats().bytes_down;
    result.peak_mem_bytes = algo.total_stats().peak_mem_bytes;
    result.over_budget = algo.total_stats().over_budget;
  };

  if (name == "jFAT") {
    baselines::JFatConfig cfg;
    cfg.fl = s.fl;
    cfg.fl.rounds = scaled(rounds_jfat);
    cfg.model_spec = s.model;
    baselines::JFat algo(s.env, cfg);
    algo.run();
    result.sim_time = algo.sim_time();
    result.history = algo.history();
    fed::export_history_if_requested(name, algo.history());
    record_comm(algo);
    eval_into(algo.global_model());
  } else if (name == "FedDF-AT" || name == "FedET-AT") {
    baselines::DistillationConfig cfg;
    cfg.fl = s.fl;
    cfg.fl.rounds = scaled(rounds_other);
    cfg.family = s.kd_family;
    cfg.ensemble_transfer = (name == "FedET-AT");
    cfg.distill_iters = 8;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::DistillationFAT algo(s.env, cfg);
    algo.run();
    result.sim_time = algo.sim_time();
    result.history = algo.history();
    fed::export_history_if_requested(name, algo.history());
    record_comm(algo);
    eval_into(algo.global_model());
  } else if (name == "HeteroFL-AT" || name == "FedDrop-AT" ||
             name == "FedRolex-AT") {
    baselines::PartialTrainingConfig cfg;
    cfg.fl = s.fl;
    cfg.fl.rounds = scaled(rounds_other);
    cfg.model_spec = s.model;
    cfg.scheme = name == "HeteroFL-AT" ? models::SliceScheme::kStatic
                 : name == "FedDrop-AT" ? models::SliceScheme::kRandom
                                        : models::SliceScheme::kRolling;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::PartialTrainingFAT algo(s.env, cfg);
    algo.run();
    result.sim_time = algo.sim_time();
    result.history = algo.history();
    fed::export_history_if_requested(name, algo.history());
    record_comm(algo);
    eval_into(algo.global_model());
  } else if (name == "FedRBN") {
    baselines::FedRbnConfig cfg;
    cfg.fl = s.fl;
    cfg.fl.rounds = scaled(rounds_other);
    cfg.model_spec = s.model;
    cfg.device_mem_scale = s.device_mem_scale;
    baselines::FedRbn algo(s.env, cfg);
    algo.run();
    result.sim_time = algo.sim_time();
    result.history = algo.history();
    fed::export_history_if_requested(name, algo.history());
    record_comm(algo);
    // Dual-BN evaluation: clean bank for clean accuracy, adversarial bank
    // for the attacks.
    algo.use_adv_bank(false);
    result.metrics.clean_acc =
        attack::evaluate_clean(algo.global_model(), s.env.test,
                               eval_cfg.batch_size, eval_cfg.max_samples);
    algo.use_adv_bank(true);
    auto adv = attack::evaluate_robustness(algo.global_model(), s.env.test,
                                           eval_cfg);
    result.metrics.pgd_acc = adv.pgd_acc;
    result.metrics.aa_acc = adv.aa_acc;
    algo.use_adv_bank(false);
  } else if (name == "FedProphet") {
    fedprophet::FedProphetConfig cfg;
    cfg.fl = s.fl;
    cfg.model_spec = s.model;
    cfg.rmin_bytes = s.rmin;
    cfg.rounds_per_module = scaled(fp_rounds_per_module) + 1;
    cfg.eval_every = 4;
    cfg.device_mem_scale = s.device_mem_scale;
    cfg.val_samples = 96;
    fedprophet::FedProphet algo(s.env, cfg);
    algo.train();
    result.sim_time = algo.sim_time();
    result.history = algo.history();
    fed::export_history_if_requested(name, algo.history());
    record_comm(algo);
    eval_into(algo.global_model());
  } else {
    std::fprintf(stderr, "unknown method %s\n", name.c_str());
    std::abort();
  }
  print_comm_summary(result, s.fl);
  print_mem_summary(result, s);
  return result;
}

// ---- systems plane ----------------------------------------------------------

enum class TimingMethod {
  kJfat,
  kKnowledgeDistill,
  kPartialTraining,
  kFedRbn,
  kFedProphet,
  kFedProphetNoDma,
};

struct TimingScenario {
  Workload workload = Workload::kCifar;
  sys::Heterogeneity het = sys::Heterogeneity::kBalanced;
  std::int64_t clients_per_round = 10;  ///< paper: C = 10
  std::int64_t local_iters = 30;        ///< paper: E = 30
  int pgd_steps = 10;
  std::uint64_t seed = 9;
};

/// Total simulated training time of a method under the paper's protocol
/// (rounds: 500 jFAT, 1000 memory-efficient baselines, ~350/module
/// FedProphet). Pure cost-model computation on the paper-shape specs.
fed::TimeBreakdown simulate_training_time(TimingMethod method,
                                          const TimingScenario& sc);

}  // namespace fp::bench
