// Table 3 (ablation): FedProphet with/without Adaptive Perturbation
// Adjustment (APA) and Differentiated Module Assignment (DMA).
//
// Expected shape (paper): removing APA raises clean accuracy but costs
// robustness (worse utility-robustness balance); removing DMA hurts both,
// most visibly on the harder many-class workload.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(argc, argv, "bench_table3",
                                      "FedProphet APA/DMA ablation");
      rc >= 0)
    return rc;
  struct Combo {
    bool apa, dma;
  };
  const Combo combos[] = {{true, true}, {false, true}, {true, false},
                          {false, false}};
  std::printf("=== Table 3: APA / DMA ablation ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    // Balanced fleet only at bench scale; the unbalanced column follows the
    // same protocol (EXPERIMENTS.md).
    for (const auto het : {fp::sys::Heterogeneity::kBalanced}) {
      std::printf("-- %s, %s --\n", workload_name(workload),
                  het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                           : "unbalanced");
      std::printf("%5s %5s %12s %12s\n", "APA", "DMA", "Clean Acc.", "Adv. Acc.");
      for (const auto combo : combos) {
        // Each ablation cell is a spec delta: the fp.apa / fp.dma keys on an
        // otherwise-default FedProphet scenario.
        auto setup = make_setup(workload, het,
                                {combo.apa ? "fp.apa=1" : "fp.apa=0",
                                 combo.dma ? "fp.dma=1" : "fp.dma=0"});
        const auto r = run_method("FedProphet", setup);
        std::printf("%5s %5s %11.1f%% %11.1f%%\n", combo.apa ? "yes" : "no",
                    combo.dma ? "yes" : "no", 100 * r.metrics.clean_acc,
                    100 * r.metrics.pgd_acc);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
