// Table 3 (ablation): FedProphet with/without Adaptive Perturbation
// Adjustment (APA) and Differentiated Module Assignment (DMA).
//
// Expected shape (paper): removing APA raises clean accuracy but costs
// robustness (worse utility-robustness balance); removing DMA hurts both,
// most visibly on the harder many-class workload.
#include "bench_common.hpp"

int main() {
  using namespace fp::bench;
  struct Combo {
    bool apa, dma;
  };
  const Combo combos[] = {{true, true}, {false, true}, {true, false},
                          {false, false}};
  std::printf("=== Table 3: APA / DMA ablation ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    // Balanced fleet only at bench scale; the unbalanced column follows the
    // same protocol (EXPERIMENTS.md).
    for (const auto het : {fp::sys::Heterogeneity::kBalanced}) {
      std::printf("-- %s, %s --\n", workload_name(workload),
                  het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                           : "unbalanced");
      std::printf("%5s %5s %12s %12s\n", "APA", "DMA", "Clean Acc.", "Adv. Acc.");
      for (const auto combo : combos) {
        auto setup = make_setup(workload, het);
        fp::fedprophet::FedProphetConfig cfg;
        cfg.fl = setup.fl;
        cfg.model_spec = setup.model;
        cfg.rmin_bytes = setup.rmin;
        cfg.rounds_per_module = fast_mode() ? 3 : 6;
        cfg.eval_every = 4;
        cfg.device_mem_scale = setup.device_mem_scale;
        cfg.val_samples = 96;
        cfg.apa = combo.apa;
        cfg.dma = combo.dma;
        fp::fedprophet::FedProphet algo(setup.env, cfg);
        algo.train();
        const auto eval_cfg = bench_eval_config(setup.fl.epsilon0);
        const auto r = fp::attack::evaluate_robustness(algo.global_model(),
                                                       setup.env.test, eval_cfg);
        std::printf("%5s %5s %11.1f%% %11.1f%%\n", combo.apa ? "yes" : "no",
                    combo.dma ? "yes" : "no", 100 * r.clean_acc,
                    100 * r.pgd_acc);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
