// Million-client federation engine: O(sampled) round cost at pool scale.
//
// The historical benches materialize every client's shard and runtime state
// up front, so pool size N prices every round even though only C << N clients
// ever train. The scale plane (DESIGN.md §9) flips that: plan-backed pools
// synthesize a sampled client's shard on dispatch from (seed, client_id) and
// discard it after upload, edge aggregators partially reduce each wave before
// the server applies it, and a stateless availability-churn process thins the
// sampled cohort. This binary drives jFAT (plain FedAvg: adversarial off)
// over a 1M-client pool — FP_BENCH_FAST=1 shrinks it to 100k — under three
// schedules (flat, hierarchical, churned) and reports per-round wall-clock
// plus process peak RSS, which must stay O(sampled), not O(pool).
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

struct ScaleScenario {
  const char* label;
  std::vector<const char*> overrides;
};

exp::ExperimentSpec scale_spec() {
  exp::ExperimentSpec spec;
  spec.method = "jFAT";
  spec.adversarial = false;     // plain FedAvg forwards: the pool is the story
  spec.model_width = 4;
  spec.with_public_set = false;
  spec.env_lazy_clients = true;
  spec.env_shard_size = 32;
  spec.fl.num_clients = fast_mode() ? 100'000 : 1'000'000;
  spec.fl.clients_per_round = fast_mode() ? 64 : 256;
  spec.fl.rounds = fast_mode() ? 2 : 3;
  spec.fl.local_iters = 2;
  spec.eval_max_samples = 64;
  return spec;
}

}  // namespace
}  // namespace fp::bench

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(
          argc, argv, "bench_scale",
          "million-client pools: lazy shards, edge aggregation, churn");
      rc >= 0)
    return rc;

  const ScaleScenario scenarios[] = {
      {"scale-flat", {}},
      {"scale-tree", {"env.aggregators=16", "comm.model_network=true"}},
      {"scale-churn",
       {"env.churn.enabled=true", "env.churn.online_frac=0.7",
        "env.churn.drop_prob=0.1"}},
  };

  const auto base = scale_spec();
  std::printf("=== Million-client federation: O(sampled) round cost ===\n\n");
  std::printf("-- pool %lld clients, %lld sampled/round, %lld rounds, "
              "lazy shards (%lld samples each) --\n\n",
              static_cast<long long>(base.fl.num_clients),
              static_cast<long long>(base.fl.clients_per_round),
              static_cast<long long>(base.fl.rounds),
              static_cast<long long>(base.env_shard_size));
  std::printf("%-14s %10s %10s %12s %10s\n", "schedule", "Clean", "sim (s)",
              "wall/round", "dropped");

  double worst_rss = 0.0;
  for (const auto& sc : scenarios) {
    fp::exp::ExperimentSpec spec = scale_spec();
    for (const char* kv : sc.overrides) fp::exp::apply_override(spec, kv);
    const std::int64_t rounds = spec.fl.rounds;
    auto setup = fp::exp::build_setup(std::move(spec));
    const auto t0 = std::chrono::steady_clock::now();
    const auto r =
        fp::exp::run_on_setup(setup, std::string("jFAT-") + sc.label);
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count();
    std::printf("%-14s %9.1f%% %10.1f %11.2fs %10zu\n", sc.label,
                100 * r.metrics.clean_acc, r.sim_time.total(),
                wall / static_cast<double>(rounds > 0 ? rounds : 1), r.dropped);
    print_scale_summary(r, setup);
    std::fflush(stdout);
    if (peak_rss_mb() > worst_rss) worst_rss = peak_rss_mb();
  }

  // O(sampled) residency regression check (FAST/CI only: the 100k pool with
  // 64 sampled clients fits far below this even with GTest/loader overhead;
  // a materialized pool would need ~100k shards * 32 * 3*16*16 floats ~ 10 GB).
  // ThreadSanitizer's shadow memory inflates ru_maxrss ~5-10x, so the ceiling
  // only binds in plain builds.
#if defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define FP_BENCH_SCALE_SANITIZED 1
#endif
#endif
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define FP_BENCH_SCALE_SANITIZED 1
#endif
#ifndef FP_BENCH_SCALE_SANITIZED
  if (fast_mode() && worst_rss > 1024.0) {
    std::fprintf(stderr,
                 "bench_scale: peak RSS %.1f MB exceeds the 1024 MB "
                 "O(sampled) ceiling — lazy client state is leaking\n",
                 worst_rss);
    return 1;
  }
#endif
  std::printf(
      "\nlazy pools keep only the sampled cohort resident; the edge tier\n"
      "merges each wave before the backbone hop; churn thins the cohort\n"
      "from a dedicated stream so churn-off runs stay bit-identical.\n");
  return 0;
}
