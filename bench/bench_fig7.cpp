// Figure 7: total training time (computation + data access) of every method
// under the paper's round protocol, on the paper-shape workloads, for
// balanced and unbalanced device fleets. Also reports FedProphet's speedup
// over jFAT (paper: 2.4x / 1.9x / 10.8x / 7.7x).
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig7",
                                                 "total training time of every method (systems plane)");
      rc >= 0)
    return rc;
  using namespace fp::bench;
  struct MethodRow {
    const char* name;
    TimingMethod method;
  };
  const MethodRow methods[] = {
      {"jFAT", TimingMethod::kJfat},
      {"FedDF-AT", TimingMethod::kKnowledgeDistill},
      {"FedET-AT", TimingMethod::kKnowledgeDistill},
      {"HeteroFL-AT", TimingMethod::kPartialTraining},
      {"FedDrop-AT", TimingMethod::kPartialTraining},
      {"FedRolex-AT", TimingMethod::kPartialTraining},
      {"FedRBN", TimingMethod::kFedRbn},
      {"FedProphet", TimingMethod::kFedProphet},
  };

  std::printf(
      "=== Figure 7: simulated total training time (paper protocol: 500\n"
      "rounds jFAT / 1000 rounds baselines / ~350 per module FedProphet,\n"
      "C=10 clients, E=30 local iterations, PGD-10) ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    for (const auto het : {fp::sys::Heterogeneity::kBalanced,
                           fp::sys::Heterogeneity::kUnbalanced}) {
      TimingScenario sc;
      sc.workload = workload;
      sc.het = het;
      sc.seed = 11 + (het == fp::sys::Heterogeneity::kUnbalanced);
      std::printf("-- %s, %s --\n", workload_name(workload),
                  het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                           : "unbalanced");
      std::printf("%-14s %14s %14s %14s\n", "method", "compute (s)",
                  "access (s)", "total (s)");
      double jfat_total = 0;
      for (const auto& m : methods) {
        const auto t = simulate_training_time(m.method, sc);
        if (m.method == TimingMethod::kJfat) jfat_total = t.total();
        std::printf("%-14s %14.3g %14.3g %14.3g", m.name, t.compute_s,
                    t.access_s, t.total());
        if (m.method == TimingMethod::kFedProphet && jfat_total > 0)
          std::printf("   (%.1fx speedup vs jFAT)", jfat_total / t.total());
        std::printf("\n");
      }
      std::printf("\n");
    }
  }
  return 0;
}
