// Async-vs-sync time-to-accuracy on the heterogeneous device pool.
//
// The sync barrier pays the slowest sampled client every round (the paper's
// Figs. 2/7 pathology); the event-driven AsyncScheduler keeps the same number
// of clients in flight, applies each update the moment it arrives with a
// FedAsync-style staleness-decayed coefficient, and never waits on a
// straggler. This scenario binary trains jFAT under four schedules on the
// same fleet — sync, async, async + straggler cutoff, async + dropout — with
// a matched client-update budget (one sync round = C async aggregation
// events), then reports final accuracy, total simulated wall-clock, and
// time-to-accuracy. Each schedule is a declarative spec delta over the same
// base scenario (persistent client-device binding, as in the paper's setup),
// run through the shared exp:: experiment pipeline.
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

struct Scenario {
  const char* label;
  std::vector<const char*> overrides;  ///< spec deltas defining the schedule
};

/// First simulated second at which clean accuracy reached `target` (<0 = never).
double time_to_accuracy(const fed::History& h, double target) {
  for (const auto& rec : h)
    if (rec.clean_acc >= target) return rec.sim_time_s;
  return -1.0;
}

MethodResult run_async_scenario(const Scenario& sc) {
  // A fresh spec per scenario: every schedule sees the same data partition,
  // fleet binding, and degradation streams.
  exp::ExperimentSpec spec;
  spec.method = "jFAT";
  spec.persistent_devices = true;
  for (const char* kv : sc.overrides) exp::apply_override(spec, kv);
  // Matched client-update budget: one sync barrier round trains C clients;
  // one async round applies a single update.
  apply_matched_budget(spec, scaled(12));
  return run_scenario(std::move(spec), std::string("jFAT-") + sc.label);
}

}  // namespace
}  // namespace fp::bench

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(
          argc, argv, "bench_async",
          "async-vs-sync scheduling: time-to-accuracy on the device fleet");
      rc >= 0)
    return rc;
  const Scenario scenarios[] = {
      {"sync", {"fl.scheduler=sync"}},
      {"async", {"fl.scheduler=async"}},
      // The scaled-down fleet finishes a local round in ~1 s at the slowest;
      // a 0.5 s budget actually discards the slow tail.
      {"async-cutoff", {"fl.scheduler=async", "async.straggler_cutoff_s=0.5"}},
      {"async-dropout", {"fl.scheduler=async", "async.dropout_prob=0.2"}},
  };

  std::printf("=== Async vs sync scheduling: time-to-accuracy ===\n\n");
  std::printf("-- %s, balanced fleet, persistent client-device binding --\n",
              workload_name(Workload::kCifar));
  std::printf("%-14s %10s %10s %8s %8s %8s %14s\n", "schedule", "Clean",
              "PGD-10", "sim (s)", "access%", "dropped", "t@0.9*final");

  std::vector<MethodResult> results;
  for (const auto& sc : scenarios) results.push_back(run_async_scenario(sc));

  // Time-to-accuracy target: 90% of the sync run's final clean accuracy,
  // taken from its own history so target and trajectories share the same
  // evaluation subsample.
  const auto& sync_history = results.front().history;
  const double target =
      sync_history.empty() ? 1.0 : 0.9 * sync_history.back().clean_acc;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double total = r.sim_time.total();
    const double tta = time_to_accuracy(r.history, target);
    std::printf("%-14s %9.1f%% %9.1f%% %8.1f %7.1f%% %8zu ",
                scenarios[i].label, 100 * r.metrics.clean_acc,
                100 * r.metrics.pgd_acc, total,
                total > 0 ? 100 * r.sim_time.access_s / total : 0.0, r.dropped);
    if (tta >= 0)
      std::printf("%13.1fs\n", tta);
    else
      std::printf("%14s\n", "not reached");
    std::fflush(stdout);
  }
  std::printf(
      "\nasync rounds apply one staleness-weighted update each; budgets are\n"
      "matched at C updates per sync round.\n");
  return 0;
}
