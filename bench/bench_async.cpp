// Async-vs-sync time-to-accuracy on the heterogeneous device pool.
//
// The sync barrier pays the slowest sampled client every round (the paper's
// Figs. 2/7 pathology); the event-driven AsyncScheduler keeps the same number
// of clients in flight, applies each update the moment it arrives with a
// FedAsync-style staleness-decayed coefficient, and never waits on a
// straggler. This scenario binary trains jFAT under four schedules on the
// same fleet — sync, async, async + straggler cutoff, async + dropout — with
// a matched client-update budget (one sync round = C async aggregation
// events), then reports final accuracy, total simulated wall-clock, and
// time-to-accuracy. The fleet uses the persistent per-client device binding
// (client k keeps its device across rounds, as in the paper's setup).
//
// Set FP_BENCH_OUT=<dir> to export every trajectory as CSV for diffing.
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

struct Scenario {
  const char* label;
  fed::SchedulerKind scheduler;
  double straggler_cutoff_s = 0.0;
  double dropout_prob = 0.0;
};

struct ScenarioResult {
  const char* label;
  MethodResult method;
  std::size_t dropped = 0;
};

/// First simulated second at which clean accuracy reached `target` (<0 = never).
double time_to_accuracy(const fed::History& h, double target) {
  for (const auto& rec : h)
    if (rec.clean_acc >= target) return rec.sim_time_s;
  return -1.0;
}

ScenarioResult run_scenario(const Scenario& sc, Workload w) {
  // A fresh env per scenario: every schedule sees the same data partition,
  // fleet binding, and degradation streams.
  auto setup = make_setup(w, sys::Heterogeneity::kBalanced);
  fed::FedEnvConfig ecfg;
  ecfg.fl = setup.fl;
  ecfg.with_public_set = true;
  ecfg.cifar_pool = (w == Workload::kCifar);
  ecfg.persistent_devices = true;
  const sys::ModelSpec paper_spec = w == Workload::kCifar
                                        ? models::vgg16_spec(32, 10)
                                        : models::resnet34_spec(224, 256);
  setup.env = fed::make_env(setup.data, ecfg, paper_spec);

  baselines::JFatConfig cfg;
  cfg.fl = setup.fl;
  cfg.fl.scheduler = sc.scheduler;
  cfg.fl.async.straggler_cutoff_s = sc.straggler_cutoff_s;
  cfg.fl.async.dropout_prob = sc.dropout_prob;
  cfg.model_spec = setup.model;

  // Matched client-update budget: one sync barrier round trains C clients;
  // one async round applies a single update.
  const std::int64_t sync_rounds = scaled(12);
  std::int64_t eval_every = 3;
  if (sc.scheduler == fed::SchedulerKind::kAsync) {
    cfg.fl.rounds = sync_rounds * cfg.fl.clients_per_round;
    eval_every *= cfg.fl.clients_per_round;
  } else {
    cfg.fl.rounds = sync_rounds;
  }

  ScenarioResult out;
  out.label = sc.label;
  baselines::JFat algo(setup.env, cfg);
  algo.run(eval_every);
  out.dropped = algo.total_stats().dropped_stragglers +
                algo.total_stats().dropped_out;
  out.method.name = std::string("jFAT-") + sc.label;
  out.method.sim_time = algo.sim_time();
  out.method.history = algo.history();
  const auto eval_cfg = bench_eval_config(setup.fl.epsilon0);
  out.method.metrics =
      attack::evaluate_robustness(algo.global_model(), setup.env.test, eval_cfg);
  fed::export_history_if_requested(out.method.name, algo.history());
  return out;
}

}  // namespace
}  // namespace fp::bench

int main() {
  using namespace fp::bench;
  const Scenario scenarios[] = {
      {"sync", fp::fed::SchedulerKind::kSync},
      {"async", fp::fed::SchedulerKind::kAsync},
      // The scaled-down fleet finishes a local round in ~1 s at the slowest;
      // a 0.5 s budget actually discards the slow tail.
      {"async-cutoff", fp::fed::SchedulerKind::kAsync, /*cutoff=*/0.5},
      {"async-dropout", fp::fed::SchedulerKind::kAsync, 0.0, /*dropout=*/0.2},
  };

  std::printf("=== Async vs sync scheduling: time-to-accuracy ===\n\n");
  const auto w = Workload::kCifar;
  std::printf("-- %s, balanced fleet, persistent client-device binding --\n",
              workload_name(w));
  std::printf("%-14s %10s %10s %8s %8s %8s %14s\n", "schedule", "Clean",
              "PGD-10", "sim (s)", "access%", "dropped", "t@0.9*final");

  std::vector<ScenarioResult> results;
  for (const auto& sc : scenarios) results.push_back(run_scenario(sc, w));

  // Time-to-accuracy target: 90% of the sync run's final clean accuracy,
  // taken from its own history so target and trajectories share the same
  // evaluation subsample.
  const auto& sync_history = results.front().method.history;
  const double target =
      sync_history.empty() ? 1.0 : 0.9 * sync_history.back().clean_acc;
  for (const auto& r : results) {
    const double total = r.method.sim_time.total();
    const double tta = time_to_accuracy(r.method.history, target);
    std::printf("%-14s %9.1f%% %9.1f%% %8.1f %7.1f%% %8zu ", r.label,
                100 * r.method.metrics.clean_acc, 100 * r.method.metrics.pgd_acc,
                total, total > 0 ? 100 * r.method.sim_time.access_s / total : 0.0,
                r.dropped);
    if (tta >= 0)
      std::printf("%13.1fs\n", tta);
    else
      std::printf("%14s\n", "not reached");
    std::fflush(stdout);
  }
  std::printf(
      "\nasync rounds apply one staleness-weighted update each; budgets are\n"
      "matched at C updates per sync round. FP_BENCH_OUT=<dir> exports CSVs.\n");
  return 0;
}
