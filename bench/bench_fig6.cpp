// Figure 6 (and Tables 5/6): the edge-device fleet.
//  * Upper: balanced vs unbalanced real-time availability samplings
//    (memory x performance scatter, summarized here as per-device stats).
//  * Lower: peak training-memory consumption of jFAT (whole model) vs
//    FedProphet (largest module) on both workloads.
#include <cstdio>

#include "bench_common.hpp"
#include "cascade/partitioner.hpp"

namespace {
using namespace fp;

void print_pool(const char* title, const std::vector<sys::Device>& pool) {
  std::printf("-- %s --\n%-18s %10s %8s %12s\n", title, "device", "TFLOPS",
              "mem GB", "I/O GB/s");
  for (const auto& d : pool)
    std::printf("%-18s %10.1f %8.0f %12.1f\n", d.name.c_str(), d.peak_tflops,
                d.mem_gb, d.io_gbps);
  std::printf("\n");
}

void print_sampling(const char* title, const std::vector<sys::Device>& pool,
                    sys::Heterogeneity het) {
  sys::DeviceSampler sampler(pool, het, 33);
  const int n = 5000;
  std::vector<int> count(pool.size(), 0);
  double mem = 0, perf = 0;
  for (int i = 0; i < n; ++i) {
    const auto inst = sampler.sample();
    ++count[inst.pool_index];
    mem += static_cast<double>(inst.avail_mem_bytes) / (1 << 30);
    perf += inst.avail_flops / 1e12;
  }
  std::printf("%s: mean avail mem %.2f GB, mean avail perf %.2f TFLOPS\n", title,
              mem / n, perf / n);
  std::printf("  selection frequency:");
  for (std::size_t i = 0; i < pool.size(); ++i)
    std::printf(" %s %.0f%%", pool[i].name.c_str(), 100.0 * count[i] / n);
  std::printf("\n");
}

void print_memory(const char* title, const sys::ModelSpec& spec,
                  std::int64_t batch) {
  const auto full =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), batch, false);
  const auto p = cascade::partition_model(spec, full / 5, batch);
  std::int64_t peak = 0;
  for (std::size_t m = 0; m < p.num_modules(); ++m)
    peak = std::max(peak, cascade::module_mem_bytes(spec, p, m));
  std::printf("%-28s jFAT %7.0f MB | FedProphet %6.0f MB (%zu modules, -%.0f%%)\n",
              title, static_cast<double>(full) / (1 << 20),
              static_cast<double>(peak) / (1 << 20), p.num_modules(),
              100.0 * (1.0 - static_cast<double>(peak) / static_cast<double>(full)));
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig6",
                                                 "device pools and availability samplings");
      rc >= 0)
    return rc;
  std::printf("=== Tables 5/6: device pools ===\n");
  print_pool("CIFAR-10 workload (Table 5)", fp::sys::cifar_device_pool());
  print_pool("Caltech-256 workload (Table 6)", fp::sys::caltech_device_pool());

  std::printf("=== Figure 6 (upper): real-time availability samplings ===\n");
  for (const bool cifar : {true, false}) {
    const auto& pool = cifar ? fp::sys::cifar_device_pool()
                             : fp::sys::caltech_device_pool();
    std::printf("[%s]\n", cifar ? "CIFAR pool" : "Caltech pool");
    print_sampling("  balanced  ", pool, fp::sys::Heterogeneity::kBalanced);
    print_sampling("  unbalanced", pool, fp::sys::Heterogeneity::kUnbalanced);
  }

  std::printf("\n=== Figure 6 (lower): training memory consumption ===\n");
  print_memory("VGG16 on CIFAR-10 (B=64)", fp::models::vgg16_spec(32, 10), 64);
  print_memory("ResNet34 on Caltech-256 (B=32)",
               fp::models::resnet34_spec(224, 256), 32);
  return 0;
}
