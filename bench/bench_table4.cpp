// Table 4: FedProphet training time with and without Differentiated Module
// Assignment. The FLOPs constraint (Eq. 15) caps every prophet client's
// extra work at the slowest client's single-module time, so DMA's accuracy
// gains come at (approximately) no latency cost.
#include <cstdio>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_table4",
                                                 "FedProphet training time with vs without DMA");
      rc >= 0)
    return rc;
  using namespace fp::bench;
  std::printf("=== Table 4: FedProphet training time, with vs without DMA ===\n\n");
  std::printf("%-28s %-11s %14s %14s %10s\n", "setting", "DMA", "compute (s)",
              "access (s)", "total");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    for (const auto het : {fp::sys::Heterogeneity::kBalanced,
                           fp::sys::Heterogeneity::kUnbalanced}) {
      TimingScenario sc;
      sc.workload = workload;
      sc.het = het;
      sc.seed = 17 + (het == fp::sys::Heterogeneity::kUnbalanced);
      char setting[64];
      std::snprintf(setting, sizeof(setting), "%s %s",
                    workload == Workload::kCifar ? "CIFAR-10" : "Caltech-256",
                    het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                             : "unbalanced");
      const auto with_dma =
          simulate_training_time(TimingMethod::kFedProphet, sc);
      const auto without_dma =
          simulate_training_time(TimingMethod::kFedProphetNoDma, sc);
      std::printf("%-28s %-11s %14.3g %14.3g %10.3g\n", setting, "w/ DMA",
                  with_dma.compute_s, with_dma.access_s, with_dma.total());
      std::printf("%-28s %-11s %14.3g %14.3g %10.3g   (%+.1f%%)\n", setting,
                  "w/o DMA", without_dma.compute_s, without_dma.access_s,
                  without_dma.total(),
                  100.0 * (with_dma.total() / without_dma.total() - 1.0));
    }
  }
  std::printf(
      "\nShape check: the w/ DMA and w/o DMA columns should be within a few\n"
      "percent of each other (paper Table 4), because Eq. 15 bounds prophet\n"
      "work by the slowest client's single-module round time.\n");
  return 0;
}
