// Figure 10: perturbation magnitude per input dimension over communication
// rounds under Adaptive Perturbation Adjustment (balanced setting). The
// dashed stage boundaries of the paper correspond to the module transitions
// printed below.
//
// Expected shape (paper): within each module's stage the magnitude starts
// small (alpha_init = 0.3) and ratchets upward as APA trades clean accuracy
// for robustness.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig10",
                                                 "eps-per-dimension trace under APA");
      rc >= 0)
    return rc;
  using namespace fp::bench;
  std::printf("=== Figure 10: eps per dimension across rounds (APA) ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    auto setup = make_setup(workload, fp::sys::Heterogeneity::kBalanced);
    fp::fedprophet::FedProphetConfig cfg;
    cfg.fl = setup.spec.fl;
    cfg.model_spec = setup.model;
    cfg.rmin_bytes = setup.rmin;
    cfg.rounds_per_module = fast_mode() ? 4 : 8;
    cfg.eval_every = 3;
    cfg.device_mem_scale = setup.device_mem_scale;
    cfg.val_samples = 96;
    fp::fedprophet::FedProphet algo(setup.env, cfg);
    algo.train();

    std::printf("-- %s --\nround : eps/dim   (| marks module boundaries)\n",
                workload_name(workload));
    const auto& trace = algo.eps_trace();
    std::size_t stage_idx = 0;
    std::int64_t next_boundary = algo.stages().empty()
                                     ? static_cast<std::int64_t>(trace.size())
                                     : algo.stages()[0].rounds;
    for (std::size_t t = 0; t < trace.size(); ++t) {
      if (static_cast<std::int64_t>(t) == next_boundary &&
          stage_idx + 1 < algo.stages().size()) {
        std::printf("----- module %zu -> %zu -----\n", stage_idx + 1,
                    stage_idx + 2);
        ++stage_idx;
        next_boundary += algo.stages()[stage_idx].rounds;
      }
      std::printf("%5zu : %.5f\n", t, trace[t]);
    }
    std::printf("\n");
  }
  return 0;
}
