#include "bench_common.hpp"

#include "cascade/partitioner.hpp"
#include "fed/env.hpp"
#include "fedprophet/coordinator.hpp"

namespace fp::bench {

namespace {

struct WorkloadSpecs {
  sys::ModelSpec full;
  std::vector<sys::ModelSpec> kd_family;
  std::int64_t batch;
};

WorkloadSpecs paper_specs(Workload w) {
  if (w == Workload::kCifar) {
    return {models::vgg16_spec(32, 10),
            {models::cnn3_spec(32, 10), models::vgg11_spec(32, 10),
             models::vgg13_spec(32, 10), models::vgg16_spec(32, 10)},
            64};
  }
  return {models::resnet34_spec(224, 256),
          {models::cnn4_spec(224, 256), models::resnet10_spec(224, 256),
           models::resnet18_spec(224, 256), models::resnet34_spec(224, 256)},
          32};
}

}  // namespace

fed::TimeBreakdown simulate_training_time(TimingMethod method,
                                          const TimingScenario& sc) {
  const auto specs = paper_specs(sc.workload);
  const auto& pool = sc.workload == Workload::kCifar ? sys::cifar_device_pool()
                                                     : sys::caltech_device_pool();
  sys::DeviceSampler sampler(pool, sc.het, sc.seed);

  const std::int64_t full_mem = sys::module_train_mem_bytes(
      specs.full, 0, specs.full.atoms.size(), specs.batch, false);
  std::vector<std::int64_t> family_mem;
  for (const auto& m : specs.kd_family)
    family_mem.push_back(sys::module_train_mem_bytes(m, 0, m.atoms.size(),
                                                     specs.batch, false));
  const auto partition =
      cascade::partition_model(specs.full, full_mem / 5, specs.batch);
  const std::size_t num_modules = partition.num_modules();

  // Paper protocol: jFAT 500 rounds; memory-efficient baselines 1000;
  // FedProphet up to 500/module with early stop (~350 effective; Fig. 10
  // shows ~2500 rounds over 7 modules on CIFAR).
  std::int64_t rounds = 1000;
  if (method == TimingMethod::kJfat) rounds = 500;
  if (method == TimingMethod::kFedProphet ||
      method == TimingMethod::kFedProphetNoDma)
    rounds = static_cast<std::int64_t>(num_modules) * 350;

  sys::TrainCostConfig cost_cfg;
  cost_cfg.batch_size = specs.batch;
  cost_cfg.pgd_steps = sc.pgd_steps;

  fed::TimeBreakdown total;
  for (std::int64_t t = 0; t < rounds; ++t) {
    auto devices =
        sampler.sample_n(static_cast<std::size_t>(sc.clients_per_round));
    // Paper §6.1: every client reserves at least Rmin (= 20% of full-model
    // memory) for training; degradation cannot take availability below it.
    for (auto& d : devices)
      d.avail_mem_bytes = std::max(d.avail_mem_bytes, full_mem / 5);
    double perf_min = devices[0].avail_flops;
    for (const auto& d : devices) perf_min = std::min(perf_min, d.avail_flops);

    std::vector<fed::ClientWork> work;
    work.reserve(devices.size());
    for (const auto& d : devices) {
      fed::ClientWork w;
      w.pgd_steps = sc.pgd_steps;
      switch (method) {
        case TimingMethod::kJfat:
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          break;
        case TimingMethod::kKnowledgeDistill: {
          // Largest family member that fits the available memory.
          std::size_t arch = 0;
          for (std::size_t a = 0; a < family_mem.size(); ++a)
            if (family_mem[a] <= d.avail_mem_bytes) arch = a;
          const double scale = static_cast<double>(family_mem[arch]) /
                               static_cast<double>(full_mem);
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          w.mem_scale = scale;
          w.flops_scale = scale;
          break;
        }
        case TimingMethod::kPartialTraining: {
          const double ratio = std::clamp(
              static_cast<double>(d.avail_mem_bytes) /
                  static_cast<double>(full_mem),
              0.25, 1.0);
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          w.mem_scale = ratio;
          w.flops_scale = ratio * ratio;
          break;
        }
        case TimingMethod::kFedRbn:
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          // Memory-poor clients do standard training (1 fwd + 1 bwd).
          w.pgd_steps = d.avail_mem_bytes >= full_mem ? sc.pgd_steps : 0;
          break;
        case TimingMethod::kFedProphet:
        case TimingMethod::kFedProphetNoDma: {
          const auto stage = static_cast<std::size_t>(
              std::min<std::int64_t>(t / 350,
                                     static_cast<std::int64_t>(num_modules) - 1));
          const std::size_t end = fedprophet::assign_modules(
              specs.full, partition, stage, specs.batch, d.avail_mem_bytes,
              d.avail_flops, perf_min,
              method == TimingMethod::kFedProphet);
          w.atom_begin = partition.modules[stage].begin;
          w.atom_end = partition.modules[end - 1].end;
          w.with_aux = !partition.modules[end - 1].is_last;
          break;
        }
      }
      work.push_back(w);
    }
    total += fed::simulate_round_time(specs.full, devices, work, cost_cfg,
                                      sc.local_iters);
  }
  return total;
}

}  // namespace fp::bench
