#include "bench_common.hpp"

#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "cascade/partitioner.hpp"
#include "fed/env.hpp"
#include "fedprophet/coordinator.hpp"

namespace fp::bench {

BenchSetup make_setup(Workload w, sys::Heterogeneity het,
                      const std::vector<std::string>& overrides) {
  exp::ExperimentSpec spec;
  spec.workload = workload_key(w);
  spec.heterogeneity =
      het == sys::Heterogeneity::kUnbalanced ? "unbalanced" : "balanced";
  for (const auto& kv : overrides) exp::apply_override(spec, kv);
  return exp::build_setup(std::move(spec));
}

MethodResult run_method(const std::string& name, BenchSetup& s,
                        std::int64_t rounds_other, std::int64_t rounds_jfat,
                        std::int64_t fp_rounds_per_module) {
  s.spec.method = name;
  s.spec.fl.rounds = scaled(name == "jFAT" ? rounds_jfat : rounds_other);
  s.spec.fp_rounds_per_module = scaled(fp_rounds_per_module) + 1;
  MethodResult result = exp::run_on_setup(s);
  print_comm_summary(result, s.spec.fl);
  print_mem_summary(result, s);
  print_net_summary(result);
  return result;
}

MethodResult run_scenario(exp::ExperimentSpec spec, const std::string& label) {
  auto setup = exp::build_setup(std::move(spec));
  return exp::run_on_setup(setup, label);
}

void apply_matched_budget(exp::ExperimentSpec& spec, std::int64_t sync_rounds,
                          std::int64_t eval_every_sync) {
  if (spec.fl.scheduler == fed::SchedulerKind::kAsync) {
    spec.fl.rounds = sync_rounds * spec.fl.clients_per_round;
    spec.eval_every = eval_every_sync * spec.fl.clients_per_round;
  } else {
    spec.fl.rounds = sync_rounds;
    spec.eval_every = eval_every_sync;
  }
}

exp::ExperimentSpec comm_scenario_spec(const std::string& codec,
                                       const std::string& scheduler,
                                       std::int64_t sync_rounds) {
  exp::ExperimentSpec spec;
  spec.method = "jFAT";
  spec.persistent_devices = true;
  exp::set_key(spec, "comm.codec", codec);
  exp::set_key(spec, "fl.scheduler", scheduler);
  spec.fl.comm.topk_fraction = 0.1;  // ship the top 10% of coordinates
  spec.fl.comm.topk_delta = true;    // selected by |update - broadcast|
  spec.fl.comm.model_network = true;
  apply_matched_budget(spec, sync_rounds < 0 ? scaled(12) : sync_rounds);
  return spec;
}

double peak_rss_mb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / 1e6;  // bytes
#else
  return static_cast<double>(ru.ru_maxrss) / 1e3;  // kilobytes
#endif
#else
  return 0.0;
#endif
}

void print_scale_summary(const MethodResult& r, const BenchSetup& s) {
  std::printf(
      "    [scale] %-12s pool %lld  unique %lld  agg-saved %8.2f MB  "
      "peak-rss %8.1f MB\n",
      r.name.c_str(), static_cast<long long>(s.spec.fl.num_clients),
      static_cast<long long>(r.unique_participants),
      static_cast<double>(r.agg_bytes_saved) / 1e6, peak_rss_mb());
}

int parse_bench_args(int argc, char** argv, const char* name,
                     const char* description) {
  auto usage = [&](std::FILE* out) {
    std::fprintf(out,
                 "%s — %s\n\n"
                 "usage: %s [--help]\n\n"
                 "environment:\n"
                 "  FP_BENCH_FAST=1    shrink every training run ~4x (CI smoke)\n"
                 "  FP_BENCH_OUT=<dir> export per-run trajectories (CSV) and\n"
                 "                     fully-resolved specs (.spec.json);\n"
                 "                     reproduce any run with\n"
                 "                     fp_run --config <run>.spec.json\n"
                 "  FP_NUM_THREADS=<n> worker threads (default: hardware)\n\n"
                 "for arbitrary method x scheduler x codec x budget scenarios\n"
                 "use the declarative driver: fp_run --help\n",
                 name, description, name);
  };
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 || std::strcmp(argv[i], "-h") == 0) {
      usage(stdout);
      return 0;
    }
    std::fprintf(stderr, "%s: unknown argument '%s'\n\n", name, argv[i]);
    usage(stderr);
    return 2;
  }
  return -1;
}

namespace {

struct WorkloadSpecs {
  sys::ModelSpec full;
  std::vector<sys::ModelSpec> kd_family;
  std::int64_t batch;
};

WorkloadSpecs paper_specs(Workload w) {
  if (w == Workload::kCifar) {
    return {models::vgg16_spec(32, 10),
            {models::cnn3_spec(32, 10), models::vgg11_spec(32, 10),
             models::vgg13_spec(32, 10), models::vgg16_spec(32, 10)},
            64};
  }
  return {models::resnet34_spec(224, 256),
          {models::cnn4_spec(224, 256), models::resnet10_spec(224, 256),
           models::resnet18_spec(224, 256), models::resnet34_spec(224, 256)},
          32};
}

}  // namespace

fed::TimeBreakdown simulate_training_time(TimingMethod method,
                                          const TimingScenario& sc) {
  const auto specs = paper_specs(sc.workload);
  const auto& pool = sc.workload == Workload::kCifar ? sys::cifar_device_pool()
                                                     : sys::caltech_device_pool();
  sys::DeviceSampler sampler(pool, sc.het, sc.seed);

  const std::int64_t full_mem = sys::module_train_mem_bytes(
      specs.full, 0, specs.full.atoms.size(), specs.batch, false);
  std::vector<std::int64_t> family_mem;
  for (const auto& m : specs.kd_family)
    family_mem.push_back(sys::module_train_mem_bytes(m, 0, m.atoms.size(),
                                                     specs.batch, false));
  const auto partition =
      cascade::partition_model(specs.full, full_mem / 5, specs.batch);
  const std::size_t num_modules = partition.num_modules();

  // Paper protocol: jFAT 500 rounds; memory-efficient baselines 1000;
  // FedProphet up to 500/module with early stop (~350 effective; Fig. 10
  // shows ~2500 rounds over 7 modules on CIFAR).
  std::int64_t rounds = 1000;
  if (method == TimingMethod::kJfat) rounds = 500;
  if (method == TimingMethod::kFedProphet ||
      method == TimingMethod::kFedProphetNoDma)
    rounds = static_cast<std::int64_t>(num_modules) * 350;

  sys::TrainCostConfig cost_cfg;
  cost_cfg.batch_size = specs.batch;
  cost_cfg.pgd_steps = sc.pgd_steps;

  fed::TimeBreakdown total;
  for (std::int64_t t = 0; t < rounds; ++t) {
    auto devices =
        sampler.sample_n(static_cast<std::size_t>(sc.clients_per_round));
    // Paper §6.1: every client reserves at least Rmin (= 20% of full-model
    // memory) for training; degradation cannot take availability below it.
    for (auto& d : devices)
      d.avail_mem_bytes = std::max(d.avail_mem_bytes, full_mem / 5);
    double perf_min = devices[0].avail_flops;
    for (const auto& d : devices) perf_min = std::min(perf_min, d.avail_flops);

    std::vector<fed::ClientWork> work;
    work.reserve(devices.size());
    for (const auto& d : devices) {
      fed::ClientWork w;
      w.pgd_steps = sc.pgd_steps;
      switch (method) {
        case TimingMethod::kJfat:
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          break;
        case TimingMethod::kKnowledgeDistill: {
          // Largest family member that fits the available memory.
          std::size_t arch = 0;
          for (std::size_t a = 0; a < family_mem.size(); ++a)
            if (family_mem[a] <= d.avail_mem_bytes) arch = a;
          const double scale = static_cast<double>(family_mem[arch]) /
                               static_cast<double>(full_mem);
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          w.mem_scale = scale;
          w.flops_scale = scale;
          break;
        }
        case TimingMethod::kPartialTraining: {
          const double ratio = std::clamp(
              static_cast<double>(d.avail_mem_bytes) /
                  static_cast<double>(full_mem),
              0.25, 1.0);
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          w.mem_scale = ratio;
          w.flops_scale = ratio * ratio;
          break;
        }
        case TimingMethod::kFedRbn:
          w.atom_begin = 0;
          w.atom_end = specs.full.atoms.size();
          // Memory-poor clients do standard training (1 fwd + 1 bwd).
          w.pgd_steps = d.avail_mem_bytes >= full_mem ? sc.pgd_steps : 0;
          break;
        case TimingMethod::kFedProphet:
        case TimingMethod::kFedProphetNoDma: {
          const auto stage = static_cast<std::size_t>(
              std::min<std::int64_t>(t / 350,
                                     static_cast<std::int64_t>(num_modules) - 1));
          const std::size_t end = fedprophet::assign_modules(
              specs.full, partition, stage, specs.batch, d.avail_mem_bytes,
              d.avail_flops, perf_min,
              method == TimingMethod::kFedProphet);
          w.atom_begin = partition.modules[stage].begin;
          w.atom_end = partition.modules[end - 1].end;
          w.with_aux = !partition.modules[end - 1].is_last;
          break;
        }
      }
      work.push_back(w);
    }
    total += fed::simulate_round_time(specs.full, devices, work, cost_cfg,
                                      sc.local_iters);
  }
  return total;
}

}  // namespace fp::bench
