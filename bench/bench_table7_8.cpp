// Tables 7 and 8: the memory-constrained model partitions of VGG16
// (Rmin = 60 MB, B = 64) and ResNet34 (Rmin = 224 MB, B = 32), printed next
// to the paper's reference values for comparison.
#include <cstdio>

#include "bench_common.hpp"
#include "cascade/partitioner.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_table7_8",
                                                 "memory-constrained model partitions");
      rc >= 0)
    return rc;
  using namespace fp;
  std::printf("=== Table 7: VGG16 partition (Rmin = 60 MB, B = 64) ===\n");
  const auto vgg = models::vgg16_spec(32, 10);
  const auto pv = cascade::partition_model(vgg, 60ll << 20, 64);
  std::printf("%s\n", cascade::format_partition(vgg, pv).c_str());
  std::printf(
      "Paper reference: 7 modules; Mem 55.8/46.1/50.4/34.7/33.1/59.3/36.1 MB;\n"
      "MACs 2.6/4.9/6.0/2.4/2.4/1.2/0.6 G. Differences come from the\n"
      "activation-accounting convention (DESIGN.md S5); every module stays\n"
      "under Rmin and the module count is comparable.\n\n");

  std::printf("=== Table 8: ResNet34 partition (Rmin = 224 MB, B = 32) ===\n");
  const auto res = models::resnet34_spec(224, 256);
  const auto pr = cascade::partition_model(res, 224ll << 20, 32);
  std::printf("%s\n", cascade::format_partition(res, pr).c_str());
  std::printf(
      "Paper reference: 7 modules; Mem 148.6/130.2/130.2/197.9/221.6/206.5/\n"
      "204.0 MB; MACs 3.9/7.5/7.5/13.3/28.1/37.1/20.6 G.\n");

  // Summary row used by Figure 6's lower panel and the 80% headline.
  for (const auto* entry : {"VGG16", "ResNet34"}) {
    const bool is_vgg = std::string(entry) == "VGG16";
    const auto& spec = is_vgg ? vgg : res;
    const auto& part = is_vgg ? pv : pr;
    const std::int64_t batch = is_vgg ? 64 : 32;
    const auto full =
        sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), batch, false);
    std::int64_t peak = 0;
    for (std::size_t m = 0; m < part.num_modules(); ++m)
      peak = std::max(peak, cascade::module_mem_bytes(spec, part, m));
    std::printf("%s: full %.0f MB -> largest module %.0f MB (%.0f%% reduction; "
                "paper: 80%%)\n",
                entry, static_cast<double>(full) / (1 << 20),
                static_cast<double>(peak) / (1 << 20),
                100.0 * (1.0 - static_cast<double>(peak) /
                                   static_cast<double>(full)));
  }
  return 0;
}
