// Table 2 (main result): Clean / PGD / AutoAttackLite accuracy of all eight
// methods on both synthetic workloads under balanced and unbalanced
// systematic heterogeneity.
//
// Expected shape (paper): FedProphet matches or beats jFAT on robustness and
// approaches it on clean accuracy; KD baselines collapse; partial-training
// baselines sit in between; FedRBN has the best clean but weak robustness.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(argc, argv, "bench_table2",
                                      "Clean/PGD/AA accuracy of all methods");
      rc >= 0)
    return rc;
  // The full method registry, in canonical order.
  const auto methods = fp::exp::method_registry().names();
  std::printf("=== Table 2: Clean / PGD / AA accuracy (all methods) ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    for (const auto het : {fp::sys::Heterogeneity::kBalanced,
                           fp::sys::Heterogeneity::kUnbalanced}) {
      std::printf("-- %s, %s --\n", workload_name(workload),
                  het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                           : "unbalanced");
      std::printf("%-14s %11s %11s %11s\n", "method", "Clean Acc.", "PGD Acc.",
                  "AA Acc.");
      for (const auto& name : methods) {
        auto setup = make_setup(workload, het);
        const auto r = run_method(name, setup);
        std::printf("%-14s %10.1f%% %10.1f%% %10.1f%%\n", r.name.c_str(),
                    100 * r.metrics.clean_acc, 100 * r.metrics.pgd_acc,
                    100 * r.metrics.aa_acc);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
