// Memory-budget sweep: time-to-accuracy under shrinking client budgets.
//
// The paper's premise is that memory-constrained federated adversarial
// training either swaps (jFAT) or must restructure the computation. This
// scenario binary trains jFAT on the fast CIFAR scenario under enforced
// per-client budgets of {1x, 0.5x, 0.25x} the measured full-training peak,
// each in two execution modes:
//  * swap-priced  — the overrun is streamed to storage (checkpointing off):
//    aggregates are untouched, but the simulated clock pays the swap
//    traffic, so time-to-accuracy degrades as the budget shrinks;
//  * checkpointed — drop-and-recompute keeps the measured arena high-water
//    within the budget at the price of extra forward FLOPs (bit-identical
//    gradients, so accuracy per round is unchanged by construction).
// Reported per cell: final clean/PGD accuracy, measured peak bytes, budget
// violations, total simulated time, and time-to-accuracy. Every cell is a
// declarative spec delta (mem.* keys) over the same base scenario.
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

struct Cell {
  std::string label;
  bool checkpointing = false;
  MethodResult method;
  std::int64_t budget_bytes = 0;
};

double time_to_accuracy(const fed::History& h, double target) {
  for (const auto& rec : h)
    if (rec.clean_acc >= target) return rec.sim_time_s;
  return -1.0;
}

/// The budget-sweep spec: jFAT with measurement on; > 0 budget bytes enforce
/// the budget in the requested execution mode. A fresh spec/env per cell:
/// identical data partition, fleet, and RNG streams.
exp::ExperimentSpec budgeted_spec(std::int64_t budget_bytes, bool checkpointing,
                                  double mem_scale) {
  exp::ExperimentSpec spec;
  spec.method = "jFAT";
  spec.fl.rounds = scaled(12);
  spec.eval_every = 3;
  spec.fl.mem.measure = true;
  // Maps measured trainable-plane bytes onto the paper pricing plane so a
  // full-peak budget prices like the analytic baseline (0 = the setup's auto
  // trainable/paper ratio).
  spec.fl.mem.device_mem_scale = mem_scale;
  if (budget_bytes > 0) {
    spec.fl.mem.enforce_budget = true;
    spec.fl.mem.checkpointing = checkpointing;
    spec.fl.mem.budget_override_bytes = budget_bytes;
  }
  return spec;
}

}  // namespace
}  // namespace fp::bench

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(
          argc, argv, "bench_mem",
          "memory-budget sweep: jFAT under enforced client budgets");
      rc >= 0)
    return rc;
  std::printf("=== Memory-budget sweep: jFAT under enforced client budgets ===\n\n");
  const auto base = make_setup(Workload::kCifar, fp::sys::Heterogeneity::kBalanced);
  const std::int64_t full_plan =
      fp::exp::planned_full_peak(base.model, base.spec.fl.batch_size);

  // Self-calibrating reference: the unbudgeted run measures the actual
  // full-training peak; budgets are fractions of THAT, and the pricing scale
  // maps it onto the paper-shape analytic requirement.
  std::vector<Cell> cells;
  cells.push_back({"unbudgeted", false, {}, 0});
  cells.front().method = run_scenario(budgeted_spec(0, false, 0.0), "jFAT");
  const std::int64_t ref_peak = cells.front().method.peak_mem_bytes;
  const auto paper = fp::models::vgg16_spec(32, 10);
  const std::int64_t paper_mem = fp::sys::module_train_mem_bytes(
      paper, 0, paper.atoms.size(), base.spec.fl.batch_size, false);
  const double mem_scale =
      static_cast<double>(ref_peak) / static_cast<double>(paper_mem);
  std::printf(
      "full-training peak: planned %.2f MB, measured %.2f MB "
      "(trainable backbone, B=%lld)\n\n",
      static_cast<double>(full_plan) / 1e6,
      static_cast<double>(ref_peak) / 1e6,
      static_cast<long long>(base.spec.fl.batch_size));

  for (const double frac : {1.0, 0.5, 0.25}) {
    for (const bool ckpt : {false, true}) {
      Cell c;
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%4.2fx %s", frac,
                    ckpt ? "checkpointed" : "swap-priced");
      c.label = buf;
      c.checkpointing = ckpt;
      c.budget_bytes =
          static_cast<std::int64_t>(frac * static_cast<double>(ref_peak));
      cells.push_back(c);
    }
  }

  for (auto& c : cells) {
    if (c.budget_bytes == 0 && !c.checkpointing && c.label == "unbudgeted")
      continue;  // reference already ran
    c.method = run_scenario(budgeted_spec(c.budget_bytes, c.checkpointing,
                                          mem_scale),
                            "jFAT-mem-" + fp::fed::sanitize_filename(c.label));
  }

  // Time-to-accuracy target: 90% of the unbudgeted run's final clean
  // accuracy, measured on its own history.
  const auto& ref = cells.front().method.history;
  const double target = ref.empty() ? 1.0 : 0.9 * ref.back().clean_acc;

  std::printf("%-20s %8s %8s %10s %8s %9s %12s\n", "budget", "Clean", "PGD-10",
              "peak MB", "over", "sim (s)", "t@0.9*final");
  for (const auto& c : cells) {
    const double tta = time_to_accuracy(c.method.history, target);
    std::printf("%-20s %7.1f%% %7.1f%% %10.2f %8zu %9.1f ", c.label.c_str(),
                100 * c.method.metrics.clean_acc,
                100 * c.method.metrics.pgd_acc,
                static_cast<double>(c.method.peak_mem_bytes) / 1e6,
                c.method.over_budget, c.method.sim_time.total());
    if (tta >= 0)
      std::printf("%11.1fs\n", tta);
    else
      std::printf("%12s\n", "not reached");
    std::fflush(stdout);
  }
  std::printf(
      "\nswap-priced cells keep plain execution and pay the overrun as\n"
      "simulated storage traffic; checkpointed cells keep the measured peak\n"
      "within budget (bit-identical gradients, extra recompute FLOPs).\n");
  return 0;
}
