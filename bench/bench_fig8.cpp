// Figure 8 (ablation): influence of the strong-convexity hyperparameter mu
// on FedProphet's adversarial accuracy and on the measured perturbation
// magnitude d* = E[max ||Delta z_1||] of the first module's output.
//
// Expected shape (paper + Lemma 1): ||Delta z_1|| decreases monotonically as
// mu grows; adversarial accuracy is flat-to-slightly-rising for small mu and
// collapses when mu is so large that the regularizer distracts training.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig8",
                                                 "strong-convexity (mu) sweep");
      rc >= 0)
    return rc;
  using namespace fp::bench;
  const float mus[] = {1e-7f, 1e-5f, 1e-3f};
  std::printf("=== Figure 8: strong-convexity sweep ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    // Balanced fleet only at bench scale; the unbalanced column follows the
    // same protocol (EXPERIMENTS.md).
    for (const auto het : {fp::sys::Heterogeneity::kBalanced}) {
      std::printf("-- %s, %s --\n", workload_name(workload),
                  het == fp::sys::Heterogeneity::kBalanced ? "balanced"
                                                           : "unbalanced");
      std::printf("%10s %14s %20s\n", "mu", "Adv. Acc.", "pert. l2 norm d*_1");
      for (const float mu : mus) {
        auto setup = make_setup(workload, het);
        fp::fedprophet::FedProphetConfig cfg;
        cfg.fl = setup.spec.fl;
        cfg.model_spec = setup.model;
        cfg.rmin_bytes = setup.rmin;
        cfg.rounds_per_module = fast_mode() ? 3 : 6;
        cfg.eval_every = 4;
        cfg.device_mem_scale = setup.device_mem_scale;
        cfg.val_samples = 96;
        cfg.mu = mu;
        fp::fedprophet::FedProphet algo(setup.env, cfg);
        algo.train();
        const auto eval_cfg = bench_eval_config(setup.spec.fl.epsilon0);
        const double adv =
            fp::attack::evaluate_pgd(algo.global_model(), setup.env.test, eval_cfg);
        std::printf("%10.0e %13.1f%% %20.3f\n", mu, 100 * adv,
                    algo.stages().front().mean_dz);
        std::fflush(stdout);
      }
      std::printf("\n");
    }
  }
  return 0;
}
