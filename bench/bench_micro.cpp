// Micro-benchmarks (google-benchmark) for the kernels that dominate
// training time on this substrate: GEMM (blocked vs reference), conv2d
// forward/backward (batched vs per-sample), a full train step, BatchNorm,
// one PGD attack step, and partial-average aggregation.
//
// Thread count is controlled by FP_NUM_THREADS (see core/parallel.hpp), so
// the before/after numbers the ISSUE asks for are, e.g.:
//   FP_NUM_THREADS=4 ./bench_micro --benchmark_filter='Gemm.*/512'
//   FP_NUM_THREADS=1 ./bench_micro --benchmark_filter='Conv2dFwdBwd'
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "attack/attacks.hpp"
#include "fed/aggregator.hpp"
#include "models/zoo.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "tensor/compute_mode.hpp"
#include "tensor/ops.hpp"
#include "tensor/qgemm.hpp"

namespace {
using namespace fp;

/// Best-of-N wall time of one call — the manual fp32 baseline each quantized
/// benchmark reports its speedup against (same thread pool, same shapes).
template <class Fn>
double seconds_per_call(Fn&& fn, int reps = 3) {
  fn();  // warm caches and scratch
  double best = std::numeric_limits<double>::infinity();
  for (int r = 0; r < reps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

// GFLOP/s of the blocked, pool-parallel GEMM. 512 is the acceptance size.
void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

// The seed's scalar triple loop, kept as gemm_reference: the "before" bar.
void BM_GemmReference(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_reference(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                   c.data());
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(512);

// Block-quantized int8 GEMM (C = A * B^T): weights packed once, activations
// quantized on pack per call — the inference pipeline's steady state. The
// speedup_vs_fp32 counter divides by a manually timed blocked-fp32 NT GEMM
// of the same shape on the same pool.
void BM_QGemmInt8(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  const double fp32_s = seconds_per_call([&] {
    gemm(false, true, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
  });
  QuantizedMat qb;
  quantize_rows_int8(b.data(), n, n, n, qb);
  QuantizedMat qa;
  double elapsed = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    quantize_rows_int8(a.data(), n, n, n, qa);
    qgemm_nt(n, n, qa, qb, c.data(), n);
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
  state.counters["speedup_vs_fp32"] =
      fp32_s / (elapsed / static_cast<double>(state.iterations()));
  state.SetLabel(qgemm_kernel_name());
}
BENCHMARK(BM_QGemmInt8)->Arg(128)->Arg(256)->Arg(512);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

constexpr std::int64_t kConvBatch = 32;

// One batched forward+backward over the whole minibatch: one im2col buffer,
// one large GEMM per direction.
void BM_Conv2dFwdBwdBatched(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2d conv(32, 32, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({kConvBatch, 32, 16, 16}, rng);
  Tensor g;
  {
    const Tensor y = conv.forward(x, true);
    g = Tensor::randn(y.shape(), rng);
  }
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch);
}
BENCHMARK(BM_Conv2dFwdBwdBatched);

// The seed's conv path, reproduced verbatim: one im2col + one scalar
// gemm_reference per sample per direction (plus the backward im2col
// recompute). Batched/SeedPerSample is the "before/after" speedup.
void BM_Conv2dFwdBwdSeedPerSample(benchmark::State& state) {
  Rng rng(7);
  const std::int64_t ch = 32, hw = 16;
  const Tensor x = Tensor::randn({kConvBatch, ch, hw, hw}, rng);
  Tensor weight = Tensor::randn({ch, ch, 3, 3}, rng);
  Tensor grad_weight({ch, ch, 3, 3});
  Conv2dGeometry g{ch, ch, 3, 1, 1, hw, hw};
  const std::int64_t in_plane = ch * hw * hw;
  const std::int64_t out_plane = ch * g.out_h() * g.out_w();
  Tensor out({kConvBatch, ch, g.out_h(), g.out_w()});
  const Tensor go = Tensor::randn(out.shape(), rng);
  Tensor grad_in(x.shape());
  Tensor cols({g.col_rows(), g.col_cols()});
  Tensor grad_cols({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kConvBatch; ++i) {
      im2col(g, x.data() + i * in_plane, cols.data());
      gemm_reference(false, false, ch, g.col_cols(), g.col_rows(), 1.0f,
                     weight.data(), cols.data(), 0.0f,
                     out.data() + i * out_plane);
    }
    grad_weight.fill(0.0f);
    grad_in.fill(0.0f);
    for (std::int64_t i = 0; i < kConvBatch; ++i) {
      const float* goi = go.data() + i * out_plane;
      im2col(g, x.data() + i * in_plane, cols.data());
      gemm_reference(false, true, ch, g.col_rows(), g.col_cols(), 1.0f, goi,
                     cols.data(), 1.0f, grad_weight.data());
      gemm_reference(true, false, g.col_rows(), g.col_cols(), ch, 1.0f,
                     weight.data(), goi, 0.0f, grad_cols.data());
      col2im(g, grad_cols.data(), grad_in.data() + i * in_plane);
    }
    benchmark::DoNotOptimize(grad_in.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch);
}
BENCHMARK(BM_Conv2dFwdBwdSeedPerSample);

// Inference forward of a 3x3 conv under each compute mode, against the
// manually timed fp32 im2col+blocked-GEMM forward of the same layer.
// Args: {channels, spatial, mode}; mode bit 0 = winograd, bit 1 = int8.
// The channel/spatial pairs walk down a VGG-16 on CIFAR-10: 32ch@16x16
// stands in for the early blocks (where the ic >= 96 gate keeps the tile
// GEMMs in fp32), 128ch@8x8 and 256ch@4x4 are the mid/deep blocks where
// int8 tile GEMMs dominate the model's FLOPs.
void BM_ConvInferenceForward(benchmark::State& state) {
  Rng rng(9);
  const std::int64_t ch = state.range(0), hw = state.range(1);
  nn::Conv2d conv(ch, ch, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({kConvBatch, ch, hw, hw}, rng);
  const double fp32_s = seconds_per_call([&] {
    Tensor y = conv.forward(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  });
  compute::ComputeConfig cc;
  cc.winograd = (state.range(2) & 1) != 0;
  cc.precision = (state.range(2) & 2) != 0 ? compute::Precision::kInt8
                                           : compute::Precision::kFp32;
  const compute::InferenceScope scope(cc);
  {
    // Build the layer's Winograd plan / weight packs outside the timed loop:
    // the row measures the steady state (plans rebuild only when weights
    // change), not the one-time transform.
    Tensor y = conv.forward(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  double elapsed = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    Tensor y = conv.forward(x, /*train=*/false);
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch);
  state.counters["speedup_vs_fp32"] =
      fp32_s / (elapsed / static_cast<double>(state.iterations()));
  state.SetLabel(std::string(compute::precision_name(cc.precision)) +
                 (cc.winograd ? "+winograd" : ""));
}
BENCHMARK(BM_ConvInferenceForward)
    ->Args({32, 16, 1})    // fp32 + Winograd, early block
    ->Args({32, 16, 3})    // int8 + Winograd (gate keeps tile GEMMs fp32)
    ->Args({128, 8, 2})    // int8 im2col, mid block
    ->Args({128, 8, 3})    // int8 + Winograd, mid block
    ->Args({256, 4, 3});   // int8 + Winograd, deep block

// Whole-model eval forward (the frozen-prefix / evaluation hot path) in the
// int8+Winograd configuration vs the default fp32 forward, on the VGG-16 /
// CIFAR-10 model FedProphet partitions in the paper's experiments.
void BM_EvalForwardInt8Winograd(benchmark::State& state) {
  Rng rng(10);
  models::BuiltModel model(models::vgg16_spec(32, 10), rng);
  const Tensor x = Tensor::rand_uniform({8, 3, 32, 32}, rng, 0.0f, 1.0f);
  const double fp32_s = seconds_per_call([&] {
    Tensor y = model.forward(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  });
  compute::ComputeConfig cc;
  cc.precision = compute::Precision::kInt8;
  cc.winograd = true;
  const compute::InferenceScope scope(cc);
  {
    // One warm forward builds every layer's plan/packs; the timed loop is
    // the steady-state eval pass.
    Tensor y = model.forward(x, /*train=*/false);
    benchmark::DoNotOptimize(y.data());
  }
  double elapsed = 0.0;
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    Tensor y = model.forward(x, /*train=*/false);
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0).count();
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * 8);
  state.counters["speedup_vs_fp32"] =
      fp32_s / (elapsed / static_cast<double>(state.iterations()));
  state.SetLabel(qgemm_kernel_name());
}
BENCHMARK(BM_EvalForwardInt8Winograd);

// Full train step (forward + loss grad + backward) of the Tiny-VGG used by
// the accuracy plane; items/s is samples/s of local-training throughput.
void BM_TrainStep(benchmark::State& state) {
  Rng rng(8);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 4), rng);
  const std::int64_t batch = 16;
  const Tensor x = Tensor::randn({batch, 3, 16, 16}, rng);
  std::vector<std::int64_t> y(batch);
  for (std::int64_t i = 0; i < batch; ++i) y[i] = i % 10;
  for (auto _ : state) {
    model.zero_grad_range(0, model.num_atoms());
    const Tensor logits = model.forward(x, true);
    Tensor gx = model.backward_range(0, model.num_atoms(),
                                     cross_entropy_grad(logits, y));
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TrainStep);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(4);
  nn::BatchNorm2d bn(32);
  const Tensor x = Tensor::randn({16, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_PgdStep(benchmark::State& state) {
  Rng rng(5);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 4), rng);
  const Tensor x = Tensor::rand_uniform({8, 3, 16, 16}, rng, 0, 1);
  const std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  attack::PgdConfig cfg;
  cfg.steps = 1;
  auto fn = [&model](const Tensor& xx, const std::vector<std::int64_t>& yy,
                     Tensor* g) {
    const Tensor logits = model.forward(xx, false);
    const float loss = cross_entropy(logits, yy);
    if (g)
      *g = model.backward_range(0, model.num_atoms(),
                                cross_entropy_grad(logits, yy));
    return loss;
  };
  for (auto _ : state) {
    Tensor adv = attack::pgd(fn, x, y, cfg, rng);
    benchmark::DoNotOptimize(adv.data());
  }
}
BENCHMARK(BM_PgdStep);

void BM_PartialAverage(benchmark::State& state) {
  Rng rng(6);
  const auto spec = models::tiny_vgg_spec(16, 10, 8);
  models::BuiltModel global(spec, rng), trained(spec, rng);
  fed::PartialAccumulator acc(global);
  for (auto _ : state) {
    acc.reset();
    for (std::size_t a = 0; a < global.num_atoms(); ++a)
      acc.add_dense_atom(trained, a, 1.0f);
    acc.finalize_into(global);
    benchmark::DoNotOptimize(global.save_atom(0).data());
  }
}
BENCHMARK(BM_PartialAverage);

}  // namespace

// BENCHMARK_MAIN, plus the repo's FP_BENCH_OUT convention: when set, the run
// also writes a CSV of every row (fed::export_history_path-style artifact
// export; the CI smoke archives it).
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  std::string out_flag, fmt_flag;
  if (const char* out = std::getenv("FP_BENCH_OUT")) {
    out_flag = std::string("--benchmark_out=") + out;
    fmt_flag = "--benchmark_out_format=csv";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int n = static_cast<int>(args.size());
  benchmark::Initialize(&n, args.data());
  if (benchmark::ReportUnrecognizedArguments(n, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
