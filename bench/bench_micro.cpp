// Micro-benchmarks (google-benchmark) for the kernels that dominate
// training time on this substrate: GEMM (blocked vs reference), conv2d
// forward/backward (batched vs per-sample), a full train step, BatchNorm,
// one PGD attack step, and partial-average aggregation.
//
// Thread count is controlled by FP_NUM_THREADS (see core/parallel.hpp), so
// the before/after numbers the ISSUE asks for are, e.g.:
//   FP_NUM_THREADS=4 ./bench_micro --benchmark_filter='Gemm.*/512'
//   FP_NUM_THREADS=1 ./bench_micro --benchmark_filter='Conv2dFwdBwd'
#include <benchmark/benchmark.h>

#include "attack/attacks.hpp"
#include "fed/aggregator.hpp"
#include "models/zoo.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"

namespace {
using namespace fp;

// GFLOP/s of the blocked, pool-parallel GEMM. 512 is the acceptance size.
void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Gemm)->Arg(128)->Arg(256)->Arg(512);

// The seed's scalar triple loop, kept as gemm_reference: the "before" bar.
void BM_GemmReference(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm_reference(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f,
                   c.data());
    benchmark::DoNotOptimize(c.data());
  }
  const double flops = 2.0 * n * n * n;
  state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(flops));
  state.counters["GFLOP/s"] = benchmark::Counter(
      flops * 1e-9, benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_GemmReference)->Arg(128)->Arg(512);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

constexpr std::int64_t kConvBatch = 32;

// One batched forward+backward over the whole minibatch: one im2col buffer,
// one large GEMM per direction.
void BM_Conv2dFwdBwdBatched(benchmark::State& state) {
  Rng rng(7);
  nn::Conv2d conv(32, 32, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({kConvBatch, 32, 16, 16}, rng);
  Tensor g;
  {
    const Tensor y = conv.forward(x, true);
    g = Tensor::randn(y.shape(), rng);
  }
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch);
}
BENCHMARK(BM_Conv2dFwdBwdBatched);

// The seed's conv path, reproduced verbatim: one im2col + one scalar
// gemm_reference per sample per direction (plus the backward im2col
// recompute). Batched/SeedPerSample is the "before/after" speedup.
void BM_Conv2dFwdBwdSeedPerSample(benchmark::State& state) {
  Rng rng(7);
  const std::int64_t ch = 32, hw = 16;
  const Tensor x = Tensor::randn({kConvBatch, ch, hw, hw}, rng);
  Tensor weight = Tensor::randn({ch, ch, 3, 3}, rng);
  Tensor grad_weight({ch, ch, 3, 3});
  Conv2dGeometry g{ch, ch, 3, 1, 1, hw, hw};
  const std::int64_t in_plane = ch * hw * hw;
  const std::int64_t out_plane = ch * g.out_h() * g.out_w();
  Tensor out({kConvBatch, ch, g.out_h(), g.out_w()});
  const Tensor go = Tensor::randn(out.shape(), rng);
  Tensor grad_in(x.shape());
  Tensor cols({g.col_rows(), g.col_cols()});
  Tensor grad_cols({g.col_rows(), g.col_cols()});
  for (auto _ : state) {
    for (std::int64_t i = 0; i < kConvBatch; ++i) {
      im2col(g, x.data() + i * in_plane, cols.data());
      gemm_reference(false, false, ch, g.col_cols(), g.col_rows(), 1.0f,
                     weight.data(), cols.data(), 0.0f,
                     out.data() + i * out_plane);
    }
    grad_weight.fill(0.0f);
    grad_in.fill(0.0f);
    for (std::int64_t i = 0; i < kConvBatch; ++i) {
      const float* goi = go.data() + i * out_plane;
      im2col(g, x.data() + i * in_plane, cols.data());
      gemm_reference(false, true, ch, g.col_rows(), g.col_cols(), 1.0f, goi,
                     cols.data(), 1.0f, grad_weight.data());
      gemm_reference(true, false, g.col_rows(), g.col_cols(), ch, 1.0f,
                     weight.data(), goi, 0.0f, grad_cols.data());
      col2im(g, grad_cols.data(), grad_in.data() + i * in_plane);
    }
    benchmark::DoNotOptimize(grad_in.data());
  }
  state.SetItemsProcessed(state.iterations() * kConvBatch);
}
BENCHMARK(BM_Conv2dFwdBwdSeedPerSample);

// Full train step (forward + loss grad + backward) of the Tiny-VGG used by
// the accuracy plane; items/s is samples/s of local-training throughput.
void BM_TrainStep(benchmark::State& state) {
  Rng rng(8);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 4), rng);
  const std::int64_t batch = 16;
  const Tensor x = Tensor::randn({batch, 3, 16, 16}, rng);
  std::vector<std::int64_t> y(batch);
  for (std::int64_t i = 0; i < batch; ++i) y[i] = i % 10;
  for (auto _ : state) {
    model.zero_grad_range(0, model.num_atoms());
    const Tensor logits = model.forward(x, true);
    Tensor gx = model.backward_range(0, model.num_atoms(),
                                     cross_entropy_grad(logits, y));
    benchmark::DoNotOptimize(gx.data());
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_TrainStep);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(4);
  nn::BatchNorm2d bn(32);
  const Tensor x = Tensor::randn({16, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_PgdStep(benchmark::State& state) {
  Rng rng(5);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 4), rng);
  const Tensor x = Tensor::rand_uniform({8, 3, 16, 16}, rng, 0, 1);
  const std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  attack::PgdConfig cfg;
  cfg.steps = 1;
  auto fn = [&model](const Tensor& xx, const std::vector<std::int64_t>& yy,
                     Tensor* g) {
    const Tensor logits = model.forward(xx, false);
    const float loss = cross_entropy(logits, yy);
    if (g)
      *g = model.backward_range(0, model.num_atoms(),
                                cross_entropy_grad(logits, yy));
    return loss;
  };
  for (auto _ : state) {
    Tensor adv = attack::pgd(fn, x, y, cfg, rng);
    benchmark::DoNotOptimize(adv.data());
  }
}
BENCHMARK(BM_PgdStep);

void BM_PartialAverage(benchmark::State& state) {
  Rng rng(6);
  const auto spec = models::tiny_vgg_spec(16, 10, 8);
  models::BuiltModel global(spec, rng), trained(spec, rng);
  fed::PartialAccumulator acc(global);
  for (auto _ : state) {
    acc.reset();
    for (std::size_t a = 0; a < global.num_atoms(); ++a)
      acc.add_dense_atom(trained, a, 1.0f);
    acc.finalize_into(global);
    benchmark::DoNotOptimize(global.save_atom(0).data());
  }
}
BENCHMARK(BM_PartialAverage);

}  // namespace

BENCHMARK_MAIN();
