// Micro-benchmarks (google-benchmark) for the kernels that dominate
// training time on this substrate: GEMM, conv2d forward/backward,
// BatchNorm, one PGD attack step, and partial-average aggregation.
#include <benchmark/benchmark.h>

#include "attack/attacks.hpp"
#include "fed/aggregator.hpp"
#include "models/zoo.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"
#include "tensor/ops.hpp"

namespace {
using namespace fp;

void BM_Gemm(benchmark::State& state) {
  const auto n = state.range(0);
  Rng rng(1);
  const Tensor a = Tensor::randn({n, n}, rng);
  const Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(false, false, n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_Conv2dForward(benchmark::State& state) {
  Rng rng(2);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_Conv2dForward);

void BM_Conv2dBackward(benchmark::State& state) {
  Rng rng(3);
  nn::Conv2d conv(16, 16, 3, 1, 1, rng);
  const Tensor x = Tensor::randn({8, 16, 16, 16}, rng);
  const Tensor y = conv.forward(x, true);
  const Tensor g = Tensor::randn(y.shape(), rng);
  for (auto _ : state) {
    conv.zero_grad();
    Tensor gx = conv.backward(g);
    benchmark::DoNotOptimize(gx.data());
  }
}
BENCHMARK(BM_Conv2dBackward);

void BM_BatchNormForward(benchmark::State& state) {
  Rng rng(4);
  nn::BatchNorm2d bn(32);
  const Tensor x = Tensor::randn({16, 32, 8, 8}, rng);
  for (auto _ : state) {
    Tensor y = bn.forward(x, true);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_BatchNormForward);

void BM_PgdStep(benchmark::State& state) {
  Rng rng(5);
  models::BuiltModel model(models::tiny_vgg_spec(16, 10, 4), rng);
  const Tensor x = Tensor::rand_uniform({8, 3, 16, 16}, rng, 0, 1);
  const std::vector<std::int64_t> y{0, 1, 2, 3, 4, 5, 6, 7};
  attack::PgdConfig cfg;
  cfg.steps = 1;
  auto fn = [&model](const Tensor& xx, const std::vector<std::int64_t>& yy,
                     Tensor* g) {
    const Tensor logits = model.forward(xx, false);
    const float loss = cross_entropy(logits, yy);
    if (g)
      *g = model.backward_range(0, model.num_atoms(),
                                cross_entropy_grad(logits, yy));
    return loss;
  };
  for (auto _ : state) {
    Tensor adv = attack::pgd(fn, x, y, cfg, rng);
    benchmark::DoNotOptimize(adv.data());
  }
}
BENCHMARK(BM_PgdStep);

void BM_PartialAverage(benchmark::State& state) {
  Rng rng(6);
  const auto spec = models::tiny_vgg_spec(16, 10, 8);
  models::BuiltModel global(spec, rng), trained(spec, rng);
  fed::PartialAccumulator acc(global);
  for (auto _ : state) {
    acc.reset();
    for (std::size_t a = 0; a < global.num_atoms(); ++a)
      acc.add_dense_atom(trained, a, 1.0f);
    acc.finalize_into(global);
    benchmark::DoNotOptimize(global.save_atom(0).data());
  }
}
BENCHMARK(BM_PartialAverage);

}  // namespace

BENCHMARK_MAIN();
