// Figure 9 (ablation): number of modules and clean/adversarial accuracy as
// the memory budget Rmin varies from 20% of the full-model requirement to
// beyond it.
//
// Expected shape (paper): the module count falls to 1 as Rmin approaches
// Rmax while accuracy stays roughly flat — the inconsistency-reduction
// machinery makes FedProphet insensitive to how finely it is partitioned.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig9",
                                                 "Rmin sweep: module count vs accuracy");
      rc >= 0)
    return rc;
  using namespace fp::bench;
  const double fracs[] = {0.2, 0.4, 0.7, 1.05};
  std::printf("=== Figure 9: Rmin sweep (balanced) ===\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    std::printf("-- %s --\n", workload_name(workload));
    std::printf("%10s %9s %12s %12s\n", "Rmin/Rmax", "modules", "Clean Acc.",
                "Adv. Acc.");
    for (const double frac : fracs) {
      auto setup = make_setup(workload, fp::sys::Heterogeneity::kBalanced);
      fp::fedprophet::FedProphetConfig cfg;
      cfg.fl = setup.spec.fl;
      cfg.model_spec = setup.model;
      cfg.rmin_bytes =
          static_cast<std::int64_t>(frac * static_cast<double>(setup.full_mem));
      cfg.rounds_per_module = fast_mode() ? 3 : 6;
      cfg.eval_every = 4;
      cfg.device_mem_scale = setup.device_mem_scale;
      cfg.val_samples = 96;
      fp::fedprophet::FedProphet algo(setup.env, cfg);
      const auto num_modules = algo.partition().num_modules();
      algo.train();
      const auto eval_cfg = bench_eval_config(setup.spec.fl.epsilon0);
      const auto r = fp::attack::evaluate_robustness(algo.global_model(),
                                                     setup.env.test, eval_cfg);
      std::printf("%10.2f %9zu %11.1f%% %11.1f%%\n", frac, num_modules,
                  100 * r.clean_acc, 100 * r.pgd_acc);
      std::fflush(stdout);
    }
    std::printf("\n");
  }
  return 0;
}
