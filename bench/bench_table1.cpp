// Table 1 (motivation): federated adversarial training with a small model,
// a large model, and a partial-training sub-model of the large model
// ("Large-PT", FedRolex). The paper's point: FAT needs the large model for
// robustness, but naive sub-model training forfeits the gain.
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(argc, argv, "bench_table1",
                                      "FAT accuracy vs model size");
      rc >= 0)
    return rc;
  std::printf("=== Table 1: FAT accuracy vs model size (federated, PGD-AT) ===\n");
  std::printf("Paper shape: Large > Small ~ Large-PT on both metrics.\n\n");
  for (const auto workload : {Workload::kCifar, Workload::kCaltech}) {
    auto setup = make_setup(workload, fp::sys::Heterogeneity::kBalanced);
    std::printf("-- %s --\n%-16s %12s %12s\n", workload_name(workload),
                "model (mem)", "Clean Acc.", "Adv. Acc.");

    // Small model: jFAT over the TinyCNN (fits everywhere) — the same
    // scenario with the backbone overridden by spec key.
    auto small = make_setup(workload, fp::sys::Heterogeneity::kBalanced,
                            {"model.name=tiny_cnn"});
    const auto r_small = run_method("jFAT", small, 36, 36);
    const auto mem_small = fp::sys::module_train_mem_bytes(
        small.model, 0, small.model.atoms.size(), setup.spec.fl.batch_size,
        false);

    // Large model: jFAT over the full backbone (swaps on weak clients).
    const auto r_large = run_method("jFAT", setup, 36, 36);

    // Large-PT: FedRolex sub-model training of the large backbone.
    const auto r_pt = run_method("FedRolex-AT", setup, 36, 36);

    const double ratio = static_cast<double>(setup.full_mem) /
                         static_cast<double>(mem_small);
    std::printf("%-16s %11.1f%% %11.1f%%\n", "Small (1x)",
                100 * r_small.metrics.clean_acc, 100 * r_small.metrics.pgd_acc);
    char label[32];
    std::snprintf(label, sizeof(label), "Large (%.1fx)", ratio);
    std::printf("%-16s %11.1f%% %11.1f%%\n", label,
                100 * r_large.metrics.clean_acc, 100 * r_large.metrics.pgd_acc);
    std::printf("%-16s %11.1f%% %11.1f%%\n\n", "Large-PT (1x)",
                100 * r_pt.metrics.clean_acc, 100 * r_pt.metrics.pgd_acc);
  }
  return 0;
}
