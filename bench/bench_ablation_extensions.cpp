// Extension ablation (paper §8, "future work"): how the two memory
// reductions the paper names as complementary — low-bit training and
// LoRA-style low-rank adaptation — compose with FedProphet's module
// partitioning. For each combination we report the largest-module training
// memory of VGG16/ResNet34 and the module count at the paper's Rmin.
//
// The workload rows are data: each names its paper-shape backbone by model
// registry key and is instantiated through exp::model_registry().
#include <cstdio>

#include "bench_common.hpp"
#include "cascade/partitioner.hpp"
#include "nn/quantize.hpp"

namespace {
using namespace fp;

struct AblationRow {
  const char* title;
  const char* model;        ///< exp model registry key
  std::int64_t image, classes;
  std::int64_t rmin, batch;
};

void report(const AblationRow& row) {
  const exp::ModelParams params{row.image, row.classes, /*width=*/0};
  const auto spec = exp::model_registry().resolve(row.model)(params);
  std::printf("-- %s (Rmin = %.0f MB, B = %lld) --\n", row.title,
              static_cast<double>(row.rmin) / (1 << 20),
              static_cast<long long>(row.batch));
  std::printf("%-26s %10s %12s %9s\n", "configuration", "full mem",
              "largest mod", "modules");
  const auto partition = cascade::partition_model(spec, row.rmin, row.batch);
  for (const int bits : {32, 16, 8}) {
    const auto full = nn::low_bit_mem_bytes(spec, 0, spec.atoms.size(),
                                            row.batch, false, bits);
    std::int64_t peak = 0;
    for (std::size_t m = 0; m < partition.num_modules(); ++m) {
      const auto& mod = partition.modules[m];
      peak = std::max(peak, nn::low_bit_mem_bytes(spec, mod.begin, mod.end,
                                                  row.batch, !mod.is_last, bits));
    }
    // Low-bit also lets the partitioner pack more atoms per module: repartition
    // under the scaled budget for the module count column.
    // (Approximate: scale Rmin by the inverse memory ratio.)
    const auto baseline = sys::module_train_mem_bytes(spec, 0, spec.atoms.size(),
                                                      row.batch, false);
    const double ratio = static_cast<double>(full) / static_cast<double>(baseline);
    const auto repart = cascade::partition_model(
        spec,
        static_cast<std::int64_t>(static_cast<double>(row.rmin) / ratio),
        row.batch);
    char label[64];
    std::snprintf(label, sizeof(label), "FedProphet + int%d", bits);
    std::printf("%-26s %7.0f MB %9.0f MB %9zu\n",
                bits == 32 ? "FedProphet (fp32)" : label,
                static_cast<double>(full) / (1 << 20),
                static_cast<double>(peak) / (1 << 20), repart.num_modules());
  }
  std::printf(
      "(LoRA applies at parameter granularity: with rank-r adapters on the\n"
      " classifier linears, trainable state shrinks by r(in+out)/(in*out);\n"
      " see nn::LoRaLinear::trainable_params. Composition is multiplicative\n"
      " with both the per-bit reduction above and the per-module partition.)\n\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(
          argc, argv, "bench_ablation_extensions",
          "low-bit x cascade partitioning extension ablation");
      rc >= 0)
    return rc;
  std::printf("=== Extension ablation: low-bit x cascade partitioning ===\n\n");
  const AblationRow rows[] = {
      {"VGG16 on CIFAR-10", "vgg16", 32, 10, 60ll << 20, 64},
      {"ResNet34 on Caltech-256", "resnet34", 224, 256, 224ll << 20, 32},
  };
  for (const auto& row : rows) report(row);
  return 0;
}
