// Extension ablation (paper §8, "future work"): how the two memory
// reductions the paper names as complementary — low-bit training and
// LoRA-style low-rank adaptation — compose with FedProphet's module
// partitioning. For each combination we report the largest-module training
// memory of VGG16/ResNet34 and the module count at the paper's Rmin.
#include <cstdio>

#include "bench_common.hpp"
#include "cascade/partitioner.hpp"
#include "nn/quantize.hpp"

namespace {
using namespace fp;

void report(const char* title, const sys::ModelSpec& spec, std::int64_t rmin,
            std::int64_t batch) {
  std::printf("-- %s (Rmin = %.0f MB, B = %lld) --\n", title,
              static_cast<double>(rmin) / (1 << 20),
              static_cast<long long>(batch));
  std::printf("%-26s %10s %12s %9s\n", "configuration", "full mem",
              "largest mod", "modules");
  const auto partition = cascade::partition_model(spec, rmin, batch);
  for (const int bits : {32, 16, 8}) {
    const auto full =
        nn::low_bit_mem_bytes(spec, 0, spec.atoms.size(), batch, false, bits);
    std::int64_t peak = 0;
    for (std::size_t m = 0; m < partition.num_modules(); ++m) {
      const auto& mod = partition.modules[m];
      peak = std::max(peak, nn::low_bit_mem_bytes(spec, mod.begin, mod.end,
                                                  batch, !mod.is_last, bits));
    }
    // Low-bit also lets the partitioner pack more atoms per module: repartition
    // under the scaled budget for the module count column.
    // (Approximate: scale Rmin by the inverse memory ratio.)
    const auto baseline =
        sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), batch, false);
    const double ratio = static_cast<double>(full) / static_cast<double>(baseline);
    const auto repart = cascade::partition_model(
        spec, static_cast<std::int64_t>(static_cast<double>(rmin) / ratio), batch);
    char label[64];
    std::snprintf(label, sizeof(label), "FedProphet + int%d", bits);
    std::printf("%-26s %7.0f MB %9.0f MB %9zu\n",
                bits == 32 ? "FedProphet (fp32)" : label,
                static_cast<double>(full) / (1 << 20),
                static_cast<double>(peak) / (1 << 20), repart.num_modules());
  }
  std::printf(
      "(LoRA applies at parameter granularity: with rank-r adapters on the\n"
      " classifier linears, trainable state shrinks by r(in+out)/(in*out);\n"
      " see nn::LoRaLinear::trainable_params. Composition is multiplicative\n"
      " with both the per-bit reduction above and the per-module partition.)\n\n");
}

}  // namespace

int main() {
  std::printf("=== Extension ablation: low-bit x cascade partitioning ===\n\n");
  report("VGG16 on CIFAR-10", models::vgg16_spec(32, 10), 60ll << 20, 64);
  report("ResNet34 on Caltech-256", models::resnet34_spec(224, 256), 224ll << 20,
         32);
  return 0;
}
