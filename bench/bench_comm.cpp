// Compressed wire codecs x schedulers on the heterogeneous fleet.
//
// Every scenario trains the same jFAT workload through the engine's comm
// channel with the network model ENABLED, so round times include each
// client's download + upload over its degraded link and straggler cutoffs
// judge the full round-trip. Sweeps the four wire codecs under both the sync
// barrier and the async event-driven scheduler and reports the new
// accuracy-vs-bytes tradeoff axis: final accuracy, cumulative wire traffic,
// simulated wall-clock (with the comm share), and the uploaded bytes needed
// to reach a matched accuracy target (0.9x the identity-sync final clean
// accuracy — the codec pays for itself when it reaches the same target on
// fewer bytes).
//
// Set FP_BENCH_OUT=<dir> to export every trajectory (with per-round byte
// counts) as CSV for diffing.
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

struct Scenario {
  const char* label;
  comm::CodecKind codec;
  fed::SchedulerKind scheduler;
};

struct ScenarioResult {
  const char* label;
  MethodResult method;
};

/// Cumulative uploaded bytes at the first snapshot reaching `target` clean
/// accuracy (<0 = never reached).
double bytes_to_accuracy(const fed::History& h, double target) {
  for (const auto& rec : h)
    if (rec.clean_acc >= target) return static_cast<double>(rec.bytes_up);
  return -1.0;
}

ScenarioResult run_scenario(const Scenario& sc, Workload w) {
  // A fresh env per scenario: every codec/scheduler pair sees the same data
  // partition, fleet binding, and degradation streams.
  auto setup = make_setup(w, sys::Heterogeneity::kBalanced);
  fed::FedEnvConfig ecfg;
  ecfg.fl = setup.fl;
  ecfg.with_public_set = true;
  ecfg.cifar_pool = (w == Workload::kCifar);
  ecfg.persistent_devices = true;
  const sys::ModelSpec paper_spec = w == Workload::kCifar
                                        ? models::vgg16_spec(32, 10)
                                        : models::resnet34_spec(224, 256);
  setup.env = fed::make_env(setup.data, ecfg, paper_spec);

  baselines::JFatConfig cfg;
  cfg.fl = setup.fl;
  cfg.fl.scheduler = sc.scheduler;
  cfg.fl.comm.codec = sc.codec;
  cfg.fl.comm.topk_fraction = 0.1;  // ship the top 10% of coordinates
  cfg.fl.comm.topk_delta = true;    // selected by |update - broadcast|
  cfg.fl.comm.model_network = true;
  cfg.model_spec = setup.model;

  // Matched client-update budget: one sync barrier round trains C clients;
  // one async round applies a single update.
  const std::int64_t sync_rounds = scaled(12);
  std::int64_t eval_every = 3;
  if (sc.scheduler == fed::SchedulerKind::kAsync) {
    cfg.fl.rounds = sync_rounds * cfg.fl.clients_per_round;
    eval_every *= cfg.fl.clients_per_round;
  } else {
    cfg.fl.rounds = sync_rounds;
  }

  ScenarioResult out;
  out.label = sc.label;
  baselines::JFat algo(setup.env, cfg);
  algo.run(eval_every);
  out.method.name = std::string("jFAT-comm-") + sc.label;
  out.method.sim_time = algo.sim_time();
  out.method.history = algo.history();
  out.method.bytes_up = algo.total_stats().bytes_up;
  out.method.bytes_down = algo.total_stats().bytes_down;
  const auto eval_cfg = bench_eval_config(setup.fl.epsilon0);
  out.method.metrics =
      attack::evaluate_robustness(algo.global_model(), setup.env.test, eval_cfg);
  fed::export_history_if_requested(out.method.name, algo.history());
  print_comm_summary(out.method, cfg.fl);
  return out;
}

}  // namespace
}  // namespace fp::bench

int main() {
  using namespace fp::bench;
  using fp::comm::CodecKind;
  using fp::fed::SchedulerKind;
  const Scenario scenarios[] = {
      {"identity-sync", CodecKind::kIdentity, SchedulerKind::kSync},
      {"fp16-sync", CodecKind::kFp16, SchedulerKind::kSync},
      {"int8-sync", CodecKind::kInt8, SchedulerKind::kSync},
      {"topk-sync", CodecKind::kTopK, SchedulerKind::kSync},
      {"identity-async", CodecKind::kIdentity, SchedulerKind::kAsync},
      {"fp16-async", CodecKind::kFp16, SchedulerKind::kAsync},
      {"int8-async", CodecKind::kInt8, SchedulerKind::kAsync},
      {"topk-async", CodecKind::kTopK, SchedulerKind::kAsync},
  };

  std::printf("=== Wire codecs x schedulers: accuracy vs bytes ===\n\n");
  const auto w = Workload::kCifar;
  std::printf("-- %s, balanced fleet, persistent binding, network model on --\n",
              workload_name(w));

  std::vector<ScenarioResult> results;
  for (const auto& sc : scenarios) results.push_back(run_scenario(sc, w));

  // Matched accuracy target: 90% of the uncompressed sync run's final clean
  // accuracy, from its own history so target and trajectories share the same
  // evaluation subsample.
  const auto& base_history = results.front().method.history;
  const double target =
      base_history.empty() ? 1.0 : 0.9 * base_history.back().clean_acc;
  const double base_up[2] = {
      static_cast<double>(results[0].method.bytes_up),   // sync baseline
      static_cast<double>(results[4].method.bytes_up)};  // async baseline

  std::printf("\n%-16s %8s %8s %10s %8s %9s %9s %7s %14s\n", "scenario",
              "Clean", "PGD-10", "sim (s)", "comm%", "up (MB)", "down (MB)",
              "up x", "upB@target");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double total = r.method.sim_time.total();
    const double up = static_cast<double>(r.method.bytes_up);
    const double ratio = up > 0 ? base_up[i / 4] / up : 0.0;
    const double at_target = bytes_to_accuracy(r.method.history, target);
    std::printf("%-16s %7.1f%% %7.1f%% %10.1f %7.1f%% %9.2f %9.2f %6.1fx ",
                r.label, 100 * r.method.metrics.clean_acc,
                100 * r.method.metrics.pgd_acc, total,
                total > 0 ? 100 * r.method.sim_time.comm_s / total : 0.0,
                up / 1e6, static_cast<double>(r.method.bytes_down) / 1e6,
                ratio);
    if (at_target >= 0)
      std::printf("%11.2f MB\n", at_target / 1e6);
    else
      std::printf("%14s\n", "not reached");
    std::fflush(stdout);
  }
  std::printf(
      "\n'up x' is the uploaded-byte reduction vs the identity codec under\n"
      "the same scheduler; 'upB@target' is the cumulative upload needed to\n"
      "reach %.1f%% clean accuracy (0.9x the identity-sync final).\n"
      "FP_BENCH_OUT=<dir> exports trajectories with per-round byte counts.\n",
      100 * target);
  return 0;
}
