// Compressed wire codecs x schedulers on the heterogeneous fleet.
//
// Every scenario trains the same jFAT workload through the engine's comm
// channel with the network model ENABLED, so round times include each
// client's download + upload over its degraded link and straggler cutoffs
// judge the full round-trip. Sweeps the four wire codecs under both the sync
// barrier and the async event-driven scheduler and reports the
// accuracy-vs-bytes tradeoff axis: final accuracy, cumulative wire traffic,
// simulated wall-clock (with the comm share), and the uploaded bytes needed
// to reach a matched accuracy target (0.9x the identity-sync final clean
// accuracy — the codec pays for itself when it reaches the same target on
// fewer bytes).
//
// Every cell is one declarative spec (bench_common::comm_scenario_spec); the
// shipped configs/bench_comm_int8_sync.json is the resolved int8+sync cell,
// reproducible standalone via `fp_run --config`.
#include <vector>

#include "bench_common.hpp"

namespace fp::bench {
namespace {

/// Cumulative uploaded bytes at the first snapshot reaching `target` clean
/// accuracy (<0 = never reached).
double bytes_to_accuracy(const fed::History& h, double target) {
  for (const auto& rec : h)
    if (rec.clean_acc >= target) return static_cast<double>(rec.bytes_up);
  return -1.0;
}

}  // namespace
}  // namespace fp::bench

int main(int argc, char** argv) {
  using namespace fp::bench;
  if (const int rc = parse_bench_args(
          argc, argv, "bench_comm",
          "wire codecs x schedulers: accuracy vs uploaded bytes");
      rc >= 0)
    return rc;
  struct Scenario {
    const char* codec;
    const char* scheduler;
  };
  const Scenario scenarios[] = {
      {"identity", "sync"},  {"fp16", "sync"},  {"int8", "sync"},
      {"topk", "sync"},      {"identity", "async"}, {"fp16", "async"},
      {"int8", "async"},     {"topk", "async"},
  };

  std::printf("=== Wire codecs x schedulers: accuracy vs bytes ===\n\n");
  std::printf("-- %s, balanced fleet, persistent binding, network model on --\n",
              workload_name(Workload::kCifar));

  std::vector<MethodResult> results;
  std::vector<std::string> labels;
  for (const auto& sc : scenarios) {
    // A fresh spec per cell: every codec/scheduler pair sees the same data
    // partition, fleet binding, and degradation streams.
    labels.push_back(std::string(sc.codec) + "-" + sc.scheduler);
    auto spec = comm_scenario_spec(sc.codec, sc.scheduler);
    const fp::fed::FlConfig fl = spec.fl;
    auto r = run_scenario(std::move(spec), "jFAT-comm-" + labels.back());
    print_comm_summary(r, fl);
    results.push_back(std::move(r));
  }

  // Matched accuracy target: 90% of the uncompressed sync run's final clean
  // accuracy, from its own history so target and trajectories share the same
  // evaluation subsample.
  const auto& base_history = results.front().history;
  const double target =
      base_history.empty() ? 1.0 : 0.9 * base_history.back().clean_acc;
  const double base_up[2] = {
      static_cast<double>(results[0].bytes_up),   // sync baseline
      static_cast<double>(results[4].bytes_up)};  // async baseline

  std::printf("\n%-16s %8s %8s %10s %8s %9s %9s %7s %14s\n", "scenario",
              "Clean", "PGD-10", "sim (s)", "comm%", "up (MB)", "down (MB)",
              "up x", "upB@target");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    const double total = r.sim_time.total();
    const double up = static_cast<double>(r.bytes_up);
    const double ratio = up > 0 ? base_up[i / 4] / up : 0.0;
    const double at_target = bytes_to_accuracy(r.history, target);
    std::printf("%-16s %7.1f%% %7.1f%% %10.1f %7.1f%% %9.2f %9.2f %6.1fx ",
                labels[i].c_str(), 100 * r.metrics.clean_acc,
                100 * r.metrics.pgd_acc, total,
                total > 0 ? 100 * r.sim_time.comm_s / total : 0.0, up / 1e6,
                static_cast<double>(r.bytes_down) / 1e6, ratio);
    if (at_target >= 0)
      std::printf("%11.2f MB\n", at_target / 1e6);
    else
      std::printf("%14s\n", "not reached");
    std::fflush(stdout);
  }
  std::printf(
      "\n'up x' is the uploaded-byte reduction vs the identity codec under\n"
      "the same scheduler; 'upB@target' is the cumulative upload needed to\n"
      "reach %.1f%% clean accuracy (0.9x the identity-sync final).\n",
      100 * target);
  return 0;
}
