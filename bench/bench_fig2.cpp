// Figure 2: local-training overhead breakdown and normalized latency for
// one adversarial-training iteration under three memory regimes:
//   Suff. Mem     — enough memory to train the whole model (no swapping),
//   Lim. w/ Swap  — 20% of the requirement, training via memory swapping,
//   Lim. w/o Swap — 20% via a width-sliced sub-model (FedRolex-style).
// Workloads: VGG16 on CIFAR-10 (B=64) and ResNet34 on Caltech-256 (B=32).
#include <cstdio>

#include "bench_common.hpp"
#include "sysmodel/cost_model.hpp"

namespace {

using namespace fp;

void run_workload(const char* title, const sys::ModelSpec& spec,
                  std::int64_t batch, const sys::Device& device) {
  sys::TrainCostConfig cfg;
  cfg.batch_size = batch;
  cfg.pgd_steps = 10;
  const std::int64_t full =
      sys::module_train_mem_bytes(spec, 0, spec.atoms.size(), batch, false);
  const std::int64_t limited = full / 5;

  struct Row {
    const char* name;
    sys::StepTime time;
  };
  std::vector<Row> rows;

  // Sufficient memory.
  auto cost = sys::train_step_cost(spec, 0, spec.atoms.size(), false, cfg,
                                   1ll << 60);
  rows.push_back({"Suff. Mem", sys::step_time(cost, device.peak_flops(),
                                              device.io_bytes_per_s(), cfg)});
  // Limited with swapping.
  cost = sys::train_step_cost(spec, 0, spec.atoms.size(), false, cfg, limited);
  rows.push_back({"Lim. w/ Swap", sys::step_time(cost, device.peak_flops(),
                                                 device.io_bytes_per_s(), cfg)});
  // Limited without swapping: 20%-width sub-model (FedRolex).
  sys::TrainCostConfig sub = cfg;
  sub.mem_scale = 0.2;
  sub.flops_scale = 0.2 * 0.2;
  cost = sys::train_step_cost(spec, 0, spec.atoms.size(), false, sub, limited);
  rows.push_back({"Lim. w/o Swap", sys::step_time(cost, device.peak_flops(),
                                                  device.io_bytes_per_s(), sub)});

  const double base = rows[0].time.total();
  std::printf("-- %s (device: %s, full model %.0f MB, limit %.0f MB) --\n",
              title, device.name.c_str(), static_cast<double>(full) / (1 << 20),
              static_cast<double>(limited) / (1 << 20));
  std::printf("%-14s %14s %14s %12s %10s\n", "regime", "computation %",
              "data access %", "latency (s)", "norm.");
  for (const auto& row : rows) {
    const double total = row.time.total();
    std::printf("%-14s %13.1f%% %13.1f%% %12.3f %9.2fx\n", row.name,
                100.0 * row.time.compute_s / total,
                100.0 * row.time.access_s / total, total, total / base);
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (const int rc = fp::bench::parse_bench_args(argc, argv, "bench_fig2",
                                                 "overhead breakdown of one PGD training iteration");
      rc >= 0)
    return rc;
  std::printf(
      "=== Figure 2: overhead breakdown of one PGD-10 training iteration ===\n"
      "Paper shape: swapping makes data access dominate and inflates latency\n"
      "by an order of magnitude; sub-model training avoids it.\n\n");
  // TX2-class device: modest compute, slow storage — a representative
  // memory-constrained edge client.
  run_workload("VGG16 on CIFAR-10", fp::models::vgg16_spec(32, 10), 64,
               fp::sys::cifar_device_pool()[1]);
  run_workload("ResNet34 on Caltech-256", fp::models::resnet34_spec(224, 256), 32,
               fp::sys::caltech_device_pool()[8]);
  return 0;
}
