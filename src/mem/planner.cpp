#include "mem/planner.hpp"

#include <algorithm>
#include <stdexcept>

#include "mem/arena.hpp"
#include "obs/trace.hpp"

namespace fp::mem {

namespace {

constexpr std::int64_t kF = 4;  // bytes per float

/// One planner unit: a layer of a plain atom, or a whole residual block.
struct Unit {
  std::string label;
  std::size_t atom = 0;            ///< atom index in the model
  std::int64_t in_numel = 0;       ///< per-sample input elements
  std::int64_t out_numel = 0;      ///< per-sample output elements
  std::int64_t cache_fwd_bytes = 0;  ///< per-batch, born at forward
  std::int64_t cache_bwd_bytes = 0;  ///< per-batch, born at backward
  std::int64_t macs = 0;           ///< per-sample forward MACs
};

/// Cache/scratch bytes one layer's forward (+ backward) leaves resident in
/// this implementation, per batch. See the layer sources in src/nn/.
void layer_cache_bytes(const sys::LayerSpec& l, const sys::TensorShape& in,
                       std::int64_t batch, bool runtime, std::int64_t* fwd,
                       std::int64_t* bwd) {
  const sys::TensorShape out = sys::out_shape(l, in);
  *fwd = 0;
  *bwd = 0;
  if (!runtime) {
    // Idealized: only the output activation the analytic model counts (the
    // analytic convention treats ReLU as in-place, sys::atom_activation_numel).
    if (l.kind != sys::LayerKind::kReLU) *fwd = batch * out.numel() * kF;
    return;
  }
  switch (l.kind) {
    case sys::LayerKind::kConv2d: {
      const std::int64_t cols_rows = l.in_channels * l.kernel * l.kernel;
      const std::int64_t batch_cols = batch * out.h * out.w;
      *fwd = batch * in.numel() * kF               // cached_input_ copy
             + cols_rows * batch_cols * kF         // scratch_cols_ (im2col)
             + l.out_channels * batch_cols * kF;   // scratch_iocols_
      *bwd = cols_rows * batch_cols * kF;          // scratch_grad_cols_
      break;
    }
    case sys::LayerKind::kLinear:
      *fwd = batch * in.numel() * kF;  // cached_input_ copy
      break;
    case sys::LayerKind::kBatchNorm2d:
      *fwd = batch * in.numel() * kF + in.c * kF;  // xhat + inv_std
      break;
    case sys::LayerKind::kReLU:
      *fwd = batch * out.numel() * kF;  // mask
      break;
    case sys::LayerKind::kMaxPool2d:
      *fwd = batch * out.numel() * 8;  // int64 argmax routing
      break;
    case sys::LayerKind::kGlobalAvgPool:
    case sys::LayerKind::kFlatten:
      break;
  }
}

/// Expands atoms [begin, end) into planner units.
std::vector<Unit> build_units(const sys::ModelSpec& model, std::size_t begin,
                              std::size_t end, std::int64_t batch, bool runtime) {
  std::vector<Unit> units;
  sys::TensorShape s = model.shape_before(begin);
  for (std::size_t a = begin; a < end; ++a) {
    const auto& atom = model.atoms[a];
    if (!atom.residual) {
      sys::TensorShape cur = s;
      for (std::size_t li = 0; li < atom.layers.size(); ++li) {
        const auto& l = atom.layers[li];
        Unit u;
        u.label = atom.name + "/" + std::to_string(li);
        u.atom = a;
        u.in_numel = cur.numel();
        u.macs = sys::layer_forward_macs(l, cur);
        layer_cache_bytes(l, cur, batch, runtime, &u.cache_fwd_bytes,
                          &u.cache_bwd_bytes);
        cur = sys::out_shape(l, cur);
        u.out_numel = cur.numel();
        units.push_back(std::move(u));
      }
    } else {
      // A residual block is an indivisible unit: sum the internal layers'
      // caches over the main and shortcut paths plus the sum-ReLU mask.
      Unit u;
      u.label = atom.name;
      u.atom = a;
      u.in_numel = s.numel();
      u.macs = sys::atom_forward_macs(atom, s);
      const sys::TensorShape out = sys::atom_out_shape(atom, s);
      u.out_numel = out.numel();
      if (runtime) {
        sys::TensorShape cur = s;
        for (const auto& l : atom.layers) {
          std::int64_t f = 0, b = 0;
          layer_cache_bytes(l, cur, batch, true, &f, &b);
          u.cache_fwd_bytes += f;
          u.cache_bwd_bytes += b;
          cur = sys::out_shape(l, cur);
        }
        cur = s;
        for (const auto& l : atom.shortcut) {
          std::int64_t f = 0, b = 0;
          layer_cache_bytes(l, cur, batch, true, &f, &b);
          u.cache_fwd_bytes += f;
          u.cache_bwd_bytes += b;
          cur = sys::out_shape(l, cur);
        }
        u.cache_fwd_bytes += batch * out.numel() * kF;  // cached_sum_mask_
      } else {
        u.cache_fwd_bytes = batch * sys::atom_activation_numel(atom, s) * kF;
      }
      units.push_back(std::move(u));
    }
    s = sys::atom_out_shape(atom, s);
  }
  return units;
}

/// Greedy best-fit-decreasing offset assignment: place big intervals first,
/// each at the lowest offset that does not overlap any time-intersecting
/// placed interval. Returns max(offset + bytes).
std::int64_t assign_offsets(std::vector<Interval>& intervals) {
  std::vector<std::size_t> order(intervals.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (intervals[a].bytes != intervals[b].bytes)
      return intervals[a].bytes > intervals[b].bytes;
    return a < b;  // deterministic tie-break
  });
  std::int64_t peak = 0;
  std::vector<std::size_t> placed;
  std::vector<std::pair<std::int64_t, std::int64_t>> busy;  // offset ranges
  for (const std::size_t i : order) {
    auto& iv = intervals[i];
    busy.clear();
    for (const std::size_t j : placed) {
      const auto& other = intervals[j];
      const bool time_overlap =
          iv.first_use <= other.last_use && other.first_use <= iv.last_use;
      if (time_overlap) busy.emplace_back(other.offset, other.offset + other.bytes);
    }
    std::sort(busy.begin(), busy.end());
    std::int64_t cursor = 0;
    for (const auto& [lo, hi] : busy) {
      if (lo - cursor >= iv.bytes) break;  // gap fits
      cursor = std::max(cursor, hi);
    }
    iv.offset = cursor;
    peak = std::max(peak, cursor + iv.bytes);
    placed.push_back(i);
  }
  return peak;
}

std::int64_t liveness_peak(const std::vector<Interval>& intervals, int steps) {
  std::int64_t peak = 0;
  for (int t = 0; t < steps; ++t) {
    std::int64_t live = 0;
    for (const auto& iv : intervals)
      if (iv.first_use <= t && t <= iv.last_use) live += iv.bytes;
    peak = std::max(peak, live);
  }
  return peak;
}

/// Per-atom unit index ranges of the checkpoint segments.
std::vector<std::pair<std::size_t, std::size_t>> segment_unit_ranges(
    const std::vector<Unit>& units, std::size_t atom_begin,
    const std::vector<std::size_t>& starts) {
  std::vector<std::pair<std::size_t, std::size_t>> segs;
  if (starts.empty()) {
    segs.emplace_back(0, units.size());
    return segs;
  }
  if (starts.front() != atom_begin)
    throw std::invalid_argument("planner: first checkpoint start != atom_begin");
  for (std::size_t s = 0; s < starts.size(); ++s) {
    const std::size_t atom_lo = starts[s];
    const std::size_t atom_hi =
        s + 1 < starts.size() ? starts[s + 1] : static_cast<std::size_t>(-1);
    std::size_t lo = units.size(), hi = 0;
    for (std::size_t u = 0; u < units.size(); ++u)
      if (units[u].atom >= atom_lo && units[u].atom < atom_hi) {
        lo = std::min(lo, u);
        hi = std::max(hi, u + 1);
      }
    if (lo >= hi) throw std::invalid_argument("planner: empty checkpoint segment");
    segs.emplace_back(lo, hi);
  }
  return segs;
}

}  // namespace

MemPlan plan_module_memory(const sys::ModelSpec& model, const PlanRequest& req) {
  FP_TRACE_SCOPE_ARG("plan_module_memory", "mem", "atoms",
                     static_cast<std::int64_t>(req.atom_end - req.atom_begin));
  if (req.atom_begin >= req.atom_end || req.atom_end > model.atoms.size())
    throw std::invalid_argument("plan_module_memory: bad atom range");
  const bool runtime = req.include_runtime_scratch;
  const std::int64_t B = req.batch_size;
  const auto units =
      build_units(model, req.atom_begin, req.atom_end, B, runtime);
  const auto segs = segment_unit_ranges(units, req.atom_begin,
                                        req.checkpoint_starts);
  const bool ckpt = segs.size() > 1;
  const std::size_t U = units.size();
  const std::size_t k = segs.size();

  // Timeline: forward steps 0..U-1, aux-head/loss step U, then per segment
  // (last first): recompute steps (non-final segments only) followed by
  // backward steps in reverse unit order.
  std::vector<int> bwd_step(U, -1), rec_step(U, -1);
  std::vector<int> seg_of(U, 0), seg_fwd_end(k, 0), seg_bwd_end(k, 0),
      seg_rec_end(k, -1);
  int pos = static_cast<int>(U) + 1;
  for (std::size_t s = 0; s < k; ++s) {
    for (std::size_t u = segs[s].first; u < segs[s].second; ++u)
      seg_of[u] = static_cast<int>(s);
    seg_fwd_end[s] = static_cast<int>(segs[s].second) - 1;
  }
  for (std::size_t si = k; si-- > 0;) {
    if (ckpt && si != k - 1) {
      for (std::size_t u = segs[si].first; u < segs[si].second; ++u)
        rec_step[u] = pos++;
      seg_rec_end[si] = pos - 1;
    }
    for (std::size_t u = segs[si].second; u-- > segs[si].first;)
      bwd_step[u] = pos++;
    seg_bwd_end[si] = pos - 1;
  }
  const int T = pos;

  MemPlan plan;
  plan.timeline_steps = T;

  // Parameter state of the trained range: weights + gradients + momentum,
  // matching the analytic 3x convention, plus caller-known extras.
  std::int64_t params = 0;
  for (std::size_t a = req.atom_begin; a < req.atom_end; ++a)
    params += sys::atom_param_count(model.atoms[a]);
  if (req.with_aux_head) {
    const sys::TensorShape out = model.shape_before(req.atom_end);
    params += out.c * model.num_classes + model.num_classes;
  }
  plan.resident_bytes = 3 * params * kF + req.resident_extra_bytes;
  plan.intervals.push_back({"param_state", plan.resident_bytes, 0, T - 1, -1});

  const std::int64_t in_bytes = B * units.front().in_numel * kF;
  if (runtime) {
    // Module input (z_train, held by the trainer for the whole step) plus the
    // PGD working set: delta, x_adv, ascent grad, and the pre-attack copy —
    // absent for standard-training clients.
    plan.intervals.push_back({"module_input", in_bytes, 0, T - 1, -1});
    if (req.adversarial)
      plan.intervals.push_back({"pgd_workset", 4 * in_bytes, 0, T - 1, -1});
  } else {
    plan.intervals.push_back({"module_input", in_bytes, 0, bwd_step[0], -1});
  }

  for (std::size_t u = 0; u < U; ++u) {
    const auto& unit = units[u];
    const int s = seg_of[u];
    const bool final_seg = s == static_cast<int>(k) - 1;
    if (unit.cache_fwd_bytes > 0) {
      // Born at forward; in plain runtime execution layer caches stay
      // resident until the pass ends (they are only overwritten by the next
      // forward); checkpointing drops them at the segment boundary and
      // recomputes them for the segment's backward.
      int die;
      if (!ckpt) {
        die = runtime ? T - 1 : bwd_step[u];
      } else {
        die = final_seg ? seg_bwd_end[s] : seg_fwd_end[s];
      }
      plan.intervals.push_back(
          {unit.label + ":cache", unit.cache_fwd_bytes,
           static_cast<int>(u), die, -1});
      if (ckpt && !final_seg)
        plan.intervals.push_back({unit.label + ":cache'", unit.cache_fwd_bytes,
                                  rec_step[u], seg_bwd_end[s], -1});
    }
    if (runtime && unit.cache_bwd_bytes > 0)
      plan.intervals.push_back({unit.label + ":bwd_scratch",
                                unit.cache_bwd_bytes, bwd_step[u],
                                ckpt ? seg_bwd_end[s] : T - 1, -1});
    if (runtime) {
      // Flowing activation: consumed by the next unit's forward (or the
      // aux/loss step), and again during recompute.
      plan.intervals.push_back({unit.label + ":out", B * unit.out_numel * kF,
                                static_cast<int>(u), static_cast<int>(u) + 1,
                                -1});
      if (ckpt && rec_step[u] >= 0)
        plan.intervals.push_back({unit.label + ":out'", B * unit.out_numel * kF,
                                  rec_step[u], rec_step[u] + 1, -1});
      // Gradient flowing into this unit's backward (its output gradient).
      const int born = u + 1 < U ? bwd_step[u + 1] : static_cast<int>(U);
      plan.intervals.push_back({unit.label + ":grad", B * unit.out_numel * kF,
                                born, bwd_step[u], -1});
    }
  }

  // Stored segment-boundary inputs: every recomputed segment keeps a copy of
  // its input from the forward pass until its recompute consumes it.
  if (ckpt) {
    for (std::size_t s = 0; s + 1 < k; ++s) {
      const std::size_t first = segs[s].first;
      const int born = first == 0 ? 0 : static_cast<int>(first) - 1;
      plan.intervals.push_back({"seg" + std::to_string(s) + ":input",
                                B * units[first].in_numel * kF, born,
                                seg_rec_end[s], -1});
    }
  }

  if (req.with_aux_head && runtime) {
    // GAP output + flatten + linear input copy + logits + CE probabilities.
    const sys::TensorShape out = model.shape_before(req.atom_end);
    const std::int64_t aux = B * (2 * out.c + 2 * model.num_classes) * kF;
    plan.intervals.push_back(
        {"aux_head", aux, static_cast<int>(U), bwd_step[U - 1], -1});
  }

  plan.peak_bytes = assign_offsets(plan.intervals);
  plan.liveness_peak_bytes = liveness_peak(plan.intervals, T);

  if (ckpt) {
    std::int64_t total_macs = 0, recomputed_macs = 0;
    for (std::size_t u = 0; u < U; ++u) {
      total_macs += units[u].macs;
      if (rec_step[u] >= 0) recomputed_macs += units[u].macs;
    }
    if (total_macs > 0)
      plan.recompute_fwd_frac =
          static_cast<double>(recomputed_macs) / static_cast<double>(total_macs);
  }
  return plan;
}

std::int64_t resident_cache_bytes(const sys::ModelSpec& model, std::size_t begin,
                                  std::size_t end, std::int64_t batch) {
  if (begin >= end) return 0;
  std::int64_t bytes = 0;
  for (const auto& u : build_units(model, begin, end, batch, /*runtime=*/true))
    bytes += u.cache_fwd_bytes;
  return bytes;
}

std::int64_t replica_resident_bytes(const sys::ModelSpec& model,
                                    std::size_t atom_begin, std::size_t atom_end,
                                    std::int64_t batch,
                                    std::int64_t aux_params_loaded) {
  std::int64_t total_params = 0, range_params = 0;
  for (std::size_t a = 0; a < model.atoms.size(); ++a) {
    const std::int64_t p = sys::atom_param_count(model.atoms[a]);
    total_params += p;
    if (a >= atom_begin && a < atom_end) range_params += p;
  }
  // Weights + gradients of the untrained remainder and of loaded aux heads
  // (the trained range's 3x state is the planner's param_state interval).
  std::int64_t bytes = 2 * (total_params - range_params) * kF +
                       2 * aux_params_loaded * kF;
  bytes += batch * model.input.numel() * kF;  // raw input batch
  // Frozen-prefix forward allowance: runs cache-free, so only a couple of
  // flowing activations are ever live.
  std::int64_t max_act = model.input.numel();
  sys::TensorShape s = model.input;
  for (std::size_t a = 0; a < atom_begin; ++a) {
    s = sys::atom_out_shape(model.atoms[a], s);
    max_act = std::max(max_act, s.numel());
  }
  if (atom_begin > 0) bytes += 2 * batch * max_act * kF;
  return bytes;
}

std::vector<std::size_t> choose_checkpoint_starts(const sys::ModelSpec& model,
                                                  const PlanRequest& req,
                                                  std::int64_t budget_bytes) {
  const std::size_t natoms = req.atom_end - req.atom_begin;
  if (natoms < 2) return {};
  PlanRequest probe = req;
  probe.checkpoint_starts.clear();
  if (plan_module_memory(model, probe).peak_bytes <= budget_bytes) return {};

  // Per-atom forward-cache weight, for balanced contiguous grouping.
  std::vector<std::int64_t> atom_cache(natoms, 0);
  for (const auto& u : build_units(model, req.atom_begin, req.atom_end,
                                   req.batch_size, req.include_runtime_scratch))
    atom_cache[u.atom - req.atom_begin] += u.cache_fwd_bytes;
  std::int64_t total = 0;
  for (const auto c : atom_cache) total += c;

  std::vector<std::size_t> best;
  std::int64_t best_peak = -1;
  for (std::size_t k = 2; k <= natoms; ++k) {
    std::vector<std::size_t> starts;
    if (k == natoms) {
      // Finest segmentation: one atom per segment (the greedy cut below can
      // merge small-cache atoms and never reach it).
      for (std::size_t a = 0; a < natoms; ++a)
        starts.push_back(req.atom_begin + a);
    } else {
      // Greedy: cut whenever the running cache weight passes total/k.
      starts.push_back(req.atom_begin);
      std::int64_t acc = 0;
      const std::int64_t target = (total + static_cast<std::int64_t>(k) - 1) /
                                  static_cast<std::int64_t>(k);
      for (std::size_t a = 0; a < natoms; ++a) {
        if (acc >= target && starts.size() < k && a > 0 &&
            starts.back() != req.atom_begin + a) {
          starts.push_back(req.atom_begin + a);
          acc = 0;
        }
        acc += atom_cache[a];
      }
    }
    if (starts.size() < 2) continue;
    probe.checkpoint_starts = starts;
    const auto plan = plan_module_memory(model, probe);
    if (plan.peak_bytes <= budget_bytes) return starts;
    if (best_peak < 0 || plan.peak_bytes < best_peak) {
      best_peak = plan.peak_bytes;
      best = starts;
    }
  }
  return best;  // nothing fits: lowest-peak segmentation, best effort
}

ClientExecution plan_client_execution(const sys::ModelSpec& model,
                                      const PlanRequest& req) {
  ClientExecution exec;
  if (!scope_active()) return exec;
  PlanRequest plain = req;
  plain.checkpoint_starts.clear();
  const auto plan = plan_module_memory(model, plain);
  exec.planned_peak_bytes = plan.peak_bytes;
  exec.planned_exec_peak_bytes = plan.peak_bytes;

  const Budget* budget = current_budget();
  if (!budget || !checkpointing_enabled() ||
      plan.peak_bytes <= budget->avail_mem_bytes)
    return exec;
  exec.checkpoint_starts =
      choose_checkpoint_starts(model, plain, budget->avail_mem_bytes);
  if (exec.checkpoint_starts.empty()) return exec;  // single atom: no cut
  PlanRequest ck = plain;
  ck.checkpoint_starts = exec.checkpoint_starts;
  const auto ck_plan = plan_module_memory(model, ck);
  exec.planned_exec_peak_bytes = ck_plan.peak_bytes;
  exec.recompute_fwd_frac = ck_plan.recompute_fwd_frac;
  return exec;
}

}  // namespace fp::mem
