// Memory-plane configuration shared by the federated engine and the task
// factories (DESIGN.md §6).
//
// A Budget is what one dispatched client trains under: the bytes its device
// makes available this round (already mapped onto the trainable model's
// scale). MemConfig is the experiment-level knob set carried by FlConfig —
// everything defaults off so historical outputs stay bit-identical.
#pragma once

#include <cstdint>

namespace fp::mem {

/// Per-client training budget. 0 = unlimited (measure only).
struct Budget {
  std::int64_t avail_mem_bytes = 0;
};

struct MemConfig {
  /// Bind a tracking arena around every train_client call and record the
  /// measured peak into Upload/RoundStats (no behavioural change).
  bool measure = false;
  /// Additionally derive a per-client Budget from its device's available
  /// memory (times device_mem_scale) and report budget violations.
  bool enforce_budget = false;
  /// Allow clients whose planned peak exceeds their budget to train with
  /// activation checkpointing (drop-and-recompute) instead of swapping.
  bool checkpointing = false;
  /// Fixed budget for every client (bytes, trainable-model scale). Overrides
  /// the device-derived budget when > 0 (bench_mem sweeps).
  std::int64_t budget_override_bytes = 0;
  /// Maps device availability (paper-scale GB) onto the trainable model's
  /// byte scale, mirroring the per-method device_mem_scale (DESIGN.md §1).
  double device_mem_scale = 1.0;

  bool active() const { return measure || enforce_budget; }
};

}  // namespace fp::mem
