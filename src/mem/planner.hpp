// Liveness-based static memory planner (DESIGN.md §6).
//
// Given a module's atom range and batch size, the planner expands the range
// into per-layer units, walks one forward + backward training traversal as a
// timeline, and emits first-use/last-use intervals for every buffer the
// traversal touches. A greedy best-fit assignment packs the intervals into
// offsets of one address space; the resulting `peak_bytes` is the measured-
// plane counterpart of the analytic sys::module_train_mem_bytes.
//
// Two fidelity modes:
//  * include_runtime_scratch = false — the idealized activation-liveness
//    plan: module input, per-unit output activations, parameter state. Its
//    peak is provably <= the analytic requirement (same terms, shorter
//    lifetimes), which is the partitioner cross-check.
//  * include_runtime_scratch = true (default) — models what THIS
//    implementation actually allocates: layer input copies, im2col unfold
//    and gather scratch, flowing activations, transient gradients, PGD
//    perturbation copies. This is the plan execution decisions are made on.
//
// The same machinery prices activation checkpointing: a plan built with
// checkpoint segment starts models dropped-after-forward caches, stored
// segment-boundary inputs, and the recompute phase, yielding both the
// checkpointed peak and the extra forward fraction re-executed per backward.
#pragma once

#include <string>
#include <vector>

#include "sysmodel/layer_spec.hpp"

namespace fp::mem {

/// One buffer's lifetime on the traversal timeline and its assigned offset.
struct Interval {
  std::string label;
  std::int64_t bytes = 0;
  int first_use = 0;  ///< timeline step the buffer is born (inclusive)
  int last_use = 0;   ///< last timeline step the buffer is read (inclusive)
  std::int64_t offset = -1;  ///< assigned slab offset (best-fit)
};

struct MemPlan {
  std::vector<Interval> intervals;
  /// Address-space high-water of the best-fit assignment: max(offset+bytes).
  std::int64_t peak_bytes = 0;
  /// Max over timeline steps of the live byte sum (assignment lower bound).
  std::int64_t liveness_peak_bytes = 0;
  /// Whole-timeline resident bytes (parameter state + caller extras).
  std::int64_t resident_bytes = 0;
  int timeline_steps = 0;
  /// Fraction of the module's forward MACs re-executed per backward
  /// traversal by the checkpoint plan (0 for plain execution).
  double recompute_fwd_frac = 0.0;
};

struct PlanRequest {
  std::size_t atom_begin = 0;
  std::size_t atom_end = 0;
  std::int64_t batch_size = 1;
  bool with_aux_head = false;
  /// Ascending atom indices starting each checkpoint segment (the first must
  /// equal atom_begin). Empty = plain execution.
  std::vector<std::size_t> checkpoint_starts;
  /// The step runs a PGD inner maximization: the runtime plan reserves its
  /// working set (perturbation, adversarial copy, ascent gradient, pre-attack
  /// copy). False for standard-training clients (e.g. FedRBN's memory-poor
  /// path).
  bool adversarial = true;
  bool include_runtime_scratch = true;
  /// Extra whole-timeline resident bytes the caller knows about (the rest of
  /// the model replica, loaded aux heads, optimizer state, frozen-prefix
  /// caches, the raw input batch).
  std::int64_t resident_extra_bytes = 0;
};

MemPlan plan_module_memory(const sys::ModelSpec& model, const PlanRequest& req);

/// Steady-state cache + scratch bytes a forward pass through atoms
/// [begin, end) leaves resident — what the frozen-prefix forward of cascade
/// training pins for the whole step.
std::int64_t resident_cache_bytes(const sys::ModelSpec& model, std::size_t begin,
                                  std::size_t end, std::int64_t batch);

/// Whole-timeline resident bytes of a full-model replica training atoms
/// [begin, end): the out-of-range weights + gradients, loaded auxiliary-head
/// state, the raw input batch, and a flowing-activation allowance for the
/// frozen-prefix forward (which runs cache-free under a client scope). Feeds
/// PlanRequest::resident_extra_bytes.
std::int64_t replica_resident_bytes(const sys::ModelSpec& model,
                                    std::size_t atom_begin, std::size_t atom_end,
                                    std::int64_t batch,
                                    std::int64_t aux_params_loaded);

/// Picks checkpoint segment starts (atom granularity, fewest segments first)
/// so the planned peak fits `budget_bytes`. Falls back to the finest
/// segmentation when nothing fits (best effort; the caller sees the residual
/// overshoot through the returned plan). Empty when the plain plan already
/// fits or the range is a single atom.
std::vector<std::size_t> choose_checkpoint_starts(const sys::ModelSpec& model,
                                                  const PlanRequest& req,
                                                  std::int64_t budget_bytes);

/// One-stop execution decision for a client's local training step, reading
/// the budget and checkpointing permission bound to this thread
/// (mem::ClientMemScope). Zero-cost no-op when no scope is bound.
struct ClientExecution {
  std::vector<std::size_t> checkpoint_starts;  ///< empty = plain execution
  std::int64_t planned_peak_bytes = 0;       ///< plain-execution plan peak
  std::int64_t planned_exec_peak_bytes = 0;  ///< peak of the chosen execution
  double recompute_fwd_frac = 0.0;           ///< of the chosen execution
  bool checkpointed() const { return !checkpoint_starts.empty(); }
};
ClientExecution plan_client_execution(const sys::ModelSpec& model,
                                      const PlanRequest& req);

/// Rescales measured trainable-model bytes onto a paper-shape pricing spec's
/// scale (the inverse of the device_mem_scale mapping, DESIGN.md §1).
inline std::int64_t to_pricing_scale(std::int64_t bytes,
                                     double device_mem_scale) {
  if (bytes <= 0 || device_mem_scale <= 0.0) return 0;
  return static_cast<std::int64_t>(static_cast<double>(bytes) /
                                   device_mem_scale);
}

}  // namespace fp::mem
