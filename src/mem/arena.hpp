// Arena/MemoryPool allocator and the thread-local client memory scope.
//
// The arena owns one 64-byte-aligned slab and hands out bump allocations
// from it; frees are accounted immediately (live/high-water bookkeeping is
// exact) and slab space is reclaimed by coalescing freed blocks back into
// the bump pointer as soon as the top of the slab becomes free (LIFO-with-
// lazy-rewind, the allocation pattern of a training step is almost entirely
// stack-like). Requests that do not fit the slab fall back to the heap and
// are tracked the same way, so running over budget degrades gracefully and
// shows up in the measurements instead of crashing.
//
// TrackedAlloc<T> is the std::vector allocator that routes every Tensor
// buffer and layer scratch buffer through the arena bound to the current
// thread (ClientMemScope). Each allocation carries a 64-byte header naming
// its owning arena, so a buffer that outlives the scope that allocated it is
// still freed correctly (the arena is intrusively refcounted and dies with
// its last allocation). With no scope bound the allocator is a plain
// aligned-heap passthrough.
#pragma once

#include <cstddef>
#include <cstdint>

#include "mem/budget.hpp"

namespace fp::mem {

inline constexpr std::size_t kAlign = 64;

class Arena {
 public:
  /// `slab_bytes` = 0 builds a slab-less arena (pure tracking over the heap).
  explicit Arena(std::size_t slab_bytes);

  /// 64-byte-aligned allocation: slab bump when it fits, heap otherwise.
  void* allocate(std::size_t bytes);
  void deallocate(void* p, std::size_t bytes);

  /// Payload bytes currently live (headers excluded).
  std::int64_t live_bytes() const;
  /// High-water mark of live_bytes() since construction — the measured peak.
  std::int64_t peak_bytes() const;
  /// Payload bytes that did not fit the slab and were served from the heap.
  std::int64_t overflow_bytes() const;
  std::size_t slab_capacity() const;

  /// Intrusive refcount: the owning scope holds one reference, every live
  /// allocation holds one. The arena deletes itself at zero.
  void retain();
  void release();

 private:
  ~Arena();
  struct Impl;
  Impl* impl_;
};

/// Allocates `bytes` with a tracking header. Routed through the current
/// thread's arena when a ClientMemScope is bound, plain heap otherwise.
void* tracked_allocate(std::size_t bytes);
void tracked_deallocate(void* p, std::size_t bytes) noexcept;

/// std::vector allocator over tracked_allocate (Tensor storage, layer
/// scratch). Stateless: all instances compare equal.
template <class T>
struct TrackedAlloc {
  using value_type = T;
  TrackedAlloc() = default;
  template <class U>
  TrackedAlloc(const TrackedAlloc<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(tracked_allocate(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    tracked_deallocate(p, n * sizeof(T));
  }
  template <class U>
  friend bool operator==(const TrackedAlloc&, const TrackedAlloc<U>&) {
    return true;
  }
};

/// Binds an arena + budget + checkpointing permission to this thread for the
/// duration of one client's local training. Scopes nest (save/restore).
class ClientMemScope {
 public:
  /// Slab size defaults to the budget (capped), so staying within budget
  /// means never leaving the slab; 0/unbudgeted scopes track over the heap.
  explicit ClientMemScope(Budget budget, bool checkpointing = false);
  ~ClientMemScope();
  ClientMemScope(const ClientMemScope&) = delete;
  ClientMemScope& operator=(const ClientMemScope&) = delete;

  std::int64_t peak_bytes() const;
  std::int64_t live_bytes() const;
  const Budget& budget() const { return budget_; }

 private:
  Budget budget_;
  Arena* arena_;
  void* prev_;  ///< enclosing thread context
};

/// True when a ClientMemScope is bound to this thread.
bool scope_active();
/// The budget of the innermost bound scope; nullptr when none (or when the
/// scope is measure-only, i.e. avail_mem_bytes == 0).
const Budget* current_budget();
/// True when the bound scope permits activation checkpointing.
bool checkpointing_enabled();
/// Live/peak of the bound scope's arena (0 when none).
std::int64_t current_live_bytes();
std::int64_t current_peak_bytes();

}  // namespace fp::mem
