#include "mem/arena.hpp"

#include <algorithm>
#include <map>
#include <mutex>
#include <new>

#include "obs/metrics.hpp"

namespace fp::mem {

namespace {

inline std::size_t align_up(std::size_t n) {
  return (n + kAlign - 1) & ~(kAlign - 1);
}

/// Per-allocation header, one alignment unit wide so payloads stay aligned.
struct alignas(kAlign) Header {
  Arena* owner = nullptr;  ///< nullptr = plain heap allocation
  std::size_t bytes = 0;   ///< payload bytes as requested
};
static_assert(sizeof(Header) <= kAlign);

struct ThreadCtx {
  Arena* arena = nullptr;
  Budget budget;
  bool checkpointing = false;
};

ThreadCtx*& tls_ctx() {
  thread_local ThreadCtx* ctx = nullptr;
  return ctx;
}

/// Caps the slab a budgeted scope reserves up front (a budget far above what
/// the client touches should not reserve gigabytes of real memory).
constexpr std::size_t kMaxSlabBytes = std::size_t{256} << 20;

}  // namespace

struct Arena::Impl {
  std::mutex mu;
  char* slab = nullptr;
  std::size_t capacity = 0;
  std::size_t top = 0;  ///< bump offset into the slab
  /// Freed slab blocks not yet reclaimed: end offset -> start offset. When
  /// the block ending at `top` is freed (directly or via coalescing) the bump
  /// pointer rewinds over it.
  std::map<std::size_t, std::size_t> freed;
  std::int64_t live = 0;
  std::int64_t peak = 0;
  std::int64_t overflow = 0;
  int refs = 1;  ///< owner scope's reference

  bool owns(const void* p) const {
    const char* c = static_cast<const char*>(p);
    return slab && c >= slab && c < slab + capacity;
  }
};

Arena::Arena(std::size_t slab_bytes) : impl_(new Impl) {
  if (slab_bytes > 0) {
    impl_->capacity = align_up(std::min(slab_bytes, kMaxSlabBytes));
    impl_->slab = static_cast<char*>(
        ::operator new(impl_->capacity, std::align_val_t(kAlign)));
  }
}

Arena::~Arena() {
  if (impl_->slab)
    ::operator delete(impl_->slab, std::align_val_t(kAlign));
  delete impl_;
}

void* Arena::allocate(std::size_t bytes) {
  const std::size_t block = align_up(bytes) + kAlign;  // header + payload
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->live += static_cast<std::int64_t>(bytes);
  impl_->peak = std::max(impl_->peak, impl_->live);
  void* base;
  if (impl_->slab && impl_->top + block <= impl_->capacity) {
    base = impl_->slab + impl_->top;
    impl_->top += block;
  } else {
    base = ::operator new(block, std::align_val_t(kAlign));
    impl_->overflow += static_cast<std::int64_t>(bytes);
  }
  auto* h = new (base) Header{this, bytes};
  (void)h;
  return static_cast<char*>(base) + kAlign;
}

void Arena::deallocate(void* p, std::size_t bytes) {
  char* base = static_cast<char*>(p) - kAlign;
  const std::size_t block = align_up(bytes) + kAlign;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->live -= static_cast<std::int64_t>(bytes);
    if (impl_->owns(base)) {
      const auto start = static_cast<std::size_t>(base - impl_->slab);
      impl_->freed.emplace(start + block, start);
      // Rewind the bump pointer over every freed block touching the top.
      for (auto it = impl_->freed.find(impl_->top);
           it != impl_->freed.end(); it = impl_->freed.find(impl_->top)) {
        impl_->top = it->second;
        impl_->freed.erase(it);
      }
    } else {
      ::operator delete(base, std::align_val_t(kAlign));
    }
  }
}

std::int64_t Arena::live_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->live;
}

std::int64_t Arena::peak_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->peak;
}

std::int64_t Arena::overflow_bytes() const {
  std::lock_guard<std::mutex> lock(impl_->mu);
  return impl_->overflow;
}

std::size_t Arena::slab_capacity() const { return impl_->capacity; }

void Arena::retain() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  ++impl_->refs;
}

void Arena::release() {
  bool dead;
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    dead = --impl_->refs == 0;
  }
  if (dead) delete this;
}

void* tracked_allocate(std::size_t bytes) {
  ThreadCtx* ctx = tls_ctx();
  if (ctx && ctx->arena) {
    void* p = ctx->arena->allocate(bytes);
    ctx->arena->retain();  // the allocation keeps its arena alive
    return p;
  }
  void* base = ::operator new(align_up(bytes) + kAlign, std::align_val_t(kAlign));
  new (base) Header{nullptr, bytes};
  return static_cast<char*>(base) + kAlign;
}

void tracked_deallocate(void* p, std::size_t bytes) noexcept {
  char* base = static_cast<char*>(p) - kAlign;
  Arena* owner = reinterpret_cast<Header*>(base)->owner;
  if (owner) {
    owner->deallocate(p, bytes);
    owner->release();
  } else {
    ::operator delete(base, std::align_val_t(kAlign));
  }
}

ClientMemScope::ClientMemScope(Budget budget, bool checkpointing)
    : budget_(budget),
      arena_(new Arena(budget.avail_mem_bytes > 0
                           ? static_cast<std::size_t>(budget.avail_mem_bytes)
                           : 0)) {
  auto* ctx = new ThreadCtx{arena_, budget_, checkpointing};
  prev_ = tls_ctx();
  tls_ctx() = ctx;
}

ClientMemScope::~ClientMemScope() {
  ThreadCtx* ctx = tls_ctx();
  tls_ctx() = static_cast<ThreadCtx*>(prev_);
  delete ctx;
  static obs::Counter& peak = obs::counter("mem.arena_peak_bytes");
  peak.set_max(arena_->peak_bytes());
  arena_->release();
}

std::int64_t ClientMemScope::peak_bytes() const { return arena_->peak_bytes(); }
std::int64_t ClientMemScope::live_bytes() const { return arena_->live_bytes(); }

bool scope_active() { return tls_ctx() != nullptr; }

const Budget* current_budget() {
  ThreadCtx* ctx = tls_ctx();
  if (!ctx || ctx->budget.avail_mem_bytes <= 0) return nullptr;
  return &ctx->budget;
}

bool checkpointing_enabled() {
  ThreadCtx* ctx = tls_ctx();
  return ctx && ctx->checkpointing;
}

std::int64_t current_live_bytes() {
  ThreadCtx* ctx = tls_ctx();
  return ctx ? ctx->arena->live_bytes() : 0;
}

std::int64_t current_peak_bytes() {
  ThreadCtx* ctx = tls_ctx();
  return ctx ? ctx->arena->peak_bytes() : 0;
}

}  // namespace fp::mem
