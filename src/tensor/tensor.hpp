// A minimal dense float32 tensor with value semantics.
//
// Storage is always contiguous row-major. Shapes use int64_t extents. The
// tensor is the single currency of the library: layer activations, parameters,
// gradients, datasets and adversarial perturbations are all Tensors.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

#include "mem/arena.hpp"
#include "tensor/rng.hpp"

namespace fp {

class Tensor {
 public:
  Tensor() = default;

  /// Allocates a zero-initialized tensor of the given shape.
  explicit Tensor(std::vector<std::int64_t> shape);
  Tensor(std::initializer_list<std::int64_t> shape)
      : Tensor(std::vector<std::int64_t>(shape)) {}

  // ---- factories -----------------------------------------------------------
  static Tensor zeros(std::vector<std::int64_t> shape) { return Tensor(std::move(shape)); }
  static Tensor full(std::vector<std::int64_t> shape, float value);
  static Tensor ones(std::vector<std::int64_t> shape) { return full(std::move(shape), 1.0f); }
  static Tensor randn(std::vector<std::int64_t> shape, Rng& rng, float stddev = 1.0f);
  static Tensor rand_uniform(std::vector<std::int64_t> shape, Rng& rng, float lo, float hi);
  static Tensor from_vector(std::vector<std::int64_t> shape, std::vector<float> values);

  // ---- shape ---------------------------------------------------------------
  const std::vector<std::int64_t>& shape() const { return shape_; }
  std::int64_t dim(std::size_t i) const { return shape_.at(i); }
  std::size_t ndim() const { return shape_.size(); }
  std::int64_t numel() const { return numel_; }
  bool empty() const { return numel_ == 0; }
  bool same_shape(const Tensor& other) const { return shape_ == other.shape_; }
  std::string shape_str() const;

  /// Reinterprets the buffer with a new shape of identical element count.
  Tensor reshape(std::vector<std::int64_t> new_shape) const;

  // ---- element access ------------------------------------------------------
  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }
  float& operator[](std::int64_t i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](std::int64_t i) const { return data_[static_cast<std::size_t>(i)]; }

  /// Bounds-checked 4-D accessors for NCHW tensors (debug/test convenience).
  float& at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w);
  float at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) const;
  float& at2(std::int64_t r, std::int64_t c);
  float at2(std::int64_t r, std::int64_t c) const;

  // ---- in-place arithmetic -------------------------------------------------
  Tensor& fill(float value);
  Tensor& add_(const Tensor& other);              ///< this += other
  Tensor& sub_(const Tensor& other);              ///< this -= other
  Tensor& mul_(const Tensor& other);              ///< elementwise this *= other
  Tensor& add_scaled_(const Tensor& other, float alpha);  ///< this += alpha*other
  Tensor& scale_(float alpha);                    ///< this *= alpha
  Tensor& add_scalar_(float alpha);               ///< this += alpha
  Tensor& clamp_(float lo, float hi);
  Tensor& relu_();
  Tensor& sign_();                                ///< elementwise sign (0 maps to 0)
  Tensor& zero_() { return fill(0.0f); }

  // ---- functional arithmetic ----------------------------------------------
  Tensor add(const Tensor& other) const;
  Tensor sub(const Tensor& other) const;
  Tensor mul(const Tensor& other) const;
  Tensor scaled(float alpha) const;

  // ---- reductions ----------------------------------------------------------
  float sum() const;
  float mean() const;
  float min() const;
  float max() const;
  float abs_max() const;   ///< ℓ∞ norm
  float l2_norm() const;   ///< ℓ2 norm of the flattened tensor
  float dot(const Tensor& other) const;
  std::int64_t argmax() const;
  /// Row-wise argmax of a [rows, cols] matrix (predicted class per sample).
  std::vector<std::int64_t> argmax_rows() const;

  /// Per-sample ℓ2 norms of a [N, ...] batch (norm over all non-batch dims).
  std::vector<float> row_l2_norms() const;
  /// Scales each sample of a [N, ...] batch by its own factor.
  Tensor& scale_rows_(const std::vector<float>& factors);

  /// Slices `count` samples starting at `start` along the leading dimension.
  Tensor slice_rows(std::int64_t start, std::int64_t count) const;
  /// Copies `src` into rows [start, start+src.dim(0)).
  void set_rows(std::int64_t start, const Tensor& src);

 private:
  void check_same_shape(const Tensor& other, const char* op) const;
  std::vector<std::int64_t> shape_;
  std::int64_t numel_ = 0;
  /// Storage routes through the memory subsystem: inside a training-time
  /// mem::ClientMemScope it comes from the bound arena (and is counted
  /// against the client's budget), otherwise it is a plain aligned heap
  /// allocation.
  std::vector<float, mem::TrackedAlloc<float>> data_;
};

}  // namespace fp
