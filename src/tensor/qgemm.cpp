#include "tensor/qgemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FP_QGEMM_X86 1
#endif

namespace fp {

namespace {

/// k padding unit: one AVX-512 vector of codes (two AVX2 vectors).
constexpr std::int64_t kChunk = 64;
/// Kernel tile: up to 4 a-rows x 4 b-rows per call.
constexpr std::int64_t kTile = 4;

/// Computes the 4x4 (or smaller: mr/nr valid) output tile
///   C[i0+r, j0+s] = float(dot(a row r, b row s)) * a_scales[r] * b_scales[s]
/// from the code panels. Rows are padded to the tile, so kernels may load a
/// full 4x4 tile of codes/scales/sums unconditionally and only guard stores.
using QTileKernel = void (*)(const std::int8_t* a_codes,
                             const std::int8_t* b_codes, std::int64_t k_padded,
                             const float* a_scales, const float* b_scales,
                             const std::int32_t* b_sums, std::int64_t mr,
                             std::int64_t nr, float* c, std::int64_t ldc);

void qtile_generic(const std::int8_t* a_codes, const std::int8_t* b_codes,
                   std::int64_t k_padded, const float* a_scales,
                   const float* b_scales, const std::int32_t* /*b_sums*/,
                   std::int64_t mr, std::int64_t nr, float* c,
                   std::int64_t ldc) {
  for (std::int64_t r = 0; r < mr; ++r) {
    const std::int8_t* ar = a_codes + r * k_padded;
    for (std::int64_t s = 0; s < nr; ++s) {
      const std::int8_t* bs = b_codes + s * k_padded;
      std::int32_t dot = 0;
      for (std::int64_t t = 0; t < k_padded; ++t)
        dot += static_cast<std::int32_t>(ar[t]) * bs[t];
      const float scale = a_scales[r] * b_scales[s];
      c[r * ldc + s] = static_cast<float>(dot) * scale;
    }
  }
}

#ifdef FP_QGEMM_X86

/// Sums the 8 int32 lanes of one AVX2 accumulator.
__attribute__((target("avx2"))) inline std::int32_t hsum8_epi32(__m256i v) {
  __m128i x = _mm_add_epi32(_mm256_castsi256_si128(v),
                            _mm256_extracti128_si256(v, 1));
  x = _mm_add_epi32(x, _mm_shuffle_epi32(x, _MM_SHUFFLE(1, 0, 3, 2)));
  x = _mm_add_epi32(x, _mm_shuffle_epi32(x, _MM_SHUFFLE(2, 3, 0, 1)));
  return _mm_cvtsi128_si32(x);
}

// maddubs multiplies u8 x s8; the sign trick routes |b| through the unsigned
// operand and transfers b's sign onto a, so each pair product equals a*b.
// Codes are clamped to ±127, so |pair sum| <= 2*127*127 < INT16_MAX: the
// saturating add never saturates, and madd-by-ones widens exactly to int32.
// Each int32 lane gains at most 4*127*127 per 32-code chunk, so the int32
// accumulator is exact for any realistic k (overflow needs k > 10^6).
__attribute__((target("avx2"))) void qtile_avx2(
    const std::int8_t* a_codes, const std::int8_t* b_codes,
    std::int64_t k_padded, const float* a_scales, const float* b_scales,
    const std::int32_t* /*b_sums*/, std::int64_t mr, std::int64_t nr, float* c,
    std::int64_t ldc) {
  const __m256i ones = _mm256_set1_epi16(1);
  for (std::int64_t s0 = 0; s0 < nr; s0 += 2) {  // 4x2 sub-tiles
    const std::int8_t* b0 = b_codes + s0 * k_padded;
    const std::int8_t* b1 = b0 + k_padded;  // padded rows: always readable
    __m256i acc[kTile][2];
    for (std::int64_t r = 0; r < kTile; ++r)
      acc[r][0] = acc[r][1] = _mm256_setzero_si256();
    for (std::int64_t t = 0; t < k_padded; t += 32) {
      const __m256i vb0 =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b0 + t));
      const __m256i vb1 =
          _mm256_load_si256(reinterpret_cast<const __m256i*>(b1 + t));
      const __m256i ab0 = _mm256_sign_epi8(vb0, vb0);
      const __m256i ab1 = _mm256_sign_epi8(vb1, vb1);
      for (std::int64_t r = 0; r < kTile; ++r) {
        const __m256i va = _mm256_load_si256(
            reinterpret_cast<const __m256i*>(a_codes + r * k_padded + t));
        acc[r][0] = _mm256_add_epi32(
            acc[r][0],
            _mm256_madd_epi16(_mm256_maddubs_epi16(ab0, _mm256_sign_epi8(va, vb0)),
                              ones));
        acc[r][1] = _mm256_add_epi32(
            acc[r][1],
            _mm256_madd_epi16(_mm256_maddubs_epi16(ab1, _mm256_sign_epi8(va, vb1)),
                              ones));
      }
    }
    for (std::int64_t r = 0; r < mr; ++r)
      for (std::int64_t s = s0; s < std::min(s0 + 2, nr); ++s) {
        const std::int32_t dot = hsum8_epi32(acc[r][s - s0]);
        const float scale = a_scales[r] * b_scales[s];
        c[r * ldc + s] = static_cast<float>(dot) * scale;
      }
  }
}

/// Folds one 512-bit int32 accumulator to the 4 lanes of a __m128i.
__attribute__((target("avx512f,avx512vl,avx2"))) inline __m128i fold512(
    __m512i v) {
  const __m256i h = _mm256_add_epi32(_mm512_castsi512_si256(v),
                                     _mm512_extracti64x4_epi64(v, 1));
  return _mm_add_epi32(_mm256_castsi256_si128(h),
                       _mm256_extracti128_si256(h, 1));
}

// dpbusd fuses the whole u8 x s8 dot-widen-accumulate into one instruction.
// dpbusd wants an UNSIGNED left operand, so a's codes are biased by +128
// (one XOR with 0x80) and the epilogue subtracts 128 * sum(b codes) — exact
// integer arithmetic throughout. 16 independent 512-bit accumulators cover
// the 4x4 tile: 1024 MACs per 64-code step of the k loop.
__attribute__((target("avx512vnni,avx512vl,avx2"))) void qtile_vnni(
    const std::int8_t* a_codes, const std::int8_t* b_codes,
    std::int64_t k_padded, const float* a_scales, const float* b_scales,
    const std::int32_t* b_sums, std::int64_t mr, std::int64_t nr, float* c,
    std::int64_t ldc) {
  const __m512i bias = _mm512_set1_epi8(static_cast<char>(0x80));
  __m512i acc[kTile][kTile];
  for (std::int64_t r = 0; r < kTile; ++r)
    for (std::int64_t s = 0; s < kTile; ++s) acc[r][s] = _mm512_setzero_si512();
  for (std::int64_t t = 0; t < k_padded; t += kChunk) {
    const __m512i b0 = _mm512_load_si512(b_codes + t);
    const __m512i b1 = _mm512_load_si512(b_codes + k_padded + t);
    const __m512i b2 = _mm512_load_si512(b_codes + 2 * k_padded + t);
    const __m512i b3 = _mm512_load_si512(b_codes + 3 * k_padded + t);
    for (std::int64_t r = 0; r < kTile; ++r) {
      const __m512i ar = _mm512_xor_si512(
          _mm512_load_si512(a_codes + r * k_padded + t), bias);
      acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], ar, b0);
      acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], ar, b1);
      acc[r][2] = _mm512_dpbusd_epi32(acc[r][2], ar, b2);
      acc[r][3] = _mm512_dpbusd_epi32(acc[r][3], ar, b3);
    }
  }
  // Per a-row: transpose-reduce the 4 accumulators to one __m128i of dots,
  // undo the +128 bias, and rescale. Pad lanes (sums/scales are zero there)
  // produce zeros that the guarded store drops.
  const __m128i corr =
      _mm_slli_epi32(_mm_loadu_si128(reinterpret_cast<const __m128i*>(b_sums)), 7);
  const __m128 vbs = _mm_loadu_ps(b_scales);
  for (std::int64_t r = 0; r < mr; ++r) {
    const __m128i h01 = _mm_hadd_epi32(fold512(acc[r][0]), fold512(acc[r][1]));
    const __m128i h23 = _mm_hadd_epi32(fold512(acc[r][2]), fold512(acc[r][3]));
    const __m128i dots = _mm_sub_epi32(_mm_hadd_epi32(h01, h23), corr);
    const __m128 scale = _mm_mul_ps(_mm_set1_ps(a_scales[r]), vbs);
    const __m128 res = _mm_mul_ps(_mm_cvtepi32_ps(dots), scale);
    if (nr == kTile) {
      _mm_storeu_ps(c + r * ldc, res);
    } else {
      alignas(16) float tmp[4];
      _mm_store_ps(tmp, res);
      for (std::int64_t s = 0; s < nr; ++s) c[r * ldc + s] = tmp[s];
    }
  }
}

#endif  // FP_QGEMM_X86

struct QKernelChoice {
  QTileKernel kernel;
  const char* name;
};

QKernelChoice pick_qkernel() {
#ifdef FP_QGEMM_X86
  if (__builtin_cpu_supports("avx512vnni") &&
      __builtin_cpu_supports("avx512vl") && __builtin_cpu_supports("avx2"))
    return {&qtile_vnni, "avx512vnni"};
  if (__builtin_cpu_supports("avx2")) return {&qtile_avx2, "avx2"};
#endif
  return {&qtile_generic, "generic"};
}

const QKernelChoice kQKernel = pick_qkernel();

void size_pack(QuantizedMat& out, std::int64_t rows, std::int64_t k) {
  out.rows = rows;
  out.k = k;
  out.k_padded = (k + kChunk - 1) / kChunk * kChunk;
  const std::int64_t rows_padded = (rows + kTile - 1) / kTile * kTile;
  out.codes.resize(static_cast<std::size_t>(rows_padded * out.k_padded));
  out.scales.resize(static_cast<std::size_t>(rows_padded));
  out.sums.resize(static_cast<std::size_t>(rows_padded));
  // The pad rows must read as all-zero (storage may be reused).
  if (rows_padded > rows && out.k_padded > 0)
    std::memset(out.codes.data() + rows * out.k_padded, 0,
                static_cast<std::size_t>((rows_padded - rows) * out.k_padded));
  for (std::int64_t r = rows; r < rows_padded; ++r) {
    out.scales[static_cast<std::size_t>(r)] = 0.0f;
    out.sums[static_cast<std::size_t>(r)] = 0;
  }
}

#ifdef FP_QGEMM_X86

/// AVX-512 row quantizer, bit-identical to quant::quantize_block_int8 (same
/// absmax reduction — order-independent —, same step, and vcvtps2dq rounds
/// to nearest-even exactly like std::nearbyint in the default mode). Also
/// emits the code sum the VNNI kernel's bias correction needs.
__attribute__((target("avx512f,avx512vl,avx2"))) void quantize_row_avx512(
    const float* src, std::int64_t k, std::int8_t* codes, float* scale,
    std::int32_t* sum, std::int64_t k_padded) {
  __m512 vmax = _mm512_setzero_ps();
  std::int64_t t = 0;
  for (; t + 16 <= k; t += 16)
    vmax = _mm512_max_ps(vmax, _mm512_abs_ps(_mm512_loadu_ps(src + t)));
  float absmax = _mm512_reduce_max_ps(vmax);
  for (; t < k; ++t) absmax = std::max(absmax, std::fabs(src[t]));
  if (absmax == 0.0f) {
    *scale = 0.0f;
    *sum = 0;
    std::memset(codes, 0, static_cast<std::size_t>(k_padded));
    return;
  }
  const float step = quant::symmetric_step(absmax, 8);
  *scale = step;
  const __m512 vinv = _mm512_set1_ps(1.0f / step);
  const __m512i lo = _mm512_set1_epi32(-127);
  const __m512i hi = _mm512_set1_epi32(127);
  __m512i vsum = _mm512_setzero_si512();
  t = 0;
  for (; t + 16 <= k; t += 16) {
    const __m512i q = _mm512_cvtps_epi32(
        _mm512_mul_ps(_mm512_loadu_ps(src + t), vinv));
    const __m512i c = _mm512_max_epi32(lo, _mm512_min_epi32(hi, q));
    vsum = _mm512_add_epi32(vsum, c);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(codes + t),
                     _mm512_cvtepi32_epi8(c));
  }
  std::int32_t s = _mm512_reduce_add_epi32(vsum);
  const float inv = 1.0f / step;
  for (; t < k; ++t) {
    const float q = std::nearbyint(src[t] * inv);
    const std::int8_t c =
        static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
    codes[t] = c;
    s += c;
  }
  *sum = s;
  if (k < k_padded)
    std::memset(codes + k, 0, static_cast<std::size_t>(k_padded - k));
}

#endif  // FP_QGEMM_X86

/// Whole-row quantize on the shared symmetric grid + zero pad + code sum.
void quantize_row_scalar(const float* src, std::int64_t k, std::int8_t* codes,
                         float* scale, std::int32_t* sum,
                         std::int64_t k_padded) {
  quant::quantize_block_int8(src, k, codes, scale);
  for (std::int64_t t = k; t < k_padded; ++t) codes[t] = 0;
  std::int32_t s = 0;
  for (std::int64_t t = 0; t < k; ++t) s += codes[t];
  *sum = s;
}

using QuantizeRowFn = void (*)(const float*, std::int64_t, std::int8_t*,
                               float*, std::int32_t*, std::int64_t);

QuantizeRowFn pick_quantize_row() {
#ifdef FP_QGEMM_X86
  if (__builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512vl"))
    return &quantize_row_avx512;
#endif
  return &quantize_row_scalar;
}

const QuantizeRowFn kQuantizeRow = pick_quantize_row();

void quantize_row(const float* src, std::int64_t k, std::int8_t* codes,
                  float* scale, std::int32_t* sum, std::int64_t k_padded) {
  kQuantizeRow(src, k, codes, scale, sum, k_padded);
}

/// dst[j * k + i] = src[i * ld + j] for i in [0, k), j in [0, jn) — the
/// stripe transpose feeding quantize_cols. 4x4 SSE blocks (baseline ISA);
/// scalar edges.
void transpose_stripe(const float* src, std::int64_t k, std::int64_t jn,
                      std::int64_t ld, float* dst) {
#ifdef FP_QGEMM_X86
  std::int64_t i = 0;
  for (; i + 4 <= k; i += 4) {
    std::int64_t j = 0;
    for (; j + 4 <= jn; j += 4) {
      __m128 r0 = _mm_loadu_ps(src + (i + 0) * ld + j);
      __m128 r1 = _mm_loadu_ps(src + (i + 1) * ld + j);
      __m128 r2 = _mm_loadu_ps(src + (i + 2) * ld + j);
      __m128 r3 = _mm_loadu_ps(src + (i + 3) * ld + j);
      _MM_TRANSPOSE4_PS(r0, r1, r2, r3);
      _mm_storeu_ps(dst + (j + 0) * k + i, r0);
      _mm_storeu_ps(dst + (j + 1) * k + i, r1);
      _mm_storeu_ps(dst + (j + 2) * k + i, r2);
      _mm_storeu_ps(dst + (j + 3) * k + i, r3);
    }
    for (; j < jn; ++j)
      for (std::int64_t d = 0; d < 4; ++d)
        dst[j * k + i + d] = src[(i + d) * ld + j];
  }
  for (; i < k; ++i)
    for (std::int64_t j = 0; j < jn; ++j) dst[j * k + i] = src[i * ld + j];
#else
  for (std::int64_t i = 0; i < k; ++i)
    for (std::int64_t j = 0; j < jn; ++j) dst[j * k + i] = src[i * ld + j];
#endif
}

}  // namespace

void quantize_rows_int8(const float* src, std::int64_t rows, std::int64_t k,
                        std::int64_t ld, QuantizedMat& out) {
  size_pack(out, rows, k);
  std::int8_t* codes = out.codes.data();
  const std::int64_t kp = out.k_padded;
  core::parallel_for(0, rows, 8, [&](std::int64_t r0, std::int64_t r1) {
    for (std::int64_t r = r0; r < r1; ++r)
      quantize_row(src + r * ld, k, codes + r * kp, &out.scales[r], &out.sums[r],
                   kp);
  });
}

void quantize_cols_int8(const float* src, std::int64_t k, std::int64_t n,
                        std::int64_t ld, QuantizedMat& out) {
  size_pack(out, n, k);
  std::int8_t* codes = out.codes.data();
  const std::int64_t kp = out.k_padded;
  // Per 64-column stripe: SSE-blocked transpose into a contiguous [jn, k]
  // scratch (reads the source row-contiguously, writes inside an L1/L2-sized
  // buffer), then the shared row quantizer runs on contiguous rows — the
  // pack is bit-identical to quantize_rows_int8 of the explicit transpose
  // by construction.
  constexpr std::int64_t kStripe = 64;
  core::parallel_for(0, n, kStripe, [&](std::int64_t j0, std::int64_t j1) {
    std::vector<float> tmp(static_cast<std::size_t>(kStripe * k));
    for (std::int64_t jb = j0; jb < j1; jb += kStripe) {
      const std::int64_t jn = std::min(kStripe, j1 - jb);
      transpose_stripe(src + jb, k, jn, ld, tmp.data());
      for (std::int64_t j = 0; j < jn; ++j)
        quantize_row(tmp.data() + j * k, k, codes + (jb + j) * kp,
                     &out.scales[jb + j], &out.sums[jb + j], kp);
    }
  });
}

void qgemm_nt(std::int64_t m, std::int64_t n, const QuantizedMat& a,
              const QuantizedMat& b, float* c, std::int64_t ldc) {
  FP_TRACE_KERNEL("qgemm_nt", "mnk", m * n * a.k_padded);
  static obs::Counter& calls = obs::counter("kernel.qgemm_calls");
  calls.add();
  if (m <= 0 || n <= 0) return;
  if (a.k_padded == 0 || b.k_padded == 0) {
    // k <= 0: the blocked gemm's contract at beta=0 — clear and return.
    for (std::int64_t i = 0; i < m; ++i)
      std::memset(c + i * ldc, 0, static_cast<std::size_t>(n) * sizeof(float));
    return;
  }
  const std::int64_t kp = a.k_padded;
  const std::int8_t* ac = a.codes.data();
  const std::int8_t* bc = b.codes.data();
  // Cache blocking: the inner sweep revisits one operand per outer step, so
  // group b's column tiles into ~32 KB panels that stay cache-resident while
  // every a-row tile streams past once per panel (instead of streaming the
  // whole b pack once per a tile).
  const std::int64_t panel_tiles =
      std::max<std::int64_t>(1, 32768 / (kTile * kp));
  auto run_col_panels = [&](std::int64_t p0, std::int64_t p1) {
    for (std::int64_t p = p0; p < p1; ++p) {
      const std::int64_t jt0 = p * panel_tiles;
      const std::int64_t jt1 =
          std::min(jt0 + panel_tiles, (n + kTile - 1) / kTile);
      for (std::int64_t i = 0; i < m; i += kTile) {
        const std::int64_t mr = std::min(kTile, m - i);
        for (std::int64_t t = jt0; t < jt1; ++t) {
          const std::int64_t j = t * kTile;
          kQKernel.kernel(ac + i * kp, bc + j * kp, kp, a.scales.data() + i,
                          b.scales.data() + j, b.sums.data() + j, mr,
                          std::min(kTile, n - j), c + i * ldc + j, ldc);
        }
      }
    }
  };
  if (n >= m) {
    const std::int64_t col_tiles = (n + kTile - 1) / kTile;
    const std::int64_t panels = (col_tiles + panel_tiles - 1) / panel_tiles;
    core::parallel_for(0, panels, 1, run_col_panels);
  } else {
    // Tall-skinny outputs (eval Linear): spread row tiles instead.
    core::parallel_for(0, (m + kTile - 1) / kTile, 1,
                       [&](std::int64_t t0, std::int64_t t1) {
                         for (std::int64_t t = t0; t < t1; ++t) {
                           const std::int64_t i = t * kTile;
                           const std::int64_t mr = std::min(kTile, m - i);
                           for (std::int64_t j = 0; j < n; j += kTile)
                             kQKernel.kernel(ac + i * kp, bc + j * kp, kp,
                                             a.scales.data() + i,
                                             b.scales.data() + j,
                                             b.sums.data() + j, mr,
                                             std::min(kTile, n - j),
                                             c + i * ldc + j, ldc);
                         }
                       });
  }
}

const char* qgemm_kernel_name() { return kQKernel.name; }

bool qgemm_profitable(std::int64_t k) { return k >= 64; }

std::uint64_t content_hash_fnv1a(const void* data, std::size_t bytes) {
  // Weight tensors reach tens of MB, so the classic byte-serial FNV-1a (one
  // ~5-cycle multiply chained per byte) costs milliseconds per revalidation —
  // visible next to the GEMMs it guards. Run eight independent FNV-1a lanes
  // over interleaved 64-bit words (the multiplies pipeline across lanes,
  // ~8 bytes/cycle) and fold the lanes with one more FNV step each; the
  // byte-serial loop handles the tail. Only equality of the digest matters,
  // so the lane mixing changing the hash values is fine.
  const auto* p = static_cast<const unsigned char*>(data);
  constexpr std::uint64_t kOffset = 1469598103934665603ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t lanes[8] = {kOffset,     kOffset + 1, kOffset + 2, kOffset + 3,
                            kOffset + 4, kOffset + 5, kOffset + 6, kOffset + 7};
  std::size_t i = 0;
  for (; i + 64 <= bytes; i += 64) {
    for (int l = 0; l < 8; ++l) {
      std::uint64_t w;
      std::memcpy(&w, p + i + l * 8, 8);
      lanes[l] = (lanes[l] ^ w) * kPrime;
    }
  }
  std::uint64_t h = kOffset;
  for (int l = 0; l < 8; ++l) h = (h ^ lanes[l]) * kPrime;
  for (; i < bytes; ++i) h = (h ^ p[i]) * kPrime;
  return h;
}

double qgemm_error_bound(const QuantizedMat& a, std::int64_t i,
                         const QuantizedMat& b, std::int64_t j,
                         const float* a_row, std::int64_t a_stride,
                         const float* b_row, std::int64_t b_stride) {
  // The int32 dot is exact, so the only error is the rounding of each
  // operand to its row grid: (x+ex)(y+ey) - xy = x*ey + y*ex + ex*ey with
  // |ex| <= step_x/2. Summed over all elements of the row pair.
  const double ea = static_cast<double>(quant::error_bound(a.scale(i)));
  const double eb = static_cast<double>(quant::error_bound(b.scale(j)));
  double bound = 0.0;
  for (std::int64_t t = 0; t < a.k; ++t) {
    const double x = std::fabs(static_cast<double>(a_row[t * a_stride]));
    const double y = std::fabs(static_cast<double>(b_row[t * b_stride]));
    bound += x * eb + y * ea + ea * eb;
  }
  return bound;
}

}  // namespace fp
