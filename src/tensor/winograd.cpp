#include "tensor/winograd.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#define FP_WINOGRAD_SSE 1
#endif

namespace fp {

namespace {

/// Tiles per spatial dimension of one sample.
std::int64_t tiles_h(const Conv2dGeometry& g) { return (g.out_h() + 1) / 2; }
std::int64_t tiles_w(const Conv2dGeometry& g) { return (g.out_w() + 1) / 2; }

/// U = G g G^T for one 3x3 filter; writes the 16 coefficients strided by
/// `stride` (xi planes), G = [1,0,0; .5,.5,.5; .5,-.5,.5; 0,0,1].
void transform_filter(const float* g3, float* u, std::int64_t stride) {
  float t[4][3];  // G * g
  for (std::int64_t j = 0; j < 3; ++j) {
    const float g0 = g3[0 * 3 + j], g1 = g3[1 * 3 + j], g2 = g3[2 * 3 + j];
    t[0][j] = g0;
    t[1][j] = 0.5f * (g0 + g1 + g2);
    t[2][j] = 0.5f * (g0 - g1 + g2);
    t[3][j] = g2;
  }
  for (std::int64_t r = 0; r < 4; ++r) {  // (G g) * G^T
    const float t0 = t[r][0], t1 = t[r][1], t2 = t[r][2];
    u[(r * 4 + 0) * stride] = t0;
    u[(r * 4 + 1) * stride] = 0.5f * (t0 + t1 + t2);
    u[(r * 4 + 2) * stride] = 0.5f * (t0 - t1 + t2);
    u[(r * 4 + 3) * stride] = t2;
  }
}

/// V = B^T d B for one gathered 4x4 input tile,
/// B^T = [1,0,-1,0; 0,1,1,0; 0,-1,1,0; 0,1,0,-1].
void transform_input(const float d[4][4], float out[16]) {
  float t[4][4];  // B^T * d
  for (std::int64_t j = 0; j < 4; ++j) {
    t[0][j] = d[0][j] - d[2][j];
    t[1][j] = d[1][j] + d[2][j];
    t[2][j] = d[2][j] - d[1][j];
    t[3][j] = d[1][j] - d[3][j];
  }
  for (std::int64_t r = 0; r < 4; ++r) {  // (B^T d) * B
    out[r * 4 + 0] = t[r][0] - t[r][2];
    out[r * 4 + 1] = t[r][1] + t[r][2];
    out[r * 4 + 2] = t[r][2] - t[r][1];
    out[r * 4 + 3] = t[r][1] - t[r][3];
  }
}

/// Y = A^T m A for one 4x4 product tile, A^T = [1,1,1,0; 0,1,-1,-1].
void transform_output(const float mt[16], float y[2][2]) {
  float t[2][4];  // A^T * m
  for (std::int64_t j = 0; j < 4; ++j) {
    t[0][j] = mt[0 * 4 + j] + mt[1 * 4 + j] + mt[2 * 4 + j];
    t[1][j] = mt[1 * 4 + j] - mt[2 * 4 + j] - mt[3 * 4 + j];
  }
  for (std::int64_t r = 0; r < 2; ++r) {
    y[r][0] = t[r][0] + t[r][1] + t[r][2];
    y[r][1] = t[r][1] - t[r][2] - t[r][3];
  }
}

#ifdef FP_WINOGRAD_SSE

// SSE lane-parallel variants of the transforms (baseline x86-64 ISA, no
// dispatch needed). The arithmetic is identical to the scalar versions —
// same adds in the same order, just on 4 independent lanes (4 channels for
// the input transform, 4 tiles for the output transform) — so vector and
// scalar paths produce bit-identical results.

/// V = B^T d B on 4 lanes at once.
void transform_input_x4(const __m128 d[4][4], __m128 out[16]) {
  __m128 t[4][4];  // B^T * d
  for (std::int64_t j = 0; j < 4; ++j) {
    t[0][j] = _mm_sub_ps(d[0][j], d[2][j]);
    t[1][j] = _mm_add_ps(d[1][j], d[2][j]);
    t[2][j] = _mm_sub_ps(d[2][j], d[1][j]);
    t[3][j] = _mm_sub_ps(d[1][j], d[3][j]);
  }
  for (std::int64_t r = 0; r < 4; ++r) {
    out[r * 4 + 0] = _mm_sub_ps(t[r][0], t[r][2]);
    out[r * 4 + 1] = _mm_add_ps(t[r][1], t[r][2]);
    out[r * 4 + 2] = _mm_sub_ps(t[r][2], t[r][1]);
    out[r * 4 + 3] = _mm_sub_ps(t[r][1], t[r][3]);
  }
}

/// Y = A^T m A on 4 lanes at once.
void transform_output_x4(const __m128 mt[16], __m128 y[2][2]) {
  __m128 t[2][4];
  for (std::int64_t j = 0; j < 4; ++j) {
    t[0][j] = _mm_add_ps(_mm_add_ps(mt[0 * 4 + j], mt[1 * 4 + j]), mt[2 * 4 + j]);
    t[1][j] = _mm_sub_ps(_mm_sub_ps(mt[1 * 4 + j], mt[2 * 4 + j]), mt[3 * 4 + j]);
  }
  for (std::int64_t r = 0; r < 2; ++r) {
    y[r][0] = _mm_add_ps(_mm_add_ps(t[r][0], t[r][1]), t[r][2]);
    y[r][1] = _mm_sub_ps(_mm_sub_ps(t[r][1], t[r][2]), t[r][3]);
  }
}

#endif  // FP_WINOGRAD_SSE

}  // namespace

bool winograd_eligible(const Conv2dGeometry& g) {
  return g.kernel == 3 && g.stride == 1 && g.out_h() >= 1 && g.out_w() >= 1;
}

bool winograd_int8_profitable(std::int64_t ic) { return ic >= 96; }

bool winograd_profitable(const Conv2dGeometry& g, bool use_int8) {
  if (g.in_channels < 16) return false;
  if (use_int8 && winograd_int8_profitable(g.in_channels)) return true;
  return tiles_h(g) * tiles_w(g) >= 4;
}

std::int64_t winograd_tiles(const Conv2dGeometry& g, std::int64_t batch) {
  return batch * tiles_h(g) * tiles_w(g);
}

std::int64_t winograd_v_elems(const Conv2dGeometry& g, std::int64_t batch) {
  return 16 * winograd_tiles(g, batch) * g.in_channels;
}

std::int64_t winograd_m_elems(const Conv2dGeometry& g, std::int64_t batch) {
  return 16 * winograd_tiles(g, batch) * g.out_channels;
}

void winograd_build_plan(const float* weights, std::int64_t oc, std::int64_t ic,
                         bool with_int8, WinogradPlan& plan) {
  plan.oc = oc;
  plan.ic = ic;
  const std::int64_t plane = oc * ic;
  plan.u.resize(static_cast<std::size_t>(16 * plane));
  core::parallel_for(0, oc, 4, [&](std::int64_t o0, std::int64_t o1) {
    for (std::int64_t o = o0; o < o1; ++o)
      for (std::int64_t c = 0; c < ic; ++c)
        transform_filter(weights + (o * ic + c) * 9, plan.u.data() + o * ic + c,
                         plane);
  });
  plan.uq.clear();
  if (with_int8 && winograd_int8_profitable(ic)) {
    plan.uq.resize(16);
    for (std::int64_t xi = 0; xi < 16; ++xi)
      quantize_rows_int8(plan.u.data() + xi * plane, oc, ic, ic, plan.uq[xi]);
  }
}

void winograd_conv_forward(const Conv2dGeometry& g, const float* x,
                           std::int64_t batch, const WinogradPlan& plan,
                           const float* bias, float* out, bool use_int8,
                           float* v, float* m) {
  FP_TRACE_KERNEL("winograd_conv", "batch", batch);
  static obs::Counter& calls = obs::counter("kernel.winograd_calls");
  calls.add();
  const std::int64_t ic = g.in_channels, oc = g.out_channels;
  const std::int64_t h = g.in_h, w = g.in_w;
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t th = tiles_h(g), tw = tiles_w(g);
  const std::int64_t tiles_per_sample = th * tw;
  const std::int64_t tiles = batch * tiles_per_sample;
  const std::int64_t in_plane = h * w;
  const std::int64_t v_plane = tiles * ic;   // one xi slab of V
  const std::int64_t m_plane = tiles * oc;   // one xi slab of M

  // Gather + input transform: tile t, channel c -> V[xi][t * ic + c]. Each
  // tile covers input rows [2*ty - pad, 2*ty - pad + 4) (same for columns);
  // out-of-bounds taps are zero, matching im2col's padding. The 16 xi values
  // of a whole tile are staged in a [16, ic] buffer so the scatter into the
  // xi slabs becomes 16 contiguous ic-float runs per tile instead of 16
  // single-float writes per channel (the slabs are v_plane apart — unstaged,
  // every write is its own cache line).
  core::parallel_for(0, tiles, 8, [&](std::int64_t t0, std::int64_t t1) {
    std::vector<float> buf(static_cast<std::size_t>(16 * ic));
    float d[4][4];
    float tv[16];
    for (std::int64_t t = t0; t < t1; ++t) {
      const std::int64_t s = t / tiles_per_sample;
      const std::int64_t ty = (t % tiles_per_sample) / tw;
      const std::int64_t tx = t % tw;
      const std::int64_t y0 = 2 * ty - g.padding;
      const std::int64_t x0 = 2 * tx - g.padding;
      const float* sample = x + s * ic * in_plane;
      const bool interior =
          y0 >= 0 && y0 + 4 <= h && x0 >= 0 && x0 + 4 <= w;
      std::int64_t c = 0;
#ifdef FP_WINOGRAD_SSE
      if (interior) {
        // 4 channels per step: transpose the 4x(4 floats) gathers into
        // channel-lane SoA form, transform all 4 lanes at once, and store
        // each xi's 4 channel values contiguously into the stage.
        for (; c + 4 <= ic; c += 4) {
          const float* base = sample + c * in_plane + y0 * w + x0;
          __m128 dv[4][4];
          for (std::int64_t r = 0; r < 4; ++r) {
            __m128 a0 = _mm_loadu_ps(base + r * w);
            __m128 a1 = _mm_loadu_ps(base + in_plane + r * w);
            __m128 a2 = _mm_loadu_ps(base + 2 * in_plane + r * w);
            __m128 a3 = _mm_loadu_ps(base + 3 * in_plane + r * w);
            _MM_TRANSPOSE4_PS(a0, a1, a2, a3);
            dv[r][0] = a0;
            dv[r][1] = a1;
            dv[r][2] = a2;
            dv[r][3] = a3;
          }
          __m128 tvv[16];
          transform_input_x4(dv, tvv);
          for (std::int64_t xi = 0; xi < 16; ++xi)
            _mm_storeu_ps(buf.data() + xi * ic + c, tvv[xi]);
        }
      }
#endif
      for (; c < ic; ++c) {
        const float* chan = sample + c * in_plane;
        if (interior) {
          const float* row = chan + y0 * w + x0;
          for (std::int64_t r = 0; r < 4; ++r, row += w) {
            d[r][0] = row[0];
            d[r][1] = row[1];
            d[r][2] = row[2];
            d[r][3] = row[3];
          }
        } else {
          for (std::int64_t r = 0; r < 4; ++r) {
            const std::int64_t iy = y0 + r;
            if (iy < 0 || iy >= h) {
              d[r][0] = d[r][1] = d[r][2] = d[r][3] = 0.0f;
              continue;
            }
            const float* row = chan + iy * w;
            for (std::int64_t q = 0; q < 4; ++q) {
              const std::int64_t ix = x0 + q;
              d[r][q] = (ix >= 0 && ix < w) ? row[ix] : 0.0f;
            }
          }
        }
        transform_input(d, tv);
        for (std::int64_t xi = 0; xi < 16; ++xi) buf[xi * ic + c] = tv[xi];
      }
      for (std::int64_t xi = 0; xi < 16; ++xi)
        std::memcpy(v + xi * v_plane + t * ic, buf.data() + xi * ic,
                    static_cast<std::size_t>(ic) * sizeof(float));
    }
  });

  // 16 independent tile GEMMs: M[xi] [oc, tiles] = U[xi] [oc, ic] * V[xi]^T.
  // Each call parallelizes internally over the pool, so the xi loop stays
  // sequential (deterministic and cache-friendly on the V slabs).
  if (use_int8 && winograd_int8_profitable(ic)) {
    thread_local QuantizedMat vq;
    for (std::int64_t xi = 0; xi < 16; ++xi) {
      quantize_rows_int8(v + xi * v_plane, tiles, ic, ic, vq);
      qgemm_nt(oc, tiles, plan.uq[static_cast<std::size_t>(xi)], vq,
               m + xi * m_plane, tiles);
    }
  } else {
    for (std::int64_t xi = 0; xi < 16; ++xi)
      gemm(false, true, oc, tiles, ic, 1.0f, plan.u.data() + xi * oc * ic,
           v + xi * v_plane, 0.0f, m + xi * m_plane);
  }

  // Output transform + bias, clipping the 2x2 patch at the edges. Tiles are
  // processed in blocks: for each (output channel, tile block) the 16 xi
  // planes of M are copied with contiguous reads into a [16, block] stage,
  // turning the naive gather (16 reads m_plane apart per tile) into 16
  // streaming runs per block.
  constexpr std::int64_t kTileBlock = 32;
  core::parallel_for(0, tiles, 8, [&](std::int64_t t0, std::int64_t t1) {
    float stage[16 * kTileBlock];
    float mt[16];
    float y[2][2];
    for (std::int64_t tb = t0; tb < t1; tb += kTileBlock) {
      const std::int64_t tn = std::min(kTileBlock, t1 - tb);
      for (std::int64_t o = 0; o < oc; ++o) {
        for (std::int64_t xi = 0; xi < 16; ++xi)
          std::memcpy(stage + xi * kTileBlock, m + xi * m_plane + o * tiles + tb,
                      static_cast<std::size_t>(tn) * sizeof(float));
        const float b = bias != nullptr ? bias[o] : 0.0f;
        auto scatter = [&](std::int64_t t, const float yt[2][2]) {
          const std::int64_t s = t / tiles_per_sample;
          const std::int64_t ty = (t % tiles_per_sample) / tw;
          const std::int64_t tx = t % tw;
          float* chan = out + (s * oc + o) * oh * ow;
          for (std::int64_t r = 0; r < 2; ++r) {
            const std::int64_t oy = 2 * ty + r;
            if (oy >= oh) break;
            for (std::int64_t q = 0; q < 2; ++q) {
              const std::int64_t ox = 2 * tx + q;
              if (ox >= ow) break;
              chan[oy * ow + ox] = yt[r][q] + b;
            }
          }
        };
        std::int64_t tt = 0;
#ifdef FP_WINOGRAD_SSE
        // 4 tiles per step: the stage rows are tile-contiguous, so the 16
        // loads are plain vectors and the transform runs on 4 tile lanes.
        for (; tt + 4 <= tn; tt += 4) {
          __m128 mtv[16];
          for (std::int64_t xi = 0; xi < 16; ++xi)
            mtv[xi] = _mm_loadu_ps(stage + xi * kTileBlock + tt);
          __m128 yv[2][2];
          transform_output_x4(mtv, yv);
          alignas(16) float yl[2][2][4];
          for (std::int64_t r = 0; r < 2; ++r)
            for (std::int64_t q = 0; q < 2; ++q)
              _mm_store_ps(yl[r][q], yv[r][q]);
          for (std::int64_t l = 0; l < 4; ++l) {
            const float yt[2][2] = {{yl[0][0][l], yl[0][1][l]},
                                    {yl[1][0][l], yl[1][1][l]}};
            scatter(tb + tt + l, yt);
          }
        }
#endif
        for (; tt < tn; ++tt) {
          for (std::int64_t xi = 0; xi < 16; ++xi)
            mt[xi] = stage[xi * kTileBlock + tt];
          transform_output(mt, y);
          scatter(tb + tt, y);
        }
      }
    }
  });
}

}  // namespace fp
