#include "tensor/ops.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace fp {

namespace {
void check_2d(const Tensor& t, const char* what) {
  if (t.ndim() != 2) throw std::invalid_argument(std::string(what) + ": want 2-D");
}
}  // namespace

void gemm_reference(bool transpose_a, bool transpose_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha, const float* a,
                    const float* b, float beta, float* c) {
  // Degenerate-dim contract, identical to the blocked gemm (and qgemm): an
  // empty output is a no-op, an empty reduction applies beta and skips the
  // product entirely (so alpha == 0 never reads A/B — no NaN propagation).
  if (m <= 0 || n <= 0) return;
  // Scale / clear the destination first so the kernels can accumulate.
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (k <= 0 || alpha == 0.0f) return;
  if (!transpose_a && !transpose_b) {
    // A[m,k] * B[k,n]: i-k-j streams rows of B — cache friendly.
    for (std::int64_t i = 0; i < m; ++i) {
      float* ci = c + i * n;
      const float* ai = a + i * k;
      for (std::int64_t p = 0; p < k; ++p) {
        const float av = alpha * ai[p];
        const float* bp = b + p * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  } else if (transpose_a && !transpose_b) {
    // A stored [k,m]; op(A)[i,p] = A[p,i].
    for (std::int64_t p = 0; p < k; ++p) {
      const float* ap = a + p * m;
      const float* bp = b + p * n;
      for (std::int64_t i = 0; i < m; ++i) {
        const float av = alpha * ap[i];
        float* ci = c + i * n;
        for (std::int64_t j = 0; j < n; ++j) ci[j] += av * bp[j];
      }
    }
  } else if (!transpose_a && transpose_b) {
    // B stored [n,k]; op(B)[p,j] = B[j,p]. Dot products of rows — good locality.
    for (std::int64_t i = 0; i < m; ++i) {
      const float* ai = a + i * k;
      float* ci = c + i * n;
      for (std::int64_t j = 0; j < n; ++j) {
        const float* bj = b + j * k;
        double acc = 0.0;
        for (std::int64_t p = 0; p < k; ++p) acc += static_cast<double>(ai[p]) * bj[p];
        ci[j] += alpha * static_cast<float>(acc);
      }
    }
  } else {
    // Rare in this library; do it the simple way.
    for (std::int64_t i = 0; i < m; ++i)
      for (std::int64_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (std::int64_t p = 0; p < k; ++p)
          acc += static_cast<double>(a[p * m + i]) * b[j * k + p];
        c[i * n + j] += alpha * static_cast<float>(acc);
      }
  }
}

void im2col(const Conv2dGeometry& g, const float* image, float* columns) {
  im2col(g, image, columns, g.col_cols());
}

void im2col(const Conv2dGeometry& g, const float* image, float* columns,
            std::int64_t ld) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t plane = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    const float* chan = image + c * plane;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        float* dst = columns + row * ld;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) {
            std::memset(dst + y * ow, 0, static_cast<std::size_t>(ow) * sizeof(float));
            continue;
          }
          const float* src_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.padding;
            dst[y * ow + x] =
                (ix >= 0 && ix < g.in_w) ? src_row[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const Conv2dGeometry& g, const float* columns, float* image) {
  col2im(g, columns, image, g.col_cols());
}

void col2im(const Conv2dGeometry& g, const float* columns, float* image,
            std::int64_t ld) {
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t plane = g.in_h * g.in_w;
  std::int64_t row = 0;
  for (std::int64_t c = 0; c < g.in_channels; ++c) {
    float* chan = image + c * plane;
    for (std::int64_t kh = 0; kh < g.kernel; ++kh) {
      for (std::int64_t kw = 0; kw < g.kernel; ++kw, ++row) {
        const float* src = columns + row * ld;
        for (std::int64_t y = 0; y < oh; ++y) {
          const std::int64_t iy = y * g.stride + kh - g.padding;
          if (iy < 0 || iy >= g.in_h) continue;
          float* dst_row = chan + iy * g.in_w;
          for (std::int64_t x = 0; x < ow; ++x) {
            const std::int64_t ix = x * g.stride + kw - g.padding;
            if (ix >= 0 && ix < g.in_w) dst_row[ix] += src[y * ow + x];
          }
        }
      }
    }
  }
}

Tensor softmax(const Tensor& logits) {
  check_2d(logits, "softmax");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor out = logits;
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = out.data() + i * c;
    const float mx = *std::max_element(row, row + c);
    double denom = 0.0;
    for (std::int64_t j = 0; j < c; ++j) {
      row[j] = std::exp(row[j] - mx);
      denom += row[j];
    }
    const float inv = static_cast<float>(1.0 / denom);
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv;
  }
  return out;
}

float cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check_2d(logits, "cross_entropy");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  if (static_cast<std::int64_t>(labels.size()) != n)
    throw std::invalid_argument("cross_entropy: label count mismatch");
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const float mx = *std::max_element(row, row + c);
    double lse = 0.0;
    for (std::int64_t j = 0; j < c; ++j) lse += std::exp(row[j] - mx);
    loss += std::log(lse) + mx - row[labels[static_cast<std::size_t>(i)]];
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::int64_t>& labels) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor grad = softmax(logits);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = grad.data() + i * c;
    row[labels[static_cast<std::size_t>(i)]] -= 1.0f;
    for (std::int64_t j = 0; j < c; ++j) row[j] *= inv_n;
  }
  return grad;
}

float soft_cross_entropy(const Tensor& logits, const Tensor& targets) {
  check_2d(logits, "soft_cross_entropy");
  if (!logits.same_shape(targets))
    throw std::invalid_argument("soft_cross_entropy: shape mismatch");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const float* t = targets.data() + i * c;
    const float mx = *std::max_element(row, row + c);
    double lse = 0.0;
    for (std::int64_t j = 0; j < c; ++j) lse += std::exp(row[j] - mx);
    const double log_z = std::log(lse) + mx;
    for (std::int64_t j = 0; j < c; ++j) loss += t[j] * (log_z - row[j]);
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor soft_cross_entropy_grad(const Tensor& logits, const Tensor& targets) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor grad = softmax(logits);
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    float* row = grad.data() + i * c;
    const float* t = targets.data() + i * c;
    for (std::int64_t j = 0; j < c; ++j) row[j] = (row[j] - t[j]) * inv_n;
  }
  return grad;
}

namespace {
struct DlrRowInfo {
  std::int64_t top1, top3, runner_up;  // runner_up = argmax over i != y
  float numer, denom;
};

DlrRowInfo dlr_row(const float* row, std::int64_t c, std::int64_t y) {
  // Fixed top-3 scan: this runs once per sample per AutoAttack iteration, so
  // no per-row allocation or partial_sort. Ties keep the lowest index.
  std::int64_t i1 = -1, i2 = -1, i3 = -1;
  for (std::int64_t j = 0; j < c; ++j) {
    const float v = row[j];
    if (i1 < 0 || v > row[i1]) {
      i3 = i2;
      i2 = i1;
      i1 = j;
    } else if (i2 < 0 || v > row[i2]) {
      i3 = i2;
      i2 = j;
    } else if (i3 < 0 || v > row[i3]) {
      i3 = j;
    }
  }
  DlrRowInfo info{};
  info.top1 = i1;
  info.top3 = c >= 3 ? i3 : (c == 2 ? i2 : i1);
  info.runner_up = (i1 != y) ? i1 : i2;
  info.numer = row[y] - row[info.runner_up];
  info.denom = row[info.top1] - row[info.top3];
  if (info.denom < 1e-12f) info.denom = 1e-12f;
  return info;
}
}  // namespace

float dlr_loss(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  check_2d(logits, "dlr_loss");
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  if (c < 3) throw std::invalid_argument("dlr_loss: needs >= 3 classes");
  double loss = 0.0;
  for (std::int64_t i = 0; i < n; ++i) {
    const auto info =
        dlr_row(logits.data() + i * c, c, labels[static_cast<std::size_t>(i)]);
    loss += -static_cast<double>(info.numer) / info.denom;
  }
  return static_cast<float>(loss / static_cast<double>(n));
}

Tensor dlr_loss_grad(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  const std::int64_t n = logits.dim(0), c = logits.dim(1);
  Tensor grad({n, c});
  const float inv_n = 1.0f / static_cast<float>(n);
  for (std::int64_t i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const std::int64_t y = labels[static_cast<std::size_t>(i)];
    const auto info = dlr_row(row, c, y);
    float* g = grad.data() + i * c;
    // L = -numer/denom; dL = (-d numer * denom + numer * d denom) / denom^2.
    const float inv_d = 1.0f / info.denom;
    g[y] -= inv_d;                // from d numer at y
    g[info.runner_up] += inv_d;   // from d numer at runner-up
    const float dd = info.numer * inv_d * inv_d;
    g[info.top1] += dd;           // from d denom at pi_1
    g[info.top3] -= dd;           // from d denom at pi_3
    for (std::int64_t j = 0; j < c; ++j) g[j] *= inv_n;
  }
  return grad;
}

double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels) {
  const auto preds = logits.argmax_rows();
  if (preds.empty()) return 0.0;
  std::size_t correct = 0;
  for (std::size_t i = 0; i < preds.size(); ++i)
    if (preds[i] == labels[i]) ++correct;
  return static_cast<double>(correct) / static_cast<double>(preds.size());
}

}  // namespace fp
