// Cache-blocked, panel-packed SGEMM (Goto-style), the single dense kernel
// every layer, attack, and baseline funnels through.
//
// Loop structure (BLIS nomenclature):
//   for jc in N by NC          -- C/B column panel
//     for pc in K by KC        -- rank-KC update, B panel packed once
//       for ic in M by MC      -- A block packed per worker  <- parallel
//         for jr in NC by NR   -- micro-panel of packed B
//           for ir in MC by MR -- micro-panel of packed A -> MRxNR microkernel
//
// Packing folds the four transpose variants into one kernel: op(A)/op(B)
// element access happens only in pack_a/pack_b, and the microkernel always
// consumes the same contiguous micro-panel layout.
//
// Three register-tiled microkernels are compiled via function-level target
// attributes and selected once at startup with __builtin_cpu_supports:
//   AVX-512F 14x32, AVX2+FMA 6x16, portable 6x16 (baseline fallback).
// The blocking constants travel with the kernel so each variant keeps its
// packed panels inside L1/L2.
//
// Determinism: each C element accumulates in k-ascending order across KC
// panels, entirely within one (ic, jr) tile owned by one chunk; the thread
// count only changes which thread computes a tile, never the summation
// order. See core/parallel.hpp for the pool-wide contract.
#include <algorithm>
#include <cstring>
#include <vector>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "tensor/ops.hpp"

#if defined(__x86_64__) && defined(__GNUC__)
#include <immintrin.h>
#define FP_GEMM_X86 1
#endif

namespace fp {

namespace {

using MicroKernel = void (*)(std::int64_t kb, const float* pa, const float* pb,
                             float* c, std::int64_t ldc, float alpha,
                             std::int64_t rows, std::int64_t cols);

struct KernelConfig {
  std::int64_t mr, nr;  ///< microkernel tile
  std::int64_t kc, mc, nc;  ///< cache blocking (L1 / L2 / L3 resident panels)
  MicroKernel kernel;
};

inline std::int64_t round_up(std::int64_t x, std::int64_t to) {
  return (x + to - 1) / to * to;
}

/// Packs op(A)[i0:i0+mb, p0:p0+kb] into mr-row micro-panels, zero-padding the
/// ragged last panel so the microkernel never branches on row count.
void pack_a(const float* a, bool ta, std::int64_t m, std::int64_t k,
            std::int64_t i0, std::int64_t mb, std::int64_t p0, std::int64_t kb,
            std::int64_t mr, float* dst) {
  for (std::int64_t ir = 0; ir < mb; ir += mr) {
    const std::int64_t rows = std::min(mr, mb - ir);
    if (!ta) {
      for (std::int64_t p = 0; p < kb; ++p) {
        for (std::int64_t r = 0; r < rows; ++r)
          dst[p * mr + r] = a[(i0 + ir + r) * k + p0 + p];
        for (std::int64_t r = rows; r < mr; ++r) dst[p * mr + r] = 0.0f;
      }
    } else {
      // A stored [k, m]: rows of op(A) are contiguous along p's stride m.
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* ap = a + (p0 + p) * m + i0 + ir;
        for (std::int64_t r = 0; r < rows; ++r) dst[p * mr + r] = ap[r];
        for (std::int64_t r = rows; r < mr; ++r) dst[p * mr + r] = 0.0f;
      }
    }
    dst += mr * kb;
  }
}

/// Packs op(B)[p0:p0+kb, j0:j0+nb] into nr-column micro-panels, zero-padded.
void pack_b(const float* b, bool tb, std::int64_t k, std::int64_t n,
            std::int64_t p0, std::int64_t kb, std::int64_t j0, std::int64_t nb,
            std::int64_t nr, float* dst) {
  for (std::int64_t jr = 0; jr < nb; jr += nr) {
    const std::int64_t cols = std::min(nr, nb - jr);
    if (!tb) {
      for (std::int64_t p = 0; p < kb; ++p) {
        const float* bp = b + (p0 + p) * n + j0 + jr;
        for (std::int64_t c = 0; c < cols; ++c) dst[p * nr + c] = bp[c];
        for (std::int64_t c = cols; c < nr; ++c) dst[p * nr + c] = 0.0f;
      }
    } else {
      // B stored [n, k]: op(B) columns are contiguous rows of the storage.
      for (std::int64_t c = 0; c < cols; ++c) {
        const float* bc = b + (j0 + jr + c) * k + p0;
        for (std::int64_t p = 0; p < kb; ++p) dst[p * nr + c] = bc[p];
      }
      for (std::int64_t c = cols; c < nr; ++c)
        for (std::int64_t p = 0; p < kb; ++p) dst[p * nr + c] = 0.0f;
    }
    dst += nr * kb;
  }
}

// ---- portable 6x16 microkernel ---------------------------------------------

constexpr std::int64_t GEN_MR = 6, GEN_NR = 16;

void kernel_generic(std::int64_t kb, const float* pa, const float* pb, float* c,
                    std::int64_t ldc, float alpha, std::int64_t rows,
                    std::int64_t cols) {
  float acc[GEN_MR][GEN_NR] = {};
  for (std::int64_t p = 0; p < kb; ++p) {
    const float* ap = pa + p * GEN_MR;
    const float* bp = pb + p * GEN_NR;
    for (std::int64_t r = 0; r < GEN_MR; ++r) {
      const float av = ap[r];
      for (std::int64_t j = 0; j < GEN_NR; ++j) acc[r][j] += av * bp[j];
    }
  }
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t j = 0; j < cols; ++j) c[r * ldc + j] += alpha * acc[r][j];
}

#ifdef FP_GEMM_X86

// ---- AVX2+FMA 6x16 microkernel ---------------------------------------------

__attribute__((target("avx2,fma"))) void kernel_avx2(
    std::int64_t kb, const float* pa, const float* pb, float* c,
    std::int64_t ldc, float alpha, std::int64_t rows, std::int64_t cols) {
  __m256 acc[GEN_MR][2];
  for (std::int64_t r = 0; r < GEN_MR; ++r)
    acc[r][0] = acc[r][1] = _mm256_setzero_ps();
  for (std::int64_t p = 0; p < kb; ++p) {
    const __m256 b0 = _mm256_loadu_ps(pb + p * GEN_NR);
    const __m256 b1 = _mm256_loadu_ps(pb + p * GEN_NR + 8);
    const float* ap = pa + p * GEN_MR;
    for (std::int64_t r = 0; r < GEN_MR; ++r) {
      const __m256 av = _mm256_broadcast_ss(ap + r);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  const __m256 va = _mm256_set1_ps(alpha);
  if (rows == GEN_MR && cols == GEN_NR) {
    for (std::int64_t r = 0; r < GEN_MR; ++r) {
      float* cr = c + r * ldc;
      _mm256_storeu_ps(cr, _mm256_fmadd_ps(va, acc[r][0], _mm256_loadu_ps(cr)));
      _mm256_storeu_ps(cr + 8,
                       _mm256_fmadd_ps(va, acc[r][1], _mm256_loadu_ps(cr + 8)));
    }
    return;
  }
  alignas(32) float tile[GEN_MR][GEN_NR];
  for (std::int64_t r = 0; r < GEN_MR; ++r) {
    _mm256_store_ps(tile[r], acc[r][0]);
    _mm256_store_ps(tile[r] + 8, acc[r][1]);
  }
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t j = 0; j < cols; ++j) c[r * ldc + j] += alpha * tile[r][j];
}

// ---- AVX-512F 14x32 microkernel --------------------------------------------
// 28 zmm accumulators + 2 B vectors + 1 broadcast = 31 of 32 registers.

constexpr std::int64_t A5_MR = 14, A5_NR = 32;

__attribute__((target("avx512f"))) void kernel_avx512(
    std::int64_t kb, const float* pa, const float* pb, float* c,
    std::int64_t ldc, float alpha, std::int64_t rows, std::int64_t cols) {
  __m512 acc[A5_MR][2];
  for (std::int64_t r = 0; r < A5_MR; ++r)
    acc[r][0] = acc[r][1] = _mm512_setzero_ps();
  for (std::int64_t p = 0; p < kb; ++p) {
    const __m512 b0 = _mm512_loadu_ps(pb + p * A5_NR);
    const __m512 b1 = _mm512_loadu_ps(pb + p * A5_NR + 16);
    const float* ap = pa + p * A5_MR;
    for (std::int64_t r = 0; r < A5_MR; ++r) {
      const __m512 av = _mm512_set1_ps(ap[r]);
      acc[r][0] = _mm512_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm512_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  const __m512 va = _mm512_set1_ps(alpha);
  if (rows == A5_MR && cols == A5_NR) {
    for (std::int64_t r = 0; r < A5_MR; ++r) {
      float* cr = c + r * ldc;
      _mm512_storeu_ps(cr, _mm512_fmadd_ps(va, acc[r][0], _mm512_loadu_ps(cr)));
      _mm512_storeu_ps(
          cr + 16, _mm512_fmadd_ps(va, acc[r][1], _mm512_loadu_ps(cr + 16)));
    }
    return;
  }
  alignas(64) float tile[A5_MR][A5_NR];
  for (std::int64_t r = 0; r < A5_MR; ++r) {
    _mm512_store_ps(tile[r], acc[r][0]);
    _mm512_store_ps(tile[r] + 16, acc[r][1]);
  }
  for (std::int64_t r = 0; r < rows; ++r)
    for (std::int64_t j = 0; j < cols; ++j) c[r * ldc + j] += alpha * tile[r][j];
}

#endif  // FP_GEMM_X86

KernelConfig pick_config() {
#ifdef FP_GEMM_X86
  if (__builtin_cpu_supports("avx512f"))
    // kc keeps one packed A micro-panel (14*176*4 ~ 10 KB) plus one packed B
    // micro-panel (32*176*4 ~ 22 KB) inside a 48 KB L1d.
    return {A5_MR, A5_NR, /*kc=*/176, /*mc=*/14 * 8, /*nc=*/2048, &kernel_avx512};
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma"))
    return {GEN_MR, GEN_NR, /*kc=*/256, /*mc=*/72, /*nc=*/2048, &kernel_avx2};
#endif
  return {GEN_MR, GEN_NR, /*kc=*/256, /*mc=*/72, /*nc=*/2048, &kernel_generic};
}

const KernelConfig kCfg = pick_config();

/// Grow-only per-thread packing buffers. Safe because a nested gemm runs
/// entirely inline on its caller's thread, and worker-owned buffers are only
/// touched by their own thread.
std::vector<float>& tls_pack_a() {
  thread_local std::vector<float> buf;
  return buf;
}
std::vector<float>& tls_pack_b() {
  thread_local std::vector<float> buf;
  return buf;
}

/// All (jr, ir) tiles of one packed (A block, B panel) pair.
void run_block(const float* packed_a, std::int64_t mb, const float* packed_b,
               std::int64_t nb, std::int64_t kb, float* c_block,
               std::int64_t ldc, float alpha, std::int64_t jr_begin,
               std::int64_t jr_end) {
  for (std::int64_t jr = jr_begin; jr < jr_end; jr += kCfg.nr) {
    const float* pb = packed_b + (jr / kCfg.nr) * kCfg.nr * kb;
    const std::int64_t cols = std::min(kCfg.nr, nb - jr);
    for (std::int64_t ir = 0; ir < mb; ir += kCfg.mr) {
      const float* pa = packed_a + (ir / kCfg.mr) * kCfg.mr * kb;
      kCfg.kernel(kb, pa, pb, c_block + ir * ldc + jr, ldc, alpha,
                  std::min(kCfg.mr, mb - ir), cols);
    }
  }
}

}  // namespace

void gemm(bool transpose_a, bool transpose_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b, float beta,
          float* c) {
  FP_TRACE_KERNEL("gemm", "mnk", m * n * k);
  static obs::Counter& calls = obs::counter("kernel.gemm_calls");
  calls.add();
  if (m <= 0 || n <= 0) return;
  if (beta == 0.0f) {
    std::memset(c, 0, static_cast<std::size_t>(m * n) * sizeof(float));
  } else if (beta != 1.0f) {
    for (std::int64_t i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (k <= 0 || alpha == 0.0f) return;

  const std::int64_t row_blocks = (m + kCfg.mc - 1) / kCfg.mc;
  // Row blocks feed the pool when there are enough of them; otherwise (wide
  // outputs with few rows, the batched-conv shape) the whole A block is
  // packed once and B's column micro-panels are spread instead.
  const bool split_rows = row_blocks >= core::num_threads();

  for (std::int64_t jc = 0; jc < n; jc += kCfg.nc) {
    const std::int64_t nb = std::min(kCfg.nc, n - jc);
    for (std::int64_t pc = 0; pc < k; pc += kCfg.kc) {
      const std::int64_t kb = std::min(kCfg.kc, k - pc);
      auto& packed_b = tls_pack_b();
      packed_b.resize(static_cast<std::size_t>(round_up(nb, kCfg.nr) * kb));
      pack_b(b, transpose_b, k, n, pc, kb, jc, nb, kCfg.nr, packed_b.data());

      if (split_rows) {
        core::parallel_for(0, row_blocks, 1, [&](std::int64_t b0, std::int64_t b1) {
          auto& packed_a = tls_pack_a();
          packed_a.resize(static_cast<std::size_t>(round_up(kCfg.mc, kCfg.mr) * kb));
          for (std::int64_t blk = b0; blk < b1; ++blk) {
            const std::int64_t ic = blk * kCfg.mc;
            const std::int64_t mb = std::min(kCfg.mc, m - ic);
            pack_a(a, transpose_a, m, k, ic, mb, pc, kb, kCfg.mr, packed_a.data());
            run_block(packed_a.data(), mb, packed_b.data(), nb, kb,
                      c + ic * n + jc, n, alpha, 0, nb);
          }
        });
      } else {
        auto& packed_a = tls_pack_a();
        packed_a.resize(static_cast<std::size_t>(round_up(m, kCfg.mr) * kb));
        pack_a(a, transpose_a, m, k, 0, m, pc, kb, kCfg.mr, packed_a.data());
        const std::int64_t col_blocks = (nb + kCfg.nr - 1) / kCfg.nr;
        core::parallel_for(0, col_blocks, 1, [&](std::int64_t b0, std::int64_t b1) {
          run_block(packed_a.data(), m, packed_b.data(), nb, kb, c + jc, n,
                    alpha, b0 * kCfg.nr, std::min(nb, b1 * kCfg.nr));
        });
      }
    }
  }
}

}  // namespace fp
