#include "tensor/compute_mode.hpp"

#include <atomic>

namespace fp::compute {

namespace {
thread_local ComputeConfig g_active{};
// Starts at 1 so layers initialised with epoch 0 always revalidate on first
// use. Global (not thread-local): a layer forwarded from two pool threads
// must not see the same epoch with different weight generations.
std::atomic<std::uint64_t> g_weights_epoch{1};
}  // namespace

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kFp32: return "fp32";
    case Precision::kInt8: return "int8";
  }
  return "fp32";
}

const ComputeConfig& active() { return g_active; }

bool int8_active() { return g_active.precision == Precision::kInt8; }

bool winograd_active() { return g_active.winograd; }

std::uint64_t weights_epoch() {
  return g_weights_epoch.load(std::memory_order_relaxed);
}

InferenceScope::InferenceScope(const ComputeConfig& cfg) : prev_(g_active) {
  g_active = cfg;
  g_weights_epoch.fetch_add(1, std::memory_order_relaxed);
}

InferenceScope::~InferenceScope() { g_active = prev_; }

}  // namespace fp::compute
