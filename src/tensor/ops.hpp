// Dense kernels shared by the neural-network layers and the attacks:
// GEMM, im2col/col2im for convolution, softmax / cross-entropy, and the
// DLR loss used by AutoAttack-style evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/tensor.hpp"

namespace fp {

/// C = alpha * op(A) * op(B) + beta * C.
/// A is [M, K] after op, B is [K, N] after op, C is [M, N].
/// transpose_a / transpose_b select op(X) = X^T on the stored layout.
///
/// Cache-blocked and panel-packed (see gemm.cpp); row/column blocks are
/// spread over the shared worker pool. The floating-point summation order of
/// every C element is fixed by the blocking alone, so results are
/// bit-identical for any FP_NUM_THREADS.
void gemm(bool transpose_a, bool transpose_b, std::int64_t m, std::int64_t n,
          std::int64_t k, float alpha, const float* a, const float* b, float beta,
          float* c);

/// The seed's straightforward single-threaded loops, kept as the parity
/// oracle for the blocked kernel and as the benchmark baseline. Degenerate
/// dims follow the blocked kernel's contract exactly: m/n <= 0 is a no-op,
/// k <= 0 or alpha == 0 applies beta and skips the product.
void gemm_reference(bool transpose_a, bool transpose_b, std::int64_t m,
                    std::int64_t n, std::int64_t k, float alpha, const float* a,
                    const float* b, float beta, float* c);

struct Conv2dGeometry {
  std::int64_t in_channels = 0;
  std::int64_t out_channels = 0;
  std::int64_t kernel = 0;   ///< square kernel
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  std::int64_t in_h = 0, in_w = 0;

  std::int64_t out_h() const { return (in_h + 2 * padding - kernel) / stride + 1; }
  std::int64_t out_w() const { return (in_w + 2 * padding - kernel) / stride + 1; }
  /// Rows of the im2col matrix: C_in * K * K.
  std::int64_t col_rows() const { return in_channels * kernel * kernel; }
  /// Columns of the im2col matrix: H_out * W_out.
  std::int64_t col_cols() const { return out_h() * out_w(); }
};

/// Unfolds one image [C, H, W] into a [C*K*K, H_out*W_out] column matrix.
void im2col(const Conv2dGeometry& g, const float* image, float* columns);

/// Strided variant for batched convolution: writes the sample's columns into
/// a slice of a wider [C*K*K, ld] matrix, `ld` being the row stride of the
/// whole-minibatch column buffer (ld = N * H_out * W_out).
void im2col(const Conv2dGeometry& g, const float* image, float* columns,
            std::int64_t ld);

/// Folds a column matrix back into an image, accumulating overlaps (+=).
/// `image` must be zeroed by the caller beforehand.
void col2im(const Conv2dGeometry& g, const float* columns, float* image);

/// Strided variant matching the strided im2col (reads rows with stride ld).
void col2im(const Conv2dGeometry& g, const float* columns, float* image,
            std::int64_t ld);

/// Row-wise softmax of logits [N, C].
Tensor softmax(const Tensor& logits);

/// Mean cross-entropy over the batch; labels are class indices.
/// Numerically stable (log-sum-exp).
float cross_entropy(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Gradient of mean cross-entropy w.r.t. logits: (softmax - onehot)/N.
Tensor cross_entropy_grad(const Tensor& logits,
                          const std::vector<std::int64_t>& labels);

/// Mean cross-entropy against soft target distributions [N, C]
/// (knowledge-distillation objective). Targets must be a valid distribution.
float soft_cross_entropy(const Tensor& logits, const Tensor& targets);
Tensor soft_cross_entropy_grad(const Tensor& logits, const Tensor& targets);

/// Difference-of-Logits-Ratio loss (Croce & Hein 2020), mean over batch.
/// DLR = -(z_y - max_{i != y} z_i) / (z_pi1 - z_pi3), maximized by attacks.
float dlr_loss(const Tensor& logits, const std::vector<std::int64_t>& labels);
Tensor dlr_loss_grad(const Tensor& logits, const std::vector<std::int64_t>& labels);

/// Fraction of rows whose argmax equals the label.
double accuracy(const Tensor& logits, const std::vector<std::int64_t>& labels);

}  // namespace fp
