// Deterministic random number generation for the whole library.
//
// Every stochastic component (data synthesis, client sampling, PGD restarts,
// weight init, device degradation factors) owns its own Rng seeded from a
// single experiment seed, so experiments are reproducible bit-for-bit and
// components do not perturb each other's streams.
#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace fp {

/// xoshiro256** by Blackman & Vigna: fast, high-quality 64-bit generator.
/// Seeded through SplitMix64 so that low-entropy seeds still give good streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to fill the state.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      return z ^ (z >> 31);
    };
    for (auto& s : state_) s = next();
    have_gauss_ = false;
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(next_u64() >> 11) * 0x1.0p-53; }

  /// Uniform float in [lo, hi).
  float uniform(float lo, float hi) {
    return lo + static_cast<float>(uniform()) * (hi - lo);
  }

  /// Uniform integer in [0, n). Requires n > 0.
  std::uint64_t uniform_int(std::uint64_t n) {
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next_u64();
    __uint128_t m = static_cast<__uint128_t>(x) * n;
    std::uint64_t l = static_cast<std::uint64_t>(m);
    if (l < n) {
      std::uint64_t t = -n % n;
      while (l < t) {
        x = next_u64();
        m = static_cast<__uint128_t>(x) * n;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Standard normal via Marsaglia polar method (cached pair).
  float gaussian() {
    if (have_gauss_) {
      have_gauss_ = false;
      return cached_gauss_;
    }
    double u, v, s;
    do {
      u = 2.0 * uniform() - 1.0;
      v = 2.0 * uniform() - 1.0;
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    cached_gauss_ = static_cast<float>(v * mul);
    have_gauss_ = true;
    return static_cast<float>(u * mul);
  }

  float gaussian(float mean, float stddev) { return mean + stddev * gaussian(); }

  /// Fisher-Yates shuffle of an index vector.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(uniform_int(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child stream (e.g. one per client).
  Rng split() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

  /// Stateless stream derivation: avalanche-mixes a base seed with a stream
  /// tag so that `Rng(mix_seed(seed, tag))` is an independent stream that can
  /// be reconstructed from `(seed, tag)` alone — no generator state needs to
  /// be kept resident per tag (lazy client pools derive per-client,
  /// per-dispatch streams this way). SplitMix64 finalizer, bijective in the
  /// combined word.
  static constexpr std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t tag) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (tag + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Stateless uniform in [0, 1) from a mixed seed word (one-shot draw, no
  /// generator construction). Used by availability processes that must answer
  /// "is client k online in round t" as a pure function.
  static constexpr double mix_uniform(std::uint64_t word) {
    return static_cast<double>(mix_seed(word, 0x243f6a8885a308d3ULL) >> 11) *
           0x1.0p-53;
  }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4] = {};
  bool have_gauss_ = false;
  float cached_gauss_ = 0.0f;
};

}  // namespace fp
