#include "tensor/quant.hpp"

#include <algorithm>
#include <cmath>

namespace fp::quant {

float symmetric_levels(int bits) {
  return static_cast<float>((1 << (bits - 1)) - 1);
}

float symmetric_step(float absmax, int bits) {
  return absmax / symmetric_levels(bits);
}

float symmetric_round(float v, float step) {
  return step * std::nearbyint(v / step);
}

float error_bound(float step) { return step * 0.5f; }

AffineGrid affine_grid(float lo, float hi) {
  AffineGrid g;
  g.lo = lo;
  // A constant range encodes with scale 0 and decodes exactly to lo.
  const double range = static_cast<double>(hi) - static_cast<double>(lo);
  g.scale = static_cast<float>(range / 255.0);
  return g;
}

std::uint8_t affine_encode(const AffineGrid& g, float x) {
  double q = 0.0;
  if (g.scale > 0.0f)
    q = std::nearbyint((static_cast<double>(x) - static_cast<double>(g.lo)) /
                       static_cast<double>(g.scale));
  return static_cast<std::uint8_t>(std::clamp(q, 0.0, 255.0));
}

float affine_decode(const AffineGrid& g, std::uint8_t q) {
  return static_cast<float>(static_cast<double>(g.lo) +
                            static_cast<double>(g.scale) *
                                static_cast<double>(q));
}

void quantize_block_int8(const float* x, std::int64_t n, std::int8_t* codes,
                         float* step) {
  float absmax = 0.0f;
  for (std::int64_t i = 0; i < n; ++i) absmax = std::max(absmax, std::fabs(x[i]));
  if (absmax == 0.0f) {
    *step = 0.0f;
    for (std::int64_t i = 0; i < n; ++i) codes[i] = 0;
    return;
  }
  const float s = symmetric_step(absmax, 8);
  const float inv = 1.0f / s;
  *step = s;
  for (std::int64_t i = 0; i < n; ++i) {
    const float q = std::nearbyint(x[i] * inv);
    codes[i] = static_cast<std::int8_t>(std::clamp(q, -127.0f, 127.0f));
  }
}

}  // namespace fp::quant
