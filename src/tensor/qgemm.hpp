// Per-row quantized int8 GEMM for inference-only forwards (DESIGN.md §8).
//
// FBGEMM/QNNPACK-style format: every row of a [rows, k] matrix is quantized
// to int8 on the symmetric grid of its own absmax (quant.hpp), padded with
// zero codes to a multiple of 64 and stored 64-byte aligned, next to one
// fp32 step and the int32 sum of the row's codes. The product reduces to
//   C[i, j] = float(int32 dot of code rows i and j) * step_a[i] * step_b[j]
// — the whole k loop is exact integer arithmetic with a single fp32 rescale
// at the end, so results are bit-identical for any FP_NUM_THREADS and the
// SIMD kernels run at full int8 MAC rate with no per-block rescale inside
// the loop. Weights are quantized once and cached on the layer; activations
// are quantized on pack per forward.
//
// dpbusd multiplies unsigned x signed: the VNNI kernel biases the left
// operand by +128 (one XOR with 0x80) and subtracts 128 * sum(b codes)
// afterwards — that is what the stored code sums are for. Three kernels are
// compiled with function-level target attributes and picked once at startup
// (the PR 1 pattern): AVX-512 VNNI 4x4 tile, AVX2 (maddubs + sign trick)
// 4x2 tile, portable scalar.
#pragma once

#include <cstdint>
#include <new>
#include <vector>

#include "tensor/quant.hpp"

namespace fp {

/// 64-byte aligned storage for the packed code panels (whole cache lines,
/// and AVX-512 vectors never split a line: k_padded is a multiple of 64, so
/// every row starts aligned).
template <class T>
struct Aligned64Alloc {
  using value_type = T;
  Aligned64Alloc() = default;
  template <class U>
  Aligned64Alloc(const Aligned64Alloc<U>&) {}
  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t(64)));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t(64));
  }
  template <class U>
  friend bool operator==(const Aligned64Alloc&, const Aligned64Alloc<U>&) {
    return true;
  }
};

/// A [rows, k] matrix quantized row-wise to the symmetric int8 grid of each
/// row's absmax. Row i's codes live at codes[i * k_padded] (zero-padded
/// tail), its step at scales[i], the int32 sum of its codes at sums[i].
/// Rows are over-allocated to a multiple of the 4-row kernel tile (zero
/// codes, zero scale/sum) so the microkernels never read out of bounds.
struct QuantizedMat {
  std::int64_t rows = 0;
  std::int64_t k = 0;
  std::int64_t k_padded = 0;  ///< k rounded up to 64
  std::vector<std::int8_t, Aligned64Alloc<std::int8_t>> codes;
  std::vector<float> scales;
  std::vector<std::int32_t> sums;

  const std::int8_t* row_codes(std::int64_t i) const {
    return codes.data() + i * k_padded;
  }
  float scale(std::int64_t i) const { return scales[static_cast<std::size_t>(i)]; }
  std::int32_t sum(std::int64_t i) const { return sums[static_cast<std::size_t>(i)]; }
};

/// Quantizes the rows of a row-major [rows, k] matrix (row stride `ld`).
/// Parallelized over rows; deterministic (each row is a pure function of its
/// input). Reuses `out`'s storage across calls.
void quantize_rows_int8(const float* src, std::int64_t rows, std::int64_t k,
                        std::int64_t ld, QuantizedMat& out);

/// Quantize-on-pack of the COLUMNS of a row-major [k, n] matrix (row stride
/// `ld`) — the im2col activation pipeline: column j of the source becomes
/// row j of the pack. Streams the source twice (absmax pass, code pass) in
/// 64-column stripes so both passes read rows contiguously; bit-identical
/// to quantize_rows_int8 of the explicit transpose.
void quantize_cols_int8(const float* src, std::int64_t k, std::int64_t n,
                        std::int64_t ld, QuantizedMat& out);

/// C = A * B^T on the quantized packs: C[i, j] = dot(a row i, b row j),
/// C row-major [m, n] with row stride ldc. Degenerate dims follow the
/// blocked gemm's contract at alpha=1, beta=0: m<=0 or n<=0 is a no-op,
/// k<=0 zeroes C and returns.
void qgemm_nt(std::int64_t m, std::int64_t n, const QuantizedMat& a,
              const QuantizedMat& b, float* c, std::int64_t ldc);

/// Name of the int8 microkernel picked at startup ("avx512vnni", "avx2",
/// "generic") — surfaced by bench_micro.
const char* qgemm_kernel_name();

/// True when quantize-on-pack + qgemm beats the blocked fp32 GEMM for a
/// product of depth k. Shallow products (the 3-channel stem's im2col rows:
/// k = 27) pay the activation quantize pass and the per-tile epilogue over
/// too few MACs — measured break-even is well under 64 on VNNI, and the
/// routing layers fall back to fp32 below it (DESIGN.md §8).
bool qgemm_profitable(std::int64_t k);

/// FNV-1a (eight interleaved 64-bit lanes + byte tail) over raw bytes — the
/// layers' cheap cache key for detecting weight changes between inference
/// forwards. Revalidated once per compute::weights_epoch(), not per forward.
std::uint64_t content_hash_fnv1a(const void* data, std::size_t bytes);

/// Upper bound on |qgemm - exact fp32 dot| for one output element, from the
/// packs' stored per-row steps: the int32 dot is exact, so the element error
/// is the sum over k of the cross terms of two half-step-bounded roundings.
/// a_stride / b_stride are the strides between consecutive ELEMENTS of the
/// row (1 for a contiguous row-major row). Used by tests and documented in
/// DESIGN.md §8.
double qgemm_error_bound(const QuantizedMat& a, std::int64_t i,
                         const QuantizedMat& b, std::int64_t j,
                         const float* a_row, std::int64_t a_stride,
                         const float* b_row, std::int64_t b_stride);

}  // namespace fp
