// Winograd F(2x2,3x3) convolution for inference forwards (DESIGN.md §8).
//
// The classic minimal-filtering factorization (Lavin & Gray 2016), in the
// scatter-gather form FlexNN-style engines use on CPUs: the input is cut
// into 4x4 tiles overlapping by 2, every tile/channel is transformed with
// V = B^T d B, the cached kernel transform U = G g G^T turns the per-tile
// products into 16 independent [oc, ic] x [ic, tiles] GEMMs (reusing the
// blocked fp32 GEMM, or the int8 qgemm when that precision is active), and
// Y = A^T M A folds each product tile back to a 2x2 output patch. 3x3
// stride-1 convs drop from 9 to 16/4 = 4 multiplies per output — ~2.25x
// fewer FLOPs, and the GEMMs are large and dense.
//
// Shapes that do not fit (kernel != 3, stride != 1) fall back to im2col; the
// caller checks winograd_eligible first. Overhanging tiles at the right and
// bottom edges are zero-filled on gather and clipped on scatter.
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/qgemm.hpp"

namespace fp {

/// True when the geometry can run through F(2x2,3x3).
bool winograd_eligible(const Conv2dGeometry& g);

/// True when running the 16 tile GEMMs on int8 packs beats fp32. Each tile
/// GEMM has k = ic, so narrow layers amortize the quantize-on-pack pass and
/// the per-tile epilogue over too few MACs — measured break-even is around
/// 96 input channels (DESIGN.md §8); below it the int8 request silently
/// keeps the fp32 tile GEMMs (the im2col path still quantizes, its k is
/// 9*ic).
bool winograd_int8_profitable(std::int64_t ic);

/// True when routing an eligible conv through Winograd actually beats the
/// fp32 im2col path (the gate Conv2d::forward_inference applies on top of
/// winograd_eligible; callers driving winograd_conv_forward directly are
/// not gated). Two measured failure modes (DESIGN.md §8):
///  - stem-like layers (ic < 16): the tile GEMMs have k = ic, so the
///    transform overhead swamps the 2.25x multiply saving;
///  - with fp32 tile GEMMs, < 4 tiles per sample (e.g. 2x2 feature maps):
///    sixteen n = tiles GEMMs lose to one wide im2col GEMM. Int8 tile GEMMs
///    (ic >= 96) stay profitable even there — quantize-on-pack is cheap and
///    the VNNI kernel is far from its efficiency cliff at those shapes.
bool winograd_profitable(const Conv2dGeometry& g, bool use_int8);

/// The precomputed kernel-transform state a Conv2d caches across forwards
/// (rebuilt only when the weights change; int8 packs built on first use).
struct WinogradPlan {
  std::int64_t oc = 0, ic = 0;
  /// U = G g G^T, stored xi-major: u[xi * oc * ic + o * ic + c], xi in [0,16).
  std::vector<float> u;
  /// Per-xi int8 packs of U (rows = oc, k = ic); empty until int8 is used.
  std::vector<QuantizedMat> uq;
};

/// (Re)builds the fp32 kernel transform from weights [oc, ic, 3, 3]; adds
/// the int8 packs when `with_int8` is set (they are kept if already built).
void winograd_build_plan(const float* weights, std::int64_t oc, std::int64_t ic,
                         bool with_int8, WinogradPlan& plan);

/// Tile grid of one sample: ceil(out/2) tiles per spatial dimension.
std::int64_t winograd_tiles(const Conv2dGeometry& g, std::int64_t batch);

/// Workspace element counts for the caller-owned scratch buffers.
std::int64_t winograd_v_elems(const Conv2dGeometry& g, std::int64_t batch);
std::int64_t winograd_m_elems(const Conv2dGeometry& g, std::int64_t batch);

/// Batched forward: x is NCHW [batch, ic, h, w], out is [batch, oc, oh, ow]
/// (overwritten), bias may be null. `v` and `m` must hold winograd_v_elems /
/// winograd_m_elems floats. With `use_int8`, the 16 tile GEMMs run on the
/// quantized packs (plan must have been built with with_int8).
void winograd_conv_forward(const Conv2dGeometry& g, const float* x,
                           std::int64_t batch, const WinogradPlan& plan,
                           const float* bias, float* out, bool use_int8,
                           float* v, float* m);

}  // namespace fp
