// Precision routing for inference-only forwards (DESIGN.md §8).
//
// The cascade's frozen-prefix forward and every evaluation pass are pure
// inference: no backward ever runs through them, so they may use the int8
// GEMM and Winograd kernels. Gradient-carrying forwards must stay on the
// fp32 blocked GEMM (backward reuses the forward's im2col scratch, and
// training trajectories must remain bit-identical by default).
//
// The selection is a thread-local scope: a call site that is about to run an
// inference-only forward activates its ComputeConfig with an InferenceScope;
// Conv2d/Linear::forward consult active() and dispatch. The default scope is
// {fp32, no winograd}, so code that never opens a scope is unchanged. The
// scope is thread-local because client training tasks run concurrently on
// the shared worker pool — each client's eval must not leak its mode into a
// neighbour's backward pass.
#pragma once

#include <cstdint>

namespace fp::compute {

enum class Precision : std::uint8_t {
  kFp32,  ///< PR 1 blocked fp32 GEMM (default; bit-identical history)
  kInt8,  ///< block-quantized int8 GEMM with fp32 accumulation
};

const char* precision_name(Precision p);

struct ComputeConfig {
  Precision precision = Precision::kFp32;
  /// Winograd F(2x2,3x3) for eligible 3x3 stride-1 convolutions.
  bool winograd = false;
};

/// The mode Conv2d/Linear forwards consult on this thread.
const ComputeConfig& active();

/// True when the active scope requests the quantized / transformed kernels.
bool int8_active();
bool winograd_active();

/// Monotonic counter bumped every time an InferenceScope is entered. Layer
/// weights must not change while a scope is active (backward throws through
/// inference forwards, and optimizer/aggregation steps never run inside one),
/// so layers revalidate their cached weight packs — the content hash that
/// guards the quantized/Winograd plans — at most once per epoch instead of
/// on every forward.
std::uint64_t weights_epoch();

/// RAII activation of a ComputeConfig for the enclosing inference block.
/// Restores the previous thread-local mode on destruction (scopes nest).
class InferenceScope {
 public:
  explicit InferenceScope(const ComputeConfig& cfg);
  ~InferenceScope();
  InferenceScope(const InferenceScope&) = delete;
  InferenceScope& operator=(const InferenceScope&) = delete;

 private:
  ComputeConfig prev_;
};

/// Documented bound on the clean-accuracy delta between an int8(+Winograd)
/// evaluation and the fp32 evaluation of the same model on the paper's bench
/// scenarios (tests/test_quant_kernels.cpp and the CI smoke enforce it).
inline constexpr double kInt8EvalAccuracyBound = 0.03;

}  // namespace fp::compute
