// The library's single quantization-grid implementation.
//
// Every quantizer in the repo rounds to one of two grids:
//   * symmetric: x ~ step * q, q in [-L, L]  (fake-quantized training, and
//     the int8 GEMM packs, where L = 127), and
//   * affine:    x ~ lo + scale * q, q in [0, 255]  (the wire codec, which
//     must cover asymmetric blob ranges exactly at the endpoints).
// Both share one error bound: a nearest-rounding grid is off by at most half
// a step. nn::fake_quantize, comm::Int8Codec, and the qgemm packing all build
// on these helpers so the grids cannot drift apart.
#pragma once

#include <cstdint>

namespace fp::quant {

/// Elements per quantization block of the int8 GEMM packs. One fp32 scale is
/// stored per block, so quantization error tracks the local dynamic range
/// instead of the whole row's. 32 = one AVX2 int8 vector per block.
inline constexpr std::int64_t kBlock = 32;

/// Signed levels per side of the symmetric `bits` grid: 2^(bits-1) - 1.
/// int8 uses ±127 (never -128, which would overflow the maddubs kernels).
float symmetric_levels(int bits);

/// Step of the symmetric grid spanning [-absmax, absmax] at `bits`.
float symmetric_step(float absmax, int bits);

/// Rounds one value to the symmetric grid (returns the dequantized value).
float symmetric_round(float v, float step);

/// Max elementwise deviation of nearest-rounding to a grid with this step.
float error_bound(float step);

/// The affine 8-bit grid of the wire codec: x ~ lo + scale * q, q in
/// [0, 255]. Parameters are derived in double precision so encode/decode are
/// reproducible across compilers (the codec's historical convention).
struct AffineGrid {
  float lo = 0.0f;
  float scale = 0.0f;
  /// Half a step — the codec's documented round-trip error bound.
  double max_error() const { return static_cast<double>(scale) * 0.5; }
};

AffineGrid affine_grid(float lo, float hi);
std::uint8_t affine_encode(const AffineGrid& g, float x);
float affine_decode(const AffineGrid& g, std::uint8_t q);

/// Quantizes `n` floats to int8 codes in [-127, 127] on the symmetric grid of
/// their absmax; writes the dequantization step (0 for an all-zero block).
/// This is the per-block primitive of the GEMM packs.
void quantize_block_int8(const float* x, std::int64_t n, std::int8_t* codes,
                         float* step);

}  // namespace fp::quant
