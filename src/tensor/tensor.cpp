#include "tensor/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

namespace fp {

namespace {
std::int64_t shape_numel(const std::vector<std::int64_t>& shape) {
  std::int64_t n = 1;
  for (const auto d : shape) {
    if (d < 0) throw std::invalid_argument("Tensor: negative extent");
    n *= d;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)),
      numel_(shape_numel(shape_)),
      data_(static_cast<std::size_t>(numel_), 0.0f) {}

Tensor Tensor::full(std::vector<std::int64_t> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<std::int64_t> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.gaussian(0.0f, stddev);
  return t;
}

Tensor Tensor::rand_uniform(std::vector<std::int64_t> shape, Rng& rng, float lo,
                            float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.uniform(lo, hi);
  return t;
}

Tensor Tensor::from_vector(std::vector<std::int64_t> shape, std::vector<float> values) {
  if (shape_numel(shape) != static_cast<std::int64_t>(values.size()))
    throw std::invalid_argument("Tensor::from_vector: size mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.numel_ = static_cast<std::int64_t>(values.size());
  t.data_.assign(values.begin(), values.end());
  return t;
}

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    if (i) os << ", ";
    os << shape_[i];
  }
  os << ']';
  return os.str();
}

Tensor Tensor::reshape(std::vector<std::int64_t> new_shape) const {
  if (shape_numel(new_shape) != numel_)
    throw std::invalid_argument("Tensor::reshape: element count mismatch " +
                                shape_str());
  Tensor t = *this;
  t.shape_ = std::move(new_shape);
  return t;
}

float& Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h, std::int64_t w) {
  if (ndim() != 4) throw std::logic_error("at4 on non-4D tensor");
  return data_[static_cast<std::size_t>(
      ((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w)];
}

float Tensor::at4(std::int64_t n, std::int64_t c, std::int64_t h,
                  std::int64_t w) const {
  return const_cast<Tensor*>(this)->at4(n, c, h, w);
}

float& Tensor::at2(std::int64_t r, std::int64_t c) {
  if (ndim() != 2) throw std::logic_error("at2 on non-2D tensor");
  return data_[static_cast<std::size_t>(r * shape_[1] + c)];
}

float Tensor::at2(std::int64_t r, std::int64_t c) const {
  return const_cast<Tensor*>(this)->at2(r, c);
}

void Tensor::check_same_shape(const Tensor& other, const char* op) const {
  if (!same_shape(other))
    throw std::invalid_argument(std::string("Tensor::") + op + ": shape mismatch " +
                                shape_str() + " vs " + other.shape_str());
}

Tensor& Tensor::fill(float value) {
  std::fill(data_.begin(), data_.end(), value);
  return *this;
}

Tensor& Tensor::add_(const Tensor& other) {
  check_same_shape(other, "add_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
  return *this;
}

Tensor& Tensor::sub_(const Tensor& other) {
  check_same_shape(other, "sub_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
  return *this;
}

Tensor& Tensor::mul_(const Tensor& other) {
  check_same_shape(other, "mul_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] *= other.data_[i];
  return *this;
}

Tensor& Tensor::add_scaled_(const Tensor& other, float alpha) {
  check_same_shape(other, "add_scaled_");
  for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += alpha * other.data_[i];
  return *this;
}

Tensor& Tensor::scale_(float alpha) {
  for (auto& v : data_) v *= alpha;
  return *this;
}

Tensor& Tensor::add_scalar_(float alpha) {
  for (auto& v : data_) v += alpha;
  return *this;
}

Tensor& Tensor::clamp_(float lo, float hi) {
  for (auto& v : data_) v = std::min(hi, std::max(lo, v));
  return *this;
}

Tensor& Tensor::relu_() {
  for (auto& v : data_) v = v > 0.0f ? v : 0.0f;
  return *this;
}

Tensor& Tensor::sign_() {
  for (auto& v : data_) v = v > 0.0f ? 1.0f : (v < 0.0f ? -1.0f : 0.0f);
  return *this;
}

Tensor Tensor::add(const Tensor& other) const { return Tensor(*this).add_(other); }
Tensor Tensor::sub(const Tensor& other) const { return Tensor(*this).sub_(other); }
Tensor Tensor::mul(const Tensor& other) const { return Tensor(*this).mul_(other); }
Tensor Tensor::scaled(float alpha) const { return Tensor(*this).scale_(alpha); }

float Tensor::sum() const {
  double s = 0.0;
  for (const auto v : data_) s += v;
  return static_cast<float>(s);
}

float Tensor::mean() const { return empty() ? 0.0f : sum() / static_cast<float>(numel_); }

float Tensor::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (const auto v : data_) m = std::max(m, std::abs(v));
  return m;
}

float Tensor::l2_norm() const {
  double s = 0.0;
  for (const auto v : data_) s += static_cast<double>(v) * v;
  return static_cast<float>(std::sqrt(s));
}

float Tensor::dot(const Tensor& other) const {
  check_same_shape(other, "dot");
  double s = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    s += static_cast<double>(data_[i]) * other.data_[i];
  return static_cast<float>(s);
}

std::int64_t Tensor::argmax() const {
  if (data_.empty()) return -1;
  return static_cast<std::int64_t>(
      std::max_element(data_.begin(), data_.end()) - data_.begin());
}

std::vector<std::int64_t> Tensor::argmax_rows() const {
  if (ndim() != 2) throw std::logic_error("argmax_rows on non-2D tensor");
  const std::int64_t rows = shape_[0], cols = shape_[1];
  std::vector<std::int64_t> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    const float* row = data() + r * cols;
    out[static_cast<std::size_t>(r)] =
        static_cast<std::int64_t>(std::max_element(row, row + cols) - row);
  }
  return out;
}

std::vector<float> Tensor::row_l2_norms() const {
  if (ndim() == 0 || shape_[0] == 0) return {};
  const std::int64_t rows = shape_[0];
  const std::int64_t per = numel_ / rows;
  std::vector<float> out(static_cast<std::size_t>(rows));
  for (std::int64_t r = 0; r < rows; ++r) {
    double s = 0.0;
    const float* p = data() + r * per;
    for (std::int64_t i = 0; i < per; ++i) s += static_cast<double>(p[i]) * p[i];
    out[static_cast<std::size_t>(r)] = static_cast<float>(std::sqrt(s));
  }
  return out;
}

Tensor& Tensor::scale_rows_(const std::vector<float>& factors) {
  const std::int64_t rows = shape_.empty() ? 0 : shape_[0];
  if (static_cast<std::int64_t>(factors.size()) != rows)
    throw std::invalid_argument("scale_rows_: factor count mismatch");
  const std::int64_t per = rows ? numel_ / rows : 0;
  for (std::int64_t r = 0; r < rows; ++r) {
    float* p = data() + r * per;
    const float f = factors[static_cast<std::size_t>(r)];
    for (std::int64_t i = 0; i < per; ++i) p[i] *= f;
  }
  return *this;
}

Tensor Tensor::slice_rows(std::int64_t start, std::int64_t count) const {
  if (ndim() == 0) throw std::logic_error("slice_rows on scalar tensor");
  const std::int64_t rows = shape_[0];
  if (start < 0 || count < 0 || start + count > rows)
    throw std::out_of_range("slice_rows: range out of bounds");
  const std::int64_t per = rows ? numel_ / rows : 0;
  std::vector<std::int64_t> out_shape = shape_;
  out_shape[0] = count;
  Tensor out(std::move(out_shape));
  std::copy_n(data() + start * per, count * per, out.data());
  return out;
}

void Tensor::set_rows(std::int64_t start, const Tensor& src) {
  if (ndim() == 0 || src.ndim() == 0) throw std::logic_error("set_rows on scalar");
  const std::int64_t rows = shape_[0];
  const std::int64_t per = rows ? numel_ / rows : 0;
  const std::int64_t src_rows = src.shape_[0];
  if (src.numel_ != src_rows * per || start + src_rows > rows)
    throw std::invalid_argument("set_rows: incompatible src");
  std::copy_n(src.data(), src.numel_, data() + start * per);
}

}  // namespace fp
