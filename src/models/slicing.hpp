// Channel-sliced sub-model extraction for partial-training FL.
//
// HeteroFL (Diao et al. 2020), Federated Dropout (Wen et al. 2022), and
// FedRolex (Alam et al. 2022) let a memory-constrained client train a
// narrow sub-model of the global network: every conv/linear layer keeps only
// a subset of its output channels, and the server aggregates trained
// sub-models back into the full model by partial average (each parameter is
// averaged over the clients that actually trained it). The three methods
// differ only in how the kept-channel window is chosen:
//   kStatic  — always the first ceil(r*C) channels (HeteroFL),
//   kRandom  — a fresh random subset every round (FedDrop),
//   kRolling — a cyclic window advancing with the round index (FedRolex).
#pragma once

#include <cstdint>
#include <vector>

#include "models/built_model.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::models {

enum class SliceScheme { kStatic, kRandom, kRolling };

/// Kept-channel indices (into the global model) for one layer.
struct LayerSlice {
  std::vector<std::int64_t> in;   ///< kept input channels / features
  std::vector<std::int64_t> out;  ///< kept output channels / features
};

struct AtomSlice {
  std::vector<LayerSlice> layers;    ///< aligned with AtomSpec::layers
  std::vector<LayerSlice> shortcut;  ///< aligned with AtomSpec::shortcut
};

struct SlicePlan {
  sys::ModelSpec sliced_spec;     ///< narrow twin of the global spec
  std::vector<AtomSlice> atoms;   ///< aligned with the global spec's atoms
  double ratio = 1.0;
};

/// Builds a slice plan keeping a `ratio` fraction of every hidden width.
/// The input channels of the first layer and the final class outputs are
/// never sliced. `round` drives the rolling window; `rng` the random scheme.
SlicePlan make_slice_plan(const sys::ModelSpec& global, double ratio,
                          SliceScheme scheme, std::int64_t round, Rng& rng);

/// Copies global weights into a freshly built sliced model (gather).
void gather_weights(const sys::ModelSpec& global_spec, const SlicePlan& plan,
                    BuiltModel& global_model, BuiltModel& sliced_model);

/// Accumulates a trained sliced model back into global-shaped sums/counts.
/// `acc` and `count` are index-aligned with atom.parameters()+buffers() of
/// the global model, pre-sized by the caller (see fed::PartialAccumulator).
void scatter_add_weights(const sys::ModelSpec& global_spec, const SlicePlan& plan,
                         BuiltModel& sliced_model, std::size_t atom_index,
                         std::vector<Tensor>& acc, std::vector<Tensor>& count,
                         float weight);

}  // namespace fp::models
