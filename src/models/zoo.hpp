// Model zoo.
//
// Two families share one description format (sys::ModelSpec):
//  * Paper-exact shapes, used analytically by the cost model and partitioner:
//    VGG16/13/11 + CNN3 at 3x32x32 (CIFAR-10 workload) and
//    ResNet34/18/10 + CNN4 at 3x224x224 (Caltech-256 workload).
//  * Trainable tiny models actually optimized in the accuracy-plane
//    experiments (single CPU core): TinyVGG / TinyResNet / TinyCNN with a
//    configurable width multiplier.
//
// Atoms follow the paper's §6.1 definition: a layer for plain networks
// (conv + ReLU [+ pool] counts as one "layer" atom), a residual block for
// ResNets.
#pragma once

#include "sysmodel/layer_spec.hpp"

namespace fp::models {

using sys::AtomSpec;
using sys::LayerSpec;
using sys::ModelSpec;

// ---- paper-exact shapes (analytic use) -------------------------------------
/// VGG-style plain network; `cfg` lists conv widths with -1 denoting maxpool.
ModelSpec vgg16_spec(std::int64_t image = 32, std::int64_t classes = 10);
ModelSpec vgg13_spec(std::int64_t image = 32, std::int64_t classes = 10);
ModelSpec vgg11_spec(std::int64_t image = 32, std::int64_t classes = 10);
/// 3-conv CNN used as the paper's small CIFAR model (Table 1).
ModelSpec cnn3_spec(std::int64_t image = 32, std::int64_t classes = 10);

ModelSpec resnet34_spec(std::int64_t image = 224, std::int64_t classes = 256);
ModelSpec resnet18_spec(std::int64_t image = 224, std::int64_t classes = 256);
ModelSpec resnet10_spec(std::int64_t image = 224, std::int64_t classes = 256);
/// 4-conv CNN used as the paper's small Caltech model (Table 1).
ModelSpec cnn4_spec(std::int64_t image = 224, std::int64_t classes = 256);

// ---- trainable tiny models --------------------------------------------------
/// Plain VGG-style net: [w, w, M, 2w, 2w, M, 4w, 4w, M] + GAP + linear,
/// with BatchNorm after every conv. 9 atoms at default depth.
ModelSpec tiny_vgg_spec(std::int64_t image = 16, std::int64_t classes = 10,
                        std::int64_t width = 8);
/// Residual net: stem conv + 5 basic blocks + GAP + linear. 7 atoms.
ModelSpec tiny_resnet_spec(std::int64_t image = 16, std::int64_t classes = 10,
                           std::int64_t width = 8);
/// Two conv layers + GAP + linear — the "small model" baseline.
ModelSpec tiny_cnn_spec(std::int64_t image = 16, std::int64_t classes = 10,
                        std::int64_t width = 8);

/// Helper used by both ResNet specs and the builder: the AtomSpec of one
/// basic block (conv-bn-relu-conv-bn with identity or projection shortcut).
AtomSpec basic_block_spec(const std::string& name, std::int64_t in_channels,
                          std::int64_t out_channels, std::int64_t stride);

}  // namespace fp::models
