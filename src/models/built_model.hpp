// Instantiates a sys::ModelSpec into real trainable layers.
//
// BuiltModel is the runtime twin of a ModelSpec: one nn::Layer per atom, with
// range-wise forward/backward and per-atom parameter blobs. Cascade learning,
// the FL aggregators, and the attacks all address the model as atom ranges,
// which keeps the training path and the cost model aligned by construction.
#pragma once

#include <memory>
#include <optional>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/norm.hpp"
#include "nn/pool.hpp"
#include "nn/sequential.hpp"
#include "nn/serialize.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::models {

/// Creates a single nn layer from its spec.
nn::LayerPtr build_layer(const sys::LayerSpec& spec, Rng& rng);

/// Creates one nn layer per atom (Sequential for plain atoms, BasicBlock for
/// residual atoms).
std::vector<nn::LayerPtr> build_atoms(const sys::ModelSpec& spec, Rng& rng);

class BuiltModel {
 public:
  BuiltModel(sys::ModelSpec spec, Rng& rng);

  const sys::ModelSpec& spec() const { return spec_; }
  std::size_t num_atoms() const { return atoms_.size(); }
  nn::Layer& atom(std::size_t i) { return *atoms_.at(i); }

  /// Forward through atoms [begin, end). `train` selects BN batch statistics.
  Tensor forward_range(std::size_t begin, std::size_t end, const Tensor& x,
                       bool train);
  /// Backward through atoms [begin, end) (reverse order); returns grad wrt
  /// the range input. Requires a matching forward_range beforehand.
  Tensor backward_range(std::size_t begin, std::size_t end, const Tensor& grad);

  Tensor forward(const Tensor& x, bool train) {
    return forward_range(0, atoms_.size(), x, train);
  }

  // ---- activation checkpointing (mem subsystem, DESIGN.md §6) --------------
  /// Partitions forward/backward traversals of the range starting at
  /// `segment_starts.front()` into drop-and-recompute segments: a non-final
  /// segment's layer caches are dropped after its forward and rebuilt (with
  /// BN running-stat updates suppressed) when its backward needs them, so
  /// gradients are bit-identical to plain execution while only one segment's
  /// caches are ever resident. Applies to every matching
  /// forward_range/backward_range pair until cleared. Empty vector = off.
  void set_checkpoint_segments(std::vector<std::size_t> segment_starts);
  bool checkpointing() const { return !ckpt_starts_.empty(); }

  /// Forward through atoms [begin, end), releasing each atom's caches right
  /// after its output is produced — the frozen-prefix forward of cascade
  /// training, which never runs a backward (budget-aware execution only).
  Tensor forward_range_nocache(std::size_t begin, std::size_t end,
                               const Tensor& x, bool train);

  /// Releases the caches/scratch of atoms [begin, end).
  void drop_caches_range(std::size_t begin, std::size_t end);

  std::vector<Tensor*> parameters_range(std::size_t begin, std::size_t end);
  std::vector<Tensor*> gradients_range(std::size_t begin, std::size_t end);
  void zero_grad_range(std::size_t begin, std::size_t end);

  /// Per-atom wire blobs (parameters + BN buffers), the unit of the
  /// partial-average aggregation (paper Eq. 16).
  nn::ParamBlob save_atom(std::size_t i) { return nn::save_blob(*atoms_.at(i)); }
  void load_atom(std::size_t i, const nn::ParamBlob& blob) {
    nn::load_blob(*atoms_.at(i), blob);
  }
  /// Whole-model blob (all atoms concatenated).
  nn::ParamBlob save_all();
  void load_all(const nn::ParamBlob& blob);

  /// Switches every BatchNorm running-stat bank (FedRBN dual-BN support).
  void use_bn_bank(int bank);
  /// Freezes/unfreezes BatchNorm running-stat updates (attack generation).
  void set_bn_tracking(bool tracking);

  std::int64_t param_count();

 private:
  /// One checkpointed forward/backward pass in flight.
  struct CkptPass {
    std::size_t begin = 0, end = 0;
    bool train = false;
    std::vector<Tensor> seg_inputs;  ///< input of each non-final segment
  };
  bool ckpt_matches(std::size_t begin, std::size_t end) const;
  std::vector<std::size_t> segment_bounds(std::size_t end) const;

  sys::ModelSpec spec_;
  std::vector<nn::LayerPtr> atoms_;
  std::vector<std::size_t> ckpt_starts_;
  std::optional<CkptPass> ckpt_pass_;
};

}  // namespace fp::models
