#include "models/slicing.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>

namespace fp::models {

namespace {

using sys::AtomSpec;
using sys::LayerKind;
using sys::LayerSpec;

std::vector<std::int64_t> all_indices(std::int64_t n) {
  std::vector<std::int64_t> idx(static_cast<std::size_t>(n));
  std::iota(idx.begin(), idx.end(), 0);
  return idx;
}

std::vector<std::int64_t> select_indices(std::int64_t c, double ratio,
                                         SliceScheme scheme, std::int64_t round,
                                         Rng& rng) {
  const auto k = std::max<std::int64_t>(
      1, static_cast<std::int64_t>(std::llround(ratio * static_cast<double>(c))));
  if (k >= c) return all_indices(c);
  std::vector<std::int64_t> idx;
  switch (scheme) {
    case SliceScheme::kStatic:
      idx = all_indices(c);
      idx.resize(static_cast<std::size_t>(k));
      break;
    case SliceScheme::kRandom: {
      idx = all_indices(c);
      rng.shuffle(idx);
      idx.resize(static_cast<std::size_t>(k));
      std::sort(idx.begin(), idx.end());
      break;
    }
    case SliceScheme::kRolling: {
      // FedRolex: cyclic window advancing one channel per round.
      const std::int64_t start = round % c;
      for (std::int64_t j = 0; j < k; ++j) idx.push_back((start + j) % c);
      std::sort(idx.begin(), idx.end());
      break;
    }
  }
  return idx;
}

}  // namespace

SlicePlan make_slice_plan(const sys::ModelSpec& global, double ratio,
                          SliceScheme scheme, std::int64_t round, Rng& rng) {
  SlicePlan plan;
  plan.ratio = ratio;
  plan.sliced_spec = global;  // copy; channel counts rewritten below
  plan.sliced_spec.name = global.name + "-slice";
  plan.atoms.resize(global.atoms.size());

  // Kept indices of the current activation, and the global shape (for
  // flatten expansion).
  std::vector<std::int64_t> cur = all_indices(global.input.c);
  sys::TensorShape gshape = global.input;

  for (std::size_t ai = 0; ai < global.atoms.size(); ++ai) {
    const AtomSpec& atom = global.atoms[ai];
    AtomSlice& aslice = plan.atoms[ai];
    AtomSpec& satom = plan.sliced_spec.atoms[ai];
    const bool last_atom = (ai + 1 == global.atoms.size());

    if (atom.residual) {
      const LayerSpec& conv1 = atom.layers.at(0);
      const LayerSpec& conv2 = atom.layers.at(3);
      const std::vector<std::int64_t> block_in = cur;
      const auto mid = select_indices(conv1.out_channels, ratio, scheme, round, rng);
      // Identity shortcuts add the input to the output elementwise, so the
      // kept output channels must be exactly the kept input channels.
      const auto out = atom.shortcut.empty()
                           ? block_in
                           : select_indices(conv2.out_channels, ratio, scheme,
                                            round + 1, rng);
      aslice.layers = {{block_in, mid}, {mid, mid}, {}, {mid, out}, {out, out}};
      if (!atom.shortcut.empty()) aslice.shortcut = {{block_in, out}, {out, out}};
      // Rewrite the sliced spec channels.
      satom.layers[0].in_channels = static_cast<std::int64_t>(block_in.size());
      satom.layers[0].out_channels = static_cast<std::int64_t>(mid.size());
      satom.layers[1].in_channels = satom.layers[1].out_channels =
          static_cast<std::int64_t>(mid.size());
      satom.layers[3].in_channels = static_cast<std::int64_t>(mid.size());
      satom.layers[3].out_channels = static_cast<std::int64_t>(out.size());
      satom.layers[4].in_channels = satom.layers[4].out_channels =
          static_cast<std::int64_t>(out.size());
      if (!atom.shortcut.empty()) {
        satom.shortcut[0].in_channels = static_cast<std::int64_t>(block_in.size());
        satom.shortcut[0].out_channels = static_cast<std::int64_t>(out.size());
        satom.shortcut[1].in_channels = satom.shortcut[1].out_channels =
            static_cast<std::int64_t>(out.size());
      }
      cur = out;
      gshape = atom_out_shape(atom, gshape);
      continue;
    }

    aslice.layers.resize(atom.layers.size());
    for (std::size_t li = 0; li < atom.layers.size(); ++li) {
      const LayerSpec& layer = atom.layers[li];
      LayerSpec& slayer = satom.layers[li];
      switch (layer.kind) {
        case LayerKind::kConv2d: {
          const auto out = select_indices(layer.out_channels, ratio, scheme,
                                          round + static_cast<std::int64_t>(li), rng);
          aslice.layers[li] = {cur, out};
          slayer.in_channels = static_cast<std::int64_t>(cur.size());
          slayer.out_channels = static_cast<std::int64_t>(out.size());
          cur = out;
          break;
        }
        case LayerKind::kLinear: {
          const bool is_output =
              last_atom && layer.out_channels == global.num_classes;
          const auto out = is_output
                               ? all_indices(layer.out_channels)
                               : select_indices(layer.out_channels, ratio, scheme,
                                                round + static_cast<std::int64_t>(li),
                                                rng);
          aslice.layers[li] = {cur, out};
          slayer.in_channels = static_cast<std::int64_t>(cur.size());
          slayer.out_channels = static_cast<std::int64_t>(out.size());
          cur = out;
          break;
        }
        case LayerKind::kBatchNorm2d:
          aslice.layers[li] = {cur, cur};
          slayer.in_channels = slayer.out_channels =
              static_cast<std::int64_t>(cur.size());
          break;
        case LayerKind::kFlatten: {
          // Expand channel indices to flattened feature indices.
          const std::int64_t plane = gshape.h * gshape.w;
          std::vector<std::int64_t> expanded;
          expanded.reserve(cur.size() * static_cast<std::size_t>(plane));
          for (const auto c : cur)
            for (std::int64_t j = 0; j < plane; ++j) expanded.push_back(c * plane + j);
          cur = std::move(expanded);
          break;
        }
        case LayerKind::kReLU:
        case LayerKind::kMaxPool2d:
        case LayerKind::kGlobalAvgPool:
          break;  // channel identity preserved
      }
      gshape = out_shape(layer, gshape);
    }
  }
  return plan;
}

namespace {

struct Entry {
  Tensor* global = nullptr;
  Tensor* sliced = nullptr;
  const std::vector<std::int64_t>* out = nullptr;  // null = identity
  const std::vector<std::int64_t>* in = nullptr;   // null = identity / 1-D tensor
};

/// Collects parameter entries (into `params`) and buffer entries (into
/// `bufs`) for a plain layer sequence, zipping global and sliced layers.
void walk_sequence(const std::vector<LayerSpec>& specs,
                   const std::vector<LayerSlice>& slices, nn::Sequential& gseq,
                   nn::Sequential& sseq, std::vector<Entry>& params,
                   std::vector<Entry>& bufs) {
  if (gseq.size() != specs.size() || sseq.size() != specs.size() ||
      slices.size() != specs.size())
    throw std::logic_error("walk_sequence: structure mismatch");
  for (std::size_t j = 0; j < specs.size(); ++j) {
    auto gp = gseq.at(j).parameters();
    auto sp = sseq.at(j).parameters();
    auto gb = gseq.at(j).buffers();
    auto sb = sseq.at(j).buffers();
    if (gp.size() != sp.size() || gb.size() != sb.size())
      throw std::logic_error("walk_sequence: parameter count mismatch");
    const LayerSlice& ls = slices[j];
    const bool has_weight =
        specs[j].kind == LayerKind::kConv2d || specs[j].kind == LayerKind::kLinear;
    for (std::size_t p = 0; p < gp.size(); ++p) {
      Entry e;
      e.global = gp[p];
      e.sliced = sp[p];
      if (has_weight && p == 0) {  // the weight matrix/kernel
        e.out = &ls.out;
        e.in = &ls.in;
      } else {  // bias / gamma / beta: 1-D over output channels
        e.out = &ls.out;
      }
      params.push_back(e);
    }
    for (std::size_t p = 0; p < gb.size(); ++p)
      bufs.push_back({gb[p], sb[p], &ls.out, nullptr});
  }
}

std::vector<Entry> enumerate_entries(const AtomSpec& spec, const AtomSlice& slice,
                                     nn::Layer& gatom, nn::Layer& satom) {
  std::vector<Entry> params, bufs;
  if (spec.residual) {
    auto* gblock = dynamic_cast<nn::BasicBlock*>(&gatom);
    auto* sblock = dynamic_cast<nn::BasicBlock*>(&satom);
    if (!gblock || !sblock) throw std::logic_error("enumerate: not a BasicBlock");
    std::vector<Entry> sc_params, sc_bufs;
    walk_sequence(spec.layers, slice.layers, gblock->main_path(),
                  sblock->main_path(), params, bufs);
    if (!spec.shortcut.empty()) {
      if (!gblock->shortcut_path() || !sblock->shortcut_path())
        throw std::logic_error("enumerate: missing shortcut");
      walk_sequence(spec.shortcut, slice.shortcut, *gblock->shortcut_path(),
                    *sblock->shortcut_path(), sc_params, sc_bufs);
    }
    params.insert(params.end(), sc_params.begin(), sc_params.end());
    bufs.insert(bufs.end(), sc_bufs.begin(), sc_bufs.end());
  } else {
    auto* gseq = dynamic_cast<nn::Sequential*>(&gatom);
    auto* sseq = dynamic_cast<nn::Sequential*>(&satom);
    if (!gseq || !sseq) throw std::logic_error("enumerate: not a Sequential");
    walk_sequence(spec.layers, slice.layers, *gseq, *sseq, params, bufs);
  }
  params.insert(params.end(), bufs.begin(), bufs.end());
  return params;
}

/// Per-row element count of the innermost (non-indexed) dimensions.
std::int64_t tail_numel(const Tensor& t) {
  std::int64_t n = 1;
  for (std::size_t d = 2; d < t.ndim(); ++d) n *= t.dim(d);
  return n;
}

void gather_entry(const Entry& e) {
  Tensor& g = *e.global;
  Tensor& s = *e.sliced;
  if (g.ndim() == 1) {
    // Bias / gamma / running stats: 1-D over output channels.
    const auto& out = *e.out;
    if (out.empty()) {
      s = g;
      return;
    }
    for (std::size_t o = 0; o < out.size(); ++o)
      s[static_cast<std::int64_t>(o)] = g[out[o]];
    return;
  }
  // Weight: [O, I, ...]: gather rows by out, columns by in.
  static const std::vector<std::int64_t> kIdentity;
  const auto& out = (e.out && !e.out->empty()) ? *e.out : kIdentity;
  const auto& in = (e.in && !e.in->empty()) ? *e.in : kIdentity;
  const std::int64_t gi = g.dim(1), si = s.dim(1);
  const std::int64_t tail = tail_numel(g);
  const std::int64_t so_count = s.dim(0);
  for (std::int64_t o = 0; o < so_count; ++o) {
    const std::int64_t go = out.empty() ? o : out[static_cast<std::size_t>(o)];
    for (std::int64_t i = 0; i < si; ++i) {
      const std::int64_t gin = in.empty() ? i : in[static_cast<std::size_t>(i)];
      std::copy_n(g.data() + (go * gi + gin) * tail, tail,
                  s.data() + (o * si + i) * tail);
    }
  }
}

void scatter_entry(const Entry& e, Tensor& acc, Tensor& count, float w) {
  Tensor& s = *e.sliced;
  if (s.ndim() == 1) {
    const auto& out = *e.out;
    for (std::int64_t o = 0; o < s.numel(); ++o) {
      const std::int64_t go =
          out.empty() ? o : out[static_cast<std::size_t>(o)];
      acc[go] += w * s[o];
      count[go] += w;
    }
    return;
  }
  static const std::vector<std::int64_t> kIdentity;
  const auto& out = (e.out && !e.out->empty()) ? *e.out : kIdentity;
  const auto& in = (e.in && !e.in->empty()) ? *e.in : kIdentity;
  const std::int64_t gi = acc.dim(1), si = s.dim(1);
  const std::int64_t tail = tail_numel(s);
  for (std::int64_t o = 0; o < s.dim(0); ++o) {
    const std::int64_t go = out.empty() ? o : out[static_cast<std::size_t>(o)];
    for (std::int64_t i = 0; i < si; ++i) {
      const std::int64_t gin = in.empty() ? i : in[static_cast<std::size_t>(i)];
      const float* src = s.data() + (o * si + i) * tail;
      float* a = acc.data() + (go * gi + gin) * tail;
      float* c = count.data() + (go * gi + gin) * tail;
      for (std::int64_t t = 0; t < tail; ++t) {
        a[t] += w * src[t];
        c[t] += w;
      }
    }
  }
}

}  // namespace

void gather_weights(const sys::ModelSpec& global_spec, const SlicePlan& plan,
                    BuiltModel& global_model, BuiltModel& sliced_model) {
  for (std::size_t ai = 0; ai < global_spec.atoms.size(); ++ai) {
    const auto entries = enumerate_entries(global_spec.atoms[ai], plan.atoms[ai],
                                           global_model.atom(ai),
                                           sliced_model.atom(ai));
    for (const auto& e : entries) gather_entry(e);
  }
}

void scatter_add_weights(const sys::ModelSpec& global_spec, const SlicePlan& plan,
                         BuiltModel& sliced_model, std::size_t atom_index,
                         std::vector<Tensor>& acc, std::vector<Tensor>& count,
                         float weight) {
  // Enumeration needs a global atom only for tensor shapes; acc/count are the
  // global-shaped targets, so we enumerate against the sliced model and use
  // acc/count directly.
  const AtomSpec& spec = global_spec.atoms[atom_index];
  const AtomSlice& slice = plan.atoms[atom_index];
  // Build entries with sliced tensors only (global side unused here): reuse
  // enumerate by passing the sliced atom for both sides, then redirect.
  const auto entries = enumerate_entries(spec, slice, sliced_model.atom(atom_index),
                                         sliced_model.atom(atom_index));
  if (entries.size() != acc.size() || entries.size() != count.size())
    throw std::logic_error("scatter_add_weights: accumulator mismatch");
  for (std::size_t i = 0; i < entries.size(); ++i)
    scatter_entry(entries[i], acc[i], count[i], weight);
}

}  // namespace fp::models
