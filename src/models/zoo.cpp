#include "models/zoo.hpp"

#include <stdexcept>

namespace fp::models {

namespace {

/// Builds plain VGG-style conv atoms from a width list; -1 denotes maxpool,
/// which is attached to the preceding conv atom (an atom is "conv [+pool]").
std::vector<AtomSpec> vgg_atoms(const std::vector<std::int64_t>& cfg,
                                std::int64_t in_channels, bool with_bn) {
  std::vector<AtomSpec> atoms;
  std::int64_t c = in_channels;
  int conv_idx = 0;
  for (std::size_t i = 0; i < cfg.size(); ++i) {
    if (cfg[i] == -1) {
      if (atoms.empty()) throw std::invalid_argument("vgg_atoms: leading pool");
      atoms.back().layers.push_back(LayerSpec::maxpool(2, 2));
      continue;
    }
    AtomSpec atom;
    atom.name = "Conv " + std::to_string(++conv_idx);
    atom.layers.push_back(LayerSpec::conv2d(c, cfg[i], 3, 1, 1, !with_bn));
    if (with_bn) atom.layers.push_back(LayerSpec::batchnorm(cfg[i]));
    atom.layers.push_back(LayerSpec::relu());
    atoms.push_back(std::move(atom));
    c = cfg[i];
  }
  return atoms;
}

ModelSpec vgg_like(std::string name, const std::vector<std::int64_t>& cfg,
                   std::int64_t image, std::int64_t classes,
                   std::int64_t hidden) {
  ModelSpec m;
  m.name = std::move(name);
  m.input = {3, image, image};
  m.num_classes = classes;
  m.atoms = vgg_atoms(cfg, 3, /*with_bn=*/false);
  // Classifier atoms (paper Table 7: Linear 1..3 belong to the last module).
  const sys::TensorShape feat = [&] {
    sys::TensorShape s = m.input;
    for (const auto& a : m.atoms) s = atom_out_shape(a, s);
    return s;
  }();
  AtomSpec l1{"Linear 1",
              {LayerSpec::flatten(), LayerSpec::linear(feat.numel(), hidden),
               LayerSpec::relu()},
              false,
              {}};
  AtomSpec l2{"Linear 2",
              {LayerSpec::linear(hidden, hidden), LayerSpec::relu()},
              false,
              {}};
  AtomSpec l3{"Linear 3", {LayerSpec::linear(hidden, classes)}, false, {}};
  m.atoms.push_back(std::move(l1));
  m.atoms.push_back(std::move(l2));
  m.atoms.push_back(std::move(l3));
  return m;
}

ModelSpec resnet_like(std::string name, const std::vector<int>& blocks_per_stage,
                      std::int64_t image, std::int64_t classes) {
  ModelSpec m;
  m.name = std::move(name);
  m.input = {3, image, image};
  m.num_classes = classes;
  // Stem: 7x7/2 conv + BN + ReLU + 2x2 maxpool (paper Table 8: "Conv 1").
  AtomSpec stem{"Conv 1",
                {LayerSpec::conv2d(3, 64, 7, 2, 3, false), LayerSpec::batchnorm(64),
                 LayerSpec::relu(), LayerSpec::maxpool(2, 2)},
                false,
                {}};
  m.atoms.push_back(std::move(stem));
  const std::int64_t widths[4] = {64, 128, 256, 512};
  std::int64_t c = 64;
  int bb = 0;
  for (int stage = 0; stage < 4; ++stage) {
    for (int b = 0; b < blocks_per_stage[static_cast<std::size_t>(stage)]; ++b) {
      const std::int64_t stride = (stage > 0 && b == 0) ? 2 : 1;
      m.atoms.push_back(basic_block_spec("BasicBlock " + std::to_string(++bb), c,
                                         widths[stage], stride));
      c = widths[stage];
    }
  }
  AtomSpec head{"Classifier",
                {LayerSpec::global_avg_pool(), LayerSpec::flatten(),
                 LayerSpec::linear(c, classes)},
                false,
                {}};
  m.atoms.push_back(std::move(head));
  return m;
}

}  // namespace

AtomSpec basic_block_spec(const std::string& name, std::int64_t in_channels,
                          std::int64_t out_channels, std::int64_t stride) {
  AtomSpec atom;
  atom.name = name;
  atom.residual = true;
  atom.layers = {LayerSpec::conv2d(in_channels, out_channels, 3, stride, 1, false),
                 LayerSpec::batchnorm(out_channels), LayerSpec::relu(),
                 LayerSpec::conv2d(out_channels, out_channels, 3, 1, 1, false),
                 LayerSpec::batchnorm(out_channels)};
  if (stride != 1 || in_channels != out_channels) {
    atom.shortcut = {LayerSpec::conv2d(in_channels, out_channels, 1, stride, 0, false),
                     LayerSpec::batchnorm(out_channels)};
  }
  return atom;
}

ModelSpec vgg16_spec(std::int64_t image, std::int64_t classes) {
  return vgg_like("VGG16",
                  {64, 64, -1, 128, 128, -1, 256, 256, 256, -1, 512, 512, 512, -1,
                   512, 512, 512, -1},
                  image, classes, 512);
}

ModelSpec vgg13_spec(std::int64_t image, std::int64_t classes) {
  return vgg_like("VGG13",
                  {64, 64, -1, 128, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1},
                  image, classes, 512);
}

ModelSpec vgg11_spec(std::int64_t image, std::int64_t classes) {
  return vgg_like("VGG11", {64, -1, 128, -1, 256, 256, -1, 512, 512, -1, 512, 512, -1},
                  image, classes, 512);
}

ModelSpec cnn3_spec(std::int64_t image, std::int64_t classes) {
  ModelSpec m;
  m.name = "CNN3";
  m.input = {3, image, image};
  m.num_classes = classes;
  m.atoms = vgg_atoms({32, -1, 64, -1, 128, -1}, 3, false);
  const sys::TensorShape feat = [&] {
    sys::TensorShape s = m.input;
    for (const auto& a : m.atoms) s = atom_out_shape(a, s);
    return s;
  }();
  m.atoms.push_back(AtomSpec{
      "Linear 1", {LayerSpec::flatten(), LayerSpec::linear(feat.numel(), classes)},
      false, {}});
  return m;
}

ModelSpec resnet34_spec(std::int64_t image, std::int64_t classes) {
  return resnet_like("ResNet34", {3, 4, 6, 3}, image, classes);
}

ModelSpec resnet18_spec(std::int64_t image, std::int64_t classes) {
  return resnet_like("ResNet18", {2, 2, 2, 2}, image, classes);
}

ModelSpec resnet10_spec(std::int64_t image, std::int64_t classes) {
  return resnet_like("ResNet10", {1, 1, 1, 1}, image, classes);
}

ModelSpec cnn4_spec(std::int64_t image, std::int64_t classes) {
  ModelSpec m;
  m.name = "CNN4";
  m.input = {3, image, image};
  m.num_classes = classes;
  m.atoms = vgg_atoms({32, -1, 64, -1, 128, -1, 256, -1}, 3, false);
  AtomSpec head{"Classifier",
                {LayerSpec::global_avg_pool(), LayerSpec::flatten(),
                 LayerSpec::linear(256, classes)},
                false,
                {}};
  m.atoms.push_back(std::move(head));
  return m;
}

ModelSpec tiny_vgg_spec(std::int64_t image, std::int64_t classes, std::int64_t width) {
  ModelSpec m;
  m.name = "TinyVGG-w" + std::to_string(width);
  m.input = {3, image, image};
  m.num_classes = classes;
  m.atoms = vgg_atoms({width, width, -1, 2 * width, 2 * width, -1, 4 * width,
                       4 * width, -1},
                      3, /*with_bn=*/true);
  AtomSpec head{"Classifier",
                {LayerSpec::global_avg_pool(), LayerSpec::flatten(),
                 LayerSpec::linear(4 * width, classes)},
                false,
                {}};
  m.atoms.push_back(std::move(head));
  return m;
}

ModelSpec tiny_resnet_spec(std::int64_t image, std::int64_t classes,
                           std::int64_t width) {
  ModelSpec m;
  m.name = "TinyResNet-w" + std::to_string(width);
  m.input = {3, image, image};
  m.num_classes = classes;
  AtomSpec stem{"Conv 1",
                {LayerSpec::conv2d(3, width, 3, 1, 1, false),
                 LayerSpec::batchnorm(width), LayerSpec::relu()},
                false,
                {}};
  m.atoms.push_back(std::move(stem));
  m.atoms.push_back(basic_block_spec("BasicBlock 1", width, width, 1));
  m.atoms.push_back(basic_block_spec("BasicBlock 2", width, 2 * width, 2));
  m.atoms.push_back(basic_block_spec("BasicBlock 3", 2 * width, 2 * width, 1));
  m.atoms.push_back(basic_block_spec("BasicBlock 4", 2 * width, 4 * width, 2));
  AtomSpec head{"Classifier",
                {LayerSpec::global_avg_pool(), LayerSpec::flatten(),
                 LayerSpec::linear(4 * width, classes)},
                false,
                {}};
  m.atoms.push_back(std::move(head));
  return m;
}

ModelSpec tiny_cnn_spec(std::int64_t image, std::int64_t classes, std::int64_t width) {
  ModelSpec m;
  m.name = "TinyCNN-w" + std::to_string(width);
  m.input = {3, image, image};
  m.num_classes = classes;
  m.atoms = vgg_atoms({width, -1, 2 * width, -1}, 3, true);
  AtomSpec head{"Classifier",
                {LayerSpec::global_avg_pool(), LayerSpec::flatten(),
                 LayerSpec::linear(2 * width, classes)},
                false,
                {}};
  m.atoms.push_back(std::move(head));
  return m;
}

}  // namespace fp::models
