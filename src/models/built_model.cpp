#include "models/built_model.hpp"

#include <stdexcept>

namespace fp::models {

nn::LayerPtr build_layer(const sys::LayerSpec& spec, Rng& rng) {
  using sys::LayerKind;
  switch (spec.kind) {
    case LayerKind::kConv2d:
      return std::make_unique<nn::Conv2d>(spec.in_channels, spec.out_channels,
                                          spec.kernel, spec.stride, spec.padding,
                                          rng, spec.bias);
    case LayerKind::kLinear:
      return std::make_unique<nn::Linear>(spec.in_channels, spec.out_channels, rng,
                                          spec.bias);
    case LayerKind::kBatchNorm2d:
      return std::make_unique<nn::BatchNorm2d>(spec.in_channels);
    case LayerKind::kReLU:
      return std::make_unique<nn::ReLU>();
    case LayerKind::kMaxPool2d:
      return std::make_unique<nn::MaxPool2d>(spec.kernel, spec.stride);
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<nn::GlobalAvgPool>();
    case LayerKind::kFlatten:
      return std::make_unique<nn::Flatten>();
  }
  throw std::logic_error("build_layer: unknown kind");
}

std::vector<nn::LayerPtr> build_atoms(const sys::ModelSpec& spec, Rng& rng) {
  std::vector<nn::LayerPtr> atoms;
  atoms.reserve(spec.atoms.size());
  for (const auto& atom : spec.atoms) {
    if (atom.residual) {
      // basic_block_spec produces conv-bn-relu-conv-bn (+ optional projection);
      // nn::BasicBlock builds exactly that structure.
      const auto& first_conv = atom.layers.at(0);
      atoms.push_back(std::make_unique<nn::BasicBlock>(
          first_conv.in_channels, first_conv.out_channels, first_conv.stride, rng));
    } else {
      auto seq = std::make_unique<nn::Sequential>();
      for (const auto& layer : atom.layers) seq->push_back(build_layer(layer, rng));
      atoms.push_back(std::move(seq));
    }
  }
  return atoms;
}

BuiltModel::BuiltModel(sys::ModelSpec spec, Rng& rng) : spec_(std::move(spec)) {
  atoms_ = build_atoms(spec_, rng);
}

bool BuiltModel::ckpt_matches(std::size_t begin, std::size_t end) const {
  // A checkpoint plan applies to the traversal of exactly the planned range:
  // the first segment starts at `begin` and the last segment reaches `end`.
  return !ckpt_starts_.empty() && ckpt_starts_.front() == begin &&
         ckpt_starts_.back() < end;
}

std::vector<std::size_t> BuiltModel::segment_bounds(std::size_t end) const {
  // Segment boundaries as [start_0, start_1, ..., end].
  std::vector<std::size_t> bounds = ckpt_starts_;
  bounds.push_back(end);
  return bounds;
}

void BuiltModel::set_checkpoint_segments(std::vector<std::size_t> segment_starts) {
  for (std::size_t i = 1; i < segment_starts.size(); ++i)
    if (segment_starts[i] <= segment_starts[i - 1])
      throw std::invalid_argument("checkpoint segments must ascend");
  if (!segment_starts.empty() && segment_starts.back() >= atoms_.size())
    throw std::invalid_argument("checkpoint segment start out of range");
  ckpt_starts_ = std::move(segment_starts);
  ckpt_pass_.reset();
}

Tensor BuiltModel::forward_range_nocache(std::size_t begin, std::size_t end,
                                         const Tensor& x, bool train) {
  if (begin > end || end > atoms_.size())
    throw std::invalid_argument("forward_range_nocache: bad range");
  Tensor h = x;
  for (std::size_t i = begin; i < end; ++i) {
    h = atoms_[i]->forward(h, train);
    atoms_[i]->drop_cached_activations();
  }
  return h;
}

void BuiltModel::drop_caches_range(std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end && i < atoms_.size(); ++i)
    atoms_[i]->drop_cached_activations();
}

Tensor BuiltModel::forward_range(std::size_t begin, std::size_t end, const Tensor& x,
                                 bool train) {
  if (begin > end || end > atoms_.size())
    throw std::invalid_argument("forward_range: bad range");
  if (ckpt_matches(begin, end)) {
    const auto bounds = segment_bounds(end);
    CkptPass pass;
    pass.begin = begin;
    pass.end = end;
    pass.train = train;
    pass.seg_inputs.resize(bounds.size() - 2);
    Tensor h = x;
    for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
      const bool final_seg = s + 2 == bounds.size();
      if (!final_seg) pass.seg_inputs[s] = h;  // recompute restarts here
      for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i)
        h = atoms_[i]->forward(h, train);
      if (!final_seg) drop_caches_range(bounds[s], bounds[s + 1]);
    }
    ckpt_pass_ = std::move(pass);
    return h;
  }
  Tensor h = x;
  for (std::size_t i = begin; i < end; ++i) h = atoms_[i]->forward(h, train);
  return h;
}

Tensor BuiltModel::backward_range(std::size_t begin, std::size_t end,
                                  const Tensor& grad) {
  if (begin > end || end > atoms_.size())
    throw std::invalid_argument("backward_range: bad range");
  if (ckpt_pass_ && ckpt_pass_->begin == begin && ckpt_pass_->end == end) {
    const auto bounds = segment_bounds(end);
    Tensor g = grad;
    for (std::size_t s = bounds.size() - 1; s-- > 0;) {
      const bool final_seg = s + 2 == bounds.size();
      if (!final_seg) {
        // Recompute the segment's forward from its stored input to rebuild
        // the dropped caches. Batch statistics are recomputed identically;
        // running-stat updates are suppressed (the original forward already
        // applied them) and each BN's tracking flag is restored afterwards.
        std::vector<std::pair<nn::BatchNorm2d*, bool>> saved;
        for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i)
          atoms_[i]->for_each_bn([&saved](nn::BatchNorm2d& bn) {
            saved.emplace_back(&bn, bn.track_stats());
            bn.set_track_stats(false);
          });
        Tensor h = std::move(ckpt_pass_->seg_inputs[s]);
        ckpt_pass_->seg_inputs[s] = Tensor();
        for (std::size_t i = bounds[s]; i < bounds[s + 1]; ++i)
          h = atoms_[i]->forward(h, ckpt_pass_->train);
        for (auto& [bn, flag] : saved) bn->set_track_stats(flag);
      }
      for (std::size_t i = bounds[s + 1]; i-- > bounds[s];)
        g = atoms_[i]->backward(g);
      // One segment's caches resident at a time: release before recomputing
      // the next (earlier) segment.
      drop_caches_range(bounds[s], bounds[s + 1]);
    }
    ckpt_pass_.reset();
    return g;
  }
  Tensor g = grad;
  for (std::size_t i = end; i > begin; --i) g = atoms_[i - 1]->backward(g);
  return g;
}

std::vector<Tensor*> BuiltModel::parameters_range(std::size_t begin, std::size_t end) {
  std::vector<Tensor*> out;
  for (std::size_t i = begin; i < end; ++i)
    for (auto* p : atoms_[i]->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> BuiltModel::gradients_range(std::size_t begin, std::size_t end) {
  std::vector<Tensor*> out;
  for (std::size_t i = begin; i < end; ++i)
    for (auto* g : atoms_[i]->gradients()) out.push_back(g);
  return out;
}

void BuiltModel::zero_grad_range(std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) atoms_[i]->zero_grad();
}

nn::ParamBlob BuiltModel::save_all() {
  nn::ParamBlob blob;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const auto atom_blob = save_atom(i);
    blob.insert(blob.end(), atom_blob.begin(), atom_blob.end());
  }
  return blob;
}

void BuiltModel::load_all(const nn::ParamBlob& blob) {
  // Size-check the whole blob first so a mismatched checkpoint never leaves
  // the model half-overwritten.
  std::vector<std::size_t> sizes(atoms_.size());
  std::size_t need = 0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    sizes[i] = save_atom(i).size();
    need += sizes[i];
  }
  if (need != blob.size())
    throw std::invalid_argument(
        "load_all: blob holds " + std::to_string(blob.size()) +
        " floats but model '" + spec_.name + "' (" +
        std::to_string(atoms_.size()) + " atoms) needs exactly " +
        std::to_string(need));
  std::size_t offset = 0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const std::size_t n = sizes[i];
    nn::ParamBlob piece(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                        blob.begin() + static_cast<std::ptrdiff_t>(offset + n));
    load_atom(i, piece);
    offset += n;
  }
}

void BuiltModel::use_bn_bank(int bank) {
  for (auto& atom : atoms_)
    atom->for_each_bn([bank](nn::BatchNorm2d& bn) { bn.use_bank(bank); });
}

void BuiltModel::set_bn_tracking(bool tracking) {
  for (auto& atom : atoms_)
    atom->for_each_bn(
        [tracking](nn::BatchNorm2d& bn) { bn.set_track_stats(tracking); });
}

std::int64_t BuiltModel::param_count() {
  std::int64_t n = 0;
  for (auto& atom : atoms_) n += nn::param_count(*atom);
  return n;
}

}  // namespace fp::models
