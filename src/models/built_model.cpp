#include "models/built_model.hpp"

#include <stdexcept>

namespace fp::models {

nn::LayerPtr build_layer(const sys::LayerSpec& spec, Rng& rng) {
  using sys::LayerKind;
  switch (spec.kind) {
    case LayerKind::kConv2d:
      return std::make_unique<nn::Conv2d>(spec.in_channels, spec.out_channels,
                                          spec.kernel, spec.stride, spec.padding,
                                          rng, spec.bias);
    case LayerKind::kLinear:
      return std::make_unique<nn::Linear>(spec.in_channels, spec.out_channels, rng,
                                          spec.bias);
    case LayerKind::kBatchNorm2d:
      return std::make_unique<nn::BatchNorm2d>(spec.in_channels);
    case LayerKind::kReLU:
      return std::make_unique<nn::ReLU>();
    case LayerKind::kMaxPool2d:
      return std::make_unique<nn::MaxPool2d>(spec.kernel, spec.stride);
    case LayerKind::kGlobalAvgPool:
      return std::make_unique<nn::GlobalAvgPool>();
    case LayerKind::kFlatten:
      return std::make_unique<nn::Flatten>();
  }
  throw std::logic_error("build_layer: unknown kind");
}

std::vector<nn::LayerPtr> build_atoms(const sys::ModelSpec& spec, Rng& rng) {
  std::vector<nn::LayerPtr> atoms;
  atoms.reserve(spec.atoms.size());
  for (const auto& atom : spec.atoms) {
    if (atom.residual) {
      // basic_block_spec produces conv-bn-relu-conv-bn (+ optional projection);
      // nn::BasicBlock builds exactly that structure.
      const auto& first_conv = atom.layers.at(0);
      atoms.push_back(std::make_unique<nn::BasicBlock>(
          first_conv.in_channels, first_conv.out_channels, first_conv.stride, rng));
    } else {
      auto seq = std::make_unique<nn::Sequential>();
      for (const auto& layer : atom.layers) seq->push_back(build_layer(layer, rng));
      atoms.push_back(std::move(seq));
    }
  }
  return atoms;
}

BuiltModel::BuiltModel(sys::ModelSpec spec, Rng& rng) : spec_(std::move(spec)) {
  atoms_ = build_atoms(spec_, rng);
}

Tensor BuiltModel::forward_range(std::size_t begin, std::size_t end, const Tensor& x,
                                 bool train) {
  if (begin > end || end > atoms_.size())
    throw std::invalid_argument("forward_range: bad range");
  Tensor h = x;
  for (std::size_t i = begin; i < end; ++i) h = atoms_[i]->forward(h, train);
  return h;
}

Tensor BuiltModel::backward_range(std::size_t begin, std::size_t end,
                                  const Tensor& grad) {
  if (begin > end || end > atoms_.size())
    throw std::invalid_argument("backward_range: bad range");
  Tensor g = grad;
  for (std::size_t i = end; i > begin; --i) g = atoms_[i - 1]->backward(g);
  return g;
}

std::vector<Tensor*> BuiltModel::parameters_range(std::size_t begin, std::size_t end) {
  std::vector<Tensor*> out;
  for (std::size_t i = begin; i < end; ++i)
    for (auto* p : atoms_[i]->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> BuiltModel::gradients_range(std::size_t begin, std::size_t end) {
  std::vector<Tensor*> out;
  for (std::size_t i = begin; i < end; ++i)
    for (auto* g : atoms_[i]->gradients()) out.push_back(g);
  return out;
}

void BuiltModel::zero_grad_range(std::size_t begin, std::size_t end) {
  for (std::size_t i = begin; i < end; ++i) atoms_[i]->zero_grad();
}

nn::ParamBlob BuiltModel::save_all() {
  nn::ParamBlob blob;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const auto atom_blob = save_atom(i);
    blob.insert(blob.end(), atom_blob.begin(), atom_blob.end());
  }
  return blob;
}

void BuiltModel::load_all(const nn::ParamBlob& blob) {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < atoms_.size(); ++i) {
    const std::size_t n = save_atom(i).size();
    if (offset + n > blob.size()) throw std::invalid_argument("load_all: blob small");
    nn::ParamBlob piece(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                        blob.begin() + static_cast<std::ptrdiff_t>(offset + n));
    load_atom(i, piece);
    offset += n;
  }
  if (offset != blob.size()) throw std::invalid_argument("load_all: size mismatch");
}

void BuiltModel::use_bn_bank(int bank) {
  for (auto& atom : atoms_)
    atom->for_each_bn([bank](nn::BatchNorm2d& bn) { bn.use_bank(bank); });
}

void BuiltModel::set_bn_tracking(bool tracking) {
  for (auto& atom : atoms_)
    atom->for_each_bn(
        [tracking](nn::BatchNorm2d& bn) { bn.set_track_stats(tracking); });
}

std::int64_t BuiltModel::param_count() {
  std::int64_t n = 0;
  for (auto& atom : atoms_) n += nn::param_count(*atom);
  return n;
}

}  // namespace fp::models
