// Server-side training coordinator (paper §6.2, §6.3).
//
// AdaptivePerturbation implements Eq. 11/12: the intermediate perturbation
// budget for module m is eps_{m-1} = alpha_t * E[max ||Delta z_{m-1}||],
// where the expectation is collected from clients when module m-1 is fixed,
// and alpha_t is nudged by +-delta_alpha to keep the clean/adversarial
// accuracy ratio of the growing cascade within (1 +- gamma) of the previous
// module's final ratio.
//
// assign_modules implements Eq. 14/15: a "prophet" client is given as many
// future modules as fit its available memory AND whose training FLOPs stay
// below P_k / P_min times the cost of the single current module (so the
// synchronous round is never lengthened).
#pragma once

#include "cascade/partitioner.hpp"
#include "sysmodel/device.hpp"

namespace fp::fedprophet {

class AdaptivePerturbation {
 public:
  AdaptivePerturbation(float alpha_init, float delta_alpha, float gamma,
                       bool enabled)
      : alpha_init_(alpha_init),
        delta_alpha_(delta_alpha),
        gamma_(gamma),
        enabled_(enabled) {}

  /// Called when module m-1 is fixed: sets the base magnitude
  /// E[max ||Delta z_{m-1}||] and resets alpha to its initial value.
  void start_module(double mean_dz) {
    base_ = mean_dz;
    alpha_ = alpha_init_;
  }

  /// Current eps_{m-1} = alpha_t * base (Eq. 11).
  float epsilon() const { return static_cast<float>(alpha_ * base_); }
  float alpha() const { return alpha_; }

  /// Eq. 12: compares the cascade's current clean/adv ratio with the
  /// previous module's final ratio and adjusts alpha.
  void update(double clean_acc, double adv_acc, double prev_final_ratio) {
    if (!enabled_ || prev_final_ratio <= 0.0) return;
    const double ratio = adv_acc > 1e-6 ? clean_acc / adv_acc : 1e6;
    if (ratio > (1.0 + gamma_) * prev_final_ratio) {
      alpha_ += delta_alpha_;  // too little robustness: push eps up
    } else if (ratio < (1.0 - gamma_) * prev_final_ratio) {
      alpha_ = std::max(0.0f, alpha_ - delta_alpha_);
    }
  }

 private:
  float alpha_init_, delta_alpha_, gamma_;
  bool enabled_;
  float alpha_ = 0.3f;
  double base_ = 0.0;
};

/// Differentiated Module Assignment: returns the exclusive end module index
/// M_k + 1 for a client training from module m onward. With `enabled` false
/// every client trains exactly module m.
std::size_t assign_modules(const sys::ModelSpec& spec,
                           const cascade::Partition& partition, std::size_t m,
                           std::int64_t batch_size, std::int64_t avail_mem_bytes,
                           double avail_flops, double min_avail_flops,
                           bool enabled);

}  // namespace fp::fedprophet
