#include "fedprophet/fedprophet.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "fed/budget_exec.hpp"

namespace fp::fedprophet {

FedProphet::FedProphet(fed::FedEnv& env, FedProphetConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0xfedbeef),
      cfg2_(std::move(cfg)),
      model_(cfg2_.model_spec, init_rng_),
      cascade_(model_,
               cascade::partition_model(cfg2_.model_spec, cfg2_.rmin_bytes,
                                        cfg2_.fl.batch_size),
               init_rng_),
      apa_(cfg2_.alpha_init, cfg2_.delta_alpha, cfg2_.gamma, cfg2_.apa),
      clients_(env, cfg2_.fl.seed, /*stream_base=*/1000),
      acc_(model_) {
  acc_.reset();
  aux_acc_.resize(cascade_.num_modules());
  atom_blob_elems_.reserve(model_.num_atoms());
  for (std::size_t a = 0; a < model_.num_atoms(); ++a)
    atom_blob_elems_.push_back(model_.save_atom(a).size());
}

data::BatchIterator& FedProphet::client_batches(std::size_t k) {
  return clients_.batches(k, cfg2_.fl.batch_size);
}

float FedProphet::current_epsilon() const {
  // Worker replicas have no APA state: eps arrives with the dispatch context.
  if (net_ctx_) return net_eps_;
  // Module 1 always trains at the fixed input budget eps_0 (paper footnote 3).
  if (stage_ == 0) return cfg2_.fl.epsilon0;
  return apa_.epsilon();
}

std::int64_t FedProphet::input_dim_of_stage() const {
  const auto& mod = cascade_.partition().modules[stage_];
  return model_.spec().shape_before(mod.begin).numel();
}

void FedProphet::begin_dispatch(const std::vector<fed::TaskSpec>& tasks) {
  clients_.begin_round(tasks);
  round_lr_ = tasks.empty() ? lr_at(global_round_) : tasks.front().lr;

  // Minimum available performance among the cohort (Eq. 15): the last
  // clients_per_round dispatched devices. A sync barrier round dispatches
  // exactly that many at once (identical to min over the round's devices);
  // async single-client refills keep differentiating against the in-flight
  // cohort instead of degenerating to their own speed.
  for (const auto& task : tasks)
    if (task.has_device) perf_window_.push_back(task.device.avail_flops);
  const auto cap = static_cast<std::size_t>(
      std::max<std::int64_t>(1, cfg2_.fl.clients_per_round));
  if (perf_window_.size() > cap)
    perf_window_.erase(perf_window_.begin(), perf_window_.end() - cap);
  perf_min_ = 1.0;
  if (!perf_window_.empty()) {
    perf_min_ = perf_window_.front();
    for (const double p : perf_window_) perf_min_ = std::min(perf_min_, p);
  }

  // Snapshot the global model + aux heads once; every client trains a
  // private replica restored from these blobs, so clients can run
  // concurrently on the shared pool without stepping on the server state.
  // The snapshot survives across dispatch groups until finalize_round
  // changes the server state (async dropout/straggler refills reuse it).
  if (broadcast_.empty()) {
    const std::size_t num_modules = cascade_.num_modules();
    const auto& channel = engine().channel();
    broadcast_bytes_ = 0;
    if (engine().remote_active()) {
      // Distributed root: capture the encoded broadcast so net_save_context
      // ships the exact messages; decoding them here is bit- and
      // byte-identical to the fused downlink both ends run single-process.
      net_bcast_msg_ = channel.encode_down(model_.save_all());
      broadcast_bytes_ += net_bcast_msg_.wire_bytes();
      broadcast_ = channel.decode(net_bcast_msg_);
      net_aux_msgs_.assign(num_modules, {});
      broadcast_aux_.assign(num_modules, {});
      for (std::size_t j = stage_; j < num_modules; ++j) {
        net_aux_msgs_[j] = channel.encode_down(cascade_.save_aux(j));
        broadcast_bytes_ += net_aux_msgs_[j].wire_bytes();
        broadcast_aux_[j] = channel.decode(net_aux_msgs_[j]);
      }
    } else {
      broadcast_ = channel.downlink(model_.save_all(), &broadcast_bytes_);
      broadcast_aux_.assign(num_modules, {});
      for (std::size_t j = stage_; j < num_modules; ++j)
        broadcast_aux_[j] = channel.downlink(cascade_.save_aux(j),
                                             &broadcast_bytes_);
    }
    rebuild_atom_slices();
  }
}

void FedProphet::rebuild_atom_slices() {
  // Per-atom slices of the broadcast (save_all concatenates atom blobs in
  // order): the reference both ends share for delta-coded atom uplinks.
  broadcast_atoms_.resize(atom_blob_elems_.size());
  std::size_t off = 0;
  for (std::size_t a = 0; a < atom_blob_elems_.size(); ++a) {
    broadcast_atoms_[a].assign(broadcast_.begin() + off,
                               broadcast_.begin() + off + atom_blob_elems_[a]);
    off += atom_blob_elems_[a];
  }
}

fed::Upload FedProphet::train_client(const fed::TaskSpec& task) {
  const std::size_t num_modules = cascade_.num_modules();
  const float eps = current_epsilon();
  const std::size_t k = task.client;
  Rng build_rng(0);  // replica init is overwritten by the global snapshot
  models::BuiltModel local_model(model_.spec(), build_rng);
  local_model.load_all(broadcast_);
  cascade::CascadeState local_cascade(local_model, cascade_.partition(),
                                      build_rng);
  for (std::size_t j = stage_; j < num_modules; ++j)
    local_cascade.load_aux(j, broadcast_aux_[j]);

  // Differentiated Module Assignment (Eq. 14/15).
  std::size_t module_end = stage_ + 1;
  if (task.has_device) {
    const auto avail_mem = static_cast<std::int64_t>(
        static_cast<double>(task.device.avail_mem_bytes) *
        cfg2_.device_mem_scale);
    module_end =
        assign_modules(model_.spec(), cascade_.partition(), stage_,
                       cfg2_.fl.batch_size, avail_mem, task.device.avail_flops,
                       perf_min_, cfg2_.dma);
  } else if (cfg2_.dma) {
    module_end = num_modules;  // no device pool: everyone is a prophet
  }

  // Budget-aware execution (mem subsystem): plan the trained block's peak
  // against the budget bound to this dispatch and fall back to activation
  // checkpointing when it does not fit. No budget bound = zero-cost no-op.
  // FedProphet prices its work on the trainable backbone spec itself, so
  // the measured-plane bytes feed the swap decision unscaled (scale 1.0).
  const auto& part = cascade_.partition();
  const std::size_t plan_begin = part.modules[stage_].begin;
  const std::size_t plan_end = part.modules[module_end - 1].end;
  const bool plan_aux = !part.modules[module_end - 1].is_last;
  fed::Upload up;
  up.work.atom_begin = plan_begin;
  up.work.atom_end = plan_end;
  up.work.with_aux = plan_aux;
  up.work.pgd_steps = cfg2_.fl.pgd_steps;
  {
    // Aux heads resident in the replica beyond the trained one (which the
    // planner itself charges as parameter state when plan_aux is set).
    std::int64_t aux_params = 0;
    for (std::size_t j = stage_; j < num_modules; ++j)
      if (!(plan_aux && j == module_end - 1))
        aux_params += static_cast<std::int64_t>(broadcast_aux_[j].size());
    fed::apply_budgeted_execution(model_.spec(), plan_begin, plan_end,
                                  cfg2_.fl.batch_size, plan_aux,
                                  cfg2_.fl.pgd_steps > 0, aux_params,
                                  local_model, /*pricing_scale=*/1.0,
                                  &up.work);
  }

  cascade::LocalTrainConfig tcfg;
  tcfg.module_begin = stage_;
  tcfg.module_end = module_end;
  tcfg.mu = cfg2_.mu;
  tcfg.eps_in = eps;
  tcfg.pgd_steps = cfg2_.fl.pgd_steps;
  tcfg.sgd = cfg2_.fl.sgd;
  tcfg.sgd.lr = round_lr_;
  tcfg.compute = cfg2_.fl.compute;
  cascade::CascadeLocalTrainer trainer(local_cascade, tcfg);
  auto& batches = client_batches(k);
  for (std::int64_t it = 0; it < cfg2_.fl.local_iters; ++it)
    trainer.train_batch(batches.next(), clients_.rng(k));

  // Stage the upload: trained atoms (Eq. 16) and the last assigned
  // module's auxiliary head (Eq. 17), each routed through the wire codec
  // with its broadcast slice as the shared delta reference.
  const auto& channel = engine().channel();
  up.weight = task.weight;
  up.bytes_down = broadcast_bytes_;
  if (net_worker_) {
    // Worker mode: stage the ENCODED messages — the root decodes them
    // against its identical broadcast slices, so the aggregated blobs match
    // the fused uplink bit-for-bit without assuming codec idempotence.
    NetPayload np;
    np.atom_begin = trainer.atom_begin();
    np.atom_end = trainer.atom_end();
    np.module_end = module_end;
    np.atoms.reserve(np.atom_end - np.atom_begin);
    for (std::size_t a = np.atom_begin; a < np.atom_end; ++a) {
      comm::WireMessage msg =
          channel.encode_up(local_model.save_atom(a), &broadcast_atoms_[a]);
      up.bytes_up += msg.wire_bytes();
      np.atoms.push_back(std::move(msg));
    }
    if (local_cascade.aux_head(module_end - 1)) {
      np.has_aux = true;
      np.aux = channel.encode_up(local_cascade.save_aux(module_end - 1),
                                 &broadcast_aux_[module_end - 1]);
      up.bytes_up += np.aux.wire_bytes();
    }
    up.payload = std::move(np);
    return up;
  }
  Payload p;
  p.atom_begin = trainer.atom_begin();
  p.atom_end = trainer.atom_end();
  p.module_end = module_end;
  p.atoms.reserve(p.atom_end - p.atom_begin);
  for (std::size_t a = p.atom_begin; a < p.atom_end; ++a)
    p.atoms.push_back(channel.uplink(local_model.save_atom(a),
                                     &broadcast_atoms_[a], &up.bytes_up));
  if (local_cascade.aux_head(module_end - 1))
    p.aux = channel.uplink(local_cascade.save_aux(module_end - 1),
                           &broadcast_aux_[module_end - 1], &up.bytes_up);

  up.payload = std::move(p);
  return up;
}

void FedProphet::apply_update(const fed::TaskSpec& /*task*/, fed::Upload&& up,
                              fed::ApplyMode mode, float mix) {
  auto& p = std::any_cast<Payload&>(up.payload);
  if (mode == fed::ApplyMode::kBlend) {
    // One stale update lands as (1-mix)*current + mix*trained on exactly the
    // atoms (and aux head) the client trained; everything else keeps its
    // value through the partial average's membership rule. Atoms of modules
    // the cascade has already fixed are discarded: their E[max ||Delta z||]
    // has fed the next stage's budget (Eq. 11) and they must stay frozen.
    const std::size_t active_begin =
        cascade_.partition().modules[stage_].begin;
    for (std::size_t a = std::max(p.atom_begin, active_begin); a < p.atom_end;
         ++a) {
      acc_.add_dense_atom_blob(a, model_.save_atom(a), 1.0f - mix);
      acc_.add_dense_atom_blob(a, p.atoms[a - p.atom_begin], mix);
    }
    if (!p.aux.empty() && p.module_end >= stage_ + 1) {
      aux_acc_[p.module_end - 1].add(cascade_.save_aux(p.module_end - 1),
                                     1.0f - mix);
      aux_acc_[p.module_end - 1].add(p.aux, mix);
    }
  } else {
    for (std::size_t a = p.atom_begin; a < p.atom_end; ++a)
      acc_.add_dense_atom_blob(a, p.atoms[a - p.atom_begin], up.weight);
    if (!p.aux.empty()) aux_acc_[p.module_end - 1].add(p.aux, up.weight);
  }
}

void FedProphet::finalize_round(std::int64_t /*t*/) {
  clients_.end_round();
  acc_.finalize_into(model_);
  acc_.reset();
  for (std::size_t j = 0; j < aux_acc_.size(); ++j) {
    if (aux_acc_[j].empty()) continue;
    cascade_.load_aux(j, aux_acc_[j].average());
    aux_acc_[j].reset();
  }
  broadcast_.clear();  // server state changed: next dispatch re-snapshots

  const float eps = current_epsilon();
  eps_trace_.push_back(
      stage_ == 0
          ? static_cast<double>(cfg2_.fl.epsilon0)
          : static_cast<double>(eps) /
                std::sqrt(static_cast<double>(input_dim_of_stage())));
  ++global_round_;
}

void FedProphet::fix_current_module() {
  // Collect E[max ||Delta z_m||] from client data at the fixed module
  // (feeds eps for the next stage, Eq. 11).
  double mean_dz = 0.0, mean_dz_dim = 0.0;
  int samples = 0;
  const auto probe = std::min<std::size_t>(
      static_cast<std::size_t>(env_->num_clients()),
      5);  // a handful of clients suffices
  if (engine().remote_active()) {
    // The probed clients' data iterators and RNG streams live on their
    // owning workers: fan the probe out as a custom op and sum the per-client
    // statistics in client order, exactly as the local loop below does.
    comm::FrameWriter ctx;
    ctx.blob(model_.save_all());
    ctx.blob(cascade_.save_aux(stage_));
    ctx.u64(stage_);
    ctx.f32(current_epsilon());
    std::vector<std::size_t> clients(probe);
    for (std::size_t k = 0; k < probe; ++k) clients[k] = k;
    const auto frames =
        engine().remote()->run_custom(kNetOpProbeDz, ctx.data(), clients);
    for (const auto& frame : frames) {
      comm::FrameReader in(frame);
      mean_dz += in.f64();
      mean_dz_dim += in.f64();
      ++samples;
    }
  } else {
    cascade::LocalTrainConfig tcfg;
    tcfg.module_begin = stage_;
    tcfg.module_end = stage_ + 1;
    tcfg.mu = cfg2_.mu;
    tcfg.eps_in = current_epsilon();
    tcfg.pgd_steps = cfg2_.fl.pgd_steps;
    tcfg.compute = cfg2_.fl.compute;
    cascade::CascadeLocalTrainer trainer(cascade_, tcfg);
    for (std::size_t k = 0; k < probe; ++k) {
      const auto stats = trainer.measure_output_perturbation(
          client_batches(k).next(), clients_.rng(k));
      mean_dz += stats.mean_l2;
      mean_dz_dim += stats.mean_per_dim;
      ++samples;
    }
  }
  mean_dz /= samples;
  mean_dz_dim /= samples;
  mean_dz_prev_ = mean_dz;

  auto& rec = stages_.back();
  rec.mean_dz = mean_dz;
  rec.mean_dz_per_dim = mean_dz_dim;
}

// ---- Distributed-runtime hooks (DESIGN.md §10) ------------------------------

void FedProphet::net_save_context(comm::FrameWriter& out) const {
  out.u64(static_cast<std::uint64_t>(stage_));
  out.f32(current_epsilon());
  out.f64(perf_min_);
  out.f32(round_lr_);
  out.i64(broadcast_bytes_);
  out.wire_msg(net_bcast_msg_);
  for (std::size_t j = stage_; j < cascade_.num_modules(); ++j)
    out.wire_msg(net_aux_msgs_[j]);
}

void FedProphet::net_load_context(comm::FrameReader& in) {
  const auto& channel = engine().channel();
  stage_ = static_cast<std::size_t>(in.u64());
  net_eps_ = in.f32();
  net_ctx_ = true;
  perf_min_ = in.f64();
  round_lr_ = in.f32();
  broadcast_bytes_ = in.i64();
  broadcast_ = channel.decode(in.wire_msg());
  const std::size_t num_modules = cascade_.num_modules();
  broadcast_aux_.assign(num_modules, {});
  for (std::size_t j = stage_; j < num_modules; ++j)
    broadcast_aux_[j] = channel.decode(in.wire_msg());
  rebuild_atom_slices();
}

void FedProphet::net_begin_group(const std::vector<fed::TaskSpec>& owned) {
  // Pool bookkeeping over the OWNED tasks only: this worker's per-client
  // dispatch counts advance exactly as the single-process run's do.
  clients_.begin_round(owned);
}

void FedProphet::net_end_group() { clients_.end_round(); }

void FedProphet::net_encode_upload(const fed::Upload& up,
                                   comm::FrameWriter& out) const {
  write_upload_base(up, out);
  if (up.payload.type() == typeid(NetPayload)) {
    const auto& p = std::any_cast<const NetPayload&>(up.payload);
    out.u64(p.atom_begin);
    out.u64(p.atom_end);
    out.u64(p.module_end);
    out.u8(1);  // channel-encoded payload
    for (const auto& msg : p.atoms) out.wire_msg(msg);
    out.u8(p.has_aux ? 1 : 0);
    if (p.has_aux) out.wire_msg(p.aux);
  } else {
    const auto& p = std::any_cast<const Payload&>(up.payload);
    out.u64(p.atom_begin);
    out.u64(p.atom_end);
    out.u64(p.module_end);
    out.u8(0);  // dense fp32 payload (net.codec=identity)
    for (const auto& blob : p.atoms) out.blob(blob);
    out.u8(p.aux.empty() ? 0 : 1);
    if (!p.aux.empty()) out.blob(p.aux);
  }
}

fed::Upload FedProphet::net_decode_upload(const fed::TaskSpec& /*task*/,
                                          comm::FrameReader& in) {
  fed::Upload up;
  read_upload_base(up, in);
  Payload p;
  p.atom_begin = static_cast<std::size_t>(in.u64());
  p.atom_end = static_cast<std::size_t>(in.u64());
  p.module_end = static_cast<std::size_t>(in.u64());
  const bool encoded = in.u8() != 0;
  const auto& channel = engine().channel();
  p.atoms.reserve(p.atom_end - p.atom_begin);
  for (std::size_t a = p.atom_begin; a < p.atom_end; ++a)
    p.atoms.push_back(encoded
                          ? channel.decode(in.wire_msg(), &broadcast_atoms_[a])
                          : in.blob());
  if (in.u8() != 0)
    p.aux = encoded ? channel.decode(in.wire_msg(),
                                     &broadcast_aux_[p.module_end - 1])
                    : in.blob();
  up.payload = std::move(p);
  return up;
}

void FedProphet::net_custom_op(std::uint32_t op, comm::FrameReader& ctx,
                               std::size_t client, comm::FrameWriter& out) {
  if (op != kNetOpProbeDz)
    throw std::logic_error("FedProphet: unknown net custom op " +
                           std::to_string(op));
  // Rebuild the root's exact post-stage state from the context and run the
  // ||Delta z|| probe on this worker-owned client's data stream. The replica
  // is rebuilt per client; the batch iterator and RNG advance once per
  // probed client, matching the single-process loop.
  const nn::ParamBlob model_blob = ctx.blob();
  const nn::ParamBlob aux_blob = ctx.blob();
  const auto stage = static_cast<std::size_t>(ctx.u64());
  const float eps = ctx.f32();
  Rng build_rng(0);
  models::BuiltModel local_model(model_.spec(), build_rng);
  local_model.load_all(model_blob);
  cascade::CascadeState local_cascade(local_model, cascade_.partition(),
                                      build_rng);
  local_cascade.load_aux(stage, aux_blob);
  cascade::LocalTrainConfig tcfg;
  tcfg.module_begin = stage;
  tcfg.module_end = stage + 1;
  tcfg.mu = cfg2_.mu;
  tcfg.eps_in = eps;
  tcfg.pgd_steps = cfg2_.fl.pgd_steps;
  tcfg.compute = cfg2_.fl.compute;
  cascade::CascadeLocalTrainer trainer(local_cascade, tcfg);
  const auto stats = trainer.measure_output_perturbation(
      client_batches(client).next(), clients_.rng(client));
  out.f64(stats.mean_l2);
  out.f64(stats.mean_per_dim);
}

void FedProphet::train() {
  for (stage_ = 0; stage_ < cascade_.num_modules(); ++stage_) {
    stages_.push_back({});
    stages_.back().module = stage_;
    if (stage_ > 0) apa_.start_module(mean_dz_prev_);

    double best_score = -1.0;
    std::int64_t evals_since_best = 0;
    std::int64_t rounds_used = 0;
    for (std::int64_t r = 0; r < cfg2_.rounds_per_module; ++r) {
      run_round(global_round_);
      ++rounds_used;
      const bool do_eval =
          cfg2_.eval_every > 0 && ((r + 1) % cfg2_.eval_every == 0 ||
                                   r + 1 == cfg2_.rounds_per_module);
      if (!do_eval) continue;
      cascade::PrefixEvalConfig ecfg;
      ecfg.epsilon0 = cfg2_.fl.epsilon0;
      ecfg.max_samples = cfg2_.val_samples;
      ecfg.compute = cfg2_.fl.compute;
      const auto accs = cascade::evaluate_prefix(cascade_, stage_, env_->test, ecfg);
      last_clean_ = accs.clean;
      last_adv_ = accs.adv;
      apa_.update(accs.clean, accs.adv, prev_final_ratio_);
      history_.push_back({global_round_, accs.clean, accs.adv,
                          sim_time_.total(), eps_trace_.back(),
                          total_stats_.bytes_up, total_stats_.bytes_down,
                          total_stats_.peak_mem_bytes,
                          total_stats_.unique_participants,
                          total_stats_.agg_bytes_saved,
                          total_stats_.measured_comm_s});
      const double score = accs.clean + accs.adv;
      if (score > best_score + 1e-6) {
        best_score = score;
        evals_since_best = 0;
      } else if (cfg2_.patience_evals > 0 &&
                 ++evals_since_best >= cfg2_.patience_evals) {
        break;
      }
    }

    auto& rec = stages_.back();
    rec.rounds = rounds_used;
    rec.final_clean = last_clean_;
    rec.final_adv = last_adv_;
    rec.eps_used = current_epsilon();
    prev_final_ratio_ = last_adv_ > 1e-6 ? last_clean_ / last_adv_ : 0.0;
    fix_current_module();
  }
  stage_ = cascade_.num_modules() - 1;  // keep indices valid for callers
}

}  // namespace fp::fedprophet
