#include "fedprophet/fedprophet.hpp"

#include <cmath>

#include "core/parallel.hpp"

namespace fp::fedprophet {

FedProphet::FedProphet(fed::FedEnv& env, FedProphetConfig cfg)
    : FederatedAlgorithm(env, cfg.fl),
      init_rng_(cfg.fl.seed ^ 0xfedbeef),
      cfg2_(std::move(cfg)),
      model_(cfg2_.model_spec, init_rng_),
      cascade_(model_,
               cascade::partition_model(cfg2_.model_spec, cfg2_.rmin_bytes,
                                        cfg2_.fl.batch_size),
               init_rng_),
      apa_(cfg2_.alpha_init, cfg2_.delta_alpha, cfg2_.gamma, cfg2_.apa) {
  clients_.resize(static_cast<std::size_t>(env.num_clients()));
  for (std::size_t k = 0; k < clients_.size(); ++k)
    clients_[k].rng = Rng(cfg2_.fl.seed + 1000 + k);
}

data::BatchIterator& FedProphet::client_batches(std::size_t k) {
  auto& rt = clients_[k];
  if (!rt.batches)
    rt.batches.emplace(env_->shards[k], cfg2_.fl.batch_size, rt.rng);
  return *rt.batches;
}

float FedProphet::current_epsilon() const {
  // Module 1 always trains at the fixed input budget eps_0 (paper footnote 3).
  if (stage_ == 0) return cfg2_.fl.epsilon0;
  return apa_.epsilon();
}

std::int64_t FedProphet::input_dim_of_stage() const {
  const auto& mod = cascade_.partition().modules[stage_];
  return model_.spec().shape_before(mod.begin).numel();
}

void FedProphet::run_round(std::int64_t /*t*/) {
  const auto rc = sample_round();
  const float eps = current_epsilon();
  const float lr = lr_at(global_round_);

  // Minimum available performance among this round's participants (Eq. 15).
  double perf_min = 1.0;
  if (!rc.devices.empty()) {
    perf_min = rc.devices[0].avail_flops;
    for (const auto& d : rc.devices) perf_min = std::min(perf_min, d.avail_flops);
  }

  // Snapshot the global model + aux heads once; every client trains a
  // private replica restored from these blobs, so clients can run
  // concurrently on the shared pool without stepping on the server state.
  const std::size_t num_modules = cascade_.num_modules();
  const nn::ParamBlob global_all = model_.save_all();
  std::vector<nn::ParamBlob> global_aux(num_modules);
  for (std::size_t j = stage_; j < num_modules; ++j)
    global_aux[j] = cascade_.save_aux(j);

  struct ClientUpload {
    std::size_t atom_begin = 0, atom_end = 0, module_end = 0;
    std::vector<nn::ParamBlob> atoms;  ///< trained atoms [atom_begin, atom_end)
    nn::ParamBlob aux;                 ///< aux head of module_end-1 (may be empty)
    fed::ClientWork work;
  };
  std::vector<ClientUpload> uploads(rc.ids.size());

  // Per-client local training, one pool task per client. Each client only
  // touches its own RNG stream / batch iterator and a task-private model, so
  // results are bit-identical for any FP_NUM_THREADS (aggregation below runs
  // on this thread in client order).
  core::parallel_tasks(static_cast<std::int64_t>(rc.ids.size()), [&](std::int64_t ti) {
    const auto i = static_cast<std::size_t>(ti);
    const std::size_t k = rc.ids[i];
    Rng build_rng(0);  // replica init is overwritten by the global snapshot
    models::BuiltModel local_model(model_.spec(), build_rng);
    local_model.load_all(global_all);
    cascade::CascadeState local_cascade(local_model, cascade_.partition(),
                                        build_rng);
    for (std::size_t j = stage_; j < num_modules; ++j)
      local_cascade.load_aux(j, global_aux[j]);

    // Differentiated Module Assignment (Eq. 14/15).
    std::size_t module_end = stage_ + 1;
    if (!rc.devices.empty()) {
      const auto avail_mem = static_cast<std::int64_t>(
          static_cast<double>(rc.devices[i].avail_mem_bytes) *
          cfg2_.device_mem_scale);
      module_end =
          assign_modules(model_.spec(), cascade_.partition(), stage_,
                         cfg2_.fl.batch_size, avail_mem, rc.devices[i].avail_flops,
                         perf_min, cfg2_.dma);
    } else if (cfg2_.dma) {
      module_end = num_modules;  // no device pool: everyone is a prophet
    }

    cascade::LocalTrainConfig tcfg;
    tcfg.module_begin = stage_;
    tcfg.module_end = module_end;
    tcfg.mu = cfg2_.mu;
    tcfg.eps_in = eps;
    tcfg.pgd_steps = cfg2_.fl.pgd_steps;
    tcfg.sgd = cfg2_.fl.sgd;
    tcfg.sgd.lr = lr;
    cascade::CascadeLocalTrainer trainer(local_cascade, tcfg);
    auto& batches = client_batches(k);
    for (std::int64_t it = 0; it < cfg2_.fl.local_iters; ++it)
      trainer.train_batch(batches.next(), clients_[k].rng);

    // Stage the upload: trained atoms (Eq. 16) and the last assigned
    // module's auxiliary head (Eq. 17).
    auto& up = uploads[i];
    up.atom_begin = trainer.atom_begin();
    up.atom_end = trainer.atom_end();
    up.module_end = module_end;
    up.atoms.reserve(up.atom_end - up.atom_begin);
    for (std::size_t a = up.atom_begin; a < up.atom_end; ++a)
      up.atoms.push_back(local_model.save_atom(a));
    if (local_cascade.aux_head(module_end - 1))
      up.aux = local_cascade.save_aux(module_end - 1);

    // Simulated wall-clock contribution.
    up.work.atom_begin = cascade_.partition().modules[stage_].begin;
    up.work.atom_end = cascade_.partition().modules[module_end - 1].end;
    up.work.with_aux = !cascade_.partition().modules[module_end - 1].is_last;
    up.work.pgd_steps = cfg2_.fl.pgd_steps;
  });

  // Server aggregation in client order (deterministic float summation).
  fed::PartialAccumulator acc(model_);
  acc.reset();
  std::vector<fed::BlobAverager> aux_acc(num_modules);
  std::vector<fed::ClientWork> work;
  work.reserve(rc.ids.size());
  for (std::size_t i = 0; i < rc.ids.size(); ++i) {
    const auto& up = uploads[i];
    const float qk = env_->weights[rc.ids[i]];
    for (std::size_t a = up.atom_begin; a < up.atom_end; ++a)
      acc.add_dense_atom_blob(a, up.atoms[a - up.atom_begin], qk);
    if (!up.aux.empty()) aux_acc[up.module_end - 1].add(up.aux, qk);
    work.push_back(up.work);
  }
  acc.finalize_into(model_);
  for (std::size_t j = stage_; j < num_modules; ++j)
    if (!aux_acc[j].empty()) cascade_.load_aux(j, aux_acc[j].average());

  if (!rc.devices.empty())
    add_sim_time(fed::simulate_round_time(model_.spec(), rc.devices, work,
                                          env_->cost_cfg, cfg2_.fl.local_iters));

  eps_trace_.push_back(
      stage_ == 0
          ? static_cast<double>(cfg2_.fl.epsilon0)
          : static_cast<double>(eps) /
                std::sqrt(static_cast<double>(input_dim_of_stage())));
  ++global_round_;
}

void FedProphet::fix_current_module() {
  // Collect E[max ||Delta z_m||] from client data at the fixed module
  // (feeds eps for the next stage, Eq. 11).
  cascade::LocalTrainConfig tcfg;
  tcfg.module_begin = stage_;
  tcfg.module_end = stage_ + 1;
  tcfg.mu = cfg2_.mu;
  tcfg.eps_in = current_epsilon();
  tcfg.pgd_steps = cfg2_.fl.pgd_steps;
  cascade::CascadeLocalTrainer trainer(cascade_, tcfg);
  double mean_dz = 0.0, mean_dz_dim = 0.0;
  int samples = 0;
  const auto probe =
      std::min<std::size_t>(clients_.size(), 5);  // a handful of clients suffices
  for (std::size_t k = 0; k < probe; ++k) {
    const auto stats = trainer.measure_output_perturbation(
        client_batches(k).next(), clients_[k].rng);
    mean_dz += stats.mean_l2;
    mean_dz_dim += stats.mean_per_dim;
    ++samples;
  }
  mean_dz /= samples;
  mean_dz_dim /= samples;
  mean_dz_prev_ = mean_dz;

  auto& rec = stages_.back();
  rec.mean_dz = mean_dz;
  rec.mean_dz_per_dim = mean_dz_dim;
}

void FedProphet::train() {
  for (stage_ = 0; stage_ < cascade_.num_modules(); ++stage_) {
    stages_.push_back({});
    stages_.back().module = stage_;
    if (stage_ > 0) apa_.start_module(mean_dz_prev_);

    double best_score = -1.0;
    std::int64_t evals_since_best = 0;
    std::int64_t rounds_used = 0;
    for (std::int64_t r = 0; r < cfg2_.rounds_per_module; ++r) {
      run_round(global_round_);
      ++rounds_used;
      const bool do_eval =
          cfg2_.eval_every > 0 && ((r + 1) % cfg2_.eval_every == 0 ||
                                   r + 1 == cfg2_.rounds_per_module);
      if (!do_eval) continue;
      cascade::PrefixEvalConfig ecfg;
      ecfg.epsilon0 = cfg2_.fl.epsilon0;
      ecfg.max_samples = cfg2_.val_samples;
      const auto accs = cascade::evaluate_prefix(cascade_, stage_, env_->test, ecfg);
      last_clean_ = accs.clean;
      last_adv_ = accs.adv;
      apa_.update(accs.clean, accs.adv, prev_final_ratio_);
      history_.push_back({global_round_, accs.clean, accs.adv,
                          sim_time_.total(), eps_trace_.back()});
      const double score = accs.clean + accs.adv;
      if (score > best_score + 1e-6) {
        best_score = score;
        evals_since_best = 0;
      } else if (cfg2_.patience_evals > 0 &&
                 ++evals_since_best >= cfg2_.patience_evals) {
        break;
      }
    }

    auto& rec = stages_.back();
    rec.rounds = rounds_used;
    rec.final_clean = last_clean_;
    rec.final_adv = last_adv_;
    rec.eps_used = current_epsilon();
    prev_final_ratio_ = last_adv_ > 1e-6 ? last_clean_ / last_adv_ : 0.0;
    fix_current_module();
  }
  stage_ = cascade_.num_modules() - 1;  // keep indices valid for callers
}

}  // namespace fp::fedprophet
