// FedProphet (paper Algorithm 2): memory-efficient federated adversarial
// training via robust and consistent cascade learning.
//
// Modules are trained in forward order. Within a module's stage, each
// communication round: the coordinator adjusts eps_{m-1} (Adaptive
// Perturbation Adjustment) and assigns each sampled client the largest
// trainable block of future modules (Differentiated Module Assignment);
// clients run adversarial cascade learning with strong-convexity
// regularization (Eq. 9/13); the server partial-averages modules (Eq. 16)
// and auxiliary heads (Eq. 17). When a module converges it is frozen and
// E[max ||Delta z_m||] is collected for the next stage's budget.
#pragma once

#include <memory>
#include <optional>

#include "cascade/trainer.hpp"
#include "fed/algorithm.hpp"
#include "fed/client_pool.hpp"
#include "fedprophet/coordinator.hpp"

namespace fp::fedprophet {

struct FedProphetConfig {
  fed::FlConfig fl;
  sys::ModelSpec model_spec;          ///< trainable backbone
  std::int64_t rmin_bytes = 0;        ///< partition constraint (Algorithm 1)
  std::int64_t rounds_per_module = 30;  ///< paper: <= 500 with early stop
  std::int64_t eval_every = 5;        ///< APA / early-stop cadence (rounds)
  std::int64_t patience_evals = 0;    ///< 0 = no early stop
  float mu = 1e-5f;                   ///< strong convexity (paper's optimum)
  float alpha_init = 0.3f;
  float delta_alpha = 0.1f;
  float gamma = 0.05f;
  bool apa = true;                    ///< Table 3 ablation toggles
  bool dma = true;
  /// Device memory is multiplied by this before the DMA check, mapping the
  /// paper-scale device fleet onto the scaled-down trainable model
  /// (DESIGN.md §1). <= 0 selects full-model / paper scale (1.0).
  double device_mem_scale = 1.0;
  std::int64_t val_samples = 256;     ///< validation subset for C_m / A_m
};

class FedProphet final : public fed::FederatedAlgorithm {
 public:
  FedProphet(fed::FedEnv& env, FedProphetConfig cfg);

  std::string name() const override { return "FedProphet"; }
  models::BuiltModel& global_model() override { return model_; }
  cascade::CascadeState& cascade() { return cascade_; }
  const cascade::Partition& partition() const { return cascade_.partition(); }

  /// Full Algorithm 2 (all modules). Rounds are stage-internal and execute
  /// through the shared fed::RoundEngine (run_round from the base class).
  void train();

  /// Per-stage records: module index, rounds used, final prefix accuracy,
  /// eps actually used, measured ||Delta z|| statistics.
  struct StageRecord {
    std::size_t module = 0;
    std::int64_t rounds = 0;
    double final_clean = 0.0, final_adv = 0.0;
    double eps_used = 0.0;
    double mean_dz = 0.0;       ///< E[max ||Delta z_m||] after fixing
    double mean_dz_per_dim = 0.0;
  };
  const std::vector<StageRecord>& stages() const { return stages_; }

  /// Round-indexed eps-per-dimension trace (paper Fig. 10).
  const std::vector<double>& eps_trace() const { return eps_trace_; }

  const FedProphetConfig& config() const { return cfg2_; }

 private:
  /// Wire payload: the trained atom range, the last assigned module, the
  /// atom blobs (Eq. 16), and that module's auxiliary head (Eq. 17).
  struct Payload {
    std::size_t atom_begin = 0, atom_end = 0, module_end = 0;
    std::vector<nn::ParamBlob> atoms;
    nn::ParamBlob aux;
  };

  /// Worker-mode wire payload: the same structure as Payload, but each blob
  /// is still the channel-encoded WireMessage captured at uplink time (the
  /// root decodes against its own broadcast slices).
  struct NetPayload {
    std::size_t atom_begin = 0, atom_end = 0, module_end = 0;
    std::vector<comm::WireMessage> atoms;
    bool has_aux = false;
    comm::WireMessage aux;
  };

  /// RemoteDispatcher custom op: the fix_current_module ||Delta z|| probe.
  static constexpr std::uint32_t kNetOpProbeDz = 1;

  // RoundEngine hooks: Differentiated Module Assignment decides what each
  // client trains; uploads partial-average per atom plus aux heads.
  void begin_dispatch(const std::vector<fed::TaskSpec>& tasks) override;
  fed::Upload train_client(const fed::TaskSpec& task) override;
  void apply_update(const fed::TaskSpec& task, fed::Upload&& up,
                    fed::ApplyMode mode, float mix) override;
  void finalize_round(std::int64_t t) override;

  // Distributed-runtime hooks (DESIGN.md §10): context = stage + eps +
  // perf_min + lr + the encoded broadcast (model and live aux heads);
  // uploads are per-atom/aux WireMessages; the dz probe fans out as a
  // custom op so worker-owned client streams advance exactly once.
  bool net_capable() const override { return true; }
  void net_save_context(comm::FrameWriter& out) const override;
  void net_load_context(comm::FrameReader& in) override;
  void net_begin_group(const std::vector<fed::TaskSpec>& owned) override;
  void net_end_group() override;
  void net_encode_upload(const fed::Upload& up,
                         comm::FrameWriter& out) const override;
  fed::Upload net_decode_upload(const fed::TaskSpec& task,
                                comm::FrameReader& in) override;
  void net_custom_op(std::uint32_t op, comm::FrameReader& ctx,
                     std::size_t client, comm::FrameWriter& out) override;
  void net_set_worker_mode(bool on) override { net_worker_ = on; }
  /// FedProphet prices its ClientWork on the trainable backbone (atom ranges
  /// index the cascade partition), not the paper-shape cost spec.
  const sys::ModelSpec& time_spec(const fed::FedEnv&) const override {
    return model_.spec();
  }

  data::BatchIterator& client_batches(std::size_t k);
  float current_epsilon() const;
  std::int64_t input_dim_of_stage() const;
  void fix_current_module();
  /// Rebuilds broadcast_atoms_ as per-atom slices of broadcast_.
  void rebuild_atom_slices();

  Rng init_rng_;  ///< seeds weight/aux-head init (per cfg.fl.seed)
  FedProphetConfig cfg2_;
  models::BuiltModel model_;
  cascade::CascadeState cascade_;
  AdaptivePerturbation apa_;
  /// Shared client runtime pool, stream base 1000 (the historical FedProphet
  /// per-client seeds Rng(seed + 1000 + k), distinct from the baselines' 5000).
  fed::ClientPool clients_;
  std::vector<StageRecord> stages_;
  std::vector<double> eps_trace_;

  // Dispatch/aggregation state owned by the engine pipeline.
  nn::ParamBlob broadcast_;                   ///< as decoded by clients
  std::vector<nn::ParamBlob> broadcast_aux_;  ///< per-module aux-head blobs
  std::vector<nn::ParamBlob> broadcast_atoms_;  ///< per-atom slices of broadcast_
  std::vector<std::size_t> atom_blob_elems_;  ///< save_atom sizes (slicing)
  std::int64_t broadcast_bytes_ = 0;  ///< wire size of one client's download
  float round_lr_ = 0.0f;
  double perf_min_ = 1.0;  ///< Eq. 15's min available performance
  std::vector<double> perf_window_;  ///< last clients_per_round device speeds
  fed::PartialAccumulator acc_;
  std::vector<fed::BlobAverager> aux_acc_;

  // Distributed runtime (DESIGN.md §10).
  bool net_worker_ = false;   ///< stage encoded uplinks instead of blobs
  bool net_ctx_ = false;      ///< a dispatch context has been loaded (worker)
  float net_eps_ = 0.0f;      ///< eps from context: APA state lives root-side
  comm::WireMessage net_bcast_msg_;  ///< root: the model broadcast as encoded
  std::vector<comm::WireMessage> net_aux_msgs_;  ///< root: aux heads encoded

  std::size_t stage_ = 0;           ///< current module index m
  std::int64_t global_round_ = 0;   ///< t across all stages
  double prev_final_ratio_ = 0.0;   ///< C*_{m-1} / A*_{m-1}
  double mean_dz_prev_ = 0.0;       ///< base magnitude for eps_{m-1}
  double last_clean_ = 0.0, last_adv_ = 0.0;
};

}  // namespace fp::fedprophet
