#include "fedprophet/coordinator.hpp"

namespace fp::fedprophet {

std::size_t assign_modules(const sys::ModelSpec& spec,
                           const cascade::Partition& partition, std::size_t m,
                           std::int64_t batch_size, std::int64_t avail_mem_bytes,
                           double avail_flops, double min_avail_flops,
                           bool enabled) {
  const std::size_t num_modules = partition.num_modules();
  if (!enabled || m + 1 >= num_modules) return m + 1;

  const std::size_t abegin = partition.modules[m].begin;
  // Budget: training the whole block must not exceed available memory
  // (Eq. 14) and must not take longer than the slowest client training just
  // module m (Eq. 15), estimated by FLOPs relative to performance.
  const double single_macs = static_cast<double>(sys::module_forward_macs(
      spec, abegin, partition.modules[m].end, batch_size,
      /*with_aux_head=*/!partition.modules[m].is_last));
  const double flops_budget =
      (avail_flops / min_avail_flops) * single_macs;

  std::size_t end = m + 1;
  for (std::size_t j = m + 1; j < num_modules; ++j) {
    const std::size_t aend = partition.modules[j].end;
    const bool with_aux = !partition.modules[j].is_last;
    const std::int64_t mem =
        sys::module_train_mem_bytes(spec, abegin, aend, batch_size, with_aux);
    const double macs = static_cast<double>(
        sys::module_forward_macs(spec, abegin, aend, batch_size, with_aux));
    if (mem > avail_mem_bytes || macs > flops_budget) break;
    end = j + 1;
  }
  return end;
}

}  // namespace fp::fedprophet
