#include "cascade/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "mem/arena.hpp"
#include "tensor/ops.hpp"

namespace fp::cascade {

namespace {
std::vector<Tensor*> block_params(CascadeState& cascade, std::size_t abegin,
                                  std::size_t aend, nn::Sequential* aux) {
  auto params = cascade.model().parameters_range(abegin, aend);
  if (aux)
    for (auto* p : aux->parameters()) params.push_back(p);
  return params;
}

std::vector<Tensor*> block_grads(CascadeState& cascade, std::size_t abegin,
                                 std::size_t aend, nn::Sequential* aux) {
  auto grads = cascade.model().gradients_range(abegin, aend);
  if (aux)
    for (auto* g : aux->gradients()) grads.push_back(g);
  return grads;
}
}  // namespace

CascadeLocalTrainer::CascadeLocalTrainer(CascadeState& cascade,
                                         const LocalTrainConfig& cfg)
    : cascade_(&cascade),
      cfg_(cfg),
      atom_begin_(cascade.partition().modules.at(cfg.module_begin).begin),
      atom_end_(cascade.partition().modules.at(cfg.module_end - 1).end),
      aux_(cascade.aux_head(cfg.module_end - 1)),
      optimizer_(block_params(cascade, atom_begin_, atom_end_, aux_),
                 block_grads(cascade, atom_begin_, atom_end_, aux_), cfg.sgd) {
  if (cfg.module_begin >= cfg.module_end ||
      cfg.module_end > cascade.num_modules())
    throw std::invalid_argument("CascadeLocalTrainer: bad module range");
}

Tensor CascadeLocalTrainer::block_input(const Tensor& x) {
  if (atom_begin_ == 0) return x;
  // Frozen preceding modules run in eval mode (they are fixed, w*_m). Under
  // a client memory scope their caches are released as the forward walks
  // (there is never a backward through the prefix), so the frozen prefix
  // contributes only a couple of flowing activations to the measured peak.
  // This is the cascade's inference-only hot path: it honours the configured
  // compute mode (int8 / Winograd), while the trained block stays fp32.
  const compute::InferenceScope scope(cfg_.compute);
  if (mem::scope_active())
    return cascade_->model().forward_range_nocache(0, atom_begin_, x,
                                                   /*train=*/false);
  return cascade_->model().forward_range(0, atom_begin_, x, /*train=*/false);
}

attack::PgdConfig CascadeLocalTrainer::attack_config() const {
  attack::PgdConfig a;
  a.epsilon = cfg_.eps_in;
  a.steps = cfg_.pgd_steps;
  if (atom_begin_ == 0) {
    a.norm = attack::Norm::kLinf;  // image space: l_inf ball, valid pixels
    a.clip = true;
  } else {
    a.norm = attack::Norm::kL2;  // feature space: l2 ball, unconstrained
    a.clip = false;
  }
  return a;
}

float CascadeLocalTrainer::loss_grad(const Tensor& z_in,
                                     const std::vector<std::int64_t>& y,
                                     Tensor* grad_in, bool train_mode,
                                     bool track_stats) {
  auto& model = cascade_->model();
  model.set_bn_tracking(track_stats);
  const Tensor z_out = model.forward_range(atom_begin_, atom_end_, z_in, train_mode);
  const std::int64_t batch = z_out.dim(0);
  float loss;
  Tensor grad_z;
  if (aux_) {
    const Tensor logits = aux_->forward(z_out, train_mode);
    loss = cross_entropy(logits, y);
    // Strong convexity regularizer: mu/2 * mean_i ||z_i||^2 (Eq. 9).
    const float reg = 0.5f * cfg_.mu * z_out.dot(z_out) /
                      static_cast<float>(batch);
    loss += reg;
    if (grad_in) {
      grad_z = aux_->backward(cross_entropy_grad(logits, y));
      grad_z.add_scaled_(z_out, cfg_.mu / static_cast<float>(batch));
    }
  } else {
    loss = cross_entropy(z_out, y);
    if (grad_in) grad_z = cross_entropy_grad(z_out, y);
  }
  if (grad_in)
    *grad_in = cascade_->model().backward_range(atom_begin_, atom_end_, grad_z);
  model.set_bn_tracking(true);
  return loss;
}

float CascadeLocalTrainer::train_batch(const data::Batch& batch, Rng& rng) {
  const Tensor z_in = block_input(batch.x);
  Tensor z_train = z_in;
  if (cfg_.adversarial && cfg_.eps_in > 0.0f && cfg_.pgd_steps > 0) {
    // Attack passes run with batch statistics but frozen running stats, and
    // their parameter-gradient contamination is discarded by zero_grad below.
    auto fn = [this](const Tensor& z, const std::vector<std::int64_t>& yy,
                     Tensor* g) {
      return loss_grad(z, yy, g, /*train_mode=*/true, /*track_stats=*/false);
    };
    z_train = attack::pgd(fn, z_in, batch.y, attack_config(), rng);
  }
  // Final update pass.
  cascade_->model().zero_grad_range(atom_begin_, atom_end_);
  if (aux_) aux_->zero_grad();
  Tensor unused;
  const float loss = loss_grad(z_train, batch.y, &unused, /*train_mode=*/true,
                               /*track_stats=*/true);
  optimizer_.step();
  return loss;
}

CascadeLocalTrainer::DzStats CascadeLocalTrainer::measure_output_perturbation(
    const data::Batch& batch, Rng& rng) {
  const Tensor z_in = block_input(batch.x);
  auto fn = [this](const Tensor& z, const std::vector<std::int64_t>& yy,
                   Tensor* g) {
    return loss_grad(z, yy, g, /*train_mode=*/false, /*track_stats=*/false);
  };
  const Tensor z_adv = attack::pgd(fn, z_in, batch.y, attack_config(), rng);
  auto& model = cascade_->model();
  const Tensor out_clean =
      model.forward_range(atom_begin_, atom_end_, z_in, /*train=*/false);
  const Tensor out_adv =
      model.forward_range(atom_begin_, atom_end_, z_adv, /*train=*/false);
  const Tensor dz = out_adv.sub(out_clean);
  const auto norms = dz.row_l2_norms();
  DzStats stats;
  stats.dim = dz.numel() / dz.dim(0);
  for (const auto n : norms) {
    stats.mean_l2 += n;
    stats.max_l2 = std::max<double>(stats.max_l2, n);
  }
  stats.mean_l2 /= static_cast<double>(norms.size());
  stats.mean_per_dim =
      stats.mean_l2 / std::sqrt(static_cast<double>(std::max<std::int64_t>(1, stats.dim)));
  return stats;
}

PrefixAccuracy evaluate_prefix(CascadeState& cascade, std::size_t m,
                               const data::Dataset& dataset,
                               const PrefixEvalConfig& cfg) {
  Rng rng(cfg.seed);
  const std::int64_t n = cfg.max_samples > 0
                             ? std::min(cfg.max_samples, dataset.size())
                             : dataset.size();
  attack::PgdConfig a;
  a.epsilon = cfg.epsilon0;
  a.steps = cfg.pgd_steps;
  auto fn = [&cascade, m](const Tensor& x, const std::vector<std::int64_t>& y,
                          Tensor* g) {
    const Tensor logits = cascade.prefix_logits(m, x, /*train=*/false);
    const float loss = cross_entropy(logits, y);
    if (g) *g = cascade.prefix_backward(m, 0, cross_entropy_grad(logits, y));
    return loss;
  };
  std::int64_t clean_ok = 0, adv_ok = 0;
  for (std::int64_t start = 0; start < n; start += cfg.batch_size) {
    const auto b =
        data::take_batch(dataset, start, std::min(cfg.batch_size, n - start));
    std::vector<std::int64_t> clean_pred, adv_pred;
    {
      // Pure-inference classification forwards run under the configured
      // compute mode; the attack below (fn) stays fp32.
      const compute::InferenceScope scope(cfg.compute);
      clean_pred = cascade.prefix_logits(m, b.x, false).argmax_rows();
    }
    const Tensor x_adv = attack::pgd(fn, b.x, b.y, a, rng);
    {
      const compute::InferenceScope scope(cfg.compute);
      adv_pred = cascade.prefix_logits(m, x_adv, false).argmax_rows();
    }
    for (std::size_t i = 0; i < clean_pred.size(); ++i) {
      clean_ok += clean_pred[i] == b.y[i];
      adv_ok += adv_pred[i] == b.y[i];
    }
  }
  return {static_cast<double>(clean_ok) / static_cast<double>(n),
          static_cast<double>(adv_ok) / static_cast<double>(n)};
}

}  // namespace fp::cascade
