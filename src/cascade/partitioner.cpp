#include "cascade/partitioner.hpp"

#include <sstream>
#include <stdexcept>

#include "mem/planner.hpp"

namespace fp::cascade {

namespace {
std::int64_t range_mem(const sys::ModelSpec& model, std::size_t begin,
                       std::size_t end, std::int64_t batch) {
  const bool is_last = end == model.atoms.size();
  return sys::module_train_mem_bytes(model, begin, end, batch,
                                     /*with_aux_head=*/!is_last);
}
}  // namespace

Partition partition_model(const sys::ModelSpec& model, std::int64_t rmin_bytes,
                          std::int64_t batch_size,
                          const sys::TrainCostConfig* cost_cfg) {
  if (model.atoms.empty()) throw std::invalid_argument("partition: empty model");
  Partition p;
  p.rmin_bytes = rmin_bytes;
  p.batch_size = batch_size;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < model.atoms.size(); ++i) {
    // Try to extend the current module [begin, i] by atom i.
    if (i > begin && range_mem(model, begin, i + 1, batch_size) > rmin_bytes) {
      p.modules.push_back({begin, i, false});
      begin = i;
    }
  }
  p.modules.push_back({begin, model.atoms.size(), true});
  // Mark is_last correctly (only the final range).
  for (std::size_t m = 0; m + 1 < p.modules.size(); ++m)
    p.modules[m].is_last = false;

  // Surface Rmin violations (single atoms too large to ever fit) with the
  // swap cost one local training step of that module pays.
  sys::TrainCostConfig cfg = cost_cfg ? *cost_cfg : sys::TrainCostConfig{};
  cfg.batch_size = batch_size;
  for (std::size_t m = 0; m < p.modules.size(); ++m) {
    const std::int64_t mem = module_mem_bytes(model, p, m);
    if (mem <= rmin_bytes) continue;
    const auto& mod = p.modules[m];
    const auto cost = sys::train_step_cost(model, mod.begin, mod.end,
                                           !mod.is_last, cfg, rmin_bytes);
    p.oversized.push_back({m, mem, mem - rmin_bytes, cost.swap_traversals,
                           cost.swap_bytes});
  }
  return p;
}

std::int64_t module_mem_bytes(const sys::ModelSpec& model, const Partition& p,
                              std::size_t module_index) {
  const auto& mod = p.modules.at(module_index);
  return range_mem(model, mod.begin, mod.end, p.batch_size);
}

std::int64_t module_macs(const sys::ModelSpec& model, const Partition& p,
                         std::size_t module_index) {
  const auto& mod = p.modules.at(module_index);
  return sys::module_forward_macs(model, mod.begin, mod.end, p.batch_size,
                                  /*with_aux_head=*/!mod.is_last);
}

std::int64_t module_planned_peak_bytes(const sys::ModelSpec& model,
                                       const Partition& p,
                                       std::size_t module_index) {
  const auto& mod = p.modules.at(module_index);
  mem::PlanRequest req;
  req.atom_begin = mod.begin;
  req.atom_end = mod.end;
  req.batch_size = p.batch_size;
  req.with_aux_head = !mod.is_last;
  req.include_runtime_scratch = false;  // idealized: comparable to analytic
  // The liveness peak is the fragmentation-free bound: every term it sums
  // also appears in the analytic requirement (with a lifetime at least as
  // long), so planned <= analytic holds by construction. The best-fit
  // assignment peak can sit a few percent above it.
  return mem::plan_module_memory(model, req).liveness_peak_bytes;
}

std::string format_partition(const sys::ModelSpec& model, const Partition& p) {
  std::ostringstream os;
  os << "Model: " << model.name << "  (Rmin = "
     << static_cast<double>(p.rmin_bytes) / (1 << 20) << " MB, batch "
     << p.batch_size << ")\n";
  os << "Module | Atoms                          | Mem. Req. | Fwd MACs\n";
  for (std::size_t m = 0; m < p.modules.size(); ++m) {
    const auto& mod = p.modules[m];
    std::string names;
    for (std::size_t a = mod.begin; a < mod.end; ++a) {
      if (!names.empty()) names += ", ";
      names += model.atoms[a].name;
    }
    if (names.size() > 30) names = names.substr(0, 27) + "...";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%6zu | %-30s | %6.1f MB | %6.2f G\n", m + 1,
                  names.c_str(),
                  static_cast<double>(module_mem_bytes(model, p, m)) / (1 << 20),
                  static_cast<double>(module_macs(model, p, m)) / 1e9);
    os << buf;
  }
  for (const auto& ov : p.oversized) {
    char buf[200];
    std::snprintf(buf, sizeof(buf),
                  "  ! module %zu exceeds Rmin by %.1f MB: swaps %d "
                  "traversals, %.1f MB per step\n",
                  ov.module + 1,
                  static_cast<double>(ov.excess_bytes) / (1 << 20),
                  ov.swap_traversals, ov.swap_bytes / (1 << 20));
    os << buf;
  }
  return os.str();
}

}  // namespace fp::cascade
