#include "cascade/partitioner.hpp"

#include <sstream>
#include <stdexcept>

namespace fp::cascade {

namespace {
std::int64_t range_mem(const sys::ModelSpec& model, std::size_t begin,
                       std::size_t end, std::int64_t batch) {
  const bool is_last = end == model.atoms.size();
  return sys::module_train_mem_bytes(model, begin, end, batch,
                                     /*with_aux_head=*/!is_last);
}
}  // namespace

Partition partition_model(const sys::ModelSpec& model, std::int64_t rmin_bytes,
                          std::int64_t batch_size) {
  if (model.atoms.empty()) throw std::invalid_argument("partition: empty model");
  Partition p;
  p.rmin_bytes = rmin_bytes;
  p.batch_size = batch_size;
  std::size_t begin = 0;
  for (std::size_t i = 0; i < model.atoms.size(); ++i) {
    // Try to extend the current module [begin, i] by atom i.
    if (i > begin && range_mem(model, begin, i + 1, batch_size) > rmin_bytes) {
      p.modules.push_back({begin, i, false});
      begin = i;
    }
  }
  p.modules.push_back({begin, model.atoms.size(), true});
  // Mark is_last correctly (only the final range).
  for (std::size_t m = 0; m + 1 < p.modules.size(); ++m)
    p.modules[m].is_last = false;
  return p;
}

std::int64_t module_mem_bytes(const sys::ModelSpec& model, const Partition& p,
                              std::size_t module_index) {
  const auto& mod = p.modules.at(module_index);
  return range_mem(model, mod.begin, mod.end, p.batch_size);
}

std::int64_t module_macs(const sys::ModelSpec& model, const Partition& p,
                         std::size_t module_index) {
  const auto& mod = p.modules.at(module_index);
  return sys::module_forward_macs(model, mod.begin, mod.end, p.batch_size,
                                  /*with_aux_head=*/!mod.is_last);
}

std::string format_partition(const sys::ModelSpec& model, const Partition& p) {
  std::ostringstream os;
  os << "Model: " << model.name << "  (Rmin = "
     << static_cast<double>(p.rmin_bytes) / (1 << 20) << " MB, batch "
     << p.batch_size << ")\n";
  os << "Module | Atoms                          | Mem. Req. | Fwd MACs\n";
  for (std::size_t m = 0; m < p.modules.size(); ++m) {
    const auto& mod = p.modules[m];
    std::string names;
    for (std::size_t a = mod.begin; a < mod.end; ++a) {
      if (!names.empty()) names += ", ";
      names += model.atoms[a].name;
    }
    if (names.size() > 30) names = names.substr(0, 27) + "...";
    char buf[160];
    std::snprintf(buf, sizeof(buf), "%6zu | %-30s | %6.1f MB | %6.2f G\n", m + 1,
                  names.c_str(),
                  static_cast<double>(module_mem_bytes(model, p, m)) / (1 << 20),
                  static_cast<double>(module_macs(model, p, m)) / 1e9);
    os << buf;
  }
  return os.str();
}

}  // namespace fp::cascade
