// Memory-constrained model partitioner (paper Algorithm 1, §6.1).
//
// Greedily packs consecutive atoms into modules such that training any
// single module (with its auxiliary head) fits in the minimal reserved
// memory Rmin. This yields the least number of modules for the greedy
// traversal order, so memory-constrained clients never swap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysmodel/cost_model.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::cascade {

struct ModuleRange {
  std::size_t begin = 0;  ///< first atom index
  std::size_t end = 0;    ///< one past the last atom index
  bool is_last = false;   ///< last module trains with the real output (l_M = l)

  std::size_t num_atoms() const { return end - begin; }
};

struct Partition {
  std::vector<ModuleRange> modules;
  std::int64_t rmin_bytes = 0;
  std::int64_t batch_size = 0;

  std::size_t num_modules() const { return modules.size(); }
};

/// Greedy Algorithm 1: append atoms to the current module while the training
/// memory requirement (module + auxiliary head, batch included) stays below
/// Rmin. An atom that alone exceeds Rmin becomes its own module (training it
/// will swap; the paper's Rmin is chosen so this does not happen).
Partition partition_model(const sys::ModelSpec& model, std::int64_t rmin_bytes,
                          std::int64_t batch_size);

/// Memory requirement of training one module of the partition.
std::int64_t module_mem_bytes(const sys::ModelSpec& model, const Partition& p,
                              std::size_t module_index);

/// Forward MACs of one batch through one module (incl. aux head).
std::int64_t module_macs(const sys::ModelSpec& model, const Partition& p,
                         std::size_t module_index);

/// Human-readable table of the partition (paper Tables 7/8 format).
std::string format_partition(const sys::ModelSpec& model, const Partition& p);

}  // namespace fp::cascade
