// Memory-constrained model partitioner (paper Algorithm 1, §6.1).
//
// Greedily packs consecutive atoms into modules such that training any
// single module (with its auxiliary head) fits in the minimal reserved
// memory Rmin. This yields the least number of modules for the greedy
// traversal order, so memory-constrained clients never swap.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sysmodel/cost_model.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::cascade {

struct ModuleRange {
  std::size_t begin = 0;  ///< first atom index
  std::size_t end = 0;    ///< one past the last atom index
  bool is_last = false;   ///< last module trains with the real output (l_M = l)

  std::size_t num_atoms() const { return end - begin; }
};

/// A module whose single atom alone exceeds Rmin: training it within the
/// reserved memory will swap. The greedy packing cannot split an atom, so
/// instead of hiding the violation the partition surfaces the swap cost a
/// client training this module pays per local step (priced with the
/// default TrainCostConfig unless partition_model is given one).
struct OversizedModule {
  std::size_t module = 0;        ///< index into Partition::modules
  std::int64_t mem_bytes = 0;    ///< training memory requirement
  std::int64_t excess_bytes = 0; ///< mem_bytes - rmin_bytes
  int swap_traversals = 0;       ///< swapped forward/backward passes per step
  double swap_bytes = 0.0;       ///< bytes streamed to/from storage per step
};

struct Partition {
  std::vector<ModuleRange> modules;
  std::int64_t rmin_bytes = 0;
  std::int64_t batch_size = 0;
  /// Modules that violate Rmin (oversized single atoms), with their swap
  /// cost. Empty when every module fits — the paper's intended regime.
  std::vector<OversizedModule> oversized;

  std::size_t num_modules() const { return modules.size(); }
};

/// Greedy Algorithm 1: append atoms to the current module while the training
/// memory requirement (module + auxiliary head, batch included) stays below
/// Rmin. An atom that alone exceeds Rmin becomes its own module; the swap
/// traffic training it incurs is surfaced in Partition::oversized.
/// `cost_cfg` prices that swap traffic (nullptr = defaults).
Partition partition_model(const sys::ModelSpec& model, std::int64_t rmin_bytes,
                          std::int64_t batch_size,
                          const sys::TrainCostConfig* cost_cfg = nullptr);

/// Memory requirement of training one module of the partition.
std::int64_t module_mem_bytes(const sys::ModelSpec& model, const Partition& p,
                              std::size_t module_index);

/// Forward MACs of one batch through one module (incl. aux head).
std::int64_t module_macs(const sys::ModelSpec& model, const Partition& p,
                         std::size_t module_index);

/// Liveness-planned peak of training one module (mem planner, idealized
/// mode, fragmentation-free liveness bound): the measured-plane cross-check
/// of module_mem_bytes. Provably <= the analytic requirement, so a partition
/// whose modules fit Rmin analytically also fits under the planner.
std::int64_t module_planned_peak_bytes(const sys::ModelSpec& model,
                                       const Partition& p,
                                       std::size_t module_index);

/// Human-readable table of the partition (paper Tables 7/8 format).
std::string format_partition(const sys::ModelSpec& model, const Partition& p);

}  // namespace fp::cascade
