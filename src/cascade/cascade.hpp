// Runtime cascade state: a built model, its partition, and one auxiliary
// output model theta_m per non-final module (paper Fig. 1 / Eq. 4).
//
// The auxiliary model is a single fully connected layer on the flattened
// module output — the paper's design (1) in §5.1, chosen so the early-exit
// loss with the l2 regularizer is strongly convex in z_m (Lemma 1).
#pragma once

#include "cascade/partitioner.hpp"
#include "models/built_model.hpp"

namespace fp::cascade {

class CascadeState {
 public:
  CascadeState(models::BuiltModel& model, Partition partition, Rng& rng);

  models::BuiltModel& model() { return *model_; }
  const Partition& partition() const { return partition_; }
  std::size_t num_modules() const { return partition_.num_modules(); }

  /// Auxiliary head of module m (nullptr for the last module, whose output
  /// model is the backbone's own classifier).
  nn::Sequential* aux_head(std::size_t m) { return aux_heads_[m].get(); }

  /// Logits of the cascaded prefix (w_1 ... w_m) through module m's output
  /// model: atoms [0, end_m) then aux head (or nothing if last).
  Tensor prefix_logits(std::size_t m, const Tensor& x, bool train);

  /// Gradient entry point matching prefix_logits: backward through the aux
  /// head (if any) and atoms [begin_from, end_m), returning grad wrt the
  /// input of atom `begin_from`.
  Tensor prefix_backward(std::size_t m, std::size_t begin_from,
                         const Tensor& grad_logits);

  /// Wire blobs of module m (its atoms, concatenated) and of its aux head.
  nn::ParamBlob save_module(std::size_t m);
  void load_module(std::size_t m, const nn::ParamBlob& blob);
  nn::ParamBlob save_aux(std::size_t m);
  void load_aux(std::size_t m, const nn::ParamBlob& blob);

 private:
  models::BuiltModel* model_;
  Partition partition_;
  std::vector<std::unique_ptr<nn::Sequential>> aux_heads_;
};

/// Builds the auxiliary head (Flatten + Linear) for the boundary after atom
/// `end` of `spec`.
std::unique_ptr<nn::Sequential> make_aux_head(const sys::ModelSpec& spec,
                                              std::size_t end, Rng& rng);

}  // namespace fp::cascade
