#include "cascade/cascade.hpp"

#include <stdexcept>

namespace fp::cascade {

std::unique_ptr<nn::Sequential> make_aux_head(const sys::ModelSpec& spec,
                                              std::size_t end, Rng& rng) {
  // Global-average-pool + one fully connected layer (theta_m = {W_m, b_m},
  // paper §5.1): pooling keeps the head tiny at any spatial size while the
  // linear-plus-cross-entropy structure keeps the early-exit loss convex in
  // z_m (GAP is linear), so the mu/2 ||z_m||^2 regularizer of Eq. 9 still
  // yields strong convexity.
  const sys::TensorShape z = spec.shape_before(end);
  auto head = std::make_unique<nn::Sequential>();
  if (z.h * z.w > 1) head->push_back(std::make_unique<nn::GlobalAvgPool>());
  head->push_back(std::make_unique<nn::Flatten>());
  head->push_back(std::make_unique<nn::Linear>(z.c, spec.num_classes, rng));
  return head;
}

CascadeState::CascadeState(models::BuiltModel& model, Partition partition, Rng& rng)
    : model_(&model), partition_(std::move(partition)) {
  aux_heads_.resize(partition_.num_modules());
  for (std::size_t m = 0; m + 1 < partition_.num_modules(); ++m)
    aux_heads_[m] = make_aux_head(model.spec(), partition_.modules[m].end, rng);
}

Tensor CascadeState::prefix_logits(std::size_t m, const Tensor& x, bool train) {
  const auto& mod = partition_.modules.at(m);
  Tensor z = model_->forward_range(0, mod.end, x, train);
  if (aux_heads_[m]) return aux_heads_[m]->forward(z, train);
  return z;  // last module: the backbone output is already logits
}

Tensor CascadeState::prefix_backward(std::size_t m, std::size_t begin_from,
                                     const Tensor& grad_logits) {
  const auto& mod = partition_.modules.at(m);
  Tensor g = grad_logits;
  if (aux_heads_[m]) g = aux_heads_[m]->backward(g);
  return model_->backward_range(begin_from, mod.end, g);
}

nn::ParamBlob CascadeState::save_module(std::size_t m) {
  const auto& mod = partition_.modules.at(m);
  nn::ParamBlob blob;
  for (std::size_t a = mod.begin; a < mod.end; ++a) {
    const auto piece = model_->save_atom(a);
    blob.insert(blob.end(), piece.begin(), piece.end());
  }
  return blob;
}

void CascadeState::load_module(std::size_t m, const nn::ParamBlob& blob) {
  const auto& mod = partition_.modules.at(m);
  std::size_t offset = 0;
  for (std::size_t a = mod.begin; a < mod.end; ++a) {
    const std::size_t n = model_->save_atom(a).size();
    if (offset + n > blob.size())
      throw std::invalid_argument("load_module: blob too small");
    nn::ParamBlob piece(blob.begin() + static_cast<std::ptrdiff_t>(offset),
                        blob.begin() + static_cast<std::ptrdiff_t>(offset + n));
    model_->load_atom(a, piece);
    offset += n;
  }
  if (offset != blob.size())
    throw std::invalid_argument("load_module: blob size mismatch");
}

nn::ParamBlob CascadeState::save_aux(std::size_t m) {
  if (!aux_heads_.at(m)) return {};
  return nn::save_blob(*aux_heads_[m]);
}

void CascadeState::load_aux(std::size_t m, const nn::ParamBlob& blob) {
  if (!aux_heads_.at(m)) {
    if (!blob.empty()) throw std::invalid_argument("load_aux: last module has none");
    return;
  }
  nn::load_blob(*aux_heads_[m], blob);
}

}  // namespace fp::cascade
