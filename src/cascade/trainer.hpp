// Client-side adversarial cascade learning (paper §5.1, Eq. 9; §6.3, Eq. 13).
//
// Trains a contiguous block of modules [module_begin, module_end) against the
// early-exit loss of the LAST module in the block (Differentiated Module
// Assignment trains several "future" modules jointly), with:
//   * adversarial perturbation on the block input (l_inf in image space for
//     the first module, l2 in feature space further in),
//   * strong-convexity regularization mu/2 ||z_m||^2 on the block output
//     whenever the output model is an auxiliary head (Eq. 9),
//   * frozen preceding modules forwarded in eval mode.
#pragma once

#include "attack/attacks.hpp"
#include "cascade/cascade.hpp"
#include "data/dataset.hpp"
#include "nn/optimizer.hpp"
#include "tensor/compute_mode.hpp"

namespace fp::cascade {

struct LocalTrainConfig {
  std::size_t module_begin = 0;
  std::size_t module_end = 1;     ///< one past the last trained module
  float mu = 1e-5f;               ///< strong-convexity hyperparameter
  float eps_in = 8.0f / 255.0f;   ///< perturbation budget on the block input
  int pgd_steps = 10;             ///< PGD-10 training (paper §7.1)
  bool adversarial = true;
  nn::SgdConfig sgd;
  /// Kernels for the frozen-prefix forward (the fixed w*_m modules in front
  /// of the trained block). The trained block itself always runs fp32 — its
  /// forwards carry gradients (DESIGN.md §8).
  compute::ComputeConfig compute;
};

class CascadeLocalTrainer {
 public:
  CascadeLocalTrainer(CascadeState& cascade, const LocalTrainConfig& cfg);

  /// One local SGD iteration on one batch; returns the training loss.
  float train_batch(const data::Batch& batch, Rng& rng);

  /// Early-exit loss and input-gradient at the block input (shared by the
  /// PGD attack and by tests).
  float loss_grad(const Tensor& z_in, const std::vector<std::int64_t>& y,
                  Tensor* grad_in, bool train_mode, bool track_stats);

  void set_lr(float lr) { optimizer_.set_lr(lr); }

  /// Statistics of ||Delta z|| on the block output under the training attack
  /// (feeds Adaptive Perturbation Adjustment, Eq. 11, and Fig. 8's d*).
  struct DzStats {
    double mean_l2 = 0.0;
    double max_l2 = 0.0;
    double mean_per_dim = 0.0;  ///< mean_l2 / sqrt(dim), Fig. 10's y-axis
    std::int64_t dim = 0;
  };
  DzStats measure_output_perturbation(const data::Batch& batch, Rng& rng);

  std::size_t atom_begin() const { return atom_begin_; }
  std::size_t atom_end() const { return atom_end_; }

 private:
  Tensor block_input(const Tensor& x);
  attack::PgdConfig attack_config() const;

  CascadeState* cascade_;
  LocalTrainConfig cfg_;
  std::size_t atom_begin_, atom_end_;
  nn::Sequential* aux_;  ///< output model of the block (null = backbone head)
  nn::Sgd optimizer_;
};

/// Validation accuracy of the cascaded prefix ending at module m: clean and
/// under a PGD attack on the raw input (the C_m / A_m the clients report to
/// the server's training coordinator).
struct PrefixAccuracy {
  double clean = 0.0;
  double adv = 0.0;
};

struct PrefixEvalConfig {
  float epsilon0 = 8.0f / 255.0f;
  int pgd_steps = 10;
  std::int64_t batch_size = 100;
  std::int64_t max_samples = 512;
  std::uint64_t seed = 17;
  /// Kernels for the pure-inference classification forwards; the PGD attack
  /// generation stays fp32 (its forwards feed a backward).
  compute::ComputeConfig compute;
};

PrefixAccuracy evaluate_prefix(CascadeState& cascade, std::size_t m,
                               const data::Dataset& dataset,
                               const PrefixEvalConfig& cfg);

}  // namespace fp::cascade
