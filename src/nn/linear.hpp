// Fully connected layer. Also serves as the auxiliary output model theta_m
// in cascade learning (paper Eq. 9 uses a single linear layer so that the
// early-exit loss is convex in z_m).
#pragma once

#include "nn/layer.hpp"
#include "tensor/qgemm.hpp"

namespace fp::nn {

class Linear final : public Layer {
 public:
  Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
         bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override {
    cached_input_ = Tensor();
    cached_input_shape_.clear();
  }

  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  std::string name() const override { return "Linear"; }

  std::int64_t in_features() const { return in_features_; }
  std::int64_t out_features() const { return out_features_; }
  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  std::int64_t in_features_, out_features_;
  bool has_bias_;
  Tensor weight_;  ///< [out, in]
  Tensor bias_;    ///< [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_;  ///< [N, in] (flattened view of the forward input)
  std::vector<std::int64_t> cached_input_shape_;

  // int8 inference cache (DESIGN.md §8): weight rows are already the
  // K-contiguous layout qgemm wants ([out, in], out = x * W^T), packed once
  // per weight content and reused across eval forwards.
  QuantizedMat qweight_;
  std::uint64_t qweight_hash_ = 0;
  std::uint64_t qweight_epoch_ = 0;
};

}  // namespace fp::nn
