// Parameter-free layers: ReLU and Flatten.
#pragma once

#include "nn/layer.hpp"

namespace fp::nn {

class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override { cached_mask_ = Tensor(); }
  std::string name() const override { return "ReLU"; }

 private:
  Tensor cached_mask_;  ///< 1 where the input was positive
};

/// Reshapes NCHW -> [N, C*H*W]; backward restores the original shape.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override { cached_shape_.clear(); }
  std::string name() const override { return "Flatten"; }

 private:
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace fp::nn
