#include "nn/linear.hpp"

#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "tensor/compute_mode.hpp"
#include "tensor/ops.hpp"

namespace fp::nn {

Linear::Linear(std::int64_t in_features, std::int64_t out_features, Rng& rng,
               bool bias)
    : in_features_(in_features),
      out_features_(out_features),
      has_bias_(bias),
      weight_({out_features, in_features}),
      bias_({out_features}),
      grad_weight_({out_features, in_features}),
      grad_bias_({out_features}) {
  const float bound = std::sqrt(6.0f / static_cast<float>(in_features));
  for (auto& v : weight_.span()) v = rng.uniform(-bound, bound);
}

Tensor Linear::forward(const Tensor& x, bool /*train*/) {
  if (x.ndim() < 2) throw std::invalid_argument("Linear: input must be >= 2-D");
  const std::int64_t n = x.dim(0);
  const std::int64_t features = x.numel() / n;
  if (features != in_features_)
    throw std::invalid_argument("Linear: feature mismatch, got " + x.shape_str());
  Tensor out({n, out_features_});
  if (compute::int8_active()) {
    // Inference-only quantized path: no activation caching (a backward after
    // this forward must fail loudly, not differentiate stale state).
    cached_input_ = Tensor();
    cached_input_shape_.clear();
    const Tensor x2 = x.reshape({n, in_features_});
    if (qgemm_profitable(in_features_)) {
      const std::uint64_t epoch = compute::weights_epoch();
      if (qweight_epoch_ != epoch || qweight_.rows != out_features_) {
        const std::uint64_t hash = content_hash_fnv1a(
            weight_.data(),
            static_cast<std::size_t>(weight_.numel()) * sizeof(float));
        if (qweight_hash_ != hash || qweight_.rows != out_features_) {
          quantize_rows_int8(weight_.data(), out_features_, in_features_,
                             in_features_, qweight_);
          qweight_hash_ = hash;
        }
        qweight_epoch_ = epoch;
      }
      thread_local QuantizedMat qacts;
      quantize_rows_int8(x2.data(), n, in_features_, in_features_, qacts);
      // out = x * W^T: both packs are K-contiguous rows, the qgemm shape.
      qgemm_nt(n, out_features_, qacts, qweight_, out.data(), out_features_);
    } else {
      // Too shallow to amortize quantize-on-pack: fp32 GEMM, still no cache.
      gemm(false, true, n, out_features_, in_features_, 1.0f, x2.data(),
           weight_.data(), 0.0f, out.data());
    }
  } else {
    cached_input_shape_ = x.shape();
    cached_input_ = x.reshape({n, in_features_});
    // out = x * W^T
    gemm(false, true, n, out_features_, in_features_, 1.0f, cached_input_.data(),
         weight_.data(), 0.0f, out.data());
  }
  if (has_bias_) {
    float* od = out.data();
    const float* bias = bias_.data();
    core::parallel_for(0, n, 64, [&](std::int64_t b0, std::int64_t b1) {
      for (std::int64_t i = b0; i < b1; ++i)
        for (std::int64_t j = 0; j < out_features_; ++j)
          od[i * out_features_ + j] += bias[j];
    });
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  if (cached_input_.empty()) throw std::logic_error("Linear::backward before forward");
  const std::int64_t n = cached_input_.dim(0);
  // grad_W += grad_out^T * x : [out, in] = [N, out]^T [N, in]
  gemm(true, false, out_features_, in_features_, n, 1.0f, grad_out.data(),
       cached_input_.data(), 1.0f, grad_weight_.data());
  if (has_bias_) {
    // Per-output-feature reduction with samples in fixed order: bit-identical
    // for any thread count.
    const float* god = grad_out.data();
    float* gb = grad_bias_.data();
    core::parallel_for(0, out_features_, 64, [&](std::int64_t j0, std::int64_t j1) {
      for (std::int64_t j = j0; j < j1; ++j) {
        float s = gb[j];
        for (std::int64_t i = 0; i < n; ++i) s += god[i * out_features_ + j];
        gb[j] = s;
      }
    });
  }
  // grad_x = grad_out * W : [N, in]
  Tensor grad_in({n, in_features_});
  gemm(false, false, n, in_features_, out_features_, 1.0f, grad_out.data(),
       weight_.data(), 0.0f, grad_in.data());
  return grad_in.reshape(cached_input_shape_);
}

std::vector<Tensor*> Linear::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> Linear::gradients() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

}  // namespace fp::nn
