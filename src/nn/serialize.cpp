#include "nn/serialize.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace fp::nn {

namespace {
std::vector<Tensor*> all_tensors(Layer& layer) {
  auto out = layer.parameters();
  for (auto* b : layer.buffers()) out.push_back(b);
  return out;
}
}  // namespace

ParamBlob save_blob(Layer& layer) {
  ParamBlob blob;
  for (auto* t : all_tensors(layer))
    blob.insert(blob.end(), t->data(), t->data() + t->numel());
  return blob;
}

void load_blob(Layer& layer, const ParamBlob& blob) {
  // Shape-check the WHOLE blob before touching any tensor: a mismatched
  // checkpoint must not leave the layer half-overwritten.
  const auto tensors = all_tensors(layer);
  std::size_t need = 0;
  for (auto* t : tensors) need += static_cast<std::size_t>(t->numel());
  if (need != blob.size())
    throw std::invalid_argument(
        "load_blob: blob holds " + std::to_string(blob.size()) +
        " floats but the layer's " + std::to_string(tensors.size()) +
        " tensors (params + buffers) need exactly " + std::to_string(need));
  std::size_t offset = 0;
  for (auto* t : tensors) {
    const auto n = static_cast<std::size_t>(t->numel());
    std::copy_n(blob.data() + offset, n, t->data());
    offset += n;
  }
}

std::int64_t param_count(Layer& layer) {
  std::int64_t n = 0;
  for (auto* p : layer.parameters()) n += p->numel();
  return n;
}

void blob_axpy(ParamBlob& acc, const ParamBlob& blob, float weight) {
  if (acc.empty()) acc.assign(blob.size(), 0.0f);
  if (acc.size() != blob.size())
    throw std::invalid_argument("blob_axpy: size mismatch");
  for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += weight * blob[i];
}

void blob_scale(ParamBlob& acc, float s) {
  for (auto& v : acc) v *= s;
}

double blob_l2_distance(const ParamBlob& a, const ParamBlob& b) {
  if (a.size() != b.size())
    throw std::invalid_argument("blob_l2_distance: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

}  // namespace fp::nn
