// Layer interface: explicit forward/backward with cached activations.
//
// There is no tape autograd in this library. Each layer caches what it needs
// during forward and implements backward(grad_out) -> grad_in, accumulating
// parameter gradients into its grad tensors. The same backward chain yields
// d(loss)/d(input), which is what PGD-style attacks consume.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.hpp"

namespace fp::nn {

class BatchNorm2d;

class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` selects training-time behaviour
  /// (batch statistics in BatchNorm). The input is cached for backward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Propagates the upstream gradient, accumulating into parameter grads,
  /// and returns the gradient w.r.t. the layer input. Must be called after
  /// a matching forward().
  virtual Tensor backward(const Tensor& grad_out) = 0;

  /// Trainable parameters (updated by the optimizer, averaged by FL).
  virtual std::vector<Tensor*> parameters() { return {}; }
  /// Gradients, index-aligned with parameters().
  virtual std::vector<Tensor*> gradients() { return {}; }
  /// Non-trainable state (BatchNorm running statistics), averaged by FL
  /// but never touched by the optimizer.
  virtual std::vector<Tensor*> buffers() { return {}; }

  void zero_grad() {
    for (auto* g : gradients()) g->zero_();
  }

  /// Releases every forward-time cache and scratch buffer (activation
  /// checkpointing drops a segment's caches after its forward and recomputes
  /// them for the backward; see DESIGN.md §6). After a drop, backward() is
  /// invalid until the next forward(). Default: nothing cached.
  virtual void drop_cached_activations() {}

  /// Visits every BatchNorm2d nested in this layer (bank switching, stat
  /// freezing). Default: none.
  virtual void for_each_bn(const std::function<void(BatchNorm2d&)>& fn) {
    (void)fn;
  }

  virtual std::string name() const = 0;
};

using LayerPtr = std::unique_ptr<Layer>;

}  // namespace fp::nn
