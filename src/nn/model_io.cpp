#include "nn/model_io.hpp"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <stdexcept>

namespace fp::nn {

namespace {
constexpr char kMagic[4] = {'F', 'P', 'C', 'K'};
constexpr std::uint32_t kVersion = 1;

std::uint64_t fnv1a(const float* data, std::size_t count) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto* bytes = reinterpret_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < count * sizeof(float); ++i) {
    h ^= bytes[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::string hex64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

// 4 magic + 4 version + 8 count header, 8 checksum trailer.
constexpr std::uint64_t kHeaderBytes = 16;
constexpr std::uint64_t kTrailerBytes = 8;
}  // namespace

void save_checkpoint(const std::string& path, const ParamBlob& blob) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("save_checkpoint: cannot open " + path);
  out.write(kMagic, 4);
  const std::uint32_t version = kVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const std::uint64_t count = blob.size();
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  out.write(reinterpret_cast<const char*>(blob.data()),
            static_cast<std::streamsize>(blob.size() * sizeof(float)));
  const std::uint64_t checksum = fnv1a(blob.data(), blob.size());
  out.write(reinterpret_cast<const char*>(&checksum), sizeof(checksum));
  if (!out) throw std::runtime_error("save_checkpoint: write failed: " + path);
}

ParamBlob load_checkpoint(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("load_checkpoint: cannot open " + path);
  char magic[4];
  in.read(magic, 4);
  if (!in || std::memcmp(magic, kMagic, 4) != 0)
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  std::uint32_t version = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in || version != kVersion)
    throw std::runtime_error("load_checkpoint: unsupported version " +
                             std::to_string(version) + " in " + path +
                             " (this build reads version " +
                             std::to_string(kVersion) + ")");
  std::uint64_t count = 0;
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in)
    throw std::runtime_error("load_checkpoint: truncated header in " + path);
  // Size-check against the actual file BEFORE allocating: a corrupted count
  // must produce a named diagnostic, not a multi-gigabyte allocation.
  in.seekg(0, std::ios::end);
  const std::uint64_t file_bytes = static_cast<std::uint64_t>(in.tellg());
  const std::uint64_t want_bytes =
      kHeaderBytes + count * sizeof(float) + kTrailerBytes;
  if (file_bytes != want_bytes)
    throw std::runtime_error(
        "load_checkpoint: " + path + " is " + std::to_string(file_bytes) +
        " bytes but its header promises " + std::to_string(count) +
        " floats (" + std::to_string(want_bytes) +
        " bytes with header and checksum) — truncated or corrupt file");
  in.seekg(static_cast<std::streamoff>(kHeaderBytes), std::ios::beg);
  ParamBlob blob(count);
  in.read(reinterpret_cast<char*>(blob.data()),
          static_cast<std::streamsize>(count * sizeof(float)));
  std::uint64_t checksum = 0;
  in.read(reinterpret_cast<char*>(&checksum), sizeof(checksum));
  if (!in)
    throw std::runtime_error("load_checkpoint: truncated payload in " + path);
  const std::uint64_t computed = fnv1a(blob.data(), blob.size());
  if (checksum != computed)
    throw std::runtime_error("load_checkpoint: checksum mismatch in " + path +
                             ": stored " + hex64(checksum) +
                             " but payload hashes to " + hex64(computed) +
                             " (corrupt or partially written file)");
  return blob;
}

void save_layer_checkpoint(const std::string& path, Layer& layer) {
  save_checkpoint(path, save_blob(layer));
}

void load_layer_checkpoint(const std::string& path, Layer& layer) {
  try {
    load_blob(layer, load_checkpoint(path));
  } catch (const std::invalid_argument& e) {
    // load_blob reports element counts; add WHICH file did not fit.
    throw std::runtime_error("load_layer_checkpoint: " + path +
                             " does not fit the layer: " + e.what());
  }
}

}  // namespace fp::nn
