#include "nn/lora.hpp"

#include <cmath>
#include <stdexcept>

#include "tensor/ops.hpp"

namespace fp::nn {

LoRaLinear::LoRaLinear(Tensor base_weight, Tensor base_bias, std::int64_t rank,
                       float alpha, Rng& rng)
    : in_(base_weight.ndim() == 2 ? base_weight.dim(1) : 0),
      out_(base_weight.ndim() == 2 ? base_weight.dim(0) : 0),
      rank_(rank),
      scale_(alpha / static_cast<float>(rank)),
      w0_(std::move(base_weight)),
      bias_(std::move(base_bias)),
      a_({rank, in_}),
      b_({out_, rank}),
      grad_a_({rank, in_}),
      grad_b_({out_, rank}) {
  if (in_ <= 0 || out_ <= 0)
    throw std::invalid_argument("LoRaLinear: base weight must be [out, in]");
  if (rank_ < 1 || rank_ > std::min(in_, out_))
    throw std::invalid_argument("LoRaLinear: rank out of range");
  if (bias_.numel() != 0 && bias_.numel() != out_)
    throw std::invalid_argument("LoRaLinear: bad bias");
  const float bound = std::sqrt(6.0f / static_cast<float>(in_));
  for (auto& v : a_.span()) v = rng.uniform(-bound, bound);
  // b_ stays zero: the adapter starts as an exact no-op.
}

Tensor LoRaLinear::forward(const Tensor& x, bool /*train*/) {
  if (x.ndim() < 2) throw std::invalid_argument("LoRaLinear: want [N, in]");
  const std::int64_t n = x.dim(0);
  if (x.numel() / n != in_)
    throw std::invalid_argument("LoRaLinear: feature mismatch");
  cached_input_ = x.reshape({n, in_});
  Tensor out({n, out_});
  // Base path: x W0^T (+ bias).
  gemm(false, true, n, out_, in_, 1.0f, cached_input_.data(), w0_.data(), 0.0f,
       out.data());
  if (bias_.numel() == out_) {
    for (std::int64_t i = 0; i < n; ++i)
      for (std::int64_t j = 0; j < out_; ++j) out[i * out_ + j] += bias_[j];
  }
  // Adapter path: s * (x A^T) B^T.
  cached_ax_ = Tensor({n, rank_});
  gemm(false, true, n, rank_, in_, 1.0f, cached_input_.data(), a_.data(), 0.0f,
       cached_ax_.data());
  gemm(false, true, n, out_, rank_, scale_, cached_ax_.data(), b_.data(), 1.0f,
       out.data());
  return out;
}

Tensor LoRaLinear::backward(const Tensor& grad_out) {
  if (cached_input_.empty())
    throw std::logic_error("LoRaLinear::backward before forward");
  const std::int64_t n = cached_input_.dim(0);
  // grad_B += s * grad_out^T (x A^T)        : [out, r]
  gemm(true, false, out_, rank_, n, scale_, grad_out.data(), cached_ax_.data(),
       1.0f, grad_b_.data());
  // grad_(xA^T) = s * grad_out B            : [N, r]
  Tensor g_ax({n, rank_});
  gemm(false, false, n, rank_, out_, scale_, grad_out.data(), b_.data(), 0.0f,
       g_ax.data());
  // grad_A += g_ax^T x                      : [r, in]
  gemm(true, false, rank_, in_, n, 1.0f, g_ax.data(), cached_input_.data(), 1.0f,
       grad_a_.data());
  // grad_x = grad_out W0 + g_ax A           : [N, in]
  Tensor grad_in({n, in_});
  gemm(false, false, n, in_, out_, 1.0f, grad_out.data(), w0_.data(), 0.0f,
       grad_in.data());
  gemm(false, false, n, in_, rank_, 1.0f, g_ax.data(), a_.data(), 1.0f,
       grad_in.data());
  return grad_in;
}

Tensor LoRaLinear::merged_weight() const {
  Tensor merged = w0_;
  // merged += s * B A.
  gemm(false, false, out_, in_, rank_, scale_, b_.data(), a_.data(), 1.0f,
       merged.data());
  return merged;
}

}  // namespace fp::nn
