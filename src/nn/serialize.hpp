// Flat parameter blobs: the wire format of the federated simulation.
//
// A blob is the concatenation of all trainable parameters followed by all
// buffers (BatchNorm running statistics) of a layer stack, in traversal
// order. Server aggregation, broadcast, and client upload all operate on
// blobs, mirroring the tensors-on-the-wire of a real FL deployment.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fp::nn {

using ParamBlob = std::vector<float>;

/// Serializes parameters + buffers of `layer` into a flat blob.
ParamBlob save_blob(Layer& layer);

/// Loads a blob produced by save_blob back into `layer`.
/// Throws if the size does not match.
void load_blob(Layer& layer, const ParamBlob& blob);

/// Total number of trainable parameters.
std::int64_t param_count(Layer& layer);

/// Weighted in-place accumulation: acc += weight * blob.
void blob_axpy(ParamBlob& acc, const ParamBlob& blob, float weight);

/// acc *= s.
void blob_scale(ParamBlob& acc, float s);

/// Euclidean distance between two blobs (model-drift diagnostics).
double blob_l2_distance(const ParamBlob& a, const ParamBlob& b);

}  // namespace fp::nn
