// Batch normalization over NCHW activations.
//
// The layer keeps two independent banks of running statistics. Bank 0 is the
// default; bank 1 exists for FedRBN-style dual-BN training, where clean and
// adversarial examples are normalized with separate statistics and the
// robustness is "propagated" between clients through the adversarial bank.
// The affine parameters (gamma, beta) are shared between banks, a documented
// simplification of FedRBN (see DESIGN.md §5).
#pragma once

#include "nn/layer.hpp"

namespace fp::nn {

class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(std::int64_t channels, float momentum = 0.1f,
                       float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override {
    cached_xhat_ = Tensor();
    cached_inv_std_ = Tensor();
    cached_shape_.clear();
  }

  std::vector<Tensor*> parameters() override { return {&gamma_, &beta_}; }
  std::vector<Tensor*> gradients() override { return {&grad_gamma_, &grad_beta_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_[0], &running_var_[0], &running_mean_[1], &running_var_[1]};
  }
  std::string name() const override { return "BatchNorm2d"; }

  /// Selects which running-statistics bank forward/eval uses (0 = clean/default,
  /// 1 = adversarial). Training-mode batch statistics are unaffected; only the
  /// running-stat updates and eval-mode normalization read the active bank.
  void use_bank(int bank);
  int active_bank() const { return bank_; }

  /// When disabled, training-mode forward still normalizes with batch
  /// statistics but does not update the running stats — used while PGD
  /// generates adversarial examples so attack passes don't pollute them.
  void set_track_stats(bool v) { track_stats_ = v; }
  bool track_stats() const { return track_stats_; }

  void for_each_bn(const std::function<void(BatchNorm2d&)>& fn) override {
    fn(*this);
  }

  std::int64_t channels() const { return channels_; }
  Tensor& running_mean(int bank) { return running_mean_[bank]; }
  Tensor& running_var(int bank) { return running_var_[bank]; }

 private:
  std::int64_t channels_;
  float momentum_, eps_;
  int bank_ = 0;
  bool track_stats_ = true;
  Tensor gamma_, beta_, grad_gamma_, grad_beta_;
  Tensor running_mean_[2], running_var_[2];
  // Forward cache for backward.
  Tensor cached_xhat_;       ///< normalized input
  Tensor cached_inv_std_;    ///< per-channel 1/sqrt(var+eps) used in forward
  bool cached_train_ = false;
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace fp::nn
