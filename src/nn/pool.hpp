// Pooling layers: max pooling with argmax routing and global average pooling.
#pragma once

#include "nn/layer.hpp"

namespace fp::nn {

class MaxPool2d final : public Layer {
 public:
  explicit MaxPool2d(std::int64_t kernel, std::int64_t stride = -1);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override {
    Argmax().swap(cached_argmax_);
    cached_shape_.clear();
  }
  std::string name() const override { return "MaxPool2d"; }

  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }

 private:
  std::int64_t kernel_, stride_;
  /// Tracked (mem subsystem): the argmax routing table is the layer's whole
  /// activation cache and must show up in training-time peak measurements.
  using Argmax = std::vector<std::int64_t, mem::TrackedAlloc<std::int64_t>>;
  Argmax cached_argmax_;  ///< flat input index per output cell
  std::vector<std::int64_t> cached_shape_;
};

/// Averages each channel plane to a single value: NCHW -> [N, C].
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override { cached_shape_.clear(); }
  std::string name() const override { return "GlobalAvgPool"; }

 private:
  std::vector<std::int64_t> cached_shape_;
};

}  // namespace fp::nn
