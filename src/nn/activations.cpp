#include "nn/activations.hpp"

#include <stdexcept>

namespace fp::nn {

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  cached_mask_ = Tensor(x.shape());
  Tensor out(x.shape());
  const float* in = x.data();
  float* m = cached_mask_.data();
  float* o = out.data();
  for (std::int64_t i = 0; i < x.numel(); ++i) {
    const bool pos = in[i] > 0.0f;
    m[i] = pos ? 1.0f : 0.0f;
    o[i] = pos ? in[i] : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  if (cached_mask_.empty()) throw std::logic_error("ReLU::backward before forward");
  Tensor grad_in = grad_out;
  grad_in.mul_(cached_mask_);
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  cached_shape_ = x.shape();
  const std::int64_t n = x.dim(0);
  return x.reshape({n, x.numel() / n});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  if (cached_shape_.empty()) throw std::logic_error("Flatten::backward before forward");
  return grad_out.reshape(cached_shape_);
}

}  // namespace fp::nn
