// Checkpoint I/O: binary save/load of parameter blobs.
//
// Format (little-endian): magic "FPCK", u32 version, u64 element count,
// then raw float32 payload, then a u64 FNV-1a checksum of the payload.
// The blob layout is the wire format of nn/serialize.hpp, so any Layer or
// models::BuiltModel round-trips through a file.
#pragma once

#include <string>

#include "nn/serialize.hpp"

namespace fp::nn {

/// Writes a blob checkpoint. Throws std::runtime_error on I/O failure.
void save_checkpoint(const std::string& path, const ParamBlob& blob);

/// Reads a checkpoint, validating magic, version, and checksum.
ParamBlob load_checkpoint(const std::string& path);

/// Convenience: save/load a layer's parameters + buffers.
void save_layer_checkpoint(const std::string& path, Layer& layer);
void load_layer_checkpoint(const std::string& path, Layer& layer);

}  // namespace fp::nn
