#include "nn/pool.hpp"

#include <limits>
#include <stdexcept>

namespace fp::nn {

MaxPool2d::MaxPool2d(std::int64_t kernel, std::int64_t stride)
    : kernel_(kernel), stride_(stride < 0 ? kernel : stride) {}

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  if (x.ndim() != 4) throw std::invalid_argument("MaxPool2d: want NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const std::int64_t oh = (h - kernel_) / stride_ + 1;
  const std::int64_t ow = (w - kernel_) / stride_ + 1;
  if (oh <= 0 || ow <= 0) throw std::invalid_argument("MaxPool2d: input too small");
  cached_shape_ = x.shape();
  Tensor out({n, c, oh, ow});
  cached_argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  const float* in = x.data();
  float* o = out.data();
  std::int64_t oi = 0;
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* plane = in + (i * c + ch) * h * w;
      for (std::int64_t y = 0; y < oh; ++y)
        for (std::int64_t x2 = 0; x2 < ow; ++x2, ++oi) {
          float best = -std::numeric_limits<float>::infinity();
          std::int64_t best_idx = 0;
          for (std::int64_t ky = 0; ky < kernel_; ++ky)
            for (std::int64_t kx = 0; kx < kernel_; ++kx) {
              const std::int64_t iy = y * stride_ + ky;
              const std::int64_t ix = x2 * stride_ + kx;
              const std::int64_t idx = iy * w + ix;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          o[oi] = best;
          cached_argmax_[static_cast<std::size_t>(oi)] =
              (i * c + ch) * h * w + best_idx;
        }
    }
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  if (cached_shape_.empty()) throw std::logic_error("MaxPool2d::backward before forward");
  Tensor grad_in(cached_shape_);
  const float* go = grad_out.data();
  float* gi = grad_in.data();
  for (std::int64_t i = 0; i < grad_out.numel(); ++i)
    gi[cached_argmax_[static_cast<std::size_t>(i)]] += go[i];
  return grad_in;
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  if (x.ndim() != 4) throw std::invalid_argument("GlobalAvgPool: want NCHW");
  const std::int64_t n = x.dim(0), c = x.dim(1), plane = x.dim(2) * x.dim(3);
  cached_shape_ = x.shape();
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float* p = x.data() + (i * c + ch) * plane;
      double s = 0.0;
      for (std::int64_t j = 0; j < plane; ++j) s += p[j];
      out[i * c + ch] = static_cast<float>(s) * inv;
    }
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  if (cached_shape_.empty())
    throw std::logic_error("GlobalAvgPool::backward before forward");
  const std::int64_t n = cached_shape_[0], c = cached_shape_[1],
                     plane = cached_shape_[2] * cached_shape_[3];
  Tensor grad_in(cached_shape_);
  const float inv = 1.0f / static_cast<float>(plane);
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t ch = 0; ch < c; ++ch) {
      const float g = grad_out[i * c + ch] * inv;
      float* p = grad_in.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) p[j] = g;
    }
  return grad_in;
}

}  // namespace fp::nn
