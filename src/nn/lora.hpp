// LoRA (Hu et al. 2021): low-rank adaptation layers.
//
// The paper's §8 names low-rank adaptation as complementary to FedProphet:
// the partitioner works at atom granularity, LoRA at parameter granularity,
// so the two memory reductions compose. LoRaLinear freezes a base weight
// W0 and trains only the rank-r factors B [out, r] and A [r, in]:
//     y = x (W0 + s B A)^T + b,   s = alpha / r.
// Trainable state shrinks from out*in to r*(out+in), which also shrinks
// gradients and optimizer momentum by the same factor — exactly the three
// terms of the ZeRO-style memory accounting in sysmodel.
#pragma once

#include "nn/layer.hpp"

namespace fp::nn {

class LoRaLinear final : public Layer {
 public:
  /// Wraps a frozen base weight of shape [out, in]. `rank` must satisfy
  /// 1 <= rank <= min(in, out). B starts at zero (adapter is a no-op until
  /// trained), A is Kaiming-initialized — the standard LoRA init.
  LoRaLinear(Tensor base_weight, Tensor base_bias, std::int64_t rank, float alpha,
             Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override {
    cached_input_ = Tensor();
    cached_ax_ = Tensor();
  }

  /// Only the adapter factors are trainable.
  std::vector<Tensor*> parameters() override { return {&a_, &b_}; }
  std::vector<Tensor*> gradients() override { return {&grad_a_, &grad_b_}; }
  std::string name() const override { return "LoRaLinear"; }

  std::int64_t rank() const { return rank_; }
  float scale() const { return scale_; }
  std::int64_t in_features() const { return in_; }
  std::int64_t out_features() const { return out_; }

  /// Materializes W0 + s B A (deployment / merging back into the backbone).
  Tensor merged_weight() const;

  /// Trainable-state elements: LoRA r(out+in) vs dense out*in.
  std::int64_t trainable_params() const { return rank_ * (in_ + out_); }
  std::int64_t dense_params() const { return in_ * out_; }

 private:
  std::int64_t in_, out_, rank_;
  float scale_;
  Tensor w0_, bias_;       ///< frozen
  Tensor a_, b_;           ///< trainable factors: A [r, in], B [out, r]
  Tensor grad_a_, grad_b_;
  Tensor cached_input_;    ///< [N, in]
  Tensor cached_ax_;       ///< [N, r] = x A^T, reused in backward
};

}  // namespace fp::nn
