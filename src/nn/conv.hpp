// 2-D convolution layer (square kernels), batched im2col + GEMM
// implementation: the whole minibatch is unfolded into one
// [C_in*K*K, N*H_out*W_out] column matrix and each direction issues a single
// large GEMM, with the bias add / grad_bias reduction folded into the
// parallel gather/scatter passes.
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "tensor/ops.hpp"
#include "tensor/qgemm.hpp"
#include "tensor/winograd.hpp"

namespace fp::nn {

class Conv2d final : public Layer {
 public:
  /// Kaiming-uniform initialized convolution. Input is NCHW.
  Conv2d(std::int64_t in_channels, std::int64_t out_channels, std::int64_t kernel,
         std::int64_t stride, std::int64_t padding, Rng& rng, bool bias = true);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  void drop_cached_activations() override;

  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  std::string name() const override { return "Conv2d"; }

  std::int64_t in_channels() const { return in_channels_; }
  std::int64_t out_channels() const { return out_channels_; }
  std::int64_t kernel() const { return kernel_; }
  std::int64_t stride() const { return stride_; }
  std::int64_t padding() const { return padding_; }
  bool has_bias() const { return has_bias_; }

  Tensor& weight() { return weight_; }
  Tensor& bias() { return bias_; }

 private:
  /// forward() under an active compute::InferenceScope: Winograd and/or int8
  /// routing, no activation caching (backward through it would be a bug).
  Tensor forward_inference(const Tensor& x);

  std::int64_t in_channels_, out_channels_, kernel_, stride_, padding_;
  bool has_bias_;
  Tensor weight_;       ///< [out, in, k, k]
  Tensor bias_;         ///< [out]
  Tensor grad_weight_;
  Tensor grad_bias_;
  Tensor cached_input_; ///< NCHW input from the last forward

  // Grow-only scratch buffers reused across forward/backward calls (a model
  // instance is only ever driven by one thread at a time). Not part of the
  // layer's parameter/buffer state. Tracked so training-time high-water
  // measurements see them (mem subsystem).
  using Scratch = std::vector<float, mem::TrackedAlloc<float>>;
  Scratch scratch_cols_;    ///< im2col of the minibatch [rows, N*oh*ow]
  Scratch scratch_iocols_;  ///< output/grad-output as [out_c, N*oh*ow]
  Scratch scratch_grad_cols_;

  // Inference-path caches (DESIGN.md §8), keyed by a content hash of the
  // weights so a frozen layer transforms/quantizes once and an updated layer
  // rebuilds on its next inference forward. The hash itself is only
  // recomputed when compute::weights_epoch() moves (weights are immutable
  // while an InferenceScope is active), so steady-state eval forwards skip
  // even the hash pass.
  Scratch scratch_wino_v_;  ///< V slabs [16, tiles, in_c]
  Scratch scratch_wino_m_;  ///< M slabs [16, out_c, tiles]
  WinogradPlan wino_plan_;
  std::uint64_t wino_hash_ = 0;
  std::uint64_t wino_epoch_ = 0;
  QuantizedMat qweight_;    ///< im2col-layout weights [out_c, in_c*k*k]
  std::uint64_t qweight_hash_ = 0;
  std::uint64_t qweight_epoch_ = 0;
};

}  // namespace fp::nn
