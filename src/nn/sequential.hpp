// Composite layers: Sequential chains and the ResNet basic block.
// Both are Layers themselves, so "atoms" (paper §6.1: a layer for plain nets,
// a residual block for ResNets) compose uniformly.
#pragma once

#include "nn/layer.hpp"

namespace fp::nn {

class Sequential final : public Layer {
 public:
  Sequential() = default;
  explicit Sequential(std::vector<LayerPtr> layers) : layers_(std::move(layers)) {}

  void push_back(LayerPtr layer) { layers_.push_back(std::move(layer)); }
  std::size_t size() const { return layers_.size(); }
  Layer& at(std::size_t i) { return *layers_.at(i); }
  const std::vector<LayerPtr>& layers() const { return layers_; }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  std::vector<Tensor*> buffers() override;
  void for_each_bn(const std::function<void(BatchNorm2d&)>& fn) override {
    for (auto& layer : layers_) layer->for_each_bn(fn);
  }
  void drop_cached_activations() override {
    for (auto& layer : layers_) layer->drop_cached_activations();
  }
  std::string name() const override { return "Sequential"; }

 private:
  std::vector<LayerPtr> layers_;
};

/// ResNet basic block: conv-bn-relu-conv-bn with identity (or 1x1 projection)
/// shortcut and a trailing ReLU. The projection is used when stride != 1 or
/// the channel count changes.
class BasicBlock final : public Layer {
 public:
  BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
             std::int64_t stride, Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Tensor*> parameters() override;
  std::vector<Tensor*> gradients() override;
  std::vector<Tensor*> buffers() override;
  std::string name() const override { return "BasicBlock"; }

  bool has_projection() const { return static_cast<bool>(shortcut_); }

  /// Switches the running-stat bank of every internal BatchNorm (FedRBN).
  void use_bn_bank(int bank);

  void for_each_bn(const std::function<void(BatchNorm2d&)>& fn) override {
    main_.for_each_bn(fn);
    if (shortcut_) shortcut_->for_each_bn(fn);
  }
  void drop_cached_activations() override {
    main_.drop_cached_activations();
    if (shortcut_) shortcut_->drop_cached_activations();
    cached_sum_mask_ = Tensor();
  }

  /// Structural access for sub-model extraction (channel slicing).
  Sequential& main_path() { return main_; }
  Sequential* shortcut_path() { return shortcut_.get(); }

 private:
  Sequential main_;                 ///< conv-bn-relu-conv-bn
  std::unique_ptr<Sequential> shortcut_;  ///< 1x1 conv + bn, or null (identity)
  Tensor cached_sum_mask_;          ///< ReLU mask of (main + shortcut)
};

}  // namespace fp::nn
