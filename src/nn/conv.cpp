#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>

namespace fp::nn {

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  // Kaiming-uniform: U(-b, b) with b = sqrt(6 / fan_in) (gain for ReLU nets).
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_channels * kernel * kernel));
  for (auto& v : weight_.span()) v = rng.uniform(-bound, bound);
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  if (x.ndim() != 4 || x.dim(1) != in_channels_)
    throw std::invalid_argument("Conv2d: bad input " + x.shape_str());
  cached_input_ = x;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{in_channels_, out_channels_, kernel_, stride_, padding_, h, w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  Tensor out({n, out_channels_, oh, ow});
  Tensor cols({g.col_rows(), g.col_cols()});
  const std::int64_t in_plane = in_channels_ * h * w;
  const std::int64_t out_plane = out_channels_ * oh * ow;
  for (std::int64_t i = 0; i < n; ++i) {
    im2col(g, x.data() + i * in_plane, cols.data());
    // out_i[out_c, oh*ow] = W[out_c, rows] * cols[rows, oh*ow]
    gemm(false, false, out_channels_, g.col_cols(), g.col_rows(), 1.0f,
         weight_.data(), cols.data(), 0.0f, out.data() + i * out_plane);
    if (has_bias_) {
      float* o = out.data() + i * out_plane;
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        const float b = bias_[c];
        for (std::int64_t p = 0; p < oh * ow; ++p) o[c * oh * ow + p] += b;
      }
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{in_channels_, out_channels_, kernel_, stride_, padding_, h, w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t in_plane = in_channels_ * h * w;
  const std::int64_t out_plane = out_channels_ * oh * ow;

  Tensor grad_in({n, in_channels_, h, w});
  Tensor cols({g.col_rows(), g.col_cols()});
  Tensor grad_cols({g.col_rows(), g.col_cols()});
  for (std::int64_t i = 0; i < n; ++i) {
    const float* go = grad_out.data() + i * out_plane;
    // grad_W += go[out_c, cols] * cols^T  -> recompute im2col (memory saving).
    im2col(g, x.data() + i * in_plane, cols.data());
    gemm(false, true, out_channels_, g.col_rows(), g.col_cols(), 1.0f, go,
         cols.data(), 1.0f, grad_weight_.data());
    if (has_bias_) {
      for (std::int64_t c = 0; c < out_channels_; ++c) {
        double s = 0.0;
        for (std::int64_t p = 0; p < oh * ow; ++p) s += go[c * oh * ow + p];
        grad_bias_[c] += static_cast<float>(s);
      }
    }
    // grad_cols = W^T * go, then fold back to image space.
    gemm(true, false, g.col_rows(), g.col_cols(), out_channels_, 1.0f,
         weight_.data(), go, 0.0f, grad_cols.data());
    col2im(g, grad_cols.data(), grad_in.data() + i * in_plane);
  }
  return grad_in;
}

std::vector<Tensor*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> Conv2d::gradients() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

}  // namespace fp::nn
