#include "nn/conv.hpp"

#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "obs/trace.hpp"
#include "tensor/compute_mode.hpp"

namespace fp::nn {

namespace {
/// Scatters [out_c, N*oh*ow] GEMM output back to NCHW, folding in the bias.
void scatter_bias(const float* iocols, float* od, const float* bias,
                  bool has_bias, std::int64_t n, std::int64_t out_channels,
                  std::int64_t ohow, std::int64_t batch_cols) {
  const std::int64_t out_plane = out_channels * ohow;
  core::parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i)
      for (std::int64_t c = 0; c < out_channels; ++c) {
        const float* src = iocols + c * batch_cols + i * ohow;
        float* dst = od + i * out_plane + c * ohow;
        const float b = has_bias ? bias[c] : 0.0f;
        for (std::int64_t p = 0; p < ohow; ++p) dst[p] = src[p] + b;
      }
  });
}
}  // namespace

Conv2d::Conv2d(std::int64_t in_channels, std::int64_t out_channels,
               std::int64_t kernel, std::int64_t stride, std::int64_t padding,
               Rng& rng, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      has_bias_(bias),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({out_channels}),
      grad_weight_({out_channels, in_channels, kernel, kernel}),
      grad_bias_({out_channels}) {
  // Kaiming-uniform: U(-b, b) with b = sqrt(6 / fan_in) (gain for ReLU nets).
  const float bound =
      std::sqrt(6.0f / static_cast<float>(in_channels * kernel * kernel));
  for (auto& v : weight_.span()) v = rng.uniform(-bound, bound);
}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  FP_TRACE_KERNEL("conv2d_fwd", "batch", x.ndim() == 4 ? x.dim(0) : 0);
  if (x.ndim() != 4 || x.dim(1) != in_channels_)
    throw std::invalid_argument("Conv2d: bad input " + x.shape_str());
  if (compute::int8_active() || compute::winograd_active())
    return forward_inference(x);
  cached_input_ = x;
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{in_channels_, out_channels_, kernel_, stride_, padding_, h, w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ohow = oh * ow;
  const std::int64_t rows = g.col_rows();
  const std::int64_t batch_cols = n * ohow;
  const std::int64_t in_plane = in_channels_ * h * w;

  Tensor out({n, out_channels_, oh, ow});
  scratch_cols_.resize(static_cast<std::size_t>(rows * batch_cols));
  scratch_iocols_.resize(static_cast<std::size_t>(out_channels_ * batch_cols));

  // Unfold the whole minibatch into one [rows, N*oh*ow] matrix (sample i
  // owns the column slice [i*ohow, (i+1)*ohow)).
  const float* xd = x.data();
  float* cols = scratch_cols_.data();
  core::parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i)
      im2col(g, xd + i * in_plane, cols + i * ohow, batch_cols);
  });

  // One GEMM for the whole batch: [out_c, rows] x [rows, N*oh*ow].
  gemm(false, false, out_channels_, batch_cols, rows, 1.0f, weight_.data(),
       cols, 0.0f, scratch_iocols_.data());

  scatter_bias(scratch_iocols_.data(), out.data(), bias_.data(), has_bias_, n,
               out_channels_, ohow, batch_cols);
  return out;
}

Tensor Conv2d::forward_inference(const Tensor& x) {
  FP_TRACE_KERNEL("conv2d_infer", "batch", x.dim(0));
  // Inference-only kernels never support a backward: drop the cached input so
  // a stray backward() fails loudly instead of differentiating stale state.
  cached_input_ = Tensor();
  const bool use_int8 = compute::int8_active();
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{in_channels_, out_channels_, kernel_, stride_, padding_, h, w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ohow = oh * ow;
  Tensor out({n, out_channels_, oh, ow});

  if (compute::winograd_active() && winograd_eligible(g) &&
      winograd_profitable(g, use_int8)) {
    const std::uint64_t epoch = compute::weights_epoch();
    if (wino_epoch_ != epoch || (use_int8 && wino_plan_.uq.empty() &&
                                 winograd_int8_profitable(in_channels_))) {
      const std::uint64_t hash = content_hash_fnv1a(
          weight_.data(),
          static_cast<std::size_t>(weight_.numel()) * sizeof(float));
      if (wino_hash_ != hash || (use_int8 && wino_plan_.uq.empty())) {
        winograd_build_plan(weight_.data(), out_channels_, in_channels_,
                            use_int8, wino_plan_);
        wino_hash_ = hash;
      }
      wino_epoch_ = epoch;
    }
    scratch_wino_v_.resize(static_cast<std::size_t>(winograd_v_elems(g, n)));
    scratch_wino_m_.resize(static_cast<std::size_t>(winograd_m_elems(g, n)));
    winograd_conv_forward(g, x.data(), n, wino_plan_,
                          has_bias_ ? bias_.data() : nullptr, out.data(),
                          use_int8, scratch_wino_v_.data(),
                          scratch_wino_m_.data());
    return out;
  }

  // Ineligible (stride != 1 or kernel != 3) and unprofitable (stem-like or
  // tile-starved, see winograd_profitable) shapes keep the im2col unfold;
  // int8 runs the quantize-on-pack GEMM on the columns when the product is
  // deep enough to amortize it (qgemm_profitable), fp32 the blocked one.
  const std::int64_t rows = g.col_rows();
  const std::int64_t batch_cols = n * ohow;
  const std::int64_t in_plane = in_channels_ * h * w;
  scratch_cols_.resize(static_cast<std::size_t>(rows * batch_cols));
  scratch_iocols_.resize(static_cast<std::size_t>(out_channels_ * batch_cols));
  const float* xd = x.data();
  float* cols = scratch_cols_.data();
  core::parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i)
      im2col(g, xd + i * in_plane, cols + i * ohow, batch_cols);
  });

  if (use_int8 && qgemm_profitable(rows)) {
    const std::uint64_t epoch = compute::weights_epoch();
    if (qweight_epoch_ != epoch || qweight_.rows != out_channels_) {
      const std::uint64_t hash = content_hash_fnv1a(
          weight_.data(),
          static_cast<std::size_t>(weight_.numel()) * sizeof(float));
      if (qweight_hash_ != hash || qweight_.rows != out_channels_) {
        // Weight layout [oc, ic, k, k] is already the im2col [oc, rows]
        // matrix.
        quantize_rows_int8(weight_.data(), out_channels_, rows, rows,
                           qweight_);
        qweight_hash_ = hash;
      }
      qweight_epoch_ = epoch;
    }
    thread_local QuantizedMat qcols;
    quantize_cols_int8(cols, rows, batch_cols, batch_cols, qcols);
    qgemm_nt(out_channels_, batch_cols, qweight_, qcols,
             scratch_iocols_.data(), batch_cols);
  } else {
    gemm(false, false, out_channels_, batch_cols, rows, 1.0f, weight_.data(),
         cols, 0.0f, scratch_iocols_.data());
  }

  scatter_bias(scratch_iocols_.data(), out.data(), bias_.data(), has_bias_, n,
               out_channels_, ohow, batch_cols);
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  FP_TRACE_KERNEL("conv2d_bwd", "batch", grad_out.dim(0));
  const Tensor& x = cached_input_;
  if (x.empty()) throw std::logic_error("Conv2d::backward before forward");
  const std::int64_t n = x.dim(0), h = x.dim(2), w = x.dim(3);
  Conv2dGeometry g{in_channels_, out_channels_, kernel_, stride_, padding_, h, w};
  const std::int64_t oh = g.out_h(), ow = g.out_w();
  const std::int64_t ohow = oh * ow;
  const std::int64_t rows = g.col_rows();
  const std::int64_t batch_cols = n * ohow;
  const std::int64_t in_plane = in_channels_ * h * w;
  const std::int64_t out_plane = out_channels_ * ohow;

  scratch_cols_.resize(static_cast<std::size_t>(rows * batch_cols));
  scratch_iocols_.resize(static_cast<std::size_t>(out_channels_ * batch_cols));
  scratch_grad_cols_.resize(static_cast<std::size_t>(rows * batch_cols));

  // Gather grad_out from NCHW into [out_c, N*oh*ow], folding the grad_bias
  // reduction into the same pass (per channel, samples in fixed order, so the
  // sum is identical for any thread count).
  const float* god = grad_out.data();
  float* iocols = scratch_iocols_.data();
  core::parallel_for(0, out_channels_, 1, [&](std::int64_t c0, std::int64_t c1) {
    for (std::int64_t c = c0; c < c1; ++c) {
      double s = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* src = god + i * out_plane + c * ohow;
        float* dst = iocols + c * batch_cols + i * ohow;
        for (std::int64_t p = 0; p < ohow; ++p) {
          dst[p] = src[p];
          s += src[p];
        }
      }
      if (has_bias_) grad_bias_[c] += static_cast<float>(s);
    }
  });

  // scratch_cols_ still holds the forward pass's unfold of cached_input_
  // (forward always rewrites it together with cached_input_), so backward
  // reuses it instead of redoing the whole-batch im2col.
  const float* cols = scratch_cols_.data();

  // grad_W += go[out_c, N*oh*ow] * cols^T — one GEMM over the whole batch.
  gemm(false, true, out_channels_, rows, batch_cols, 1.0f, iocols, cols, 1.0f,
       grad_weight_.data());

  // grad_cols = W^T * go, then fold each sample's slice back to image space.
  gemm(true, false, rows, batch_cols, out_channels_, 1.0f, weight_.data(),
       iocols, 0.0f, scratch_grad_cols_.data());
  Tensor grad_in({n, in_channels_, h, w});
  const float* grad_cols = scratch_grad_cols_.data();
  float* gid = grad_in.data();
  core::parallel_for(0, n, 1, [&](std::int64_t b0, std::int64_t b1) {
    for (std::int64_t i = b0; i < b1; ++i)
      col2im(g, grad_cols + i * ohow, gid + i * in_plane, batch_cols);
  });
  return grad_in;
}

void Conv2d::drop_cached_activations() {
  cached_input_ = Tensor();
  Scratch().swap(scratch_cols_);
  Scratch().swap(scratch_iocols_);
  Scratch().swap(scratch_grad_cols_);
  Scratch().swap(scratch_wino_v_);
  Scratch().swap(scratch_wino_m_);
}

std::vector<Tensor*> Conv2d::parameters() {
  if (has_bias_) return {&weight_, &bias_};
  return {&weight_};
}

std::vector<Tensor*> Conv2d::gradients() {
  if (has_bias_) return {&grad_weight_, &grad_bias_};
  return {&grad_weight_};
}

}  // namespace fp::nn
