#include "nn/quantize.hpp"

#include <stdexcept>

#include "sysmodel/cost_model.hpp"
#include "tensor/quant.hpp"

namespace fp::nn {

// Both functions are thin wrappers over the shared symmetric grid in
// tensor/quant.hpp — the same step/rounding/error-bound definitions the int8
// GEMM packs use, so the simulated low-bit training and the real quantized
// kernels can never disagree about the grid.

Tensor fake_quantize(const Tensor& t, int bits) {
  if (bits < 2) throw std::invalid_argument("fake_quantize: bits < 2");
  if (bits >= 16) return t;
  const float absmax = t.abs_max();
  if (absmax == 0.0f) return t;
  const float step = quant::symmetric_step(absmax, bits);
  Tensor out = t;
  for (auto& v : out.span()) v = quant::symmetric_round(v, step);
  return out;
}

float quantization_error_bound(const Tensor& t, int bits) {
  if (bits >= 16) return 0.0f;
  return quant::error_bound(quant::symmetric_step(t.abs_max(), bits));
}

std::int64_t low_bit_mem_bytes(const sys::ModelSpec& model, std::size_t begin,
                               std::size_t end, std::int64_t batch_size,
                               bool with_aux_head, int bits) {
  // Full fp32 accounting = 4 bytes * (3P + A): weights+grads+momentum and
  // activations. Low-bit stores weights and activations at `bits`:
  //   bytes = P*(bits/8) + P*4 + P*4 + A*(bits/8)
  // which we recover from the fp32 total and the parameter count.
  const std::int64_t fp32 = sys::module_train_mem_bytes(model, begin, end,
                                                        batch_size, with_aux_head);
  std::int64_t params = 0;
  for (std::size_t a = begin; a < end && a < model.atoms.size(); ++a)
    params += sys::atom_param_count(model.atoms[a]);
  if (with_aux_head) params += sys::aux_head_params(model, end);
  const std::int64_t param_fp32 = 3 * params * 4;   // weights+grads+momentum
  const std::int64_t act_fp32 = fp32 - param_fp32;  // activations * batch
  const double byte_ratio = static_cast<double>(bits) / 32.0;
  const auto low_params = static_cast<std::int64_t>(
      static_cast<double>(params) * 4.0 * byte_ratio) + 2 * params * 4;
  const auto low_acts =
      static_cast<std::int64_t>(static_cast<double>(act_fp32) * byte_ratio);
  return low_params + low_acts;
}

}  // namespace fp::nn
