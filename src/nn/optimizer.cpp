#include "nn/optimizer.hpp"

#include <cmath>
#include <stdexcept>

namespace fp::nn {

Sgd::Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, SgdConfig cfg)
    : params_(std::move(params)), grads_(std::move(grads)), cfg_(cfg) {
  if (params_.size() != grads_.size())
    throw std::invalid_argument("Sgd: params/grads size mismatch");
  velocity_.reserve(params_.size());
  for (auto* p : params_) velocity_.emplace_back(p->shape());
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Tensor& p = *params_[i];
    const Tensor& g = *grads_[i];
    Tensor& v = velocity_[i];
    float* pv = p.data();
    const float* pg = g.data();
    float* pvel = v.data();
    for (std::int64_t j = 0; j < p.numel(); ++j) {
      const float grad = pg[j] + cfg_.weight_decay * pv[j];
      pvel[j] = cfg_.momentum * pvel[j] + grad;
      pv[j] -= cfg_.lr * pvel[j];
    }
  }
}

void Sgd::zero_grad() {
  for (auto* g : grads_) g->zero_();
}

void Sgd::reset_state() {
  for (auto& v : velocity_) v.zero_();
}

std::int64_t Sgd::state_numel() const {
  std::int64_t n = 0;
  for (const auto& v : velocity_) n += v.numel();
  return n;
}

float ExpDecaySchedule::lr_at(std::int64_t round) const {
  return lr0_ * std::pow(decay_, static_cast<float>(round));
}

}  // namespace fp::nn
