#include "nn/norm.hpp"

#include <cmath>
#include <stdexcept>

namespace fp::nn {

BatchNorm2d::BatchNorm2d(std::int64_t channels, float momentum, float eps)
    : channels_(channels),
      momentum_(momentum),
      eps_(eps),
      gamma_(Tensor::ones({channels})),
      beta_({channels}),
      grad_gamma_({channels}),
      grad_beta_({channels}) {
  for (auto& bank : running_mean_) bank = Tensor::zeros({channels});
  for (auto& bank : running_var_) bank = Tensor::ones({channels});
}

void BatchNorm2d::use_bank(int bank) {
  if (bank != 0 && bank != 1) throw std::invalid_argument("BatchNorm2d: bad bank");
  bank_ = bank;
}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  if (x.ndim() != 4 || x.dim(1) != channels_)
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  const std::int64_t n = x.dim(0), c = channels_, h = x.dim(2), w = x.dim(3);
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  cached_shape_ = x.shape();
  cached_train_ = train;
  cached_xhat_ = Tensor(x.shape());
  cached_inv_std_ = Tensor({c});
  Tensor out(x.shape());

  for (std::int64_t ch = 0; ch < c; ++ch) {
    double mean, var;
    if (train) {
      double s = 0.0, s2 = 0.0;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* p = x.data() + (i * c + ch) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          s += p[j];
          s2 += static_cast<double>(p[j]) * p[j];
        }
      }
      mean = s / count;
      var = s2 / count - mean * mean;
      if (var < 0.0) var = 0.0;  // numerical guard
      if (track_stats_) {
        // Update the active running-stat bank (unbiased variance, PyTorch-style).
        const double unbiased = count > 1 ? var * count / (count - 1) : var;
        auto& rm = running_mean_[bank_];
        auto& rv = running_var_[bank_];
        rm[ch] = (1.0f - momentum_) * rm[ch] + momentum_ * static_cast<float>(mean);
        rv[ch] =
            (1.0f - momentum_) * rv[ch] + momentum_ * static_cast<float>(unbiased);
      }
    } else {
      mean = running_mean_[bank_][ch];
      var = running_var_[bank_][ch];
    }
    const float inv_std = static_cast<float>(1.0 / std::sqrt(var + eps_));
    cached_inv_std_[ch] = inv_std;
    const float g = gamma_[ch], b = beta_[ch], mu = static_cast<float>(mean);
    for (std::int64_t i = 0; i < n; ++i) {
      const float* p = x.data() + (i * c + ch) * plane;
      float* xh = cached_xhat_.data() + (i * c + ch) * plane;
      float* o = out.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        xh[j] = (p[j] - mu) * inv_std;
        o[j] = g * xh[j] + b;
      }
    }
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  if (cached_xhat_.empty()) throw std::logic_error("BatchNorm2d::backward before forward");
  const std::int64_t n = cached_shape_[0], c = channels_, h = cached_shape_[2],
                     w = cached_shape_[3];
  const std::int64_t plane = h * w;
  const std::int64_t count = n * plane;
  Tensor grad_in(cached_shape_);

  for (std::int64_t ch = 0; ch < c; ++ch) {
    // Accumulate dgamma = sum(go * xhat), dbeta = sum(go).
    double sum_go = 0.0, sum_go_xhat = 0.0;
    for (std::int64_t i = 0; i < n; ++i) {
      const float* go = grad_out.data() + (i * c + ch) * plane;
      const float* xh = cached_xhat_.data() + (i * c + ch) * plane;
      for (std::int64_t j = 0; j < plane; ++j) {
        sum_go += go[j];
        sum_go_xhat += static_cast<double>(go[j]) * xh[j];
      }
    }
    grad_gamma_[ch] += static_cast<float>(sum_go_xhat);
    grad_beta_[ch] += static_cast<float>(sum_go);

    const float g = gamma_[ch];
    const float inv_std = cached_inv_std_[ch];
    if (cached_train_) {
      // Full batch-stat backward:
      // dx = g*inv_std/count * (count*go - sum_go - xhat*sum_go_xhat)
      const float k = g * inv_std / static_cast<float>(count);
      for (std::int64_t i = 0; i < n; ++i) {
        const float* go = grad_out.data() + (i * c + ch) * plane;
        const float* xh = cached_xhat_.data() + (i * c + ch) * plane;
        float* gi = grad_in.data() + (i * c + ch) * plane;
        for (std::int64_t j = 0; j < plane; ++j) {
          gi[j] = k * (static_cast<float>(count) * go[j] -
                       static_cast<float>(sum_go) -
                       xh[j] * static_cast<float>(sum_go_xhat));
        }
      }
    } else {
      // Eval mode is a per-channel affine map: dx = g * inv_std * go.
      const float k = g * inv_std;
      for (std::int64_t i = 0; i < n; ++i) {
        const float* go = grad_out.data() + (i * c + ch) * plane;
        float* gi = grad_in.data() + (i * c + ch) * plane;
        for (std::int64_t j = 0; j < plane; ++j) gi[j] = k * go[j];
      }
    }
  }
  return grad_in;
}

}  // namespace fp::nn
