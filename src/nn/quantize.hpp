// Low-bit training support (Zhong et al. 2022), the second §8 extension.
//
// Two pieces:
//  * fake-quantization utilities (symmetric per-tensor int-k simulation)
//    used to emulate low-bit forward passes during training, and
//  * the memory-accounting hook: low-bit training stores parameters and
//    activations at `bits` instead of 32, shrinking the ZeRO terms by
//    bits/32. `low_bit_mem_bytes` composes with the cascade partitioner so
//    Rmin budgets can be evaluated under quantized training (the
//    bench_ablation_extensions harness sweeps this).
#pragma once

#include <cstdint>

#include "sysmodel/layer_spec.hpp"
#include "tensor/tensor.hpp"

namespace fp::nn {

/// Symmetric per-tensor fake quantization to `bits` (2..16): rounds values
/// to the int-k grid spanning [-absmax, absmax] and returns the dequantized
/// tensor. bits >= 16 returns the input unchanged.
Tensor fake_quantize(const Tensor& t, int bits);

/// Largest elementwise deviation introduced by fake_quantize — bounded by
/// half a quantization step (absmax / (2^(bits-1) - 1) / 2).
float quantization_error_bound(const Tensor& t, int bits);

/// Memory requirement of training atoms [begin, end) when parameters and
/// activations are stored at `bits` bits (gradients and momentum stay fp32,
/// the conservative convention of low-bit training systems).
std::int64_t low_bit_mem_bytes(const sys::ModelSpec& model, std::size_t begin,
                               std::size_t end, std::int64_t batch_size,
                               bool with_aux_head, int bits);

}  // namespace fp::nn
