#include "nn/sequential.hpp"

#include <stdexcept>

#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/norm.hpp"

namespace fp::nn {

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& layer : layers_) h = layer->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& grad_out) {
  Tensor g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Tensor*> Sequential::parameters() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (auto* p : layer->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> Sequential::gradients() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (auto* g : layer->gradients()) out.push_back(g);
  return out;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> out;
  for (auto& layer : layers_)
    for (auto* b : layer->buffers()) out.push_back(b);
  return out;
}

BasicBlock::BasicBlock(std::int64_t in_channels, std::int64_t out_channels,
                       std::int64_t stride, Rng& rng) {
  main_.push_back(
      std::make_unique<Conv2d>(in_channels, out_channels, 3, stride, 1, rng, false));
  main_.push_back(std::make_unique<BatchNorm2d>(out_channels));
  main_.push_back(std::make_unique<ReLU>());
  main_.push_back(
      std::make_unique<Conv2d>(out_channels, out_channels, 3, 1, 1, rng, false));
  main_.push_back(std::make_unique<BatchNorm2d>(out_channels));
  if (stride != 1 || in_channels != out_channels) {
    shortcut_ = std::make_unique<Sequential>();
    shortcut_->push_back(
        std::make_unique<Conv2d>(in_channels, out_channels, 1, stride, 0, rng, false));
    shortcut_->push_back(std::make_unique<BatchNorm2d>(out_channels));
  }
}

Tensor BasicBlock::forward(const Tensor& x, bool train) {
  Tensor main_out = main_.forward(x, train);
  Tensor residual = shortcut_ ? shortcut_->forward(x, train) : x;
  main_out.add_(residual);
  // Trailing ReLU with cached mask.
  cached_sum_mask_ = Tensor(main_out.shape());
  float* m = cached_sum_mask_.data();
  float* o = main_out.data();
  for (std::int64_t i = 0; i < main_out.numel(); ++i) {
    const bool pos = o[i] > 0.0f;
    m[i] = pos ? 1.0f : 0.0f;
    if (!pos) o[i] = 0.0f;
  }
  return main_out;
}

Tensor BasicBlock::backward(const Tensor& grad_out) {
  if (cached_sum_mask_.empty())
    throw std::logic_error("BasicBlock::backward before forward");
  Tensor g = grad_out;
  g.mul_(cached_sum_mask_);
  Tensor grad_in = main_.backward(g);
  if (shortcut_) {
    grad_in.add_(shortcut_->backward(g));
  } else {
    grad_in.add_(g);
  }
  return grad_in;
}

std::vector<Tensor*> BasicBlock::parameters() {
  auto out = main_.parameters();
  if (shortcut_)
    for (auto* p : shortcut_->parameters()) out.push_back(p);
  return out;
}

std::vector<Tensor*> BasicBlock::gradients() {
  auto out = main_.gradients();
  if (shortcut_)
    for (auto* g : shortcut_->gradients()) out.push_back(g);
  return out;
}

void BasicBlock::use_bn_bank(int bank) {
  for (const auto& l : main_.layers())
    if (auto* bn = dynamic_cast<BatchNorm2d*>(l.get())) bn->use_bank(bank);
  if (shortcut_)
    for (const auto& l : shortcut_->layers())
      if (auto* bn = dynamic_cast<BatchNorm2d*>(l.get())) bn->use_bank(bank);
}

std::vector<Tensor*> BasicBlock::buffers() {
  auto out = main_.buffers();
  if (shortcut_)
    for (auto* b : shortcut_->buffers()) out.push_back(b);
  return out;
}

}  // namespace fp::nn
