// SGD with momentum and weight decay — the optimizer used throughout the
// paper (momentum 0.9, weight decay 1e-4, exponential LR decay, §B.4).
#pragma once

#include "tensor/tensor.hpp"

namespace fp::nn {

struct SgdConfig {
  float lr = 0.01f;
  float momentum = 0.9f;
  float weight_decay = 1e-4f;
};

class Sgd {
 public:
  /// Binds the optimizer to parameter/gradient tensor pairs. The tensors must
  /// outlive the optimizer; momentum buffers are allocated lazily to match.
  Sgd(std::vector<Tensor*> params, std::vector<Tensor*> grads, SgdConfig cfg);

  /// v = momentum*v + g + wd*p;  p -= lr*v.
  void step();

  void zero_grad();
  void set_lr(float lr) { cfg_.lr = lr; }
  float lr() const { return cfg_.lr; }
  const SgdConfig& config() const { return cfg_; }

  /// Resets momentum buffers (used when a client loads fresh global weights).
  void reset_state();

  /// Number of float32 optimizer-state values (for memory accounting).
  std::int64_t state_numel() const;

 private:
  std::vector<Tensor*> params_;
  std::vector<Tensor*> grads_;
  std::vector<Tensor> velocity_;
  SgdConfig cfg_;
};

/// Exponential learning-rate schedule: lr_t = lr_0 * decay^t (paper §B.4,
/// decay 0.994 per communication round).
class ExpDecaySchedule {
 public:
  ExpDecaySchedule(float lr0, float decay) : lr0_(lr0), decay_(decay) {}
  float lr_at(std::int64_t round) const;

 private:
  float lr0_, decay_;
};

}  // namespace fp::nn
