// Minimal JSON reader for experiment spec files (src/exp/, DESIGN.md §7).
//
// Spec files are JSON objects whose leaves are scalars (string, number,
// true/false). Objects may nest — {"fl": {"num_clients": 10}} — or use
// dotted keys directly — {"fl.num_clients": 10}; both flatten to the same
// dotted-key map the spec schema consumes. Arrays and null are rejected: no
// spec key is list-valued, and an explicit error beats a silent drop.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace fp::exp {

/// One flattened leaf: dotted key path -> scalar literal. String values are
/// unescaped; numbers and booleans keep their literal spelling so the spec
/// setters (not the parser) own numeric interpretation.
using FlatJson = std::vector<std::pair<std::string, std::string>>;

/// Parses a JSON object into flattened (key, value) pairs in document order.
/// Throws SpecError with a character offset on malformed input.
FlatJson parse_json_object(const std::string& text);

/// Like parse_json_object, but arrays are accepted and flattened element by
/// element as `key.<index>` (an empty array contributes no keys). Spec files
/// never use this — it exists so tests and tools can inspect emitted
/// artifacts like Chrome trace JSON with the same parser.
FlatJson parse_json_relaxed(const std::string& text);

/// Escapes `s` for embedding in a JSON string literal (quotes not included).
std::string json_escape(const std::string& s);

}  // namespace fp::exp
