// The concrete experiment registries (DESIGN.md §7): models, workloads,
// schedulers, and wire codecs. The method registry lives in exp/runner.hpp
// (its factories produce live training runs and need the built Setup); its
// name list is re-exported here so the spec schema can validate `method`
// without depending on the runner's types.
#pragma once

#include <functional>
#include <memory>

#include "comm/codec.hpp"
#include "data/synthetic.hpp"
#include "exp/registry.hpp"
#include "exp/spec.hpp"
#include "sysmodel/layer_spec.hpp"

namespace fp::exp {

// ---- models -----------------------------------------------------------------

struct ModelParams {
  std::int64_t image = 16;
  std::int64_t classes = 10;
  std::int64_t width = 6;  ///< tiny-model width multiplier (paper shapes ignore)
};

using ModelFactory = std::function<sys::ModelSpec(const ModelParams&)>;

/// tiny_vgg / tiny_resnet / tiny_cnn (trainable) and the paper-exact analytic
/// shapes vgg16/13/11, cnn3, resnet34/18/10, cnn4.
Registry<ModelFactory>& model_registry();

// ---- workloads --------------------------------------------------------------

struct WorkloadInfo {
  std::string display_name;       ///< "CIFAR-10 (synthetic)"
  bool cifar_pool = true;         ///< device pool (Table 5 vs Table 6)
  std::uint64_t seed_offset = 0;  ///< bench seed = 1234 + offset (+1 unbalanced)
  std::int64_t default_train_size = 0;
  std::string default_model;      ///< trainable backbone registry key
  std::int64_t kd_mid_width = 0;  ///< width of the middle KD-family member
  std::function<data::SyntheticConfig()> synth;
  std::function<sys::ModelSpec()> paper_spec;  ///< cost-model shape
  std::int64_t paper_batch = 64;
};

Registry<WorkloadInfo>& workload_registry();

// ---- schedulers / codecs ----------------------------------------------------

Registry<fed::SchedulerKind>& scheduler_registry();

/// Registry name of a scheduler kind ("sync" / "async").
std::string scheduler_key(fed::SchedulerKind kind);

struct CodecEntry {
  comm::CodecKind kind = comm::CodecKind::kIdentity;
  /// Builds the codec exactly as the round engine's channel would, from the
  /// resolved comm.* keys.
  std::function<std::unique_ptr<comm::BlobCodec>(const comm::CommConfig&)> make;
};

Registry<CodecEntry>& codec_registry();

/// Registry name of a codec kind ("identity" / "fp16" / "int8" / "topk").
std::string codec_key(comm::CodecKind kind);

// ---- method names (registry defined in exp/runner.hpp) ----------------------

const std::vector<std::string>& method_names();

// ---- resolution -------------------------------------------------------------

/// Replaces every auto/sentinel field with its concrete derived value:
/// workload defaults (model, classes, train size), the bench seed formula,
/// FP_BENCH_FAST scaling of sizes/rounds, and the jFAT-vs-others round count.
/// Validates registry-backed names. Idempotent; a resolved spec serializes to
/// a config that reproduces the run under any environment.
void resolve_spec(ExperimentSpec& spec, bool fast);
void resolve_spec(ExperimentSpec& spec);  ///< fast = fast_mode()

}  // namespace fp::exp
