// Experiment runner: turns a resolved ExperimentSpec into a built Setup
// (data, environment, model family) and drives any registered method through
// training, evaluation, and artifact export (DESIGN.md §7).
//
// The method registry is the single construction path for all eight method
// variants; registry-constructed runs are verified hash-identical to direct
// construction (tests/test_exp.cpp, tests/test_runtime.cpp).
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "attack/evaluate.hpp"
#include "exp/registries.hpp"
#include "fed/algorithm.hpp"
#include "obs/metrics.hpp"

namespace fp::exp {

/// Everything one experiment run needs, built from a resolved spec. Mirrors
/// what bench_common::make_setup has always produced.
struct Setup {
  ExperimentSpec spec;  ///< fully resolved (resolve_spec applied)
  data::TrainTest data;
  fed::FedEnv env;
  sys::ModelSpec model;        ///< trainable backbone
  sys::ModelSpec small_model;  ///< "small" baseline (tiny_cnn)
  std::vector<sys::ModelSpec> kd_family;
  std::int64_t full_mem = 0;   ///< full trainable-model training memory
  double device_mem_scale = 1.0;
  std::int64_t rmin = 0;
};

/// Resolves the spec and builds dataset, model family, and environment.
Setup build_setup(ExperimentSpec spec);

/// Metadata-only view of a plan-backed pool (env.lazy_clients /
/// env.lazy_materialize): the same ShardPlan build_setup's env would carry,
/// without synthesizing any shard, test, or public tensors. Returns nullptr
/// for eager specs. What `fp_run --plan` uses.
std::shared_ptr<const data::LazyShardSource> plan_source(ExperimentSpec spec);

/// Fully resolves a spec — including the build-time autos that need the
/// model family (active-mem pricing scale, mem.budget_frac bytes) — without
/// synthesizing the dataset or environment. What `fp_run --dump-spec` uses.
ExperimentSpec resolve_full(ExperimentSpec spec);

/// Planned full-training peak of a backbone (the mem.budget_frac anchor and
/// the [mem] summary's fixed scale reference).
std::int64_t planned_full_peak(const sys::ModelSpec& model,
                               std::int64_t batch_size);

/// A constructed, ready-to-train method instance. `train` runs the method's
/// full protocol (run() or FedProphet's cascade train()); `evaluate` applies
/// the method's evaluation convention (e.g. FedRBN's dual-BN banks).
struct MethodRun {
  std::unique_ptr<fed::FederatedAlgorithm> algo;
  std::function<void()> train;
  std::function<attack::RobustEvalResult(const attack::RobustEvalConfig&)>
      evaluate;
  /// Whether algo->global_model() alone is the deployable artifact. FedRBN
  /// sets this false: its dual-BN banks make a bank choice part of the
  /// model, so `fp_run --save-model` refuses rather than exporting an
  /// ambiguous checkpoint.
  bool single_global_model = true;
};

using MethodFactory = std::function<MethodRun(Setup&)>;

/// All eight method variants: jFAT, FedDF-AT, FedET-AT, HeteroFL-AT,
/// FedDrop-AT, FedRolex-AT, FedRBN, FedProphet.
Registry<MethodFactory>& method_registry();

/// What one trained run produced (bench_common::MethodResult is an alias).
struct RunResult {
  std::string name;
  attack::RobustEvalResult metrics;
  fed::TimeBreakdown sim_time;
  fed::History history;
  std::int64_t bytes_up = 0;        ///< cumulative wire bytes uploaded
  std::int64_t bytes_down = 0;      ///< cumulative wire bytes downloaded
  std::int64_t peak_mem_bytes = 0;  ///< max measured client peak (0 = mem off)
  std::size_t over_budget = 0;      ///< budget violations across the run
  std::size_t dropped = 0;          ///< straggler-cutoff + dropout discards
  std::int64_t unique_participants = 0;  ///< distinct clients ever dispatched
  std::int64_t agg_bytes_saved = 0;      ///< backbone bytes the edge tier merged away
  /// Distributed-root run (net.role=root; all zero single-process): real
  /// socket traffic and measured transfer seconds next to the modeled comm_s.
  double measured_comm_s = 0.0;
  std::int64_t net_tx_bytes = 0;
  std::int64_t net_rx_bytes = 0;
  std::size_t net_workers = 0;
  std::string exported_csv;         ///< FP_BENCH_OUT trajectory path ("" = off)
  /// Observability plane (src/obs/, DESIGN.md §11): real wall-clock of
  /// train + eval, the per-phase breakdown behind the [obs] summary line,
  /// and the exported artifact paths ("" = off or write failed).
  double wall_s = 0.0;
  obs::PhaseBreakdown phases;
  std::string trace_path;
  std::string metrics_path;
};

/// The final-evaluation config addressed by the eval.* keys.
attack::RobustEvalConfig eval_config(const ExperimentSpec& spec);

/// Trains spec.method on an already-built setup (reusing its env — repeat
/// calls continue the same device/degradation streams, as the bench tables
/// rely on), evaluates, and exports artifacts. `label` overrides the result/
/// export name (default: the method name).
RunResult run_on_setup(Setup& setup, const std::string& label = "");

/// Trains an ALREADY-CONSTRUCTED method instance on its setup — what
/// run_on_setup does after the factory call. The distributed root
/// (net::serve_root) constructs the method early to validate net-capability
/// before accepting workers, then drives training through this.
RunResult run_built(Setup& setup, MethodRun& run, const std::string& label = "");

/// Fresh setup + run_on_setup: the fp_run / scenario-bench entry point.
RunResult run_experiment(ExperimentSpec spec, const std::string& label = "");

/// When FP_BENCH_OUT is set, writes `<name>.csv` (trajectory) and
/// `<name>.spec.json` (the fully-resolved spec — `fp_run --config <it>`
/// reproduces the run). Returns the CSV path, or "" when export is off.
std::string export_run_artifacts(const ExperimentSpec& spec,
                                 const std::string& name,
                                 const fed::History& history);

/// One [comm] wire-traffic line for a trained run.
void print_comm_line(const RunResult& r, const fed::FlConfig& fl);

/// One [mem] planned-vs-measured line for a trained run.
void print_mem_line(const RunResult& r, const Setup& s);

/// One [net] measured-vs-modeled transfer line for a distributed-root run
/// (no-op when r.net_workers == 0).
void print_net_line(const RunResult& r);

/// One [obs] wall-clock phase-breakdown line for a trained run.
void print_obs_line(const RunResult& r);

/// fp_run's report: history tail, final metrics, time/comm/mem summaries.
void print_run_summary(const Setup& s, const RunResult& r);

}  // namespace fp::exp
