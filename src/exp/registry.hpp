// String-keyed registries for the declarative experiment API (DESIGN.md §7).
//
// A registry maps stable experiment-facing names ("FedProphet", "tiny_vgg",
// "int8", ...) to factories or enum values. Lookups of unknown names throw
// SpecError with a nearest-name suggestion, so a typo on the fp_run command
// line fails with "did you mean ...?" instead of an abort deep in a bench.
// Registration order is preserved: names() is the canonical listing shown by
// `fp_run --list` and used in error messages.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace fp::exp {

/// Any spec/registry misuse: unknown key, unknown name, unparsable value.
class SpecError : public std::runtime_error {
 public:
  explicit SpecError(const std::string& what) : std::runtime_error(what) {}
};

/// Levenshtein edit distance (insert/delete/substitute, unit costs).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// The candidate closest to `name`, or "" when nothing is plausibly close
/// (distance must be <= max(2, |name| / 3)).
std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& candidates);

/// "unknown <what> '<name>'; did you mean '<nearest>'? valid: a, b, c"
std::string unknown_name_message(const std::string& what,
                                 const std::string& name,
                                 const std::vector<std::string>& candidates);

template <class T>
class Registry {
 public:
  /// `what` names the entry type in error messages ("method", "codec", ...).
  explicit Registry(std::string what) : what_(std::move(what)) {}

  void add(const std::string& name, T value, std::string doc = {}) {
    if (find(name) != nullptr)
      throw SpecError("duplicate " + what_ + " '" + name + "'");
    entries_.emplace_back(name, Entry{std::move(value), std::move(doc)});
  }

  bool contains(const std::string& name) const { return find(name) != nullptr; }

  const T& resolve(const std::string& name) const {
    if (const Entry* e = find(name)) return e->value;
    throw SpecError(unknown_name_message(what_, name, names()));
  }

  const std::string& doc(const std::string& name) const {
    if (const Entry* e = find(name)) return e->doc;
    throw SpecError(unknown_name_message(what_, name, names()));
  }

  std::vector<std::string> names() const {
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, entry] : entries_) out.push_back(name);
    return out;
  }

  const std::string& what() const { return what_; }

 private:
  struct Entry {
    T value;
    std::string doc;
  };

  const Entry* find(const std::string& name) const {
    for (const auto& [key, entry] : entries_)
      if (key == name) return &entry;
    return nullptr;
  }

  std::string what_;
  std::vector<std::pair<std::string, Entry>> entries_;
};

}  // namespace fp::exp
