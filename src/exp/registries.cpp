#include "exp/registries.hpp"

#include "models/zoo.hpp"

namespace fp::exp {

namespace {

ModelFactory tiny(models::ModelSpec (*fn)(std::int64_t, std::int64_t,
                                          std::int64_t)) {
  return [fn](const ModelParams& p) { return fn(p.image, p.classes, p.width); };
}

ModelFactory paper(models::ModelSpec (*fn)(std::int64_t, std::int64_t)) {
  return [fn](const ModelParams& p) { return fn(p.image, p.classes); };
}

}  // namespace

Registry<ModelFactory>& model_registry() {
  static Registry<ModelFactory> reg = [] {
    Registry<ModelFactory> r("model");
    r.add("tiny_vgg", tiny(models::tiny_vgg_spec),
          "trainable plain VGG-style net (BatchNorm, 9 atoms)");
    r.add("tiny_resnet", tiny(models::tiny_resnet_spec),
          "trainable residual net (stem + 5 basic blocks)");
    r.add("tiny_cnn", tiny(models::tiny_cnn_spec),
          "trainable 2-conv 'small model' baseline");
    r.add("vgg16", paper(models::vgg16_spec), "paper-exact VGG16 (analytic)");
    r.add("vgg13", paper(models::vgg13_spec), "paper-exact VGG13 (analytic)");
    r.add("vgg11", paper(models::vgg11_spec), "paper-exact VGG11 (analytic)");
    r.add("cnn3", paper(models::cnn3_spec), "paper small CIFAR CNN (analytic)");
    r.add("resnet34", paper(models::resnet34_spec),
          "paper-exact ResNet34 (analytic)");
    r.add("resnet18", paper(models::resnet18_spec),
          "paper-exact ResNet18 (analytic)");
    r.add("resnet10", paper(models::resnet10_spec),
          "paper-exact ResNet10 (analytic)");
    r.add("cnn4", paper(models::cnn4_spec),
          "paper small Caltech CNN (analytic)");
    return r;
  }();
  return reg;
}

Registry<WorkloadInfo>& workload_registry() {
  static Registry<WorkloadInfo> reg = [] {
    Registry<WorkloadInfo> r("workload");
    WorkloadInfo cifar;
    cifar.display_name = "CIFAR-10 (synthetic)";
    cifar.cifar_pool = true;
    cifar.seed_offset = 0;
    cifar.default_train_size = 1600;
    cifar.default_model = "tiny_vgg";
    cifar.kd_mid_width = 4;
    cifar.synth = data::synth_cifar_config;
    cifar.paper_spec = [] { return models::vgg16_spec(32, 10); };
    cifar.paper_batch = 64;
    r.add("cifar", cifar, "CIFAR-10 stand-in on the Table 5 device pool");

    WorkloadInfo caltech;
    caltech.display_name = "Caltech-256 (synthetic)";
    caltech.cifar_pool = false;
    caltech.seed_offset = 77;
    caltech.default_train_size = 1280;
    caltech.default_model = "tiny_resnet";
    caltech.kd_mid_width = 5;
    caltech.synth = data::synth_caltech_config;
    caltech.paper_spec = [] { return models::resnet34_spec(224, 256); };
    caltech.paper_batch = 32;
    r.add("caltech", caltech, "Caltech-256 stand-in on the Table 6 device pool");
    return r;
  }();
  return reg;
}

Registry<fed::SchedulerKind>& scheduler_registry() {
  static Registry<fed::SchedulerKind> reg = [] {
    Registry<fed::SchedulerKind> r("scheduler");
    r.add("sync", fed::SchedulerKind::kSync,
          "barrier rounds, bit-identical to the historical loops");
    r.add("async", fed::SchedulerKind::kAsync,
          "event-driven FedAsync-style replay of device latencies");
    return r;
  }();
  return reg;
}

std::string scheduler_key(fed::SchedulerKind kind) {
  for (const auto& name : scheduler_registry().names())
    if (scheduler_registry().resolve(name) == kind) return name;
  throw SpecError("unnamed scheduler kind");
}

Registry<CodecEntry>& codec_registry() {
  static Registry<CodecEntry> reg = [] {
    auto entry = [](comm::CodecKind kind) {
      CodecEntry e;
      e.kind = kind;
      e.make = [kind](const comm::CommConfig& cfg) {
        comm::CommConfig with_kind = cfg;
        with_kind.codec = kind;
        return comm::make_codec(with_kind);
      };
      return e;
    };
    Registry<CodecEntry> r("codec");
    r.add("identity", entry(comm::CodecKind::kIdentity),
          "dense fp32, bit-identical round-trip (default)");
    r.add("fp16", entry(comm::CodecKind::kFp16),
          "IEEE half precision, round-to-nearest-even");
    r.add("int8", entry(comm::CodecKind::kInt8),
          "per-tensor affine 8-bit quantization");
    r.add("topk", entry(comm::CodecKind::kTopK),
          "magnitude sparsification, exact kept coordinates");
    return r;
  }();
  return reg;
}

std::string codec_key(comm::CodecKind kind) {
  for (const auto& name : codec_registry().names())
    if (codec_registry().resolve(name).kind == kind) return name;
  throw SpecError("unnamed codec kind");
}

void resolve_spec(ExperimentSpec& spec, bool fast) {
  const WorkloadInfo& wl = workload_registry().resolve(spec.workload);
  if (spec.heterogeneity != "balanced" && spec.heterogeneity != "unbalanced")
    throw SpecError(unknown_name_message("heterogeneity", spec.heterogeneity,
                                         {"balanced", "unbalanced"}));
  if (spec.model == "auto") spec.model = wl.default_model;
  model_registry().resolve(spec.model);
  if (spec.model_classes == 0) spec.model_classes = wl.synth().num_classes;
  if (spec.train_size == 0)
    spec.train_size = scaled(wl.default_train_size, fast);
  if (spec.fl.local_iters < 0) spec.fl.local_iters = fast ? 2 : 4;
  if (spec.fl.rounds == 0)
    spec.fl.rounds = scaled(spec.method == "jFAT" ? 12 : 16, fast);
  if (spec.fl.seed == 0)
    spec.fl.seed = 1234 + wl.seed_offset +
                   static_cast<std::uint64_t>(spec.heterogeneity == "unbalanced");
  if (spec.eval_max_samples == 0) spec.eval_max_samples = scaled(128, fast);
  if (spec.fp_rounds_per_module == 0)
    spec.fp_rounds_per_module = scaled(5, fast) + 1;
  // With the memory plane off the pricing scale is inert: pin the neutral
  // value here so resolution alone is canonical. When the plane is active the
  // auto value needs the built model family and is filled by build_setup.
  if (spec.fl.mem.device_mem_scale <= 0 && !spec.fl.mem.active())
    spec.fl.mem.device_mem_scale = 1.0;
}

void resolve_spec(ExperimentSpec& spec) { resolve_spec(spec, fast_mode()); }

}  // namespace fp::exp
