#include "exp/spec.hpp"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "exp/json.hpp"
#include "exp/registries.hpp"

namespace fp::exp {

bool fast_mode() {
  const char* v = std::getenv("FP_BENCH_FAST");
  return v != nullptr && v[0] == '1';
}

std::int64_t scaled(std::int64_t n, bool fast) {
  return fast ? (n + 3) / 4 : n;
}

std::int64_t scaled(std::int64_t n) { return scaled(n, fast_mode()); }

fed::FlConfig default_fl_config() {
  fed::FlConfig fl;
  fl.num_clients = 10;
  fl.clients_per_round = 4;
  fl.local_iters = -1;  // auto: FP_BENCH_FAST ? 2 : 4
  fl.batch_size = 16;
  fl.rounds = 0;        // auto: scaled(12) for jFAT, scaled(16) otherwise
  fl.pgd_steps = 3;     // PGD-3 training at bench scale (paper: PGD-10)
  fl.lr0 = 0.05f;
  fl.sgd.lr = 0.05f;
  fl.lr_decay = 0.99f;
  fl.seed = 0;          // auto: 1234 + workload/heterogeneity offsets
  fl.mem.device_mem_scale = 0.0;  // auto: the setup's trainable/paper ratio
  return fl;
}

namespace {

// ---- scalar parsing / formatting --------------------------------------------

[[noreturn]] void bad_value(const std::string& key, const std::string& value,
                            const char* want) {
  throw SpecError("bad value '" + value + "' for key '" + key + "' (expected " +
                  want + ")");
}

/// Overflow-checked integer parsing into the field's exact type: a value the
/// field cannot represent must fail loudly, or the exported resolved spec
/// would silently replay a different configuration.
template <class Field>
Field parse_integral(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  if constexpr (std::is_unsigned_v<Field>) {
    if (!value.empty() && value[0] == '-')
      bad_value(key, value, "a non-negative integer");
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        v > static_cast<unsigned long long>(std::numeric_limits<Field>::max()))
      bad_value(key, value, "an integer in range");
    return static_cast<Field>(v);
  } else {
    const long long v = std::strtoll(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
        v < static_cast<long long>(std::numeric_limits<Field>::min()) ||
        v > static_cast<long long>(std::numeric_limits<Field>::max()))
      bad_value(key, value, "an integer in range");
    return static_cast<Field>(v);
  }
}

double parse_num(const std::string& key, const std::string& value) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(value.c_str(), &end);
  // Overflow and non-finite inputs must fail loudly: an inf/nan would train
  // garbage AND serialize as invalid JSON in the reproduction artifact.
  if (end == value.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(v))
    bad_value(key, value, "a finite number");
  return v;
}

bool parse_bool(const std::string& key, const std::string& value) {
  if (value == "true" || value == "1") return true;
  if (value == "false" || value == "0") return false;
  bad_value(key, value, "a boolean (true/false/1/0)");
}

/// Shortest decimal spelling that round-trips the binary value exactly.
std::string fmt_float(float v) {
  char buf[48];
  for (int prec = 6; prec <= 9; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, static_cast<double>(v));
    if (std::strtof(buf, nullptr) == v) break;
  }
  return buf;
}

std::string fmt_double(double v) {
  char buf[48];
  for (int prec = 15; prec <= 17; ++prec) {
    std::snprintf(buf, sizeof(buf), "%.*g", prec, v);
    if (std::strtod(buf, nullptr) == v) break;
  }
  return buf;
}

// ---- KeyDef builders ---------------------------------------------------------

/// One numeric/bool key bound to a member reference. `Ref` maps a spec to the
/// field; the field's type selects parsing, formatting, and the JSON kind.
template <class Ref>
KeyDef field_key(std::string key, std::string doc, Ref ref) {
  using Field = std::remove_reference_t<decltype(ref(
      std::declval<ExperimentSpec&>()))>;
  KeyDef def;
  def.key = key;
  def.doc = std::move(doc);
  if constexpr (std::is_same_v<Field, bool>) {
    def.kind = KeyKind::kBool;
    def.get = [ref](const ExperimentSpec& s) {
      return ref(const_cast<ExperimentSpec&>(s)) ? "true" : "false";
    };
    def.set = [ref, key](ExperimentSpec& s, const std::string& v) {
      ref(s) = parse_bool(key, v);
    };
  } else if constexpr (std::is_same_v<Field, float>) {
    def.kind = KeyKind::kFloat;
    def.get = [ref](const ExperimentSpec& s) {
      return fmt_float(ref(const_cast<ExperimentSpec&>(s)));
    };
    def.set = [ref, key](ExperimentSpec& s, const std::string& v) {
      const float f = static_cast<float>(parse_num(key, v));
      if (!std::isfinite(f)) bad_value(key, v, "a finite number");
      ref(s) = f;
    };
  } else if constexpr (std::is_same_v<Field, double>) {
    def.kind = KeyKind::kFloat;
    def.get = [ref](const ExperimentSpec& s) {
      return fmt_double(ref(const_cast<ExperimentSpec&>(s)));
    };
    def.set = [ref, key](ExperimentSpec& s, const std::string& v) {
      ref(s) = parse_num(key, v);
    };
  } else {
    static_assert(std::is_integral_v<Field>);
    def.kind = KeyKind::kInt;
    def.get = [ref](const ExperimentSpec& s) {
      return std::to_string(ref(const_cast<ExperimentSpec&>(s)));
    };
    def.set = [ref, key](ExperimentSpec& s, const std::string& v) {
      ref(s) = parse_integral<Field>(key, v);
    };
  }
  return def;
}

/// A free-form or registry-validated string key. When `validate` is set, it
/// throws SpecError (with suggestions) on unknown values.
template <class Ref>
KeyDef string_key(std::string key, std::string doc, Ref ref,
                  std::function<void(const std::string&)> validate = {}) {
  KeyDef def;
  def.key = std::move(key);
  def.kind = KeyKind::kString;
  def.doc = std::move(doc);
  def.get = [ref](const ExperimentSpec& s) {
    return ref(const_cast<ExperimentSpec&>(s));
  };
  def.set = [ref, validate](ExperimentSpec& s, const std::string& v) {
    if (validate) validate(v);
    ref(s) = v;
  };
  return def;
}

std::vector<KeyDef> build_schema() {
  std::vector<KeyDef> keys;
  auto add = [&keys](KeyDef def) { keys.push_back(std::move(def)); };

  // ---- what to run ----------------------------------------------------------
  add(string_key(
      "method", "training method (fp_run --list)",
      [](ExperimentSpec& s) -> std::string& { return s.method; },
      [](const std::string& v) {
        const auto& names = method_names();
        for (const auto& n : names)
          if (n == v) return;
        throw SpecError(unknown_name_message("method", v, names));
      }));
  add(string_key(
      "workload", "dataset/device-pool scenario (cifar, caltech)",
      [](ExperimentSpec& s) -> std::string& { return s.workload; },
      [](const std::string& v) { workload_registry().resolve(v); }));
  add(string_key(
      "heterogeneity", "fleet sampling: balanced or unbalanced",
      [](ExperimentSpec& s) -> std::string& { return s.heterogeneity; },
      [](const std::string& v) {
        if (v != "balanced" && v != "unbalanced")
          throw SpecError(unknown_name_message("heterogeneity", v,
                                               {"balanced", "unbalanced"}));
      }));
  add(string_key(
      "model.name", "trainable backbone (model registry key; auto = workload default)",
      [](ExperimentSpec& s) -> std::string& { return s.model; },
      [](const std::string& v) {
        if (v != "auto") model_registry().resolve(v);
      }));
  add(field_key("model.image", "input image side length",
                [](ExperimentSpec& s) -> std::int64_t& { return s.model_image; }));
  add(field_key("model.width", "width multiplier of the tiny models",
                [](ExperimentSpec& s) -> std::int64_t& { return s.model_width; }));
  add(field_key("model.classes", "output classes (0 = workload default)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.model_classes; }));
  add(field_key("data.train_size", "training samples (0 = workload default)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.train_size; }));
  add(field_key("data.test_size", "test samples",
                [](ExperimentSpec& s) -> std::int64_t& { return s.test_size; }));

  // ---- fed::FlConfig --------------------------------------------------------
  add(field_key("fl.num_clients", "total clients N",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fl.num_clients; }));
  add(field_key("fl.clients_per_round", "clients sampled per round C",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fl.clients_per_round;
                }));
  add(field_key("fl.local_iters", "local SGD steps E (-1 = auto: fast? 2 : 4)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fl.local_iters; }));
  add(field_key("fl.batch_size", "local minibatch size B",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fl.batch_size; }));
  add(field_key("fl.rounds", "server rounds (0 = auto: scaled 12 jFAT / 16 others)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fl.rounds; }));
  add(field_key("fl.lr0", "initial learning rate",
                [](ExperimentSpec& s) -> float& { return s.fl.lr0; }));
  add(field_key("fl.lr_decay", "per-round exponential lr decay",
                [](ExperimentSpec& s) -> float& { return s.fl.lr_decay; }));
  add(field_key("fl.sgd.lr", "SGD step size (kept equal to fl.lr0 by convention)",
                [](ExperimentSpec& s) -> float& { return s.fl.sgd.lr; }));
  add(field_key("fl.sgd.momentum", "SGD momentum",
                [](ExperimentSpec& s) -> float& { return s.fl.sgd.momentum; }));
  add(field_key("fl.sgd.weight_decay", "SGD weight decay",
                [](ExperimentSpec& s) -> float& { return s.fl.sgd.weight_decay; }));
  add(field_key("fl.pgd_steps", "PGD-n adversarial training steps",
                [](ExperimentSpec& s) -> int& { return s.fl.pgd_steps; }));
  add(field_key("fl.epsilon0", "input perturbation bound",
                [](ExperimentSpec& s) -> float& { return s.fl.epsilon0; }));
  add(field_key("fl.seed", "experiment seed (0 = auto: 1234 + workload offsets)",
                [](ExperimentSpec& s) -> std::uint64_t& { return s.fl.seed; }));
  {
    KeyDef def;
    def.key = "fl.scheduler";
    def.kind = KeyKind::kString;
    def.doc = "round scheduler: sync (barrier) or async (event-driven)";
    def.get = [](const ExperimentSpec& s) { return scheduler_key(s.fl.scheduler); };
    def.set = [](ExperimentSpec& s, const std::string& v) {
      s.fl.scheduler = scheduler_registry().resolve(v);
    };
    add(std::move(def));
  }

  // ---- fed::AsyncConfig -----------------------------------------------------
  add(field_key("async.concurrency", "in-flight clients (0 = clients_per_round)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fl.async.concurrency;
                }));
  add(field_key("async.alpha", "FedAsync base mixing rate",
                [](ExperimentSpec& s) -> double& { return s.fl.async.alpha; }));
  add(field_key("async.straggler_cutoff_s",
                "discard updates slower than this many simulated seconds (0 = off)",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.async.straggler_cutoff_s;
                }));
  add(field_key("async.dropout_prob", "probability a dispatched client vanishes",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.async.dropout_prob;
                }));
  add(field_key("async.scale_by_data", "scale mixing by relative shard size",
                [](ExperimentSpec& s) -> bool& { return s.fl.async.scale_by_data; }));
  add(field_key("async.min_mix", "floor on the applied mixing coefficient",
                [](ExperimentSpec& s) -> double& { return s.fl.async.min_mix; }));

  // ---- comm::CommConfig -----------------------------------------------------
  {
    KeyDef def;
    def.key = "comm.codec";
    def.kind = KeyKind::kString;
    def.doc = "wire codec: identity, fp16, int8, topk";
    def.get = [](const ExperimentSpec& s) { return codec_key(s.fl.comm.codec); };
    def.set = [](ExperimentSpec& s, const std::string& v) {
      s.fl.comm.codec = codec_registry().resolve(v).kind;
    };
    add(std::move(def));
  }
  add(field_key("comm.topk_fraction", "TopK: fraction of coordinates kept",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.comm.topk_fraction;
                }));
  add(field_key("comm.topk_delta", "TopK: select by |update - broadcast|",
                [](ExperimentSpec& s) -> bool& { return s.fl.comm.topk_delta; }));
  add(field_key("comm.compress_downlink", "run broadcasts through the codec too",
                [](ExperimentSpec& s) -> bool& {
                  return s.fl.comm.compress_downlink;
                }));
  add(field_key("comm.model_network",
                "price wire bytes into simulated time (comm::NetworkModel)",
                [](ExperimentSpec& s) -> bool& { return s.fl.comm.model_network; }));

  // ---- mem::MemConfig -------------------------------------------------------
  add(field_key("mem.measure", "track per-client training peaks in an arena",
                [](ExperimentSpec& s) -> bool& { return s.fl.mem.measure; }));
  add(field_key("mem.enforce_budget", "derive and enforce per-client budgets",
                [](ExperimentSpec& s) -> bool& { return s.fl.mem.enforce_budget; }));
  add(field_key("mem.checkpointing",
                "activation checkpointing for over-budget clients",
                [](ExperimentSpec& s) -> bool& { return s.fl.mem.checkpointing; }));
  add(field_key("mem.budget_override_bytes",
                "fixed per-client budget in bytes (0 = device-derived)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fl.mem.budget_override_bytes;
                }));
  add(field_key("mem.budget_frac",
                "budget as a fraction of the planned full-training peak (0 = off)",
                [](ExperimentSpec& s) -> double& { return s.mem_budget_frac; }));
  add(field_key("mem.device_mem_scale",
                "paper-scale -> trainable-scale pricing map (0 = auto)",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.mem.device_mem_scale;
                }));

  // ---- compute::ComputeConfig -----------------------------------------------
  {
    KeyDef def;
    def.key = "compute.precision";
    def.kind = KeyKind::kString;
    def.doc = "inference-forward kernels: fp32 or int8 (DESIGN.md §8)";
    def.get = [](const ExperimentSpec& s) {
      return std::string(compute::precision_name(s.fl.compute.precision));
    };
    def.set = [](ExperimentSpec& s, const std::string& v) {
      if (v == "fp32")
        s.fl.compute.precision = compute::Precision::kFp32;
      else if (v == "int8")
        s.fl.compute.precision = compute::Precision::kInt8;
      else
        throw SpecError(
            unknown_name_message("compute.precision", v, {"fp32", "int8"}));
    };
    add(std::move(def));
  }
  add(field_key("compute.winograd",
                "Winograd F(2x2,3x3) for inference 3x3 convolutions",
                [](ExperimentSpec& s) -> bool& { return s.fl.compute.winograd; }));

  // ---- environment ----------------------------------------------------------
  add(field_key("env.public_set", "hold out a server-side public split (KD)",
                [](ExperimentSpec& s) -> bool& { return s.with_public_set; }));
  add(field_key("env.public_fraction", "fraction held out as the public set",
                [](ExperimentSpec& s) -> double& { return s.public_fraction; }));
  add(field_key("env.persistent_devices",
                "bind each client to one device for the whole experiment",
                [](ExperimentSpec& s) -> bool& { return s.persistent_devices; }));
  add(field_key("env.device_mem_scale",
                "method-level device memory multiplier (0 = auto ratio)",
                [](ExperimentSpec& s) -> double& { return s.device_mem_scale; }));

  // ---- scale plane (DESIGN.md §9) -------------------------------------------
  add(field_key("env.lazy_clients",
                "plan-backed pool: synthesize shards on dispatch, O(sampled) "
                "residency",
                [](ExperimentSpec& s) -> bool& { return s.env_lazy_clients; }));
  add(field_key("env.lazy_materialize",
                "materialize every plan-backed shard up front (equivalence runs)",
                [](ExperimentSpec& s) -> bool& {
                  return s.env_lazy_materialize;
                }));
  add(field_key("env.shard_size",
                "samples per plan-backed shard (0 = train_size / num_clients)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.env_shard_size;
                }));
  add(field_key("env.client_cache",
                "LRU capacity for synthesized shards (0 = default 256)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.env_client_cache;
                }));
  add(field_key("env.iter_cache",
                "eager-mode resident batch-iterator cap (0 = unbounded)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.env_iter_cache;
                }));
  add(field_key("env.aggregators",
                "edge aggregators for hierarchical aggregation (0 = flat)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fl.agg.aggregators;
                }));
  add(field_key("env.agg_up_mbps", "edge->server backbone bandwidth (Mbit/s)",
                [](ExperimentSpec& s) -> double& { return s.fl.agg.up_mbps; }));
  add(field_key("env.agg_latency_s", "edge->server one-way latency (seconds)",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.agg.latency_s;
                }));
  add(field_key("env.churn.enabled", "availability churn process (DESIGN.md §9)",
                [](ExperimentSpec& s) -> bool& { return s.fl.churn.enabled; }));
  add(field_key("env.churn.online_frac",
                "expected fraction of the pool online in any round",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.churn.online_frac;
                }));
  add(field_key("env.churn.period_rounds",
                "rounds between availability re-draws (session length)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fl.churn.period_rounds;
                }));
  add(field_key("env.churn.drop_prob",
                "probability a dispatched online client drops mid-round",
                [](ExperimentSpec& s) -> double& {
                  return s.fl.churn.drop_prob;
                }));

  // ---- distributed runtime (DESIGN.md §10) ----------------------------------
  add(string_key(
      "net.role", "distributed role: off (single-process), root, or worker",
      [](ExperimentSpec& s) -> std::string& { return s.net_role; },
      [](const std::string& v) {
        if (v != "off" && v != "root" && v != "worker")
          throw SpecError(
              unknown_name_message("net.role", v, {"off", "root", "worker"}));
      }));
  add(string_key(
      "net.host", "root endpoint host",
      [](ExperimentSpec& s) -> std::string& { return s.net_host; }));
  add(field_key("net.port", "root endpoint port (0 = ephemeral, tests)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.net_port; }));
  add(field_key("net.workers", "worker connections the root waits for",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.net_workers;
                }));
  add(string_key(
      "net.codec",
      "upload form on the wire: auto (ship comm.codec's encoding) or "
      "identity (dense fp32)",
      [](ExperimentSpec& s) -> std::string& { return s.net_codec; },
      [](const std::string& v) {
        if (v != "auto" && v != "identity")
          throw SpecError(
              unknown_name_message("net.codec", v, {"auto", "identity"}));
      }));
  add(field_key("net.timeout_s",
                "root-side receive timeout per frame (seconds; <= 0 = none)",
                [](ExperimentSpec& s) -> double& { return s.net_timeout_s; }));
  add(field_key("net.retry_s", "worker connect retry window (seconds)",
                [](ExperimentSpec& s) -> double& { return s.net_retry_s; }));

  // ---- serving plane (DESIGN.md §12) ----------------------------------------
  add(string_key(
      "serve.host", "inference server bind address",
      [](ExperimentSpec& s) -> std::string& { return s.serve_host; }));
  add(field_key("serve.port", "inference server port (0 = ephemeral, tests)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.serve_port;
                }));
  add(field_key("serve.max_batch",
                "samples coalesced into one batched inference forward",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.serve_max_batch;
                }));
  add(field_key("serve.max_delay_ms",
                "micro-batch coalescing window after the first waiter",
                [](ExperimentSpec& s) -> double& {
                  return s.serve_max_delay_ms;
                }));
  add(field_key("serve.queue_cap",
                "pending-sample bound; requests above it get HTTP 503",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.serve_queue_cap;
                }));
  add(field_key("serve.max_conns", "concurrent HTTP connection bound",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.serve_max_conns;
                }));

  // ---- observability (DESIGN.md §11) ----------------------------------------
  add(field_key("obs.trace",
                "collect spans and write a Chrome trace JSON (fp_run --trace)",
                [](ExperimentSpec& s) -> bool& { return s.obs_trace; }));
  add(string_key(
      "obs.trace_path",
      "trace output path (empty = <FP_BENCH_OUT>/<name>.trace.json)",
      [](ExperimentSpec& s) -> std::string& { return s.obs_trace_path; }));
  add(field_key("obs.metrics",
                "export the counter registry as <name>.metrics.json",
                [](ExperimentSpec& s) -> bool& { return s.obs_metrics; }));
  add(field_key("obs.sample_kernels",
                "trace 1 in N kernel entry calls (GEMM/conv/Winograd)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.obs_sample_kernels;
                }));

  // ---- evaluation -----------------------------------------------------------
  add(field_key("eval.pgd_steps", "PGD steps of the final evaluation",
                [](ExperimentSpec& s) -> int& { return s.eval_pgd_steps; }));
  add(field_key("eval.aa_steps", "AutoAttack-lite APGD iterations",
                [](ExperimentSpec& s) -> int& { return s.eval_aa_steps; }));
  add(field_key("eval.aa_restarts", "APGD random restarts",
                [](ExperimentSpec& s) -> int& { return s.eval_aa_restarts; }));
  add(field_key("eval.max_samples",
                "evaluated samples (0 = auto scaled 128, -1 = whole test set)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.eval_max_samples;
                }));
  add(field_key("eval.every", "history snapshot cadence in rounds (0 = end only)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.eval_every; }));

  // ---- FedProphet -----------------------------------------------------------
  add(field_key("fp.rmin_frac", "Rmin as a fraction of full-model training mem",
                [](ExperimentSpec& s) -> double& { return s.fp_rmin_frac; }));
  add(field_key("fp.rmin_bytes", "explicit Rmin in bytes (0 = use fp.rmin_frac)",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fp_rmin_bytes; }));
  add(field_key("fp.rounds_per_module",
                "rounds per module stage (0 = auto: scaled(5) + 1)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fp_rounds_per_module;
                }));
  add(field_key("fp.eval_every", "APA / early-stop cadence in rounds",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fp_eval_every; }));
  add(field_key("fp.patience_evals", "early-stop patience (0 = no early stop)",
                [](ExperimentSpec& s) -> std::int64_t& {
                  return s.fp_patience_evals;
                }));
  add(field_key("fp.val_samples", "validation subset for C_m / A_m",
                [](ExperimentSpec& s) -> std::int64_t& { return s.fp_val_samples; }));
  add(field_key("fp.mu", "strong-convexity regularizer",
                [](ExperimentSpec& s) -> float& { return s.fp_mu; }));
  add(field_key("fp.alpha_init", "initial APA mixing weight",
                [](ExperimentSpec& s) -> float& { return s.fp_alpha_init; }));
  add(field_key("fp.delta_alpha", "APA mixing step",
                [](ExperimentSpec& s) -> float& { return s.fp_delta_alpha; }));
  add(field_key("fp.gamma", "APA accuracy-drop tolerance",
                [](ExperimentSpec& s) -> float& { return s.fp_gamma; }));
  add(field_key("fp.apa", "Adaptive Perturbation Adjustment on/off",
                [](ExperimentSpec& s) -> bool& { return s.fp_apa; }));
  add(field_key("fp.dma", "Differentiated Module Assignment on/off",
                [](ExperimentSpec& s) -> bool& { return s.fp_dma; }));

  // ---- other method knobs ---------------------------------------------------
  add(field_key("distill.iters", "server distillation iterations per round",
                [](ExperimentSpec& s) -> int& { return s.distill_iters; }));
  add(field_key("distill.batch", "server distillation batch size",
                [](ExperimentSpec& s) -> std::int64_t& { return s.distill_batch; }));
  add(field_key("distill.lr", "server distillation learning rate",
                [](ExperimentSpec& s) -> float& { return s.distill_lr; }));
  add(field_key("partial.min_ratio", "floor on the sub-model width ratio",
                [](ExperimentSpec& s) -> double& { return s.partial_min_ratio; }));
  add(field_key("adversarial",
                "adversarial client training (false turns jFAT into FedAvg)",
                [](ExperimentSpec& s) -> bool& { return s.adversarial; }));
  return keys;
}

std::vector<std::string> schema_keys() {
  std::vector<std::string> out;
  for (const auto& def : spec_schema()) out.push_back(def.key);
  return out;
}

// ---- nested JSON emission ----------------------------------------------------

struct Node {
  std::string name;
  const KeyDef* leaf = nullptr;
  std::vector<Node> kids;
};

Node* child(Node& parent, const std::string& name) {
  for (auto& kid : parent.kids)
    if (kid.name == name) return &kid;
  parent.kids.push_back({name, nullptr, {}});
  return &parent.kids.back();
}

void emit(const ExperimentSpec& spec, const Node& node, int indent,
          std::string& out) {
  const std::string pad(static_cast<std::size_t>(indent) * 2, ' ');
  for (std::size_t i = 0; i < node.kids.size(); ++i) {
    const Node& kid = node.kids[i];
    out += pad + "\"" + json_escape(kid.name) + "\": ";
    if (kid.leaf != nullptr) {
      const std::string value = kid.leaf->get(spec);
      if (kid.leaf->kind == KeyKind::kString)
        out += "\"" + json_escape(value) + "\"";
      else
        out += value;
    } else {
      out += "{\n";
      emit(spec, kid, indent + 1, out);
      out += pad + "}";
    }
    out += i + 1 < node.kids.size() ? ",\n" : "\n";
  }
}

}  // namespace

const std::vector<KeyDef>& spec_schema() {
  static const std::vector<KeyDef> schema = [] {
    std::vector<KeyDef> keys = build_schema();
    // A key can be a scalar leaf or an object prefix, never both — such a
    // schema could not serialize to JSON (guards schema authoring, once).
    for (const auto& def : keys)
      for (const auto& other : keys)
        if (other.key.size() > def.key.size() &&
            other.key.compare(0, def.key.size(), def.key) == 0 &&
            other.key[def.key.size()] == '.')
          throw SpecError("schema key '" + def.key +
                          "' collides: it is also an object prefix of '" +
                          other.key + "'");
    return keys;
  }();
  return schema;
}

const KeyDef& find_key(const std::string& key) {
  for (const auto& def : spec_schema())
    if (def.key == key) return def;
  throw SpecError(unknown_name_message("spec key", key, schema_keys()));
}

void set_key(ExperimentSpec& spec, const std::string& key,
             const std::string& value) {
  find_key(key).set(spec, value);
}

std::string get_key(const ExperimentSpec& spec, const std::string& key) {
  return find_key(key).get(spec);
}

void apply_override(ExperimentSpec& spec, const std::string& key_eq_value) {
  const std::size_t eq = key_eq_value.find('=');
  if (eq == std::string::npos || eq == 0)
    throw SpecError("expected key=value, got '" + key_eq_value + "'");
  set_key(spec, key_eq_value.substr(0, eq), key_eq_value.substr(eq + 1));
}

std::string spec_to_json(const ExperimentSpec& spec) {
  Node root;
  for (const auto& def : spec_schema()) {
    Node* node = &root;
    std::size_t start = 0;
    while (true) {
      const std::size_t dot = def.key.find('.', start);
      if (dot == std::string::npos) {
        node = child(*node, def.key.substr(start));
        break;
      }
      node = child(*node, def.key.substr(start, dot - start));
      start = dot + 1;
    }
    node->leaf = &def;
  }
  std::string out = "{\n";
  emit(spec, root, 1, out);
  out += "}\n";
  return out;
}

void apply_json(ExperimentSpec& spec, const std::string& text) {
  for (const auto& [key, value] : parse_json_object(text))
    set_key(spec, key, value);
}

ExperimentSpec spec_from_json(const std::string& text) {
  ExperimentSpec spec;
  apply_json(spec, text);
  return spec;
}

bool specs_equal(const ExperimentSpec& a, const ExperimentSpec& b) {
  for (const auto& def : spec_schema())
    if (def.get(a) != def.get(b)) return false;
  return true;
}

}  // namespace fp::exp
