#include "exp/runner.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "baselines/distillation.hpp"
#include "baselines/fedrbn.hpp"
#include "baselines/jfat.hpp"
#include "baselines/partial_training.hpp"
#include "fed/history_io.hpp"
#include "fedprophet/fedprophet.hpp"
#include "mem/planner.hpp"
#include "models/zoo.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace fp::exp {

namespace {

sys::Heterogeneity het_of(const ExperimentSpec& spec) {
  return spec.heterogeneity == "unbalanced" ? sys::Heterogeneity::kUnbalanced
                                            : sys::Heterogeneity::kBalanced;
}

/// The default evaluation hook: three-metric robustness of the global model.
std::function<attack::RobustEvalResult(const attack::RobustEvalConfig&)>
default_eval(fed::FederatedAlgorithm* algo, fed::FedEnv& env) {
  return [algo, &env](const attack::RobustEvalConfig& e) {
    return attack::evaluate_robustness(algo->global_model(), env.test, e);
  };
}

MethodRun make_jfat(Setup& s) {
  baselines::JFatConfig cfg;
  cfg.fl = s.spec.fl;
  cfg.model_spec = s.model;
  cfg.adversarial = s.spec.adversarial;
  MethodRun run;
  auto algo = std::make_unique<baselines::JFat>(s.env, cfg);
  run.train = [a = algo.get(), ev = s.spec.eval_every] { a->run(ev); };
  run.evaluate = default_eval(algo.get(), s.env);
  run.algo = std::move(algo);
  return run;
}

MethodRun make_distillation(Setup& s, bool ensemble) {
  baselines::DistillationConfig cfg;
  cfg.fl = s.spec.fl;
  cfg.family = s.kd_family;
  cfg.ensemble_transfer = ensemble;
  cfg.distill_iters = s.spec.distill_iters;
  cfg.distill_batch = s.spec.distill_batch;
  cfg.distill_lr = s.spec.distill_lr;
  cfg.device_mem_scale = s.device_mem_scale;
  cfg.adversarial = s.spec.adversarial;
  MethodRun run;
  auto algo = std::make_unique<baselines::DistillationFAT>(s.env, cfg);
  run.train = [a = algo.get(), ev = s.spec.eval_every] { a->run(ev); };
  run.evaluate = default_eval(algo.get(), s.env);
  run.algo = std::move(algo);
  return run;
}

MethodRun make_partial(Setup& s, models::SliceScheme scheme) {
  baselines::PartialTrainingConfig cfg;
  cfg.fl = s.spec.fl;
  cfg.model_spec = s.model;
  cfg.scheme = scheme;
  cfg.device_mem_scale = s.device_mem_scale;
  cfg.min_ratio = s.spec.partial_min_ratio;
  cfg.adversarial = s.spec.adversarial;
  MethodRun run;
  auto algo = std::make_unique<baselines::PartialTrainingFAT>(s.env, cfg);
  run.train = [a = algo.get(), ev = s.spec.eval_every] { a->run(ev); };
  run.evaluate = default_eval(algo.get(), s.env);
  run.algo = std::move(algo);
  return run;
}

MethodRun make_fedrbn(Setup& s) {
  baselines::FedRbnConfig cfg;
  cfg.fl = s.spec.fl;
  cfg.model_spec = s.model;
  cfg.device_mem_scale = s.device_mem_scale;
  MethodRun run;
  // Which BN bank to serve is an evaluation-time choice, not part of the
  // checkpoint — FedRBN has no single deployable global model.
  run.single_global_model = false;
  auto algo = std::make_unique<baselines::FedRbn>(s.env, cfg);
  run.train = [a = algo.get(), ev = s.spec.eval_every] { a->run(ev); };
  // Dual-BN evaluation: clean bank for clean accuracy, adversarial bank for
  // the attacks.
  run.evaluate = [a = algo.get(), &env = s.env](
                     const attack::RobustEvalConfig& e) {
    attack::RobustEvalResult m;
    a->use_adv_bank(false);
    m.clean_acc = attack::evaluate_clean(a->global_model(), env.test,
                                         e.batch_size, e.max_samples, e.compute);
    a->use_adv_bank(true);
    const auto adv = attack::evaluate_robustness(a->global_model(), env.test, e);
    m.pgd_acc = adv.pgd_acc;
    m.aa_acc = adv.aa_acc;
    a->use_adv_bank(false);
    return m;
  };
  run.algo = std::move(algo);
  return run;
}

MethodRun make_fedprophet(Setup& s) {
  fedprophet::FedProphetConfig cfg;
  cfg.fl = s.spec.fl;
  cfg.model_spec = s.model;
  cfg.rmin_bytes = s.rmin;
  cfg.rounds_per_module = s.spec.fp_rounds_per_module;
  cfg.eval_every = s.spec.fp_eval_every;
  cfg.patience_evals = s.spec.fp_patience_evals;
  cfg.mu = s.spec.fp_mu;
  cfg.alpha_init = s.spec.fp_alpha_init;
  cfg.delta_alpha = s.spec.fp_delta_alpha;
  cfg.gamma = s.spec.fp_gamma;
  cfg.apa = s.spec.fp_apa;
  cfg.dma = s.spec.fp_dma;
  cfg.device_mem_scale = s.device_mem_scale;
  cfg.val_samples = s.spec.fp_val_samples;
  MethodRun run;
  auto algo = std::make_unique<fedprophet::FedProphet>(s.env, cfg);
  run.train = [a = algo.get()] { a->train(); };
  run.evaluate = default_eval(algo.get(), s.env);
  run.algo = std::move(algo);
  return run;
}

}  // namespace

Registry<MethodFactory>& method_registry() {
  static Registry<MethodFactory> reg = [] {
    Registry<MethodFactory> r("method");
    r.add("jFAT", make_jfat,
          "joint federated adversarial training of the full model");
    r.add("FedDF-AT", [](Setup& s) { return make_distillation(s, false); },
          "per-architecture FedAvg + ensemble distillation fusion");
    r.add("FedET-AT", [](Setup& s) { return make_distillation(s, true); },
          "ensemble knowledge transfer with confidence weighting");
    r.add("HeteroFL-AT", [](Setup& s) {
            return make_partial(s, models::SliceScheme::kStatic);
          },
          "static-slice partial training");
    r.add("FedDrop-AT", [](Setup& s) {
            return make_partial(s, models::SliceScheme::kRandom);
          },
          "random-slice partial training (federated dropout)");
    r.add("FedRolex-AT", [](Setup& s) {
            return make_partial(s, models::SliceScheme::kRolling);
          },
          "rolling-slice partial training");
    r.add("FedRBN", make_fedrbn, "dual-BN robustness propagation");
    r.add("FedProphet", make_fedprophet,
          "memory-efficient cascade learning with APA + DMA (the paper)");
    return r;
  }();
  return reg;
}

const std::vector<std::string>& method_names() {
  static const std::vector<std::string> names = method_registry().names();
  return names;
}

namespace {

/// Builds the model family and fills every derived scale — in the Setup
/// (full_mem, device_mem_scale, rmin) and in the spec itself (active-mem
/// pricing scale, budget-fraction bytes). `spec` must already be resolved.
/// Data- and environment-free, so spec-only consumers (resolve_full) share
/// it with build_setup.
void build_models(ExperimentSpec& spec, Setup& s) {
  const WorkloadInfo& wl = workload_registry().resolve(spec.workload);
  const ModelParams mp{spec.model_image, spec.model_classes, spec.model_width};
  s.model = model_registry().resolve(spec.model)(mp);
  s.small_model = model_registry().resolve("tiny_cnn")(mp);
  ModelParams mid = mp;
  mid.width = wl.kd_mid_width;
  s.kd_family = {s.small_model,
                 model_registry().resolve(wl.default_model)(mid), s.model};

  s.full_mem = sys::module_train_mem_bytes(s.model, 0, s.model.atoms.size(),
                                           spec.fl.batch_size, false);
  // Map the GB-scale device fleet onto the KB-scale trainable model so that
  // availability-to-model ratios match the paper's (DESIGN.md §1).
  const sys::ModelSpec paper = wl.paper_spec();
  const auto paper_mem = sys::module_train_mem_bytes(
      paper, 0, paper.atoms.size(), wl.paper_batch, false);
  s.device_mem_scale =
      spec.device_mem_scale > 0
          ? spec.device_mem_scale
          : static_cast<double>(s.full_mem) / static_cast<double>(paper_mem);
  s.rmin = spec.fp_rmin_bytes > 0
               ? spec.fp_rmin_bytes
               : static_cast<std::int64_t>(spec.fp_rmin_frac *
                                           static_cast<double>(s.full_mem));
  if (spec.fl.mem.device_mem_scale <= 0)
    spec.fl.mem.device_mem_scale =
        spec.fl.mem.active() ? s.device_mem_scale : 1.0;
  if (spec.mem_budget_frac > 0 && spec.fl.mem.budget_override_bytes == 0)
    spec.fl.mem.budget_override_bytes = static_cast<std::int64_t>(
        spec.mem_budget_frac *
        static_cast<double>(planned_full_peak(s.model, spec.fl.batch_size)));
}

}  // namespace

Setup build_setup(ExperimentSpec spec) {
  resolve_spec(spec);
  const WorkloadInfo& wl = workload_registry().resolve(spec.workload);

  Setup s;
  data::SyntheticConfig dcfg = wl.synth();
  dcfg.num_classes = spec.model_classes;
  dcfg.train_size = spec.train_size;
  dcfg.test_size = spec.test_size;
  // Plan-backed pools never synthesize the monolithic training set — shards
  // stream from the plan on dispatch (DESIGN.md §9) — so the only eager
  // tensors are the test/public splits the env renders itself.
  const bool plan_backed = spec.env_lazy_clients || spec.env_lazy_materialize;
  if (!plan_backed) s.data = data::make_synthetic(dcfg);

  build_models(spec, s);

  fed::FedEnvConfig ecfg;
  ecfg.fl = spec.fl;
  ecfg.with_public_set = spec.with_public_set;
  ecfg.public_fraction = spec.public_fraction;
  ecfg.heterogeneity = het_of(spec);
  ecfg.cifar_pool = wl.cifar_pool;
  ecfg.persistent_devices = spec.persistent_devices;
  ecfg.lazy_clients = spec.env_lazy_clients;
  ecfg.materialize_plan = spec.env_lazy_materialize;
  ecfg.shard_size = spec.env_shard_size;
  ecfg.client_cache = spec.env_client_cache;
  ecfg.iter_cache = spec.env_iter_cache;
  s.env = plan_backed ? fed::make_lazy_env(dcfg, ecfg, wl.paper_spec())
                      : fed::make_env(s.data, ecfg, wl.paper_spec());
  if (plan_backed) s.data.test = s.env.test;
  s.spec = std::move(spec);
  return s;
}

std::shared_ptr<const data::LazyShardSource> plan_source(ExperimentSpec spec) {
  if (!(spec.env_lazy_clients || spec.env_lazy_materialize)) return nullptr;
  resolve_spec(spec);
  const WorkloadInfo& wl = workload_registry().resolve(spec.workload);
  data::SyntheticConfig dcfg = wl.synth();
  dcfg.num_classes = spec.model_classes;
  dcfg.train_size = spec.train_size;
  dcfg.test_size = spec.test_size;
  data::ShardPlan plan;
  plan.synth = dcfg;
  plan.num_clients = spec.fl.num_clients;
  plan.shard_size = spec.env_shard_size > 0
                        ? spec.env_shard_size
                        : std::max<std::int64_t>(
                              spec.fl.batch_size,
                              dcfg.train_size /
                                  std::max<std::int64_t>(1, spec.fl.num_clients));
  const data::PartitionConfig pcfg;
  plan.major_class_fraction = pcfg.major_class_fraction;
  plan.major_data_fraction = pcfg.major_data_fraction;
  return std::make_shared<const data::LazyShardSource>(plan);
}

ExperimentSpec resolve_full(ExperimentSpec spec) {
  resolve_spec(spec);
  Setup scratch;
  build_models(spec, scratch);
  return spec;
}

std::int64_t planned_full_peak(const sys::ModelSpec& model,
                               std::int64_t batch_size) {
  mem::PlanRequest req;
  req.atom_begin = 0;
  req.atom_end = model.atoms.size();
  req.batch_size = batch_size;
  req.resident_extra_bytes = mem::replica_resident_bytes(
      model, 0, model.atoms.size(), batch_size, 0);
  return mem::plan_module_memory(model, req).peak_bytes;
}

attack::RobustEvalConfig eval_config(const ExperimentSpec& spec) {
  attack::RobustEvalConfig e;
  e.epsilon = spec.fl.epsilon0;
  e.pgd_steps = spec.eval_pgd_steps;
  e.aa_steps = spec.eval_aa_steps;
  e.aa_restarts = spec.eval_aa_restarts;
  e.max_samples = spec.eval_max_samples;
  e.compute = spec.fl.compute;
  return e;
}

RunResult run_on_setup(Setup& setup, const std::string& label) {
  const MethodFactory& factory = method_registry().resolve(setup.spec.method);
  MethodRun run = factory(setup);
  return run_built(setup, run, label);
}

namespace {

/// FP_BENCH_OUT/<name><suffix> when export is on, <name><suffix> otherwise.
std::string obs_artifact_path(const std::string& name,
                              const std::string& suffix) {
  const std::string base = fed::sanitize_filename(name) + suffix;
  const char* dir = std::getenv("FP_BENCH_OUT");
  return (dir && dir[0]) ? std::string(dir) + "/" + base : base;
}

}  // namespace

RunResult run_built(Setup& setup, MethodRun& run, const std::string& label) {
  obs::ObsSettings obs_settings;
  obs_settings.trace = setup.spec.obs_trace;
  obs_settings.trace_path = setup.spec.obs_trace_path;
  obs_settings.metrics = setup.spec.obs_metrics;
  obs_settings.sample_kernels = setup.spec.obs_sample_kernels;
  obs::configure(obs_settings);
  obs::set_thread_name("fp-engine");
  obs::phase_reset();
  const double wall0 = obs::now_s();

  run.train();

  RunResult r;
  r.name = label.empty() ? setup.spec.method : label;
  r.sim_time = run.algo->sim_time();
  r.history = run.algo->history();
  const fed::RoundStats& stats = run.algo->total_stats();
  r.bytes_up = stats.bytes_up;
  r.bytes_down = stats.bytes_down;
  r.peak_mem_bytes = stats.peak_mem_bytes;
  r.over_budget = stats.over_budget;
  r.dropped = stats.dropped_stragglers + stats.dropped_out;
  r.unique_participants = stats.unique_participants;
  r.agg_bytes_saved = stats.agg_bytes_saved;
  r.measured_comm_s = stats.measured_comm_s;
  r.exported_csv = export_run_artifacts(setup.spec, r.name, r.history);
  {
    // Outermost eval bracket: method-specific evaluation glue (dual-BN bank
    // switching, cascade assembly) counts too; the attack entry points'
    // nested timers are depth-guarded and don't double-count.
    obs::PhaseTimer eval_phase(obs::Phase::kEval);
    FP_TRACE_SCOPE("evaluate", "engine");
    r.metrics = run.evaluate(eval_config(setup.spec));
  }
  r.wall_s = obs::now_s() - wall0;
  r.phases = obs::phase_snapshot();

  if (obs_settings.trace) {
    std::string path = obs_settings.trace_path;
    if (path.empty()) path = obs_artifact_path(r.name, ".trace.json");
    if (obs::write_trace_json(path))
      r.trace_path = path;
    else
      obs::logf(obs::LogLevel::kInfo, "warning: failed to write trace %s",
                path.c_str());
  }
  if (obs_settings.metrics) {
    std::string path;
    if (!r.exported_csv.empty()) {
      path = r.exported_csv;
      path.replace(path.size() - 4, 4, ".metrics.json");
    } else {
      path = obs_artifact_path(r.name, ".metrics.json");
    }
    if (obs::write_metrics_json(path))
      r.metrics_path = path;
    else
      obs::logf(obs::LogLevel::kInfo, "warning: failed to write metrics %s",
                path.c_str());
  }
  return r;
}

RunResult run_experiment(ExperimentSpec spec, const std::string& label) {
  Setup setup = build_setup(std::move(spec));
  return run_on_setup(setup, label);
}

std::string export_run_artifacts(const ExperimentSpec& spec,
                                 const std::string& name,
                                 const fed::History& history) {
  const std::string csv = fed::export_history_path(name);
  if (csv.empty()) return {};
  if (!fed::write_history_csv(csv, history)) return {};
  // <name>.spec.json next to <name>.csv: the reproduction artifact. A failed
  // write must not pass silently — the artifact IS the point of the export.
  std::string spec_path = csv;
  spec_path.replace(spec_path.size() - 4, 4, ".spec.json");
  std::ofstream out(spec_path);
  out << spec_to_json(spec);
  out.flush();
  if (!out)
    obs::logf(obs::LogLevel::kInfo,
              "warning: failed to write reproduction spec %s",
              spec_path.c_str());
  return csv;
}

void print_comm_line(const RunResult& r, const fed::FlConfig& fl) {
  std::printf("    [comm] %-12s codec=%-8s up %8.2f MB  down %8.2f MB\n",
              r.name.c_str(), comm::codec_name(fl.comm.codec),
              static_cast<double>(r.bytes_up) / 1e6,
              static_cast<double>(r.bytes_down) / 1e6);
}

void print_mem_line(const RunResult& r, const Setup& s) {
  // The printed plan is the FULL trainable backbone's training peak — a fixed
  // scale reference, not a per-method prediction (sub-model and cascade
  // methods train less than the full backbone and measure below it).
  const auto plan = planned_full_peak(s.model, s.spec.fl.batch_size);
  char measured[48];
  if (r.peak_mem_bytes > 0)
    std::snprintf(measured, sizeof(measured), "%8.2f MB",
                  static_cast<double>(r.peak_mem_bytes) / 1e6);
  else
    std::snprintf(measured, sizeof(measured), "%10s", "off");
  std::printf(
      "    [mem]  %-12s full-plan %8.2f MB  measured %s  ckpt %-3s  "
      "over-budget %zu\n",
      r.name.c_str(), static_cast<double>(plan) / 1e6, measured,
      s.spec.fl.mem.checkpointing ? "on" : "off", r.over_budget);
}

void print_net_line(const RunResult& r) {
  if (r.net_workers == 0) return;
  std::printf(
      "    [net]  %-12s workers %zu  tx %8.2f MB  rx %8.2f MB  "
      "measured %.3g s  modeled %.3g s\n",
      r.name.c_str(), r.net_workers, static_cast<double>(r.net_tx_bytes) / 1e6,
      static_cast<double>(r.net_rx_bytes) / 1e6, r.measured_comm_s,
      r.sim_time.comm_s);
}

void print_obs_line(const RunResult& r) {
  const obs::PhaseBreakdown& p = r.phases;
  std::printf(
      "    [obs]  %-12s wall %.3g s  sample %.3g  train %.3g  "
      "aggregate %.3g  eval %.3g  (encode %.3g, nested in train)\n",
      r.name.c_str(), r.wall_s, p.sample_s, p.train_s, p.aggregate_s, p.eval_s,
      p.encode_s);
}

void print_run_summary(const Setup& s, const RunResult& r) {
  const WorkloadInfo& wl = workload_registry().resolve(s.spec.workload);
  std::printf("\n-- %s · %s · %s scheduler · %s fleet --\n", r.name.c_str(),
              wl.display_name.c_str(), scheduler_key(s.spec.fl.scheduler).c_str(),
              s.spec.heterogeneity.c_str());
  if (!r.history.empty()) {
    std::printf("%8s %8s %8s %10s %10s\n", "round", "clean", "adv", "sim (s)",
                "up (MB)");
    const std::size_t tail = r.history.size() > 6 ? r.history.size() - 6 : 0;
    if (tail > 0) std::printf("     ... (%zu earlier snapshots)\n", tail);
    for (std::size_t i = tail; i < r.history.size(); ++i) {
      const auto& rec = r.history[i];
      std::printf("%8lld %7.1f%% %7.1f%% %10.1f %10.2f\n",
                  static_cast<long long>(rec.round), 100 * rec.clean_acc,
                  100 * rec.adv_acc, rec.sim_time_s,
                  static_cast<double>(rec.bytes_up) / 1e6);
    }
  }
  std::printf("final: clean %.1f%%  PGD %.1f%%  AA-lite %.1f%%\n",
              100 * r.metrics.clean_acc, 100 * r.metrics.pgd_acc,
              100 * r.metrics.aa_acc);
  std::printf("simulated time: %.3g s (compute %.3g, access %.3g, comm %.3g)",
              r.sim_time.total(), r.sim_time.compute_s, r.sim_time.access_s,
              r.sim_time.comm_s);
  if (r.dropped > 0) std::printf("  dropped %zu", r.dropped);
  std::printf("\n");
  print_comm_line(r, s.spec.fl);
  print_mem_line(r, s);
  print_net_line(r);
  print_obs_line(r);
  if (!r.exported_csv.empty())
    std::printf("exported: %s (+ .spec.json)\n", r.exported_csv.c_str());
  if (!r.trace_path.empty())
    std::printf("trace: %s (load in chrome://tracing or ui.perfetto.dev)\n",
                r.trace_path.c_str());
  if (!r.metrics_path.empty())
    std::printf("metrics: %s\n", r.metrics_path.c_str());
}

}  // namespace fp::exp
