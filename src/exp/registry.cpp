#include "exp/registry.hpp"

#include <algorithm>

namespace fp::exp {

std::size_t edit_distance(const std::string& a, const std::string& b) {
  const std::size_t n = a.size(), m = b.size();
  std::vector<std::size_t> row(m + 1);
  for (std::size_t j = 0; j <= m; ++j) row[j] = j;
  for (std::size_t i = 1; i <= n; ++i) {
    std::size_t diag = row[0];
    row[0] = i;
    for (std::size_t j = 1; j <= m; ++j) {
      const std::size_t sub = diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      diag = row[j];
      row[j] = std::min({row[j] + 1, row[j - 1] + 1, sub});
    }
  }
  return row[m];
}

std::string nearest_name(const std::string& name,
                         const std::vector<std::string>& candidates) {
  std::string best;
  std::size_t best_d = SIZE_MAX;
  for (const auto& c : candidates) {
    const std::size_t d = edit_distance(name, c);
    if (d < best_d) {
      best_d = d;
      best = c;
    }
  }
  const std::size_t cutoff = std::max<std::size_t>(2, name.size() / 3);
  return best_d <= cutoff ? best : std::string();
}

std::string unknown_name_message(const std::string& what,
                                 const std::string& name,
                                 const std::vector<std::string>& candidates) {
  std::string msg = "unknown " + what + " '" + name + "'";
  const std::string near = nearest_name(name, candidates);
  if (!near.empty()) msg += "; did you mean '" + near + "'?";
  msg += " valid " + what + "s:";
  for (const auto& c : candidates) msg += " " + c;
  return msg;
}

}  // namespace fp::exp
