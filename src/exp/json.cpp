#include "exp/json.hpp"

#include <cctype>

#include "exp/registry.hpp"

namespace fp::exp {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text, bool allow_arrays = false)
      : s_(text), allow_arrays_(allow_arrays) {}

  FlatJson parse() {
    FlatJson out;
    skip_ws();
    object(/*prefix=*/"", out);
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters after top-level object");
    return out;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw SpecError("spec JSON error at offset " + std::to_string(i_) + ": " +
                    why);
  }

  void skip_ws() {
    while (i_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[i_])))
      ++i_;
  }

  char peek() const { return i_ < s_.size() ? s_[i_] : '\0'; }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  std::string string_literal() {
    expect('"');
    std::string out;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      char c = s_[i_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("unterminated escape");
        c = s_[i_++];
        switch (c) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          default: fail(std::string("unsupported escape '\\") + c + "'");
        }
      } else {
        out += c;
      }
    }
  }

  std::string scalar_literal() {
    const std::size_t start = i_;
    while (i_ < s_.size()) {
      const char c = s_[i_];
      if (std::isalnum(static_cast<unsigned char>(c)) || c == '.' ||
          c == '+' || c == '-' || c == '_') {
        ++i_;
      } else {
        break;
      }
    }
    if (i_ == start) fail("expected a value");
    const std::string tok = s_.substr(start, i_ - start);
    if (tok == "null") fail("null is not a valid spec value");
    return tok;
  }

  void value(const std::string& key, FlatJson& out) {
    skip_ws();
    const char c = peek();
    if (c == '{') {
      object(key + ".", out);
    } else if (c == '[') {
      if (!allow_arrays_)
        fail("arrays are not supported in spec files (key '" + key + "')");
      array(key, out);
    } else if (c == '"') {
      out.emplace_back(key, string_literal());
    } else {
      out.emplace_back(key, scalar_literal());
    }
  }

  /// Flattens [a, b, ...] as key.0, key.1, ... (relaxed mode only).
  void array(const std::string& key, FlatJson& out) {
    skip_ws();
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++i_;
      return;
    }
    for (std::size_t idx = 0;; ++idx) {
      value(key + "." + std::to_string(idx), out);
      skip_ws();
      if (peek() == ',') {
        ++i_;
        skip_ws();
        continue;
      }
      expect(']');
      return;
    }
  }

  void object(const std::string& prefix, FlatJson& out) {
    skip_ws();
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++i_;
      return;
    }
    while (true) {
      skip_ws();
      const std::string key = string_literal();
      skip_ws();
      expect(':');
      value(prefix + key, out);
      skip_ws();
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return;
    }
  }

  const std::string& s_;
  bool allow_arrays_ = false;
  std::size_t i_ = 0;
};

}  // namespace

FlatJson parse_json_object(const std::string& text) {
  return Parser(text).parse();
}

FlatJson parse_json_relaxed(const std::string& text) {
  return Parser(text, /*allow_arrays=*/true).parse();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace fp::exp
