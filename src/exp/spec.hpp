// ExperimentSpec: the declarative description of one federated experiment
// (DESIGN.md §7).
//
// Every knob of a run — method, workload, model, every fed::FlConfig field
// including the nested async.*/comm.*/mem.* subsystem configs, the
// environment (fleet binding, public split), evaluation, and the per-method
// hyperparameters — is addressable by a dotted key ("fl.num_clients",
// "comm.codec", "fp.rmin_frac", ...). Specs are built from defaults that
// reproduce the historical bench scenarios exactly, then overridden by a
// JSON config file and/or key=value CLI arguments, resolved (auto fields
// replaced by their concrete derived values), and serialized back to JSON so
// any run can be reproduced from its dumped spec alone.
//
// Key lookup is strict: an unknown key throws SpecError with a nearest-key
// suggestion; so do unknown enum/registry values.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/registry.hpp"
#include "fed/config.hpp"

namespace fp::exp {

/// FP_BENCH_FAST=1 shrinks every training run ~4x (CI smoke). Shared by the
/// bench binaries and the spec resolution of auto-sized fields.
bool fast_mode();
std::int64_t scaled(std::int64_t n);
std::int64_t scaled(std::int64_t n, bool fast);

/// The bench-scenario FlConfig defaults (what bench_common::make_setup has
/// always produced). Sentinels mark fields resolved later: local_iters = -1,
/// rounds = 0, seed = 0, mem.device_mem_scale = 0.
fed::FlConfig default_fl_config();

struct ExperimentSpec {
  // what to run
  std::string method = "FedProphet";
  std::string workload = "cifar";        ///< workload registry key
  std::string heterogeneity = "balanced";
  std::string model = "auto";            ///< model registry key; auto = workload default
  std::int64_t model_image = 16;
  std::int64_t model_width = 6;
  std::int64_t model_classes = 0;        ///< 0 = workload default
  std::int64_t train_size = 0;           ///< 0 = workload default (FAST-scaled)
  std::int64_t test_size = 320;

  // the full federated config, including async.*/comm.*/mem.*
  fed::FlConfig fl = default_fl_config();

  // environment (fed::FedEnvConfig surface)
  bool with_public_set = true;
  double public_fraction = 0.1;
  bool persistent_devices = false;
  // scale plane (DESIGN.md §9): plan-backed pools + residency knobs
  bool env_lazy_clients = false;
  bool env_lazy_materialize = false;
  std::int64_t env_shard_size = 0;       ///< 0 = train_size / num_clients
  std::int64_t env_client_cache = 0;     ///< 0 = ClientPool default (256)
  std::int64_t env_iter_cache = 0;       ///< 0 = unbounded (legacy)
  /// Maps paper-scale device memory onto the trainable model's byte scale;
  /// 0 = auto (trainable full-training mem / paper-model full-training mem).
  double device_mem_scale = 0.0;

  // distributed runtime (DESIGN.md §10)
  std::string net_role = "off";     ///< off (single-process) | root | worker
  std::string net_host = "127.0.0.1";  ///< root endpoint host
  std::int64_t net_port = 7171;     ///< root endpoint port (0 = ephemeral)
  std::int64_t net_workers = 2;     ///< workers the root waits for
  std::string net_codec = "auto";   ///< auto = ship comm.codec's encoding;
                                    ///< identity = dense fp32 uploads
  double net_timeout_s = 120.0;     ///< root-side per-frame receive timeout
  double net_retry_s = 10.0;        ///< worker connect retry window (seconds)

  // serving plane (DESIGN.md §12): fp_serve / fp_run --api
  std::string serve_host = "127.0.0.1";  ///< bind address
  std::int64_t serve_port = 8080;        ///< bind port (0 = ephemeral, tests)
  std::int64_t serve_max_batch = 32;     ///< samples per batched forward
  double serve_max_delay_ms = 2.0;       ///< micro-batch coalescing window
  std::int64_t serve_queue_cap = 256;    ///< pending-sample bound (503 above)
  std::int64_t serve_max_conns = 64;     ///< concurrent connection bound

  // observability (src/obs/, DESIGN.md §11)
  bool obs_trace = false;        ///< collect spans, write a Chrome trace JSON
  std::string obs_trace_path;    ///< "" = <FP_BENCH_OUT>/<name>.trace.json
  bool obs_metrics = false;      ///< export the counter registry JSON
  std::int64_t obs_sample_kernels = 16;  ///< trace 1 in N kernel entry calls

  // evaluation (attack::RobustEvalConfig surface + snapshot cadence)
  int eval_pgd_steps = 10;
  int eval_aa_steps = 12;
  int eval_aa_restarts = 1;
  std::int64_t eval_max_samples = 0;     ///< 0 = auto (scaled 128); -1 = all
  std::int64_t eval_every = 0;           ///< history snapshot cadence (0 = end only)

  // FedProphet
  double fp_rmin_frac = 0.2;             ///< Rmin as a fraction of full-model mem
  std::int64_t fp_rmin_bytes = 0;        ///< explicit Rmin override (0 = use frac)
  std::int64_t fp_rounds_per_module = 0; ///< 0 = auto (scaled(5) + 1)
  std::int64_t fp_eval_every = 4;
  std::int64_t fp_patience_evals = 0;
  std::int64_t fp_val_samples = 96;
  float fp_mu = 1e-5f;
  float fp_alpha_init = 0.3f;
  float fp_delta_alpha = 0.1f;
  float fp_gamma = 0.05f;
  bool fp_apa = true;
  bool fp_dma = true;

  // knowledge-distillation baselines
  int distill_iters = 8;
  std::int64_t distill_batch = 32;
  float distill_lr = 0.005f;

  // partial-training baselines
  double partial_min_ratio = 0.25;

  /// Adversarial training on clients (jFAT / distillation / partial
  /// baselines; false turns jFAT into plain FedAvg).
  bool adversarial = true;

  /// Budget as a fraction of the planner's full-training peak; > 0 fills
  /// mem.budget_override_bytes at build time when that is unset.
  double mem_budget_frac = 0.0;
};

enum class KeyKind { kInt, kFloat, kBool, kString };

struct KeyDef {
  std::string key;                       ///< dotted name
  KeyKind kind = KeyKind::kString;
  std::string doc;
  std::function<std::string(const ExperimentSpec&)> get;
  /// Parses and stores `value`; throws SpecError on a bad value.
  std::function<void(ExperimentSpec&, const std::string&)> set;
};

/// The full dotted-key table, in canonical (serialization) order.
const std::vector<KeyDef>& spec_schema();

/// Throws SpecError with a nearest-key suggestion for unknown keys.
const KeyDef& find_key(const std::string& key);

void set_key(ExperimentSpec& spec, const std::string& key,
             const std::string& value);
std::string get_key(const ExperimentSpec& spec, const std::string& key);

/// Applies one "key=value" CLI token.
void apply_override(ExperimentSpec& spec, const std::string& key_eq_value);

/// Serializes every schema key as nested JSON (the reproduction artifact).
std::string spec_to_json(const ExperimentSpec& spec);

/// Applies a JSON config (nested or dotted keys) onto `spec`.
void apply_json(ExperimentSpec& spec, const std::string& text);

/// Defaults + JSON config in one step.
ExperimentSpec spec_from_json(const std::string& text);

/// Specs are equal iff every schema key serializes identically.
bool specs_equal(const ExperimentSpec& a, const ExperimentSpec& b);

}  // namespace fp::exp
