#include "core/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/trace.hpp"

namespace fp::core {

namespace {

thread_local bool tls_in_region = false;

class ThreadPool {
 public:
  explicit ThreadPool(int threads) {
    const int extra = std::max(0, threads - 1);  // the caller is thread 0
    workers_.reserve(static_cast<std::size_t>(extra));
    for (int i = 0; i < extra; ++i)
      workers_.emplace_back([this, i] {
        const std::string name = "fp-pool-" + std::to_string(i + 1);
        obs::set_thread_name(name.c_str());
        worker_loop();
      });
  }

  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_job_.notify_all();
    for (auto& w : workers_) w.join();
  }

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs task(i) for every i in [0, n); blocks until all complete.
  void run(std::int64_t n, const std::function<void(std::int64_t)>& task) {
    if (n <= 0) return;
    if (workers_.empty() || n == 1 || tls_in_region) {
      const bool saved = tls_in_region;
      tls_in_region = true;
      for (std::int64_t i = 0; i < n; ++i) task(i);
      tls_in_region = saved;
      return;
    }
    // Each run owns its Job: a straggler from a previous job drains from its
    // own (shared_ptr-kept) counters and can never consume indices or
    // completions of a newer job.
    auto job = std::make_shared<Job>();
    job->n = n;
    job->fn = &task;
    {
      std::lock_guard<std::mutex> lock(mu_);
      job_ = job;
      ++generation_;
    }
    cv_job_.notify_all();
    drain(*job);  // the caller is a worker too
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_done_.wait(lock, [&] { return job->completed.load() == n; });
      if (job_ == job) job_.reset();
    }
  }

 private:
  struct Job {
    std::int64_t n = 0;
    const std::function<void(std::int64_t)>* fn = nullptr;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> completed{0};
  };

  /// Pulls indices until the job is exhausted. `fn` stays valid for every
  /// claimed index i < n because run() cannot return before all of them
  /// completed.
  void drain(Job& job) {
    const bool saved = tls_in_region;
    tls_in_region = true;
    for (;;) {
      const std::int64_t i = job.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= job.n) break;
      (*job.fn)(i);
      if (job.completed.fetch_add(1, std::memory_order_acq_rel) + 1 == job.n) {
        std::lock_guard<std::mutex> lock(mu_);
        cv_done_.notify_all();
      }
    }
    tls_in_region = saved;
  }

  void worker_loop() {
    std::uint64_t seen = 0;
    for (;;) {
      std::shared_ptr<Job> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_job_.wait(lock, [&] { return stop_ || generation_ != seen; });
        if (stop_) return;
        seen = generation_;
        job = job_;
      }
      if (job) drain(*job);
    }
  }

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable cv_job_, cv_done_;
  std::uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;
  bool stop_ = false;
};

int default_num_threads() {
  if (const char* env = std::getenv("FP_NUM_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<int>(std::min<long>(v, 256));
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min(hw, 256u));
}

std::mutex pool_mu;
std::unique_ptr<ThreadPool> pool_instance;

ThreadPool& pool() {
  std::lock_guard<std::mutex> lock(pool_mu);
  if (!pool_instance)
    pool_instance = std::make_unique<ThreadPool>(default_num_threads());
  return *pool_instance;
}

}  // namespace

int num_threads() { return pool().size(); }

void set_num_threads(int n) {
  n = std::max(1, n);
  std::lock_guard<std::mutex> lock(pool_mu);
  pool_instance = std::make_unique<ThreadPool>(n);
}

bool in_parallel_region() { return tls_in_region; }

void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body) {
  if (begin >= end) return;
  grain = std::max<std::int64_t>(1, grain);
  const std::int64_t span = end - begin;
  ThreadPool& p = pool();
  if (span <= grain || p.size() == 1 || tls_in_region) {
    const bool saved = tls_in_region;
    tls_in_region = true;
    body(begin, end);
    tls_in_region = saved;
    return;
  }
  // Chunk count balances load (a few chunks per thread) without shrinking
  // below the grain. Chunk boundaries are a pure function of (span, grain,
  // chunk count), so the partition is reproducible; each output element is
  // computed entirely within one chunk, so results do not depend on which
  // thread runs which chunk.
  const std::int64_t max_chunks = (span + grain - 1) / grain;
  const std::int64_t chunks =
      std::min<std::int64_t>(max_chunks, static_cast<std::int64_t>(p.size()) * 4);
  const std::int64_t chunk_span = (span + chunks - 1) / chunks;
  p.run(chunks, [&](std::int64_t c) {
    const std::int64_t b = begin + c * chunk_span;
    const std::int64_t e = std::min(end, b + chunk_span);
    if (b < e) body(b, e);
  });
}

void parallel_tasks(std::int64_t n,
                    const std::function<void(std::int64_t)>& task) {
  pool().run(n, task);
}

}  // namespace fp::core
