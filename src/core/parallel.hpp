// Shared worker pool for the whole library.
//
// One process-wide ThreadPool serves every parallel region: GEMM row blocks,
// batched im2col/col2im, bias folds, and per-client local training in the
// federated round loops. The pool size defaults to the hardware concurrency
// and can be overridden with the FP_NUM_THREADS environment variable (or
// set_num_threads() from code, e.g. in tests).
//
// Determinism contract: parallel_for only partitions *independent* work.
// Every output element must be produced by exactly one chunk with a fixed
// internal iteration order, so results are bit-identical for any thread
// count. Reductions that would depend on the partition (e.g. summing partial
// results chunk-by-chunk) are not expressible through this API on purpose.
//
// Nested parallel regions execute inline on the calling worker: a client
// training task that reaches a GEMM runs that GEMM serially on its own
// thread instead of deadlocking or oversubscribing the pool.
#pragma once

#include <cstdint>
#include <functional>

namespace fp::core {

/// Number of threads the global pool uses (>= 1, includes the caller).
int num_threads();

/// Resizes the global pool. Intended for startup / tests; not thread-safe
/// against concurrently running parallel regions.
void set_num_threads(int n);

/// True when the current thread is a pool worker executing a task. Used to
/// run nested parallel regions inline.
bool in_parallel_region();

/// Calls body(chunk_begin, chunk_end) over a partition of [begin, end).
/// Runs inline when the range is small (<= grain), the pool has one thread,
/// or the caller is already inside a parallel region.
void parallel_for(std::int64_t begin, std::int64_t end, std::int64_t grain,
                  const std::function<void(std::int64_t, std::int64_t)>& body);

/// Convenience: one task per index i in [0, n), dynamically scheduled.
/// Same nesting/determinism rules as parallel_for.
void parallel_tasks(std::int64_t n,
                    const std::function<void(std::int64_t)>& task);

}  // namespace fp::core
