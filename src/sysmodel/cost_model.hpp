// Training cost model: memory requirement (ZeRO-style accounting after
// Rajbhandari et al. 2020, as adopted by the paper in §6.1), forward/backward
// FLOPs, and the memory-swapping latency model that produces the paper's
// Figure 2 / Figure 7 data-access overheads.
#pragma once

#include <cstdint>

#include "sysmodel/layer_spec.hpp"

namespace fp::sys {

inline constexpr double kBytesPerFloat = 4.0;

struct TrainCostConfig {
  std::int64_t batch_size = 64;
  /// PGD steps of the inner maximization; 0 means standard training.
  int pgd_steps = 10;
  /// Backward pass costs roughly 2x the forward MACs (grad-input + grad-weight).
  double backward_factor = 2.0;
  /// Fraction of peak device FLOPS achieved (pool TFLOPS are effective).
  double utilization = 1.0;
  /// Per-traversal driver/software overhead of a memory-swapping pass (s).
  double swap_driver_overhead_s = 0.050;
  /// Each swapped traversal streams the excess working set out and back in.
  double swap_traffic_factor = 2.0;
  /// Scales the module memory requirement (sub-model methods train a
  /// shrunken network: a width-r slice needs roughly r^2 the activations).
  double mem_scale = 1.0;
  /// Scales the compute FLOPs (width-r slice: about r^2 the MACs).
  double flops_scale = 1.0;

  // ---- measured-plane overrides (mem subsystem, DESIGN.md §6) --------------
  /// When > 0, replaces the analytic module memory requirement in the swap
  /// decision with the mem planner's peak (same byte scale as the spec this
  /// cost is priced on). 0 = analytic model (historical behaviour).
  std::int64_t planned_mem_bytes = 0;
  /// When > 0, the client trains under min(device availability, budget).
  std::int64_t budget_mem_bytes = 0;
  /// Fraction of the module forward re-executed per traversal by activation
  /// checkpointing — priced as extra forward FLOPs instead of swap traffic.
  double recompute_fwd_frac = 0.0;

  // ---- inference-kernel pricing (tensor subsystem, DESIGN.md §8) -----------
  /// The frozen-prefix forward runs on the int8 GEMM path. Prices the prefix
  /// MACs at 1/int8_speedup plus quant_overhead_frac for quantize-on-pack.
  bool int8_inference = false;
  /// The frozen-prefix 3x3 convolutions run through Winograd F(2x2,3x3).
  bool winograd_inference = false;
  /// Effective MAC-rate multiplier of the int8 kernels over fp32 blocked
  /// (VNNI/maddubs lanes; matches the >= 2x bench_micro acceptance bar).
  double int8_speedup = 2.0;
  /// Effective multiplier of the Winograd transform's 2.25x MAC reduction
  /// after transform overheads.
  double winograd_speedup = 1.8;
  /// Extra fraction of the un-discounted prefix MACs charged for activation
  /// quantization / tile transforms per inference pass.
  double quant_overhead_frac = 0.05;
};

/// Memory (bytes) to train atoms [begin, end) of `model` plus an auxiliary
/// linear head, with SGD+momentum: 3 copies of parameters (weights, grads,
/// momentum) plus all intermediate activations of one batch.
/// `with_aux_head` should be false when the range ends at the real output.
std::int64_t module_train_mem_bytes(const ModelSpec& model, std::size_t begin,
                                    std::size_t end, std::int64_t batch_size,
                                    bool with_aux_head);

/// Forward MACs of one batch through atoms [begin, end), including the
/// auxiliary head if requested.
std::int64_t module_forward_macs(const ModelSpec& model, std::size_t begin,
                                 std::size_t end, std::int64_t batch_size,
                                 bool with_aux_head);

/// Parameter count of the auxiliary linear head attached after atom `end-1`.
std::int64_t aux_head_params(const ModelSpec& model, std::size_t end);

struct StepCost {
  double compute_flops = 0.0;  ///< total MACs of one local iteration
  /// Portion of compute_flops spent on the inference-only frozen-prefix
  /// forward, AFTER the int8/Winograd discount (0 when begin == 0).
  double inference_flops = 0.0;
  double swap_bytes = 0.0;     ///< bytes moved to/from external storage
  int swap_traversals = 0;     ///< number of swapped forward/backward passes
};

/// Cost of ONE local training iteration (one batch) of adversarial training
/// on atoms [begin, end): (pgd_steps) attack forward+backward passes plus the
/// final model-update forward+backward, plus a frozen-prefix forward
/// (atoms [0, begin)) to produce the module input.
/// `avail_mem_bytes` decides whether swapping is needed.
StepCost train_step_cost(const ModelSpec& model, std::size_t begin, std::size_t end,
                         bool with_aux_head, const TrainCostConfig& cfg,
                         std::int64_t avail_mem_bytes);

/// Converts a StepCost into seconds on a device.
/// compute = flops / (peak * utilization); access = bytes / bw + traversals * overhead.
struct StepTime {
  double compute_s = 0.0;
  double access_s = 0.0;
  double total() const { return compute_s + access_s; }
};

StepTime step_time(const StepCost& cost, double peak_flops, double io_bytes_per_s,
                   const TrainCostConfig& cfg);

}  // namespace fp::sys
