#include "sysmodel/layer_spec.hpp"

#include <stdexcept>

namespace fp::sys {

LayerSpec LayerSpec::conv2d(std::int64_t in, std::int64_t out, std::int64_t k,
                            std::int64_t s, std::int64_t p, bool bias) {
  return {LayerKind::kConv2d, in, out, k, s, p, bias};
}

LayerSpec LayerSpec::linear(std::int64_t in, std::int64_t out, bool bias) {
  return {LayerKind::kLinear, in, out, 0, 1, 0, bias};
}

LayerSpec LayerSpec::batchnorm(std::int64_t channels) {
  return {LayerKind::kBatchNorm2d, channels, channels, 0, 1, 0, true};
}

LayerSpec LayerSpec::relu() { return {LayerKind::kReLU, 0, 0, 0, 1, 0, false}; }

LayerSpec LayerSpec::maxpool(std::int64_t k, std::int64_t s) {
  return {LayerKind::kMaxPool2d, 0, 0, k, s < 0 ? k : s, 0, false};
}

LayerSpec LayerSpec::global_avg_pool() {
  return {LayerKind::kGlobalAvgPool, 0, 0, 0, 1, 0, false};
}

LayerSpec LayerSpec::flatten() { return {LayerKind::kFlatten, 0, 0, 0, 1, 0, false}; }

TensorShape out_shape(const LayerSpec& spec, const TensorShape& in) {
  switch (spec.kind) {
    case LayerKind::kConv2d: {
      if (in.c != spec.in_channels)
        throw std::invalid_argument("out_shape: conv channel mismatch");
      const std::int64_t oh = (in.h + 2 * spec.padding - spec.kernel) / spec.stride + 1;
      const std::int64_t ow = (in.w + 2 * spec.padding - spec.kernel) / spec.stride + 1;
      return {spec.out_channels, oh, ow};
    }
    case LayerKind::kLinear:
      if (in.numel() != spec.in_channels)
        throw std::invalid_argument("out_shape: linear feature mismatch");
      return {spec.out_channels, 1, 1};
    case LayerKind::kBatchNorm2d:
    case LayerKind::kReLU:
      return in;
    case LayerKind::kMaxPool2d: {
      const std::int64_t oh = (in.h - spec.kernel) / spec.stride + 1;
      const std::int64_t ow = (in.w - spec.kernel) / spec.stride + 1;
      return {in.c, oh, ow};
    }
    case LayerKind::kGlobalAvgPool:
      return {in.c, 1, 1};
    case LayerKind::kFlatten:
      return {in.numel(), 1, 1};
  }
  throw std::logic_error("out_shape: unknown kind");
}

std::int64_t layer_param_count(const LayerSpec& spec) {
  switch (spec.kind) {
    case LayerKind::kConv2d:
      return spec.out_channels * spec.in_channels * spec.kernel * spec.kernel +
             (spec.bias ? spec.out_channels : 0);
    case LayerKind::kLinear:
      return spec.out_channels * spec.in_channels +
             (spec.bias ? spec.out_channels : 0);
    case LayerKind::kBatchNorm2d:
      return 2 * spec.in_channels;  // gamma + beta
    default:
      return 0;
  }
}

std::int64_t layer_forward_macs(const LayerSpec& spec, const TensorShape& in) {
  const TensorShape out = out_shape(spec, in);
  switch (spec.kind) {
    case LayerKind::kConv2d:
      return out.c * out.h * out.w * spec.in_channels * spec.kernel * spec.kernel;
    case LayerKind::kLinear:
      return spec.out_channels * spec.in_channels;
    case LayerKind::kBatchNorm2d:
      return 2 * in.numel();  // normalize + affine
    case LayerKind::kReLU:
    case LayerKind::kMaxPool2d:
    case LayerKind::kGlobalAvgPool:
      return in.numel();
    case LayerKind::kFlatten:
      return 0;
  }
  return 0;
}

TensorShape atom_out_shape(const AtomSpec& atom, const TensorShape& in) {
  TensorShape s = in;
  for (const auto& layer : atom.layers) s = out_shape(layer, s);
  return s;
}

std::int64_t atom_param_count(const AtomSpec& atom) {
  std::int64_t n = 0;
  for (const auto& layer : atom.layers) n += layer_param_count(layer);
  for (const auto& layer : atom.shortcut) n += layer_param_count(layer);
  return n;
}

std::int64_t atom_forward_macs(const AtomSpec& atom, const TensorShape& in) {
  std::int64_t macs = 0;
  TensorShape s = in;
  for (const auto& layer : atom.layers) {
    macs += layer_forward_macs(layer, s);
    s = out_shape(layer, s);
  }
  if (atom.residual) {
    TensorShape sc = in;
    for (const auto& layer : atom.shortcut) {
      macs += layer_forward_macs(layer, sc);
      sc = out_shape(layer, sc);
    }
    macs += s.numel();  // the elementwise sum + ReLU
  }
  return macs;
}

std::int64_t atom_activation_numel(const AtomSpec& atom, const TensorShape& in) {
  // ReLU is applied in place (its backward needs only the output sign), so
  // it stores no extra activation — this convention reproduces the paper's
  // Table 8 per-module numbers (e.g. ResNet34 Conv 1 = 148.6 MB at B=32).
  std::int64_t acts = 0;
  TensorShape s = in;
  for (const auto& layer : atom.layers) {
    s = out_shape(layer, s);
    if (layer.kind != LayerKind::kReLU) acts += s.numel();
  }
  if (atom.residual) {
    TensorShape sc = in;
    for (const auto& layer : atom.shortcut) {
      sc = out_shape(layer, sc);
      acts += sc.numel();
    }
    // The residual sum and trailing ReLU reuse the main-path buffer.
  }
  return acts;
}

TensorShape ModelSpec::shape_before(std::size_t i) const {
  TensorShape s = input;
  for (std::size_t a = 0; a < i && a < atoms.size(); ++a) s = atom_out_shape(atoms[a], s);
  return s;
}

std::int64_t ModelSpec::total_params() const {
  std::int64_t n = 0;
  for (const auto& atom : atoms) n += atom_param_count(atom);
  return n;
}

std::int64_t ModelSpec::total_forward_macs() const {
  std::int64_t macs = 0;
  TensorShape s = input;
  for (const auto& atom : atoms) {
    macs += atom_forward_macs(atom, s);
    s = atom_out_shape(atom, s);
  }
  return macs;
}

}  // namespace fp::sys
