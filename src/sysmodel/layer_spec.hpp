// Shape-level description of layers, atoms, and models.
//
// The systems-plane experiments (memory, FLOPs, partition tables, latency)
// never instantiate tensors: they operate on these pure-data specs, which is
// also how the paper's own simulator produces its numbers. The trainable
// models in src/models generate both a spec and a real layer stack from one
// configuration, so the cost model and the training path cannot drift apart.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fp::sys {

/// Per-sample activation shape (channels, height, width). Flattened vectors
/// are represented as {features, 1, 1}.
struct TensorShape {
  std::int64_t c = 0, h = 0, w = 0;
  std::int64_t numel() const { return c * h * w; }
  bool operator==(const TensorShape&) const = default;
};

enum class LayerKind {
  kConv2d,
  kLinear,
  kBatchNorm2d,
  kReLU,
  kMaxPool2d,
  kGlobalAvgPool,
  kFlatten,
};

/// One layer's hyperparameters; which fields are meaningful depends on kind.
struct LayerSpec {
  LayerKind kind = LayerKind::kReLU;
  std::int64_t in_channels = 0;   ///< conv/linear in, bn channels
  std::int64_t out_channels = 0;  ///< conv/linear out
  std::int64_t kernel = 0;        ///< conv/maxpool kernel (square)
  std::int64_t stride = 1;
  std::int64_t padding = 0;
  bool bias = true;

  static LayerSpec conv2d(std::int64_t in, std::int64_t out, std::int64_t k,
                          std::int64_t s, std::int64_t p, bool bias = true);
  static LayerSpec linear(std::int64_t in, std::int64_t out, bool bias = true);
  static LayerSpec batchnorm(std::int64_t channels);
  static LayerSpec relu();
  static LayerSpec maxpool(std::int64_t k, std::int64_t s = -1);
  static LayerSpec global_avg_pool();
  static LayerSpec flatten();
};

/// Output shape of a layer applied to `in`. Throws on incompatible shapes.
TensorShape out_shape(const LayerSpec& spec, const TensorShape& in);

/// Trainable parameter count of one layer (BatchNorm counts gamma+beta).
std::int64_t layer_param_count(const LayerSpec& spec);

/// Multiply-accumulate operations of one forward pass on a single sample.
/// Matches the paper's Table 7/8 convention (MACs, not 2x FLOPs).
std::int64_t layer_forward_macs(const LayerSpec& spec, const TensorShape& in);

/// The indivisible partitioning unit (paper §6.1): a layer for plain
/// networks, a residual block for ResNets. Residual blocks are expressed as
/// the list of their internal layers plus a flag, so the cost model can add
/// the shortcut path.
struct AtomSpec {
  std::string name;
  std::vector<LayerSpec> layers;
  bool residual = false;            ///< wrap `layers` with an identity shortcut
  std::vector<LayerSpec> shortcut;  ///< projection path (may be empty = identity)
};

TensorShape atom_out_shape(const AtomSpec& atom, const TensorShape& in);
std::int64_t atom_param_count(const AtomSpec& atom);
std::int64_t atom_forward_macs(const AtomSpec& atom, const TensorShape& in);
/// Sum of all layer-output activation element counts for one sample,
/// including the shortcut path output (what backward must keep resident).
std::int64_t atom_activation_numel(const AtomSpec& atom, const TensorShape& in);

/// A whole backbone: named atom sequence with an input shape and class count.
struct ModelSpec {
  std::string name;
  TensorShape input;
  std::int64_t num_classes = 0;
  std::vector<AtomSpec> atoms;

  /// Activation shape entering atom `i` (input for i == 0).
  TensorShape shape_before(std::size_t i) const;
  std::int64_t total_params() const;
  std::int64_t total_forward_macs() const;
};

}  // namespace fp::sys
