// Edge-device pools and systematic heterogeneity.
//
// The two pools reproduce the paper's Appendix B.1 (Tables 5 and 6) exactly:
// ten devices each for the CIFAR-10 and Caltech-256 workloads, with peak
// performance (TFLOPS), memory, and storage I/O bandwidth. Real-time
// availability is emulated by degradation factors drawn per round and
// multiplied onto the peaks (co-running applications such as 4k-video
// playback, after Tian et al.): available = peak * d, with d_mem ~ U[0, 0.2]
// and d_perf ~ U[0, 1.0]. This matches Figure 6's scatter ranges (CIFAR pool:
// up to 0.8 GB available of 4 GB devices; Caltech pool: up to ~3.2 GB of
// 16 GB devices) and is what makes whole-model jFAT swap.
//
// Each device also carries a network link (asymmetric up/down bandwidth plus
// one-way latency) for the communication model in src/comm/: the pools pair
// phones and embedded boards with LTE/WiFi-class links and desktops/cloud
// cards with Ethernet-class ones. Link bandwidth gets its own per-round
// degradation factor d_net ~ U[0.3, 1.0] (congestion), drawn from a DEDICATED
// stream so the historical mem/perf draws — and every golden hash priced on
// them — are unchanged.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/rng.hpp"

namespace fp::sys {

struct Device {
  std::string name;
  double peak_tflops = 0.0;
  double mem_gb = 0.0;
  /// STORAGE I/O bandwidth (GB/s) — the disk/flash link the memory-swapping
  /// latency model streams excess working set over. This is NOT the network;
  /// up/downlink bandwidth lives in net_up_mbps / net_down_mbps below.
  double io_gbps = 0.0;
  double net_down_mbps = 0.0;  ///< downlink bandwidth, Mbit/s
  double net_up_mbps = 0.0;    ///< uplink bandwidth, Mbit/s (edge: << down)
  double net_latency_ms = 0.0; ///< one-way link latency, ms

  double peak_flops() const { return peak_tflops * 1e12; }
  std::int64_t mem_bytes() const {
    return static_cast<std::int64_t>(mem_gb * (1ull << 30));
  }
  double io_bytes_per_s() const { return io_gbps * static_cast<double>(1ull << 30); }
  double net_down_bytes_per_s() const { return net_down_mbps * 1e6 / 8.0; }
  double net_up_bytes_per_s() const { return net_up_mbps * 1e6 / 8.0; }
};

/// Paper Table 5: device pool for the CIFAR-10 workload.
const std::vector<Device>& cifar_device_pool();
/// Paper Table 6: device pool for the Caltech-256 workload.
const std::vector<Device>& caltech_device_pool();

enum class Heterogeneity { kBalanced, kUnbalanced };

/// A device drawn for one client in one round, with degraded availability.
struct DeviceInstance {
  std::size_t pool_index = 0;
  std::string name;
  std::int64_t avail_mem_bytes = 0;
  double avail_flops = 0.0;
  double io_bytes_per_s = 0.0;
  double net_down_bytes_per_s = 0.0;  ///< degraded downlink bandwidth
  double net_up_bytes_per_s = 0.0;    ///< degraded uplink bandwidth
  double net_latency_s = 0.0;         ///< one-way link latency
};

/// Samples device instances for the selected clients of one round.
/// kBalanced picks uniformly; kUnbalanced weights devices inversely to
/// memory x performance, emulating a fleet dominated by weak devices.
class DeviceSampler {
 public:
  DeviceSampler(const std::vector<Device>& pool, Heterogeneity heterogeneity,
                std::uint64_t seed);

  DeviceInstance sample();
  std::vector<DeviceInstance> sample_n(std::size_t n);

  /// Draws a pool index from the heterogeneity-weighted distribution using
  /// an external stream (persistent client-device binding at env build).
  std::size_t draw_pool_index(Rng& rng) const;

  /// Samples fresh availability degradation for a FIXED pool device — the
  /// per-round draw for a client with a persistent device binding.
  DeviceInstance sample_bound(std::size_t pool_index);

  const std::vector<Device>& pool() const { return pool_; }

 private:
  DeviceInstance degrade(std::size_t pool_index);

  std::vector<Device> pool_;
  std::vector<double> cumulative_;  ///< sampling CDF
  Rng rng_;
  Rng net_rng_;  ///< dedicated stream for link-congestion draws
};

}  // namespace fp::sys
