#include "sysmodel/cost_model.hpp"

#include <algorithm>
#include <stdexcept>

namespace fp::sys {

namespace {
void check_range(const ModelSpec& model, std::size_t begin, std::size_t end) {
  if (begin > end || end > model.atoms.size())
    throw std::invalid_argument("cost_model: bad atom range");
}
}  // namespace

std::int64_t aux_head_params(const ModelSpec& model, std::size_t end) {
  // The auxiliary output model is a global-average-pool followed by a single
  // fully connected layer (already-flat features skip the pool), so its
  // parameter count is channels x classes + classes regardless of the
  // spatial size — matching the tiny per-module overheads of Tables 7/8.
  const TensorShape out = model.shape_before(end);
  return out.c * model.num_classes + model.num_classes;
}

std::int64_t module_train_mem_bytes(const ModelSpec& model, std::size_t begin,
                                    std::size_t end, std::int64_t batch_size,
                                    bool with_aux_head) {
  check_range(model, begin, end);
  std::int64_t params = 0;
  std::int64_t acts = 0;  // per-sample activation elements kept for backward
  TensorShape s = model.shape_before(begin);
  acts += s.numel();  // the module input itself
  for (std::size_t a = begin; a < end; ++a) {
    params += atom_param_count(model.atoms[a]);
    acts += atom_activation_numel(model.atoms[a], s);
    s = atom_out_shape(model.atoms[a], s);
  }
  if (with_aux_head) {
    params += aux_head_params(model, end);
    acts += s.c + model.num_classes;  // pooled features + logits
  }
  // SGD with momentum: weights + gradients + momentum = 3 copies of params.
  const std::int64_t param_bytes = 3 * params * static_cast<std::int64_t>(kBytesPerFloat);
  const std::int64_t act_bytes =
      acts * batch_size * static_cast<std::int64_t>(kBytesPerFloat);
  return param_bytes + act_bytes;
}

std::int64_t module_forward_macs(const ModelSpec& model, std::size_t begin,
                                 std::size_t end, std::int64_t batch_size,
                                 bool with_aux_head) {
  check_range(model, begin, end);
  std::int64_t macs = 0;
  TensorShape s = model.shape_before(begin);
  for (std::size_t a = begin; a < end; ++a) {
    macs += atom_forward_macs(model.atoms[a], s);
    s = atom_out_shape(model.atoms[a], s);
  }
  if (with_aux_head) macs += s.numel() + s.c * model.num_classes;  // GAP + FC
  return macs * batch_size;
}

StepCost train_step_cost(const ModelSpec& model, std::size_t begin, std::size_t end,
                         bool with_aux_head, const TrainCostConfig& cfg,
                         std::int64_t avail_mem_bytes) {
  check_range(model, begin, end);
  StepCost cost;
  const double fwd =
      static_cast<double>(module_forward_macs(model, begin, end, cfg.batch_size,
                                              with_aux_head));
  const double prefix_fwd = static_cast<double>(
      module_forward_macs(model, 0, begin, cfg.batch_size, false));
  // The frozen-prefix forward is inference-only, so it is the one term the
  // quantized/transformed kernels discount: MACs retire int8_speedup /
  // winograd_speedup times faster, at a quant_overhead_frac surcharge for
  // quantize-on-pack and tile transforms (DESIGN.md §8). Gradient-carrying
  // passes below always price at the fp32 rate.
  double speedup = 1.0;
  if (cfg.int8_inference) speedup *= cfg.int8_speedup;
  if (cfg.winograd_inference) speedup *= cfg.winograd_speedup;
  const double overhead =
      speedup > 1.0 ? cfg.quant_overhead_frac * prefix_fwd : 0.0;
  const double prefix_eff = prefix_fwd / speedup + overhead;
  cost.inference_flops = cfg.flops_scale * prefix_eff;
  // PGD-n: n attack iterations (forward + input-gradient backward) plus the
  // final parameter-update forward + backward. Standard training: 1 + 1.
  // Activation checkpointing adds recompute_fwd_frac of the forward to every
  // traversal (the drop-and-recompute passes of DESIGN.md §6).
  const int passes = cfg.pgd_steps + 1;
  cost.compute_flops =
      cfg.flops_scale *
      (prefix_eff +
       passes * fwd * (1.0 + cfg.backward_factor + cfg.recompute_fwd_frac));

  // Swap decision: the mem planner's measured-plane peak (when provided)
  // against the device availability capped by the enforced budget.
  const auto mem =
      cfg.planned_mem_bytes > 0
          ? cfg.planned_mem_bytes
          : static_cast<std::int64_t>(
                cfg.mem_scale *
                static_cast<double>(module_train_mem_bytes(
                    model, begin, end, cfg.batch_size, with_aux_head)));
  if (cfg.budget_mem_bytes > 0)
    avail_mem_bytes = std::min(avail_mem_bytes, cfg.budget_mem_bytes);
  if (mem > avail_mem_bytes) {
    const double excess = static_cast<double>(mem - avail_mem_bytes);
    // Every forward and every backward traversal must stream the excess
    // working set to external storage and back.
    cost.swap_traversals = 2 * passes;
    cost.swap_bytes = cfg.swap_traffic_factor * excess * cost.swap_traversals;
  }
  return cost;
}

StepTime step_time(const StepCost& cost, double peak_flops, double io_bytes_per_s,
                   const TrainCostConfig& cfg) {
  StepTime t;
  t.compute_s = cost.compute_flops / (peak_flops * cfg.utilization);
  t.access_s = cost.swap_bytes / io_bytes_per_s +
               cost.swap_traversals * cfg.swap_driver_overhead_s;
  return t;
}

}  // namespace fp::sys
