#include "sysmodel/device.hpp"

#include <algorithm>
#include <stdexcept>

namespace fp::sys {

// Link classes (down/up Mbit/s, one-way ms): laptops and phones sit on
// WiFi/LTE-grade links with asymmetric uplinks; desktops, workstations, and
// datacenter accelerator cards get Ethernet-grade symmetry.
const std::vector<Device>& cifar_device_pool() {
  static const std::vector<Device> pool = {
      {"GTX 1650m", 3.1, 4.0, 16.0, 200.0, 50.0, 5.0},
      {"TX2", 1.3, 4.0, 1.5, 80.0, 30.0, 8.0},
      {"KCU1500", 0.2, 2.0, 2.0, 1000.0, 1000.0, 1.0},
      {"VC709", 0.1, 2.0, 1.5, 1000.0, 1000.0, 1.0},
      {"Radeon HD 6870", 2.7, 1.0, 16.0, 300.0, 100.0, 3.0},
      {"Quadro M2200", 2.1, 4.0, 1.5, 150.0, 40.0, 5.0},
      {"A12 GPU", 0.5, 4.0, 1.5, 60.0, 15.0, 25.0},
      {"Geforce 750", 1.1, 1.0, 16.0, 200.0, 80.0, 4.0},
      {"Grid K240q", 2.3, 1.0, 16.0, 500.0, 250.0, 2.0},
      {"Radeon RX 6300m", 3.7, 2.0, 16.0, 250.0, 60.0, 5.0},
  };
  return pool;
}

const std::vector<Device>& caltech_device_pool() {
  static const std::vector<Device> pool = {
      {"Radeon RX 7600", 21.8, 8.0, 16.0, 500.0, 200.0, 3.0},
      {"Radeon RX 6800", 16.2, 16.0, 16.0, 600.0, 250.0, 3.0},
      {"Arc A770", 19.7, 16.0, 16.0, 500.0, 200.0, 3.0},
      {"Quadro P5000", 5.3, 16.0, 1.5, 400.0, 150.0, 2.0},
      {"RTX 3080m", 19.0, 8.0, 16.0, 300.0, 80.0, 5.0},
      {"RTX 4090m", 33.0, 16.0, 16.0, 400.0, 100.0, 4.0},
      {"A17 GPU", 2.1, 8.0, 1.5, 150.0, 40.0, 15.0},
      {"GTX 1650m", 3.1, 4.0, 16.0, 200.0, 50.0, 5.0},
      {"TX2", 1.3, 4.0, 1.5, 80.0, 30.0, 8.0},
      {"P104 101", 8.6, 4.0, 16.0, 300.0, 100.0, 4.0},
  };
  return pool;
}

DeviceSampler::DeviceSampler(const std::vector<Device>& pool,
                             Heterogeneity heterogeneity, std::uint64_t seed)
    : pool_(pool), rng_(seed), net_rng_(seed ^ 0x6e657221ull) {
  if (pool_.empty()) throw std::invalid_argument("DeviceSampler: empty pool");
  std::vector<double> weights(pool_.size(), 1.0);
  if (heterogeneity == Heterogeneity::kUnbalanced) {
    // Weak devices (small memory, low performance) are over-represented.
    for (std::size_t i = 0; i < pool_.size(); ++i)
      weights[i] = 1.0 / (pool_[i].mem_gb * pool_[i].peak_tflops);
  }
  cumulative_.resize(pool_.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    acc += weights[i];
    cumulative_[i] = acc;
  }
  for (auto& c : cumulative_) c /= acc;
}

std::size_t DeviceSampler::draw_pool_index(Rng& rng) const {
  const double u = rng.uniform();
  const auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(
      std::min<std::ptrdiff_t>(it - cumulative_.begin(),
                               static_cast<std::ptrdiff_t>(pool_.size()) - 1));
}

DeviceInstance DeviceSampler::degrade(std::size_t pool_index) {
  const Device& d = pool_[pool_index];
  DeviceInstance inst;
  inst.pool_index = pool_index;
  inst.name = d.name;
  const double d_mem = rng_.uniform(0.0f, 0.2f);
  const double d_perf = rng_.uniform(0.0f, 1.0f);
  inst.avail_mem_bytes =
      static_cast<std::int64_t>(static_cast<double>(d.mem_bytes()) * d_mem);
  inst.avail_flops = d.peak_flops() * d_perf;
  // Guard: a fully degraded device still makes progress (10% of peak).
  inst.avail_flops = std::max(inst.avail_flops, d.peak_flops() * 0.1);
  inst.io_bytes_per_s = d.io_bytes_per_s();
  // Link congestion from the dedicated stream: drawing it from rng_ would
  // shift every historical mem/perf draw and break the engine goldens.
  const double d_net = net_rng_.uniform(0.3f, 1.0f);
  inst.net_down_bytes_per_s = d.net_down_bytes_per_s() * d_net;
  inst.net_up_bytes_per_s = d.net_up_bytes_per_s() * d_net;
  inst.net_latency_s = d.net_latency_ms * 1e-3;
  return inst;
}

DeviceInstance DeviceSampler::sample() { return degrade(draw_pool_index(rng_)); }

DeviceInstance DeviceSampler::sample_bound(std::size_t pool_index) {
  if (pool_index >= pool_.size())
    throw std::invalid_argument("DeviceSampler: pool index out of range");
  return degrade(pool_index);
}

std::vector<DeviceInstance> DeviceSampler::sample_n(std::size_t n) {
  std::vector<DeviceInstance> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(sample());
  return out;
}

}  // namespace fp::sys
