#include "net/http.hpp"

#include <algorithm>
#include <cctype>

namespace fp::net {

namespace {

constexpr std::size_t kMaxHeaderBytes = 64u << 10;

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  return true;
}

std::string_view trim(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t'))
    s.remove_prefix(1);
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r'))
    s.remove_suffix(1);
  return s;
}

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::string_view name) {
  for (const auto& [k, v] : headers)
    if (iequals(k, name)) return &v;
  return nullptr;
}

/// Splits the header block (excluding the start line) into (name, value)
/// pairs. Accepts both \r\n and bare \n line endings.
void parse_header_lines(std::string_view block,
                        std::vector<std::pair<std::string, std::string>>* out) {
  while (!block.empty()) {
    const std::size_t eol = block.find('\n');
    std::string_view line =
        eol == std::string_view::npos ? block : block.substr(0, eol);
    block.remove_prefix(eol == std::string_view::npos ? block.size() : eol + 1);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos)
      throw HttpError("malformed header line: " + std::string(line));
    out->emplace_back(std::string(trim(line.substr(0, colon))),
                      std::string(trim(line.substr(colon + 1))));
  }
}

/// Parses a Content-Length value; throws HttpError on garbage or overflow.
std::size_t parse_content_length(const std::string& v, std::size_t max_body) {
  std::size_t n = 0;
  if (v.empty()) throw HttpError("empty Content-Length");
  for (const char c : v) {
    if (c < '0' || c > '9')
      throw HttpError("bad Content-Length: " + v);
    n = n * 10 + static_cast<std::size_t>(c - '0');
    if (n > max_body)
      throw HttpError("body exceeds limit (" + v + " bytes)");
  }
  return n;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  return find_header(headers, name);
}

const std::string* HttpResponse::header(std::string_view name) const {
  return find_header(headers, name);
}

bool HttpRequest::keep_alive() const {
  if (const std::string* c = header("Connection")) {
    if (iequals(*c, "close")) return false;
    if (iequals(*c, "keep-alive")) return true;
  }
  return version != "HTTP/1.0";
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

HttpConn::HttpConn(TcpConn conn, std::size_t max_body)
    : conn_(std::move(conn)), max_body_(max_body) {}

bool HttpConn::fill(double timeout_s, bool eof_is_error) {
  char chunk[16 << 10];
  const std::ptrdiff_t r = conn_.recv_some(chunk, sizeof(chunk), timeout_s);
  if (r < 0) return false;  // timeout
  if (r == 0) {
    eof_ = true;
    if (eof_is_error)
      throw HttpError("connection to " + conn_.peer() +
                      " closed mid-message");
    return false;
  }
  buf_.append(chunk, static_cast<std::size_t>(r));
  return true;
}

std::size_t HttpConn::header_end() const {
  const std::size_t crlf = buf_.find("\r\n\r\n");
  const std::size_t lf = buf_.find("\n\n");
  if (crlf == std::string::npos) return lf;
  if (lf == std::string::npos) return crlf;
  return std::min(crlf, lf);
}

HttpConn::Read HttpConn::read_request(HttpRequest* out, double timeout_s) {
  // Phase 1: the start line + header block.
  std::size_t hdr_end;
  while ((hdr_end = header_end()) == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes)
      throw HttpError("oversized request header from " + conn_.peer());
    if (eof_) {
      if (buf_.empty()) return Read::kClosed;
      throw HttpError("connection to " + conn_.peer() + " closed mid-message");
    }
    // EOF with a partial message buffered is a framing error; between
    // messages it is a clean close.
    if (!fill(timeout_s, /*eof_is_error=*/!buf_.empty()))
      return eof_ && buf_.empty() ? Read::kClosed : Read::kTimeout;
  }
  const std::size_t sep = buf_[hdr_end] == '\r' ? 4 : 2;
  const std::string head = buf_.substr(0, hdr_end);
  const std::size_t line_end = head.find('\n');
  std::string_view start_line =
      line_end == std::string::npos ? std::string_view(head)
                                    : std::string_view(head).substr(0, line_end);
  if (!start_line.empty() && start_line.back() == '\r')
    start_line.remove_suffix(1);
  const std::size_t sp1 = start_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : start_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos)
    throw HttpError("malformed request line: " + std::string(start_line));

  HttpRequest req;
  req.method = std::string(start_line.substr(0, sp1));
  req.target = std::string(start_line.substr(sp1 + 1, sp2 - sp1 - 1));
  req.version = std::string(trim(start_line.substr(sp2 + 1)));
  if (req.version.rfind("HTTP/", 0) != 0)
    throw HttpError("unsupported protocol: " + req.version);
  if (line_end != std::string::npos)
    parse_header_lines(std::string_view(head).substr(line_end + 1),
                       &req.headers);
  if (req.header("Transfer-Encoding") != nullptr)
    throw HttpError("Transfer-Encoding is not supported (use Content-Length)");

  // Phase 2: the Content-Length body.
  std::size_t body_len = 0;
  if (const std::string* cl = req.header("Content-Length"))
    body_len = parse_content_length(*cl, max_body_);
  const std::size_t total = hdr_end + sep + body_len;
  while (buf_.size() < total) {
    if (eof_)
      throw HttpError("connection to " + conn_.peer() + " closed mid-body");
    if (!fill(timeout_s, /*eof_is_error=*/true)) return Read::kTimeout;
  }
  req.body = buf_.substr(hdr_end + sep, body_len);
  buf_.erase(0, total);
  *out = std::move(req);
  return Read::kRequest;
}

void HttpConn::write_response(
    int status, std::string_view content_type, std::string_view body,
    bool keep_alive,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  std::string msg;
  msg.reserve(body.size() + 256);
  msg += "HTTP/1.1 ";
  msg += std::to_string(status);
  msg += ' ';
  msg += status_reason(status);
  msg += "\r\nContent-Type: ";
  msg += content_type;
  msg += "\r\nContent-Length: ";
  msg += std::to_string(body.size());
  msg += "\r\nConnection: ";
  msg += keep_alive ? "keep-alive" : "close";
  msg += "\r\n";
  for (const auto& [k, v] : extra_headers) {
    msg += k;
    msg += ": ";
    msg += v;
    msg += "\r\n";
  }
  msg += "\r\n";
  msg += body;
  conn_.send_bytes(msg.data(), msg.size());
}

void HttpConn::send_request(std::string_view method, std::string_view target,
                            std::string_view body,
                            std::string_view content_type) {
  std::string msg;
  msg.reserve(body.size() + 256);
  msg += method;
  msg += ' ';
  msg += target;
  msg += " HTTP/1.1\r\nHost: ";
  msg += conn_.peer();
  msg += "\r\n";
  if (!body.empty()) {
    msg += "Content-Type: ";
    msg += content_type;
    msg += "\r\n";
  }
  msg += "Content-Length: ";
  msg += std::to_string(body.size());
  msg += "\r\n\r\n";
  msg += body;
  conn_.send_bytes(msg.data(), msg.size());
}

HttpConn::Read HttpConn::read_response(HttpResponse* out, double timeout_s) {
  std::size_t hdr_end;
  while ((hdr_end = header_end()) == std::string::npos) {
    if (buf_.size() > kMaxHeaderBytes)
      throw HttpError("oversized response header from " + conn_.peer());
    if (eof_) {
      if (buf_.empty()) return Read::kClosed;
      throw HttpError("connection to " + conn_.peer() + " closed mid-message");
    }
    if (!fill(timeout_s, /*eof_is_error=*/!buf_.empty()))
      return eof_ && buf_.empty() ? Read::kClosed : Read::kTimeout;
  }
  const std::size_t sep = buf_[hdr_end] == '\r' ? 4 : 2;
  const std::string head = buf_.substr(0, hdr_end);
  const std::size_t line_end = head.find('\n');
  std::string_view status_line =
      line_end == std::string::npos ? std::string_view(head)
                                    : std::string_view(head).substr(0, line_end);
  if (!status_line.empty() && status_line.back() == '\r')
    status_line.remove_suffix(1);
  const std::size_t sp1 = status_line.find(' ');
  if (sp1 == std::string_view::npos || status_line.rfind("HTTP/", 0) != 0)
    throw HttpError("malformed status line: " + std::string(status_line));

  HttpResponse resp;
  resp.status = 0;
  for (std::size_t i = sp1 + 1;
       i < status_line.size() && status_line[i] >= '0' && status_line[i] <= '9';
       ++i)
    resp.status = resp.status * 10 + (status_line[i] - '0');
  if (resp.status == 0)
    throw HttpError("malformed status line: " + std::string(status_line));
  if (line_end != std::string::npos)
    parse_header_lines(std::string_view(head).substr(line_end + 1),
                       &resp.headers);

  std::size_t body_len = 0;
  if (const std::string* cl = resp.header("Content-Length"))
    body_len = parse_content_length(*cl, max_body_);
  const std::size_t total = hdr_end + sep + body_len;
  while (buf_.size() < total) {
    if (eof_)
      throw HttpError("connection to " + conn_.peer() + " closed mid-body");
    if (!fill(timeout_s, /*eof_is_error=*/true)) return Read::kTimeout;
  }
  resp.body = buf_.substr(hdr_end + sep, body_len);
  buf_.erase(0, total);
  *out = std::move(resp);
  return Read::kRequest;
}

}  // namespace fp::net
