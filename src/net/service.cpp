#include "net/service.hpp"

#include <algorithm>
#include <chrono>
#include <cstdio>

#include "core/parallel.hpp"
#include "net/protocol.hpp"
#include "obs/log.hpp"
#include "obs/trace.hpp"

namespace fp::net {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

NetConfig net_config_of(const exp::ExperimentSpec& spec) {
  NetConfig cfg;
  cfg.host = spec.net_host;
  cfg.port = static_cast<int>(spec.net_port);
  cfg.workers = static_cast<std::size_t>(
      std::max<std::int64_t>(1, spec.net_workers));
  cfg.timeout_s = spec.net_timeout_s;
  cfg.retry_s = spec.net_retry_s;
  return cfg;
}

exp::RunResult serve_root(exp::ExperimentSpec spec,
                          const std::function<void(int)>& on_listening,
                          const std::string& label) {
  spec.net_role = "root";
  if (spec.fl.scheduler != fed::SchedulerKind::kSync)
    throw exp::SpecError(
        "net.role=root requires fl.scheduler=sync: the distributed runtime "
        "dispatches barrier waves, not event-driven single-client refills");

  // Build the setup and construct the method BEFORE accepting workers, so an
  // unsupported spec fails fast instead of stranding connected workers.
  exp::Setup setup = exp::build_setup(std::move(spec));
  const exp::MethodFactory& factory =
      exp::method_registry().resolve(setup.spec.method);
  exp::MethodRun run = factory(setup);
  if (!run.algo->net_capable())
    throw exp::SpecError(
        "method " + setup.spec.method +
        " does not implement the distributed-runtime hooks; net-capable "
        "methods: jFAT (FedAvg via adversarial=false) and FedProphet");

  RootServer server(net_config_of(setup.spec));
  if (on_listening) on_listening(server.port());

  // Workers rebuild the run from the root's FULLY-RESOLVED spec (every auto
  // field concrete, so both ends derive identical models, seeds, and scales)
  // with the role neutralized — a worker setup is a single-process setup.
  exp::ExperimentSpec shipped = setup.spec;
  shipped.net_role = "off";
  server.accept_workers(exp::spec_to_json(shipped));

  setup.env.remote = &server;
  exp::RunResult r;
  try {
    r = exp::run_built(setup, run, label);
  } catch (...) {
    setup.env.remote = nullptr;
    server.shutdown();
    throw;
  }
  setup.env.remote = nullptr;
  r.net_tx_bytes = server.tx_bytes();
  r.net_rx_bytes = server.rx_bytes();
  r.net_workers = server.num_workers();
  server.shutdown();
  return r;
}

void run_worker(const exp::ExperimentSpec& cli_spec) {
  const NetConfig cfg = net_config_of(cli_spec);
  TcpConn conn = TcpConn::connect_retry(cfg.host, cfg.port, cfg.retry_s);
  comm::FrameWriter hello;
  hello.u32(kProtocolVersion);
  conn.send_frame(kMsgHello, hello.take());

  // The worker waits for the root without a timeout everywhere: a dead root
  // surfaces as EOF (recv_frame throws), not as a hang.
  const Frame wf = conn.recv_frame(0.0);
  if (wf.type == kMsgError) {
    comm::FrameReader in(wf.body);
    throw NetError("root rejected worker: " + in.str());
  }
  if (wf.type != kMsgWelcome)
    throw NetError("expected welcome, got frame type " +
                   std::to_string(wf.type));
  comm::FrameReader win(wf.body);
  const std::uint32_t version = win.u32();
  if (version != kProtocolVersion)
    throw NetError("root speaks protocol version " + std::to_string(version) +
                   ", this build speaks " + std::to_string(kProtocolVersion));
  const std::uint32_t rank = win.u32();
  const std::uint32_t num_workers = win.u32();
  exp::ExperimentSpec spec = exp::spec_from_json(win.str());
  spec.net_role = "off";

  exp::Setup setup = exp::build_setup(std::move(spec));
  const exp::MethodFactory& factory =
      exp::method_registry().resolve(setup.spec.method);
  exp::MethodRun run = factory(setup);
  fed::RoundMethod& m = *run.algo;
  if (!m.net_capable()) {
    comm::FrameWriter err;
    err.str("method " + setup.spec.method + " has no distributed hooks");
    conn.send_frame(kMsgError, err.take());
    throw NetError("root shipped a method without distributed hooks: " +
                   setup.spec.method);
  }
  // net.codec=auto ships the comm codec's encoded messages; identity ships
  // dense fp32 blobs. Both decode to the same values root-side.
  m.net_set_worker_mode(setup.spec.net_codec != "identity");

  // Observability follows the root's resolved spec, so both ends agree on
  // whether kMsgTrace frames exist. A worker never writes its own trace
  // file: its spans ship to the root and land in the merged trace.
  obs::ObsSettings obs_settings;
  obs_settings.trace = setup.spec.obs_trace;
  obs_settings.sample_kernels = setup.spec.obs_sample_kernels;
  obs::configure(obs_settings);
  obs::set_thread_name("fp-net-worker");
  obs::logf(obs::LogLevel::kInfo, "[net] worker %u/%u serving %s for %s:%d",
            rank, num_workers, setup.spec.method.c_str(), cfg.host.c_str(),
            cfg.port);

  for (;;) {
    const Frame f = conn.recv_frame(0.0);
    if (f.type == kMsgShutdown) return;
    try {
      if (f.type == kMsgGroup) {
        {
          // Inner scope: the serve_group span closes BEFORE the trace drain
          // below, so each group's frame carries its own serving span.
          FP_TRACE_SCOPE("serve_group", "net");
          comm::FrameReader gin(f.body);
          const std::vector<std::uint8_t> ctx = gin.bytes();
          {
            comm::FrameReader cr(ctx);
            m.net_load_context(cr);
          }
          const std::uint32_t n = gin.u32();
          std::vector<fed::TaskSpec> tasks;
          tasks.reserve(n);
          for (std::uint32_t i = 0; i < n; ++i) tasks.push_back(read_task(gin));
          m.net_begin_group(tasks);
          std::vector<fed::Upload> uploads(n);
          const double t0 = now_s();
          core::parallel_tasks(static_cast<std::int64_t>(n),
                               [&](std::int64_t i) {
                                 uploads[static_cast<std::size_t>(i)] =
                                     run.algo->engine().run_client(
                                         m, tasks[static_cast<std::size_t>(i)]);
                               });
          const double compute_s = now_s() - t0;
          m.net_end_group();
          comm::FrameWriter out;
          out.u32(n);
          out.f64(compute_s);
          for (std::uint32_t i = 0; i < n; ++i) {
            comm::FrameWriter uw;
            m.net_encode_upload(uploads[i], uw);
            out.bytes(uw.data());
          }
          conn.send_frame(kMsgGroupResult, out.take());
        }
        if (obs::tracing_enabled()) {
          comm::FrameWriter tw;
          obs::serialize_new_events(tw);
          conn.send_frame(kMsgTrace, tw.take());
        }
      } else if (f.type == kMsgCustom) {
        comm::FrameReader cin(f.body);
        const std::uint32_t op = cin.u32();
        const std::vector<std::uint8_t> ctx = cin.bytes();
        const std::uint32_t n = cin.u32();
        comm::FrameWriter out;
        out.u32(n);
        for (std::uint32_t i = 0; i < n; ++i) {
          const auto client = static_cast<std::size_t>(cin.u64());
          comm::FrameReader cr(ctx);
          comm::FrameWriter res;
          m.net_custom_op(op, cr, client, res);
          out.bytes(res.data());
        }
        conn.send_frame(kMsgCustomResult, out.take());
      } else {
        throw NetError("unexpected frame type " + std::to_string(f.type) +
                       " from root");
      }
    } catch (const std::exception& e) {
      // Report the failure to the root (it fails the round with this text),
      // then die: a worker with undefined state must not serve more groups.
      try {
        comm::FrameWriter err;
        err.str(e.what());
        conn.send_frame(kMsgError, err.take());
      } catch (const NetError&) {
      }
      throw;
    }
  }
}

}  // namespace fp::net
