// Message vocabulary of the root/worker protocol (DESIGN.md §10).
//
// Every frame body is a comm::FrameWriter stream. The round-trip is strictly
// request/response per worker:
//
//   worker -> root   kMsgHello        {version u32}
//   root -> worker   kMsgWelcome      {version u32, rank u32, workers u32,
//                                      resolved_spec_json str}
//   root -> worker   kMsgGroup        {ctx bytes, ntasks u32, tasks...}
//   worker -> root   kMsgGroupResult  {ntasks u32, compute_s f64,
//                                      per-task upload bytes...}
//   root -> worker   kMsgCustom       {op u32, ctx bytes, n u32, clients u64...}
//   worker -> root   kMsgCustomResult {n u32, per-client result bytes...}
//   worker -> root   kMsgTrace        {obs::serialize_new_events stream}
//   root -> worker   kMsgShutdown     {}
//   either direction kMsgError        {message str}   then the sender closes
//
// kMsgTrace piggybacks on the group round-trip: when the resolved spec has
// obs.trace on, a worker ships its fresh span events right after every
// kMsgGroupResult and the root merges them into its own trace with a
// per-worker process lane (DESIGN.md §11). Both ends decide whether the
// extra frame exists from the SAME resolved spec (the root ships it in
// kMsgWelcome), so framing never desynchronizes.
#pragma once

#include <cstdint>

#include "comm/wire.hpp"
#include "fed/runtime/engine.hpp"

namespace fp::net {

constexpr std::uint32_t kProtocolVersion = 2;

enum MsgType : std::uint32_t {
  kMsgHello = 1,
  kMsgWelcome = 2,
  kMsgGroup = 3,
  kMsgGroupResult = 4,
  kMsgCustom = 5,
  kMsgCustomResult = 6,
  kMsgShutdown = 7,
  kMsgError = 8,
  kMsgTrace = 9,
};

/// TaskSpec serialization: the full dispatch decision including the sampled
/// device instance, so the worker's DMA / budget planning sees exactly what
/// the root's scheduler drew.
void write_task(const fed::TaskSpec& task, comm::FrameWriter& out);
fed::TaskSpec read_task(comm::FrameReader& in);

}  // namespace fp::net
