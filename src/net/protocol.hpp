// Message vocabulary of the root/worker protocol (DESIGN.md §10).
//
// Every frame body is a comm::FrameWriter stream. The round-trip is strictly
// request/response per worker:
//
//   worker -> root   kMsgHello        {version u32}
//   root -> worker   kMsgWelcome      {version u32, rank u32, workers u32,
//                                      resolved_spec_json str}
//   root -> worker   kMsgGroup        {ctx bytes, ntasks u32, tasks...}
//   worker -> root   kMsgGroupResult  {ntasks u32, compute_s f64,
//                                      per-task upload bytes...}
//   root -> worker   kMsgCustom       {op u32, ctx bytes, n u32, clients u64...}
//   worker -> root   kMsgCustomResult {n u32, per-client result bytes...}
//   root -> worker   kMsgShutdown     {}
//   either direction kMsgError        {message str}   then the sender closes
#pragma once

#include <cstdint>

#include "comm/wire.hpp"
#include "fed/runtime/engine.hpp"

namespace fp::net {

constexpr std::uint32_t kProtocolVersion = 1;

enum MsgType : std::uint32_t {
  kMsgHello = 1,
  kMsgWelcome = 2,
  kMsgGroup = 3,
  kMsgGroupResult = 4,
  kMsgCustom = 5,
  kMsgCustomResult = 6,
  kMsgShutdown = 7,
  kMsgError = 8,
};

/// TaskSpec serialization: the full dispatch decision including the sampled
/// device instance, so the worker's DMA / budget planning sees exactly what
/// the root's scheduler drew.
void write_task(const fed::TaskSpec& task, comm::FrameWriter& out);
fed::TaskSpec read_task(comm::FrameReader& in);

}  // namespace fp::net
