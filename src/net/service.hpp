// Distributed run drivers (DESIGN.md §10): the glue between the experiment
// layer and the net transport.
//
// serve_root builds the full setup, validates the spec against what the
// distributed runtime supports (sync scheduler, net-capable method), accepts
// net.workers connections, and drives the normal training loop with the
// RootServer installed as the environment's RemoteDispatcher — so a
// distributed run IS a single-process run whose dispatch groups execute
// elsewhere, and its history hash-matches the single-process one.
//
// run_worker connects (with retry, so workers may start first), receives the
// root's fully-resolved spec, rebuilds the identical setup, and serves
// dispatch groups until the root says shutdown.
#pragma once

#include <functional>

#include "exp/runner.hpp"
#include "net/root.hpp"

namespace fp::net {

/// The spec's net.* keys as a transport config.
NetConfig net_config_of(const exp::ExperimentSpec& spec);

/// Runs spec.method as the distributed root: listen, handshake net.workers
/// workers, train with remote dispatch, evaluate locally, shut workers down.
/// `on_listening` (optional) receives the bound port before the blocking
/// accept — tests use it to launch loopback workers against an ephemeral
/// port. Throws exp::SpecError on an unsupported spec (async scheduler, or a
/// method without net hooks) and NetError on transport failure.
exp::RunResult serve_root(exp::ExperimentSpec spec,
                          const std::function<void(int)>& on_listening = {},
                          const std::string& label = "");

/// Runs the worker loop against spec.net_host:spec.net_port (everything else
/// in `spec` is ignored — the root's resolved spec arrives in the welcome).
/// Returns when the root sends shutdown; throws NetError if the root dies.
void run_worker(const exp::ExperimentSpec& spec);

}  // namespace fp::net
