#include "net/protocol.hpp"

namespace fp::net {

void write_task(const fed::TaskSpec& task, comm::FrameWriter& out) {
  out.i64(task.round);
  out.u64(static_cast<std::uint64_t>(task.slot));
  out.u64(static_cast<std::uint64_t>(task.client));
  out.f32(task.lr);
  out.f32(task.weight);
  out.u8(task.has_device ? 1 : 0);
  out.u64(static_cast<std::uint64_t>(task.device.pool_index));
  out.str(task.device.name);
  out.i64(task.device.avail_mem_bytes);
  out.f64(task.device.avail_flops);
  out.f64(task.device.io_bytes_per_s);
  out.f64(task.device.net_down_bytes_per_s);
  out.f64(task.device.net_up_bytes_per_s);
  out.f64(task.device.net_latency_s);
}

fed::TaskSpec read_task(comm::FrameReader& in) {
  fed::TaskSpec task;
  task.round = in.i64();
  task.slot = static_cast<std::size_t>(in.u64());
  task.client = static_cast<std::size_t>(in.u64());
  task.lr = in.f32();
  task.weight = in.f32();
  task.has_device = in.u8() != 0;
  task.device.pool_index = static_cast<std::size_t>(in.u64());
  task.device.name = in.str();
  task.device.avail_mem_bytes = in.i64();
  task.device.avail_flops = in.f64();
  task.device.io_bytes_per_s = in.f64();
  task.device.net_down_bytes_per_s = in.f64();
  task.device.net_up_bytes_per_s = in.f64();
  task.device.net_latency_s = in.f64();
  return task;
}

}  // namespace fp::net
