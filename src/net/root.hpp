// Root side of the distributed runtime (DESIGN.md §10): accepts worker
// registrations and implements fed::RemoteDispatcher over their connections.
//
// The root owns ALL server state (model, accumulators, schedulers, device
// sampling); workers only ever hold per-round replicas. One dispatch group
// flows as: net_save_context once -> kMsgGroup to every owning worker (all
// sends complete before any receive, so workers compute concurrently) ->
// kMsgGroupResult per worker, decoded through the method's own broadcast
// references in global slot order. A worker that disconnects or exceeds
// net.timeout_s mid-round fails the round with a NetError naming the worker.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fed/runtime/remote.hpp"
#include "net/socket.hpp"

namespace fp::net {

/// Transport knobs of one distributed run (the spec's net.* keys).
struct NetConfig {
  std::string host = "127.0.0.1";
  int port = 7171;          ///< 0 = ephemeral (tests read port() back)
  std::size_t workers = 2;  ///< connections accept_workers waits for
  double timeout_s = 120.0; ///< root-side receive bound per frame (<=0 = none)
  double retry_s = 10.0;    ///< worker-side connect retry window
};

class RootServer final : public fed::RemoteDispatcher {
 public:
  /// Binds and listens immediately; workers may connect before
  /// accept_workers runs (the backlog holds them).
  explicit RootServer(const NetConfig& cfg);

  int port() const { return listener_.port(); }

  /// Handshakes cfg.workers connections: hello (version check) in, welcome
  /// {rank, worker count, resolved spec JSON} out. Throws NetError on a
  /// version mismatch or accept timeout.
  void accept_workers(const std::string& resolved_spec_json);

  /// Best-effort kMsgShutdown to every worker, then closes.
  void shutdown();

  // fed::RemoteDispatcher
  std::size_t num_workers() const override { return conns_.size(); }
  double run_group(fed::RoundMethod& m,
                   const std::vector<fed::TaskSpec>& tasks, std::size_t begin,
                   std::size_t end, std::vector<fed::Upload>& uploads) override;
  std::vector<std::vector<std::uint8_t>> run_custom(
      std::uint32_t op, const std::vector<std::uint8_t>& ctx,
      const std::vector<std::size_t>& clients) override;
  std::int64_t tx_bytes() const override;
  std::int64_t rx_bytes() const override;
  double measured_comm_s() const override { return measured_s_; }

 private:
  /// recv_frame bounded by cfg.timeout_s; kMsgError becomes a NetError and
  /// any transport failure is rethrown naming the worker.
  Frame recv_checked(std::size_t rank, std::uint32_t expect_type);

  NetConfig cfg_;
  TcpListener listener_;
  std::vector<TcpConn> conns_;  ///< index = worker rank
  double measured_s_ = 0.0;
};

}  // namespace fp::net
