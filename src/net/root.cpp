#include "net/root.hpp"

#include <algorithm>
#include <chrono>

#include "net/protocol.hpp"
#include "obs/trace.hpp"

namespace fp::net {

namespace {

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RootServer::RootServer(const NetConfig& cfg)
    : cfg_(cfg), listener_(cfg.host, cfg.port) {}

void RootServer::accept_workers(const std::string& resolved_spec_json) {
  conns_.clear();
  conns_.reserve(cfg_.workers);
  for (std::size_t rank = 0; rank < cfg_.workers; ++rank) {
    TcpConn conn = listener_.accept(cfg_.timeout_s);
    const Frame hello = conn.recv_frame(cfg_.timeout_s);
    if (hello.type != kMsgHello)
      throw NetError("worker " + std::to_string(rank) + " (" + conn.peer() +
                     "): expected hello, got frame type " +
                     std::to_string(hello.type));
    comm::FrameReader in(hello.body);
    const std::uint32_t version = in.u32();
    if (version != kProtocolVersion)
      throw NetError("worker " + std::to_string(rank) + " (" + conn.peer() +
                     "): protocol version " + std::to_string(version) +
                     " != " + std::to_string(kProtocolVersion));
    comm::FrameWriter welcome;
    welcome.u32(kProtocolVersion);
    welcome.u32(static_cast<std::uint32_t>(rank));
    welcome.u32(static_cast<std::uint32_t>(cfg_.workers));
    welcome.str(resolved_spec_json);
    conn.send_frame(kMsgWelcome, welcome.take());
    conns_.push_back(std::move(conn));
  }
}

void RootServer::shutdown() {
  for (auto& conn : conns_) {
    if (!conn.valid()) continue;
    try {
      conn.send_frame(kMsgShutdown, {});
    } catch (const NetError&) {
      // Best-effort: a worker that already died gets no goodbye.
    }
    conn.close();
  }
}

Frame RootServer::recv_checked(std::size_t rank, std::uint32_t expect_type) {
  const std::string who = "worker " + std::to_string(rank) + " (" +
                          conns_[rank].peer() + ")";
  Frame f;
  try {
    f = conns_[rank].recv_frame(cfg_.timeout_s);
  } catch (const NetError& e) {
    throw NetError(who + ": " + e.what() +
                   " — the round cannot complete; restart the worker and the "
                   "run");
  }
  if (f.type == kMsgError) {
    comm::FrameReader in(f.body);
    throw NetError(who + " reported: " + in.str());
  }
  if (f.type != expect_type)
    throw NetError(who + ": expected frame type " +
                   std::to_string(expect_type) + ", got " +
                   std::to_string(f.type));
  return f;
}

double RootServer::run_group(fed::RoundMethod& m,
                             const std::vector<fed::TaskSpec>& tasks,
                             std::size_t begin, std::size_t end,
                             std::vector<fed::Upload>& uploads) {
  const std::size_t W = conns_.size();
  const double t0 = now_s();

  // Serialize the dispatch context once; every owning worker gets the same
  // bytes.
  comm::FrameWriter ctxw;
  m.net_save_context(ctxw);
  const std::vector<std::uint8_t>& ctx = ctxw.data();

  // Sticky ownership: client k -> worker (k % W), global indices ascending
  // per worker so each worker's per-client bookkeeping runs in slot order.
  std::vector<std::vector<std::size_t>> owned(W);
  for (std::size_t i = begin; i < end; ++i)
    owned[tasks[i].client % W].push_back(i);

  for (std::size_t w = 0; w < W; ++w) {
    if (owned[w].empty()) continue;
    comm::FrameWriter out;
    out.bytes(ctx);
    out.u32(static_cast<std::uint32_t>(owned[w].size()));
    for (const std::size_t i : owned[w]) write_task(tasks[i], out);
    try {
      conns_[w].send_frame(kMsgGroup, out.take());
    } catch (const NetError& e) {
      throw NetError("worker " + std::to_string(w) + " (" + conns_[w].peer() +
                     "): " + e.what());
    }
  }

  double max_compute_s = 0.0;
  for (std::size_t w = 0; w < W; ++w) {
    if (owned[w].empty()) continue;
    const Frame f = recv_checked(w, kMsgGroupResult);
    comm::FrameReader in(f.body);
    const std::uint32_t n = in.u32();
    if (n != owned[w].size())
      throw NetError("worker " + std::to_string(w) + ": returned " +
                     std::to_string(n) + " uploads for " +
                     std::to_string(owned[w].size()) + " tasks");
    max_compute_s = std::max(max_compute_s, in.f64());
    for (const std::size_t i : owned[w]) {
      const std::vector<std::uint8_t> frame = in.bytes();
      comm::FrameReader ur(frame);
      uploads[i - begin] = m.net_decode_upload(tasks[i], ur);
    }
  }

  const double measured = std::max(0.0, (now_s() - t0) - max_compute_s);
  measured_s_ += measured;

  // Trace piggyback (DESIGN.md §11): each dispatched worker ships its fresh
  // span events right after its group result; merge them under a per-worker
  // process lane. Received AFTER the transfer-time measurement above so the
  // trace plane never pollutes measured_comm_s.
  if (obs::tracing_enabled()) {
    for (std::size_t w = 0; w < W; ++w) {
      if (owned[w].empty()) continue;
      const Frame tf = recv_checked(w, kMsgTrace);
      comm::FrameReader in(tf.body);
      obs::ingest_remote_events(in, static_cast<std::uint32_t>(w + 1),
                                "worker " + std::to_string(w));
    }
  }
  return measured;
}

std::vector<std::vector<std::uint8_t>> RootServer::run_custom(
    std::uint32_t op, const std::vector<std::uint8_t>& ctx,
    const std::vector<std::size_t>& clients) {
  const std::size_t W = conns_.size();
  std::vector<std::vector<std::size_t>> positions(W);  // into the result
  for (std::size_t p = 0; p < clients.size(); ++p)
    positions[clients[p] % W].push_back(p);

  for (std::size_t w = 0; w < W; ++w) {
    if (positions[w].empty()) continue;
    comm::FrameWriter out;
    out.u32(op);
    out.bytes(ctx);
    out.u32(static_cast<std::uint32_t>(positions[w].size()));
    for (const std::size_t p : positions[w])
      out.u64(static_cast<std::uint64_t>(clients[p]));
    try {
      conns_[w].send_frame(kMsgCustom, out.take());
    } catch (const NetError& e) {
      throw NetError("worker " + std::to_string(w) + " (" + conns_[w].peer() +
                     "): " + e.what());
    }
  }

  std::vector<std::vector<std::uint8_t>> results(clients.size());
  for (std::size_t w = 0; w < W; ++w) {
    if (positions[w].empty()) continue;
    const Frame f = recv_checked(w, kMsgCustomResult);
    comm::FrameReader in(f.body);
    const std::uint32_t n = in.u32();
    if (n != positions[w].size())
      throw NetError("worker " + std::to_string(w) + ": returned " +
                     std::to_string(n) + " custom results for " +
                     std::to_string(positions[w].size()) + " clients");
    for (const std::size_t p : positions[w]) results[p] = in.bytes();
  }
  return results;
}

std::int64_t RootServer::tx_bytes() const {
  std::int64_t total = 0;
  for (const auto& conn : conns_) total += conn.tx_bytes();
  return total;
}

std::int64_t RootServer::rx_bytes() const {
  std::int64_t total = 0;
  for (const auto& conn : conns_) total += conn.rx_bytes();
  return total;
}

}  // namespace fp::net
