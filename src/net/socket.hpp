// Blocking TCP transport for the distributed runtime (DESIGN.md §10).
//
// A connection carries framed messages: a fixed header {magic 'FPN1' u32,
// type u32, body_len u64} followed by body_len raw bytes (a FrameWriter
// stream). send_frame loops over short writes, recv_frame loops over partial
// reads, and both fail loudly (NetError) on EOF, timeout, or a malformed
// header — a half-delivered frame must never be mistaken for a message.
//
// Everything is synchronous: the root talks to workers one group at a time
// and a worker serves one root, so blocking sockets with poll-bounded reads
// are the whole story — no event loop, no worker threads in the transport.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace fp::net {

struct NetError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// One framed message off the wire.
struct Frame {
  std::uint32_t type = 0;
  std::vector<std::uint8_t> body;
};

/// A connected TCP endpoint (root's per-worker handle, or the worker's root
/// handle). Move-only; the fd closes with the object.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd, std::string peer);
  ~TcpConn();
  TcpConn(TcpConn&& other) noexcept;
  TcpConn& operator=(TcpConn&& other) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to host:port, retrying with exponential backoff (50ms..2s)
  /// until `total_s` seconds have elapsed. Lets workers start before the
  /// root is listening. Throws NetError when the window closes.
  static TcpConn connect_retry(const std::string& host, int port,
                               double total_s);

  bool valid() const { return fd_ >= 0; }
  const std::string& peer() const { return peer_; }

  /// Writes header + body, looping over short writes. Throws NetError.
  void send_frame(std::uint32_t type, const std::vector<std::uint8_t>& body);

  /// Reads one frame, looping over partial reads. `timeout_s` bounds the
  /// WHOLE frame (<= 0 waits forever); EOF, expiry, bad magic, or an
  /// oversized body throw NetError.
  Frame recv_frame(double timeout_s);

  // ---- raw byte stream (the HTTP layer, net/http.hpp) ----------------------
  /// Writes `n` unframed bytes, looping over short writes. Throws NetError.
  void send_bytes(const void* data, std::size_t n);

  /// Reads up to `cap` unframed bytes: > 0 = bytes read, 0 = clean EOF,
  /// -1 = nothing arrived within `timeout_s` (<= 0 waits forever). Unlike
  /// recv_frame, a timeout is an ordinary return, not an error — HTTP
  /// handlers poll with short timeouts so a shutdown flag can interrupt an
  /// idle keep-alive connection. Throws NetError on socket failure.
  std::ptrdiff_t recv_some(void* buf, std::size_t cap, double timeout_s);

  void close();

  std::int64_t tx_bytes() const { return tx_bytes_; }
  std::int64_t rx_bytes() const { return rx_bytes_; }

 private:
  void write_all(const void* data, std::size_t n);
  void read_all(void* data, std::size_t n, double deadline_s);

  int fd_ = -1;
  std::string peer_;
  std::int64_t tx_bytes_ = 0;
  std::int64_t rx_bytes_ = 0;
};

/// Listening socket. Port 0 binds an ephemeral port (tests); port() reports
/// the bound one either way.
class TcpListener {
 public:
  TcpListener(const std::string& host, int port);
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  int port() const { return port_; }

  /// Accepts one connection; `timeout_s` <= 0 waits forever. Throws NetError
  /// on expiry or socket failure.
  TcpConn accept(double timeout_s);

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace fp::net
