#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.hpp"

namespace fp::net {

namespace {

constexpr std::uint32_t kMagic = 0x314e5046;  // "FPN1" little-endian
constexpr std::uint64_t kMaxBody = 1ull << 30;  // 1 GiB sanity cap

struct FrameHeader {
  std::uint32_t magic;
  std::uint32_t type;
  std::uint64_t body_len;
};

double now_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Resolves host:port and attempts one TCP connect. Returns -1 on failure
/// (caller retries), the connected fd on success.
int try_connect(const std::string& host, int port) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string service = std::to_string(port);
  if (::getaddrinfo(host.c_str(), service.c_str(), &hints, &res) != 0)
    return -1;
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  return fd;
}

}  // namespace

TcpConn::TcpConn(int fd, std::string peer) : fd_(fd), peer_(std::move(peer)) {
  if (fd_ >= 0) set_nodelay(fd_);
}

TcpConn::~TcpConn() { close(); }

TcpConn::TcpConn(TcpConn&& other) noexcept
    : fd_(other.fd_),
      peer_(std::move(other.peer_)),
      tx_bytes_(other.tx_bytes_),
      rx_bytes_(other.rx_bytes_) {
  other.fd_ = -1;
}

TcpConn& TcpConn::operator=(TcpConn&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    peer_ = std::move(other.peer_);
    tx_bytes_ = other.tx_bytes_;
    rx_bytes_ = other.rx_bytes_;
    other.fd_ = -1;
  }
  return *this;
}

void TcpConn::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpConn TcpConn::connect_retry(const std::string& host, int port,
                               double total_s) {
  const double deadline = now_s() + total_s;
  double backoff_s = 0.05;
  for (;;) {
    const int fd = try_connect(host, port);
    if (fd >= 0) return TcpConn(fd, host + ":" + std::to_string(port));
    if (now_s() + backoff_s > deadline)
      throw NetError("connect to " + host + ":" + std::to_string(port) +
                     " failed after " + std::to_string(total_s) + "s");
    std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
    backoff_s = std::min(backoff_s * 2.0, 2.0);
  }
}

void TcpConn::write_all(const void* data, std::size_t n) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < n) {
    // MSG_NOSIGNAL: a dead peer must surface as EPIPE, not kill the process.
    const ssize_t r = ::send(fd_, p + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("send to " + peer_);
    }
    sent += static_cast<std::size_t>(r);
  }
  tx_bytes_ += static_cast<std::int64_t>(n);
  static obs::Counter& tx = obs::counter("net.tx_bytes");
  tx.add(static_cast<std::int64_t>(n));
}

void TcpConn::send_frame(std::uint32_t type,
                         const std::vector<std::uint8_t>& body) {
  if (fd_ < 0) throw NetError("send on closed connection to " + peer_);
  FrameHeader hdr{kMagic, type, static_cast<std::uint64_t>(body.size())};
  write_all(&hdr, sizeof(hdr));
  if (!body.empty()) write_all(body.data(), body.size());
}

void TcpConn::send_bytes(const void* data, std::size_t n) {
  if (fd_ < 0) throw NetError("send on closed connection to " + peer_);
  if (n > 0) write_all(data, n);
}

std::ptrdiff_t TcpConn::recv_some(void* buf, std::size_t cap, double timeout_s) {
  if (fd_ < 0) throw NetError("recv on closed connection to " + peer_);
  const double deadline = timeout_s > 0.0 ? now_s() + timeout_s : 0.0;
  for (;;) {
    if (deadline > 0.0) {
      const double left = deadline - now_s();
      if (left <= 0.0) return -1;
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::min(left * 1000.0, 3.6e6)) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll on " + peer_);
      }
      if (ready == 0) continue;  // re-check the deadline
    }
    const ssize_t r = ::recv(fd_, buf, cap, 0);
    if (r == 0) return 0;  // clean EOF
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv from " + peer_);
    }
    rx_bytes_ += static_cast<std::int64_t>(r);
    static obs::Counter& rx = obs::counter("net.rx_bytes");
    rx.add(static_cast<std::int64_t>(r));
    return static_cast<std::ptrdiff_t>(r);
  }
}

void TcpConn::read_all(void* data, std::size_t n, double deadline_s) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t got = 0;
  while (got < n) {
    if (deadline_s > 0.0) {
      const double left = deadline_s - now_s();
      if (left <= 0.0)
        throw NetError("recv from " + peer_ + " timed out");
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::min(left * 1000.0, 3.6e6)) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll on " + peer_);
      }
      if (ready == 0) continue;  // re-check the deadline
    }
    const ssize_t r = ::recv(fd_, p + got, n - got, 0);
    if (r == 0)
      throw NetError("connection to " + peer_ + " closed mid-frame");
    if (r < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv from " + peer_);
    }
    got += static_cast<std::size_t>(r);
  }
  rx_bytes_ += static_cast<std::int64_t>(n);
  static obs::Counter& rx = obs::counter("net.rx_bytes");
  rx.add(static_cast<std::int64_t>(n));
}

Frame TcpConn::recv_frame(double timeout_s) {
  if (fd_ < 0) throw NetError("recv on closed connection to " + peer_);
  const double deadline = timeout_s > 0.0 ? now_s() + timeout_s : 0.0;
  FrameHeader hdr{};
  read_all(&hdr, sizeof(hdr), deadline);
  if (hdr.magic != kMagic)
    throw NetError("bad frame magic from " + peer_ +
                   " (protocol mismatch or stream corruption)");
  if (hdr.body_len > kMaxBody)
    throw NetError("oversized frame from " + peer_ + " (" +
                   std::to_string(hdr.body_len) + " bytes)");
  Frame f;
  f.type = hdr.type;
  f.body.resize(static_cast<std::size_t>(hdr.body_len));
  if (hdr.body_len > 0) read_all(f.body.data(), f.body.size(), deadline);
  return f;
}

TcpListener::TcpListener(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("listener socket");
  int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
    addr.sin_addr.s_addr = htonl(INADDR_ANY);
  if (::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd_, 64) != 0) {
    const int saved = errno;
    ::close(fd_);
    fd_ = -1;
    errno = saved;
    throw_errno("listen on " + host + ":" + std::to_string(port));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) == 0)
    port_ = ntohs(bound.sin_port);
}

TcpListener::~TcpListener() {
  if (fd_ >= 0) ::close(fd_);
}

TcpConn TcpListener::accept(double timeout_s) {
  const double deadline = timeout_s > 0.0 ? now_s() + timeout_s : 0.0;
  for (;;) {
    if (deadline > 0.0) {
      const double left = deadline - now_s();
      if (left <= 0.0) throw NetError("accept timed out");
      pollfd pfd{fd_, POLLIN, 0};
      const int ready =
          ::poll(&pfd, 1, static_cast<int>(std::min(left * 1000.0, 3.6e6)) + 1);
      if (ready < 0) {
        if (errno == EINTR) continue;
        throw_errno("poll on listener");
      }
      if (ready == 0) continue;
    }
    sockaddr_in addr{};
    socklen_t len = sizeof(addr);
    const int fd = ::accept(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    if (fd < 0) {
      if (errno == EINTR) continue;
      throw_errno("accept");
    }
    char buf[INET_ADDRSTRLEN] = {0};
    ::inet_ntop(AF_INET, &addr.sin_addr, buf, sizeof(buf));
    return TcpConn(fd, std::string(buf) + ":" +
                           std::to_string(ntohs(addr.sin_port)));
  }
}

}  // namespace fp::net
