// Minimal HTTP/1.1 framing over the blocking TCP transport (DESIGN.md §12).
//
// The serving plane speaks plain HTTP/1.1 with Content-Length bodies — the
// distributed-llama http.cpp shape: one buffered connection object that
// parses requests off a TcpConn and writes responses back, looping over
// partial reads and short writes via the socket layer's raw-byte API. No
// chunked transfer, no TLS, no multiplexing: an inference request is one
// small JSON body, and blocking sockets with poll-bounded reads are enough
// for thousands of requests per second on a keep-alive connection.
//
// The same class carries the client side (send_request/read_response) so the
// load generator and the tests drive a real server through the identical
// framing code the server itself uses.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "net/socket.hpp"

namespace fp::net {

/// Malformed framing (bad request line, oversized header/body, EOF mid
/// message). Servers map it to a 400 and close the connection.
struct HttpError : NetError {
  using NetError::NetError;
};

struct HttpRequest {
  std::string method;   ///< "GET", "POST", ...
  std::string target;   ///< request path, e.g. "/v1/predict"
  std::string version;  ///< "HTTP/1.1"
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// Case-insensitive header lookup; nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// keep-alive unless "Connection: close" (HTTP/1.0 defaults to close).
  bool keep_alive() const;
};

struct HttpResponse {
  int status = 0;
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  const std::string* header(std::string_view name) const;
};

/// The canonical reason phrase for a status code ("OK", "Not Found", ...).
const char* status_reason(int status);

/// One buffered HTTP/1.1 connection over a TcpConn. Owns the socket.
class HttpConn {
 public:
  explicit HttpConn(TcpConn conn, std::size_t max_body = 8u << 20);

  TcpConn& conn() { return conn_; }

  enum class Read {
    kRequest,  ///< a complete request was parsed into *out
    kClosed,   ///< clean EOF between messages (peer hung up)
    kTimeout,  ///< nothing new within timeout_s; call again to keep waiting
  };

  /// Parses the next request. A timeout mid-message keeps the partial bytes
  /// buffered, so callers may poll with short timeouts and a shutdown flag.
  /// Throws HttpError on malformed framing, NetError on socket failure.
  Read read_request(HttpRequest* out, double timeout_s);

  /// Writes a complete response with Content-Length framing. `extra_headers`
  /// are emitted verbatim after the standard ones.
  void write_response(
      int status, std::string_view content_type, std::string_view body,
      bool keep_alive,
      const std::vector<std::pair<std::string, std::string>>& extra_headers = {});

  // ---- client side ----------------------------------------------------------
  /// Writes one request (Content-Length framed; empty body for GET).
  void send_request(std::string_view method, std::string_view target,
                    std::string_view body = {},
                    std::string_view content_type = "application/json");

  /// Parses the next response; Read::kClosed when the server hung up first.
  Read read_response(HttpResponse* out, double timeout_s);

 private:
  /// Appends more bytes from the socket; returns false on timeout, throws
  /// HttpError on EOF when `eof_is_error`, returns false on clean EOF
  /// otherwise (setting eof_).
  bool fill(double timeout_s, bool eof_is_error);
  /// Locates the end of the header block in buf_; npos when incomplete.
  std::size_t header_end() const;

  TcpConn conn_;
  std::size_t max_body_;
  std::string buf_;   ///< bytes received but not yet consumed
  bool eof_ = false;  ///< peer closed its write side
};

}  // namespace fp::net
