// Server-side aggregation.
//
// BlobAverager implements FedAvg (McMahan et al. 2017) over wire blobs.
// PartialAccumulator implements the partial average of Eq. 16: every global
// parameter element is averaged over exactly the clients that trained it —
// whether because of module assignment (FedProphet) or channel slicing
// (HeteroFL / FedDrop / FedRolex). Elements nobody trained keep their
// previous global value.
#pragma once

#include "models/built_model.hpp"
#include "models/slicing.hpp"
#include "nn/serialize.hpp"

namespace fp::fed {

class BlobAverager {
 public:
  void add(const nn::ParamBlob& blob, float weight);
  bool empty() const { return total_weight_ == 0.0f; }
  float total_weight() const { return total_weight_; }
  /// Weighted mean of everything added so far.
  nn::ParamBlob average() const;
  void reset();

 private:
  nn::ParamBlob sum_;
  float total_weight_ = 0.0f;
};

class PartialAccumulator {
 public:
  /// Shapes the accumulators from the global model (one accumulator tensor
  /// per parameter/buffer tensor per atom).
  explicit PartialAccumulator(models::BuiltModel& global);

  void reset();

  /// Adds a full-width trained copy of atom `atom` (same architecture).
  void add_dense_atom(models::BuiltModel& trained, std::size_t atom, float weight);

  /// Same, from the atom's wire blob (save_atom format: parameters then
  /// buffers). Lets parallel client workers upload blobs that the server
  /// accumulates in deterministic client order.
  void add_dense_atom_blob(std::size_t atom, const nn::ParamBlob& blob,
                           float weight);

  /// Adds a channel-sliced trained copy of atom `atom`.
  void add_sliced_atom(const models::SlicePlan& plan, models::BuiltModel& sliced,
                       std::size_t atom, float weight);

  /// Writes averaged values back into the global model; untouched elements
  /// keep their previous value (Eq. 16's S_n membership).
  void finalize_into(models::BuiltModel& global);

 private:
  std::vector<std::vector<Tensor>> acc_;    ///< [atom][tensor]
  std::vector<std::vector<Tensor>> count_;  ///< matching accumulated weights
  const sys::ModelSpec spec_;
};

}  // namespace fp::fed
