// Availability churn: arrival/departure and dropout processes (DESIGN.md §9).
//
// Production cross-device pools churn constantly — devices come online for a
// session, go away, and occasionally die mid-round. At million-client scale
// the process cannot keep per-client state; ChurnProcess answers both
// questions as pure functions of (seed, client, time):
//
//   * online(client, round): a client is online/offline for whole periods of
//     `period_rounds` rounds (a session), re-drawn each period from a
//     stateless uniform — expected online fraction = online_frac.
//   * drops(client, round): a per-dispatch coin for a mid-round dropout.
//
// Both use a DEDICATED stream tag, so enabling churn perturbs no other
// subsystem's draws, and the process is identical across thread counts and
// pool sizes by construction.
#pragma once

#include <cstdint>

#include "fed/config.hpp"
#include "tensor/rng.hpp"

namespace fp::fed {

class ChurnProcess {
 public:
  ChurnProcess(const ChurnConfig& cfg, std::uint64_t seed)
      : cfg_(cfg), seed_(seed) {}

  bool enabled() const { return cfg_.enabled; }
  const ChurnConfig& config() const { return cfg_; }

  /// Is client k online (available for sampling) in round t?
  bool online(std::size_t client, std::int64_t round) const {
    if (!cfg_.enabled) return true;
    const std::int64_t period = cfg_.period_rounds > 0 ? cfg_.period_rounds : 1;
    const auto epoch = static_cast<std::uint64_t>(round / period);
    const std::uint64_t word = Rng::mix_seed(
        Rng::mix_seed(seed_ ^ kOnlineTag, static_cast<std::uint64_t>(client)),
        epoch);
    return Rng::mix_uniform(word) < cfg_.online_frac;
  }

  /// Does client k, dispatched in round t, drop out before uploading?
  bool drops(std::size_t client, std::int64_t round) const {
    if (!cfg_.enabled || cfg_.drop_prob <= 0.0) return false;
    const std::uint64_t word = Rng::mix_seed(
        Rng::mix_seed(seed_ ^ kDropTag, static_cast<std::uint64_t>(client)),
        static_cast<std::uint64_t>(round));
    return Rng::mix_uniform(word) < cfg_.drop_prob;
  }

 private:
  static constexpr std::uint64_t kOnlineTag = 0x0a11ab1eULL;
  static constexpr std::uint64_t kDropTag = 0xd20b0e75ULL;

  ChurnConfig cfg_;
  std::uint64_t seed_ = 0;
};

}  // namespace fp::fed
