#include "fed/budget_exec.hpp"

#include "mem/arena.hpp"
#include "mem/planner.hpp"

namespace fp::fed {

void apply_budgeted_execution(const sys::ModelSpec& spec,
                              std::size_t atom_begin, std::size_t atom_end,
                              std::int64_t batch_size, bool with_aux_head,
                              bool adversarial,
                              std::int64_t aux_params_loaded,
                              models::BuiltModel& local, double pricing_scale,
                              ClientWork* work) {
  // Measured-plane pricing only under an enforced budget: measure-only mode
  // must keep the historical clocks bit-identical.
  const mem::Budget* budget = mem::current_budget();
  if (!budget) return;

  mem::PlanRequest req;
  req.atom_begin = atom_begin;
  req.atom_end = atom_end;
  req.batch_size = batch_size;
  req.with_aux_head = with_aux_head;
  req.adversarial = adversarial;
  req.resident_extra_bytes = mem::replica_resident_bytes(
      spec, atom_begin, atom_end, batch_size, aux_params_loaded);
  const auto exec = mem::plan_client_execution(spec, req);
  if (exec.checkpointed())
    local.set_checkpoint_segments(exec.checkpoint_starts);

  work->planned_mem_bytes =
      mem::to_pricing_scale(exec.planned_exec_peak_bytes, pricing_scale);
  work->recompute_fwd_frac = exec.recompute_fwd_frac;
  work->budget_mem_bytes =
      mem::to_pricing_scale(budget->avail_mem_bytes, pricing_scale);
}

}  // namespace fp::fed
