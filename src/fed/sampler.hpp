// Uniform client sampling without replacement (paper: C = 10 of N = 100).
#pragma once

#include <cstdint>
#include <vector>

#include "tensor/rng.hpp"

namespace fp::fed {

class ClientSampler {
 public:
  ClientSampler(std::int64_t num_clients, std::uint64_t seed)
      : num_clients_(num_clients), rng_(seed) {}

  /// Samples `count` distinct client ids.
  std::vector<std::size_t> sample(std::int64_t count);

 private:
  std::int64_t num_clients_;
  Rng rng_;
};

}  // namespace fp::fed
