// Uniform client sampling without replacement (paper: C = 10 of N = 100).
//
// Two regimes (DESIGN.md §9): the historical full-shuffle for dense draws
// (bit-identical to every PR 2–6 golden), and Floyd's O(count) algorithm when
// the pool dwarfs the draw (count * 8 <= pool) — at a million clients the
// shuffle would be 99.99% wasted work. An optional availability filter
// restricts the draw to clients a ChurnProcess reports online.
#pragma once

#include <cstdint>
#include <vector>

#include "fed/churn.hpp"
#include "tensor/rng.hpp"

namespace fp::fed {

class ClientSampler {
 public:
  ClientSampler(std::int64_t num_clients, std::uint64_t seed)
      : num_clients_(num_clients), rng_(seed) {}

  /// Samples `count` distinct client ids.
  std::vector<std::size_t> sample(std::int64_t count) {
    return sample(count, nullptr, 0);
  }

  /// Samples `count` distinct client ids that are online in `round` under
  /// `churn` (nullptr or disabled = everyone online). May return fewer than
  /// `count` ids when fewer clients are online.
  std::vector<std::size_t> sample(std::int64_t count, const ChurnProcess* churn,
                                  std::int64_t round);

 private:
  std::int64_t num_clients_;
  Rng rng_;
};

}  // namespace fp::fed
