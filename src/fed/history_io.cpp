#include "fed/history_io.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>

namespace fp::fed {

namespace {

std::FILE* open_creating_dirs(const std::string& path) {
  const std::filesystem::path p(path);
  std::error_code ec;
  if (p.has_parent_path())
    std::filesystem::create_directories(p.parent_path(), ec);
  if (ec) return nullptr;
  return std::fopen(path.c_str(), "w");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

}  // namespace

bool write_history_csv(const std::string& path, const History& history) {
  std::FILE* f = open_creating_dirs(path);
  if (!f) return false;
  std::fprintf(f,
               "round,clean_acc,adv_acc,sim_time_s,bytes_up,bytes_down,"
               "peak_mem_bytes,unique_participants,agg_bytes_saved,"
               "measured_comm_s,round_wall_s,extra\n");
  for (const auto& rec : history)
    std::fprintf(
        f, "%lld,%.9g,%.9g,%.9g,%lld,%lld,%lld,%lld,%lld,%.9g,%.9g,%.9g\n",
        static_cast<long long>(rec.round), rec.clean_acc, rec.adv_acc,
        rec.sim_time_s, static_cast<long long>(rec.bytes_up),
        static_cast<long long>(rec.bytes_down),
        static_cast<long long>(rec.peak_mem_bytes),
        static_cast<long long>(rec.unique_participants),
        static_cast<long long>(rec.agg_bytes_saved), rec.measured_comm_s,
        rec.round_wall_s, rec.extra);
  return std::fclose(f) == 0;
}

bool write_history_json(const std::string& path, const std::string& method,
                        const History& history) {
  std::FILE* f = open_creating_dirs(path);
  if (!f) return false;
  std::fprintf(f, "{\"method\": \"%s\", \"history\": [",
               json_escape(method).c_str());
  for (std::size_t i = 0; i < history.size(); ++i) {
    const auto& rec = history[i];
    std::fprintf(f,
                 "%s\n  {\"round\": %lld, \"clean_acc\": %.9g, "
                 "\"adv_acc\": %.9g, \"sim_time_s\": %.9g, "
                 "\"bytes_up\": %lld, \"bytes_down\": %lld, "
                 "\"peak_mem_bytes\": %lld, \"unique_participants\": %lld, "
                 "\"agg_bytes_saved\": %lld, \"measured_comm_s\": %.9g, "
                 "\"round_wall_s\": %.9g, \"extra\": %.9g}",
                 i ? "," : "", static_cast<long long>(rec.round), rec.clean_acc,
                 rec.adv_acc, rec.sim_time_s,
                 static_cast<long long>(rec.bytes_up),
                 static_cast<long long>(rec.bytes_down),
                 static_cast<long long>(rec.peak_mem_bytes),
                 static_cast<long long>(rec.unique_participants),
                 static_cast<long long>(rec.agg_bytes_saved),
                 rec.measured_comm_s, rec.round_wall_s, rec.extra);
  }
  std::fprintf(f, "\n]}\n");
  return std::fclose(f) == 0;
}

std::string sanitize_filename(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' || c == '-';
    if (!ok) c = '_';
  }
  return out;
}

std::string export_history_path(const std::string& method) {
  const char* dir = std::getenv("FP_BENCH_OUT");
  if (!dir || !dir[0]) return {};
  // Bench binaries train the same method several times (per workload, per
  // model size): number repeat runs instead of overwriting the trajectory.
  const std::string base = std::string(dir) + "/" + sanitize_filename(method);
  std::string path = base + ".csv";
  for (int i = 2; std::filesystem::exists(path) && i < 1000; ++i)
    path = base + "-" + std::to_string(i) + ".csv";
  return path;
}

}  // namespace fp::fed
