// Pluggable round schedulers for the federated round engine.
//
// SyncScheduler — today's barrier semantics: every sampled client of round t
// trains from the same broadcast, uploads accumulate in client order, and the
// round's simulated time is the slowest participant's (bit-identical to the
// historical per-method loops for fixed seeds and any FP_NUM_THREADS).
//
// AsyncScheduler — an event-driven replay of the per-client device latencies
// from sysmodel/: K clients are in flight; whenever the earliest completion
// event fires, that client's update lands immediately with a FedAsync-style
// staleness-decayed coefficient alpha / (staleness + 1), and a fresh client
// is dispatched from the new model. Configurable straggler cutoffs discard
// updates slower than a budget, and client dropout vanishes a dispatched
// client with fixed probability. The event queue is ordered by
// (finish_time, dispatch_seq), all randomness comes from dedicated seeded
// streams, and training runs at dispatch time — so a replay is bit-identical
// for a fixed seed and any thread count.
#pragma once

#include "fed/runtime/engine.hpp"

namespace fp::fed {

class RoundScheduler {
 public:
  virtual ~RoundScheduler() = default;
  virtual RoundStats run_round(RoundEngine& eng, RoundMethod& m,
                               std::int64_t t) = 0;
};

class SyncScheduler final : public RoundScheduler {
 public:
  RoundStats run_round(RoundEngine& eng, RoundMethod& m, std::int64_t t) override;
};

class AsyncScheduler final : public RoundScheduler {
 public:
  AsyncScheduler(const AsyncConfig& cfg, std::uint64_t seed);

  /// Processes events until exactly one update has been APPLIED (stragglers
  /// and dropouts are churned through on the way, each refilling its slot).
  RoundStats run_round(RoundEngine& eng, RoundMethod& m, std::int64_t t) override;

  double clock_s() const { return clock_s_; }

 private:
  struct Event {
    double finish_s = 0.0;     ///< virtual time the server hears back
    std::uint64_t seq = 0;     ///< dispatch order, breaks finish-time ties
    TaskSpec task;
    Upload up;
    TimeBreakdown duration;    ///< the client's own train duration
    bool dropped_out = false;  ///< client vanished, never uploads
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.finish_s != b.finish_s) return a.finish_s > b.finish_s;
      return a.seq > b.seq;
    }
  };

  /// Dispatches `count` fresh clients at server round t: snapshot, train (in
  /// parallel within the group), and enqueue their completion events.
  void dispatch(RoundEngine& eng, RoundMethod& m, std::int64_t t,
                std::int64_t count, RoundStats& st);
  Event pop_next();

  AsyncConfig cfg_;
  Rng drop_rng_;
  double clock_s_ = 0.0;
  std::uint64_t seq_ = 0;
  bool filled_ = false;
  std::vector<Event> heap_;  ///< min-heap on (finish_s, seq) via Later
};

}  // namespace fp::fed
