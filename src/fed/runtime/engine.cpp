#include "fed/runtime/engine.hpp"

#include <stdexcept>

#include "fed/runtime/scheduler.hpp"
#include "mem/arena.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fp::fed {

// ---- RoundMethod distributed-runtime hooks ----------------------------------

namespace {
[[noreturn]] void not_net_capable() {
  throw std::logic_error(
      "this method does not implement the distributed runtime's net_* hooks "
      "(net_capable() is false)");
}
}  // namespace

void RoundMethod::net_save_context(comm::FrameWriter&) const {
  not_net_capable();
}
void RoundMethod::net_load_context(comm::FrameReader&) { not_net_capable(); }
void RoundMethod::net_begin_group(const std::vector<TaskSpec>&) {}
void RoundMethod::net_end_group() {}
void RoundMethod::net_encode_upload(const Upload&, comm::FrameWriter&) const {
  not_net_capable();
}
Upload RoundMethod::net_decode_upload(const TaskSpec&, comm::FrameReader&) {
  not_net_capable();
}
void RoundMethod::net_custom_op(std::uint32_t, comm::FrameReader&, std::size_t,
                                comm::FrameWriter&) {
  not_net_capable();
}
void RoundMethod::net_set_worker_mode(bool) {}

void RoundMethod::write_upload_base(const Upload& up, comm::FrameWriter& out) {
  out.u64(up.work.atom_begin);
  out.u64(up.work.atom_end);
  out.u8(up.work.with_aux ? 1 : 0);
  out.i64(up.work.pgd_steps);
  out.f64(up.work.mem_scale);
  out.f64(up.work.flops_scale);
  out.i64(up.work.planned_mem_bytes);
  out.i64(up.work.budget_mem_bytes);
  out.f64(up.work.recompute_fwd_frac);
  out.f32(up.weight);
  out.i64(up.bytes_down);
  out.i64(up.bytes_up);
  out.i64(up.peak_mem_bytes);
  out.u8(up.over_budget ? 1 : 0);
}

void RoundMethod::read_upload_base(Upload& up, comm::FrameReader& in) {
  up.work.atom_begin = in.u64();
  up.work.atom_end = in.u64();
  up.work.with_aux = in.u8() != 0;
  up.work.pgd_steps = static_cast<int>(in.i64());
  up.work.mem_scale = in.f64();
  up.work.flops_scale = in.f64();
  up.work.planned_mem_bytes = in.i64();
  up.work.budget_mem_bytes = in.i64();
  up.work.recompute_fwd_frac = in.f64();
  up.weight = in.f32();
  up.bytes_down = in.i64();
  up.bytes_up = in.i64();
  up.peak_mem_bytes = in.i64();
  up.over_budget = in.u8() != 0;
}

RoundEngine::RoundEngine(FedEnv& env, const FlConfig& cfg)
    : env_(&env),
      cfg_(cfg),
      sampler_(env.num_clients(), cfg.seed + 11),
      channel_(cfg.comm),
      // Dedicated stream (seed + 29): enabling churn perturbs no other draws.
      churn_(cfg.churn, cfg.seed + 29) {
  switch (cfg_.scheduler) {
    case SchedulerKind::kSync:
      scheduler_ = std::make_unique<SyncScheduler>();
      break;
    case SchedulerKind::kAsync:
      scheduler_ = std::make_unique<AsyncScheduler>(cfg_.async, cfg_.seed + 17);
      break;
  }
}

RoundEngine::~RoundEngine() = default;

RoundStats RoundEngine::run_round(RoundMethod& m, std::int64_t t) {
  FP_TRACE_SCOPE_ARG("round", "engine", "round", t);
  const double wall0 = obs::now_s();
  RoundStats st = scheduler_->run_round(*this, m, t);
  st.round_wall_s = obs::now_s() - wall0;
  static obs::Counter& rounds = obs::counter("engine.rounds");
  rounds.add();
  return st;
}

std::int64_t RoundEngine::client_budget_bytes(const TaskSpec& task) const {
  if (!cfg_.mem.enforce_budget) return 0;
  if (cfg_.mem.budget_override_bytes > 0) return cfg_.mem.budget_override_bytes;
  if (!task.has_device) return 0;
  return static_cast<std::int64_t>(
      static_cast<double>(task.device.avail_mem_bytes) *
      cfg_.mem.device_mem_scale);
}

Upload RoundEngine::run_client(RoundMethod& m, const TaskSpec& task) {
  FP_TRACE_SCOPE_ARG("client", "engine", "client", task.client);
  static obs::Counter& trained = obs::counter("engine.clients_trained");
  trained.add();
  if (!cfg_.mem.active()) return m.train_client(task);
  mem::Budget budget{client_budget_bytes(task)};
  mem::ClientMemScope scope(budget, cfg_.mem.checkpointing);
  Upload up = m.train_client(task);
  up.peak_mem_bytes = scope.peak_bytes();
  up.over_budget = budget.avail_mem_bytes > 0 &&
                   up.peak_mem_bytes > budget.avail_mem_bytes;
  return up;
}

std::vector<TaskSpec> RoundEngine::sample_tasks(std::int64_t t,
                                                std::int64_t count) {
  const auto ids =
      sampler_.sample(count, churn_.enabled() ? &churn_ : nullptr, t);
  std::vector<TaskSpec> tasks(ids.size());
  const float lr = lr_at(t);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tasks[i].round = t;
    tasks[i].slot = i;
    tasks[i].client = ids[i];
    tasks[i].lr = lr;
    tasks[i].weight = env_->weight_of(ids[i]);
  }
  if (env_->devices) {
    if (!env_->device_of_client.empty()) {
      // Persistent fleet: client k keeps its device; only the real-time
      // availability degradation is redrawn per dispatch.
      for (auto& task : tasks) {
        task.device =
            env_->devices->sample_bound(env_->device_of_client[task.client]);
        task.has_device = true;
      }
    } else if (env_->stateless_binding) {
      // Persistent fleet at scale: the binding is a pure function of
      // (bind_seed, client) — no O(pool) table.
      for (auto& task : tasks) {
        task.device =
            env_->devices->sample_bound(env_->bound_device_index(task.client));
        task.has_device = true;
      }
    } else {
      const auto devices = env_->devices->sample_n(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        tasks[i].device = devices[i];
        tasks[i].has_device = true;
      }
    }
  }
  return tasks;
}

}  // namespace fp::fed
