#include "fed/runtime/engine.hpp"

#include "fed/runtime/scheduler.hpp"

namespace fp::fed {

RoundEngine::RoundEngine(FedEnv& env, const FlConfig& cfg)
    : env_(&env),
      cfg_(cfg),
      sampler_(env.num_clients(), cfg.seed + 11),
      channel_(cfg.comm) {
  switch (cfg_.scheduler) {
    case SchedulerKind::kSync:
      scheduler_ = std::make_unique<SyncScheduler>();
      break;
    case SchedulerKind::kAsync:
      scheduler_ = std::make_unique<AsyncScheduler>(cfg_.async, cfg_.seed + 17);
      break;
  }
}

RoundEngine::~RoundEngine() = default;

RoundStats RoundEngine::run_round(RoundMethod& m, std::int64_t t) {
  return scheduler_->run_round(*this, m, t);
}

std::vector<TaskSpec> RoundEngine::sample_tasks(std::int64_t t,
                                                std::int64_t count) {
  const auto ids = sampler_.sample(count);
  std::vector<TaskSpec> tasks(ids.size());
  const float lr = lr_at(t);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tasks[i].round = t;
    tasks[i].slot = i;
    tasks[i].client = ids[i];
    tasks[i].lr = lr;
    tasks[i].weight = env_->weights[ids[i]];
  }
  if (env_->devices) {
    if (!env_->device_of_client.empty()) {
      // Persistent fleet: client k keeps its device; only the real-time
      // availability degradation is redrawn per dispatch.
      for (auto& task : tasks) {
        task.device =
            env_->devices->sample_bound(env_->device_of_client[task.client]);
        task.has_device = true;
      }
    } else {
      const auto devices = env_->devices->sample_n(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        tasks[i].device = devices[i];
        tasks[i].has_device = true;
      }
    }
  }
  return tasks;
}

}  // namespace fp::fed
