#include "fed/runtime/engine.hpp"

#include "fed/runtime/scheduler.hpp"
#include "mem/arena.hpp"

namespace fp::fed {

RoundEngine::RoundEngine(FedEnv& env, const FlConfig& cfg)
    : env_(&env),
      cfg_(cfg),
      sampler_(env.num_clients(), cfg.seed + 11),
      channel_(cfg.comm),
      // Dedicated stream (seed + 29): enabling churn perturbs no other draws.
      churn_(cfg.churn, cfg.seed + 29) {
  switch (cfg_.scheduler) {
    case SchedulerKind::kSync:
      scheduler_ = std::make_unique<SyncScheduler>();
      break;
    case SchedulerKind::kAsync:
      scheduler_ = std::make_unique<AsyncScheduler>(cfg_.async, cfg_.seed + 17);
      break;
  }
}

RoundEngine::~RoundEngine() = default;

RoundStats RoundEngine::run_round(RoundMethod& m, std::int64_t t) {
  return scheduler_->run_round(*this, m, t);
}

std::int64_t RoundEngine::client_budget_bytes(const TaskSpec& task) const {
  if (!cfg_.mem.enforce_budget) return 0;
  if (cfg_.mem.budget_override_bytes > 0) return cfg_.mem.budget_override_bytes;
  if (!task.has_device) return 0;
  return static_cast<std::int64_t>(
      static_cast<double>(task.device.avail_mem_bytes) *
      cfg_.mem.device_mem_scale);
}

Upload RoundEngine::run_client(RoundMethod& m, const TaskSpec& task) {
  if (!cfg_.mem.active()) return m.train_client(task);
  mem::Budget budget{client_budget_bytes(task)};
  mem::ClientMemScope scope(budget, cfg_.mem.checkpointing);
  Upload up = m.train_client(task);
  up.peak_mem_bytes = scope.peak_bytes();
  up.over_budget = budget.avail_mem_bytes > 0 &&
                   up.peak_mem_bytes > budget.avail_mem_bytes;
  return up;
}

std::vector<TaskSpec> RoundEngine::sample_tasks(std::int64_t t,
                                                std::int64_t count) {
  const auto ids =
      sampler_.sample(count, churn_.enabled() ? &churn_ : nullptr, t);
  std::vector<TaskSpec> tasks(ids.size());
  const float lr = lr_at(t);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    tasks[i].round = t;
    tasks[i].slot = i;
    tasks[i].client = ids[i];
    tasks[i].lr = lr;
    tasks[i].weight = env_->weight_of(ids[i]);
  }
  if (env_->devices) {
    if (!env_->device_of_client.empty()) {
      // Persistent fleet: client k keeps its device; only the real-time
      // availability degradation is redrawn per dispatch.
      for (auto& task : tasks) {
        task.device =
            env_->devices->sample_bound(env_->device_of_client[task.client]);
        task.has_device = true;
      }
    } else if (env_->stateless_binding) {
      // Persistent fleet at scale: the binding is a pure function of
      // (bind_seed, client) — no O(pool) table.
      for (auto& task : tasks) {
        task.device =
            env_->devices->sample_bound(env_->bound_device_index(task.client));
        task.has_device = true;
      }
    } else {
      const auto devices = env_->devices->sample_n(ids.size());
      for (std::size_t i = 0; i < ids.size(); ++i) {
        tasks[i].device = devices[i];
        tasks[i].has_device = true;
      }
    }
  }
  return tasks;
}

}  // namespace fp::fed
