#include "fed/runtime/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"

namespace fp::fed {

// ---- SyncScheduler ----------------------------------------------------------

RoundStats SyncScheduler::run_round(RoundEngine& eng, RoundMethod& m,
                                    std::int64_t t) {
  auto tasks = eng.sample_tasks(t, eng.config().clients_per_round);
  m.begin_dispatch(tasks);

  // Per-client local training, one pool task per client. Each task touches
  // only its own client's state, so results are bit-identical for any
  // FP_NUM_THREADS (aggregation below runs on this thread in client order).
  std::vector<Upload> uploads(tasks.size());
  core::parallel_tasks(static_cast<std::int64_t>(tasks.size()),
                       [&](std::int64_t ti) {
                         const auto i = static_cast<std::size_t>(ti);
                         uploads[i] = eng.run_client(m, tasks[i]);
                       });

  RoundStats st;
  st.dispatched = st.applied = tasks.size();
  const bool with_devices = !tasks.empty() && tasks.front().has_device;
  // Barrier-round time: the slowest participant's download + train + upload
  // (the comm term is zero unless comm.model_network is on, which keeps the
  // pre-comm goldens bit-identical). Priced before apply_update moves the
  // uploads away.
  TimeBreakdown slowest;
  double slowest_total = -1.0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    st.bytes_down += uploads[i].bytes_down;
    st.bytes_up += uploads[i].bytes_up;
    st.peak_mem_bytes = std::max(st.peak_mem_bytes, uploads[i].peak_mem_bytes);
    st.over_budget += uploads[i].over_budget ? 1 : 0;
    if (with_devices) {
      const TimeBreakdown ti = client_sim_time(
          m.time_spec(eng.env()), tasks[i].device, uploads[i].work,
          eng.env().cost_cfg, eng.config().local_iters,
          eng.channel().network(), uploads[i].bytes_down, uploads[i].bytes_up);
      if (ti.total() > slowest_total) {
        slowest_total = ti.total();
        slowest = ti;
      }
    }
    m.apply_update(tasks[i], std::move(uploads[i]), ApplyMode::kAccumulate,
                   1.0f);
  }
  m.finalize_round(t);

  if (with_devices) st.time = slowest;
  return st;
}

// ---- AsyncScheduler ---------------------------------------------------------

AsyncScheduler::AsyncScheduler(const AsyncConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), drop_rng_(seed) {}

void AsyncScheduler::dispatch(RoundEngine& eng, RoundMethod& m, std::int64_t t,
                              std::int64_t count, RoundStats& st) {
  auto tasks = eng.sample_tasks(t, count);

  // Dropout is decided at dispatch from a dedicated stream, in slot order.
  std::vector<char> dropped(tasks.size(), 0);
  if (cfg_.dropout_prob > 0.0)
    for (auto& d : dropped) d = drop_rng_.uniform() < cfg_.dropout_prob;

  // Training runs at dispatch time against the dispatch snapshot, so a
  // client's computation is a pure function of (seed, dispatch order) no
  // matter when its completion event is consumed. Dropped clients train too
  // (their update is lost in transit): the device-latency model still needs
  // their ClientWork to place the loss event on the virtual clock.
  m.begin_dispatch(tasks);
  std::vector<Upload> uploads(tasks.size());
  core::parallel_tasks(static_cast<std::int64_t>(tasks.size()),
                       [&](std::int64_t ti) {
                         const auto i = static_cast<std::size_t>(ti);
                         uploads[i] = eng.run_client(m, tasks[i]);
                       });

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Event ev;
    ev.seq = seq_++;
    ev.task = tasks[i];
    ev.dropped_out = dropped[i] != 0;
    // The broadcast went out the moment the client was dispatched; its
    // upload bytes are only counted if the server ever hears the event.
    st.bytes_down += uploads[i].bytes_down;
    st.peak_mem_bytes = std::max(st.peak_mem_bytes, uploads[i].peak_mem_bytes);
    st.over_budget += uploads[i].over_budget ? 1 : 0;
    if (tasks[i].has_device)
      ev.duration = client_sim_time(
          m.time_spec(eng.env()), tasks[i].device, uploads[i].work,
          eng.env().cost_cfg, eng.config().local_iters,
          eng.channel().network(), uploads[i].bytes_down,
          uploads[i].bytes_up);
    ev.up = std::move(uploads[i]);
    // The server hears back after the client's own duration, except that a
    // straggler cutoff caps how long it waits on any one dispatch. A dropped
    // client never reports: the server notices at the cutoff if one is set,
    // otherwise at the time the client would have finished.
    double delay = ev.duration.total();
    if (cfg_.straggler_cutoff_s > 0.0)
      delay = ev.dropped_out ? cfg_.straggler_cutoff_s
                             : std::min(delay, cfg_.straggler_cutoff_s);
    ev.finish_s = clock_s_ + delay;
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++st.dispatched;
  }
}

AsyncScheduler::Event AsyncScheduler::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

RoundStats AsyncScheduler::run_round(RoundEngine& eng, RoundMethod& m,
                                     std::int64_t t) {
  RoundStats st;
  const double clock_at_entry = clock_s_;
  if (!filled_) {
    const std::int64_t k = cfg_.concurrency > 0
                               ? cfg_.concurrency
                               : eng.config().clients_per_round;
    dispatch(eng, m, t, std::max<std::int64_t>(1, k), st);
    filled_ = true;
  }

  // Churn through dropouts/stragglers until one update actually lands.
  for (std::int64_t churn = 0;; ++churn) {
    if (churn > 1000 + 10 * eng.config().num_clients)
      throw std::runtime_error(
          "AsyncScheduler: dropout/straggler settings starve aggregation");
    Event ev = pop_next();
    clock_s_ = std::max(clock_s_, ev.finish_s);

    if (ev.dropped_out) {
      ++st.dropped_out;
      dispatch(eng, m, t, 1, st);
      continue;
    }
    // The upload reached the server (stragglers arrive, just too late to be
    // used; the duration they are judged on includes their transfer time).
    st.bytes_up += ev.up.bytes_up;
    if (cfg_.straggler_cutoff_s > 0.0 &&
        ev.duration.total() > cfg_.straggler_cutoff_s) {
      ++st.dropped_stragglers;
      dispatch(eng, m, t, 1, st);
      continue;
    }

    // FedAsync-style staleness decay: alpha / (t - tau + 1), optionally
    // scaled by the client's relative data size q_k * N.
    const double staleness = static_cast<double>(t - ev.task.round);
    double mix = cfg_.alpha / (staleness + 1.0);
    if (cfg_.scale_by_data)
      mix *= static_cast<double>(ev.up.weight) *
             static_cast<double>(eng.config().num_clients);
    mix = std::clamp(mix, cfg_.min_mix, 1.0);

    const TimeBreakdown duration = ev.duration;
    m.apply_update(ev.task, std::move(ev.up), ApplyMode::kBlend,
                   static_cast<float>(mix));
    m.finalize_round(t);
    st.applied = 1;
    st.mean_staleness = staleness;

    // Refill from the post-aggregation model: the fresh dispatch belongs to
    // server round t + 1.
    dispatch(eng, m, t + 1, 1, st);

    // The round's wall-clock advance, split by the applied client's own
    // compute/access/comm ratio (the async clock has no single-client
    // identity, so this is an attribution, not a measurement).
    const double delta = clock_s_ - clock_at_entry;
    const double total = duration.total();
    const double access_frac = total > 0.0 ? duration.access_s / total : 0.0;
    const double comm_frac = total > 0.0 ? duration.comm_s / total : 0.0;
    st.time.access_s = delta * access_frac;
    st.time.comm_s = delta * comm_frac;
    st.time.compute_s = delta - st.time.access_s - st.time.comm_s;
    return st;
  }
}

}  // namespace fp::fed
