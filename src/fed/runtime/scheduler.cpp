#include "fed/runtime/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace fp::fed {

// ---- SyncScheduler ----------------------------------------------------------

RoundStats SyncScheduler::run_round(RoundEngine& eng, RoundMethod& m,
                                    std::int64_t t) {
  RoundStats st;
  std::vector<TaskSpec> tasks;
  {
    obs::PhaseTimer sample_phase(obs::Phase::kSample);
    FP_TRACE_SCOPE("sample", "engine");
    tasks = eng.sample_tasks(t, eng.config().clients_per_round);

    // Availability churn: a sampled client may vanish between selection and
    // dispatch. Decided statelessly from the dedicated churn stream BEFORE any
    // dispatch, so dropped clients never train, never download, and never
    // consume a method's slot-order draws; survivors are re-slotted
    // contiguously. No-op when churn is off (every historical golden).
    if (eng.churn().enabled()) {
      std::vector<TaskSpec> alive;
      alive.reserve(tasks.size());
      for (auto& task : tasks) {
        if (eng.churn().drops(task.client, t)) {
          ++st.dropped_out;
          continue;
        }
        task.slot = alive.size();
        alive.push_back(task);
      }
      tasks = std::move(alive);
    }
  }

  {
    obs::PhaseTimer train_phase(obs::Phase::kTrain);
    FP_TRACE_SCOPE("begin_dispatch", "engine");
    m.begin_dispatch(tasks);
  }

  const std::size_t n = tasks.size();
  const std::int64_t aggs = eng.config().agg.aggregators;
  const std::size_t groups =
      aggs > 0 ? std::min(static_cast<std::size_t>(aggs),
                          std::max<std::size_t>(n, 1))
               : 1;
  const comm::EdgeLink edge{eng.config().agg.up_mbps,
                            eng.config().agg.latency_s};
  const bool price_edge = aggs > 0 && eng.channel().network().enabled();

  st.dispatched = st.applied = n;
  const bool with_devices = !tasks.empty() && tasks.front().has_device;
  TimeBreakdown slowest;
  double slowest_total = -1.0;

  // One wave per edge aggregator (flat aggregation = a single wave over all
  // slots, bit-identical to the historical loop). Each wave trains its
  // contiguous slot group in parallel, folds the uploads into the server in
  // global slot order, and frees them before the next wave — so server-side
  // peak residency is O(group) upload blobs, not O(sampled). Because slot
  // grouping is contiguous and apply order is unchanged, the aggregate is
  // NUMERICALLY IDENTICAL to flat aggregation: the tree changes only
  // residency, backbone bytes (agg_bytes_saved), and the clock (one
  // edge→server hop per wave when the network model is on).
  for (std::size_t g = 0; g < groups; ++g) {
    const std::size_t begin = n * g / groups;
    const std::size_t end = n * (g + 1) / groups;
    if (begin == end) continue;
    std::vector<Upload> uploads(end - begin);
    {
      obs::PhaseTimer train_phase(obs::Phase::kTrain);
      FP_TRACE_SCOPE_ARG("wave", "engine", "group",
                         static_cast<std::int64_t>(g));
      if (eng.remote_active()) {
        // Distributed root (DESIGN.md §10): the group trains on the connected
        // workers. The dispatcher returns the same slot-ordered uploads the
        // local loop would have produced (decoded against this process's own
        // broadcast references), so everything below — byte accounting, sim
        // time, apply order — is unchanged and the round is bit-identical.
        st.measured_comm_s +=
            eng.remote()->run_group(m, tasks, begin, end, uploads);
      } else {
        core::parallel_tasks(static_cast<std::int64_t>(end - begin),
                             [&](std::int64_t ti) {
                               const auto i = static_cast<std::size_t>(ti);
                               uploads[i] = eng.run_client(m, tasks[begin + i]);
                             });
      }
    }

    // Wave time: the slowest member's download + train + upload (the comm
    // term is zero unless comm.model_network is on, which keeps the pre-comm
    // goldens bit-identical). Priced before apply_update moves the uploads.
    obs::PhaseTimer agg_phase(obs::Phase::kAggregate);
    FP_TRACE_SCOPE_ARG("aggregate", "engine", "group",
                       static_cast<std::int64_t>(g));
    TimeBreakdown wave_slowest;
    double wave_total = -1.0;
    std::int64_t wave_bytes_up = 0;
    std::int64_t merged_bytes = 0;
    for (std::size_t i = begin; i < end; ++i) {
      Upload& up = uploads[i - begin];
      st.bytes_down += up.bytes_down;
      st.bytes_up += up.bytes_up;
      wave_bytes_up += up.bytes_up;
      merged_bytes = std::max(merged_bytes, up.bytes_up);
      st.peak_mem_bytes = std::max(st.peak_mem_bytes, up.peak_mem_bytes);
      st.over_budget += up.over_budget ? 1 : 0;
      if (with_devices) {
        const TimeBreakdown ti = client_sim_time(
            m.time_spec(eng.env()), tasks[i].device, up.work,
            eng.env().cost_cfg, eng.config().local_iters,
            eng.channel().network(), up.bytes_down, up.bytes_up);
        if (ti.total() > wave_total) {
          wave_total = ti.total();
          wave_slowest = ti;
        }
      }
      eng.note_participant(tasks[i].client);
      m.apply_update(tasks[i], std::move(up), ApplyMode::kAccumulate, 1.0f);
    }
    if (aggs > 0) {
      // The edge forwards ONE merged blob (sized like its largest member)
      // instead of every member's upload: those bytes never hit the backbone.
      st.agg_bytes_saved += wave_bytes_up - merged_bytes;
      if (price_edge) wave_slowest.comm_s += edge.upload_s(merged_bytes);
    }
    if (with_devices && wave_total >= 0.0 &&
        wave_slowest.total() > slowest_total) {
      slowest_total = wave_slowest.total();
      slowest = wave_slowest;
    }
  }
  {
    obs::PhaseTimer agg_phase(obs::Phase::kAggregate);
    FP_TRACE_SCOPE("finalize", "engine");
    m.finalize_round(t);
  }

  if (with_devices) st.time = slowest;
  st.unique_participants = eng.participant_count();
  return st;
}

// ---- AsyncScheduler ---------------------------------------------------------

AsyncScheduler::AsyncScheduler(const AsyncConfig& cfg, std::uint64_t seed)
    : cfg_(cfg), drop_rng_(seed) {}

void AsyncScheduler::dispatch(RoundEngine& eng, RoundMethod& m, std::int64_t t,
                              std::int64_t count, RoundStats& st) {
  // The net layer validates this up front (fp_run exits with a SpecError);
  // this guard catches direct engine users.
  if (eng.remote_active())
    throw std::runtime_error(
        "distributed runtime: the async scheduler is not supported "
        "(net.role=root requires fl.scheduler=sync)");
  std::vector<TaskSpec> tasks;
  std::vector<char> dropped;
  {
    obs::PhaseTimer sample_phase(obs::Phase::kSample);
    FP_TRACE_SCOPE("sample", "engine");
    tasks = eng.sample_tasks(t, count);

    // Dropout is decided at dispatch from a dedicated stream, in slot order.
    dropped.assign(tasks.size(), 0);
    if (cfg_.dropout_prob > 0.0)
      for (auto& d : dropped) d = drop_rng_.uniform() < cfg_.dropout_prob;
    // Availability churn adds its own stateless mid-round dropouts on top
    // (drop_rng_'s draw sequence above is untouched, so enabling churn never
    // perturbs the async dropout stream).
    if (eng.churn().enabled())
      for (std::size_t i = 0; i < tasks.size(); ++i)
        if (eng.churn().drops(tasks[i].client, t)) dropped[i] = 1;
  }

  // Training runs at dispatch time against the dispatch snapshot, so a
  // client's computation is a pure function of (seed, dispatch order) no
  // matter when its completion event is consumed. Dropped clients train too
  // (their update is lost in transit): the device-latency model still needs
  // their ClientWork to place the loss event on the virtual clock.
  std::vector<Upload> uploads(tasks.size());
  {
    obs::PhaseTimer train_phase(obs::Phase::kTrain);
    FP_TRACE_SCOPE_ARG("dispatch", "engine", "count", count);
    m.begin_dispatch(tasks);
    core::parallel_tasks(static_cast<std::int64_t>(tasks.size()),
                         [&](std::int64_t ti) {
                           const auto i = static_cast<std::size_t>(ti);
                           uploads[i] = eng.run_client(m, tasks[i]);
                         });
  }

  for (std::size_t i = 0; i < tasks.size(); ++i) {
    Event ev;
    ev.seq = seq_++;
    ev.task = tasks[i];
    ev.dropped_out = dropped[i] != 0;
    // The broadcast went out the moment the client was dispatched; its
    // upload bytes are only counted if the server ever hears the event.
    st.bytes_down += uploads[i].bytes_down;
    st.peak_mem_bytes = std::max(st.peak_mem_bytes, uploads[i].peak_mem_bytes);
    st.over_budget += uploads[i].over_budget ? 1 : 0;
    if (tasks[i].has_device) {
      ev.duration = client_sim_time(
          m.time_spec(eng.env()), tasks[i].device, uploads[i].work,
          eng.env().cost_cfg, eng.config().local_iters,
          eng.channel().network(), uploads[i].bytes_down,
          uploads[i].bytes_up);
      // Hierarchical aggregation: the upload traverses the edge aggregator's
      // backbone before the server hears it (async edges forward updates
      // individually, so there is a hop but no merge savings).
      if (eng.config().agg.aggregators > 0 && eng.channel().network().enabled())
        ev.duration.comm_s +=
            comm::EdgeLink{eng.config().agg.up_mbps,
                           eng.config().agg.latency_s}
                .upload_s(uploads[i].bytes_up);
    }
    ev.up = std::move(uploads[i]);
    // The server hears back after the client's own duration, except that a
    // straggler cutoff caps how long it waits on any one dispatch. A dropped
    // client never reports: the server notices at the cutoff if one is set,
    // otherwise at the time the client would have finished.
    double delay = ev.duration.total();
    if (cfg_.straggler_cutoff_s > 0.0)
      delay = ev.dropped_out ? cfg_.straggler_cutoff_s
                             : std::min(delay, cfg_.straggler_cutoff_s);
    ev.finish_s = clock_s_ + delay;
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), Later{});
    ++st.dispatched;
  }
}

AsyncScheduler::Event AsyncScheduler::pop_next() {
  std::pop_heap(heap_.begin(), heap_.end(), Later{});
  Event ev = std::move(heap_.back());
  heap_.pop_back();
  return ev;
}

RoundStats AsyncScheduler::run_round(RoundEngine& eng, RoundMethod& m,
                                     std::int64_t t) {
  RoundStats st;
  const double clock_at_entry = clock_s_;
  if (!filled_) {
    const std::int64_t k = cfg_.concurrency > 0
                               ? cfg_.concurrency
                               : eng.config().clients_per_round;
    dispatch(eng, m, t, std::max<std::int64_t>(1, k), st);
    filled_ = true;
  }

  // Churn through dropouts/stragglers until one update actually lands.
  for (std::int64_t churn = 0;; ++churn) {
    if (churn > 1000 + 10 * eng.config().num_clients)
      throw std::runtime_error(
          "AsyncScheduler: dropout/straggler settings starve aggregation");
    Event ev = pop_next();
    clock_s_ = std::max(clock_s_, ev.finish_s);

    if (ev.dropped_out) {
      ++st.dropped_out;
      dispatch(eng, m, t, 1, st);
      continue;
    }
    // The upload reached the server (stragglers arrive, just too late to be
    // used; the duration they are judged on includes their transfer time).
    st.bytes_up += ev.up.bytes_up;
    if (cfg_.straggler_cutoff_s > 0.0 &&
        ev.duration.total() > cfg_.straggler_cutoff_s) {
      ++st.dropped_stragglers;
      dispatch(eng, m, t, 1, st);
      continue;
    }

    // FedAsync-style staleness decay: alpha / (t - tau + 1), optionally
    // scaled by the client's relative data size q_k * N.
    const double staleness = static_cast<double>(t - ev.task.round);
    double mix = cfg_.alpha / (staleness + 1.0);
    if (cfg_.scale_by_data)
      mix *= static_cast<double>(ev.up.weight) *
             static_cast<double>(eng.config().num_clients);
    mix = std::clamp(mix, cfg_.min_mix, 1.0);

    const TimeBreakdown duration = ev.duration;
    eng.note_participant(ev.task.client);
    {
      obs::PhaseTimer agg_phase(obs::Phase::kAggregate);
      FP_TRACE_SCOPE("aggregate", "engine");
      m.apply_update(ev.task, std::move(ev.up), ApplyMode::kBlend,
                     static_cast<float>(mix));
      m.finalize_round(t);
    }
    st.applied = 1;
    st.mean_staleness = staleness;
    st.unique_participants = eng.participant_count();

    // Refill from the post-aggregation model: the fresh dispatch belongs to
    // server round t + 1.
    dispatch(eng, m, t + 1, 1, st);

    // The round's wall-clock advance, split by the applied client's own
    // compute/access/comm ratio (the async clock has no single-client
    // identity, so this is an attribution, not a measurement).
    const double delta = clock_s_ - clock_at_entry;
    const double total = duration.total();
    const double access_frac = total > 0.0 ? duration.access_s / total : 0.0;
    const double comm_frac = total > 0.0 ? duration.comm_s / total : 0.0;
    st.time.access_s = delta * access_frac;
    st.time.comm_s = delta * comm_frac;
    st.time.compute_s = delta - st.time.access_s - st.time.comm_s;
    return st;
  }
}

}  // namespace fp::fed
