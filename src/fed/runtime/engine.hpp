// Unified federated round engine.
//
// Every method in the repo (FedProphet and the five baselines) used to
// hand-roll the same synchronous round loop: sample clients -> broadcast ->
// parallel local training -> client-ordered aggregation -> simulated-time
// accounting. The engine owns that pipeline once, and a method only states
//  * WHAT each sampled client trains        (ClientTaskFactory), and
//  * HOW its wire blob lands in the server   (UpdateApplier) — i.e. which
//    BlobAverager / PartialAccumulator the upload folds into.
// Scheduling is pluggable (scheduler.hpp): SyncScheduler reproduces the
// historical barrier semantics bit-for-bit; AsyncScheduler replays per-client
// device latencies as a deterministic event queue with staleness-decayed
// aggregation, straggler cutoffs, and client dropout. See DESIGN.md §4.
#pragma once

#include <any>
#include <cmath>
#include <memory>
#include <unordered_set>
#include <vector>

#include "comm/channel.hpp"
#include "comm/wire.hpp"
#include "fed/churn.hpp"
#include "fed/config.hpp"
#include "fed/env.hpp"
#include "fed/runtime/remote.hpp"
#include "fed/sampler.hpp"

namespace fp::fed {

/// One unit of client work handed to a method by a scheduler.
struct TaskSpec {
  std::int64_t round = 0;    ///< server round at dispatch (= model version)
  std::size_t slot = 0;      ///< index within the dispatch group
  std::size_t client = 0;    ///< global client id
  float lr = 0.0f;           ///< learning rate of the dispatch round
  float weight = 0.0f;       ///< q_k = |D_k| / sum |D_i|
  bool has_device = false;   ///< false when the env has no device pool
  sys::DeviceInstance device;
};

/// What a finished client hands back to the server: the simulated-cost
/// accounting plus a method-specific wire payload (parameter blobs, sliced
/// models, auxiliary heads, ...).
struct Upload {
  ClientWork work;
  float weight = 0.0f;  ///< q_k, echoed from the TaskSpec
  /// Wire bytes of this client's round-trip through the engine's Channel:
  /// the broadcast it downloaded and the encoded update it uploads. Filled
  /// by the method in train_client; the schedulers price transfer time and
  /// accumulate per-round byte totals from them.
  std::int64_t bytes_down = 0;
  std::int64_t bytes_up = 0;
  /// Measured arena high-water of this client's local training (bytes; 0
  /// unless the mem subsystem's measurement is on). Filled by the engine
  /// around train_client.
  std::int64_t peak_mem_bytes = 0;
  /// The measured peak exceeded the client's enforced budget — a reported
  /// (never fatal) diagnostic; see mem::MemConfig.
  bool over_budget = false;
  std::any payload;
};

/// How an upload folds into the server state.
enum class ApplyMode {
  /// Accumulate into the method's averager with weight q_k; the weighted
  /// mean lands on finalize_round (synchronous barrier rounds).
  kAccumulate,
  /// Blend ONE update into the current global state immediately:
  /// global <- (1 - mix) * global + mix * upload. finalize_round follows
  /// every kBlend apply (asynchronous aggregation events).
  kBlend,
};

/// "What does this client train?" — sequential dispatch-time decisions
/// (module assignment, slice plans, architecture choice) plus the concurrent
/// local training itself.
class ClientTaskFactory {
 public:
  virtual ~ClientTaskFactory() = default;

  /// Called once per dispatch group, sequentially, before any training:
  /// snapshot the server state the group trains from and make per-slot
  /// decisions that consume shared RNG streams (in slot order).
  virtual void begin_dispatch(const std::vector<TaskSpec>& tasks) = 0;

  /// Trains one client. May run concurrently with other slots of the same
  /// dispatch group: must touch only per-client state (RNG stream, batch
  /// iterator) and task-private replicas of the snapshot.
  virtual Upload train_client(const TaskSpec& task) = 0;
};

/// "How does the wire blob land?" — sequential server-side aggregation.
class UpdateApplier {
 public:
  virtual ~UpdateApplier() = default;

  /// Folds one upload into the method's accumulators. Always called on the
  /// engine thread in a deterministic order (slot order for sync rounds,
  /// event order for async). `mix` is only meaningful for kBlend.
  virtual void apply_update(const TaskSpec& task, Upload&& up, ApplyMode mode,
                            float mix) = 0;

  /// Commits the accumulated updates into the global model(s) and runs any
  /// per-round server work (distillation, traces). `t` = server round index.
  virtual void finalize_round(std::int64_t t) = 0;
};

/// A federated method as seen by the engine.
class RoundMethod : public ClientTaskFactory, public UpdateApplier {
 public:
  /// Model spec the latency simulation prices this method's ClientWork on.
  /// Baselines use the paper-shape cost spec; FedProphet prices on its
  /// trainable backbone (its atom ranges index the cascade partition).
  virtual const sys::ModelSpec& time_spec(const FedEnv& env) const {
    return env.cost_spec;
  }

  // ---- Distributed-runtime hooks (src/net/, DESIGN.md §10) ----------------
  // A net-capable method can split one dispatch across processes: the root
  // serializes its per-round context (broadcast WireMessages + scalars), a
  // worker installs it and runs train_client for its owned tasks, and the
  // finished uploads travel back as the channel-encoded WireMessages the
  // worker captured — which the root decodes against its own broadcast
  // references, reproducing exactly what the fused single-process uplink
  // would have handed apply_update. Defaults throw: the net layer refuses
  // methods that don't implement the codecs.

  /// True when the net_* hooks below are implemented (jFAT/FedAvg,
  /// FedProphet).
  virtual bool net_capable() const { return false; }
  /// Root: serialize the dispatch context workers need. Called after
  /// begin_dispatch, once per dispatch group.
  virtual void net_save_context(comm::FrameWriter& out) const;
  /// Worker: install a received dispatch context (the counterpart of
  /// begin_dispatch's snapshot work; per-client pool bookkeeping runs in
  /// net_begin_group over the worker's OWNED tasks only).
  virtual void net_load_context(comm::FrameReader& in);
  /// Worker: dispatch-lifecycle bracket around one received group.
  virtual void net_begin_group(const std::vector<TaskSpec>& owned_tasks);
  virtual void net_end_group();
  /// Worker -> root: one finished upload as a frame (base scalars via
  /// write_upload_base, then the method's payload).
  virtual void net_encode_upload(const Upload& up,
                                 comm::FrameWriter& out) const;
  /// Root <- worker: the inverse of net_encode_upload.
  virtual Upload net_decode_upload(const TaskSpec& task, comm::FrameReader& in);
  /// Worker: method-specific auxiliary op (RemoteDispatcher::run_custom).
  virtual void net_custom_op(std::uint32_t op, comm::FrameReader& ctx,
                             std::size_t client, comm::FrameWriter& out);
  /// Worker harness toggle: in worker mode train_client stages the encoded
  /// WireMessages for upload instead of (or alongside) decoded blobs.
  virtual void net_set_worker_mode(bool on);

  /// Everything in an Upload except the payload, in a fixed field order.
  static void write_upload_base(const Upload& up, comm::FrameWriter& out);
  static void read_upload_base(Upload& up, comm::FrameReader& in);
};

/// What one engine round did (one barrier round, or one async aggregation
/// event plus any straggler/dropout churn processed on the way).
struct RoundStats {
  TimeBreakdown time;  ///< simulated wall-clock advance of this round
  std::size_t dispatched = 0;
  std::size_t applied = 0;
  std::size_t dropped_stragglers = 0;
  std::size_t dropped_out = 0;
  double mean_staleness = 0.0;  ///< staleness of the applied update(s)
  std::int64_t bytes_down = 0;  ///< wire bytes broadcast to clients this round
  std::int64_t bytes_up = 0;    ///< wire bytes received from clients this round
  std::int64_t peak_mem_bytes = 0;  ///< max measured client peak (0 = mem off)
  std::size_t over_budget = 0;      ///< clients whose peak exceeded their budget
  /// Distinct clients with at least one applied update since engine start
  /// (cumulative — the engine tracks the set, rounds report its size).
  std::int64_t unique_participants = 0;
  /// Backbone bytes the edge aggregators absorbed this round (0 when flat).
  std::int64_t agg_bytes_saved = 0;
  /// Measured wire-transfer seconds of this round's remote dispatch groups
  /// (0 outside a distributed root run) — the real-clock counterpart the
  /// modeled comm_s is checked against (DESIGN.md §10).
  double measured_comm_s = 0.0;
  /// Real wall-clock seconds this engine round took (steady clock, measured
  /// by RoundEngine::run_round around the scheduler; DESIGN.md §11).
  double round_wall_s = 0.0;
};

class RoundScheduler;

/// Owns the sample -> dispatch -> train -> upload -> aggregate -> simulated
/// time pipeline shared by every federated method.
class RoundEngine {
 public:
  /// Builds the scheduler selected by cfg.scheduler.
  RoundEngine(FedEnv& env, const FlConfig& cfg);
  ~RoundEngine();

  /// Runs one engine round of `m` at server round t.
  RoundStats run_round(RoundMethod& m, std::int64_t t);

  const FlConfig& config() const { return cfg_; }
  FedEnv& env() { return *env_; }

  /// Every method download/upload routes through this channel (wire codec +
  /// byte accounting + network model). Const and thread-safe: clients call
  /// uplink concurrently from train_client.
  const comm::Channel& channel() const { return channel_; }

  /// The distributed dispatcher of a root run (nullptr otherwise). Owned by
  /// the net layer, carried on the environment.
  RemoteDispatcher* remote() const { return env_->remote; }
  /// True on a distributed root with at least one connected worker: methods
  /// use this to capture encoded broadcasts for net_save_context.
  bool remote_active() const {
    return env_->remote != nullptr && env_->remote->num_workers() > 0;
  }

  float lr_at(std::int64_t t) const {
    return cfg_.lr0 * std::pow(cfg_.lr_decay, static_cast<float>(t));
  }

  /// Samples `count` distinct clients for a dispatch at round t, with their
  /// device availability (persistent per-client binding when the env carries
  /// one, otherwise a fresh draw per task). Used by schedulers.
  std::vector<TaskSpec> sample_tasks(std::int64_t t, std::int64_t count);

  /// Trains one client through the method, under the configured memory
  /// plane: when cfg.mem is active, a mem::ClientMemScope (budget derived
  /// from the task's device availability, or the fixed override) is bound
  /// around train_client, and the measured peak + budget diagnostic land in
  /// the Upload. Schedulers call this instead of m.train_client directly.
  Upload run_client(RoundMethod& m, const TaskSpec& task);

  /// The budget (bytes, trainable-model scale) client training under `task`
  /// is scoped to; 0 = unbudgeted.
  std::int64_t client_budget_bytes(const TaskSpec& task) const;

  /// Availability churn process (DESIGN.md §9; disabled unless cfg.churn).
  const ChurnProcess& churn() const { return churn_; }

  /// Participation bookkeeping: schedulers record every applied client.
  void note_participant(std::size_t client) { participants_.insert(client); }
  std::int64_t participant_count() const {
    return static_cast<std::int64_t>(participants_.size());
  }

 private:
  FedEnv* env_;
  FlConfig cfg_;
  ClientSampler sampler_;
  comm::Channel channel_;
  ChurnProcess churn_;
  std::unordered_set<std::size_t> participants_;
  std::unique_ptr<RoundScheduler> scheduler_;
};

}  // namespace fp::fed
