// The seam between the federated runtime and the distributed transport
// (DESIGN.md §10).
//
// The engine and schedulers never touch sockets: on a distributed root, the
// sync scheduler hands each dispatch group to the RemoteDispatcher the
// environment carries instead of training in-process, and gets back the
// same Upload vector the parallel local loop would have produced — decoded
// through the root's own broadcast references, so aggregation is
// bit-identical to the single-process run. src/net/ implements this
// interface over TCP; everything above it is transport-agnostic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fp::fed {

class RoundMethod;
struct TaskSpec;
struct Upload;

class RemoteDispatcher {
 public:
  virtual ~RemoteDispatcher() = default;

  /// Connected workers. Client k of every dispatch is owned by worker
  /// (k % num_workers()): sticky ownership keeps each client's persistent
  /// state (RNG stream, shuffling batch iterator) advancing on exactly one
  /// worker, which is what makes distributed runs hash-match single-process.
  virtual std::size_t num_workers() const = 0;

  /// Ships tasks[begin, end) to their owning workers (context from
  /// m.net_save_context, uploads back through m.net_decode_upload), filling
  /// uploads[i - begin] for every i. Returns the group's measured transfer
  /// seconds: group wall time minus the slowest worker's self-reported
  /// compute time — the number the modeled comm_s is checked against.
  /// Throws net::NetError when a worker disconnects or times out mid-group.
  virtual double run_group(RoundMethod& m, const std::vector<TaskSpec>& tasks,
                           std::size_t begin, std::size_t end,
                           std::vector<Upload>& uploads) = 0;

  /// Method-specific auxiliary fan-out (e.g. FedProphet's ||Delta z|| probe):
  /// ships (op, ctx) to the owners of `clients` — each owner runs
  /// m.net_custom_op per owned client — and returns one result frame per
  /// client, in the order of `clients`.
  virtual std::vector<std::vector<std::uint8_t>> run_custom(
      std::uint32_t op, const std::vector<std::uint8_t>& ctx,
      const std::vector<std::size_t>& clients) = 0;

  /// Real socket byte counters (sum over worker connections) and the
  /// cumulative measured transfer seconds — what the [net] summary reports
  /// next to the modeled bytes/comm_s.
  virtual std::int64_t tx_bytes() const = 0;
  virtual std::int64_t rx_bytes() const = 0;
  virtual double measured_comm_s() const = 0;
};

}  // namespace fp::fed
