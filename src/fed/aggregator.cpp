#include "fed/aggregator.hpp"

#include <stdexcept>

namespace fp::fed {

void BlobAverager::add(const nn::ParamBlob& blob, float weight) {
  if (sum_.empty()) sum_.assign(blob.size(), 0.0f);
  nn::blob_axpy(sum_, blob, weight);
  total_weight_ += weight;
}

nn::ParamBlob BlobAverager::average() const {
  if (total_weight_ == 0.0f) throw std::logic_error("BlobAverager: empty");
  nn::ParamBlob out = sum_;
  nn::blob_scale(out, 1.0f / total_weight_);
  return out;
}

void BlobAverager::reset() {
  sum_.clear();
  total_weight_ = 0.0f;
}

namespace {
std::vector<Tensor*> atom_tensors(nn::Layer& atom) {
  auto out = atom.parameters();
  for (auto* b : atom.buffers()) out.push_back(b);
  return out;
}
}  // namespace

PartialAccumulator::PartialAccumulator(models::BuiltModel& global)
    : spec_(global.spec()) {
  acc_.resize(global.num_atoms());
  count_.resize(global.num_atoms());
  for (std::size_t a = 0; a < global.num_atoms(); ++a) {
    for (auto* t : atom_tensors(global.atom(a))) {
      acc_[a].emplace_back(t->shape());
      count_[a].emplace_back(t->shape());
    }
  }
}

void PartialAccumulator::reset() {
  for (auto& atom : acc_)
    for (auto& t : atom) t.zero_();
  for (auto& atom : count_)
    for (auto& t : atom) t.zero_();
}

void PartialAccumulator::add_dense_atom(models::BuiltModel& trained,
                                        std::size_t atom, float weight) {
  const auto tensors = atom_tensors(trained.atom(atom));
  if (tensors.size() != acc_[atom].size())
    throw std::logic_error("add_dense_atom: tensor count mismatch");
  for (std::size_t i = 0; i < tensors.size(); ++i) {
    acc_[atom][i].add_scaled_(*tensors[i], weight);
    count_[atom][i].add_scalar_(weight);
  }
}

void PartialAccumulator::add_dense_atom_blob(std::size_t atom,
                                             const nn::ParamBlob& blob,
                                             float weight) {
  std::size_t offset = 0;
  for (std::size_t i = 0; i < acc_[atom].size(); ++i) {
    Tensor& acc = acc_[atom][i];
    const auto numel = static_cast<std::size_t>(acc.numel());
    if (offset + numel > blob.size())
      throw std::logic_error("add_dense_atom_blob: blob too small");
    for (std::size_t j = 0; j < numel; ++j)
      acc[static_cast<std::int64_t>(j)] += weight * blob[offset + j];
    count_[atom][i].add_scalar_(weight);
    offset += numel;
  }
  if (offset != blob.size())
    throw std::logic_error("add_dense_atom_blob: blob size mismatch");
}

void PartialAccumulator::add_sliced_atom(const models::SlicePlan& plan,
                                         models::BuiltModel& sliced,
                                         std::size_t atom, float weight) {
  models::scatter_add_weights(spec_, plan, sliced, atom, acc_[atom], count_[atom],
                              weight);
}

void PartialAccumulator::finalize_into(models::BuiltModel& global) {
  for (std::size_t a = 0; a < global.num_atoms(); ++a) {
    const auto tensors = atom_tensors(global.atom(a));
    for (std::size_t i = 0; i < tensors.size(); ++i) {
      Tensor& target = *tensors[i];
      const Tensor& acc = acc_[a][i];
      const Tensor& cnt = count_[a][i];
      for (std::int64_t j = 0; j < target.numel(); ++j)
        if (cnt[j] > 0.0f) target[j] = acc[j] / cnt[j];
    }
  }
}

}  // namespace fp::fed
