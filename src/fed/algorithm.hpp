// Base class for federated training algorithms (jFAT, the memory-efficient
// baselines, and FedProphet). Provides the round loop scaffolding, learning-
// rate schedule, client sampling, simulated-time accumulation, and periodic
// global evaluation; subclasses implement run_round().
#pragma once

#include <memory>
#include <string>

#include "attack/evaluate.hpp"
#include "fed/aggregator.hpp"
#include "fed/env.hpp"
#include "fed/sampler.hpp"

namespace fp::fed {

class FederatedAlgorithm {
 public:
  FederatedAlgorithm(FedEnv& env, FlConfig cfg)
      : env_(&env),
        cfg_(cfg),
        sampler_(env.num_clients(), cfg.seed + 11),
        local_rng_(cfg.seed + 13) {}
  virtual ~FederatedAlgorithm() = default;

  virtual std::string name() const = 0;

  /// The model the server would deploy (used by the evaluation harness).
  virtual models::BuiltModel& global_model() = 0;

  /// One communication round at index t.
  virtual void run_round(std::int64_t t) = 0;

  /// Full training: cfg.rounds rounds, evaluating every `eval_every` rounds
  /// (0 = only at the end).
  void run(std::int64_t eval_every = 0);

  const History& history() const { return history_; }
  const TimeBreakdown& sim_time() const { return sim_time_; }

  /// Clean + PGD accuracy snapshot of the global model on the test set.
  virtual RoundRecord evaluate_snapshot(std::int64_t round,
                                        std::int64_t max_samples = 256,
                                        int pgd_steps = 10);

 protected:
  float lr_at(std::int64_t t) const {
    return cfg_.lr0 * std::pow(cfg_.lr_decay, static_cast<float>(t));
  }

  /// Samples the round's participants and (if a device pool exists) their
  /// real-time device availability.
  struct RoundClients {
    std::vector<std::size_t> ids;
    std::vector<sys::DeviceInstance> devices;
  };
  RoundClients sample_round();

  void add_sim_time(const TimeBreakdown& t) { sim_time_ += t; }

  FedEnv* env_;
  FlConfig cfg_;
  ClientSampler sampler_;
  Rng local_rng_;
  History history_;
  TimeBreakdown sim_time_;
};

}  // namespace fp::fed
