// Base class for federated training algorithms (jFAT, the memory-efficient
// baselines, and FedProphet). An algorithm IS a RoundMethod: it implements
// the ClientTaskFactory / UpdateApplier hooks of fed/runtime/engine.hpp, and
// the shared RoundEngine executes the sample -> dispatch -> train -> upload
// -> aggregate -> simulated-time pipeline under the configured scheduler
// (synchronous barrier rounds or async event-driven aggregation). This class
// also provides the learning-rate schedule, history bookkeeping, and the
// periodic global evaluation used by run().
#pragma once

#include <memory>
#include <string>

#include "attack/evaluate.hpp"
#include "fed/aggregator.hpp"
#include "fed/env.hpp"
#include "fed/runtime/engine.hpp"

namespace fp::fed {

class FederatedAlgorithm : public RoundMethod {
 public:
  FederatedAlgorithm(FedEnv& env, FlConfig cfg);
  ~FederatedAlgorithm() override;

  virtual std::string name() const = 0;

  /// The model the server would deploy (used by the evaluation harness).
  virtual models::BuiltModel& global_model() = 0;

  /// One engine round at server index t: a barrier round under the sync
  /// scheduler, one aggregation event under the async scheduler.
  void run_round(std::int64_t t);

  /// Full training: cfg.rounds rounds, evaluating every `eval_every` rounds
  /// (0 = only at the end).
  void run(std::int64_t eval_every = 0);

  const History& history() const { return history_; }
  const TimeBreakdown& sim_time() const { return sim_time_; }
  RoundEngine& engine() { return *engine_; }
  const RoundStats& last_round_stats() const { return last_stats_; }
  /// Dispatch/apply/drop counters accumulated over every round so far
  /// (time stays zero here — the running clock is sim_time()).
  const RoundStats& total_stats() const { return total_stats_; }

  /// Clean + PGD accuracy snapshot of the global model on the test set.
  virtual RoundRecord evaluate_snapshot(std::int64_t round,
                                        std::int64_t max_samples = 256,
                                        int pgd_steps = 10);

 protected:
  /// Single source of the schedule: the engine's lr_at also fills TaskSpec.lr.
  float lr_at(std::int64_t t) const { return engine_->lr_at(t); }

  void add_sim_time(const TimeBreakdown& t) { sim_time_ += t; }

  FedEnv* env_;
  FlConfig cfg_;
  History history_;
  TimeBreakdown sim_time_;
  RoundStats last_stats_;
  RoundStats total_stats_;

 private:
  std::unique_ptr<RoundEngine> engine_;
};

}  // namespace fp::fed
