// Experiment environment: client shards, test/public data, device fleet,
// and the simulated-time accounting shared by every algorithm.
#pragma once

#include <memory>
#include <optional>

#include "comm/network.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fed/config.hpp"
#include "sysmodel/device.hpp"

namespace fp::fed {

class RemoteDispatcher;

struct FedEnv {
  data::Dataset test;
  data::Dataset public_set;           ///< server-side KD data (may be empty)
  std::vector<data::Dataset> shards;  ///< one per client
  std::vector<float> weights;         ///< q_k = |D_k| / sum |D_i|
  std::optional<sys::DeviceSampler> devices;
  /// Persistent fleet binding: pool index of the device client k owns across
  /// rounds (paper fleet setup). Empty = legacy per-round independent draws.
  std::vector<std::size_t> device_of_client;
  /// Paper-shape model spec used for the latency/memory simulation (e.g.
  /// VGG16@32x32) — may differ from the trainable model, see DESIGN.md §1.
  sys::ModelSpec cost_spec;
  sys::TrainCostConfig cost_cfg;

  // --- Scale plane (DESIGN.md §9) -----------------------------------------
  /// Non-null = plan-backed pool: shards are synthesized on dispatch from
  /// (seed, client_id) instead of held resident. `shards` may additionally be
  /// materialized from the same plan (lazy-vs-materialized equivalence runs).
  std::shared_ptr<const data::LazyShardSource> lazy;
  /// Pool size when shards are not materialized (0 = shards.size()).
  std::int64_t pool_size = 0;
  /// LRU capacity of the synthesized-shard cache (0 = default).
  std::int64_t client_cache = 0;
  /// Eager-mode resident BatchIterator cap (0 = unbounded legacy behavior).
  std::int64_t iter_cache = 0;
  /// Persistent device binding computed statelessly from (bind_seed, client)
  /// instead of the O(pool) device_of_client table.
  bool stateless_binding = false;
  std::uint64_t bind_seed = 0;

  // --- Distributed runtime (DESIGN.md §10) --------------------------------
  /// Non-null only on the root of a distributed run (src/net/): the sync
  /// scheduler ships dispatch groups through it instead of training
  /// in-process. Not owned; workers and single-process runs leave it null.
  RemoteDispatcher* remote = nullptr;

  std::int64_t num_clients() const {
    return pool_size > 0 ? pool_size
                         : static_cast<std::int64_t>(shards.size());
  }
  /// Plan-backed pools stream per-dispatch client sessions (ClientPool
  /// session mode) rather than persistent per-client state.
  bool session_mode() const { return lazy != nullptr; }
  /// Aggregation weight of client k. Plan-backed shards are equal-sized, so
  /// the weight is exactly 1/N without touching any shard.
  float weight_of(std::size_t k) const {
    if (session_mode()) return 1.0f / static_cast<float>(num_clients());
    return weights[k];
  }
  /// Pool index of client k's bound device under stateless binding.
  std::size_t bound_device_index(std::size_t k) const {
    Rng rng(Rng::mix_seed(bind_seed, static_cast<std::uint64_t>(k)));
    return devices->draw_pool_index(rng);
  }
};

struct FedEnvConfig {
  FlConfig fl;
  bool with_public_set = false;
  double public_fraction = 0.1;
  sys::Heterogeneity heterogeneity = sys::Heterogeneity::kBalanced;
  bool cifar_pool = true;  ///< which device pool (Table 5 vs Table 6)
  /// Bind each client to one device for the whole experiment (only the
  /// real-time availability degradation is redrawn per round). Off by
  /// default to keep historical outputs bit-identical.
  bool persistent_devices = false;
  // --- Scale plane (DESIGN.md §9) -----------------------------------------
  /// Plan-backed pool: shards synthesized on dispatch, O(sampled) residency.
  bool lazy_clients = false;
  /// Materialize every plan-backed shard up front (lazy-vs-materialized
  /// equivalence testing; pays O(pool) memory like the legacy path).
  bool materialize_plan = false;
  /// Samples per plan-backed shard (0 = train_size / num_clients, floored at
  /// one batch).
  std::int64_t shard_size = 0;
  /// Synthesized-shard LRU capacity (0 = ClientPool default).
  std::int64_t client_cache = 0;
  /// Eager-mode resident BatchIterator cap (0 = unbounded legacy behavior).
  std::int64_t iter_cache = 0;
};

/// Builds the environment: public split (optional), non-IID partition,
/// device sampler, and cost-model configuration.
FedEnv make_env(const data::TrainTest& data, const FedEnvConfig& cfg,
                sys::ModelSpec cost_spec);

/// Builds a plan-backed environment (DESIGN.md §9): per-client shards are
/// described by a ShardPlan and synthesized on dispatch, so setup cost and
/// resident memory are O(1) in the pool size. Only the test split (and the
/// public split, if requested) are rendered up front. `synth` supplies the
/// template/geometry config; the partition skew mirrors
/// data::PartitionConfig's defaults.
FedEnv make_lazy_env(const data::SyntheticConfig& synth, const FedEnvConfig& cfg,
                     sys::ModelSpec cost_spec);

/// What one client trains this round, expressed on the cost spec's atoms.
struct ClientWork {
  std::size_t atom_begin = 0;
  std::size_t atom_end = 0;
  bool with_aux = false;
  int pgd_steps = 10;
  /// Memory scale relative to full-model training (sub-model methods train
  /// a shrunken network; 1.0 = full model).
  double mem_scale = 1.0;
  /// FLOPs scale (e.g. a width-r sub-model costs about r^2 the MACs).
  double flops_scale = 1.0;
  /// Mem-planner peak for the swap decision, expressed on the byte scale of
  /// the spec this work is priced on (0 = analytic model; see
  /// sys::TrainCostConfig).
  std::int64_t planned_mem_bytes = 0;
  /// Enforced training budget on the same scale (0 = device availability).
  std::int64_t budget_mem_bytes = 0;
  /// Extra forward fraction per traversal from activation checkpointing.
  double recompute_fwd_frac = 0.0;
};

/// One client's simulated train duration: local_iters * per-step time on its
/// device. The event-time atom of the async scheduler.
TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters);

/// Same, plus the client's network round-trip: downloading `bytes_down` and
/// uploading `bytes_up` over its degraded link (comm_s term; zero when the
/// network model is disabled). This is what the schedulers price dispatches
/// with, so straggler cutoffs and event times account for transfer time.
TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters,
                              const comm::NetworkModel& net,
                              std::int64_t bytes_down, std::int64_t bytes_up);

/// Synchronous-round time: max over clients of local_iters * per-step time;
/// the breakdown is the slowest client's compute/access split.
TimeBreakdown simulate_round_time(const sys::ModelSpec& spec,
                                  const std::vector<sys::DeviceInstance>& devices,
                                  const std::vector<ClientWork>& work,
                                  const sys::TrainCostConfig& base_cfg,
                                  std::int64_t local_iters);

}  // namespace fp::fed
