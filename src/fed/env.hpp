// Experiment environment: client shards, test/public data, device fleet,
// and the simulated-time accounting shared by every algorithm.
#pragma once

#include <optional>

#include "comm/network.hpp"
#include "data/partition.hpp"
#include "data/synthetic.hpp"
#include "fed/config.hpp"
#include "sysmodel/device.hpp"

namespace fp::fed {

struct FedEnv {
  data::Dataset test;
  data::Dataset public_set;           ///< server-side KD data (may be empty)
  std::vector<data::Dataset> shards;  ///< one per client
  std::vector<float> weights;         ///< q_k = |D_k| / sum |D_i|
  std::optional<sys::DeviceSampler> devices;
  /// Persistent fleet binding: pool index of the device client k owns across
  /// rounds (paper fleet setup). Empty = legacy per-round independent draws.
  std::vector<std::size_t> device_of_client;
  /// Paper-shape model spec used for the latency/memory simulation (e.g.
  /// VGG16@32x32) — may differ from the trainable model, see DESIGN.md §1.
  sys::ModelSpec cost_spec;
  sys::TrainCostConfig cost_cfg;

  std::int64_t num_clients() const {
    return static_cast<std::int64_t>(shards.size());
  }
};

struct FedEnvConfig {
  FlConfig fl;
  bool with_public_set = false;
  double public_fraction = 0.1;
  sys::Heterogeneity heterogeneity = sys::Heterogeneity::kBalanced;
  bool cifar_pool = true;  ///< which device pool (Table 5 vs Table 6)
  /// Bind each client to one device for the whole experiment (only the
  /// real-time availability degradation is redrawn per round). Off by
  /// default to keep historical outputs bit-identical.
  bool persistent_devices = false;
};

/// Builds the environment: public split (optional), non-IID partition,
/// device sampler, and cost-model configuration.
FedEnv make_env(const data::TrainTest& data, const FedEnvConfig& cfg,
                sys::ModelSpec cost_spec);

/// What one client trains this round, expressed on the cost spec's atoms.
struct ClientWork {
  std::size_t atom_begin = 0;
  std::size_t atom_end = 0;
  bool with_aux = false;
  int pgd_steps = 10;
  /// Memory scale relative to full-model training (sub-model methods train
  /// a shrunken network; 1.0 = full model).
  double mem_scale = 1.0;
  /// FLOPs scale (e.g. a width-r sub-model costs about r^2 the MACs).
  double flops_scale = 1.0;
  /// Mem-planner peak for the swap decision, expressed on the byte scale of
  /// the spec this work is priced on (0 = analytic model; see
  /// sys::TrainCostConfig).
  std::int64_t planned_mem_bytes = 0;
  /// Enforced training budget on the same scale (0 = device availability).
  std::int64_t budget_mem_bytes = 0;
  /// Extra forward fraction per traversal from activation checkpointing.
  double recompute_fwd_frac = 0.0;
};

/// One client's simulated train duration: local_iters * per-step time on its
/// device. The event-time atom of the async scheduler.
TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters);

/// Same, plus the client's network round-trip: downloading `bytes_down` and
/// uploading `bytes_up` over its degraded link (comm_s term; zero when the
/// network model is disabled). This is what the schedulers price dispatches
/// with, so straggler cutoffs and event times account for transfer time.
TimeBreakdown client_sim_time(const sys::ModelSpec& spec,
                              const sys::DeviceInstance& device,
                              const ClientWork& work,
                              const sys::TrainCostConfig& base_cfg,
                              std::int64_t local_iters,
                              const comm::NetworkModel& net,
                              std::int64_t bytes_down, std::int64_t bytes_up);

/// Synchronous-round time: max over clients of local_iters * per-step time;
/// the breakdown is the slowest client's compute/access split.
TimeBreakdown simulate_round_time(const sys::ModelSpec& spec,
                                  const std::vector<sys::DeviceInstance>& devices,
                                  const std::vector<ClientWork>& work,
                                  const sys::TrainCostConfig& base_cfg,
                                  std::int64_t local_iters);

}  // namespace fp::fed
