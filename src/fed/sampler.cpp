#include "fed/sampler.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace fp::fed {

std::vector<std::size_t> ClientSampler::sample(std::int64_t count,
                                               const ChurnProcess* churn,
                                               std::int64_t round) {
  if (count > num_clients_)
    throw std::invalid_argument("ClientSampler: count > population");
  const auto n = static_cast<std::uint64_t>(num_clients_);

  if (churn != nullptr && churn->enabled()) {
    // Rejection sampling against the availability process: expected
    // O(count / online_frac) draws. The O(pool) fallback scan only triggers
    // in pathological configs (online fraction near zero).
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> ids;
    ids.reserve(static_cast<std::size_t>(count));
    const std::int64_t max_attempts = 64 * count + 256;
    for (std::int64_t attempt = 0;
         attempt < max_attempts &&
         static_cast<std::int64_t>(ids.size()) < count;
         ++attempt) {
      const auto id = static_cast<std::size_t>(rng_.uniform_int(n));
      if (chosen.count(id) != 0 || !churn->online(id, round)) continue;
      chosen.insert(id);
      ids.push_back(id);
    }
    if (static_cast<std::int64_t>(ids.size()) < count) {
      for (std::size_t id = 0;
           id < static_cast<std::size_t>(num_clients_) &&
           static_cast<std::int64_t>(ids.size()) < count;
           ++id)
        if (chosen.count(id) == 0 && churn->online(id, round)) ids.push_back(id);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  if (count * 8 <= num_clients_) {
    // Floyd's algorithm: `count` draws, uniform without replacement, no
    // O(pool) shuffle. Only used for sparse draws so every historical dense
    // sampling sequence stays bit-identical.
    std::unordered_set<std::size_t> chosen;
    std::vector<std::size_t> ids;
    ids.reserve(static_cast<std::size_t>(count));
    for (std::int64_t j = num_clients_ - count; j < num_clients_; ++j) {
      const auto t = static_cast<std::size_t>(
          rng_.uniform_int(static_cast<std::uint64_t>(j) + 1));
      const auto pick = chosen.count(t) != 0 ? static_cast<std::size_t>(j) : t;
      chosen.insert(pick);
      ids.push_back(pick);
    }
    std::sort(ids.begin(), ids.end());
    return ids;
  }

  std::vector<std::size_t> ids(static_cast<std::size_t>(num_clients_));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  rng_.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fp::fed
