#include "fed/sampler.hpp"

#include <algorithm>
#include <stdexcept>

namespace fp::fed {

std::vector<std::size_t> ClientSampler::sample(std::int64_t count) {
  if (count > num_clients_)
    throw std::invalid_argument("ClientSampler: count > population");
  std::vector<std::size_t> ids(static_cast<std::size_t>(num_clients_));
  for (std::size_t i = 0; i < ids.size(); ++i) ids[i] = i;
  rng_.shuffle(ids);
  ids.resize(static_cast<std::size_t>(count));
  std::sort(ids.begin(), ids.end());
  return ids;
}

}  // namespace fp::fed
