// Per-client runtime state (RNG stream + persistent shuffling batch
// iterator), shared by every federated algorithm.
#pragma once

#include <optional>

#include "data/dataset.hpp"
#include "fed/env.hpp"

namespace fp::fed {

class ClientPool {
 public:
  ClientPool(const FedEnv& env, std::uint64_t seed) : env_(&env) {
    state_.resize(static_cast<std::size_t>(env.num_clients()));
    for (std::size_t k = 0; k < state_.size(); ++k)
      state_[k].rng = Rng(seed + 5000 + k);
  }

  Rng& rng(std::size_t k) { return state_[k].rng; }

  data::BatchIterator& batches(std::size_t k, std::int64_t batch_size) {
    auto& s = state_[k];
    if (!s.batches) s.batches.emplace(env_->shards[k], batch_size, s.rng);
    return *s.batches;
  }

 private:
  struct State {
    Rng rng;
    std::optional<data::BatchIterator> batches;
  };
  const FedEnv* env_;
  std::vector<State> state_;
};

}  // namespace fp::fed
