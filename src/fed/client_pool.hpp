// Per-client runtime state shared by every federated algorithm.
//
// Two modes (DESIGN.md §9):
//
//  * Eager (legacy): one persistent State (RNG stream + shuffling
//    BatchIterator) per pool client, seeded Rng(seed + stream_base + k).
//    Bit-identical to the historical per-method client vectors. Optionally
//    bounded: env.iter_cache > 0 evicts the least-recently-dispatched
//    iterators at end_round so long runs with large pools stop accumulating
//    per-client iterator state (opt-in — an evicted client reshuffles from
//    its stream on re-dispatch, which perturbs that client's draws).
//
//  * Session (plan-backed pools, env.session_mode()): nothing is resident
//    per pool client. A dispatch opens a session whose RNG stream is derived
//    statelessly from (seed + stream_base, client, dispatch_count) and whose
//    shard is synthesized on demand (or borrowed from materialized shards),
//    held in a small LRU keyed by client id, and discarded at end_round.
//    Round cost is O(sampled) in memory and time regardless of pool size,
//    and results are independent of thread count and LRU capacity.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "data/dataset.hpp"
#include "fed/env.hpp"

namespace fp::fed {

class ClientPool {
 public:
  explicit ClientPool(const FedEnv& env, std::uint64_t seed,
                      std::uint64_t stream_base = 5000);

  Rng& rng(std::size_t k);
  data::BatchIterator& batches(std::size_t k, std::int64_t batch_size);

  /// Dispatch lifecycle: methods call begin_round from begin_dispatch and
  /// end_round from finalize_round. Sessions/iterator eviction are handled
  /// here; calls are cheap no-ops when neither applies.
  template <typename TaskLike>
  void begin_round(const std::vector<TaskLike>& tasks) {
    ++round_;
    for (const auto& t : tasks) note_dispatch(static_cast<std::size_t>(t.client));
  }
  void end_round();

  bool session_mode() const { return session_; }
  /// Currently engaged batch iterators (eager states or open sessions).
  std::size_t resident_iterators() const;
  /// Synthesized shards held by the session-mode LRU cache.
  std::size_t resident_shards() const;

 private:
  struct State {
    Rng rng;
    std::optional<data::BatchIterator> batches;
    std::int64_t last_used = -1;
  };
  struct Session {
    Rng rng;
    std::shared_ptr<const data::Dataset> shard;
    std::optional<data::BatchIterator> iter;
  };
  struct CacheEntry {
    std::shared_ptr<const data::Dataset> ds;
    std::uint64_t tick = 0;
  };

  void note_dispatch(std::size_t k);
  Session& acquire(std::size_t k);
  std::shared_ptr<const data::Dataset> shard_of(std::size_t k);

  const FedEnv* env_;
  std::uint64_t seed_ = 0;
  std::uint64_t stream_base_ = 5000;
  bool session_ = false;
  std::int64_t round_ = 0;

  // Eager mode: O(pool) persistent states (legacy layout).
  std::vector<State> state_;

  // Session mode: O(sampled) open sessions + an LRU of synthesized shards.
  mutable std::mutex mu_;
  std::unordered_map<std::size_t, Session> sessions_;
  std::unordered_map<std::size_t, std::uint64_t> dispatch_count_;
  std::unordered_map<std::size_t, CacheEntry> cache_;
  std::int64_t cache_cap_ = 256;
  std::uint64_t tick_ = 0;
};

}  // namespace fp::fed
