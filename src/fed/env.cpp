#include "fed/env.hpp"

#include <stdexcept>

namespace fp::fed {

FedEnv make_env(const data::TrainTest& data, const FedEnvConfig& cfg,
                sys::ModelSpec cost_spec) {
  FedEnv env;
  env.test = data.test;
  env.cost_spec = std::move(cost_spec);
  env.cost_cfg.batch_size = cfg.fl.batch_size;
  env.cost_cfg.pgd_steps = cfg.fl.pgd_steps;

  data::Dataset train_pool = data.train;
  if (cfg.with_public_set) {
    auto split = data::split_public(data.train, cfg.public_fraction, cfg.fl.seed);
    env.public_set = std::move(split.public_set);
    train_pool = std::move(split.remainder);
  }
  data::PartitionConfig pcfg;
  pcfg.num_clients = cfg.fl.num_clients;
  pcfg.seed = cfg.fl.seed + 1;
  env.shards = data::partition_non_iid(train_pool, pcfg);

  float total = 0.0f;
  for (const auto& shard : env.shards) total += static_cast<float>(shard.size());
  env.weights.reserve(env.shards.size());
  for (const auto& shard : env.shards)
    env.weights.push_back(static_cast<float>(shard.size()) / total);

  const auto& pool = cfg.cifar_pool ? sys::cifar_device_pool()
                                    : sys::caltech_device_pool();
  env.devices.emplace(pool, cfg.heterogeneity, cfg.fl.seed + 2);
  return env;
}

TimeBreakdown simulate_round_time(const sys::ModelSpec& spec,
                                  const std::vector<sys::DeviceInstance>& devices,
                                  const std::vector<ClientWork>& work,
                                  const sys::TrainCostConfig& base_cfg,
                                  std::int64_t local_iters) {
  if (devices.size() != work.size())
    throw std::invalid_argument("simulate_round_time: size mismatch");
  TimeBreakdown slowest;
  double slowest_total = -1.0;
  for (std::size_t k = 0; k < work.size(); ++k) {
    sys::TrainCostConfig cfg = base_cfg;
    cfg.pgd_steps = work[k].pgd_steps;
    cfg.mem_scale = work[k].mem_scale;
    cfg.flops_scale = work[k].flops_scale;
    const sys::StepCost cost = sys::train_step_cost(
        spec, work[k].atom_begin, work[k].atom_end, work[k].with_aux, cfg,
        devices[k].avail_mem_bytes);
    const sys::StepTime t =
        sys::step_time(cost, devices[k].avail_flops, devices[k].io_bytes_per_s, cfg);
    const double total = static_cast<double>(local_iters) * t.total();
    if (total > slowest_total) {
      slowest_total = total;
      slowest.compute_s = static_cast<double>(local_iters) * t.compute_s;
      slowest.access_s = static_cast<double>(local_iters) * t.access_s;
    }
  }
  return slowest;
}

}  // namespace fp::fed
